/**
 * @file
 * Unit tests for the persistent EvaluationCache.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dse/EvaluationCache.hpp"
#include "support/Logging.hpp"

namespace pico::dse
{
namespace
{

TEST(EvaluationCache, ComputesOnMissOnly)
{
    EvaluationCache cache;
    int computations = 0;
    auto compute = [&computations]() {
        ++computations;
        return std::vector<double>{1.0, 2.0};
    };
    auto a = cache.getOrCompute("k", compute);
    auto b = cache.getOrCompute("k", compute);
    EXPECT_EQ(computations, 1);
    EXPECT_EQ(a, b);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(EvaluationCache, LookupWithoutCompute)
{
    EvaluationCache cache;
    std::vector<double> values;
    EXPECT_FALSE(cache.lookup("missing", values));
    cache.store("present", {3.5});
    ASSERT_TRUE(cache.lookup("present", values));
    EXPECT_EQ(values, std::vector<double>{3.5});
}

TEST(EvaluationCache, RejectsReservedCharacters)
{
    EvaluationCache cache;
    EXPECT_THROW(cache.store("a|b", {1.0}), FatalError);
    EXPECT_THROW(cache.store("a\nb", {1.0}), FatalError);
}

TEST(EvaluationCache, PersistsAcrossInstances)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_eval_cache_test.db";
    std::filesystem::remove(path);
    {
        EvaluationCache cache(path.string());
        cache.store("app/ic/16KB", {123.0, 456.0});
        cache.store("app/uc/128KB", {7.0});
        cache.save();
    }
    {
        EvaluationCache cache(path.string());
        std::vector<double> values;
        ASSERT_TRUE(cache.lookup("app/ic/16KB", values));
        EXPECT_EQ(values, (std::vector<double>{123.0, 456.0}));
        ASSERT_TRUE(cache.lookup("app/uc/128KB", values));
        EXPECT_EQ(values, std::vector<double>{7.0});
        EXPECT_EQ(cache.size(), 2u);
    }
    std::filesystem::remove(path);
}

TEST(EvaluationCache, SaveOnDestruction)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_eval_cache_dtor.db";
    std::filesystem::remove(path);
    {
        EvaluationCache cache(path.string());
        cache.store("x", {1.0});
        // no explicit save()
    }
    EvaluationCache reloaded(path.string());
    std::vector<double> values;
    EXPECT_TRUE(reloaded.lookup("x", values));
    std::filesystem::remove(path);
}

TEST(EvaluationCache, RoundTripPrecision)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_eval_cache_prec.db";
    std::filesystem::remove(path);
    double v = 1.0 / 3.0 * 1e17;
    {
        EvaluationCache cache(path.string());
        cache.store("pi", {v});
    }
    EvaluationCache reloaded(path.string());
    std::vector<double> values;
    ASSERT_TRUE(reloaded.lookup("pi", values));
    EXPECT_DOUBLE_EQ(values[0], v);
    std::filesystem::remove(path);
}

TEST(EvaluationCache, MemoryOnlyNeverTouchesDisk)
{
    EvaluationCache cache;
    cache.store("k", {1.0});
    EXPECT_NO_THROW(cache.save());
}

} // namespace
} // namespace pico::dse
