/**
 * @file
 * Unit tests for the persistent EvaluationCache.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "dse/EvaluationCache.hpp"
#include "dse/Spacewalker.hpp"
#include "support/Logging.hpp"

namespace pico::dse
{
namespace
{

TEST(EvaluationCache, ComputesOnMissOnly)
{
    EvaluationCache cache;
    int computations = 0;
    auto compute = [&computations]() {
        ++computations;
        return std::vector<double>{1.0, 2.0};
    };
    auto a = cache.getOrCompute("k", compute);
    auto b = cache.getOrCompute("k", compute);
    EXPECT_EQ(computations, 1);
    EXPECT_EQ(a, b);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(EvaluationCache, LookupWithoutCompute)
{
    EvaluationCache cache;
    std::vector<double> values;
    EXPECT_FALSE(cache.lookup("missing", values));
    cache.store("present", {3.5});
    ASSERT_TRUE(cache.lookup("present", values));
    EXPECT_EQ(values, std::vector<double>{3.5});
}

TEST(EvaluationCache, RejectsReservedCharacters)
{
    EvaluationCache cache;
    EXPECT_THROW(cache.store("a|b", {1.0}), FatalError);
    EXPECT_THROW(cache.store("a\nb", {1.0}), FatalError);
}

TEST(EvaluationCache, PersistsAcrossInstances)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_eval_cache_test.db";
    std::filesystem::remove(path);
    {
        EvaluationCache cache(path.string());
        cache.store("app/ic/16KB", {123.0, 456.0});
        cache.store("app/uc/128KB", {7.0});
        cache.save();
    }
    {
        EvaluationCache cache(path.string());
        std::vector<double> values;
        ASSERT_TRUE(cache.lookup("app/ic/16KB", values));
        EXPECT_EQ(values, (std::vector<double>{123.0, 456.0}));
        ASSERT_TRUE(cache.lookup("app/uc/128KB", values));
        EXPECT_EQ(values, std::vector<double>{7.0});
        EXPECT_EQ(cache.size(), 2u);
    }
    std::filesystem::remove(path);
}

TEST(EvaluationCache, SaveOnDestruction)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_eval_cache_dtor.db";
    std::filesystem::remove(path);
    {
        EvaluationCache cache(path.string());
        cache.store("x", {1.0});
        // no explicit save()
    }
    EvaluationCache reloaded(path.string());
    std::vector<double> values;
    EXPECT_TRUE(reloaded.lookup("x", values));
    std::filesystem::remove(path);
}

TEST(EvaluationCache, RoundTripPrecision)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_eval_cache_prec.db";
    std::filesystem::remove(path);
    double v = 1.0 / 3.0 * 1e17;
    {
        EvaluationCache cache(path.string());
        cache.store("pi", {v});
    }
    EvaluationCache reloaded(path.string());
    std::vector<double> values;
    ASSERT_TRUE(reloaded.lookup("pi", values));
    EXPECT_DOUBLE_EQ(values[0], v);
    std::filesystem::remove(path);
}

TEST(EvaluationCache, MemoryOnlyNeverTouchesDisk)
{
    EvaluationCache cache;
    cache.store("k", {1.0});
    EXPECT_NO_THROW(cache.save());
}

TEST(EvaluationCache, SavesVersionedHeaderAtomically)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_eval_cache_hdr.db";
    std::filesystem::remove(path);
    {
        EvaluationCache cache(path.string());
        cache.store("k", {1.0});
        cache.flush();
        EXPECT_FALSE(cache.dirty());
        // The atomic-rename protocol leaves no temporary behind.
        EXPECT_FALSE(
            std::filesystem::exists(path.string() + ".tmp"));
    }
    std::ifstream in(path);
    std::string first;
    std::getline(in, first);
    EXPECT_EQ(first, EvaluationCache::header);
    std::filesystem::remove(path);
}

TEST(EvaluationCache, SalvagesGoodEntriesFromCorruptFile)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_eval_cache_corrupt.db";
    {
        std::ofstream out(path);
        out << EvaluationCache::header << "\n"
            << "good|1.5,2.5\n"
            << "bad|notanumber\n"
            << "trailing|1.5junk\n"
            << "nobar\n"
            << "|emptykey\n"
            << "alsogood|3\n";
    }
    // No std::invalid_argument leaks out of load(); good entries
    // survive, bad ones are quarantined.
    EvaluationCache cache(path.string());
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.loadedEntries(), 2u);
    EXPECT_EQ(cache.quarantinedEntries(), 4u);
    std::vector<double> v;
    ASSERT_TRUE(cache.lookup("good", v));
    EXPECT_EQ(v, (std::vector<double>{1.5, 2.5}));
    ASSERT_TRUE(cache.lookup("alsogood", v));
    EXPECT_EQ(v, std::vector<double>{3.0});
    std::filesystem::remove(path);
}

TEST(EvaluationCache, LoadsHeaderlessV1Files)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_eval_cache_v1.db";
    {
        std::ofstream out(path);
        out << "legacy|4.5\nother|1,2\n";
    }
    EvaluationCache cache(path.string());
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.quarantinedEntries(), 0u);
    std::vector<double> v;
    ASSERT_TRUE(cache.lookup("legacy", v));
    EXPECT_EQ(v, std::vector<double>{4.5});
    std::filesystem::remove(path);
}

TEST(EvaluationCache, LoadsV2FilesAndRewritesThemAsV3)
{
    // Schema back-compat across the policy-axis bump: a v2 database
    // (pre policy axes) loads completely — its classic keys are
    // byte-identical under the new schema — and the next save
    // rewrites it under the v3 header.
    auto path = std::filesystem::temp_directory_path() /
                "pico_eval_cache_v2.db";
    {
        std::ofstream out(path);
        out << EvaluationCache::headerV2 << "\n"
            << "proc;app;s1;1111;p1|1.5,2.5\n";
    }
    EvaluationCache cache(path.string());
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.quarantinedEntries(), 0u);
    std::vector<double> v;
    ASSERT_TRUE(cache.lookup("proc;app;s1;1111;p1", v));
    EXPECT_EQ(v, (std::vector<double>{1.5, 2.5}));
    cache.store("k2", {3.0});
    cache.save();

    std::ifstream in(path);
    std::string first;
    std::getline(in, first);
    EXPECT_EQ(first, EvaluationCache::header);
    EXPECT_NE(std::string(EvaluationCache::header),
              std::string(EvaluationCache::headerV2));
    std::filesystem::remove(path);
}

TEST(EvaluationCache, PolicyAxesPartitionTheKeySchema)
{
    // The satellite contract of the schema bump: classic-space keys
    // are byte-identical to the historical schema (so v2-era LRU
    // caches keep hitting), while a walk with extended policy axes
    // derives a *different* key — an old LRU entry can never be
    // served to a FIFO/random/write-through walk.
    MemorySpaces classic;
    auto classic_key = procMetricsKey("app", 1, "1111", classic);
    EXPECT_EQ(classic_key.rfind("proc;app;s1;1111;p", 0), 0u);
    EXPECT_EQ(classic_key.find(";r"), std::string::npos);
    EXPECT_EQ(classic_key.find(";w"), std::string::npos);

    MemorySpaces extended = classic;
    extended.dcache.replacements = {cache::ReplacementPolicy::LRU,
                                    cache::ReplacementPolicy::FIFO};
    extended.dcache.writePolicies = {
        cache::WritePolicy::WriteBack,
        cache::WritePolicy::WriteThrough};
    auto extended_key = procMetricsKey("app", 1, "1111", extended);
    EXPECT_NE(extended_key, classic_key);
    EXPECT_NE(extended_key.find(";r.lru.fifo"), std::string::npos);
    EXPECT_NE(extended_key.find(";w.wb.wt"), std::string::npos);

    // A different axis choice is a different key too.
    MemorySpaces random_space = classic;
    random_space.dcache.replacements = {
        cache::ReplacementPolicy::Random};
    auto random_key = procMetricsKey("app", 1, "1111", random_space);
    EXPECT_NE(random_key, classic_key);
    EXPECT_NE(random_key, extended_key);

    // The table itself enforces the partition: an entry stored by
    // an old LRU walk misses for the extended walk's key.
    EvaluationCache table;
    table.store(classic_key, {1.0, 2.0});
    std::vector<double> v;
    EXPECT_FALSE(table.lookup(extended_key, v));
    EXPECT_FALSE(table.lookup(random_key, v));
    ASSERT_TRUE(table.lookup(classic_key, v));
    EXPECT_EQ(v, (std::vector<double>{1.0, 2.0}));
}

TEST(EvaluationCache, FlushIsIdempotentAndTracksDirtiness)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_eval_cache_flush.db";
    std::filesystem::remove(path);
    EvaluationCache cache(path.string());
    EXPECT_FALSE(cache.dirty());
    cache.flush(); // nothing to do, nothing written
    EXPECT_FALSE(std::filesystem::exists(path));
    cache.store("k", {1.0});
    EXPECT_TRUE(cache.dirty());
    cache.flush();
    EXPECT_FALSE(cache.dirty());
    EXPECT_TRUE(std::filesystem::exists(path));
    std::filesystem::remove(path);
}

TEST(EvaluationCache, StatsSplitSumsExactlyUnderConcurrentAccess)
{
    EvaluationCache cache;
    // Pre-populate half the keys so concurrent readers see a mix of
    // hits and misses.
    const int kKeys = 64;
    for (int k = 0; k < kKeys; k += 2)
        cache.store("key" + std::to_string(k), {double(k)});

    const int kThreads = 8, kCallsPerThread = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kCallsPerThread; ++i) {
                std::string key =
                    "key" + std::to_string((t * 31 + i) % kKeys);
                std::vector<double> values;
                cache.lookup(key, values);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    // Every lookup counted exactly once, and the disk/memory split
    // partitions the hits exactly — no update was lost or double
    // counted across the 8 threads.
    auto s = cache.stats();
    EXPECT_EQ(s.hits + s.misses,
              uint64_t(kThreads) * kCallsPerThread);
    EXPECT_EQ(s.diskHits + s.memoryHits, s.hits);
    EXPECT_EQ(s.diskHits, 0u); // nothing was loaded from a file
}

TEST(EvaluationCache, RetryStormComputesEachKeyAtMostOnce)
{
    EvaluationCache cache;
    // A retry storm: many threads hammer a handful of idempotent
    // keys concurrently. Single-flight getOrCompute must run the
    // compute callback exactly once per key.
    const int kKeys = 4, kThreads = 8, kCallsPerThread = 50;
    std::array<std::atomic<int>, kKeys> runs{};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kCallsPerThread; ++i) {
                int k = (t + i) % kKeys;
                auto v = cache.getOrCompute(
                    "storm" + std::to_string(k), [&runs, k] {
                        runs[size_t(k)].fetch_add(1);
                        return std::vector<double>{double(k)};
                    });
                ASSERT_EQ(v.size(), 1u);
                EXPECT_DOUBLE_EQ(v[0], double(k));
            }
        });
    }
    for (auto &t : threads)
        t.join();

    for (int k = 0; k < kKeys; ++k)
        EXPECT_EQ(runs[size_t(k)].load(), 1) << "key " << k;
    auto s = cache.stats();
    EXPECT_EQ(s.computed, uint64_t(kKeys));
    // Conservation still holds: every call was a hit or a miss.
    EXPECT_EQ(s.hits + s.misses,
              uint64_t(kThreads) * kCallsPerThread);
}

} // namespace
} // namespace pico::dse
