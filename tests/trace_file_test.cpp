/**
 * @file
 * Tests for trace-file serialization: round trips, header checking,
 * and simulator equivalence between live and replayed traces.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/CacheSim.hpp"
#include "trace/TraceFile.hpp"
#include "trace/TraceGenerator.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::trace
{
namespace
{

std::filesystem::path
tempTrace(const char *name)
{
    return std::filesystem::temp_directory_path() / name;
}

TEST(TraceFile, RoundTripPreservesRecords)
{
    auto path = tempTrace("pico_roundtrip.trace");
    std::vector<Access> accesses = {
        {0x01000000, true, false},
        {0x40000004, false, false},
        {0x40000008, false, true},
        {0xdeadbeef0, false, true},
    };
    {
        TraceFileWriter writer(path.string());
        for (const auto &a : accesses)
            writer.write(a);
        EXPECT_EQ(writer.count(), accesses.size());
    }
    TraceFileReader reader(path.string());
    std::vector<Access> read;
    reader.replay([&read](const Access &a) { read.push_back(a); });
    ASSERT_EQ(read.size(), accesses.size());
    for (size_t i = 0; i < read.size(); ++i) {
        EXPECT_EQ(read[i].addr, accesses[i].addr);
        EXPECT_EQ(read[i].isInstr, accesses[i].isInstr);
        EXPECT_EQ(read[i].isWrite, accesses[i].isWrite);
    }
    std::filesystem::remove(path);
}

TEST(TraceFile, WritesVersionedHeaderAndFooter)
{
    auto path = tempTrace("pico_v2format.trace");
    {
        TraceFileWriter writer(path.string());
        writer.write({0x1000, true, false});
        writer.write({0x2000, false, true});
        writer.close();
    }
    std::ifstream in(path);
    std::string line, last;
    std::getline(in, line);
    EXPECT_EQ(line, traceHeaderV2);
    while (std::getline(in, line))
        last = line;
    EXPECT_EQ(last.rfind(traceFooterTag, 0), 0u);

    TraceFileReader reader(path.string());
    EXPECT_EQ(reader.version(), 2);
    EXPECT_EQ(reader.replay([](const Access &) {}), 2u);
    const auto &s = reader.summary();
    EXPECT_TRUE(s.clean());
    EXPECT_EQ(s.expectedRecords, 2u);
    EXPECT_EQ(s.droppedRecords(), 0u);
    std::filesystem::remove(path);
}

TEST(TraceFile, ReadsV1Files)
{
    auto path = tempTrace("pico_v1compat.trace");
    {
        std::ofstream out(path);
        out << traceHeaderV1 << "\n2 1000\n0 2000\n1 2004\n";
    }
    TraceFileReader reader(path.string());
    EXPECT_EQ(reader.version(), 1);
    std::vector<Access> read;
    reader.replay([&read](const Access &a) { read.push_back(a); });
    ASSERT_EQ(read.size(), 3u);
    EXPECT_TRUE(read[0].isInstr);
    EXPECT_EQ(read[1].addr, 0x2000u);
    EXPECT_TRUE(read[2].isWrite);
    EXPECT_TRUE(reader.summary().clean());
    std::filesystem::remove(path);
}

TEST(TraceFile, V1MalformedRecordNamesTheLine)
{
    auto path = tempTrace("pico_v1malformed.trace");
    {
        std::ofstream out(path);
        out << traceHeaderV1 << "\n2 1000\ngarbage here\n0 2000\n";
    }
    TraceFileReader reader(path.string());
    Access a;
    EXPECT_TRUE(reader.next(a));
    try {
        reader.next(a);
        FAIL() << "malformed record accepted";
    } catch (const FatalError &e) {
        // Line 3: header is line 1, first record line 2.
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
}

TEST(TraceFile, V1TruncatedMidRecordIsNotCleanEof)
{
    auto path = tempTrace("pico_v1truncated.trace");
    {
        std::ofstream out(path);
        // Killed mid-write: the last record lost its address.
        out << traceHeaderV1 << "\n2 1000\n1";
    }
    TraceFileReader reader(path.string());
    Access a;
    EXPECT_TRUE(reader.next(a));
    EXPECT_THROW(reader.next(a), FatalError);
    std::filesystem::remove(path);
}

TEST(TraceFile, V1LenientSkipsAndAccounts)
{
    auto path = tempTrace("pico_v1lenient.trace");
    {
        std::ofstream out(path);
        out << traceHeaderV1 << "\n2 1000\nnoise\n0 2000\n";
    }
    TraceFileReader reader(path.string(), TraceReadMode::Lenient);
    EXPECT_EQ(reader.replay([](const Access &) {}), 2u);
    EXPECT_EQ(reader.summary().corruptLines, 1u);
    EXPECT_EQ(reader.summary().droppedRecords(), 1u);
    std::filesystem::remove(path);
}

TEST(TraceFile, RejectsMissingFile)
{
    EXPECT_THROW(TraceFileReader("/nonexistent/trace"), FatalError);
}

TEST(TraceFile, RejectsBadHeader)
{
    auto path = tempTrace("pico_badheader.trace");
    {
        std::ofstream out(path);
        out << "not a trace\n2 1000\n";
    }
    EXPECT_THROW(TraceFileReader reader(path.string()), FatalError);
    std::filesystem::remove(path);
}

TEST(TraceFile, ReplayedTraceSimulatesIdentically)
{
    auto path = tempTrace("pico_replay.trace");
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 4000);
    auto build = workloads::buildFor(
        prog, machine::MachineDesc::fromName("1111"));
    TraceGenerator gen(prog, build.sched, build.bin);

    cache::CacheConfig cfg = cache::CacheConfig::fromSize(4096, 2, 32);
    cache::CacheSim live(cfg);
    {
        TraceFileWriter writer(path.string());
        gen.generate(TraceKind::Unified,
                     [&](const Access &a) {
                         live.access(a.addr, a.isWrite);
                         writer.write(a);
                     },
                     4000);
    }

    cache::CacheSim replayed(cfg);
    TraceFileReader reader(path.string());
    uint64_t n = reader.replay([&replayed](const Access &a) {
        replayed.access(a.addr, a.isWrite);
    });
    EXPECT_EQ(n, live.accesses());
    EXPECT_EQ(replayed.misses(), live.misses());
    EXPECT_EQ(replayed.writebacks(), live.writebacks());
    std::filesystem::remove(path);
}

} // namespace
} // namespace pico::trace
