/**
 * @file
 * Tests for trace-file serialization: round trips, header checking,
 * and simulator equivalence between live and replayed traces.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/CacheSim.hpp"
#include "trace/TraceFile.hpp"
#include "trace/TraceGenerator.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::trace
{
namespace
{

std::filesystem::path
tempTrace(const char *name)
{
    return std::filesystem::temp_directory_path() / name;
}

TEST(TraceFile, RoundTripPreservesRecords)
{
    auto path = tempTrace("pico_roundtrip.trace");
    std::vector<Access> accesses = {
        {0x01000000, true, false},
        {0x40000004, false, false},
        {0x40000008, false, true},
        {0xdeadbeef0, false, true},
    };
    {
        TraceFileWriter writer(path.string());
        for (const auto &a : accesses)
            writer.write(a);
        EXPECT_EQ(writer.count(), accesses.size());
    }
    TraceFileReader reader(path.string());
    std::vector<Access> read;
    reader.replay([&read](const Access &a) { read.push_back(a); });
    ASSERT_EQ(read.size(), accesses.size());
    for (size_t i = 0; i < read.size(); ++i) {
        EXPECT_EQ(read[i].addr, accesses[i].addr);
        EXPECT_EQ(read[i].isInstr, accesses[i].isInstr);
        EXPECT_EQ(read[i].isWrite, accesses[i].isWrite);
    }
    std::filesystem::remove(path);
}

TEST(TraceFile, RejectsMissingFile)
{
    EXPECT_THROW(TraceFileReader("/nonexistent/trace"), FatalError);
}

TEST(TraceFile, RejectsBadHeader)
{
    auto path = tempTrace("pico_badheader.trace");
    {
        std::ofstream out(path);
        out << "not a trace\n2 1000\n";
    }
    EXPECT_THROW(TraceFileReader reader(path.string()), FatalError);
    std::filesystem::remove(path);
}

TEST(TraceFile, ReplayedTraceSimulatesIdentically)
{
    auto path = tempTrace("pico_replay.trace");
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 4000);
    auto build = workloads::buildFor(
        prog, machine::MachineDesc::fromName("1111"));
    TraceGenerator gen(prog, build.sched, build.bin);

    cache::CacheConfig cfg = cache::CacheConfig::fromSize(4096, 2, 32);
    cache::CacheSim live(cfg);
    {
        TraceFileWriter writer(path.string());
        gen.generate(TraceKind::Unified,
                     [&](const Access &a) {
                         live.access(a.addr, a.isWrite);
                         writer.write(a);
                     },
                     4000);
    }

    cache::CacheSim replayed(cfg);
    TraceFileReader reader(path.string());
    uint64_t n = reader.replay([&replayed](const Access &a) {
        replayed.access(a.addr, a.isWrite);
    });
    EXPECT_EQ(n, live.accesses());
    EXPECT_EQ(replayed.misses(), live.misses());
    EXPECT_EQ(replayed.writebacks(), live.writebacks());
    std::filesystem::remove(path);
}

} // namespace
} // namespace pico::trace
