/**
 * @file
 * Tests for trace-file serialization: round trips, header checking,
 * and simulator equivalence between live and replayed traces.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/CacheSim.hpp"
#include "support/FaultInjection.hpp"
#include "trace/ColumnarTrace.hpp"
#include "trace/TraceFile.hpp"
#include "trace/TraceGenerator.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::trace
{
namespace
{

std::filesystem::path
tempTrace(const char *name)
{
    return std::filesystem::temp_directory_path() / name;
}

TEST(TraceFile, RoundTripPreservesRecords)
{
    auto path = tempTrace("pico_roundtrip.trace");
    std::vector<Access> accesses = {
        {0x01000000, true, false},
        {0x40000004, false, false},
        {0x40000008, false, true},
        {0xdeadbeef0, false, true},
    };
    {
        TraceFileWriter writer(path.string());
        for (const auto &a : accesses)
            writer.write(a);
        EXPECT_EQ(writer.count(), accesses.size());
    }
    TraceFileReader reader(path.string());
    std::vector<Access> read;
    reader.replay([&read](const Access &a) { read.push_back(a); });
    ASSERT_EQ(read.size(), accesses.size());
    for (size_t i = 0; i < read.size(); ++i) {
        EXPECT_EQ(read[i].addr, accesses[i].addr);
        EXPECT_EQ(read[i].isInstr, accesses[i].isInstr);
        EXPECT_EQ(read[i].isWrite, accesses[i].isWrite);
    }
    std::filesystem::remove(path);
}

TEST(TraceFile, WritesVersionedHeaderAndFooter)
{
    auto path = tempTrace("pico_v2format.trace");
    {
        TraceFileWriter writer(path.string());
        writer.write({0x1000, true, false});
        writer.write({0x2000, false, true});
        writer.close();
    }
    std::ifstream in(path);
    std::string line, last;
    std::getline(in, line);
    EXPECT_EQ(line, traceHeaderV2);
    while (std::getline(in, line))
        last = line;
    EXPECT_EQ(last.rfind(traceFooterTag, 0), 0u);

    TraceFileReader reader(path.string());
    EXPECT_EQ(reader.version(), 2);
    EXPECT_EQ(reader.replay([](const Access &) {}), 2u);
    const auto &s = reader.summary();
    EXPECT_TRUE(s.clean());
    EXPECT_EQ(s.expectedRecords, 2u);
    EXPECT_EQ(s.droppedRecords(), 0u);
    std::filesystem::remove(path);
}

TEST(TraceFile, ReadsV1Files)
{
    auto path = tempTrace("pico_v1compat.trace");
    {
        std::ofstream out(path);
        out << traceHeaderV1 << "\n2 1000\n0 2000\n1 2004\n";
    }
    TraceFileReader reader(path.string());
    EXPECT_EQ(reader.version(), 1);
    std::vector<Access> read;
    reader.replay([&read](const Access &a) { read.push_back(a); });
    ASSERT_EQ(read.size(), 3u);
    EXPECT_TRUE(read[0].isInstr);
    EXPECT_EQ(read[1].addr, 0x2000u);
    EXPECT_TRUE(read[2].isWrite);
    EXPECT_TRUE(reader.summary().clean());
    std::filesystem::remove(path);
}

TEST(TraceFile, V1MalformedRecordNamesTheLine)
{
    auto path = tempTrace("pico_v1malformed.trace");
    {
        std::ofstream out(path);
        out << traceHeaderV1 << "\n2 1000\ngarbage here\n0 2000\n";
    }
    TraceFileReader reader(path.string());
    Access a;
    EXPECT_TRUE(reader.next(a));
    try {
        reader.next(a);
        FAIL() << "malformed record accepted";
    } catch (const FatalError &e) {
        // Line 3: header is line 1, first record line 2.
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
}

TEST(TraceFile, V1TruncatedMidRecordIsNotCleanEof)
{
    auto path = tempTrace("pico_v1truncated.trace");
    {
        std::ofstream out(path);
        // Killed mid-write: the last record lost its address.
        out << traceHeaderV1 << "\n2 1000\n1";
    }
    TraceFileReader reader(path.string());
    Access a;
    EXPECT_TRUE(reader.next(a));
    EXPECT_THROW(reader.next(a), FatalError);
    std::filesystem::remove(path);
}

TEST(TraceFile, V1LenientSkipsAndAccounts)
{
    auto path = tempTrace("pico_v1lenient.trace");
    {
        std::ofstream out(path);
        out << traceHeaderV1 << "\n2 1000\nnoise\n0 2000\n";
    }
    TraceFileReader reader(path.string(), TraceReadMode::Lenient);
    EXPECT_EQ(reader.replay([](const Access &) {}), 2u);
    EXPECT_EQ(reader.summary().corruptLines, 1u);
    EXPECT_EQ(reader.summary().droppedRecords(), 1u);
    std::filesystem::remove(path);
}

TEST(TraceFile, RejectsMissingFile)
{
    EXPECT_THROW(TraceFileReader("/nonexistent/trace"), FatalError);
}

TEST(TraceFile, RejectsBadHeader)
{
    auto path = tempTrace("pico_badheader.trace");
    {
        std::ofstream out(path);
        out << "not a trace\n2 1000\n";
    }
    EXPECT_THROW(TraceFileReader reader(path.string()), FatalError);
    std::filesystem::remove(path);
}

TEST(TraceFile, ReplayedTraceSimulatesIdentically)
{
    auto path = tempTrace("pico_replay.trace");
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 4000);
    auto build = workloads::buildFor(
        prog, machine::MachineDesc::fromName("1111"));
    TraceGenerator gen(prog, build.sched, build.bin);

    cache::CacheConfig cfg = cache::CacheConfig::fromSize(4096, 2, 32);
    cache::CacheSim live(cfg);
    {
        TraceFileWriter writer(path.string());
        gen.generate(TraceKind::Unified,
                     [&](const Access &a) {
                         live.access(a.addr, a.isWrite);
                         writer.write(a);
                     },
                     4000);
    }

    cache::CacheSim replayed(cfg);
    TraceFileReader reader(path.string());
    uint64_t n = reader.replay([&replayed](const Access &a) {
        replayed.access(a.addr, a.isWrite);
    });
    EXPECT_EQ(n, live.accesses());
    EXPECT_EQ(replayed.misses(), live.misses());
    EXPECT_EQ(replayed.writebacks(), live.writebacks());
    std::filesystem::remove(path);
}

// --- trace format v3 (blocked columnar) -------------------------------

/** Mixed-kind trace with jumpy and sequential address stretches. */
std::vector<Access>
syntheticAccesses(size_t n)
{
    std::vector<Access> out;
    out.reserve(n);
    uint64_t pc = 0x400000;
    for (size_t i = 0; i < n; ++i) {
        if (i % 11 == 0)
            pc = 0x400000 + ((i * 2654435761ULL) & 0x3ffff) * 4;
        Access a;
        a.addr = pc;
        pc += 4;
        a.isInstr = (i % 3) != 0;
        a.isWrite = !a.isInstr && (i % 5 == 0);
        out.push_back(a);
    }
    return out;
}

std::filesystem::path
writeColumnar(const char *name, const std::vector<Access> &accesses,
              uint32_t block_capacity =
                  ColumnarTraceBuffer::defaultBlockCapacity)
{
    auto path = tempTrace(name);
    ColumnarTraceWriter writer(path.string(), block_capacity);
    for (const auto &a : accesses)
        writer.write(a);
    writer.close();
    return path;
}

void
expectSameAccesses(const std::vector<Access> &got,
                   const std::vector<Access> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].addr, want[i].addr) << "record " << i;
        ASSERT_EQ(got[i].isInstr, want[i].isInstr) << "record " << i;
        ASSERT_EQ(got[i].isWrite, want[i].isWrite) << "record " << i;
    }
}

TEST(ColumnarFile, RoundTripPreservesRecords)
{
    auto accesses = syntheticAccesses(10000); // 3 blocks at 4096
    auto path = writeColumnar("pico_v3roundtrip.trace", accesses);
    EXPECT_EQ(sniffTraceFileVersion(path.string()), 3);

    ColumnarTraceReader reader(path.string());
    EXPECT_EQ(reader.recordCount(), accesses.size());
    EXPECT_EQ(reader.blockCount(), 3u);
    std::vector<Access> read;
    reader.replay([&read](const Access &a) { read.push_back(a); });
    expectSameAccesses(read, accesses);
    EXPECT_TRUE(reader.summary().clean());
    std::filesystem::remove(path);
}

TEST(ColumnarFile, SmallBlocksAndEmptyTraceRoundTrip)
{
    auto accesses = syntheticAccesses(1000);
    auto path =
        writeColumnar("pico_v3small.trace", accesses, /*cap=*/64);
    std::vector<Access> read;
    ColumnarTraceReader reader(path.string());
    reader.replay([&read](const Access &a) { read.push_back(a); });
    expectSameAccesses(read, accesses);
    EXPECT_EQ(reader.blockCount(), (1000 + 63) / 64);
    std::filesystem::remove(path);

    auto empty = writeColumnar("pico_v3empty.trace", {});
    ColumnarTraceReader empty_reader(empty.string());
    EXPECT_EQ(empty_reader.replay([](const Access &) {}), 0u);
    EXPECT_TRUE(empty_reader.summary().clean());
    std::filesystem::remove(empty);
}

TEST(ColumnarFile, V2ToV3ConversionPreservesChecksumChain)
{
    auto accesses = syntheticAccesses(5000);
    auto v2 = tempTrace("pico_v3conv.v2trace");
    {
        TraceFileWriter writer(v2.string());
        for (const auto &a : accesses)
            writer.write(a);
        writer.close();
    }

    // Convert by replaying the v2 file into a v3 writer — the
    // checksum chain of v3 is the v2 chain, so the converted file
    // must validate and deliver the identical record stream.
    auto v3 = tempTrace("pico_v3conv.v3trace");
    {
        ColumnarTraceWriter writer(v3.string());
        EXPECT_EQ(replayTraceFile(v2.string(), writer),
                  accesses.size());
        writer.close();
    }
    EXPECT_EQ(sniffTraceFileVersion(v2.string()), 2);
    EXPECT_EQ(sniffTraceFileVersion(v3.string()), 3);

    ColumnarTraceReader reader(v3.string());
    std::vector<Access> read;
    reader.replay([&read](const Access &a) { read.push_back(a); });
    expectSameAccesses(read, accesses);
    EXPECT_TRUE(reader.summary().clean());

    // The in-memory capture buffer carries the same chain.
    ColumnarTraceBuffer buffer;
    uint64_t chain = traceChecksumSeed;
    for (const auto &a : accesses) {
        buffer.append(a);
        int kind = a.isInstr ? 2 : (a.isWrite ? 1 : 0);
        chain = traceChecksumStep(chain, kind, a.addr);
    }
    EXPECT_EQ(buffer.checksum(), chain);
    std::filesystem::remove(v2);
    std::filesystem::remove(v3);
}

TEST(ColumnarFile, ReplayTraceFileDispatchesByVersion)
{
    auto accesses = syntheticAccesses(3000);
    auto v2 = tempTrace("pico_v3dispatch.v2trace");
    {
        TraceFileWriter writer(v2.string());
        for (const auto &a : accesses)
            writer.write(a);
    }
    auto v3 = writeColumnar("pico_v3dispatch.v3trace", accesses);

    std::vector<Access> from_v2, from_v3;
    replayTraceFile(v2.string(), [&from_v2](const Access &a) {
        from_v2.push_back(a);
    });
    replayTraceFile(v3.string(), [&from_v3](const Access &a) {
        from_v3.push_back(a);
    });
    expectSameAccesses(from_v2, accesses);
    expectSameAccesses(from_v3, accesses);
    std::filesystem::remove(v2);
    std::filesystem::remove(v3);
}

TEST(ColumnarFile, StrictBitFlipNamesTheBlock)
{
    auto accesses = syntheticAccesses(1024);
    auto path =
        writeColumnar("pico_v3strict.trace", accesses, /*cap=*/256);
    // Flip a payload byte inside the first block (past the 88-byte
    // file header and the 32-byte block header).
    support::flipBit(path.string(), 88 + 32 + 10, 3);

    ColumnarTraceReader reader(path.string());
    try {
        reader.replay([](const Access &) {});
        FAIL() << "corrupt block accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("block"),
                  std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
}

TEST(ColumnarFile, LenientSalvagesWholeBlocks)
{
    auto accesses = syntheticAccesses(1024); // 4 blocks at 256
    auto path =
        writeColumnar("pico_v3lenient.trace", accesses, /*cap=*/256);
    support::flipBit(path.string(), 88 + 32 + 10, 3);

    ColumnarTraceReader reader(path.string(),
                               TraceReadMode::Lenient);
    std::vector<Access> read;
    uint64_t n = reader.replay(
        [&read](const Access &a) { read.push_back(a); });
    // Exactly the flipped block is lost; the other three whole.
    EXPECT_EQ(n, 1024u - 256u);
    const auto &s = reader.summary();
    EXPECT_EQ(s.corruptBlocks, 1u);
    EXPECT_EQ(s.salvagedBlocks, 3u);
    EXPECT_EQ(s.droppedRecords(), 256u);
    EXPECT_FALSE(s.clean());
    expectSameAccesses(
        read, {accesses.begin() + 256, accesses.end()});
    std::filesystem::remove(path);
}

TEST(ColumnarFile, SeededBitFlipsNeverCrashAndSalvageWholeBlocks)
{
    auto accesses = syntheticAccesses(2048); // 8 blocks at 256
    auto pristine =
        writeColumnar("pico_v3fuzz.trace", accesses, /*cap=*/256);

    for (uint64_t seed = 1; seed <= 16; ++seed) {
        auto copy = tempTrace("pico_v3fuzz_case.trace");
        std::filesystem::copy_file(
            pristine, copy,
            std::filesystem::copy_options::overwrite_existing);
        // Three seeded flips anywhere past the magic: header
        // fields, block headers, payload and index are all fair
        // game; only the magic stays so the file still sniffs v3.
        for (uint64_t off : support::corruptionOffsets(
                 copy.string(), seed, 3, traceMagicV3Bytes))
            support::flipBit(copy.string(), off,
                             static_cast<unsigned>(seed % 8));

        ColumnarTraceReader reader(copy.string(),
                                   TraceReadMode::Lenient);
        uint64_t n = reader.replay([](const Access &) {});
        // Lenient mode must never throw and salvage is all-or-
        // nothing per block: every delivered record belongs to a
        // fully validated 256-record block.
        EXPECT_EQ(n % 256, 0u) << "seed " << seed;
        EXPECT_FALSE(reader.summary().describe().empty());
        std::filesystem::remove(copy);
    }
    std::filesystem::remove(pristine);
}

TEST(ColumnarFile, TruncationIsNeverACleanEof)
{
    auto accesses = syntheticAccesses(1024);
    auto path = writeColumnar("pico_v3trunc.trace", accesses,
                              /*cap=*/256);
    // Cut the tail: the offset index goes, and with it the seal
    // patched into the header... which was written *before* the
    // truncation, so kill it too by dropping enough bytes that the
    // last block is also cut mid-payload.
    auto size = std::filesystem::file_size(path);
    support::truncateFile(path.string(), size - (8 * 4 + 40));

    EXPECT_THROW(
        {
            ColumnarTraceReader reader(path.string());
            reader.replay([](const Access &) {});
        },
        FatalError);

    // Lenient: forward scan of the blocks region recovers every
    // block that survived whole.
    ColumnarTraceReader reader(path.string(),
                               TraceReadMode::Lenient);
    uint64_t n = reader.replay([](const Access &) {});
    EXPECT_EQ(n % 256, 0u);
    EXPECT_LT(n, 1024u);
    EXPECT_FALSE(reader.summary().clean());
    std::filesystem::remove(path);
}

TEST(ColumnarFile, WriterCrashBeforeSealIsDetected)
{
    auto path = tempTrace("pico_v3crash.trace");
    {
        support::ScopedFault f(
            "ColumnarTraceWriter::close:before-seal",
            /*skip=*/0, /*fires=*/0);
        ColumnarTraceWriter writer(path.string(), /*cap=*/256);
        for (const auto &a : syntheticAccesses(600))
            writer.write(a);
        EXPECT_THROW(writer.close(), FaultInjectedError);
    }
    // Strict refuses the unsealed file; lenient scans and reports.
    EXPECT_THROW(ColumnarTraceReader(path.string()), FatalError);
    ColumnarTraceReader reader(path.string(),
                               TraceReadMode::Lenient);
    reader.replay([](const Access &) {});
    EXPECT_TRUE(reader.summary().headerTruncated);
    EXPECT_FALSE(reader.summary().clean());
    std::filesystem::remove(path);
}

TEST(ColumnarBuffer, ReplayAndBlockDecodeMatchCapture)
{
    auto accesses = syntheticAccesses(9000);
    ColumnarTraceBuffer buffer(/*block_capacity=*/1024);
    for (const auto &a : accesses)
        buffer.append(a);
    EXPECT_EQ(buffer.size(), accesses.size());
    EXPECT_EQ(buffer.blockCount(), (9000 + 1023) / 1024);

    std::vector<Access> read;
    buffer.replay([&read](const Access &a) { read.push_back(a); });
    expectSameAccesses(read, accesses);

    // Block-wise decode agrees with the record-wise replay.
    BlockScratch scratch;
    size_t i = 0;
    for (size_t b = 0; b < buffer.blockCount(); ++b) {
        BlockView view = buffer.decodeBlock(b, scratch);
        for (uint32_t r = 0; r < view.count; ++r, ++i)
            ASSERT_EQ(view.addrs[r], accesses[i].addr);
    }
    EXPECT_EQ(i, accesses.size());
}

} // namespace
} // namespace pico::trace
