/**
 * @file
 * Tests for the Mattson stack-distance simulator: hand cases,
 * stack-inclusion monotonicity, and exact equivalence against the
 * per-configuration simulator over all fully associative sizes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/CacheSim.hpp"
#include "cache/StackSim.hpp"
#include "support/Logging.hpp"
#include "support/Random.hpp"

namespace pico::cache
{
namespace
{

TEST(StackSim, RejectsBadLineSize)
{
    EXPECT_THROW(StackSim(24), FatalError);
    EXPECT_THROW(StackSim(2), FatalError);
}

TEST(StackSim, SimpleDistances)
{
    StackSim sim(16);
    sim.access(0x00); // cold
    sim.access(0x10); // cold
    sim.access(0x00); // distance 1
    sim.access(0x00); // distance 0
    EXPECT_EQ(sim.accesses(), 4u);
    EXPECT_EQ(sim.coldMisses(), 2u);
    // Capacity 1: only the distance-0 hit survives.
    EXPECT_EQ(sim.misses(1), 3u);
    // Capacity 2: both re-references hit.
    EXPECT_EQ(sim.misses(2), 2u);
    EXPECT_EQ(sim.misses(100), 2u);
}

TEST(StackSim, MissesMonotoneInCapacity)
{
    StackSim sim(32);
    Rng rng(404);
    for (int i = 0; i < 30000; ++i)
        sim.access(rng.below(1 << 15) & ~3ULL);
    uint64_t prev = sim.misses(1);
    for (uint64_t cap = 2; cap <= 1024; cap *= 2) {
        uint64_t cur = sim.misses(cap);
        EXPECT_LE(cur, prev) << "capacity " << cap;
        prev = cur;
    }
    // Large enough capacity leaves only cold misses.
    EXPECT_EQ(sim.misses(1 << 20), sim.coldMisses());
}

TEST(StackSim, MatchesPerConfigurationSimulation)
{
    Rng rng(505);
    std::vector<uint64_t> addrs;
    uint64_t pc = 0;
    for (int i = 0; i < 20000; ++i) {
        pc = rng.coin(0.1) ? rng.below(1 << 14) & ~3ULL : pc + 4;
        addrs.push_back(pc);
    }

    StackSim fast(16);
    for (auto a : addrs)
        fast.access(a);

    for (uint32_t capacity : {1u, 2u, 4u, 16u, 64u, 256u}) {
        CacheSim slow(CacheConfig{1, capacity, 16});
        for (auto a : addrs)
            slow.access(a);
        EXPECT_EQ(fast.misses(capacity), slow.misses())
            << "capacity " << capacity;
    }
}

TEST(StackSim, HistogramSumsToHits)
{
    StackSim sim(32);
    Rng rng(606);
    for (int i = 0; i < 5000; ++i)
        sim.access(rng.below(1 << 10) & ~3ULL);
    uint64_t hits = 0;
    for (auto h : sim.histogram())
        hits += h;
    EXPECT_EQ(hits + sim.coldMisses() +
                  (sim.accesses() - hits - sim.coldMisses()),
              sim.accesses());
    EXPECT_EQ(sim.misses(1 << 20), sim.coldMisses());
    EXPECT_EQ(sim.accesses() - hits, sim.coldMisses());
}

TEST(StackSim, MissesForBytesConverts)
{
    StackSim sim(32);
    sim.access(0);
    sim.access(0);
    EXPECT_EQ(sim.missesForBytes(1024), sim.misses(32));
}

} // namespace
} // namespace pico::cache
