/**
 * @file
 * Unit tests for instruction-format synthesis and the greedy
 * template-selection assembler.
 */

#include <gtest/gtest.h>

#include "compiler/Scheduler.hpp"
#include "isa/Assembler.hpp"
#include "isa/InstructionFormat.hpp"
#include "workloads/AppSpec.hpp"

namespace pico::isa
{
namespace
{

using machine::MachineDesc;

TEST(InstructionFormat, TemplatesSortedAndQuantized)
{
    for (const char *name : {"1111", "2111", "3221", "4221", "6332"}) {
        InstructionFormat fmt(MachineDesc::fromName(name));
        ASSERT_GE(fmt.templates().size(), 3u) << name;
        uint32_t prev = 0;
        for (const auto &t : fmt.templates()) {
            EXPECT_EQ(t.bits % InstructionFormat::quantumBits, 0u);
            EXPECT_GE(t.bits, prev) << name;
            prev = t.bits;
        }
    }
}

TEST(InstructionFormat, FullTemplateMatchesFuMix)
{
    auto mdes = MachineDesc::fromName("6332");
    InstructionFormat fmt(mdes);
    const auto &full = fmt.templates().back();
    EXPECT_EQ(full.name, "full");
    for (unsigned c = 0; c < machine::numOpClasses; ++c)
        EXPECT_EQ(full.typedSlots[c], mdes.fuCount[c]);
    EXPECT_EQ(full.capacity(), 14u);
}

TEST(InstructionFormat, OperandFieldsGrowWithRegisterFiles)
{
    InstructionFormat narrow(MachineDesc::fromName("1111"));
    InstructionFormat wide(MachineDesc::fromName("6332"));
    EXPECT_GT(wide.opFieldBits(ir::OpClass::IntAlu),
              narrow.opFieldBits(ir::OpClass::IntAlu));
}

TEST(InstructionFormat, FetchPacketPowerOfTwoAndCoversFull)
{
    for (const char *name : {"1111", "2111", "6332"}) {
        InstructionFormat fmt(MachineDesc::fromName(name));
        uint32_t packet = fmt.fetchPacketBytes();
        EXPECT_EQ(packet & (packet - 1), 0u) << name;
        EXPECT_GE(packet, fmt.templates().back().bytes()) << name;
    }
}

TEST(Template, FitsCountsTypedThenGeneric)
{
    Template t;
    t.typedSlots = {2, 1, 1, 1};
    t.genericSlots = 1;
    // 2 int + 1 float fits directly.
    EXPECT_TRUE(t.fits({2, 1, 0, 0}));
    // 3 int: one overflows into the generic slot.
    EXPECT_TRUE(t.fits({3, 0, 0, 0}));
    // 4 int: two overflow, one generic slot.
    EXPECT_FALSE(t.fits({4, 0, 0, 0}));
    // Overflow from several classes shares the generic pool.
    EXPECT_FALSE(t.fits({3, 2, 0, 0}));
}

compiler::VliwInst
instWithOps(std::initializer_list<ir::OpClass> classes)
{
    compiler::VliwInst inst;
    for (auto cls : classes) {
        compiler::ScheduledOp op;
        op.opClass = cls;
        inst.ops.push_back(op);
    }
    return inst;
}

TEST(Assembler, SelectsSmallestFittingTemplate)
{
    InstructionFormat fmt(MachineDesc::fromName("6332"));
    Assembler assembler(fmt);

    auto one = instWithOps({ir::OpClass::IntAlu});
    size_t t1 = assembler.selectTemplate(one, 0);
    EXPECT_EQ(fmt.templates()[t1].name, "compact");

    auto two = instWithOps({ir::OpClass::IntAlu,
                            ir::OpClass::Memory});
    size_t t2 = assembler.selectTemplate(two, 0);
    EXPECT_EQ(fmt.templates()[t2].name, "pair");

    auto many = instWithOps(
        {ir::OpClass::IntAlu, ir::OpClass::IntAlu,
         ir::OpClass::IntAlu, ir::OpClass::FloatAlu,
         ir::OpClass::Memory, ir::OpClass::Memory,
         ir::OpClass::Branch});
    size_t tmany = assembler.selectTemplate(many, 0);
    EXPECT_EQ(fmt.templates()[tmany].name, "half");
}

TEST(Assembler, ClassMismatchForcesBiggerTemplate)
{
    // 3221 half template has 2 int slots; 3 int ops exceed the
    // generic headroom and must escalate to full.
    InstructionFormat fmt(MachineDesc::fromName("3221"));
    Assembler assembler(fmt);
    auto three_int = instWithOps({ir::OpClass::IntAlu,
                                  ir::OpClass::IntAlu,
                                  ir::OpClass::IntAlu});
    size_t t = assembler.selectTemplate(three_int, 0);
    EXPECT_EQ(fmt.templates()[t].name, "full");
}

TEST(Assembler, MultiNopAbsorbsTrailingEmptyCycles)
{
    InstructionFormat fmt(MachineDesc::fromName("1111"));
    Assembler assembler(fmt);

    compiler::ScheduledBlock block;
    block.insts.push_back(instWithOps({ir::OpClass::IntAlu}));
    // Three empty cycles: free via the multi-no-op field.
    block.insts.push_back({});
    block.insts.push_back({});
    block.insts.push_back({});
    auto with_nops = assembler.assembleBlock(block, false);

    compiler::ScheduledBlock plain;
    plain.insts.push_back(instWithOps({ir::OpClass::IntAlu}));
    auto without = assembler.assembleBlock(plain, false);

    EXPECT_EQ(with_nops.sizeBytes, without.sizeBytes);
}

TEST(Assembler, ExcessNopsCostExplicitInstructions)
{
    InstructionFormat fmt(MachineDesc::fromName("1111"));
    Assembler assembler(fmt);
    compiler::ScheduledBlock block;
    block.insts.push_back(instWithOps({ir::OpClass::IntAlu}));
    for (int i = 0; i < 5; ++i)
        block.insts.push_back({}); // 3 free + 2 explicit
    auto out = assembler.assembleBlock(block, false);
    uint32_t nop_bytes = fmt.templates().front().bytes();
    compiler::ScheduledBlock plain;
    plain.insts.push_back(instWithOps({ir::OpClass::IntAlu}));
    auto base = assembler.assembleBlock(plain, false);
    EXPECT_EQ(out.sizeBytes, base.sizeBytes + 2 * nop_bytes);
}

TEST(Assembler, LeadingNopsAreExplicit)
{
    InstructionFormat fmt(MachineDesc::fromName("1111"));
    Assembler assembler(fmt);
    compiler::ScheduledBlock block;
    block.insts.push_back({});
    block.insts.push_back(instWithOps({ir::OpClass::IntAlu}));
    auto out = assembler.assembleBlock(block, false);
    EXPECT_EQ(out.encodedInsts, 2u);
}

TEST(Assembler, WholeProgramObjectParallelsIr)
{
    workloads::AppSpec spec;
    spec.seed = 11;
    auto prog = workloads::buildProgram(spec);
    compiler::Scheduler sched;
    auto mdes = MachineDesc::fromName("2111");
    auto sp = sched.schedule(prog, mdes);
    InstructionFormat fmt(mdes);
    Assembler assembler(fmt);
    auto object = assembler.assemble(prog, sp);

    ASSERT_EQ(object.functions.size(), prog.functions.size());
    EXPECT_EQ(object.machineName, "2111");
    for (size_t f = 0; f < object.functions.size(); ++f) {
        ASSERT_EQ(object.functions[f].blocks.size(),
                  prog.functions[f].blocks.size());
        for (const auto &blk : object.functions[f].blocks) {
            EXPECT_GT(blk.sizeBytes, 0u);
            EXPECT_EQ(blk.sizeBytes % 4, 0u);
        }
    }
    EXPECT_GT(object.rawTextSize(), 0u);
}

TEST(Assembler, BranchTargetFlagPropagates)
{
    workloads::AppSpec spec;
    spec.seed = 12;
    auto prog = workloads::buildProgram(spec);
    compiler::Scheduler sched;
    auto mdes = MachineDesc::fromName("1111");
    auto sp = sched.schedule(prog, mdes);
    InstructionFormat fmt(mdes);
    Assembler assembler(fmt);
    auto object = assembler.assemble(prog, sp);
    for (size_t f = 0; f < object.functions.size(); ++f) {
        for (size_t b = 0; b < object.functions[f].blocks.size();
             ++b) {
            EXPECT_EQ(object.functions[f].blocks[b].isBranchTarget,
                      prog.functions[f].blocks[b].isBranchTarget);
        }
    }
}

} // namespace
} // namespace pico::isa
