/**
 * @file
 * Tests for the serving layer: wire protocol, the evaluation service
 * (admission control, deadlines, idempotency, failure isolation,
 * graceful drain), the socket transport, and a deterministic chaos
 * test over the whole stack.
 *
 * The chaos test is watchdog-bounded: test_server is registered with
 * a ctest TIMEOUT, so a deadlock fails the suite instead of hanging
 * CI forever.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/Client.hpp"
#include "server/EvalService.hpp"
#include "server/Protocol.hpp"
#include "server/Server.hpp"
#include "support/Backoff.hpp"
#include "support/FaultInjection.hpp"
#include "support/FlightRecorder.hpp"
#include "support/TraceEvents.hpp"
#include "verify/ResultVerifier.hpp"

namespace pico
{
namespace
{

using server::EvalService;
using server::Request;
using server::Response;
using server::ServiceOptions;
using server::Status;

/** Service options small enough for fast tests. */
ServiceOptions
fastOptions()
{
    ServiceOptions opts;
    opts.workers = 2;
    opts.queueCapacity = 8;
    opts.queueWatermark = 4;
    opts.drainDeadlineMs = 5000;
    return opts;
}

/** A cheap but real evaluation request. */
Request
smallEval(const std::string &machines = "1111")
{
    Request req;
    req.app = "rasta";
    req.machines = machines;
    req.traceBlocks = 1500;
    return req;
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

// ---------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------

TEST(Protocol, RequestRoundTrip)
{
    Request req;
    req.type = "eval";
    req.app = "epic";
    req.machines = "1111,2211";
    req.traceBlocks = 1234;
    req.deadlineMs = 500;
    req.key = "custom-key";
    Request out;
    std::string error;
    ASSERT_TRUE(server::decodeRequest(server::encodeRequest(req), out,
                                      error))
        << error;
    EXPECT_EQ(out.type, "eval");
    EXPECT_EQ(out.app, "epic");
    EXPECT_EQ(out.machines, "1111,2211");
    EXPECT_EQ(out.traceBlocks, 1234u);
    EXPECT_EQ(out.deadlineMs, 500u);
    EXPECT_EQ(out.key, "custom-key");
}

TEST(Protocol, ResponseRoundTrip)
{
    Response resp;
    resp.status = Status::Shed;
    resp.error = "queue at watermark";
    resp.retryAfterMs = 25;
    resp.values["designs.evaluated"] = 3;
    resp.values["machine.1111.dilation"] = 1.25;
    Response out;
    std::string error;
    ASSERT_TRUE(server::decodeResponse(server::encodeResponse(resp),
                                       out, error))
        << error;
    EXPECT_EQ(out.status, Status::Shed);
    EXPECT_EQ(out.error, "queue at watermark");
    EXPECT_EQ(out.retryAfterMs, 25u);
    EXPECT_DOUBLE_EQ(out.values["designs.evaluated"], 3.0);
    EXPECT_DOUBLE_EQ(out.values["machine.1111.dilation"], 1.25);
}

TEST(Protocol, AllStatusesRoundTrip)
{
    for (Status s :
         {Status::Ok, Status::Shed, Status::DeadlineExceeded,
          Status::Failed, Status::BadRequest}) {
        Response resp;
        resp.status = s;
        Response out;
        std::string error;
        ASSERT_TRUE(server::decodeResponse(
            server::encodeResponse(resp), out, error));
        EXPECT_EQ(out.status, s) << server::statusName(s);
    }
}

TEST(Protocol, RejectsWrongVersionTag)
{
    Request req;
    std::string error;
    EXPECT_FALSE(
        server::decodeRequest("picoeval-req-v9\napp rasta\n", req,
                              error));
    EXPECT_FALSE(error.empty());
    Response resp;
    EXPECT_FALSE(server::decodeResponse("garbage", resp, error));
}

TEST(Protocol, SkipsUnknownKeysForForwardCompatibility)
{
    std::string payload = server::encodeRequest(Request{});
    payload += "some_future_field 42\n";
    Request out;
    std::string error;
    EXPECT_TRUE(server::decodeRequest(payload, out, error)) << error;
}

TEST(Protocol, IdempotencyKeyDerivedFromRequestFields)
{
    Request a = smallEval();
    Request b = smallEval();
    EXPECT_EQ(a.idempotencyKey(), b.idempotencyKey());
    b.machines = "2211";
    EXPECT_NE(a.idempotencyKey(), b.idempotencyKey());
    b.key = "pinned";
    EXPECT_EQ(b.idempotencyKey(), "pinned");
}

TEST(Protocol, RequestIdAndBodyRoundTrip)
{
    Request req = smallEval();
    req.requestId = 987654321;
    Request req_out;
    std::string error;
    ASSERT_TRUE(server::decodeRequest(server::encodeRequest(req),
                                      req_out, error))
        << error;
    EXPECT_EQ(req_out.requestId, 987654321u);
    // request_id is omitted from the wire when unset.
    EXPECT_EQ(server::encodeRequest(smallEval()).find("request_id"),
              std::string::npos);

    Response resp;
    resp.body = "{\"kind\":\"fault\"}";
    Response resp_out;
    ASSERT_TRUE(server::decodeResponse(server::encodeResponse(resp),
                                       resp_out, error))
        << error;
    EXPECT_EQ(resp_out.body, "{\"kind\":\"fault\"}");
    // A body with embedded newlines is flattened, like the error.
    resp.body = "two\nlines";
    ASSERT_TRUE(server::decodeResponse(server::encodeResponse(resp),
                                       resp_out, error));
    EXPECT_EQ(resp_out.body, "two lines");
}

// ---------------------------------------------------------------
// EvalService
// ---------------------------------------------------------------

TEST(EvalService, PingReportsNotDraining)
{
    EvalService service(fastOptions());
    Request req;
    req.type = "ping";
    Response resp = service.call(req);
    EXPECT_EQ(resp.status, Status::Ok);
    EXPECT_DOUBLE_EQ(resp.values["draining"], 0.0);
}

TEST(EvalService, UnknownTypeIsBadRequest)
{
    EvalService service(fastOptions());
    Request req;
    req.type = "frobnicate";
    EXPECT_EQ(service.call(req).status, Status::BadRequest);
}

TEST(EvalService, EvaluatesAndMemoizesIdempotentRetries)
{
    EvalService service(fastOptions());
    Request req = smallEval();
    Response first = service.call(req);
    ASSERT_EQ(first.status, Status::Ok) << first.error;
    EXPECT_GE(first.values["designs.evaluated"], 1.0);
    EXPECT_GT(first.values["machine.1111.dilation"], 0.0);

    // The retry carries the same (derived) idempotency key: answered
    // from the memo, not re-walked.
    Response retry = service.call(req);
    EXPECT_EQ(retry.status, Status::Ok);
    EXPECT_DOUBLE_EQ(retry.values["machine.1111.dilation"],
                     first.values["machine.1111.dilation"]);
    auto stats = service.statsValues();
    EXPECT_DOUBLE_EQ(stats["memo_hits"], 1.0);
    EXPECT_DOUBLE_EQ(stats["completed"], 1.0);
}

TEST(EvalService, UnknownAppFailsWithoutKillingTheService)
{
    EvalService service(fastOptions());
    Request bad = smallEval();
    bad.app = "no-such-app";
    Response resp = service.call(bad);
    EXPECT_EQ(resp.status, Status::Failed);
    EXPECT_FALSE(resp.error.empty());
    EXPECT_EQ(service.failures().size(), 1u);
    // The failure was isolated: the next request succeeds.
    EXPECT_EQ(service.call(smallEval()).status, Status::Ok);
}

TEST(EvalService, WorkerFaultIsIsolatedToOneRequest)
{
    EvalService service(fastOptions());
    support::ScopedFault fault("EvalService::execute", 0, 1);
    Response faulted = service.call(smallEval());
    EXPECT_EQ(faulted.status, Status::Failed);
    Response ok = service.call(smallEval("2111"));
    EXPECT_EQ(ok.status, Status::Ok) << ok.error;
}

TEST(EvalService, ShedsAtWatermarkUnderBurst)
{
    ServiceOptions opts = fastOptions();
    opts.workers = 1;
    opts.queueCapacity = 2;
    opts.queueWatermark = 1;
    opts.chaosSlowMs = 400;
    EvalService service(opts);
    // Stall every execution: the burst below must pile up.
    support::ScopedFault slow("EvalService::execute:slow", 0, 0);

    const int kCallers = 5;
    std::atomic<int> shed{0}, terminal{0};
    std::vector<std::thread> callers;
    for (int i = 0; i < kCallers; ++i) {
        callers.emplace_back([&, i] {
            Request req = smallEval();
            req.key = "burst-" + std::to_string(i); // distinct keys
            Response resp = service.call(req);
            terminal.fetch_add(1);
            if (resp.status == Status::Shed) {
                shed.fetch_add(1);
                EXPECT_GT(resp.retryAfterMs, 0u);
            }
        });
    }
    for (auto &t : callers)
        t.join();
    // One running + one queued; with a 400 ms stall the rest of the
    // burst must shed. Every caller still got a terminal answer.
    EXPECT_EQ(terminal.load(), kCallers);
    EXPECT_GE(shed.load(), kCallers - 2);
    EXPECT_GE(service.statsValues()["shed"], 1.0);
}

TEST(EvalService, DeadlineExceededReturnsPartialTaggedResponse)
{
    ServiceOptions opts = fastOptions();
    opts.workers = 1;
    opts.chaosSlowMs = 200;
    EvalService service(opts);
    // The stall consumes the whole 50 ms deadline before the walk
    // starts: deterministic deadline_exceeded.
    support::ScopedFault slow("EvalService::execute:slow", 0, 0);
    Request req = smallEval();
    req.deadlineMs = 50;
    Response resp = service.call(req);
    EXPECT_EQ(resp.status, Status::DeadlineExceeded);
    EXPECT_FALSE(resp.error.empty());
    EXPECT_DOUBLE_EQ(service.statsValues()["deadline"], 1.0);
}

TEST(EvalService, DeadlineFiredWhileQueuedNeverStartsTheWalk)
{
    // The admission/pickup window: a request whose token fires while
    // it sits in the queue must be answered DeadlineExceeded at
    // pickup *without* starting a walk. One worker, pinned down by a
    // long chaos stall on another request, guarantees the victim
    // outlives its deadline in the queue.
    ServiceOptions opts = fastOptions();
    opts.workers = 1;
    opts.chaosSlowMs = 300;
    EvalService service(opts);
    support::ScopedFault slow("EvalService::execute:slow", 0, 0);

    std::thread occupant([&] {
        Request req = smallEval();
        req.key = "occupant";
        service.call(req); // pins the only worker for ~300 ms
    });
    support::sleepForMs(50); // let the occupant reach the worker

    Request victim = smallEval();
    victim.key = "queued-victim";
    victim.deadlineMs = 30; // expires long before worker pickup
    Response resp = service.call(victim);
    occupant.join();

    EXPECT_EQ(resp.status, Status::DeadlineExceeded);
    EXPECT_FALSE(resp.error.empty());
    // The walk never started: no evaluation results, only the
    // request id the admitting side stamped.
    EXPECT_EQ(resp.values.count("designs.evaluated"), 0u);
    EXPECT_EQ(resp.values.count("request.id"), 1u);
    EXPECT_GE(service.statsValues()["deadline"], 1.0);
}

TEST(EvalService, DeadlineWorkIsCachedForTheRetry)
{
    std::string cache_path = tempPath("deadline_cache.db");
    std::remove(cache_path.c_str());
    ServiceOptions opts = fastOptions();
    opts.cachePath = cache_path;
    EvalService service(opts);

    // Evaluate one design fully, then ask for a superset with an
    // already-expired deadline: the walk cancels, but the completed
    // design's metrics are already in the shared cache.
    ASSERT_EQ(service.call(smallEval("1111")).status, Status::Ok);
    uint64_t computed_before = service.cache().stats().computed;
    EXPECT_GT(computed_before, 0u);

    Request rushed = smallEval("1111,2111,2211");
    rushed.deadlineMs = 1;
    support::sleepForMs(5); // ensure the deadline has passed
    Response resp = service.call(rushed);
    EXPECT_EQ(resp.status, Status::DeadlineExceeded);

    // A later identical request without the deadline reuses the
    // cached computations (cache hits, not recomputation).
    Response full = service.call(smallEval("1111,2111,2211"));
    EXPECT_EQ(full.status, Status::Ok) << full.error;
    EXPECT_GT(service.cache().stats().hits, 0u);
    std::remove(cache_path.c_str());
}

TEST(EvalService, DrainAnswersEveryWaiterAndIsIdempotent)
{
    ServiceOptions opts = fastOptions();
    opts.workers = 1;
    opts.chaosSlowMs = 300;
    EvalService service(opts);
    support::ScopedFault slow("EvalService::execute:slow", 0, 0);

    std::atomic<int> answered{0};
    std::vector<std::thread> callers;
    for (int i = 0; i < 3; ++i) {
        callers.emplace_back([&, i] {
            Request req = smallEval();
            req.key = "drain-" + std::to_string(i);
            service.call(req);
            answered.fetch_add(1);
        });
    }
    support::sleepForMs(50); // let the burst get admitted
    // Tiny drain deadline: in-flight work is cancelled, queued work
    // is shed — but every caller must still get an answer.
    bool graceful = service.drain(1);
    for (auto &t : callers)
        t.join();
    EXPECT_EQ(answered.load(), 3);
    EXPECT_TRUE(service.draining());
    // Idempotent: the second drain returns the recorded verdict.
    EXPECT_EQ(service.drain(1000), graceful);
    // Post-drain calls shed instead of hanging.
    EXPECT_EQ(service.call(smallEval()).status, Status::Shed);
}

// ---------------------------------------------------------------
// Introspection verbs: stats, health, dump-trace
// ---------------------------------------------------------------

TEST(Introspection, StatsReportsPerVerbLatencies)
{
    EvalService service(fastOptions());
    ASSERT_EQ(service.call(smallEval()).status, Status::Ok);
    Request ping;
    ping.type = "ping";
    service.call(ping);

    Request stats;
    stats.type = "stats";
    // A verb's latency is recorded after its response is built, so
    // the first stats response cannot include its own sample...
    Response first = service.call(stats);
    ASSERT_EQ(first.status, Status::Ok);
    EXPECT_DOUBLE_EQ(first.values["verb.stats.count"], 0.0);
    EXPECT_DOUBLE_EQ(first.values["verb.eval.count"], 1.0);
    EXPECT_DOUBLE_EQ(first.values["verb.ping.count"], 1.0);
    EXPECT_GT(first.values["verb.eval.p50_ns"], 0.0);
    EXPECT_GE(first.values["verb.eval.p99_ns"],
              first.values["verb.eval.p50_ns"]);
    // ...but the second one sees the first.
    Response second = service.call(stats);
    EXPECT_DOUBLE_EQ(second.values["verb.stats.count"], 1.0);
    EXPECT_GT(second.values["verb.stats.p50_ns"], 0.0);
    // The per-shard cache split sums to the aggregate counters.
    double shard_hits = 0, shard_misses = 0;
    for (int s = 0; s < 16; ++s) {
        char name[48];
        std::snprintf(name, sizeof(name), "cache.shard%02d.hits", s);
        shard_hits += second.values[name];
        std::snprintf(name, sizeof(name), "cache.shard%02d.misses",
                      s);
        shard_misses += second.values[name];
    }
    EXPECT_DOUBLE_EQ(shard_hits, second.values["cache.hits"]);
    EXPECT_DOUBLE_EQ(shard_misses, second.values["cache.misses"]);
}

TEST(Introspection, HealthReportsOccupancyAndLastFault)
{
    EvalService service(fastOptions());
    Request health;
    health.type = "health";
    Response fresh = service.call(health);
    ASSERT_EQ(fresh.status, Status::Ok);
    EXPECT_DOUBLE_EQ(fresh.values["draining"], 0.0);
    EXPECT_DOUBLE_EQ(fresh.values["queue.depth"], 0.0);
    EXPECT_DOUBLE_EQ(fresh.values["queue.occupancy"], 0.0);
    EXPECT_DOUBLE_EQ(fresh.values["failures"], 0.0);
    EXPECT_TRUE(fresh.body.empty());

    Request bad = smallEval();
    bad.app = "no-such-app";
    ASSERT_EQ(service.call(bad).status, Status::Failed);
    Response after = service.call(health);
    EXPECT_DOUBLE_EQ(after.values["failures"], 1.0);
    // The last-fault record travels as a JSON body.
    EXPECT_NE(after.body.find("\"stage\":\"execute\""),
              std::string::npos);
    EXPECT_NE(after.body.find("no-such-app"), std::string::npos);
}

TEST(Introspection, DumpTraceReconstructsOneRequestAcrossThreads)
{
    support::TraceRecorder::instance().clear();
    support::setTraceEnabled(true);
    {
        EvalService service(fastOptions());
        Response eval = service.call(smallEval());
        ASSERT_EQ(eval.status, Status::Ok) << eval.error;
        const uint64_t rid =
            static_cast<uint64_t>(eval.values["request.id"]);
        ASSERT_NE(rid, 0u);

        // The span tree: the admit-side server.request span is the
        // root, and the worker-side server.execute span parents
        // under it — on a different thread track.
        auto events =
            support::TraceRecorder::instance().requestEvents(rid);
        uint64_t admit_span = 0, admit_tid = 0;
        uint64_t exec_parent = 0, exec_tid = 0;
        bool saw_flow_start = false, saw_flow_step = false;
        for (const auto &e : events) {
            if (e.name == "server.request") {
                admit_span = e.spanId;
                admit_tid = e.tid;
                EXPECT_EQ(e.parentSpanId, 0u);
            } else if (e.name == "server.execute") {
                exec_parent = e.parentSpanId;
                exec_tid = e.tid;
            } else if (e.phase == 's') {
                saw_flow_start = true;
            } else if (e.phase == 't') {
                saw_flow_step = true;
            }
        }
        EXPECT_NE(admit_span, 0u);
        EXPECT_EQ(exec_parent, admit_span);
        EXPECT_NE(exec_tid, admit_tid);
        EXPECT_TRUE(saw_flow_start);
        EXPECT_TRUE(saw_flow_step);

        // The dump-trace verb returns the same tree as a JSON body.
        Request dump;
        dump.type = "dump-trace";
        dump.requestId = rid;
        Response resp = service.call(dump);
        ASSERT_EQ(resp.status, Status::Ok);
        EXPECT_GE(resp.values["events"], 4.0);
        EXPECT_NE(resp.body.find("server.request"),
                  std::string::npos);
        EXPECT_NE(resp.body.find("server.execute"),
                  std::string::npos);

        // Without a request id the verb is a usage error.
        Request bare;
        bare.type = "dump-trace";
        EXPECT_EQ(service.call(bare).status, Status::BadRequest);
    }
    support::setTraceEnabled(false);
    support::TraceRecorder::instance().clear();
}

// ---------------------------------------------------------------
// Flight recorder integration and drain-snapshot stability
// ---------------------------------------------------------------

TEST(FlightRecorderIntegration, DumpNamesShedAndFaultedRequestIds)
{
    support::FlightRecorder::instance().resetForTest();
    EvalService service(fastOptions());

    support::ScopedFault fault("EvalService::execute", 0, 1);
    Response faulted = service.call(smallEval());
    ASSERT_EQ(faulted.status, Status::Failed);
    const uint64_t faulted_rid =
        static_cast<uint64_t>(faulted.values["request.id"]);
    ASSERT_NE(faulted_rid, 0u);

    ASSERT_TRUE(service.drain(5000));
    Request late = smallEval("2111");
    Response shed = service.call(late);
    ASSERT_EQ(shed.status, Status::Shed);
    const uint64_t shed_rid =
        static_cast<uint64_t>(shed.values["request.id"]);
    ASSERT_NE(shed_rid, 0u);

    bool saw_fault = false, saw_shed = false;
    bool saw_drain_begin = false, saw_drain_end = false;
    for (const auto &e :
         support::FlightRecorder::instance().snapshot()) {
        using EK = support::FlightRecorder::EventKind;
        if (e.kind == EK::Fault && e.requestId == faulted_rid)
            saw_fault = true;
        if (e.kind == EK::Shed && e.requestId == shed_rid &&
            e.detail == "draining")
            saw_shed = true;
        if (e.kind == EK::Drain && e.detail == "begin")
            saw_drain_begin = true;
        if (e.kind == EK::Drain && e.detail == "graceful")
            saw_drain_end = true;
    }
    EXPECT_TRUE(saw_fault);
    EXPECT_TRUE(saw_shed);
    EXPECT_TRUE(saw_drain_begin);
    EXPECT_TRUE(saw_drain_end);
}

TEST(Drain, StatsSnapshotIsStableAfterDrain)
{
    EvalService service(fastOptions());
    ASSERT_EQ(service.call(smallEval()).status, Status::Ok);
    service.call(smallEval());                        // memo hit
    support::ScopedFault fault("EvalService::execute", 0, 1);
    service.call(smallEval("2111"));                  // failed
    ASSERT_TRUE(service.drain(5000));

    // A drain-time report must be a quiescent snapshot: every
    // counter settled (workers joined before drain returns), the
    // queue empty, and the lifecycle identity exact.
    auto snap = service.statsValues();
    EXPECT_DOUBLE_EQ(snap["queue.depth"], 0.0);
    EXPECT_DOUBLE_EQ(snap["inflight"], 0.0);
    EXPECT_DOUBLE_EQ(snap["draining"], 1.0);
    EXPECT_DOUBLE_EQ(snap["requests.total"],
                     snap["memo_hits"] + snap["shed"] +
                         snap["completed"] + snap["deadline"] +
                         snap["failed"]);
    EXPECT_DOUBLE_EQ(snap["accepted"],
                     snap["completed"] + snap["deadline"] +
                         snap["failed"]);
    // Re-reading changes nothing: the snapshot is reproducible.
    auto again = service.statsValues();
    EXPECT_EQ(snap.size(), again.size());
    for (const auto &[k, v] : snap)
        EXPECT_DOUBLE_EQ(again[k], v) << k;
}

TEST(Drain, ConcurrentIntrospectionSurvivesDrainAndChaos)
{
    ServiceOptions opts = fastOptions();
    opts.chaosSlowMs = 20;
    EvalService service(opts);
    support::ScopedFault f1("EvalService::execute", 1, 3);
    support::ScopedFault f2("EvalService::execute:slow", 2, 0);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> samples{0};
    std::atomic<int> violations{0};
    // Two threads hammer the introspection verbs for the whole run,
    // across the drain transition: no deadlock (the ctest watchdog
    // is the backstop) and monotonic counters even mid-chaos.
    std::vector<std::thread> watchers;
    for (int w = 0; w < 2; ++w) {
        watchers.emplace_back([&] {
            const char *keys[] = {"requests.total", "shed",
                                  "completed", "failed", "deadline",
                                  "memo_hits", "accepted"};
            std::map<std::string, double> prev;
            while (!stop.load()) {
                Request stats;
                stats.type = "stats";
                Response resp = service.call(stats);
                if (resp.status != Status::Ok) {
                    violations.fetch_add(1);
                    continue;
                }
                for (const char *k : keys) {
                    if (prev.count(k) && resp.values[k] < prev[k])
                        violations.fetch_add(1);
                    prev[k] = resp.values[k];
                }
                Request health;
                health.type = "health";
                if (service.call(health).status != Status::Ok)
                    violations.fetch_add(1);
                samples.fetch_add(1);
            }
        });
    }

    std::vector<std::thread> callers;
    for (int t = 0; t < 3; ++t) {
        callers.emplace_back([&, t] {
            const char *machines[] = {"1111", "2111", "2211"};
            for (int r = 0; r < 4; ++r) {
                Request req = smallEval(machines[(t + r) % 3]);
                req.key = "chaos-" + std::to_string(t) + "-" +
                          std::to_string(r);
                req.deadlineMs = 2000;
                service.call(req);
            }
        });
    }
    for (auto &t : callers)
        t.join();
    service.drain(5000);
    // The drain state is immediately visible to a watcher.
    Request health;
    health.type = "health";
    Response post = service.call(health);
    EXPECT_DOUBLE_EQ(post.values["draining"], 1.0);
    stop.store(true);
    for (auto &t : watchers)
        t.join();
    EXPECT_GT(samples.load(), 0u);
    EXPECT_EQ(violations.load(), 0);
}

// ---------------------------------------------------------------
// Socket transport
// ---------------------------------------------------------------

TEST(ServerSocket, RoundTripOverUnixSocket)
{
    std::string sock = tempPath("picoeval_rt.sock");
    EvalService service(fastOptions());
    server::Server srv(sock, &service);
    std::thread accept_thread([&] { srv.run(); });

    server::ClientOptions copts;
    copts.socketPath = sock;
    server::Client client(copts);

    Request ping;
    ping.type = "ping";
    EXPECT_EQ(client.call(ping).status, Status::Ok);

    Response eval = client.call(smallEval());
    EXPECT_EQ(eval.status, Status::Ok) << eval.error;
    EXPECT_GT(eval.values["machine.1111.dilation"], 0.0);

    srv.stop();
    accept_thread.join();
}

TEST(ServerSocket, ClientGivesUpCleanlyWhenServerAbsent)
{
    server::ClientOptions copts;
    copts.socketPath = tempPath("no_such_server.sock");
    copts.maxAttempts = 3;
    copts.backoffBaseMs = 1;
    copts.backoffCapMs = 2;
    server::Client client(copts);
    Response resp = client.call(smallEval());
    EXPECT_EQ(resp.status, Status::Shed);
    EXPECT_EQ(client.retries(), 2u); // attempts - 1
    // The retry count splits by cause: with no server, every retry
    // (and every attempt) is a transport failure, not real shedding.
    EXPECT_EQ(client.retriesTransport(), 2u);
    EXPECT_EQ(client.retriesShed(), 0u);
    EXPECT_EQ(client.retriesShed() + client.retriesTransport(),
              client.retries());
    EXPECT_EQ(client.transportFailures(), 3u); // one per attempt
    EXPECT_EQ(client.shedSeen(), 0u);
}

// ---------------------------------------------------------------
// Chaos: the whole service under deterministic fault injection
// ---------------------------------------------------------------

TEST(Chaos, ServiceSurvivesFaultStormWithoutCorruptionOrDeadlock)
{
    std::string cache_path = tempPath("chaos_cache.db");
    std::remove(cache_path.c_str());
    support::FlightRecorder::instance().resetForTest();

    ServiceOptions opts = fastOptions();
    opts.cachePath = cache_path;
    opts.workers = 2;
    opts.queueCapacity = 4;
    opts.queueWatermark = 3;
    opts.chaosSlowMs = 30;
    uint64_t shed_count = 0, failed_count = 0;
    {
        EvalService service(opts);
        // Deterministic fault storm: worker exceptions, slow
        // executions, cache-write failures and per-design faults.
        support::ScopedFault f1("EvalService::execute", 2, 3);
        support::ScopedFault f2("EvalService::execute:slow", 1, 0);
        support::ScopedFault f3(
            "EvaluationCache::save:before-write", 0, 2);
        support::ScopedFault f4("Spacewalker::evaluateDesign", 4, 2);

        const int kThreads = 4, kRequests = 6;
        std::atomic<uint64_t> answered{0};
        std::mutex trouble_mutex;
        std::vector<std::pair<uint64_t, Status>> troubled;
        std::vector<std::thread> callers;
        for (int t = 0; t < kThreads; ++t) {
            callers.emplace_back([&, t] {
                const char *machines[] = {"1111", "2111", "2211"};
                for (int r = 0; r < kRequests; ++r) {
                    Request req =
                        smallEval(machines[(t + r) % 3]);
                    req.deadlineMs = 2000;
                    Response resp = service.call(req);
                    // Terminal statuses only — never a hang, never
                    // an unanswerable state.
                    EXPECT_NE(resp.status, Status::BadRequest);
                    answered.fetch_add(1);
                    if (resp.status == Status::Shed ||
                        resp.status == Status::Failed) {
                        std::lock_guard<std::mutex> lock(
                            trouble_mutex);
                        troubled.emplace_back(
                            static_cast<uint64_t>(
                                resp.values["request.id"]),
                            resp.status);
                    }
                }
            });
        }
        for (auto &t : callers)
            t.join();
        EXPECT_EQ(answered.load(),
                  static_cast<uint64_t>(kThreads * kRequests));

        // Post-mortem contract: the flight dump names the request id
        // of every shed and every faulted request of the storm.
        auto flight = support::FlightRecorder::instance().snapshot();
        for (const auto &[rid, status] : troubled) {
            using EK = support::FlightRecorder::EventKind;
            EK want = status == Status::Shed ? EK::Shed : EK::Fault;
            bool named = false;
            for (const auto &e : flight) {
                if (e.requestId == rid && e.kind == want) {
                    named = true;
                    break;
                }
            }
            EXPECT_TRUE(named)
                << "request " << rid << " ("
                << server::statusName(status)
                << ") missing from the flight dump";
        }

        // Counter conservation: every accepted request reached
        // exactly one terminal state.
        auto stats = service.statsValues();
        EXPECT_DOUBLE_EQ(stats["completed"] + stats["deadline"] +
                             stats["failed"],
                         stats["accepted"]);
        // Backpressure honored even mid-chaos.
        EXPECT_LE(stats["queue.peak"], stats["queue.watermark"]);
        shed_count = static_cast<uint64_t>(stats["shed"]);
        failed_count = static_cast<uint64_t>(stats["failed"]);
        EXPECT_GT(failed_count, 0u); // the storm really fired

        EXPECT_TRUE(service.drain(5000));
    } // destructor re-drains (idempotent) and flushes

    // The injected cache-write faults must not have corrupted the
    // database: it reloads verifier-clean.
    verify::Diagnostics diags;
    verify::verifyCacheFile(cache_path, diags);
    EXPECT_TRUE(diags.clean()) << diags.report();
    (void)shed_count;
    std::remove(cache_path.c_str());
}

} // namespace
} // namespace pico
