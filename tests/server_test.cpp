/**
 * @file
 * Tests for the serving layer: wire protocol, the evaluation service
 * (admission control, deadlines, idempotency, failure isolation,
 * graceful drain), the socket transport, and a deterministic chaos
 * test over the whole stack.
 *
 * The chaos test is watchdog-bounded: test_server is registered with
 * a ctest TIMEOUT, so a deadlock fails the suite instead of hanging
 * CI forever.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "server/Client.hpp"
#include "server/EvalService.hpp"
#include "server/Protocol.hpp"
#include "server/Server.hpp"
#include "support/Backoff.hpp"
#include "support/FaultInjection.hpp"
#include "verify/ResultVerifier.hpp"

namespace pico
{
namespace
{

using server::EvalService;
using server::Request;
using server::Response;
using server::ServiceOptions;
using server::Status;

/** Service options small enough for fast tests. */
ServiceOptions
fastOptions()
{
    ServiceOptions opts;
    opts.workers = 2;
    opts.queueCapacity = 8;
    opts.queueWatermark = 4;
    opts.drainDeadlineMs = 5000;
    return opts;
}

/** A cheap but real evaluation request. */
Request
smallEval(const std::string &machines = "1111")
{
    Request req;
    req.app = "rasta";
    req.machines = machines;
    req.traceBlocks = 1500;
    return req;
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

// ---------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------

TEST(Protocol, RequestRoundTrip)
{
    Request req;
    req.type = "eval";
    req.app = "epic";
    req.machines = "1111,2211";
    req.traceBlocks = 1234;
    req.deadlineMs = 500;
    req.key = "custom-key";
    Request out;
    std::string error;
    ASSERT_TRUE(server::decodeRequest(server::encodeRequest(req), out,
                                      error))
        << error;
    EXPECT_EQ(out.type, "eval");
    EXPECT_EQ(out.app, "epic");
    EXPECT_EQ(out.machines, "1111,2211");
    EXPECT_EQ(out.traceBlocks, 1234u);
    EXPECT_EQ(out.deadlineMs, 500u);
    EXPECT_EQ(out.key, "custom-key");
}

TEST(Protocol, ResponseRoundTrip)
{
    Response resp;
    resp.status = Status::Shed;
    resp.error = "queue at watermark";
    resp.retryAfterMs = 25;
    resp.values["designs.evaluated"] = 3;
    resp.values["machine.1111.dilation"] = 1.25;
    Response out;
    std::string error;
    ASSERT_TRUE(server::decodeResponse(server::encodeResponse(resp),
                                       out, error))
        << error;
    EXPECT_EQ(out.status, Status::Shed);
    EXPECT_EQ(out.error, "queue at watermark");
    EXPECT_EQ(out.retryAfterMs, 25u);
    EXPECT_DOUBLE_EQ(out.values["designs.evaluated"], 3.0);
    EXPECT_DOUBLE_EQ(out.values["machine.1111.dilation"], 1.25);
}

TEST(Protocol, AllStatusesRoundTrip)
{
    for (Status s :
         {Status::Ok, Status::Shed, Status::DeadlineExceeded,
          Status::Failed, Status::BadRequest}) {
        Response resp;
        resp.status = s;
        Response out;
        std::string error;
        ASSERT_TRUE(server::decodeResponse(
            server::encodeResponse(resp), out, error));
        EXPECT_EQ(out.status, s) << server::statusName(s);
    }
}

TEST(Protocol, RejectsWrongVersionTag)
{
    Request req;
    std::string error;
    EXPECT_FALSE(
        server::decodeRequest("picoeval-req-v9\napp rasta\n", req,
                              error));
    EXPECT_FALSE(error.empty());
    Response resp;
    EXPECT_FALSE(server::decodeResponse("garbage", resp, error));
}

TEST(Protocol, SkipsUnknownKeysForForwardCompatibility)
{
    std::string payload = server::encodeRequest(Request{});
    payload += "some_future_field 42\n";
    Request out;
    std::string error;
    EXPECT_TRUE(server::decodeRequest(payload, out, error)) << error;
}

TEST(Protocol, IdempotencyKeyDerivedFromRequestFields)
{
    Request a = smallEval();
    Request b = smallEval();
    EXPECT_EQ(a.idempotencyKey(), b.idempotencyKey());
    b.machines = "2211";
    EXPECT_NE(a.idempotencyKey(), b.idempotencyKey());
    b.key = "pinned";
    EXPECT_EQ(b.idempotencyKey(), "pinned");
}

// ---------------------------------------------------------------
// EvalService
// ---------------------------------------------------------------

TEST(EvalService, PingReportsNotDraining)
{
    EvalService service(fastOptions());
    Request req;
    req.type = "ping";
    Response resp = service.call(req);
    EXPECT_EQ(resp.status, Status::Ok);
    EXPECT_DOUBLE_EQ(resp.values["draining"], 0.0);
}

TEST(EvalService, UnknownTypeIsBadRequest)
{
    EvalService service(fastOptions());
    Request req;
    req.type = "frobnicate";
    EXPECT_EQ(service.call(req).status, Status::BadRequest);
}

TEST(EvalService, EvaluatesAndMemoizesIdempotentRetries)
{
    EvalService service(fastOptions());
    Request req = smallEval();
    Response first = service.call(req);
    ASSERT_EQ(first.status, Status::Ok) << first.error;
    EXPECT_GE(first.values["designs.evaluated"], 1.0);
    EXPECT_GT(first.values["machine.1111.dilation"], 0.0);

    // The retry carries the same (derived) idempotency key: answered
    // from the memo, not re-walked.
    Response retry = service.call(req);
    EXPECT_EQ(retry.status, Status::Ok);
    EXPECT_DOUBLE_EQ(retry.values["machine.1111.dilation"],
                     first.values["machine.1111.dilation"]);
    auto stats = service.statsValues();
    EXPECT_DOUBLE_EQ(stats["memo_hits"], 1.0);
    EXPECT_DOUBLE_EQ(stats["completed"], 1.0);
}

TEST(EvalService, UnknownAppFailsWithoutKillingTheService)
{
    EvalService service(fastOptions());
    Request bad = smallEval();
    bad.app = "no-such-app";
    Response resp = service.call(bad);
    EXPECT_EQ(resp.status, Status::Failed);
    EXPECT_FALSE(resp.error.empty());
    EXPECT_EQ(service.failures().size(), 1u);
    // The failure was isolated: the next request succeeds.
    EXPECT_EQ(service.call(smallEval()).status, Status::Ok);
}

TEST(EvalService, WorkerFaultIsIsolatedToOneRequest)
{
    EvalService service(fastOptions());
    support::ScopedFault fault("EvalService::execute", 0, 1);
    Response faulted = service.call(smallEval());
    EXPECT_EQ(faulted.status, Status::Failed);
    Response ok = service.call(smallEval("2111"));
    EXPECT_EQ(ok.status, Status::Ok) << ok.error;
}

TEST(EvalService, ShedsAtWatermarkUnderBurst)
{
    ServiceOptions opts = fastOptions();
    opts.workers = 1;
    opts.queueCapacity = 2;
    opts.queueWatermark = 1;
    opts.chaosSlowMs = 400;
    EvalService service(opts);
    // Stall every execution: the burst below must pile up.
    support::ScopedFault slow("EvalService::execute:slow", 0, 0);

    const int kCallers = 5;
    std::atomic<int> shed{0}, terminal{0};
    std::vector<std::thread> callers;
    for (int i = 0; i < kCallers; ++i) {
        callers.emplace_back([&, i] {
            Request req = smallEval();
            req.key = "burst-" + std::to_string(i); // distinct keys
            Response resp = service.call(req);
            terminal.fetch_add(1);
            if (resp.status == Status::Shed) {
                shed.fetch_add(1);
                EXPECT_GT(resp.retryAfterMs, 0u);
            }
        });
    }
    for (auto &t : callers)
        t.join();
    // One running + one queued; with a 400 ms stall the rest of the
    // burst must shed. Every caller still got a terminal answer.
    EXPECT_EQ(terminal.load(), kCallers);
    EXPECT_GE(shed.load(), kCallers - 2);
    EXPECT_GE(service.statsValues()["shed"], 1.0);
}

TEST(EvalService, DeadlineExceededReturnsPartialTaggedResponse)
{
    ServiceOptions opts = fastOptions();
    opts.workers = 1;
    opts.chaosSlowMs = 200;
    EvalService service(opts);
    // The stall consumes the whole 50 ms deadline before the walk
    // starts: deterministic deadline_exceeded.
    support::ScopedFault slow("EvalService::execute:slow", 0, 0);
    Request req = smallEval();
    req.deadlineMs = 50;
    Response resp = service.call(req);
    EXPECT_EQ(resp.status, Status::DeadlineExceeded);
    EXPECT_FALSE(resp.error.empty());
    EXPECT_DOUBLE_EQ(service.statsValues()["deadline"], 1.0);
}

TEST(EvalService, DeadlineWorkIsCachedForTheRetry)
{
    std::string cache_path = tempPath("deadline_cache.db");
    std::remove(cache_path.c_str());
    ServiceOptions opts = fastOptions();
    opts.cachePath = cache_path;
    EvalService service(opts);

    // Evaluate one design fully, then ask for a superset with an
    // already-expired deadline: the walk cancels, but the completed
    // design's metrics are already in the shared cache.
    ASSERT_EQ(service.call(smallEval("1111")).status, Status::Ok);
    uint64_t computed_before = service.cache().stats().computed;
    EXPECT_GT(computed_before, 0u);

    Request rushed = smallEval("1111,2111,2211");
    rushed.deadlineMs = 1;
    support::sleepForMs(5); // ensure the deadline has passed
    Response resp = service.call(rushed);
    EXPECT_EQ(resp.status, Status::DeadlineExceeded);

    // A later identical request without the deadline reuses the
    // cached computations (cache hits, not recomputation).
    Response full = service.call(smallEval("1111,2111,2211"));
    EXPECT_EQ(full.status, Status::Ok) << full.error;
    EXPECT_GT(service.cache().stats().hits, 0u);
    std::remove(cache_path.c_str());
}

TEST(EvalService, DrainAnswersEveryWaiterAndIsIdempotent)
{
    ServiceOptions opts = fastOptions();
    opts.workers = 1;
    opts.chaosSlowMs = 300;
    EvalService service(opts);
    support::ScopedFault slow("EvalService::execute:slow", 0, 0);

    std::atomic<int> answered{0};
    std::vector<std::thread> callers;
    for (int i = 0; i < 3; ++i) {
        callers.emplace_back([&, i] {
            Request req = smallEval();
            req.key = "drain-" + std::to_string(i);
            service.call(req);
            answered.fetch_add(1);
        });
    }
    support::sleepForMs(50); // let the burst get admitted
    // Tiny drain deadline: in-flight work is cancelled, queued work
    // is shed — but every caller must still get an answer.
    bool graceful = service.drain(1);
    for (auto &t : callers)
        t.join();
    EXPECT_EQ(answered.load(), 3);
    EXPECT_TRUE(service.draining());
    // Idempotent: the second drain returns the recorded verdict.
    EXPECT_EQ(service.drain(1000), graceful);
    // Post-drain calls shed instead of hanging.
    EXPECT_EQ(service.call(smallEval()).status, Status::Shed);
}

// ---------------------------------------------------------------
// Socket transport
// ---------------------------------------------------------------

TEST(ServerSocket, RoundTripOverUnixSocket)
{
    std::string sock = tempPath("picoeval_rt.sock");
    EvalService service(fastOptions());
    server::Server srv(sock, &service);
    std::thread accept_thread([&] { srv.run(); });

    server::ClientOptions copts;
    copts.socketPath = sock;
    server::Client client(copts);

    Request ping;
    ping.type = "ping";
    EXPECT_EQ(client.call(ping).status, Status::Ok);

    Response eval = client.call(smallEval());
    EXPECT_EQ(eval.status, Status::Ok) << eval.error;
    EXPECT_GT(eval.values["machine.1111.dilation"], 0.0);

    srv.stop();
    accept_thread.join();
}

TEST(ServerSocket, ClientGivesUpCleanlyWhenServerAbsent)
{
    server::ClientOptions copts;
    copts.socketPath = tempPath("no_such_server.sock");
    copts.maxAttempts = 3;
    copts.backoffBaseMs = 1;
    copts.backoffCapMs = 2;
    server::Client client(copts);
    Response resp = client.call(smallEval());
    EXPECT_EQ(resp.status, Status::Shed);
    EXPECT_EQ(client.retries(), 2u); // attempts - 1
}

// ---------------------------------------------------------------
// Chaos: the whole service under deterministic fault injection
// ---------------------------------------------------------------

TEST(Chaos, ServiceSurvivesFaultStormWithoutCorruptionOrDeadlock)
{
    std::string cache_path = tempPath("chaos_cache.db");
    std::remove(cache_path.c_str());

    ServiceOptions opts = fastOptions();
    opts.cachePath = cache_path;
    opts.workers = 2;
    opts.queueCapacity = 4;
    opts.queueWatermark = 3;
    opts.chaosSlowMs = 30;
    uint64_t shed_count = 0, failed_count = 0;
    {
        EvalService service(opts);
        // Deterministic fault storm: worker exceptions, slow
        // executions, cache-write failures and per-design faults.
        support::ScopedFault f1("EvalService::execute", 2, 3);
        support::ScopedFault f2("EvalService::execute:slow", 1, 0);
        support::ScopedFault f3(
            "EvaluationCache::save:before-write", 0, 2);
        support::ScopedFault f4("Spacewalker::evaluateDesign", 4, 2);

        const int kThreads = 4, kRequests = 6;
        std::atomic<uint64_t> answered{0};
        std::vector<std::thread> callers;
        for (int t = 0; t < kThreads; ++t) {
            callers.emplace_back([&, t] {
                const char *machines[] = {"1111", "2111", "2211"};
                for (int r = 0; r < kRequests; ++r) {
                    Request req =
                        smallEval(machines[(t + r) % 3]);
                    req.deadlineMs = 2000;
                    Response resp = service.call(req);
                    // Terminal statuses only — never a hang, never
                    // an unanswerable state.
                    EXPECT_NE(resp.status, Status::BadRequest);
                    answered.fetch_add(1);
                }
            });
        }
        for (auto &t : callers)
            t.join();
        EXPECT_EQ(answered.load(),
                  static_cast<uint64_t>(kThreads * kRequests));

        // Counter conservation: every accepted request reached
        // exactly one terminal state.
        auto stats = service.statsValues();
        EXPECT_DOUBLE_EQ(stats["completed"] + stats["deadline"] +
                             stats["failed"],
                         stats["accepted"]);
        // Backpressure honored even mid-chaos.
        EXPECT_LE(stats["queue.peak"], stats["queue.watermark"]);
        shed_count = static_cast<uint64_t>(stats["shed"]);
        failed_count = static_cast<uint64_t>(stats["failed"]);
        EXPECT_GT(failed_count, 0u); // the storm really fired

        EXPECT_TRUE(service.drain(5000));
    } // destructor re-drains (idempotent) and flushes

    // The injected cache-write faults must not have corrupted the
    // database: it reloads verifier-clean.
    verify::Diagnostics diags;
    verify::verifyCacheFile(cache_path, diags);
    EXPECT_TRUE(diags.clean()) << diags.report();
    (void)shed_count;
    std::remove(cache_path.c_str());
}

} // namespace
} // namespace pico
