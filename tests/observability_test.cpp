/**
 * @file
 * Request-scoped observability primitives: TraceContext propagation,
 * span parentage and flow events in the TraceRecorder, the flight
 * recorder ring, and the fatal hook.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/FlightRecorder.hpp"
#include "support/Logging.hpp"
#include "support/Metrics.hpp"
#include "support/ThreadPool.hpp"
#include "support/TraceContext.hpp"
#include "support/TraceEvents.hpp"

using namespace pico;
using support::FlightRecorder;

namespace
{

/** Fresh global recorder state for each trace-focused test. */
struct TraceGuard
{
    TraceGuard()
    {
        support::TraceRecorder::instance().clear();
        support::setTraceEnabled(true);
    }
    ~TraceGuard()
    {
        support::setTraceEnabled(false);
        support::TraceRecorder::instance().clear();
    }
};

} // namespace

TEST(TraceContext, IdsAreUniqueAndNonZero)
{
    uint64_t a = support::newRequestId();
    uint64_t b = support::newRequestId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
    EXPECT_NE(support::newSpanId(), 0u);
}

TEST(TraceContext, ScopeInstallsAndRestores)
{
    EXPECT_FALSE(support::currentTraceContext().active());
    {
        support::TraceContextScope outer(
            support::TraceContext{7, 70});
        EXPECT_EQ(support::currentTraceContext().requestId, 7u);
        EXPECT_EQ(support::currentTraceContext().spanId, 70u);
        {
            support::TraceContextScope inner(
                support::TraceContext{8, 80});
            EXPECT_EQ(support::currentTraceContext().requestId, 8u);
        }
        EXPECT_EQ(support::currentTraceContext().requestId, 7u);
        EXPECT_EQ(support::currentTraceContext().spanId, 70u);
    }
    EXPECT_FALSE(support::currentTraceContext().active());
}

TEST(TraceContext, ThreadPoolPropagatesSubmitterContext)
{
    support::ThreadPool pool(2);
    std::atomic<uint64_t> seen{0};
    {
        support::TraceContextScope scope(
            support::TraceContext{42, 420});
        pool.submit([&seen] {
            seen.store(support::currentTraceContext().requestId);
        });
    }
    // The pool destructor joins after draining; spin until the task
    // ran (bounded by the test timeout).
    while (seen.load() == 0)
        std::this_thread::yield();
    EXPECT_EQ(seen.load(), 42u);
}

TEST(TraceRecorder, SpansCarryRequestIdentityAndParentage)
{
    TraceGuard guard;
    const uint64_t rid = support::newRequestId();
    {
        support::RequestSpan request(support::TraceContext{rid, 0},
                                     "outer");
        { support::TimedSpan nested("inner", "test"); }
    }
    auto events =
        support::TraceRecorder::instance().requestEvents(rid);
    ASSERT_EQ(events.size(), 2u);
    // Span events sort by start time: outer opened first.
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[1].name, "inner");
    // outer is the root; inner's parent is outer's span id.
    EXPECT_EQ(events[0].parentSpanId, 0u);
    EXPECT_EQ(events[1].parentSpanId, events[0].spanId);
    EXPECT_NE(events[0].spanId, events[1].spanId);
}

TEST(TraceRecorder, RequestTreeConnectsAcrossThreads)
{
    TraceGuard guard;
    const uint64_t rid = support::newRequestId();
    support::TraceContext handoff;
    {
        support::RequestSpan admit(support::TraceContext{rid, 0},
                                   "admit");
        support::TraceRecorder::instance().flowStart("request", rid);
        handoff = admit.context();
        std::thread worker([&handoff, rid] {
            support::RequestSpan execute(handoff, "execute");
            support::TraceRecorder::instance().flowStep("request",
                                                        rid);
        });
        worker.join();
    }
    auto events =
        support::TraceRecorder::instance().requestEvents(rid);
    // admit span + flow start + execute span + flow step.
    ASSERT_EQ(events.size(), 4u);
    uint64_t admit_span = 0, admit_tid = 0;
    uint64_t exec_parent = 0, exec_tid = 0;
    bool saw_flow_start = false, saw_flow_step = false;
    for (const auto &e : events) {
        if (e.name == "admit") {
            admit_span = e.spanId;
            admit_tid = e.tid;
        } else if (e.name == "execute") {
            exec_parent = e.parentSpanId;
            exec_tid = e.tid;
        } else if (e.phase == 's') {
            saw_flow_start = true;
        } else if (e.phase == 't') {
            saw_flow_step = true;
        }
    }
    // One connected tree spanning two thread tracks.
    EXPECT_EQ(exec_parent, admit_span);
    EXPECT_NE(exec_tid, admit_tid);
    EXPECT_TRUE(saw_flow_start);
    EXPECT_TRUE(saw_flow_step);
    // The single-request JSON dump carries all four events.
    std::string json =
        support::TraceRecorder::instance().requestJson(rid);
    EXPECT_NE(json.find("\"request\":" + std::to_string(rid)),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
}

TEST(TraceRecorder, PerThreadBufferIsBounded)
{
    TraceGuard guard;
    auto &rec = support::TraceRecorder::instance();
    const uint64_t dropped_before = rec.droppedCount();
    for (size_t i = 0;
         i < support::TraceRecorder::maxEventsPerThread + 10; ++i)
        rec.instant("e", "test");
    EXPECT_LE(rec.eventCount(),
              support::TraceRecorder::maxEventsPerThread);
    EXPECT_GE(rec.droppedCount(), dropped_before + 10);
}

TEST(FlightRecorder, RoundTripsKindsIdsAndDetails)
{
    auto &fr = FlightRecorder::instance();
    fr.resetForTest();
    fr.record(FlightRecorder::EventKind::Admit, 1);
    fr.record(FlightRecorder::EventKind::Shed, 2,
              "queue at watermark");
    fr.record(FlightRecorder::EventKind::Fault, 3,
              "this detail string is much longer than the slot can "
              "hold and must be truncated");
    auto events = fr.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, FlightRecorder::EventKind::Admit);
    EXPECT_EQ(events[0].requestId, 1u);
    EXPECT_EQ(events[1].detail, "queue at watermark");
    EXPECT_EQ(events[2].detail.size(),
              FlightRecorder::maxDetailBytes);
    // Timestamps are monotone (snapshot sorts by them).
    EXPECT_LE(events[0].tsNs, events[1].tsNs);
    EXPECT_LE(events[1].tsNs, events[2].tsNs);
    std::string json = fr.toJson();
    EXPECT_NE(json.find("picoeval-flight-v1"), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"shed\""), std::string::npos);
    EXPECT_NE(json.find("\"request\":2"), std::string::npos);
}

TEST(FlightRecorder, RingOverwritesOldestButCountsEverything)
{
    auto &fr = FlightRecorder::instance();
    fr.resetForTest();
    const uint64_t n = FlightRecorder::ringCapacity + 100;
    for (uint64_t i = 1; i <= n; ++i)
        fr.record(FlightRecorder::EventKind::Finish, i);
    EXPECT_EQ(fr.recorded(), n);
    auto events = fr.snapshot();
    EXPECT_EQ(events.size(), FlightRecorder::ringCapacity);
    // Only the newest capacity-many events survive.
    uint64_t min_id = n;
    for (const auto &e : events)
        min_id = std::min(min_id, e.requestId);
    EXPECT_EQ(min_id, n - FlightRecorder::ringCapacity + 1);
}

TEST(FlightRecorder, ConcurrentWritersAndReadersStayConsistent)
{
    auto &fr = FlightRecorder::instance();
    fr.resetForTest();
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([&fr, w] {
            for (uint64_t i = 0; i < 3000; ++i)
                fr.record(FlightRecorder::EventKind::Start,
                          static_cast<uint64_t>(w) * 10000 + i,
                          "concurrent");
        });
    }
    std::thread reader([&fr, &stop] {
        while (!stop.load()) {
            auto events = fr.snapshot();
            for (const auto &e : events) {
                // A torn event would show a garbled kind/detail.
                ASSERT_EQ(e.kind, FlightRecorder::EventKind::Start);
                ASSERT_EQ(e.detail, "concurrent");
            }
        }
    });
    for (auto &t : writers)
        t.join();
    stop.store(true);
    reader.join();
    EXPECT_EQ(fr.recorded(), 4u * 3000u);
}

namespace
{

std::atomic<int> g_hook_calls{0};
std::string g_hook_label;

void
countingHook(const char *label, const std::string &)
{
    ++g_hook_calls;
    g_hook_label = label;
}

void
recursiveHook(const char *, const std::string &)
{
    ++g_hook_calls;
    // A hook that itself dies must not recurse through notifyFatal.
    panic("hook panics");
}

} // namespace

TEST(FatalHook, RunsOncePerFatalAndReportsLabel)
{
    g_hook_calls = 0;
    setFatalHook(countingHook);
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_EQ(g_hook_calls.load(), 1);
    EXPECT_EQ(g_hook_label, "fatal");
    EXPECT_THROW(panic("bang"), PanicError);
    EXPECT_EQ(g_hook_calls.load(), 2);
    EXPECT_EQ(g_hook_label, "panic");
    setFatalHook(nullptr);
    EXPECT_THROW(fatal("silent"), FatalError);
    EXPECT_EQ(g_hook_calls.load(), 2);
}

TEST(FatalHook, HookFailureNeitherRecursesNorMasksTheError)
{
    g_hook_calls = 0;
    setFatalHook(recursiveHook);
    // The original FatalError must surface; the hook's own panic is
    // swallowed and the recursion guard stops the nested notify.
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_EQ(g_hook_calls.load(), 1);
    setFatalHook(nullptr);
}
