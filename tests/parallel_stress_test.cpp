/**
 * @file
 * Fault injection against the *parallel* exploration engine: the
 * per-design isolation and crash-safety guarantees PR 2 established
 * for the serial walk must survive an 8-way schedule. Also the
 * regression test for the concurrent-flush double-rename fix in
 * EvaluationCache.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "dse/EvaluationCache.hpp"
#include "dse/Spacewalker.hpp"
#include "support/FaultInjection.hpp"
#include "support/ThreadPool.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico
{
namespace
{

std::filesystem::path
tmpFile(const std::string &name)
{
    return std::filesystem::temp_directory_path() / name;
}

dse::MemorySpaces
tinySpaces()
{
    dse::MemorySpaces spaces;
    dse::CacheSpace l1;
    l1.sizesBytes = {4096};
    l1.assocs = {1};
    l1.lineSizes = {32};
    spaces.icache = l1;
    spaces.dcache = l1;
    dse::CacheSpace l2;
    l2.sizesBytes = {65536};
    l2.assocs = {4};
    l2.lineSizes = {64};
    spaces.ucache = l2;
    return spaces;
}

class ParallelStress : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        support::FaultInjector::instance().reset();
    }

    static void
    SetUpTestSuite()
    {
        prog_ = new ir::Program(workloads::buildAndProfile(
            workloads::specByName("unepic"), 8000));
    }
    static void
    TearDownTestSuite()
    {
        delete prog_;
        prog_ = nullptr;
    }
    static ir::Program *prog_;
};

ir::Program *ParallelStress::prog_ = nullptr;

TEST_F(ParallelStress, InjectedFailuresStayIsolatedAtEightThreads)
{
    auto path = tmpFile("pico_pstress_isolate.db");
    std::filesystem::remove(path);

    std::vector<std::string> machines = {"1111", "2111", "2211",
                                         "3221", "4221", "4332"};
    dse::Spacewalker::Options opts;
    opts.traceBlocks = 8000;
    opts.uGranule = 40000;
    opts.jobs = 8;
    opts.checkpointEvery = 1;
    opts.evaluationCachePath = path.string();
    dse::Spacewalker walker(tinySpaces(), machines, opts);

    // Every design task hits the site exactly once; two of the six
    // hits fire. *Which* two is schedule-dependent — the isolation
    // guarantees below must hold regardless.
    support::ScopedFault f("Spacewalker::evaluateDesign",
                           /*skip=*/0, /*fires=*/2);
    auto result = walker.explore(*prog_);

    EXPECT_FALSE(result.complete());
    ASSERT_EQ(result.failures.size(), 2u);
    EXPECT_EQ(result.evaluatedDesigns, 4u);
    EXPECT_FALSE(result.systems.empty());

    std::map<std::string, size_t> walkIndex;
    for (size_t i = 0; i < machines.size(); ++i)
        walkIndex[machines[i]] = i;

    size_t last_index = 0;
    for (size_t e = 0; e < result.failures.size(); ++e) {
        const auto &entry = result.failures.entries()[e];
        // The fault fires before any stage of the design ran.
        EXPECT_EQ(entry.stage, "machine-description");
        EXPECT_NE(entry.reason.find("injected fault"),
                  std::string::npos);
        // A failed design contributed nothing.
        EXPECT_EQ(result.dilations.count(entry.design), 0u);
        EXPECT_EQ(result.processorCycles.count(entry.design), 0u);
        // Failures surface in walk order, not completion order.
        ASSERT_EQ(walkIndex.count(entry.design), 1u);
        size_t index = walkIndex[entry.design];
        if (e > 0) {
            EXPECT_GT(index, last_index);
        }
        last_index = index;
    }

    // Every surviving design contributed, and its checkpointed
    // metrics reload cleanly: no torn or quarantined entries even
    // with per-completion checkpoints under the parallel schedule.
    uint64_t contributed = 0;
    for (const auto &name : machines)
        contributed += result.dilations.count(name);
    EXPECT_EQ(contributed, 4u);

    dse::EvaluationCache reloaded(path.string());
    EXPECT_EQ(reloaded.loadedEntries(), 4u);
    EXPECT_EQ(reloaded.quarantinedEntries(), 0u);

    std::filesystem::remove(path);
    std::filesystem::remove(path.string() + ".tmp");
}

TEST_F(ParallelStress, SaveCrashDuringParallelWalkKeepsOldGeneration)
{
    auto path = tmpFile("pico_pstress_crash.db");
    auto tmp = path.string() + ".tmp";
    std::filesystem::remove(path);
    std::filesystem::remove(tmp);

    dse::Spacewalker::Options opts;
    opts.traceBlocks = 8000;
    opts.uGranule = 40000;
    opts.jobs = 8;
    opts.checkpointEvery = 1;
    opts.evaluationCachePath = path.string();
    {
        dse::Spacewalker walker(tinySpaces(),
                                {"1111", "2211", "3221"}, opts);
        // The first checkpoint's rename "crashes". The injected
        // error escapes the walk (flushing is not per-design work),
        // exactly as it would in a serial walk.
        support::ScopedFault f("EvaluationCache::save:before-rename",
                               /*skip=*/0, /*fires=*/1);
        EXPECT_THROW(walker.explore(*prog_), FaultInjectedError);
    }
    // The walker's destructor-time flush committed what the crashed
    // checkpoint could not: the database reloads cleanly.
    dse::EvaluationCache reloaded(path.string());
    EXPECT_EQ(reloaded.quarantinedEntries(), 0u);
    EXPECT_EQ(reloaded.loadedEntries(), reloaded.size());

    std::filesystem::remove(path);
    std::filesystem::remove(tmp);
}

TEST_F(ParallelStress, WalkSurvivesArmedButUnfiredSites)
{
    // Arm a site with a skip beyond every hit: the lock-free
    // anyArmed() fast path and the locked hit counting run on every
    // task of the parallel walk without firing — the walk must be
    // clean and complete (TSan guards the counter accesses).
    support::ScopedFault f("Spacewalker::evaluateDesign",
                           /*skip=*/1000, /*fires=*/1);
    dse::Spacewalker::Options opts;
    opts.traceBlocks = 8000;
    opts.uGranule = 40000;
    opts.jobs = 8;
    dse::Spacewalker walker(tinySpaces(), {"1111", "2211", "3221"},
                            opts);
    auto result = walker.explore(*prog_);
    EXPECT_TRUE(result.complete());
    EXPECT_EQ(result.evaluatedDesigns, 3u);
    EXPECT_EQ(
        support::FaultInjector::instance().hits(
            "Spacewalker::evaluateDesign"),
        3u);
}

// --- concurrent-flush regression --------------------------------------

TEST(EvaluationCacheConcurrency, ConcurrentFlushesNeverTearTheFile)
{
    // Regression test for the double-rename race: two threads inside
    // save() at once both wrote <path>.tmp and both renamed it; the
    // loser renamed a half-written or missing tmp over the live
    // database. flush() now serializes the whole write-out protocol,
    // so any mix of concurrent stores and flushes must leave a
    // database that reloads completely and cleanly.
    auto path = tmpFile("pico_pstress_flushrace.db");
    std::filesystem::remove(path);
    constexpr size_t writers = 8;
    constexpr size_t rounds = 25;
    {
        dse::EvaluationCache cache(path.string());
        support::ThreadPool pool(4);
        support::parallelFor(writers, &pool, [&](size_t w) {
            for (size_t r = 0; r < rounds; ++r) {
                std::string key = "w";
                key += std::to_string(w);
                key += ";r";
                key += std::to_string(r);
                cache.store(key, {static_cast<double>(w),
                                  static_cast<double>(r)});
                cache.flush();
            }
        });
        EXPECT_EQ(cache.size(), writers * rounds);
    }
    dse::EvaluationCache reloaded(path.string());
    EXPECT_EQ(reloaded.loadedEntries(), writers * rounds);
    EXPECT_EQ(reloaded.quarantinedEntries(), 0u);
    std::vector<double> v;
    ASSERT_TRUE(reloaded.lookup("w7;r24", v));
    EXPECT_EQ(v, (std::vector<double>{7.0, 24.0}));

    std::filesystem::remove(path);
    std::filesystem::remove(path.string() + ".tmp");
}

TEST(EvaluationCacheConcurrency, ParallelGetOrComputeIsCoherent)
{
    // Many threads racing getOrCompute on overlapping keys: every
    // caller must observe the deterministic value, and hits + misses
    // must account for every call.
    dse::EvaluationCache cache;
    support::ThreadPool pool(4);
    constexpr size_t tasks = 64;
    std::atomic<uint64_t> computes{0};
    support::parallelFor(tasks, &pool, [&](size_t i) {
        std::string key = "k" + std::to_string(i % 8);
        auto v = cache.getOrCompute(key, [&]() {
            ++computes;
            return std::vector<double>{
                static_cast<double>(i % 8)};
        });
        ASSERT_EQ(v.size(), 1u);
        EXPECT_EQ(v[0], static_cast<double>(i % 8));
    });
    EXPECT_EQ(cache.size(), 8u);
    EXPECT_EQ(cache.hits() + cache.misses(), tasks);
    // Duplicate concurrent computes are allowed (first store wins),
    // but every distinct key computed at least once.
    EXPECT_GE(computes.load(), 8u);
}

} // namespace
} // namespace pico
