/**
 * @file
 * Tests for the cache-subsystem evaluators and the memory walker:
 * single-pass banks, dilation-aware miss queries, Pareto
 * construction, and inclusion filtering.
 */

#include <gtest/gtest.h>

#include "dse/Evaluators.hpp"
#include "dse/Spacewalker.hpp"
#include "support/Random.hpp"

namespace pico::dse
{
namespace
{

CacheSpace
smallSpace()
{
    CacheSpace space;
    space.sizesBytes = {1024, 4096, 16384};
    space.assocs = {1, 2};
    space.lineSizes = {16, 32};
    return space;
}

TraceSource
syntheticInstrTrace(uint64_t seed, int length)
{
    return [seed, length](const TraceSink &sink) {
        Rng rng(seed);
        uint64_t pc = 0x01000000;
        for (int i = 0; i < length; ++i) {
            if (rng.coin(0.12))
                pc = 0x01000000 + (rng.below(1 << 15) & ~3ULL);
            sink({pc, true, false});
            pc += 4;
        }
    };
}

TraceSource
syntheticDataTrace(uint64_t seed, int length)
{
    return [seed, length](const TraceSink &sink) {
        Rng rng(seed);
        for (int i = 0; i < length; ++i) {
            uint64_t addr =
                0x40000000 + (rng.below(1 << 16) & ~3ULL);
            sink({addr, false, rng.coin(0.3)});
        }
    };
}

TraceSource
syntheticUnifiedTrace(uint64_t seed, int length)
{
    return [seed, length](const TraceSink &sink) {
        Rng rng(seed);
        uint64_t pc = 0x01000000;
        for (int i = 0; i < length; ++i) {
            if (rng.coin(0.65)) {
                if (rng.coin(0.12))
                    pc = 0x01000000 +
                         (rng.below(1 << 15) & ~3ULL);
                sink({pc, true, false});
                pc += 4;
            } else {
                sink({0x40000000 + (rng.below(1 << 16) & ~3ULL),
                      false, false});
            }
        }
    };
}

TEST(SimBank, CoversDownToOneWordLines)
{
    SimBank bank(smallSpace());
    // Lines 4, 8, 16, 32 -> four single-pass runs.
    EXPECT_EQ(bank.simRuns(), 4u);
    EXPECT_TRUE(bank.covers(cache::CacheConfig{64, 1, 4}));
    EXPECT_TRUE(bank.covers(cache::CacheConfig{64, 2, 32}));
    EXPECT_FALSE(bank.covers(cache::CacheConfig{64, 1, 64}));
}

TEST(SimBank, MissesThrowOutsideCoverage)
{
    SimBank bank(smallSpace());
    syntheticInstrTrace(1, 1000)(
        [&bank](const trace::Access &a) { bank.access(a); });
    EXPECT_THROW(bank.misses(cache::CacheConfig{64, 1, 128}),
                 FatalError);
}

TEST(IcacheEvaluator, UnitDilationEqualsSimulation)
{
    IcacheEvaluator eval(smallSpace(), 2000);
    eval.evaluate(syntheticInstrTrace(3, 60000));
    for (const auto &cfg : smallSpace().enumerate()) {
        EXPECT_DOUBLE_EQ(eval.misses(cfg, 1.0),
                         eval.bank().misses(cfg))
            << cfg.name();
    }
}

TEST(IcacheEvaluator, DilationIncreasesMisses)
{
    IcacheEvaluator eval(smallSpace(), 2000);
    eval.evaluate(syntheticInstrTrace(4, 60000));
    cache::CacheConfig cfg{64, 1, 32};
    double base = eval.misses(cfg, 1.0);
    double dil = eval.misses(cfg, 2.0);
    EXPECT_GT(dil, base);
}

TEST(IcacheEvaluator, RejectsQueriesBeforeEvaluate)
{
    IcacheEvaluator eval(smallSpace());
    EXPECT_THROW(eval.misses(cache::CacheConfig{64, 1, 32}, 1.0),
                 FatalError);
}

TEST(IcacheEvaluator, RejectsDataReferences)
{
    IcacheEvaluator eval(smallSpace(), 1000);
    EXPECT_THROW(eval.evaluate(syntheticDataTrace(5, 5000)),
                 FatalError);
}

TEST(DcacheEvaluator, SimulatesAndIgnoresDilation)
{
    DcacheEvaluator eval(smallSpace());
    eval.evaluate(syntheticDataTrace(6, 50000));
    cache::CacheConfig cfg{128, 2, 32};
    EXPECT_GT(eval.misses(cfg), 0.0);
}

TEST(UcacheEvaluator, DilationScalesUnifiedMisses)
{
    UcacheEvaluator eval(smallSpace(), 10000);
    eval.evaluate(syntheticUnifiedTrace(7, 120000));
    cache::CacheConfig cfg{256, 2, 32};
    double base = eval.misses(cfg, 1.0);
    double dil = eval.misses(cfg, 2.5);
    EXPECT_DOUBLE_EQ(base, eval.misses(cfg, 1.0));
    EXPECT_GE(dil, base);
}

TEST(Evaluators, ParetoSetsAreNonEmptyAndConsistent)
{
    IcacheEvaluator ieval(smallSpace(), 2000);
    ieval.evaluate(syntheticInstrTrace(8, 60000));
    auto front = ieval.pareto(1.5, 10.0);
    EXPECT_FALSE(front.empty());
    // Every front member's misses must be reproducible.
    for (const auto &p : front.points()) {
        EXPECT_GT(p.cost, 0.0);
        EXPECT_GE(p.time, 0.0);
    }
    // The largest, most associative cache must have the fewest
    // misses; it can only be excluded by cost.
    auto sorted = front.sorted();
    for (size_t i = 1; i < sorted.size(); ++i)
        EXPECT_LE(sorted[i].time, sorted[i - 1].time);
}

TEST(MemoryWalker, StallCyclesAdditive)
{
    MemorySpaces spaces;
    spaces.icache = smallSpace();
    spaces.dcache = smallSpace();
    spaces.ucache = CacheSpace::defaultL2Space();
    StallModel stalls;
    MemoryWalker walker(spaces, stalls);
    walker.evaluate(syntheticInstrTrace(9, 60000),
                    syntheticDataTrace(10, 50000),
                    syntheticUnifiedTrace(11, 250000));

    cache::CacheConfig ic{64, 1, 32};
    cache::CacheConfig dc{64, 2, 32};
    cache::CacheConfig uc{512, 2, 64};
    double total = walker.stallCycles(ic, dc, uc, 1.3);
    double manual =
        walker.icache().misses(ic, 1.3) * stalls.l2HitLatency +
        walker.dcache().misses(dc) * stalls.l2HitLatency +
        walker.ucache().misses(uc, 1.3) * stalls.memoryLatency;
    EXPECT_DOUBLE_EQ(total, manual);
}

TEST(MemoryWalker, ParetoRespectsInclusion)
{
    MemorySpaces spaces;
    spaces.icache = smallSpace();
    spaces.dcache = smallSpace();
    CacheSpace l2;
    l2.sizesBytes = {8192, 32768};
    l2.assocs = {2};
    l2.lineSizes = {32, 64};
    spaces.ucache = l2;

    MemoryWalker walker(spaces, StallModel{});
    walker.evaluate(syntheticInstrTrace(12, 60000),
                    syntheticDataTrace(13, 50000),
                    syntheticUnifiedTrace(14, 250000));
    auto front = walker.pareto(1.0);
    EXPECT_FALSE(front.empty());
    // Hierarchy ids embed the component names; an 8KB L2 may never
    // appear together with a 16KB L1.
    for (const auto &p : front.points()) {
        bool small_l2 = p.id.find("U$8KB") != std::string::npos;
        bool big_l1 = p.id.find("I$16KB") != std::string::npos ||
                      p.id.find("D$16KB") != std::string::npos;
        EXPECT_FALSE(small_l2 && big_l1) << p.id;
    }
}

} // namespace
} // namespace pico::dse
