/**
 * @file
 * Tests for hyperblock formation (if-conversion), predicated machine
 * descriptions, their instruction formats, and the trace-equivalence
 * machinery they feed (section 4.1: one reference processor per
 * predication/speculation combination).
 */

#include <gtest/gtest.h>

#include "compiler/Hyperblock.hpp"
#include "isa/InstructionFormat.hpp"
#include "machine/MachineDesc.hpp"
#include "trace/ExecutionEngine.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::compiler
{
namespace
{

using machine::MachineDesc;

/** A function with one triangle: b0 -> {b1, b2}, b1 -> b2. */
ir::Program
triangleProgram()
{
    ir::Program prog;
    prog.name = "triangle";
    prog.streams.push_back({});

    ir::Operation alu;
    ir::Operation load;
    load.opClass = ir::OpClass::Memory;
    load.memKind = ir::MemKind::Load;
    ir::Operation br;
    br.opClass = ir::OpClass::Branch;

    ir::Function f;
    f.name = "main";
    ir::BasicBlock b0;
    b0.ops = {alu, alu, br};
    b0.succs = {{1, 0.6}, {2, 0.4}};
    ir::BasicBlock b1;
    b1.ops = {load, alu, br};
    b1.succs = {{2, 1.0}};
    ir::BasicBlock b2;
    b2.ops = {alu, br};
    f.blocks = {b0, b1, b2};
    prog.functions = {f};
    prog.finalize();
    return prog;
}

TEST(Hyperblock, MergesSimpleTriangle)
{
    auto prog = triangleProgram();
    HyperblockStats stats;
    auto converted = formHyperblocks(prog, &stats);

    EXPECT_EQ(stats.merged, 1u);
    EXPECT_EQ(stats.predicatedOps, 2u); // load + alu from b1
    ASSERT_EQ(converted.functions[0].blocks.size(), 2u);

    const auto &merged = converted.functions[0].blocks[0];
    // b0's body (2 ops) + b1's body (2 predicated) + 1 branch.
    EXPECT_EQ(merged.ops.size(), 5u);
    EXPECT_TRUE(merged.ops[2].predicated);
    EXPECT_TRUE(merged.ops[3].predicated);
    EXPECT_FALSE(merged.ops[0].predicated);
    // Unconditional fall-through to the (renumbered) join block.
    ASSERT_EQ(merged.succs.size(), 1u);
    EXPECT_EQ(merged.succs[0].target, 1u);
    EXPECT_DOUBLE_EQ(merged.succs[0].prob, 1.0);
}

TEST(Hyperblock, SourceProgramUntouched)
{
    auto prog = triangleProgram();
    auto converted = formHyperblocks(prog);
    EXPECT_EQ(prog.functions[0].blocks.size(), 3u);
    EXPECT_EQ(converted.functions[0].blocks.size(), 2u);
}

TEST(Hyperblock, SkipsLoops)
{
    auto prog = triangleProgram();
    // Make b1 a loop tail instead of a pure fall-through.
    prog.functions[0].blocks[1].succs = {{0, 0.5}, {2, 0.5}};
    prog.finalize();
    HyperblockStats stats;
    formHyperblocks(prog, &stats);
    EXPECT_EQ(stats.merged, 0u);
}

TEST(Hyperblock, SkipsCallBlocks)
{
    auto prog = triangleProgram();
    ir::Function callee;
    callee.name = "leaf";
    ir::BasicBlock cb;
    ir::Operation alu;
    ir::Operation br;
    br.opClass = ir::OpClass::Branch;
    cb.ops = {alu, br};
    callee.blocks = {cb};
    prog.functions.push_back(callee);
    prog.functions[0].blocks[1].callee = 1;
    prog.finalize();
    HyperblockStats stats;
    formHyperblocks(prog, &stats);
    EXPECT_EQ(stats.merged, 0u);
}

TEST(Hyperblock, PredicatedTraceHasFewerBlockEntries)
{
    // After if-conversion, the same execution covers fewer, larger
    // blocks; predicated bodies always execute.
    auto spec = workloads::specByName("085.gcc");
    auto base = workloads::buildProgram(spec);
    HyperblockStats stats;
    auto converted = formHyperblocks(base, &stats);
    EXPECT_GT(stats.merged, 0u);
    EXPECT_LT(converted.totalBlocks(), base.totalBlocks());
    // Operations are conserved minus one branch per merge.
    EXPECT_EQ(converted.totalOperations(),
              base.totalOperations() - stats.merged);
}

TEST(Hyperblock, ConvertedProgramExecutes)
{
    auto spec = workloads::specByName("epic");
    auto base = workloads::buildProgram(spec);
    auto converted = formHyperblocks(base);
    trace::ExecutionEngine engine(converted);
    uint64_t n = engine.run(
        [](uint32_t, uint32_t, const std::vector<trace::DataRef> &) {
        },
        5000);
    EXPECT_EQ(n, 5000u);
}

TEST(PredicatedMachine, NameRoundTrip)
{
    auto m = MachineDesc::fromName("3221p");
    EXPECT_GT(m.predRegs, 0u);
    EXPECT_EQ(m.name(), "3221p");
    EXPECT_EQ(m.issueWidth(), 8u);
    auto plain = MachineDesc::fromName("3221");
    EXPECT_EQ(plain.predRegs, 0u);
}

TEST(PredicatedMachine, NotTraceEquivalentToUnpredicated)
{
    auto a = MachineDesc::fromName("1111");
    auto b = MachineDesc::fromName("1111p");
    EXPECT_FALSE(a.traceEquivalent(b));
    EXPECT_TRUE(b.traceEquivalent(MachineDesc::fromName("6332p")));
}

TEST(PredicatedMachine, GuardBitsWidenOperandFields)
{
    isa::InstructionFormat plain(MachineDesc::fromName("2111"));
    isa::InstructionFormat pred(MachineDesc::fromName("2111p"));
    EXPECT_GT(pred.opFieldBits(ir::OpClass::IntAlu),
              plain.opFieldBits(ir::OpClass::IntAlu));
}

TEST(PredicatedMachine, ProgramForClassConverts)
{
    auto spec = workloads::specByName("rasta");
    auto base = workloads::buildAndProfile(spec, 5000);
    auto same = workloads::programForClass(
        base, MachineDesc::fromName("1111"), 5000);
    EXPECT_EQ(same.totalBlocks(), base.totalBlocks());
    auto conv = workloads::programForClass(
        base, MachineDesc::fromName("1111p"), 5000);
    EXPECT_LT(conv.totalBlocks(), base.totalBlocks());
    // The converted program must carry fresh profile counts.
    uint64_t total = 0;
    for (const auto &func : conv.functions)
        for (const auto &block : func.blocks)
            total += block.profileCount;
    EXPECT_EQ(total, 5000u);
}

TEST(PredicatedMachine, ReducesDynamicBranchDensity)
{
    // If-conversion removes one branch per merged triangle, so the
    // predicated program executes fewer branches per operation.
    auto spec = workloads::specByName("085.gcc");
    auto base = workloads::buildAndProfile(spec, 10000);
    auto conv = workloads::programForClass(
        base, MachineDesc::fromName("1111p"), 10000);

    auto branch_density = [](const ir::Program &prog) {
        double branches = 0.0, ops = 0.0;
        for (const auto &func : prog.functions) {
            for (const auto &block : func.blocks) {
                auto count =
                    static_cast<double>(block.profileCount);
                for (const auto &op : block.ops) {
                    ops += count;
                    if (op.isBranch())
                        branches += count;
                }
            }
        }
        return branches / ops;
    };
    EXPECT_LT(branch_density(conv), branch_density(base));
}

} // namespace
} // namespace pico::compiler
