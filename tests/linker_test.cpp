/**
 * @file
 * Unit tests for the linker: layout, alignment, address assignment,
 * and text-dilation measurement across the paper's machines.
 */

#include <gtest/gtest.h>

#include "isa/Assembler.hpp"
#include "isa/InstructionFormat.hpp"
#include "linker/Linker.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::linker
{
namespace
{

using machine::MachineDesc;

isa::ObjectFile
tinyObject()
{
    isa::ObjectFile object;
    object.machineName = "1111";
    object.fetchPacketBytes = 16;

    isa::ObjectFunction hot;
    hot.name = "hot";
    hot.callCount = 100;
    hot.blocks.push_back({24, true, 3});   // entry
    hot.blocks.push_back({12, false, 2});  // fall-through
    hot.blocks.push_back({20, true, 2});   // branch target

    isa::ObjectFunction cold;
    cold.name = "cold";
    cold.callCount = 1;
    cold.blocks.push_back({40, true, 4});

    object.functions.push_back(cold); // cold first in object order
    object.functions.push_back(hot);
    return object;
}

TEST(Linker, HotFunctionsPlacedFirst)
{
    Linker linker;
    auto bin = linker.link(tinyObject());
    // Function 1 ("hot") must start at the text base, ahead of the
    // colder function 0.
    EXPECT_EQ(bin.block(1, 0).startAddr, LinkedBinary::textBase);
    EXPECT_GT(bin.block(0, 0).startAddr, bin.block(1, 2).startAddr);
}

TEST(Linker, LayoutOrderPreservedWithoutProfiles)
{
    LinkerOptions opts;
    opts.profileGuidedLayout = false;
    Linker linker(opts);
    auto bin = linker.link(tinyObject());
    EXPECT_EQ(bin.block(0, 0).startAddr, LinkedBinary::textBase);
}

TEST(Linker, BranchTargetsPacketAligned)
{
    Linker linker;
    auto bin = linker.link(tinyObject());
    for (uint32_t f = 0; f < 2; ++f) {
        for (uint32_t b = 0; b < bin.numBlocks(f); ++b) {
            // Block 1 of "hot" is a pure fall-through block.
            if (f == 1 && b == 1)
                continue;
            EXPECT_EQ(bin.block(f, b).startAddr % 16, 0u)
                << "f=" << f << " b=" << b;
        }
    }
}

TEST(Linker, FallThroughBlocksContiguous)
{
    Linker linker;
    auto bin = linker.link(tinyObject());
    // hot block 1 follows hot block 0 with no padding.
    EXPECT_EQ(bin.block(1, 1).startAddr,
              bin.block(1, 0).startAddr + bin.block(1, 0).sizeBytes);
}

TEST(Linker, TextSizeIncludesPadding)
{
    Linker linker;
    auto object = tinyObject();
    auto bin = linker.link(object);
    EXPECT_GE(bin.textSize(), object.rawTextSize());
}

TEST(Linker, AlignmentOffIsDenser)
{
    auto object = tinyObject();
    Linker aligned;
    LinkerOptions loose_opts;
    loose_opts.alignBranchTargets = false;
    Linker loose(loose_opts);
    EXPECT_LE(loose.link(object).textSize(),
              aligned.link(object).textSize());
}

TEST(Linker, RejectsEmptyObject)
{
    Linker linker;
    isa::ObjectFile object;
    object.fetchPacketBytes = 16;
    EXPECT_THROW(linker.link(object), FatalError);
}

TEST(TextDilation, UnityAgainstItself)
{
    workloads::AppSpec spec;
    spec.seed = 500;
    auto prog = workloads::buildAndProfile(spec, 10000);
    auto build = workloads::buildFor(prog,
                                     MachineDesc::fromName("1111"));
    EXPECT_DOUBLE_EQ(textDilation(build.bin, build.bin), 1.0);
}

TEST(TextDilation, GrowsWithIssueWidth)
{
    // The paper's table 3 regime: wider machines have monotonically
    // larger text, with 2111 modest and 6332 the largest.
    workloads::AppSpec spec;
    spec.seed = 501;
    auto prog = workloads::buildAndProfile(spec, 10000);
    auto ref = workloads::buildFor(prog, MachineDesc::fromName("1111"));
    double prev = 1.0;
    for (const char *name : {"2111", "3221", "4221", "6332"}) {
        auto build = workloads::buildFor(prog,
                                         MachineDesc::fromName(name));
        double d = textDilation(build.bin, ref.bin);
        EXPECT_GT(d, prev * 0.98) << name;
        EXPECT_GT(d, 1.0) << name;
        prev = d;
    }
}

TEST(TextDilation, InPaperRange)
{
    // Table 3: dilations fall in roughly [1.2, 3.4].
    workloads::AppSpec spec;
    spec.seed = 502;
    auto prog = workloads::buildAndProfile(spec, 10000);
    auto ref = workloads::buildFor(prog, MachineDesc::fromName("1111"));
    auto narrow = workloads::buildFor(prog,
                                      MachineDesc::fromName("2111"));
    auto wide = workloads::buildFor(prog,
                                    MachineDesc::fromName("6332"));
    double d2111 = textDilation(narrow.bin, ref.bin);
    double d6332 = textDilation(wide.bin, ref.bin);
    EXPECT_GT(d2111, 1.05);
    EXPECT_LT(d2111, 2.2);
    EXPECT_GT(d6332, 1.8);
    EXPECT_LT(d6332, 4.2);
}

TEST(LinkedBinary, BlockAddressesWithinText)
{
    workloads::AppSpec spec;
    spec.seed = 503;
    auto prog = workloads::buildAndProfile(spec, 5000);
    auto build = workloads::buildFor(prog,
                                     MachineDesc::fromName("3221"));
    const auto &bin = build.bin;
    uint64_t end = LinkedBinary::textBase + bin.textSize();
    for (uint32_t f = 0; f < bin.numFunctions(); ++f) {
        for (uint32_t b = 0; b < bin.numBlocks(f); ++b) {
            const auto &placed = bin.block(f, b);
            EXPECT_GE(placed.startAddr, LinkedBinary::textBase);
            EXPECT_LE(placed.startAddr + placed.sizeBytes, end);
        }
    }
}

TEST(LinkedBinary, NoBlockOverlap)
{
    workloads::AppSpec spec;
    spec.seed = 504;
    spec.numFunctions = 8;
    auto prog = workloads::buildAndProfile(spec, 5000);
    auto build = workloads::buildFor(prog,
                                     MachineDesc::fromName("1111"));
    const auto &bin = build.bin;
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    for (uint32_t f = 0; f < bin.numFunctions(); ++f) {
        for (uint32_t b = 0; b < bin.numBlocks(f); ++b) {
            const auto &placed = bin.block(f, b);
            ranges.emplace_back(placed.startAddr,
                                placed.startAddr + placed.sizeBytes);
        }
    }
    std::sort(ranges.begin(), ranges.end());
    for (size_t i = 1; i < ranges.size(); ++i)
        EXPECT_LE(ranges[i - 1].second, ranges[i].first);
}

} // namespace
} // namespace pico::linker
