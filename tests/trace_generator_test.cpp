/**
 * @file
 * Unit tests for the trace generator: trace kinds, word tiling of
 * block ranges, dilated-trace construction, machine-dependent data
 * references (spills, speculation), and event-trace invariance
 * across machines.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "trace/TraceGenerator.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::trace
{
namespace
{

using machine::MachineDesc;

struct Fixture
{
    ir::Program prog;
    workloads::MachineBuild build;

    explicit Fixture(const char *machine = "1111", uint64_t seed = 42)
    {
        workloads::AppSpec spec;
        spec.seed = seed;
        prog = workloads::buildAndProfile(spec, 5000);
        build = workloads::buildFor(prog, MachineDesc::fromName(machine));
    }

    TraceGenerator
    gen() const
    {
        return TraceGenerator(prog, build.sched, build.bin);
    }
};

TEST(TraceGenerator, InstructionTraceIsInstructionOnly)
{
    Fixture fx;
    auto accs = fx.gen().collect(TraceKind::Instruction, 500);
    ASSERT_FALSE(accs.empty());
    for (const auto &a : accs) {
        EXPECT_TRUE(a.isInstr);
        EXPECT_FALSE(a.isWrite);
        EXPECT_EQ(a.addr % 4, 0u);
    }
}

TEST(TraceGenerator, DataTraceIsDataOnly)
{
    Fixture fx;
    auto accs = fx.gen().collect(TraceKind::Data, 500);
    ASSERT_FALSE(accs.empty());
    for (const auto &a : accs)
        EXPECT_FALSE(a.isInstr);
}

TEST(TraceGenerator, UnifiedContainsBoth)
{
    Fixture fx;
    auto accs = fx.gen().collect(TraceKind::Unified, 500);
    bool has_instr = false, has_data = false;
    for (const auto &a : accs) {
        has_instr |= a.isInstr;
        has_data |= !a.isInstr;
    }
    EXPECT_TRUE(has_instr);
    EXPECT_TRUE(has_data);
}

TEST(TraceGenerator, UnifiedIsSupersetCountOfComponents)
{
    Fixture fx;
    auto i = fx.gen().collect(TraceKind::Instruction, 500);
    auto d = fx.gen().collect(TraceKind::Data, 500);
    auto u = fx.gen().collect(TraceKind::Unified, 500);
    EXPECT_EQ(u.size(), i.size() + d.size());
}

TEST(TraceGenerator, InstructionWordsTileBlockRanges)
{
    // Every fetched word must lie inside some placed block, and the
    // first visited block must be fetched from start to end.
    Fixture fx;
    auto accs = fx.gen().collect(TraceKind::Instruction, 1);
    const auto &entry = fx.build.bin.block(fx.prog.entryFunction, 0);
    ASSERT_EQ(accs.size(), entry.sizeBytes / 4);
    for (size_t i = 0; i < accs.size(); ++i)
        EXPECT_EQ(accs[i].addr, entry.startAddr + i * 4);
}

TEST(TraceGenerator, DilationOneIsIdentity)
{
    Fixture fx;
    auto plain = fx.gen().collect(TraceKind::Unified, 800);
    auto dilated = fx.gen().collect(TraceKind::Unified, 800, 1.0);
    ASSERT_EQ(plain.size(), dilated.size());
    for (size_t i = 0; i < plain.size(); ++i)
        EXPECT_EQ(plain[i].addr, dilated[i].addr);
}

TEST(TraceGenerator, DilationScalesInstructionCount)
{
    Fixture fx;
    auto plain = fx.gen().collect(TraceKind::Instruction, 800);
    auto dilated = fx.gen().collect(TraceKind::Instruction, 800, 2.0);
    double ratio = static_cast<double>(dilated.size()) /
                   static_cast<double>(plain.size());
    EXPECT_NEAR(ratio, 2.0, 0.02);
}

TEST(TraceGenerator, DilationLeavesDataUntouched)
{
    Fixture fx;
    auto plain = fx.gen().collect(TraceKind::Data, 800);
    auto dilated = fx.gen().collect(TraceKind::Data, 800, 3.0);
    ASSERT_EQ(plain.size(), dilated.size());
    for (size_t i = 0; i < plain.size(); ++i)
        EXPECT_EQ(plain[i].addr, dilated[i].addr);
}

TEST(TraceGenerator, DilatedBlocksDoNotOverlap)
{
    // Under dilation, distinct blocks' instruction words must stay
    // distinct (the lemma's non-overlap construction).
    Fixture fx;
    const auto &bin = fx.build.bin;
    double d = 1.37;
    auto scale = [d](uint64_t off) {
        return 4 * static_cast<uint64_t>(std::llround(
                       static_cast<double>(off) * d / 4.0));
    };
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    for (uint32_t f = 0; f < bin.numFunctions(); ++f) {
        for (uint32_t b = 0; b < bin.numBlocks(f); ++b) {
            const auto &blk = bin.block(f, b);
            uint64_t off = blk.startAddr - linker::LinkedBinary::textBase;
            ranges.emplace_back(scale(off),
                                scale(off + blk.sizeBytes));
        }
    }
    std::sort(ranges.begin(), ranges.end());
    for (size_t i = 1; i < ranges.size(); ++i)
        EXPECT_LE(ranges[i - 1].second, ranges[i].first);
}

TEST(TraceGenerator, EventTraceInvariantAcrossMachines)
{
    // Assumption 1: the data addresses of non-spill, non-speculated
    // references are identical for every machine.
    Fixture narrow("1111", 7);
    Fixture wide("6332", 7);

    // The block sequences (and the event-trace data refs) are
    // machine independent by construction; verify directly.
    auto blocks = [](const ir::Program &prog) {
        std::vector<std::pair<uint32_t, uint32_t>> seq;
        ExecutionEngine engine(prog);
        engine.run(
            [&seq](uint32_t f, uint32_t b,
                   const std::vector<DataRef> &) {
                seq.emplace_back(f, b);
            },
            2000);
        return seq;
    };
    EXPECT_EQ(blocks(narrow.prog), blocks(wide.prog));
}

TEST(TraceGenerator, WiderMachineAddsDataReferences)
{
    // Speculation and spills add (a few) data references on wider
    // machines; the growth stays modest (table 2 regime).
    Fixture narrow("1111", 13);
    Fixture wide("6332", 13);
    auto dn = narrow.gen().collect(TraceKind::Data, 3000);
    auto dw = wide.gen().collect(TraceKind::Data, 3000);
    EXPECT_GE(dw.size(), dn.size());
    EXPECT_LT(static_cast<double>(dw.size()) /
                  static_cast<double>(dn.size()),
              1.5);
}

TEST(TraceGenerator, SpillReferencesHitTheStackRegion)
{
    workloads::AppSpec spec;
    spec.seed = 99;
    spec.minOpsPerBlock = 18;
    spec.maxOpsPerBlock = 26;
    spec.depDensity = 0.15; // high ILP -> pressure on wide machines
    auto prog = workloads::buildAndProfile(spec, 4000);
    auto build = workloads::buildFor(prog,
                                     MachineDesc::fromName("6332"));
    TraceGenerator gen(prog, build.sched, build.bin);
    bool saw_stack = false;
    gen.generate(TraceKind::Data,
                 [&saw_stack](const Access &a) {
                     if (a.addr >= TraceGenerator::stackBase)
                         saw_stack = true;
                 },
                 3000);
    uint64_t spills = 0;
    for (const auto &f : build.sched.functions)
        for (const auto &b : f.blocks)
            spills += b.numSpills;
    EXPECT_EQ(saw_stack, spills > 0);
}

TEST(TraceGenerator, GenerateReturnsEmittedCount)
{
    Fixture fx;
    uint64_t counted = 0;
    uint64_t returned = fx.gen().generate(
        TraceKind::Unified,
        [&counted](const Access &) { ++counted; }, 400);
    EXPECT_EQ(counted, returned);
}

TEST(TraceGenerator, RejectsNonPositiveDilation)
{
    Fixture fx;
    auto gen = fx.gen();
    EXPECT_THROW(gen.collect(TraceKind::Instruction, 10, 0.0),
                 FatalError);
}

} // namespace
} // namespace pico::trace
