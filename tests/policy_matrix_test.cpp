/**
 * @file
 * Differential policy-matrix suite: every (replacement policy x
 * write policy) cell of the extended design space is proven against
 * the per-configuration CacheSim oracle — miss counts AND write
 * traffic, bit-identical — across seeds, geometries and line sizes.
 * Also covers the SimBank routing (LRU -> Cheetah, FIFO/random ->
 * set-resident), job-count invariance of the extended sweeps, the
 * extended-space enumeration/naming, and Pareto differentiation on
 * the accelerator workloads.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "dse/Spacewalker.hpp"

#include "cache/CacheSim.hpp"
#include "cache/Policy.hpp"
#include "cache/SetResidentSim.hpp"
#include "cache/SinglePassSim.hpp"
#include "dse/Evaluators.hpp"
#include "support/Random.hpp"
#include "support/ThreadPool.hpp"
#include "trace/ColumnarTrace.hpp"
#include "trace/TraceBuffer.hpp"
#include "trace/TraceGenerator.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico
{
namespace
{

using cache::ReplacementPolicy;
using cache::WritePolicy;

constexpr ReplacementPolicy kPolicies[] = {ReplacementPolicy::LRU,
                                           ReplacementPolicy::FIFO,
                                           ReplacementPolicy::Random};
constexpr WritePolicy kWrites[] = {WritePolicy::WriteBack,
                                   WritePolicy::WriteThrough};

/**
 * 1k-access random trace with locality and ~30% stores, one per
 * stream id.
 */
std::vector<trace::Access>
randomWriteTrace(uint64_t seed, uint64_t stream)
{
    Rng rng = Rng::forStream(seed, stream);
    std::vector<trace::Access> out;
    out.reserve(1000);
    uint64_t pc = 0;
    for (int i = 0; i < 1000; ++i) {
        if (rng.coin(0.2))
            pc = rng.below(1 << 14) & ~3ULL;
        out.push_back({pc, false, rng.coin(0.3)});
        pc += 4;
    }
    return out;
}

/**
 * Exhaustive cross-check of one SetResidentSim against per-config
 * CacheSim oracles over its whole covered (sets, assoc) range, for
 * both write policies: misses and write traffic must be
 * bit-identical in every cell.
 */
void
crossCheckPolicy(ReplacementPolicy policy, uint32_t line,
                 uint32_t min_sets, uint32_t max_sets,
                 uint32_t max_assoc,
                 const std::vector<trace::Access> &refs)
{
    cache::SetResidentSim fast(line, min_sets, max_sets, max_assoc,
                               policy);
    for (const auto &a : refs)
        fast(a);

    uint64_t stores = 0;
    for (const auto &a : refs)
        stores += a.isWrite ? 1 : 0;
    EXPECT_EQ(fast.stores(), stores);

    for (uint32_t sets = min_sets; sets <= max_sets; sets *= 2) {
        for (uint32_t assoc = 1; assoc <= max_assoc; ++assoc) {
            for (WritePolicy wp : kWrites) {
                cache::CacheConfig cfg{sets, assoc, line, 1, policy,
                                       wp};
                cache::CacheSim ref(cfg);
                for (const auto &a : refs)
                    ref(a);
                EXPECT_EQ(fast.misses(sets, assoc), ref.misses())
                    << cfg.name();
                // The oracle's write traffic under WB is its dirty
                // writebacks (the set-resident dirty-bit model);
                // under WT it is the store count, which needs no
                // simulation.
                uint64_t fast_traffic =
                    wp == WritePolicy::WriteBack
                        ? fast.writebacks(sets, assoc)
                        : fast.stores();
                EXPECT_EQ(fast_traffic, ref.writeTraffic())
                    << cfg.name();
            }
        }
    }
}

TEST(PolicyMatrix, SetResidentMatchesOracleAcrossSeeds)
{
    // The tentpole claim: 16 independent traces, every policy, both
    // write modes, every (sets, assoc) — bit-identical to the
    // oracle on misses and write traffic.
    for (uint64_t stream = 0; stream < 16; ++stream)
        for (ReplacementPolicy policy : kPolicies)
            crossCheckPolicy(policy, 32, 16, 64, 4,
                             randomWriteTrace(20260808, stream));
}

TEST(PolicyMatrix, SetResidentMatchesOracleAcrossGeometries)
{
    for (uint32_t line : {8u, 16u, 64u})
        for (ReplacementPolicy policy : kPolicies)
            crossCheckPolicy(policy, line, 8, 32, 8,
                             randomWriteTrace(7, line));
}

TEST(PolicyMatrix, SetResidentMatchesOracleOnAdversarialTraces)
{
    // Pure thrash of one set (forces constant eviction) and a cyclic
    // working set one line larger than the associativity, both
    // store-heavy — the patterns where replacement policies differ
    // the most.
    std::vector<trace::Access> thrash;
    for (int i = 0; i < 1000; ++i)
        thrash.push_back({static_cast<uint64_t>(i % 5) * 32 * 16,
                          false, i % 2 == 0});
    std::vector<trace::Access> cyclic;
    for (int i = 0; i < 1000; ++i)
        cyclic.push_back(
            {static_cast<uint64_t>(i % 3) * 4096, false, i % 3 == 0});
    for (ReplacementPolicy policy : kPolicies) {
        crossCheckPolicy(policy, 32, 16, 64, 4, thrash);
        crossCheckPolicy(policy, 16, 8, 32, 2, cyclic);
    }
}

TEST(PolicyMatrix, SetResidentLruAgreesWithSinglePass)
{
    // Three implementations of LRU — the stack-distance single-pass
    // simulator, the set-resident simulator, and the oracle — must
    // agree exactly; this pins the new simulator to the Cheetah
    // bank it extends.
    auto refs = randomWriteTrace(99, 0);
    cache::SinglePassSim stack(32, 16, 64, 4);
    cache::SetResidentSim resident(32, 16, 64, 4,
                                   ReplacementPolicy::LRU);
    for (const auto &a : refs) {
        stack.access(a.addr);
        resident(a);
    }
    for (uint32_t sets = 16; sets <= 64; sets *= 2)
        for (uint32_t assoc = 1; assoc <= 4; ++assoc)
            EXPECT_EQ(resident.misses(sets, assoc),
                      stack.misses(sets, assoc))
                << "sets=" << sets << " assoc=" << assoc;
}

TEST(PolicyMatrix, AccessBlockMatchesPerAccessCalls)
{
    // The SoA entry point the columnar replay feeds, against the
    // per-reference one, with kind codes (1 = write) in play.
    auto refs = randomWriteTrace(5150, 2);
    std::vector<uint64_t> addrs;
    std::vector<uint8_t> kinds;
    for (const auto &a : refs) {
        addrs.push_back(a.addr);
        kinds.push_back(a.isWrite ? 1 : 0);
    }
    for (ReplacementPolicy policy : kPolicies) {
        cache::SetResidentSim one(32, 16, 64, 4, policy);
        cache::SetResidentSim block(32, 16, 64, 4, policy);
        for (const auto &a : refs)
            one(a);
        size_t i = 0;
        for (size_t chunk : {7ul, 100ul, 1ul, 500ul}) {
            size_t n = std::min(chunk, addrs.size() - i);
            block.accessBlock(addrs.data() + i, kinds.data() + i, n);
            i += n;
        }
        block.accessBlock(addrs.data() + i, kinds.data() + i,
                          addrs.size() - i);
        for (uint32_t sets = 16; sets <= 64; sets *= 2)
            for (uint32_t assoc = 1; assoc <= 4; ++assoc) {
                EXPECT_EQ(block.misses(sets, assoc),
                          one.misses(sets, assoc));
                EXPECT_EQ(block.writebacks(sets, assoc),
                          one.writebacks(sets, assoc));
            }
    }
}

TEST(PolicyMatrix, RandomReplacementIsDeterministic)
{
    // Two independent instances — and the per-config oracle — draw
    // from the same geometry-derived victim stream, so counts are
    // reproducible run to run (the basis of --jobs invariance).
    auto refs = randomWriteTrace(42, 11);
    cache::SetResidentSim a(32, 16, 64, 4, ReplacementPolicy::Random);
    cache::SetResidentSim b(32, 16, 64, 4, ReplacementPolicy::Random);
    for (const auto &r : refs) {
        a(r);
        b(r);
    }
    for (uint32_t sets = 16; sets <= 64; sets *= 2)
        for (uint32_t assoc = 1; assoc <= 4; ++assoc) {
            EXPECT_EQ(a.misses(sets, assoc), b.misses(sets, assoc));
            EXPECT_EQ(a.writebacks(sets, assoc),
                      b.writebacks(sets, assoc));
        }

    // A different policy seed must (in general) change the walk —
    // guard against the seed being silently ignored.
    cache::CacheConfig cfg{16, 4, 32, 1, ReplacementPolicy::Random,
                           WritePolicy::WriteBack};
    cache::CacheSim seeded(cfg, false, 0x1234);
    cache::CacheSim default_seeded(cfg);
    for (const auto &r : refs) {
        seeded(r);
        default_seeded(r);
    }
    cache::CacheSim again(cfg, false, 0x1234);
    for (const auto &r : refs)
        again(r);
    EXPECT_EQ(seeded.misses(), again.misses());
    EXPECT_EQ(seeded.writebacks(), again.writebacks());
}

/** Extended 3x2 space over a few geometries. */
dse::CacheSpace
extendedSpace()
{
    dse::CacheSpace space;
    space.sizesBytes = {2048, 4096, 8192};
    space.assocs = {1, 2, 4};
    space.lineSizes = {16, 32};
    space.replacements = {ReplacementPolicy::LRU,
                          ReplacementPolicy::FIFO,
                          ReplacementPolicy::Random};
    space.writePolicies = {WritePolicy::WriteBack,
                           WritePolicy::WriteThrough};
    return space;
}

TEST(PolicyMatrix, SimBankRoutesEveryCellToTheOracle)
{
    // The SimBank serves LRU misses from the Cheetah bank and
    // FIFO/random from the set-resident bank; every enumerated cell
    // (policy x write mode x geometry) must match a dedicated
    // CacheSim run — misses and write traffic.
    auto space = extendedSpace();
    trace::TraceBuffer buffer;
    auto refs = randomWriteTrace(321, 0);
    for (const auto &a : refs)
        buffer(a);

    dse::SimBank bank(space);
    EXPECT_TRUE(bank.extended());
    bank.simulate(buffer, nullptr);

    for (const auto &cfg : space.enumerate()) {
        ASSERT_TRUE(bank.covers(cfg)) << cfg.name();
        cache::CacheSim ref(cfg);
        buffer.replay(ref);
        EXPECT_EQ(bank.misses(cfg),
                  static_cast<double>(ref.misses()))
            << cfg.name();
        EXPECT_EQ(bank.writeTraffic(cfg),
                  static_cast<double>(ref.writeTraffic()))
            << cfg.name();
    }
}

TEST(PolicyMatrix, ExtendedColumnarSweepIsJobCountInvariant)
{
    // Serial fused decode, 2 jobs, 8 jobs: identical misses and
    // write traffic for every extended-space cell, and identical to
    // the row-wise replay.
    auto space = extendedSpace();
    auto refs = randomWriteTrace(555, 3);
    trace::TraceBuffer rows;
    trace::ColumnarTraceBuffer cols(/*block_capacity=*/128);
    for (const auto &a : refs) {
        rows(a);
        cols(a);
    }

    dse::SimBank row_bank(space);
    row_bank.simulate(rows, nullptr);
    dse::SimBank serial(space);
    serial.simulate(cols, nullptr);
    for (const auto &cfg : space.enumerate()) {
        EXPECT_EQ(serial.misses(cfg), row_bank.misses(cfg))
            << cfg.name();
        EXPECT_EQ(serial.writeTraffic(cfg),
                  row_bank.writeTraffic(cfg))
            << cfg.name();
    }
    for (unsigned jobs : {2u, 8u}) {
        support::ThreadPool pool(jobs);
        dse::SimBank parallel(space);
        parallel.simulate(cols, &pool);
        for (const auto &cfg : space.enumerate()) {
            EXPECT_EQ(parallel.misses(cfg), serial.misses(cfg))
                << cfg.name() << " jobs=" << jobs;
            EXPECT_EQ(parallel.writeTraffic(cfg),
                      serial.writeTraffic(cfg))
                << cfg.name() << " jobs=" << jobs;
        }
    }
}

TEST(PolicyMatrix, EnumerateExpandsAxesWithoutPerturbingClassic)
{
    dse::CacheSpace classic;
    classic.sizesBytes = {2048, 4096};
    classic.assocs = {1, 2};
    classic.lineSizes = {16, 32};
    EXPECT_FALSE(classic.extendedAxes());

    auto base = classic.enumerate();
    for (const auto &cfg : base) {
        EXPECT_EQ(cfg.replacement, ReplacementPolicy::LRU);
        EXPECT_EQ(cfg.write, WritePolicy::WriteBack);
        // Classic names carry no policy suffix (cache keys and walk
        // outputs stay byte-identical to the LRU-only era).
        EXPECT_EQ(cfg.name().find("/lru"), std::string::npos);
        EXPECT_EQ(cfg.name().find("/wb"), std::string::npos);
    }

    auto extended = classic;
    extended.replacements = {ReplacementPolicy::LRU,
                             ReplacementPolicy::FIFO,
                             ReplacementPolicy::Random};
    extended.writePolicies = {WritePolicy::WriteBack,
                              WritePolicy::WriteThrough};
    EXPECT_TRUE(extended.extendedAxes());
    auto cells = extended.enumerate();
    EXPECT_EQ(cells.size(), base.size() * 6);

    // The policy loops are innermost: cell i*6 has the geometry of
    // base[i], and all six policy combinations follow consecutively
    // with unique names.
    for (size_t i = 0; i < base.size(); ++i) {
        std::vector<std::string> names;
        for (size_t j = 0; j < 6; ++j) {
            const auto &cfg = cells[i * 6 + j];
            EXPECT_EQ(cfg.sets, base[i].sets);
            EXPECT_EQ(cfg.assoc, base[i].assoc);
            EXPECT_EQ(cfg.lineBytes, base[i].lineBytes);
            names.push_back(cfg.name());
        }
        for (size_t a = 0; a < names.size(); ++a)
            for (size_t b = a + 1; b < names.size(); ++b)
                EXPECT_NE(names[a], names[b]);
    }

    // Suffix spot checks.
    cache::CacheConfig fifo_wt{16, 2, 32, 1, ReplacementPolicy::FIFO,
                               WritePolicy::WriteThrough};
    EXPECT_NE(fifo_wt.name().find("/fifo"), std::string::npos);
    EXPECT_NE(fifo_wt.name().find("/wt"), std::string::npos);
    cache::CacheConfig rand_wb{16, 2, 32, 1,
                               ReplacementPolicy::Random,
                               WritePolicy::WriteBack};
    EXPECT_NE(rand_wb.name().find("/rand"), std::string::npos);
    EXPECT_EQ(rand_wb.name().find("/wb"), std::string::npos);
}

TEST(PolicyMatrix, WriteThroughAreaIsCheaperThanWriteBack)
{
    // The dirty bit is real silicon: dropping it must show up in the
    // area model (this is what makes write policies Pareto-visible
    // on the cost axis), while the write-back area stays the
    // LRU-only model's value.
    cache::CacheConfig wb{64, 2, 32};
    auto wt = wb;
    wt.write = WritePolicy::WriteThrough;
    EXPECT_LT(wt.areaCost(), wb.areaCost());
    auto fifo = wb;
    fifo.replacement = ReplacementPolicy::FIFO;
    EXPECT_EQ(fifo.areaCost(), wb.areaCost());
}

TEST(PolicyMatrix, IcacheDilationScalingStaysSaneForNonLru)
{
    // Non-LRU designs at dilation != 1 scale their simulated count
    // by the LRU twin's model ratio: the result must be finite,
    // non-negative, and exact at dilation 1.
    dse::CacheSpace space;
    space.sizesBytes = {2048, 4096};
    space.assocs = {1, 2};
    space.lineSizes = {32};
    space.replacements = {ReplacementPolicy::LRU,
                          ReplacementPolicy::FIFO};

    auto refs = randomWriteTrace(77, 4);
    // The synthetic trace is 1000 refs; shrink the model granule so
    // the AHH fit still sees several granules.
    dse::IcacheEvaluator eval(space, /*granule_refs=*/250);
    eval.evaluate([&](const dse::TraceSink &sink) {
        for (const auto &a : refs)
            sink(trace::Access{a.addr, true, false});
    });

    for (const auto &cfg : space.enumerate()) {
        double at_one = eval.misses(cfg, 1.0);
        EXPECT_EQ(at_one, eval.bank().misses(cfg)) << cfg.name();
        for (double dilation : {1.3, 2.0}) {
            double scaled = eval.misses(cfg, dilation);
            EXPECT_TRUE(std::isfinite(scaled)) << cfg.name();
            EXPECT_GE(scaled, 0.0) << cfg.name();
        }
    }
}

TEST(PolicyMatrix, AcceleratorWorkloadsDifferentiatePolicies)
{
    // Acceptance criterion: on the new tiled-matmul and Zipf
    // workloads, the extended-space D$ Pareto front must contain at
    // least one point that is not a default (LRU/write-back) design
    // — i.e. the new axes change actual design decisions.
    using machine::MachineDesc;
    for (const char *app : {"matmul-tile8", "zipf-lut"}) {
        auto prog = workloads::buildAndProfile(
            workloads::specByName(app), 6000);
        auto ref = workloads::buildFor(
            prog, MachineDesc::fromName("1111"));
        trace::TraceGenerator gen(prog, ref.sched, ref.bin);

        dse::CacheSpace space;
        space.sizesBytes = {1024, 2048, 4096, 8192};
        space.assocs = {1, 2, 4};
        space.lineSizes = {16, 32};
        space.replacements = {ReplacementPolicy::LRU,
                              ReplacementPolicy::FIFO,
                              ReplacementPolicy::Random};
        space.writePolicies = {WritePolicy::WriteBack,
                               WritePolicy::WriteThrough};

        dse::DcacheEvaluator eval(space);
        eval.evaluate([&](const dse::TraceSink &sink) {
            gen.generate(trace::TraceKind::Data, sink, 6000);
        });

        auto front = eval.pareto(/*miss_penalty=*/80.0,
                                 /*write_cost=*/6.0);
        bool has_non_default = false;
        for (const auto &point : front.points()) {
            if (point.id.find("/fifo") != std::string::npos ||
                point.id.find("/rand") != std::string::npos ||
                point.id.find("/wt") != std::string::npos)
                has_non_default = true;
        }
        EXPECT_TRUE(has_non_default)
            << app << ": front is all-default over "
            << front.points().size() << " point(s)";
    }
}

/** Flatten a Pareto set for exact comparison (order included). */
std::string
flatten(const dse::ParetoSet &set)
{
    std::ostringstream ss;
    ss.precision(17);
    for (const auto &p : set.points())
        ss << p.id << ";" << p.cost << ";" << p.time << "\n";
    return ss.str();
}

TEST(PolicyMatrix, ExtendedWalkIsJobCountInvariant)
{
    // The whole exploration — policy axes on, write cost in the
    // stall model, verification enabled — must stay bit-identical
    // across --jobs, exactly like the classic walk. This is the walk
    // -level guarantee that random replacement's geometry-derived
    // victim streams make possible.
    auto prog = workloads::buildAndProfile(
        workloads::specByName("zipf-dispatch"), 3000);

    dse::MemorySpaces spaces;
    dse::CacheSpace l1;
    l1.sizesBytes = {2048, 4096};
    l1.assocs = {1, 2};
    l1.lineSizes = {16, 32};
    spaces.icache = l1;
    spaces.dcache = l1;
    spaces.dcache.replacements = {ReplacementPolicy::LRU,
                                  ReplacementPolicy::FIFO,
                                  ReplacementPolicy::Random};
    spaces.dcache.writePolicies = {WritePolicy::WriteBack,
                                   WritePolicy::WriteThrough};
    dse::CacheSpace l2;
    l2.sizesBytes = {32768};
    l2.assocs = {4};
    l2.lineSizes = {64};
    spaces.ucache = l2;
    spaces.ucache.replacements = {ReplacementPolicy::LRU,
                                  ReplacementPolicy::FIFO};

    auto run = [&](unsigned jobs) {
        dse::Spacewalker::Options opts;
        opts.traceBlocks = 3000;
        opts.uGranule = 20000;
        opts.jobs = jobs;
        opts.verify = 1;
        opts.stalls.writeCost = 4.0;
        dse::Spacewalker walker(spaces, {"1111", "2211", "3221"},
                                opts);
        auto result = walker.explore(prog);
        EXPECT_TRUE(result.complete());
        EXPECT_TRUE(result.diagnostics.clean())
            << result.diagnostics.report();
        return flatten(result.processors) + "\n" +
               flatten(result.systems);
    };

    auto serial = run(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(8), serial);
}

} // namespace
} // namespace pico
