/**
 * @file
 * Fault-injection tests: the harness itself, plus every recovery
 * path it exists to exercise — trace corruption detection (strict
 * and lenient), crash-safe evaluation-cache persistence, and
 * per-design failure isolation in the spacewalker.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "dse/EvaluationCache.hpp"
#include "dse/Spacewalker.hpp"
#include "support/FaultInjection.hpp"
#include "trace/TraceFile.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico
{
namespace
{

using support::FaultInjector;
using support::ScopedFault;

class FaultInjection : public ::testing::Test
{
  protected:
    void TearDown() override { FaultInjector::instance().reset(); }

    static std::filesystem::path
    tmpFile(const std::string &name)
    {
        return std::filesystem::temp_directory_path() / name;
    }

    static void
    writeFile(const std::filesystem::path &p,
              const std::string &content)
    {
        std::ofstream out(p,
                          std::ios::trunc | std::ios::binary);
        out << content;
    }

    /** Replace one line (0-based, header = 0) of a text file. */
    static void
    replaceLine(const std::filesystem::path &p, size_t index,
                const std::string &replacement)
    {
        std::ifstream in(p);
        std::vector<std::string> lines;
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
        in.close();
        ASSERT_LT(index, lines.size());
        lines[index] = replacement;
        std::ostringstream joined;
        for (const auto &l : lines)
            joined << l << '\n';
        writeFile(p, joined.str());
    }

    /** Write a small v2 trace and return the record set. */
    static std::vector<trace::Access>
    writeTrace(const std::filesystem::path &p, size_t n = 20)
    {
        std::vector<trace::Access> accesses;
        trace::TraceFileWriter writer(p.string());
        for (size_t i = 0; i < n; ++i) {
            trace::Access a;
            a.addr = 0x1000 + 4 * i;
            a.isInstr = i % 3 == 0;
            a.isWrite = !a.isInstr && i % 3 == 1;
            writer.write(a);
            accesses.push_back(a);
        }
        writer.close();
        return accesses;
    }
};

// --- the injector itself ----------------------------------------------

TEST_F(FaultInjection, UnarmedSitesAreFree)
{
    EXPECT_NO_THROW(support::faultPoint("never-armed"));
    EXPECT_FALSE(FaultInjector::instance().anyArmed());
}

TEST_F(FaultInjection, ArmedSiteFiresOnceThenDisarms)
{
    FaultInjector::instance().arm("site-a");
    EXPECT_THROW(support::faultPoint("site-a"), FaultInjectedError);
    EXPECT_NO_THROW(support::faultPoint("site-a"));
    EXPECT_EQ(FaultInjector::instance().hits("site-a"), 2u);
}

TEST_F(FaultInjection, SkipCountDelaysTheFault)
{
    FaultInjector::instance().arm("site-b", /*skip=*/2);
    EXPECT_NO_THROW(support::faultPoint("site-b"));
    EXPECT_NO_THROW(support::faultPoint("site-b"));
    EXPECT_THROW(support::faultPoint("site-b"), FaultInjectedError);
}

TEST_F(FaultInjection, OtherSitesAreUnaffected)
{
    FaultInjector::instance().arm("site-c");
    EXPECT_NO_THROW(support::faultPoint("site-d"));
    EXPECT_THROW(support::faultPoint("site-c"), FaultInjectedError);
}

TEST_F(FaultInjection, ScopedFaultDisarmsOnExit)
{
    {
        ScopedFault f("site-e", /*skip=*/0, /*fires=*/0);
        EXPECT_THROW(support::faultPoint("site-e"),
                     FaultInjectedError);
    }
    EXPECT_NO_THROW(support::faultPoint("site-e"));
}

TEST_F(FaultInjection, CorruptionOffsetsAreDeterministic)
{
    auto path = tmpFile("pico_fi_offsets.bin");
    writeFile(path, std::string(256, 'x'));
    auto a = support::corruptionOffsets(path.string(), 42, 8, 16);
    auto b = support::corruptionOffsets(path.string(), 42, 8, 16);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 8u);
    for (auto off : a) {
        EXPECT_GE(off, 16u);
        EXPECT_LT(off, 256u);
    }
    auto c = support::corruptionOffsets(path.string(), 43, 8, 16);
    EXPECT_NE(a, c);
    std::filesystem::remove(path);
}

// --- trace corruption --------------------------------------------------

TEST_F(FaultInjection, TruncatedTraceRejectedStrict)
{
    auto path = tmpFile("pico_fi_trunc.trace");
    writeTrace(path);
    // Drop the tail (footer and then some): the classic killed-
    // mid-write artifact. Never silently accepted.
    auto size = std::filesystem::file_size(path);
    support::truncateFile(path.string(), size * 6 / 10);

    trace::TraceFileReader reader(path.string());
    trace::Access a;
    try {
        while (reader.next(a)) {
        }
        FAIL() << "truncated trace accepted as clean EOF";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("byte"),
                  std::string::npos)
            << "error must name the position: " << e.what();
    }
    std::filesystem::remove(path);
}

TEST_F(FaultInjection, TruncatedTraceAccountedLenient)
{
    auto path = tmpFile("pico_fi_trunc_lenient.trace");
    auto accesses = writeTrace(path);
    auto size = std::filesystem::file_size(path);
    support::truncateFile(path.string(), size * 6 / 10);

    trace::TraceFileReader reader(path.string(),
                                  trace::TraceReadMode::Lenient);
    uint64_t n = reader.replay([](const trace::Access &) {});
    EXPECT_LT(n, accesses.size());
    const auto &s = reader.summary();
    EXPECT_TRUE(s.footerMissing);
    EXPECT_FALSE(s.clean());
    EXPECT_EQ(s.recordsRead, n);
    std::filesystem::remove(path);
}

TEST_F(FaultInjection, CorruptRecordDroppedCountIsExact)
{
    auto path = tmpFile("pico_fi_badline.trace");
    auto accesses = writeTrace(path);
    // Corrupt two record lines but leave the footer intact: the
    // footer count makes the dropped-record accounting exact.
    replaceLine(path, 5, "not a record");
    replaceLine(path, 9, "2 zz@@");

    trace::TraceFileReader reader(path.string(),
                                  trace::TraceReadMode::Lenient);
    uint64_t n = reader.replay([](const trace::Access &) {});
    EXPECT_EQ(n, accesses.size() - 2);
    const auto &s = reader.summary();
    EXPECT_EQ(s.corruptLines, 2u);
    EXPECT_EQ(s.expectedRecords, accesses.size());
    EXPECT_EQ(s.droppedRecords(), 2u);
    EXPECT_TRUE(s.countMismatch);
    EXPECT_FALSE(s.clean());

    // The same file in strict mode is rejected outright.
    trace::TraceFileReader strict(path.string());
    trace::Access a;
    EXPECT_THROW(
        while (strict.next(a)) {}, FatalError);
    std::filesystem::remove(path);
}

TEST_F(FaultInjection, BitFlipNeverReadsClean)
{
    auto path = tmpFile("pico_fi_bitflip.trace");
    writeTrace(path, 50);
    // Deterministic seed-driven corruption, past the header so the
    // file still opens.
    auto offsets = support::corruptionOffsets(
        path.string(), /*seed=*/7, /*n=*/3,
        std::string(trace::traceHeaderV2).size() + 1);
    for (auto off : offsets)
        support::flipBit(path.string(), off, 6);

    // Whatever the flips hit — a record, a newline, the footer —
    // the count+checksum pair must notice.
    trace::TraceFileReader reader(path.string(),
                                  trace::TraceReadMode::Lenient);
    reader.replay([](const trace::Access &) {});
    EXPECT_FALSE(reader.summary().clean());
    std::filesystem::remove(path);
}

TEST_F(FaultInjection, WriterCrashLeavesDetectableFile)
{
    auto path = tmpFile("pico_fi_writer_crash.trace");
    {
        // Injected failure on close (armed permanently so the
        // destructor's retry fails too): the footer is never
        // written, as if the process died. The destructor must
        // swallow the error (never throw during unwind).
        ScopedFault f("TraceFileWriter::close:before-footer",
                      /*skip=*/0, /*fires=*/0);
        trace::TraceFileWriter writer(path.string());
        trace::Access a;
        a.addr = 0x2000;
        writer.write(a);
        EXPECT_THROW(writer.close(), FaultInjectedError);
    }
    trace::TraceFileReader reader(path.string(),
                                  trace::TraceReadMode::Lenient);
    reader.replay([](const trace::Access &) {});
    EXPECT_TRUE(reader.summary().footerMissing);
    std::filesystem::remove(path);
}

// --- evaluation-cache crash safety ------------------------------------

TEST_F(FaultInjection, CacheCrashBeforeRenameKeepsOldGeneration)
{
    auto path = tmpFile("pico_fi_cache_rename.db");
    auto tmp = path.string() + ".tmp";
    std::filesystem::remove(path);
    std::filesystem::remove(tmp);
    {
        dse::EvaluationCache cache(path.string());
        cache.store("gen1", {1.0});
        cache.flush(); // generation 1 on disk

        cache.store("gen2", {2.0});
        {
            ScopedFault f("EvaluationCache::save:before-rename");
            EXPECT_THROW(cache.flush(), FaultInjectedError);
        }
        // The "crash" hit after the tmp write, before the rename:
        // the live database is still generation 1, loadable.
        EXPECT_TRUE(std::filesystem::exists(tmp));
        dse::EvaluationCache survivor(path.string());
        std::vector<double> v;
        EXPECT_TRUE(survivor.lookup("gen1", v));
        EXPECT_FALSE(survivor.lookup("gen2", v));

        // cache is still dirty; its destructor retries the flush.
        EXPECT_TRUE(cache.dirty());
    }
    dse::EvaluationCache reloaded(path.string());
    std::vector<double> v;
    EXPECT_TRUE(reloaded.lookup("gen1", v));
    EXPECT_TRUE(reloaded.lookup("gen2", v));
    std::filesystem::remove(path);
    std::filesystem::remove(tmp);
}

TEST_F(FaultInjection, CacheCrashBeforeWriteKeepsOldGeneration)
{
    auto path = tmpFile("pico_fi_cache_write.db");
    std::filesystem::remove(path);
    dse::EvaluationCache cache(path.string());
    cache.store("gen1", {1.0});
    cache.flush();
    cache.store("gen2", {2.0});
    {
        ScopedFault f("EvaluationCache::save:before-write");
        EXPECT_THROW(cache.flush(), FaultInjectedError);
    }
    dse::EvaluationCache survivor(path.string());
    std::vector<double> v;
    EXPECT_TRUE(survivor.lookup("gen1", v));
    EXPECT_FALSE(survivor.lookup("gen2", v));
    std::filesystem::remove(path);
}

TEST_F(FaultInjection, CacheDestructorNeverThrows)
{
    auto path = tmpFile("pico_fi_cache_dtor.db");
    std::filesystem::remove(path);
    auto cache =
        std::make_unique<dse::EvaluationCache>(path.string());
    cache->store("k", {1.0});
    ScopedFault f("EvaluationCache::save:before-rename",
                  /*skip=*/0, /*fires=*/0);
    EXPECT_NO_THROW(cache.reset());
    std::filesystem::remove(path);
    std::filesystem::remove(path.string() + ".tmp");
}

TEST_F(FaultInjection, HalfWrittenTmpIsIgnoredOnLoad)
{
    auto path = tmpFile("pico_fi_cache_tmp.db");
    std::filesystem::remove(path);
    {
        dse::EvaluationCache cache(path.string());
        cache.store("k", {4.5});
    }
    // Simulate a crash mid-tmp-write from some earlier run.
    writeFile(path.string() + ".tmp", "picoeval-evalcache-v2\nk|9");
    dse::EvaluationCache cache(path.string());
    std::vector<double> v;
    ASSERT_TRUE(cache.lookup("k", v));
    EXPECT_EQ(v, std::vector<double>{4.5});
    std::filesystem::remove(path);
    std::filesystem::remove(path.string() + ".tmp");
}

// --- spacewalker failure isolation ------------------------------------

dse::MemorySpaces
tinySpaces()
{
    dse::MemorySpaces spaces;
    dse::CacheSpace l1;
    l1.sizesBytes = {4096};
    l1.assocs = {1};
    l1.lineSizes = {32};
    spaces.icache = l1;
    spaces.dcache = l1;
    dse::CacheSpace l2;
    l2.sizesBytes = {65536};
    l2.assocs = {4};
    l2.lineSizes = {64};
    spaces.ucache = l2;
    return spaces;
}

dse::Spacewalker::Options
tinyOptions()
{
    dse::Spacewalker::Options opts;
    opts.traceBlocks = 8000;
    opts.uGranule = 40000;
    return opts;
}

TEST_F(FaultInjection, InjectedDesignFailureIsIsolated)
{
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 8000);
    dse::Spacewalker walker(tinySpaces(), {"1111", "2111", "3221"},
                            tinyOptions());
    // Poison only the second design evaluation.
    ScopedFault f("Spacewalker::evaluateDesign", /*skip=*/1);
    auto result = walker.explore(prog);

    EXPECT_FALSE(result.complete());
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures.entries()[0].design, "2111");
    EXPECT_NE(result.failures.entries()[0].reason.find(
                  "injected fault"),
              std::string::npos);
    EXPECT_EQ(result.evaluatedDesigns, 2u);
    EXPECT_EQ(result.dilations.count("2111"), 0u);
    EXPECT_EQ(result.dilations.count("1111"), 1u);
    EXPECT_EQ(result.dilations.count("3221"), 1u);
    EXPECT_FALSE(result.systems.empty());
    EXPECT_FALSE(result.failures.report().empty());
}

TEST_F(FaultInjection, CheckpointSurvivesWalkCrash)
{
    auto path = tmpFile("pico_fi_checkpoint.db");
    std::filesystem::remove(path);
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 8000);

    auto opts = tinyOptions();
    opts.evaluationCachePath = path.string();
    opts.checkpointEvery = 1;
    opts.haltOnFailure = true;
    {
        dse::Spacewalker walker(tinySpaces(), {"1111", "3221"},
                                opts);
        ScopedFault f("Spacewalker::evaluateDesign", /*skip=*/1);
        EXPECT_THROW(walker.explore(prog), FaultInjectedError);

        // Before the walker (and its destructor-time save) goes
        // away: the first design's metrics were already
        // checkpointed to disk.
        dse::EvaluationCache snapshot(path.string());
        EXPECT_EQ(snapshot.loadedEntries(), 1u);
    }
    // A fresh walker resumes from the checkpoint: the surviving
    // design is served from the cache, only the crashed one is
    // recomputed.
    auto opts2 = tinyOptions();
    opts2.evaluationCachePath = path.string();
    dse::Spacewalker resumed(tinySpaces(), {"1111", "3221"}, opts2);
    auto result = resumed.explore(prog);
    EXPECT_TRUE(result.complete());
    EXPECT_GE(resumed.evaluationCache().hits(), 1u);
    std::filesystem::remove(path);
}

} // namespace
} // namespace pico
