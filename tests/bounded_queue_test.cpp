/**
 * @file
 * Unit tests for the serving-layer support primitives: the bounded
 * admission queue, full-jitter backoff, and cooperative cancellation
 * tokens.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/Backoff.hpp"
#include "support/BoundedQueue.hpp"
#include "support/CancelToken.hpp"
#include "support/Random.hpp"

namespace pico
{
namespace
{

using support::Backoff;
using support::BoundedQueue;
using support::CancelCheck;
using support::CancelToken;
using support::QueuePush;

// ---------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(q.tryPush(i), QueuePush::Ok);
    int out = -1;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.pop(out));
        EXPECT_EQ(out, i);
    }
}

TEST(BoundedQueue, ShedsAtWatermark)
{
    BoundedQueue<int> q(4, 2);
    EXPECT_EQ(q.tryPush(1), QueuePush::Ok);
    EXPECT_EQ(q.tryPush(2), QueuePush::Ok);
    // Depth == watermark: shed, even though capacity remains.
    EXPECT_EQ(q.tryPush(3), QueuePush::AtWatermark);
    EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, WatermarkDefaultsToCapacity)
{
    BoundedQueue<int> q(2);
    EXPECT_EQ(q.tryPush(1), QueuePush::Ok);
    EXPECT_EQ(q.tryPush(2), QueuePush::Ok);
    EXPECT_EQ(q.tryPush(3), QueuePush::Full);
}

TEST(BoundedQueue, RejectsAfterClose)
{
    BoundedQueue<int> q(4);
    EXPECT_EQ(q.tryPush(1), QueuePush::Ok);
    q.close();
    EXPECT_EQ(q.tryPush(2), QueuePush::Closed);
    // Admitted work still drains.
    int out = 0;
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_FALSE(q.pop(out));
}

TEST(BoundedQueue, CloseAndDrainReturnsLeftovers)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 4; ++i)
        q.tryPush(i);
    auto leftover = q.closeAndDrain();
    ASSERT_EQ(leftover.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(leftover[static_cast<size_t>(i)], i);
    int out = 0;
    EXPECT_FALSE(q.pop(out)); // nothing left for consumers
}

TEST(BoundedQueue, CloseWakesBlockedConsumer)
{
    BoundedQueue<int> q(4);
    std::atomic<bool> exited{false};
    std::thread consumer([&] {
        int out = 0;
        while (q.pop(out)) {
        }
        exited.store(true);
    });
    support::sleepForMs(10);
    EXPECT_FALSE(exited.load());
    q.close();
    consumer.join();
    EXPECT_TRUE(exited.load());
}

TEST(BoundedQueue, CloseWakesEveryBlockedWaiter)
{
    // Shutdown with a *crowd* of parked consumers: close() must wake
    // them all (notify_all, not notify_one) and each must observe
    // closed-and-empty, returning false exactly once.
    BoundedQueue<int> q(4);
    constexpr int kWaiters = 4;
    std::atomic<int> falseReturns{0};
    std::vector<std::thread> waiters;
    for (int w = 0; w < kWaiters; ++w) {
        waiters.emplace_back([&] {
            int out = 0;
            if (!q.pop(out))
                falseReturns.fetch_add(1);
        });
    }
    // Give the waiters time to park in pop()'s cv wait.
    support::sleepForMs(20);
    q.close();
    for (auto &t : waiters)
        t.join();
    EXPECT_EQ(falseReturns.load(), kWaiters);
}

TEST(BoundedQueue, CloseAndDrainStarvesBlockedWaiters)
{
    // closeAndDrain() confiscates the backlog; consumers parked in
    // pop() must all come back empty-handed — the items belong to
    // the drainer now, not to whichever waiter wakes first.
    BoundedQueue<int> q(8);
    for (int i = 0; i < 3; ++i)
        ASSERT_EQ(q.tryPush(i), QueuePush::Ok);
    // Drain the backlog first so the waiters actually block.
    int out = 0;
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(q.pop(out));
    constexpr int kWaiters = 3;
    std::atomic<int> falseReturns{0};
    std::vector<std::thread> waiters;
    for (int w = 0; w < kWaiters; ++w) {
        waiters.emplace_back([&] {
            int v = 0;
            if (!q.pop(v))
                falseReturns.fetch_add(1);
        });
    }
    support::sleepForMs(20);
    // Race one late producer against the shutdown: whatever lands in
    // the queue must end up with the drainer or one consumer, never
    // both and never lost.
    (void)q.tryPush(99);
    auto leftover = q.closeAndDrain();
    for (auto &t : waiters)
        t.join();
    EXPECT_TRUE(q.closed());
    // Every parked waiter either got the late item or returned false,
    // and the item went to exactly one place — drainer or consumer.
    const int consumed = kWaiters - falseReturns.load();
    EXPECT_GE(falseReturns.load(), kWaiters - 1);
    EXPECT_LE(leftover.size(), 1u);
    EXPECT_EQ(static_cast<int>(leftover.size()) + consumed, 1);
}

TEST(BoundedQueue, PeakDepthNeverExceedsWatermark)
{
    BoundedQueue<int> q(64, 8);
    std::atomic<uint64_t> accepted{0}, shed{0};
    std::atomic<uint64_t> popped{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&] {
            for (int i = 0; i < 200; ++i) {
                if (q.tryPush(i) == QueuePush::Ok)
                    accepted.fetch_add(1);
                else
                    shed.fetch_add(1);
            }
        });
    }
    std::thread consumer([&] {
        int out = 0;
        while (q.pop(out))
            popped.fetch_add(1);
    });
    for (auto &t : producers)
        t.join();
    q.close();
    consumer.join();
    // Conservation: everything accepted was popped, nothing else.
    EXPECT_EQ(accepted.load(), popped.load());
    EXPECT_EQ(accepted.load() + shed.load(), 800u);
    // The watermark bound held at every instant.
    EXPECT_LE(q.peakDepth(), q.watermark());
}

// ---------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------

TEST(Backoff, DelaysStayWithinEnvelope)
{
    Backoff b(Rng::forStream(7, 0), 2, 64);
    uint64_t ceiling = 2;
    for (int k = 0; k < 10; ++k) {
        uint64_t d = b.nextDelayMs();
        EXPECT_LE(d, std::min<uint64_t>(ceiling, 64));
        if (ceiling < 64)
            ceiling *= 2;
    }
    EXPECT_EQ(b.attempts(), 10u);
}

TEST(Backoff, RespectsRetryAfterFloor)
{
    Backoff b(Rng::forStream(7, 1), 2, 64);
    for (int k = 0; k < 8; ++k)
        EXPECT_GE(b.nextDelayMs(50), 50u);
}

TEST(Backoff, DeterministicPerStream)
{
    Backoff a(Rng::forStream(42, 3), 2, 250);
    Backoff b(Rng::forStream(42, 3), 2, 250);
    for (int k = 0; k < 12; ++k)
        EXPECT_EQ(a.nextDelayMs(), b.nextDelayMs());
    // Distinct streams decorrelate (not all-equal across attempts).
    Backoff c(Rng::forStream(42, 4), 2, 250);
    Backoff d(Rng::forStream(42, 3), 2, 250);
    bool any_diff = false;
    for (int k = 0; k < 12; ++k)
        any_diff |= c.nextDelayMs() != d.nextDelayMs();
    EXPECT_TRUE(any_diff);
}

TEST(Backoff, ResetRestartsTheSequence)
{
    Backoff b(Rng::forStream(1, 0), 4, 1024);
    for (int k = 0; k < 6; ++k)
        b.nextDelayMs();
    b.reset();
    EXPECT_EQ(b.attempts(), 0u);
    // Post-reset first delay is bounded by the base again.
    EXPECT_LE(b.nextDelayMs(), 4u);
}

TEST(Backoff, RejectsBadConfiguration)
{
    EXPECT_THROW(Backoff(Rng::forStream(1, 0), 0, 10), PanicError);
    EXPECT_THROW(Backoff(Rng::forStream(1, 0), 10, 5), PanicError);
}

// ---------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------

TEST(CancelToken, DefaultTokenNeverCancels)
{
    CancelToken t;
    EXPECT_FALSE(t.cancelled());
    EXPECT_FALSE(t.hasDeadline());
    EXPECT_NO_THROW(t.checkpoint("test"));
    EXPECT_EQ(t.remainingNs(), CancelToken::noDeadline);
}

TEST(CancelToken, CancelLatchesAndCheckpointThrows)
{
    CancelToken t;
    t.cancel();
    EXPECT_TRUE(t.cancelled());
    EXPECT_THROW(t.checkpoint("stage"), CancelledError);
    // Monotonic: still cancelled.
    EXPECT_TRUE(t.cancelled());
}

TEST(CancelToken, DeadlineExpires)
{
    CancelToken t = CancelToken::afterMs(5);
    EXPECT_TRUE(t.hasDeadline());
    support::sleepForMs(20);
    EXPECT_TRUE(t.cancelled());
    EXPECT_EQ(t.remainingNs(), 0u);
    EXPECT_THROW(t.checkpoint("late"), CancelledError);
}

TEST(CancelToken, FutureDeadlineNotYetCancelled)
{
    CancelToken t = CancelToken::afterMs(60000);
    EXPECT_FALSE(t.cancelled());
    EXPECT_GT(t.remainingNs(), 0u);
    EXPECT_NO_THROW(t.checkpoint("early"));
}

TEST(CancelToken, CancelVisibleAcrossThreads)
{
    CancelToken t;
    std::atomic<bool> saw{false};
    std::thread watcher([&] {
        while (!t.cancelled())
            support::sleepForMs(1);
        saw.store(true);
    });
    support::sleepForMs(5);
    t.cancel();
    watcher.join();
    EXPECT_TRUE(saw.load());
}

TEST(CancelCheck, ChecksOnStrideBoundary)
{
    CancelToken t;
    t.cancel();
    CancelCheck check(&t, 4);
    // Ticks 1..3 are below the stride: no check yet.
    EXPECT_NO_THROW(check.tick("hot"));
    EXPECT_NO_THROW(check.tick("hot"));
    EXPECT_NO_THROW(check.tick("hot"));
    EXPECT_THROW(check.tick("hot"), CancelledError);
}

TEST(CancelCheck, NullTokenIsFree)
{
    CancelCheck check(nullptr, 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_NO_THROW(check.tick("hot"));
}

} // namespace
} // namespace pico
