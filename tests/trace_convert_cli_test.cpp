/**
 * @file
 * End-to-end exit-code contract of the trace_convert tool: scripts
 * depend on distinguishing bad usage (2) from corrupt input (3) from
 * I/O failure (4) from success (0). The tool binary's path arrives
 * via the TRACE_CONVERT_BIN compile definition.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include <sys/wait.h>

#include "trace/TraceFile.hpp"

namespace pico
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/** Run the tool, returning its exit code (-1 on abnormal exit). */
int
runTool(const std::string &args)
{
    std::string cmd = std::string(TRACE_CONVERT_BIN) + " " + args +
                      " >/dev/null 2>&1";
    int status = std::system(cmd.c_str());
    if (status == -1 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

/** A small, valid v2 trace file. */
std::string
writeValidTrace(const std::string &name)
{
    std::string path = tempPath(name);
    trace::TraceFileWriter writer(path);
    for (uint64_t i = 0; i < 16; ++i) {
        trace::Access a;
        a.addr = 0x1000 + i * 4;
        a.isInstr = i % 2 == 0;
        a.isWrite = false;
        writer.write(a);
    }
    writer.close();
    return path;
}

TEST(TraceConvertCli, SucceedsOnValidInput)
{
    std::string in = writeValidTrace("tc_ok.trace");
    std::string out = tempPath("tc_ok.v3");
    EXPECT_EQ(runTool(in + " " + out + " --format v3"), 0);
    EXPECT_EQ(runTool(out + " " + tempPath("tc_ok_back.trace") +
                      " --format v2"),
              0);
}

TEST(TraceConvertCli, BadUsageExits2)
{
    EXPECT_EQ(runTool(""), 2);                     // no arguments
    EXPECT_EQ(runTool("only_input.trace"), 2);     // missing output
    std::string in = writeValidTrace("tc_usage.trace");
    EXPECT_EQ(runTool(in + " " + tempPath("x") + " --format v9"),
              2); // unknown format
}

TEST(TraceConvertCli, CorruptInputExits3)
{
    // Not a trace file at all.
    std::string garbage = tempPath("tc_garbage.trace");
    std::ofstream(garbage) << "this is not a trace\n";
    EXPECT_EQ(runTool(garbage + " " + tempPath("tc_g.out")), 3);

    // A real v2 file with a flipped record: checksum mismatch.
    std::string in = writeValidTrace("tc_corrupt.trace");
    {
        std::ifstream src(in);
        std::string contents((std::istreambuf_iterator<char>(src)),
                             std::istreambuf_iterator<char>());
        auto pos = contents.find("1000");
        ASSERT_NE(pos, std::string::npos);
        contents.replace(pos, 4, "2000");
        std::ofstream(in, std::ios::trunc) << contents;
    }
    EXPECT_EQ(runTool(in + " " + tempPath("tc_c.out")), 3);
}

TEST(TraceConvertCli, IoErrorExits4)
{
    // Input that does not exist.
    EXPECT_EQ(runTool(tempPath("does_not_exist.trace") + " " +
                      tempPath("tc_io.out")),
              4);
    // Output in a directory that does not exist.
    std::string in = writeValidTrace("tc_io_in.trace");
    EXPECT_EQ(runTool(in + " /no/such/dir/tc_io.out"), 4);
}

} // namespace
} // namespace pico
