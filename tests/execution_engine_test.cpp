/**
 * @file
 * Unit tests for the execution engine: determinism, machine
 * independence of the event trace, control-flow semantics (calls,
 * loops, restarts), data-address patterns, and profiling.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "trace/ExecutionEngine.hpp"
#include "workloads/AppSpec.hpp"

namespace pico::trace
{
namespace
{

struct BlockVisit
{
    uint32_t func;
    uint32_t block;
    std::vector<DataRef> data;
};

std::vector<BlockVisit>
record(const ir::Program &prog, uint64_t max_blocks)
{
    std::vector<BlockVisit> out;
    ExecutionEngine engine(prog);
    engine.run(
        [&out](uint32_t f, uint32_t b,
               const std::vector<DataRef> &data) {
            out.push_back({f, b, data});
        },
        max_blocks);
    return out;
}

TEST(ExecutionEngine, RespectsBlockBudget)
{
    auto prog = workloads::buildProgram(workloads::AppSpec{});
    ExecutionEngine engine(prog);
    uint64_t n = engine.run(
        [](uint32_t, uint32_t, const std::vector<DataRef> &) {},
        1234);
    EXPECT_EQ(n, 1234u);
}

TEST(ExecutionEngine, DeterministicAcrossRuns)
{
    auto prog = workloads::buildProgram(workloads::AppSpec{});
    auto a = record(prog, 3000);
    auto b = record(prog, 3000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].func, b[i].func);
        EXPECT_EQ(a[i].block, b[i].block);
        ASSERT_EQ(a[i].data.size(), b[i].data.size());
        for (size_t j = 0; j < a[i].data.size(); ++j)
            EXPECT_EQ(a[i].data[j].addr, b[i].data[j].addr);
    }
}

TEST(ExecutionEngine, StartsAtEntryBlock)
{
    auto prog = workloads::buildProgram(workloads::AppSpec{});
    auto visits = record(prog, 10);
    ASSERT_FALSE(visits.empty());
    EXPECT_EQ(visits[0].func, prog.entryFunction);
    EXPECT_EQ(visits[0].block, 0u);
}

TEST(ExecutionEngine, CallsEnterCalleeEntryAndReturn)
{
    // Build: f0 = [b0 calls f1, then falls to b1]; f1 = [b0, b1].
    ir::Program prog;
    prog.name = "calls";
    prog.streams.push_back({});
    ir::Operation alu;
    ir::Operation br;
    br.opClass = ir::OpClass::Branch;

    ir::Function f0;
    f0.name = "f0";
    ir::BasicBlock b0;
    b0.ops = {alu, br};
    b0.callee = 1;
    b0.succs.push_back({1, 1.0});
    ir::BasicBlock b1;
    b1.ops = {alu, br};
    f0.blocks = {b0, b1};

    ir::Function f1;
    f1.name = "f1";
    ir::BasicBlock c0;
    c0.ops = {alu, br};
    c0.succs.push_back({1, 1.0});
    ir::BasicBlock c1;
    c1.ops = {alu, br};
    f1.blocks = {c0, c1};

    prog.functions = {f0, f1};
    prog.finalize();

    auto visits = record(prog, 4);
    ASSERT_EQ(visits.size(), 4u);
    // f0.b0, then callee f1 runs to completion, then f0's edge.
    EXPECT_EQ(visits[0].func, 0u);
    EXPECT_EQ(visits[0].block, 0u);
    EXPECT_EQ(visits[1].func, 1u);
    EXPECT_EQ(visits[1].block, 0u);
    EXPECT_EQ(visits[2].func, 1u);
    EXPECT_EQ(visits[2].block, 1u);
    EXPECT_EQ(visits[3].func, 0u);
    EXPECT_EQ(visits[3].block, 1u);
}

TEST(ExecutionEngine, RestartsAfterProgramCompletes)
{
    // Single function, single fall-through chain: after the last
    // block the engine restarts at the entry.
    ir::Program prog;
    prog.name = "restart";
    prog.streams.push_back({});
    ir::Operation alu;
    ir::Operation br;
    br.opClass = ir::OpClass::Branch;
    ir::Function f;
    f.name = "main";
    ir::BasicBlock b0;
    b0.ops = {alu, br};
    b0.succs.push_back({1, 1.0});
    ir::BasicBlock b1;
    b1.ops = {alu, br};
    f.blocks = {b0, b1};
    prog.functions = {f};
    prog.finalize();

    auto visits = record(prog, 6);
    std::vector<uint32_t> blocks;
    for (const auto &v : visits)
        blocks.push_back(v.block);
    EXPECT_EQ(blocks, (std::vector<uint32_t>{0, 1, 0, 1, 0, 1}));
}

TEST(ExecutionEngine, SequentialStreamAdvances)
{
    ir::Program prog;
    prog.name = "seq";
    ir::DataStream stream;
    stream.pattern = ir::AccessPattern::Sequential;
    stream.sizeWords = 100;
    prog.streams.push_back(stream);

    ir::Operation load;
    load.opClass = ir::OpClass::Memory;
    load.memKind = ir::MemKind::Load;
    ir::Operation br;
    br.opClass = ir::OpClass::Branch;
    ir::Function f;
    f.name = "main";
    ir::BasicBlock b;
    b.ops = {load, br};
    f.blocks = {b};
    prog.functions = {f};
    prog.finalize();

    auto visits = record(prog, 5);
    uint64_t base = prog.streams[0].baseAddr;
    for (size_t i = 0; i < visits.size(); ++i) {
        ASSERT_EQ(visits[i].data.size(), 1u);
        EXPECT_EQ(visits[i].data[0].addr, base + i * 4);
        EXPECT_FALSE(visits[i].data[0].isStore);
    }
}

TEST(ExecutionEngine, DataRefsCarryOpIndexAndStoreFlag)
{
    ir::Program prog;
    prog.name = "refs";
    ir::DataStream stream;
    stream.sizeWords = 64;
    prog.streams.push_back(stream);

    ir::Operation load;
    load.opClass = ir::OpClass::Memory;
    load.memKind = ir::MemKind::Load;
    ir::Operation store;
    store.opClass = ir::OpClass::Memory;
    store.memKind = ir::MemKind::Store;
    ir::Operation alu;
    ir::Operation br;
    br.opClass = ir::OpClass::Branch;

    ir::Function f;
    f.name = "main";
    ir::BasicBlock b;
    b.ops = {alu, load, alu, store, br};
    f.blocks = {b};
    prog.functions = {f};
    prog.finalize();

    auto visits = record(prog, 1);
    ASSERT_EQ(visits[0].data.size(), 2u);
    EXPECT_EQ(visits[0].data[0].opIndex, 1u);
    EXPECT_FALSE(visits[0].data[0].isStore);
    EXPECT_EQ(visits[0].data[1].opIndex, 3u);
    EXPECT_TRUE(visits[0].data[1].isStore);
}

TEST(ExecutionEngine, LoopTripsFollowEdgeProbabilities)
{
    // A self-loop taken with probability 0.75 has mean 4 visits per
    // entry.
    ir::Program prog;
    prog.name = "loop";
    prog.streams.push_back({});
    ir::Operation alu;
    ir::Operation br;
    br.opClass = ir::OpClass::Branch;
    ir::Function f;
    f.name = "main";
    ir::BasicBlock b0;
    b0.ops = {alu, br};
    b0.succs.push_back({0, 0.75});
    b0.succs.push_back({1, 0.25});
    ir::BasicBlock b1;
    b1.ops = {alu, br};
    f.blocks = {b0, b1};
    prog.functions = {f};
    prog.finalize();

    auto visits = record(prog, 50000);
    uint64_t loop_visits = 0, exit_visits = 0;
    for (const auto &v : visits) {
        if (v.block == 0)
            ++loop_visits;
        else
            ++exit_visits;
    }
    double ratio = static_cast<double>(loop_visits) /
                   static_cast<double>(exit_visits);
    EXPECT_NEAR(ratio, 4.0, 0.3);
}

TEST(ExecutionEngine, ProfileCountsMatchEventTrace)
{
    auto prog = workloads::buildProgram(workloads::AppSpec{});
    const uint64_t budget = 20000;
    ExecutionEngine::profile(prog, budget);

    std::map<std::pair<uint32_t, uint32_t>, uint64_t> counts;
    for (const auto &v : record(prog, budget))
        ++counts[{v.func, v.block}];

    uint64_t total = 0;
    for (size_t fi = 0; fi < prog.functions.size(); ++fi) {
        for (size_t bi = 0; bi < prog.functions[fi].blocks.size();
             ++bi) {
            auto key = std::make_pair(static_cast<uint32_t>(fi),
                                      static_cast<uint32_t>(bi));
            uint64_t expect =
                counts.count(key) ? counts.at(key) : 0;
            EXPECT_EQ(prog.functions[fi].blocks[bi].profileCount,
                      expect);
            total += expect;
        }
    }
    EXPECT_EQ(total, budget);
}

TEST(ExecutionEngine, RequiresFinalizedProgram)
{
    ir::Program prog;
    prog.name = "raw";
    EXPECT_THROW(ExecutionEngine engine(prog), FatalError);
}

} // namespace
} // namespace pico::trace
