/**
 * @file
 * Tests for the runtime lock-rank checker (support/LockRank.hpp).
 *
 * The checker is the dynamic half of the concurrency-soundness story:
 * tools/picoeval-lockcheck.py proves the *source* obeys the rank
 * discipline lexically, and the thread-local checker here catches the
 * acquisitions the static pass cannot see (function pointers, locks
 * taken across translation units). These tests prove the checker
 * itself works — most importantly that a deliberately inverted
 * acquisition trips it and names both locks.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "support/LockRank.hpp"
#include "support/Logging.hpp"
#include "support/ThreadAnnotations.hpp"

namespace pico
{
namespace
{

using support::Mutex;
using support::MutexLock;
using support::lockrank::heldLockCount;
using support::lockrank::lockRankCheckEnabled;
using support::lockrank::resetThreadForTest;
using support::lockrank::setLockRankCheckEnabled;

/** Two ranks that are valid table values but unused by production
 *  mutexes, so these fixtures cannot collide with real state. */
constexpr int kOuterRank = support::rank::kEvalServiceDrain;
constexpr int kInnerRank = support::rank::kFaultInjector;

TEST(LockRank, OrderedAcquisitionPasses)
{
    Mutex outer{"test.outer", kOuterRank};
    Mutex inner{"test.inner", kInnerRank};
    EXPECT_NO_THROW({
        MutexLock a(outer);
        MutexLock b(inner);
    });
    EXPECT_EQ(heldLockCount(), 0u);
}

#if PICOEVAL_LOCK_RANK_CHECK

TEST(LockRank, InvertedAcquisitionTripsAndNamesBothLocks)
{
    Mutex outer{"test.outer", kOuterRank};
    Mutex inner{"test.inner", kInnerRank};
    try {
        MutexLock a(inner);
        MutexLock b(outer); // inner held, acquiring outer: inverted
        FAIL() << "rank inversion was not detected";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("test.outer"), std::string::npos) << msg;
        EXPECT_NE(msg.find("test.inner"), std::string::npos) << msg;
        EXPECT_NE(msg.find("lock-rank"), std::string::npos) << msg;
    }
    resetThreadForTest();
}

TEST(LockRank, EqualRankAcquisitionTrips)
{
    // Equal ranks must trip too: two locks of the same rank can be
    // taken in either order by different threads — the ABBA deadlock
    // the discipline exists to prevent.
    Mutex a{"test.peer-a", kOuterRank};
    Mutex b{"test.peer-b", kOuterRank};
    EXPECT_THROW(
        {
            MutexLock la(a);
            MutexLock lb(b);
        },
        FatalError);
    resetThreadForTest();
}

TEST(LockRank, UnrankedMutexIsInvisibleToTheChecker)
{
    // Unranked (test-local) mutexes must not poison the stack: code
    // outside the covered directories still uses plain Mutex{}.
    Mutex plain;
    Mutex inner{"test.inner", kInnerRank};
    Mutex outer{"test.outer", kOuterRank};
    EXPECT_NO_THROW({
        MutexLock a(inner);
        MutexLock p(plain); // unranked under a ranked lock: ignored
    });
    EXPECT_NO_THROW({
        MutexLock p(plain);
        MutexLock a(outer); // ranked under an unranked lock: fine
    });
    EXPECT_EQ(heldLockCount(), 0u);
}

TEST(LockRank, HeldCountTracksNesting)
{
    Mutex outer{"test.outer", kOuterRank};
    Mutex inner{"test.inner", kInnerRank};
    EXPECT_EQ(heldLockCount(), 0u);
    {
        MutexLock a(outer);
        EXPECT_EQ(heldLockCount(), 1u);
        {
            MutexLock b(inner);
            EXPECT_EQ(heldLockCount(), 2u);
        }
        EXPECT_EQ(heldLockCount(), 1u);
    }
    EXPECT_EQ(heldLockCount(), 0u);
}

TEST(LockRank, RuntimeToggleMutesTheChecker)
{
    Mutex outer{"test.outer", kOuterRank};
    Mutex inner{"test.inner", kInnerRank};
    ASSERT_TRUE(lockRankCheckEnabled());
    setLockRankCheckEnabled(false);
    EXPECT_NO_THROW({
        MutexLock a(inner);
        MutexLock b(outer); // inverted, but muted
    });
    setLockRankCheckEnabled(true);
    EXPECT_TRUE(lockRankCheckEnabled());
    // The checker works again after re-enabling.
    EXPECT_THROW(
        {
            MutexLock a(inner);
            MutexLock b(outer);
        },
        FatalError);
    resetThreadForTest();
}

TEST(LockRank, StackIsPerThread)
{
    // A rank held on this thread must not constrain another thread.
    Mutex outer{"test.outer", kOuterRank};
    Mutex inner{"test.inner", kInnerRank};
    MutexLock held(inner);
    std::thread other([&] {
        EXPECT_NO_THROW(MutexLock a(outer));
        EXPECT_EQ(heldLockCount(), 0u);
    });
    other.join();
}

#else // !PICOEVAL_LOCK_RANK_CHECK

TEST(LockRank, CompiledOutCheckerNeverThrows)
{
    // Release builds: an inverted order is not detected (and, single
    // threaded, not a deadlock) — the checker must cost nothing.
    Mutex outer{"test.outer", kOuterRank};
    Mutex inner{"test.inner", kInnerRank};
    EXPECT_NO_THROW({
        MutexLock a(inner);
        MutexLock b(outer);
    });
    EXPECT_EQ(heldLockCount(), 0u);
}

#endif // PICOEVAL_LOCK_RANK_CHECK

} // namespace
} // namespace pico
