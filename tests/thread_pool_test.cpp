/**
 * @file
 * Unit tests for the ThreadPool / parallelFor primitives: serial
 * equivalence, exception discipline, nesting, and the per-task RNG
 * stream helper.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/Random.hpp"
#include "support/ThreadPool.hpp"

namespace pico::support
{
namespace
{

TEST(ThreadPool, ZeroWorkerPoolRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 0u);
    std::vector<size_t> order;
    parallelFor(5, &pool, [&](size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, NullPoolRunsInline)
{
    std::vector<size_t> order;
    parallelFor(4, nullptr, [&](size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t n = 10000;
    std::vector<std::atomic<int>> counts(n);
    parallelFor(n, &pool, [&](size_t i) { ++counts[i]; });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ResultsIndependentOfWorkerCount)
{
    // The merge discipline: each body writes its own slot, so any
    // worker count yields the same slot contents.
    auto run = [](unsigned workers) {
        ThreadPool pool(workers);
        std::vector<uint64_t> slots(257);
        parallelFor(slots.size(), &pool, [&](size_t i) {
            Rng rng = Rng::forStream(12345, i);
            slots[i] = rng.next();
        });
        return slots;
    };
    auto serial = run(0);
    EXPECT_EQ(serial, run(1));
    EXPECT_EQ(serial, run(7));
}

TEST(ThreadPool, SmallestIndexExceptionWins)
{
    ThreadPool pool(4);
    for (int round = 0; round < 10; ++round) {
        try {
            parallelFor(64, &pool, [&](size_t i) {
                if (i % 2 == 1)
                    throw std::runtime_error(
                        "fail@" + std::to_string(i));
            });
            FAIL() << "parallelFor swallowed the exceptions";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "fail@1");
        }
    }
}

TEST(ThreadPool, ExceptionDoesNotLoseIndices)
{
    // Bodies after a failing index still run (no cancellation), so
    // partial results remain complete except for the failed slots.
    ThreadPool pool(3);
    std::vector<std::atomic<int>> counts(128);
    EXPECT_THROW(parallelFor(128, &pool,
                             [&](size_t i) {
                                 ++counts[i];
                                 if (i == 0)
                                     throw std::runtime_error("x");
                             }),
                 std::runtime_error);
    for (size_t i = 0; i < counts.size(); ++i)
        EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // Outer bodies block on inner loops; caller participation must
    // keep everything moving even when the pool is oversubscribed.
    ThreadPool pool(2);
    std::atomic<uint64_t> total{0};
    parallelFor(8, &pool, [&](size_t) {
        parallelFor(8, &pool,
                    [&](size_t j) { total += j + 1; });
    });
    EXPECT_EQ(total.load(), 8u * 36u);
}

TEST(ThreadPool, EmptyLoopIsANoop)
{
    ThreadPool pool(2);
    parallelFor(0, &pool,
                [](size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, ResolveJobs)
{
    EXPECT_EQ(ThreadPool::resolveJobs(1), 1u);
    EXPECT_EQ(ThreadPool::resolveJobs(6), 6u);
    EXPECT_GE(ThreadPool::resolveJobs(0), 1u);
}

TEST(RngStreams, StreamsAreDeterministicAndDistinct)
{
    Rng a = Rng::forStream(99, 0);
    Rng a2 = Rng::forStream(99, 0);
    Rng b = Rng::forStream(99, 1);
    uint64_t va = a.next();
    EXPECT_EQ(va, a2.next());
    EXPECT_NE(va, b.next());
    // Different seeds give different streams of the same index.
    Rng c = Rng::forStream(100, 0);
    EXPECT_NE(va, c.next());
}

} // namespace
} // namespace pico::support
