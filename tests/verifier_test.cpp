/**
 * @file
 * Static verification layer tests. Every rule gets a true negative
 * (real pipeline outputs pass clean) and a true positive (a mutated
 * or fault-injected input trips exactly that rule), plus a
 * regression proving a --verify walk is bit-identical to an
 * unverified one at several thread counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cache/Policy.hpp"
#include "dse/EvaluationCache.hpp"
#include "dse/Spacewalker.hpp"
#include "machine/MachineDesc.hpp"
#include "support/FaultInjection.hpp"
#include "verify/DesignVerifier.hpp"
#include "verify/Diagnostics.hpp"
#include "verify/ProgramVerifier.hpp"
#include "verify/ResultVerifier.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::verify
{
namespace
{

// ---------------------------------------------------------------
// Diagnostics plumbing
// ---------------------------------------------------------------

TEST(Diagnostics, CountsAndReport)
{
    Diagnostics diags;
    EXPECT_TRUE(diags.clean());
    EXPECT_TRUE(diags.empty());
    diags.error("ir.flow", "func f block 1", "bad");
    diags.warning("ahh.domain", "class base", "model assumption");
    EXPECT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags.errorCount(), 1u);
    EXPECT_EQ(diags.warningCount(), 1u);
    EXPECT_FALSE(diags.clean());
    EXPECT_TRUE(diags.has("ir.flow"));
    EXPECT_EQ(diags.count("ahh.domain"), 1u);
    EXPECT_FALSE(diags.has("ir.stream"));
    auto report = diags.report();
    EXPECT_NE(report.find("error: ir.flow: func f block 1: bad"),
              std::string::npos);
    EXPECT_NE(report.find("warning: ahh.domain"), std::string::npos);

    Diagnostics more;
    more.error("result.pareto", "set", "dominated");
    diags.append(more);
    EXPECT_EQ(diags.errorCount(), 2u);
    EXPECT_EQ(diags.size(), 3u);
}

// ---------------------------------------------------------------
// Program + layout verifier on real pipeline outputs
// ---------------------------------------------------------------

class ProgramVerifierTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        prog_ = new ir::Program(workloads::buildAndProfile(
            workloads::specByName("unepic"), 4000));
        build_ = new workloads::MachineBuild(workloads::buildFor(
            *prog_, machine::MachineDesc::fromName("2211")));
    }
    static void
    TearDownTestSuite()
    {
        delete build_;
        delete prog_;
        build_ = nullptr;
        prog_ = nullptr;
    }

    /** Deep copy of the placement for mutation. */
    static std::vector<std::vector<linker::PlacedBlock>>
    copyPlacement(const linker::LinkedBinary &bin)
    {
        std::vector<std::vector<linker::PlacedBlock>> placed(
            bin.numFunctions());
        for (size_t f = 0; f < bin.numFunctions(); ++f) {
            for (size_t b = 0;
                 b < bin.numBlocks(static_cast<uint32_t>(f)); ++b)
                placed[f].push_back(
                    bin.block(static_cast<uint32_t>(f),
                              static_cast<uint32_t>(b)));
        }
        return placed;
    }

    static ir::Program *prog_;
    static workloads::MachineBuild *build_;
};

ir::Program *ProgramVerifierTest::prog_ = nullptr;
workloads::MachineBuild *ProgramVerifierTest::build_ = nullptr;

TEST_F(ProgramVerifierTest, RealProgramPassesClean)
{
    Diagnostics diags;
    EXPECT_TRUE(verifyProgram(*prog_, diags)) << diags.report();
    EXPECT_TRUE(diags.clean()) << diags.report();
}

TEST_F(ProgramVerifierTest, RealLayoutPassesClean)
{
    Diagnostics diags;
    EXPECT_TRUE(verifyLayout(*prog_, build_->bin, diags))
        << diags.report();
    EXPECT_TRUE(diags.clean()) << diags.report();
}

TEST_F(ProgramVerifierTest, StructureMutationTrips)
{
    ir::Program bad = *prog_;
    bad.entryFunction =
        static_cast<uint32_t>(bad.functions.size()) + 1;
    bad.functions[0].id = 99;
    Diagnostics diags;
    EXPECT_FALSE(verifyProgram(bad, diags));
    EXPECT_TRUE(diags.has("ir.structure")) << diags.report();
}

TEST_F(ProgramVerifierTest, EdgeTargetMutationTrips)
{
    ir::Program bad = *prog_;
    for (auto &func : bad.functions) {
        for (auto &block : func.blocks) {
            if (!block.succs.empty()) {
                block.succs[0].target = static_cast<uint32_t>(
                    func.blocks.size() + 7);
                Diagnostics diags;
                EXPECT_FALSE(verifyProgram(bad, diags));
                EXPECT_TRUE(diags.has("ir.edge-target"))
                    << diags.report();
                return;
            }
        }
    }
    FAIL() << "no block with successors";
}

TEST_F(ProgramVerifierTest, EdgeProbabilityMutationTrips)
{
    ir::Program bad = *prog_;
    for (auto &func : bad.functions) {
        for (auto &block : func.blocks) {
            if (!block.succs.empty()) {
                block.succs[0].prob += 0.5;
                Diagnostics diags;
                EXPECT_FALSE(verifyProgram(bad, diags));
                EXPECT_TRUE(diags.has("ir.edge-prob"))
                    << diags.report();
                return;
            }
        }
    }
    FAIL() << "no block with successors";
}

TEST_F(ProgramVerifierTest, OperandMutationsTrip)
{
    {
        ir::Program bad = *prog_;
        bool found = false;
        for (auto &func : bad.functions) {
            for (auto &block : func.blocks) {
                if (!block.ops.empty() && !found) {
                    block.ops[0].latency = 0;
                    found = true;
                }
            }
        }
        ASSERT_TRUE(found) << "no operations in program";
        Diagnostics diags;
        EXPECT_FALSE(verifyProgram(bad, diags));
        EXPECT_TRUE(diags.has("ir.operands")) << diags.report();
    }
    {
        // A memory operation pointing past the stream table.
        ir::Program bad = *prog_;
        bool found = false;
        for (auto &func : bad.functions) {
            for (auto &block : func.blocks) {
                for (auto &op : block.ops) {
                    if (op.isMem() && !found) {
                        op.streamId = static_cast<uint16_t>(
                            bad.streams.size() + 3);
                        found = true;
                    }
                }
            }
        }
        ASSERT_TRUE(found) << "no memory operation in program";
        Diagnostics diags;
        EXPECT_FALSE(verifyProgram(bad, diags));
        EXPECT_TRUE(diags.has("ir.operands")) << diags.report();
    }
}

TEST_F(ProgramVerifierTest, FlowMutationsTrip)
{
    {
        // Entry-block count must equal the call count exactly.
        ir::Program bad = *prog_;
        bad.functions[bad.entryFunction].callCount += 17;
        Diagnostics diags;
        EXPECT_FALSE(verifyProgram(bad, diags));
        EXPECT_TRUE(diags.has("ir.flow")) << diags.report();
    }
    {
        // A non-entry block entered more often than its
        // predecessors were.
        ir::Program bad = *prog_;
        bool found = false;
        for (auto &func : bad.functions) {
            if (func.blocks.size() > 1 && !found) {
                func.blocks[1].profileCount += 1000000;
                found = true;
            }
        }
        ASSERT_TRUE(found);
        Diagnostics diags;
        EXPECT_FALSE(verifyProgram(bad, diags));
        EXPECT_TRUE(diags.has("ir.flow")) << diags.report();
    }
}

TEST_F(ProgramVerifierTest, StreamMutationsTrip)
{
    ASSERT_GE(prog_->streams.size(), 2u);
    {
        ir::Program bad = *prog_;
        bad.streams[0].sizeWords = 0;
        Diagnostics diags;
        EXPECT_FALSE(verifyProgram(bad, diags));
        EXPECT_TRUE(diags.has("ir.stream")) << diags.report();
    }
    {
        // Two streams mapped to the same region.
        ir::Program bad = *prog_;
        bad.streams[1].baseAddr = bad.streams[0].baseAddr;
        Diagnostics diags;
        EXPECT_FALSE(verifyProgram(bad, diags));
        EXPECT_TRUE(diags.has("ir.stream")) << diags.report();
    }
}

TEST_F(ProgramVerifierTest, LayoutMutationsTrip)
{
    // Overlapping blocks within a function.
    size_t func = 0;
    while (func < build_->bin.numFunctions() &&
           build_->bin.numBlocks(static_cast<uint32_t>(func)) < 2)
        ++func;
    ASSERT_LT(func, build_->bin.numFunctions());
    {
        linker::LinkedBinary bad = build_->bin;
        auto placed = copyPlacement(bad);
        placed[func][1].startAddr = placed[func][0].startAddr;
        bad.setPlacement(std::move(placed));
        Diagnostics diags;
        EXPECT_FALSE(verifyLayout(*prog_, bad, diags));
        EXPECT_TRUE(diags.has("layout.monotone")) << diags.report();
    }
    {
        // A block escaping the text segment.
        linker::LinkedBinary bad = build_->bin;
        auto placed = copyPlacement(bad);
        placed[func].back().startAddr =
            linker::LinkedBinary::textBase + bad.textSize() + 4096;
        bad.setPlacement(std::move(placed));
        Diagnostics diags;
        EXPECT_FALSE(verifyLayout(*prog_, bad, diags));
        EXPECT_TRUE(diags.has("layout.bounds")) << diags.report();
    }
    {
        // A misaligned function entry.
        linker::LinkedBinary bad = build_->bin;
        auto placed = copyPlacement(bad);
        placed[func][0].startAddr += 1;
        bad.setPlacement(std::move(placed));
        Diagnostics diags;
        EXPECT_FALSE(verifyLayout(*prog_, bad, diags));
        EXPECT_TRUE(diags.has("layout.align")) << diags.report();
    }
}

// ---------------------------------------------------------------
// Design verifier
// ---------------------------------------------------------------

TEST(DesignVerifier, FeasibleGeometryPassesClean)
{
    Diagnostics diags;
    auto cfg = cache::CacheConfig::fromSize(16384, 2, 32);
    EXPECT_TRUE(verifyCacheConfig(cfg, "I$", diags))
        << diags.report();
    EXPECT_TRUE(diags.clean());
}

TEST(DesignVerifier, BrokenGeometryTrips)
{
    cache::CacheConfig cfg;
    cfg.sets = 48; // not a power of two
    cfg.assoc = 2;
    cfg.lineBytes = 32;
    Diagnostics diags;
    EXPECT_FALSE(verifyCacheConfig(cfg, "I$", diags));
    EXPECT_TRUE(diags.has("cache.geometry")) << diags.report();

    cache::CacheConfig noPorts;
    noPorts.sets = 64;
    noPorts.ports = 0;
    Diagnostics diags2;
    EXPECT_FALSE(verifyCacheConfig(noPorts, "D$", diags2));
    EXPECT_TRUE(diags2.has("cache.geometry"));

    cache::CacheConfig tinyLine;
    tinyLine.sets = 64;
    tinyLine.lineBytes = 2; // below the simulators' coverage
    Diagnostics diags3;
    EXPECT_FALSE(verifyCacheConfig(tinyLine, "U$", diags3));
    EXPECT_TRUE(diags3.has("cache.geometry"));
}

TEST(DesignVerifier, DefaultSpacesPassClean)
{
    Diagnostics diags;
    EXPECT_TRUE(verifyCacheSpace(dse::CacheSpace::defaultL1Space(),
                                 "L1", diags))
        << diags.report();
    EXPECT_TRUE(verifyCacheSpace(dse::CacheSpace::defaultL2Space(),
                                 "L2", diags))
        << diags.report();
    EXPECT_TRUE(diags.clean());
}

TEST(DesignVerifier, DegenerateSpacesTrip)
{
    {
        dse::CacheSpace empty = dse::CacheSpace::defaultL1Space();
        empty.assocs.clear();
        Diagnostics diags;
        EXPECT_FALSE(verifyCacheSpace(empty, "L1", diags));
        EXPECT_TRUE(diags.has("space.domain")) << diags.report();
    }
    {
        // Dimensions individually sane but jointly infeasible:
        // 3 KB with one way of 64 B lines gives 48 sets.
        dse::CacheSpace infeasible;
        infeasible.sizesBytes = {3072};
        infeasible.assocs = {1};
        infeasible.lineSizes = {64};
        infeasible.portCounts = {1};
        Diagnostics diags;
        EXPECT_FALSE(verifyCacheSpace(infeasible, "L1", diags));
        EXPECT_TRUE(diags.has("space.domain")) << diags.report();
    }
}

TEST(DesignVerifier, PolicyAxesMustBeNonEmptyAndUnique)
{
    {
        dse::CacheSpace space = dse::CacheSpace::defaultL1Space();
        space.replacements.clear();
        Diagnostics diags;
        EXPECT_FALSE(verifyCacheSpace(space, "D$", diags));
        EXPECT_TRUE(diags.has("space.domain")) << diags.report();
    }
    {
        dse::CacheSpace space = dse::CacheSpace::defaultL1Space();
        space.writePolicies.clear();
        Diagnostics diags;
        EXPECT_FALSE(verifyCacheSpace(space, "D$", diags));
        EXPECT_TRUE(diags.has("space.domain")) << diags.report();
    }
    {
        // A duplicated axis entry would silently double-count every
        // geometry in the walk.
        dse::CacheSpace space = dse::CacheSpace::defaultL1Space();
        space.replacements = {cache::ReplacementPolicy::FIFO,
                              cache::ReplacementPolicy::FIFO};
        Diagnostics diags;
        EXPECT_FALSE(verifyCacheSpace(space, "D$", diags));
        EXPECT_TRUE(diags.has("space.domain")) << diags.report();
    }
    {
        dse::CacheSpace space = dse::CacheSpace::defaultL1Space();
        space.writePolicies = {cache::WritePolicy::WriteBack,
                               cache::WritePolicy::WriteThrough,
                               cache::WritePolicy::WriteBack};
        Diagnostics diags;
        EXPECT_FALSE(verifyCacheSpace(space, "D$", diags));
        EXPECT_TRUE(diags.has("space.domain")) << diags.report();
    }
    {
        // The full extended axes are a legal space.
        dse::CacheSpace space = dse::CacheSpace::defaultL1Space();
        space.replacements = {cache::ReplacementPolicy::LRU,
                              cache::ReplacementPolicy::FIFO,
                              cache::ReplacementPolicy::Random};
        space.writePolicies = {cache::WritePolicy::WriteBack,
                               cache::WritePolicy::WriteThrough};
        Diagnostics diags;
        EXPECT_TRUE(verifyCacheSpace(space, "D$", diags))
            << diags.report();
        EXPECT_TRUE(diags.clean());
    }
}

TEST(DesignVerifier, HierarchyInclusion)
{
    cache::HierarchyConfig good;
    good.icache = cache::CacheConfig::fromSize(8192, 2, 32);
    good.dcache = cache::CacheConfig::fromSize(8192, 2, 32);
    good.ucache = cache::CacheConfig::fromSize(65536, 4, 64);
    Diagnostics diags;
    EXPECT_TRUE(verifyHierarchy(good, diags)) << diags.report();
    EXPECT_TRUE(diags.clean());

    cache::HierarchyConfig bad = good;
    bad.ucache = cache::CacheConfig::fromSize(4096, 4, 64);
    Diagnostics diags2;
    EXPECT_FALSE(verifyHierarchy(bad, diags2));
    EXPECT_TRUE(diags2.has("hierarchy.inclusion"))
        << diags2.report();

    cache::HierarchyConfig shortLines = good;
    shortLines.ucache = cache::CacheConfig::fromSize(65536, 4, 16);
    Diagnostics diags3;
    EXPECT_FALSE(verifyHierarchy(shortLines, diags3));
    EXPECT_TRUE(diags3.has("hierarchy.inclusion"));

    cache::HierarchyConfig noLatency = good;
    noLatency.memoryLatency = 0;
    Diagnostics diags4;
    EXPECT_FALSE(verifyHierarchy(noLatency, diags4));
    EXPECT_TRUE(diags4.has("hierarchy.inclusion"));
}

TEST(DesignVerifier, AhhDomain)
{
    core::ComponentParams good;
    good.u1 = 5000.0;
    good.p1 = 0.3;
    good.lav = 2.0;
    Diagnostics diags;
    EXPECT_TRUE(verifyAhhParams(good, 10000, "trace", diags))
        << diags.report();
    EXPECT_TRUE(diags.clean());

    core::ComponentParams badP1 = good;
    badP1.p1 = 1.5;
    Diagnostics diags2;
    EXPECT_FALSE(verifyAhhParams(badP1, 10000, "trace", diags2));
    EXPECT_TRUE(diags2.has("ahh.domain"));

    core::ComponentParams badU1 = good;
    badU1.u1 = 20000.0; // more uniques than references
    Diagnostics diags3;
    EXPECT_FALSE(verifyAhhParams(badU1, 10000, "trace", diags3));
    EXPECT_TRUE(diags3.has("ahh.domain"));

    core::ComponentParams nonFinite = good;
    nonFinite.lav = std::numeric_limits<double>::quiet_NaN();
    Diagnostics diags4;
    EXPECT_FALSE(verifyAhhParams(nonFinite, 10000, "trace", diags4));
    EXPECT_TRUE(diags4.has("ahh.domain"));
}

TEST(DesignVerifier, NegativeP2IsWarningNotError)
{
    // Measured traces can violate the run-model assumption
    // lav >= 1 + p1 (e.g. eight singleton runs and one pair:
    // lav = 10/9, p1 = 0.8 gives p2 < 0). That is inaccurate
    // modeling, not corrupt data — a warning, never an error.
    core::ComponentParams params;
    params.u1 = 10.0;
    params.p1 = 0.8;
    params.lav = 10.0 / 9.0;
    ASSERT_LT(params.p2(), 0.0);
    Diagnostics diags;
    EXPECT_TRUE(verifyAhhParams(params, 10000, "trace", diags))
        << diags.report();
    EXPECT_TRUE(diags.clean());
    EXPECT_EQ(diags.warningCount(), 1u);
    EXPECT_TRUE(diags.has("ahh.domain"));
}

// ---------------------------------------------------------------
// Result verifier
// ---------------------------------------------------------------

TEST(ResultVerifier, MissCounts)
{
    Diagnostics diags;
    EXPECT_TRUE(verifyMissCount(10.0, 100.0, "I$", diags));
    EXPECT_TRUE(verifyMissCount(0.0, 0.0, "I$", diags));
    EXPECT_TRUE(diags.clean());

    Diagnostics bad;
    EXPECT_FALSE(verifyMissCount(200.0, 100.0, "I$", bad));
    EXPECT_FALSE(verifyMissCount(-1.0, 100.0, "I$", bad));
    EXPECT_FALSE(verifyMissCount(
        std::numeric_limits<double>::infinity(), 100.0, "I$", bad));
    EXPECT_EQ(bad.count("result.misses"), 3u);
}

TEST(ResultVerifier, ParetoSets)
{
    std::vector<dse::DesignPoint> good = {
        {"a", 1.0, 10.0}, {"b", 2.0, 5.0}, {"c", 3.0, 1.0}};
    Diagnostics diags;
    EXPECT_TRUE(verifyParetoPoints(good, "set", diags))
        << diags.report();

    std::vector<dse::DesignPoint> dominated = good;
    dominated.push_back({"d", 3.5, 2.0}); // dominated by c
    Diagnostics diags2;
    EXPECT_FALSE(verifyParetoPoints(dominated, "set", diags2));
    EXPECT_TRUE(diags2.has("result.pareto"));

    std::vector<dse::DesignPoint> dupes = {{"a", 1.0, 10.0},
                                           {"a", 2.0, 5.0}};
    Diagnostics diags3;
    EXPECT_FALSE(verifyParetoPoints(dupes, "set", diags3));
    EXPECT_TRUE(diags3.has("result.pareto"));

    // A ParetoSet built through insertPoint is non-dominated by
    // construction and must always verify.
    dse::ParetoSet set;
    set.insertPoint({"x", 5.0, 5.0});
    set.insertPoint({"y", 1.0, 9.0});
    set.insertPoint({"z", 3.0, 3.0}); // dominates and evicts x
    Diagnostics diags4;
    EXPECT_TRUE(verifyParetoSet(set, "built", diags4))
        << diags4.report();
}

TEST(ResultVerifier, WalkBookkeeping)
{
    dse::ExplorationResult good;
    good.evaluatedDesigns = 2;
    good.dilations = {{"1111", 1.0}, {"2211", 1.08}};
    good.processorCycles = {{"1111", 1000}, {"2211", 800}};
    Diagnostics diags;
    EXPECT_TRUE(verifyWalkResult(good, 2, diags)) << diags.report();

    dse::ExplorationResult overClaim = good;
    overClaim.evaluatedDesigns = 3;
    Diagnostics diags2;
    EXPECT_FALSE(verifyWalkResult(overClaim, 2, diags2));
    EXPECT_TRUE(diags2.has("result.walk"));

    dse::ExplorationResult silentLoss = good;
    silentLoss.evaluatedDesigns = 1;
    silentLoss.dilations = {{"1111", 1.0}};
    silentLoss.processorCycles = {{"1111", 1000}};
    Diagnostics diags3;
    // One design missing with an empty failure log = silent loss.
    EXPECT_FALSE(verifyWalkResult(silentLoss, 2, diags3));
    EXPECT_TRUE(diags3.has("result.walk"));

    dse::ExplorationResult badDilation = good;
    badDilation.dilations["2211"] = 0.0;
    Diagnostics diags4;
    EXPECT_FALSE(verifyWalkResult(badDilation, 2, diags4));
    EXPECT_TRUE(diags4.has("result.walk"));
}

class CacheFileVerifierTest : public ::testing::Test
{
  protected:
    std::string
    makeDatabase(const std::string &tag)
    {
        auto path = std::filesystem::temp_directory_path() /
                    ("pico_verify_cachefile_" + tag + ".db");
        std::filesystem::remove(path);
        dse::EvaluationCache cache(path.string());
        cache.store("proc;app;s1;1111", {1.0, 961000.0});
        cache.store("proc;app;s1;2211", {1.08, 842000.0});
        cache.store("proc;app;s1;3221", {1.13, 815000.0});
        cache.flush();
        return path.string();
    }

    void TearDown() override
    {
        for (const auto &p : cleanup_)
            std::filesystem::remove(p);
    }

    std::vector<std::string> cleanup_;
};

TEST_F(CacheFileVerifierTest, FreshDatabasePassesClean)
{
    auto path = makeDatabase("clean");
    cleanup_.push_back(path);
    Diagnostics diags;
    EXPECT_TRUE(verifyCacheFile(path, diags)) << diags.report();
}

TEST_F(CacheFileVerifierTest, LegacyV2HeaderWarnsButPasses)
{
    // A pre-policy-axis database is still fully usable (its classic
    // keys are byte-identical under the v3 schema), so the verifier
    // accepts it — with a warning that the header is legacy.
    auto path = (std::filesystem::temp_directory_path() /
                 "pico_verify_cachefile_v2.db")
                    .string();
    cleanup_.push_back(path);
    std::ofstream out(path, std::ios::trunc);
    out << "picoeval-evalcache-v2\n"
        << "proc;app;s1;1111|1.02,901000\n"
        << "proc;app;s1;2211|1.08,842000\n";
    out.close();
    Diagnostics diags;
    EXPECT_TRUE(verifyCacheFile(path, diags)) << diags.report();
    EXPECT_TRUE(diags.has("result.cachefile")) << diags.report();
    EXPECT_EQ(diags.errorCount(), 0u) << diags.report();
    EXPECT_EQ(diags.warningCount(), 1u) << diags.report();
}

TEST_F(CacheFileVerifierTest, MissingFileTrips)
{
    Diagnostics diags;
    EXPECT_FALSE(verifyCacheFile("/nonexistent/evalcache.db",
                                 diags));
    EXPECT_TRUE(diags.has("result.cachefile"));
}

TEST_F(CacheFileVerifierTest, HeaderCorruptionTrips)
{
    auto path = makeDatabase("hdr");
    cleanup_.push_back(path);
    // Deterministic fault injection inside the version header.
    support::flipBit(path, 3, 2);
    Diagnostics diags;
    EXPECT_FALSE(verifyCacheFile(path, diags));
    EXPECT_TRUE(diags.has("result.cachefile")) << diags.report();
}

TEST_F(CacheFileVerifierTest, TruncatedTailTrips)
{
    auto path = makeDatabase("tail");
    cleanup_.push_back(path);
    // Cut the file at the last record's key/value separator, as a
    // torn write (without the atomic-rename protocol) would: the
    // final record loses its '|' and is malformed.
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        bytes = ss.str();
    }
    auto bar = bytes.rfind('|');
    ASSERT_NE(bar, std::string::npos);
    support::truncateFile(path, bar);
    Diagnostics diags;
    EXPECT_FALSE(verifyCacheFile(path, diags));
    EXPECT_TRUE(diags.has("result.cachefile")) << diags.report();
}

TEST_F(CacheFileVerifierTest, UnsortedKeysTrip)
{
    auto path = (std::filesystem::temp_directory_path() /
                 "pico_verify_cachefile_unsorted.db")
                    .string();
    cleanup_.push_back(path);
    std::ofstream out(path, std::ios::trunc);
    out << dse::EvaluationCache::header << "\n"
        << "b|1\n"
        << "a|2\n";
    out.close();
    Diagnostics diags;
    EXPECT_FALSE(verifyCacheFile(path, diags));
    EXPECT_TRUE(diags.has("result.cachefile")) << diags.report();
}

TEST_F(CacheFileVerifierTest, SeededCorruptionNeverCrashes)
{
    // Arbitrary single-bit corruption anywhere after the header must
    // either still parse or trip a finding — never throw.
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        auto path = makeDatabase("fuzz" + std::to_string(seed));
        cleanup_.push_back(path);
        auto offsets = support::corruptionOffsets(
            path, seed, 3,
            std::string(dse::EvaluationCache::header).size() + 1);
        for (auto off : offsets)
            support::flipBit(path, off, seed % 8);
        Diagnostics diags;
        EXPECT_NO_THROW(verifyCacheFile(path, diags));
    }
}

} // namespace
} // namespace pico::verify

// ---------------------------------------------------------------
// Regression: a verified walk changes nothing
// ---------------------------------------------------------------

namespace pico::dse
{
namespace
{

MemorySpaces
walkSpaces()
{
    MemorySpaces spaces;
    CacheSpace l1;
    l1.sizesBytes = {2048, 4096};
    l1.assocs = {1, 2};
    l1.lineSizes = {16, 32};
    spaces.icache = l1;
    spaces.dcache = l1;
    CacheSpace l2;
    l2.sizesBytes = {32768};
    l2.assocs = {4};
    l2.lineSizes = {64};
    spaces.ucache = l2;
    return spaces;
}

std::string
flattenWalk(const ExplorationResult &result)
{
    std::ostringstream ss;
    ss.precision(17);
    for (const auto &p : result.processors.points())
        ss << p.id << ";" << p.cost << ";" << p.time << "\n";
    for (const auto &p : result.systems.points())
        ss << p.id << ";" << p.cost << ";" << p.time << "\n";
    for (const auto &e : result.failures.entries())
        ss << e.design << "[" << e.stage << "]: " << e.reason << "\n";
    for (const auto &[name, d] : result.dilations)
        ss << name << "=" << d << "\n";
    for (const auto &[name, c] : result.processorCycles)
        ss << name << "=" << c << "\n";
    ss << result.evaluatedDesigns << "\n";
    return ss.str();
}

std::string
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct VerifiedWalkOutcome
{
    std::string observables;
    std::string cacheBytes;
    size_t verifyErrors = 0;
    size_t verifyFindings = 0;
};

VerifiedWalkOutcome
runWalk(const ir::Program &prog, unsigned jobs, int verify,
        const std::string &tag)
{
    auto path = std::filesystem::temp_directory_path() /
                ("pico_verify_walk_" + tag + ".db");
    std::filesystem::remove(path);
    Spacewalker::Options opts;
    opts.traceBlocks = 4000;
    opts.uGranule = 20000;
    opts.jobs = jobs;
    opts.checkpointEvery = 2;
    opts.verify = verify;
    opts.evaluationCachePath = path.string();
    VerifiedWalkOutcome out;
    {
        Spacewalker walker(walkSpaces(),
                           {"1111", "0111", "2211", "2211p", "0221",
                            "3221"},
                           opts);
        auto result = walker.explore(prog);
        out.observables = flattenWalk(result);
        out.verifyErrors = result.diagnostics.errorCount();
        out.verifyFindings = result.diagnostics.size();
    }
    out.cacheBytes = readBytes(path.string());
    std::filesystem::remove(path);
    return out;
}

TEST(VerifiedWalk, VerifyIsBitIdenticalAcrossJobs)
{
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 4000);

    auto plain = runWalk(prog, 1, 0, "off");
    ASSERT_FALSE(plain.observables.empty());

    // The real pipeline must verify clean — including the poisoned
    // designs, whose failures are legitimate walk outcomes.
    auto verified1 = runWalk(prog, 1, 1, "on1");
    EXPECT_EQ(verified1.verifyErrors, 0u);

    auto verified2 = runWalk(prog, 2, 1, "on2");
    auto verified8 = runWalk(prog, 8, 1, "on8");

    // Verification reads, reports, and changes nothing: every walk
    // observable and the cache database bytes are identical with
    // verification off and on, at every thread count.
    EXPECT_EQ(plain.observables, verified1.observables);
    EXPECT_EQ(plain.cacheBytes, verified1.cacheBytes);
    EXPECT_EQ(plain.observables, verified2.observables);
    EXPECT_EQ(plain.cacheBytes, verified2.cacheBytes);
    EXPECT_EQ(plain.observables, verified8.observables);
    EXPECT_EQ(plain.cacheBytes, verified8.cacheBytes);

    // Findings themselves are deterministic.
    EXPECT_EQ(verified1.verifyFindings, verified2.verifyFindings);
    EXPECT_EQ(verified1.verifyFindings, verified8.verifyFindings);
}

} // namespace
} // namespace pico::dse
