/**
 * @file
 * Unit tests for the IR: program validation, finalize() derived
 * fields, and the synthetic workload generator.
 */

#include <gtest/gtest.h>

#include "ir/Program.hpp"
#include "support/Logging.hpp"
#include "workloads/AppSpec.hpp"

namespace pico
{
namespace
{

ir::Program
tinyProgram()
{
    ir::Program prog;
    prog.name = "tiny";
    prog.streams.push_back({});

    ir::Function func;
    func.name = "main";

    ir::BasicBlock b0;
    ir::Operation load;
    load.opClass = ir::OpClass::Memory;
    load.memKind = ir::MemKind::Load;
    load.streamId = 0;
    b0.ops.push_back(load);
    ir::Operation br;
    br.opClass = ir::OpClass::Branch;
    b0.ops.push_back(br);
    b0.succs.push_back({1, 0.7});
    b0.succs.push_back({0, 0.3});

    ir::BasicBlock b1;
    ir::Operation alu;
    b1.ops.push_back(alu);
    b1.ops.push_back(br);

    func.blocks.push_back(b0);
    func.blocks.push_back(b1);
    prog.functions.push_back(func);
    return prog;
}

TEST(Program, FinalizeAssignsStreamAddresses)
{
    auto prog = tinyProgram();
    prog.streams.push_back({});
    prog.finalize();
    EXPECT_EQ(prog.streams[0].baseAddr, ir::Program::dataBase);
    EXPECT_GT(prog.streams[1].baseAddr, prog.streams[0].baseAddr);
    // Regions must not overlap.
    EXPECT_GE(prog.streams[1].baseAddr,
              prog.streams[0].baseAddr +
                  prog.streams[0].sizeWords * 4);
    EXPECT_TRUE(prog.finalized());
}

TEST(Program, FinalizeMarksBranchTargets)
{
    auto prog = tinyProgram();
    prog.finalize();
    const auto &blocks = prog.functions[0].blocks;
    // Entry block is always a branch target; block 0 is also the
    // target of the loop back edge.
    EXPECT_TRUE(blocks[0].isBranchTarget);
    // Block 1 is only reached by fall-through.
    EXPECT_FALSE(blocks[1].isBranchTarget);
}

TEST(Program, FinalizeRejectsBadEdgeProbabilities)
{
    auto prog = tinyProgram();
    prog.functions[0].blocks[0].succs[0].prob = 0.5; // sums to 0.8
    EXPECT_THROW(prog.finalize(), FatalError);
}

TEST(Program, FinalizeRejectsOutOfRangeTargets)
{
    auto prog = tinyProgram();
    prog.functions[0].blocks[0].succs[0].target = 9;
    EXPECT_THROW(prog.finalize(), FatalError);
}

TEST(Program, FinalizeRejectsForwardDependences)
{
    auto prog = tinyProgram();
    prog.functions[0].blocks[0].ops[0].deps.push_back(5);
    EXPECT_THROW(prog.finalize(), FatalError);
}

TEST(Program, FinalizeRejectsEmptyProgram)
{
    ir::Program prog;
    EXPECT_THROW(prog.finalize(), FatalError);
}

TEST(Program, FinalizeRejectsUnknownStream)
{
    auto prog = tinyProgram();
    prog.functions[0].blocks[0].ops[0].streamId = 42;
    EXPECT_THROW(prog.finalize(), FatalError);
}

TEST(Program, Counters)
{
    auto prog = tinyProgram();
    prog.finalize();
    EXPECT_EQ(prog.totalBlocks(), 2u);
    EXPECT_EQ(prog.totalOperations(), 4u);
}

TEST(Generator, DeterministicForSameSpec)
{
    workloads::AppSpec spec;
    spec.seed = 404;
    auto a = workloads::buildProgram(spec);
    auto b = workloads::buildProgram(spec);
    ASSERT_EQ(a.functions.size(), b.functions.size());
    EXPECT_EQ(a.totalOperations(), b.totalOperations());
    for (size_t f = 0; f < a.functions.size(); ++f) {
        ASSERT_EQ(a.functions[f].blocks.size(),
                  b.functions[f].blocks.size());
    }
}

TEST(Generator, RespectsStructuralKnobs)
{
    workloads::AppSpec spec;
    spec.numFunctions = 7;
    spec.minBlocksPerFunction = 4;
    spec.maxBlocksPerFunction = 6;
    spec.minOpsPerBlock = 3;
    spec.maxOpsPerBlock = 5;
    auto prog = workloads::buildProgram(spec);
    EXPECT_EQ(prog.functions.size(), 7u);
    for (const auto &func : prog.functions) {
        EXPECT_GE(func.blocks.size(), 4u);
        EXPECT_LE(func.blocks.size(), 6u);
        for (const auto &block : func.blocks) {
            EXPECT_GE(block.ops.size(), 3u);
            EXPECT_LE(block.ops.size(), 5u);
            // Every block ends in a control operation.
            EXPECT_TRUE(block.ops.back().isBranch());
        }
    }
}

TEST(Generator, CallGraphIsAcyclic)
{
    workloads::AppSpec spec;
    spec.callProb = 0.9;
    spec.numFunctions = 20;
    auto prog = workloads::buildProgram(spec);
    for (size_t f = 0; f < prog.functions.size(); ++f) {
        for (const auto &block : prog.functions[f].blocks) {
            if (block.callee >= 0) {
                EXPECT_GT(static_cast<size_t>(block.callee), f);
            }
        }
    }
}

TEST(Generator, PaperSuiteHasTenNamedApps)
{
    auto suite = workloads::paperSuite();
    ASSERT_EQ(suite.size(), 10u);
    EXPECT_EQ(suite[0].name, "085.gcc");
    EXPECT_NO_THROW(workloads::specByName("ghostscript"));
    EXPECT_THROW(workloads::specByName("nonesuch"), FatalError);
}

TEST(Generator, SuiteProgramsBuildAndFinalize)
{
    for (const auto &spec : workloads::paperSuite()) {
        auto prog = workloads::buildProgram(spec);
        EXPECT_TRUE(prog.finalized()) << spec.name;
        EXPECT_GT(prog.totalOperations(), 100u) << spec.name;
    }
}

} // namespace
} // namespace pico
