/**
 * @file
 * Unit tests for CacheSim (reference LRU simulator) and ImpactSim
 * (the independent validation simulator), including the
 * cross-validation property of paper section 6.1.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/CacheSim.hpp"
#include "cache/ImpactSim.hpp"
#include "support/Random.hpp"

namespace pico::cache
{
namespace
{

TEST(CacheSim, ColdMissThenHit)
{
    CacheSim sim(CacheConfig{4, 1, 16});
    EXPECT_FALSE(sim.access(0x100).hit);
    EXPECT_TRUE(sim.access(0x100).hit);
    EXPECT_TRUE(sim.access(0x10c).hit); // same 16B line
    EXPECT_EQ(sim.misses(), 1u);
    EXPECT_EQ(sim.accesses(), 3u);
}

TEST(CacheSim, DirectMappedConflict)
{
    // 4 sets x 16B: addresses 0x000 and 0x040 share set 0.
    CacheSim sim(CacheConfig{4, 1, 16});
    sim.access(0x000);
    sim.access(0x040);
    EXPECT_FALSE(sim.access(0x000).hit); // evicted by 0x040
    EXPECT_EQ(sim.misses(), 3u);
}

TEST(CacheSim, TwoWayAvoidsThatConflict)
{
    CacheSim sim(CacheConfig{4, 2, 16});
    sim.access(0x000);
    sim.access(0x040);
    EXPECT_TRUE(sim.access(0x000).hit);
}

TEST(CacheSim, LruReplacementOrder)
{
    // One set, 2-way: A B A C -> C evicts B, not A.
    CacheSim sim(CacheConfig{1, 2, 16});
    sim.access(0x000); // A
    sim.access(0x010); // B
    sim.access(0x000); // A (MRU)
    sim.access(0x020); // C evicts B
    EXPECT_TRUE(sim.access(0x000).hit);
    EXPECT_FALSE(sim.access(0x010).hit);
}

TEST(CacheSim, VictimReported)
{
    CacheSim sim(CacheConfig{1, 1, 16});
    auto first = sim.access(0x000);
    EXPECT_FALSE(first.hasVictim);
    auto second = sim.access(0x010);
    EXPECT_TRUE(second.hasVictim);
    EXPECT_EQ(second.victimLine, 0u);
}

TEST(CacheSim, CompulsoryMissTracking)
{
    CacheSim sim(CacheConfig{1, 1, 16}, true);
    sim.access(0x000);
    sim.access(0x010);
    sim.access(0x000); // conflict miss, not compulsory
    EXPECT_EQ(sim.misses(), 3u);
    EXPECT_EQ(sim.compulsoryMisses(), 2u);
}

TEST(CacheSim, InvalidateLineForcesMiss)
{
    CacheSim sim(CacheConfig{4, 2, 16});
    sim.access(0x100);
    sim.invalidateLine(0x100 / 16);
    EXPECT_FALSE(sim.access(0x100).hit);
}

TEST(CacheSim, InvalidateRangeCoversMultipleLines)
{
    CacheSim sim(CacheConfig{16, 2, 16});
    sim.access(0x100);
    sim.access(0x110);
    sim.access(0x120);
    sim.invalidateRange(0x100, 0x120); // lines 0x100 and 0x110
    EXPECT_FALSE(sim.access(0x100).hit);
    EXPECT_FALSE(sim.access(0x110).hit);
    EXPECT_TRUE(sim.access(0x120).hit);
}

TEST(CacheSim, ResetClearsEverything)
{
    CacheSim sim(CacheConfig{4, 1, 16});
    sim.access(0x000);
    sim.reset();
    EXPECT_EQ(sim.accesses(), 0u);
    EXPECT_EQ(sim.misses(), 0u);
    EXPECT_FALSE(sim.access(0x000).hit);
}

TEST(CacheSim, MissRate)
{
    CacheSim sim(CacheConfig{64, 1, 16});
    for (int i = 0; i < 10; ++i)
        sim.access(static_cast<uint64_t>(i) * 16);
    for (int i = 0; i < 10; ++i)
        sim.access(static_cast<uint64_t>(i) * 16);
    EXPECT_DOUBLE_EQ(sim.missRate(), 0.5);
}

TEST(ImpactSim, AgreesOnSimpleSequence)
{
    CacheConfig cfg{4, 2, 16};
    CacheSim a(cfg);
    ImpactSim b(cfg);
    std::vector<uint64_t> addrs = {0x000, 0x040, 0x000, 0x020,
                                   0x060, 0x040, 0x000};
    for (auto addr : addrs) {
        a.access(addr);
        b.access(addr);
    }
    EXPECT_EQ(a.misses(), b.misses());
}

/**
 * Section 6.1 cross-validation: the two independently implemented
 * simulators produce identical miss counts over random traces and a
 * range of configurations.
 */
class SimCrossValidation
    : public ::testing::TestWithParam<CacheConfig>
{};

TEST_P(SimCrossValidation, IdenticalMissCounts)
{
    CacheConfig cfg = GetParam();
    CacheSim ref(cfg);
    ImpactSim alt(cfg);
    Rng rng(0xc0ffee ^ cfg.sets ^ cfg.assoc ^ cfg.lineBytes);
    for (int i = 0; i < 50000; ++i) {
        // Mixture of a hot region and a cold wide region.
        uint64_t addr = rng.coin(0.7)
                            ? rng.below(1 << 12)
                            : rng.below(1 << 20);
        addr &= ~3ULL;
        bool write = rng.coin(0.3);
        ref.access(addr, write);
        alt.access(addr, write);
    }
    EXPECT_EQ(ref.misses(), alt.misses());
    EXPECT_EQ(ref.accesses(), alt.accesses());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SimCrossValidation,
    ::testing::Values(CacheConfig{32, 1, 32},   // paper small D$
                      CacheConfig{256, 2, 32},  // paper large D$
                      CacheConfig{128, 2, 64},  // paper small U$
                      CacheConfig{512, 4, 64},  // paper large U$
                      CacheConfig{1, 8, 16},    // fully associative
                      CacheConfig{64, 3, 16})); // odd associativity

TEST(ImpactSim, WriteBufferModelDivergesSlightly)
{
    // With the write-buffer model on, repeated missing stores to the
    // same line may merge; miss counts may only ever be lower.
    CacheConfig cfg{8, 1, 16};
    CacheSim ref(cfg);
    ImpactSim alt(cfg, true);
    Rng rng(42);
    for (int i = 0; i < 20000; ++i) {
        uint64_t addr = rng.below(1 << 10) & ~3ULL;
        bool write = rng.coin(0.5);
        ref.access(addr, write);
        alt.access(addr, write);
    }
    EXPECT_LE(alt.misses(), ref.misses());
    // ... but stays close (paper: "virtually identical").
    double rel = static_cast<double>(ref.misses() - alt.misses()) /
                 static_cast<double>(ref.misses());
    EXPECT_LT(rel, 0.05);
}

} // namespace
} // namespace pico::cache
