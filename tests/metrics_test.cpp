/**
 * @file
 * Instrumentation layer tests: the metrics registry's concurrent
 * accumulation must be exact (sharded counts merge to the serial
 * sum), snapshots must be deterministic documents (sorted keys,
 * byte-stable JSON), the disabled paths must drop updates, and the
 * span recorder / run report must produce loadable JSON.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "support/Logging.hpp"
#include "support/Metrics.hpp"
#include "support/RunReport.hpp"
#include "support/TraceEvents.hpp"

namespace pico::support
{
namespace
{

/** Enable metrics+tracing for one test, restoring the old state. */
class InstrumentationOn
{
  public:
    InstrumentationOn()
    {
        setMetricsEnabled(true);
        setTraceEnabled(true);
    }
    ~InstrumentationOn()
    {
        setMetricsEnabled(false);
        setTraceEnabled(false);
        TraceRecorder::instance().clear();
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Metrics, ConcurrentCounterMatchesSerialSum)
{
    InstrumentationOn on;
    auto &ctr = metrics().counter("test.concurrent.counter");
    uint64_t before =
        metrics().snapshot().counters["test.concurrent.counter"];

    constexpr int threads = 8;
    constexpr uint64_t perThread = 50000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&ctr] {
            for (uint64_t i = 0; i < perThread; ++i)
                ctr.add(1);
            ctr.add(7); // mixed increments
        });
    }
    for (auto &th : pool)
        th.join();

    auto snap = metrics().snapshot();
    EXPECT_EQ(snap.counters["test.concurrent.counter"] - before,
              threads * (perThread + 7));
}

TEST(Metrics, ConcurrentHistogramMatchesSerialSum)
{
    InstrumentationOn on;
    auto &hist = metrics().histogram("test.concurrent.hist");
    auto before =
        metrics().snapshot().histograms["test.concurrent.hist"];

    constexpr int threads = 8;
    constexpr uint64_t perThread = 1000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&hist] {
            for (uint64_t v = 0; v < perThread; ++v)
                hist.observe(v);
        });
    }
    for (auto &th : pool)
        th.join();

    auto snap = metrics().snapshot();
    const auto &v = snap.histograms["test.concurrent.hist"];
    EXPECT_EQ(v.count - before.count, threads * perThread);
    // Exact serial sum: 8 * (0 + 1 + ... + 999).
    EXPECT_EQ(v.sum - before.sum,
              threads * (perThread * (perThread - 1) / 2));
    // Every thread lands one zero in bucket 0 per pass.
    EXPECT_EQ(v.buckets[0] - before.buckets[0], threads);
    // Values 512..999 share bucket bit_width = 10.
    EXPECT_EQ(v.buckets[10] - before.buckets[10],
              threads * (perThread - 512));
}

TEST(Metrics, HistogramBucketsFollowBitWidth)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(1023), 10u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);
    EXPECT_EQ(Histogram::bucketOf(UINT64_MAX),
              Histogram::bucketCount - 1);
}

TEST(Metrics, SnapshotJsonIsDeterministic)
{
    InstrumentationOn on;
    metrics().counter("test.det.b").add(2);
    metrics().counter("test.det.a").add(1);
    metrics().gauge("test.det.g").set(1.5);
    metrics().histogram("test.det.h").observe(3);

    auto first = metrics().snapshot().toJson();
    auto second = metrics().snapshot().toJson();
    EXPECT_EQ(first, second) << "equal state must give equal bytes";

    // std::map keys iterate sorted, so "a" precedes "b".
    EXPECT_LT(first.find("\"test.det.a\""),
              first.find("\"test.det.b\""));
}

TEST(Metrics, SnapshotJsonFormatIsStable)
{
    // The exact document a fixed snapshot serializes to: the schema
    // CI consumers parse (json.tool, diffing) is part of the API.
    MetricsSnapshot snap;
    snap.counters["b"] = 2;
    snap.counters["a"] = 1;
    snap.gauges["g"] = 1.5;
    HistogramValue h;
    h.count = 2;
    h.sum = 3;
    h.buckets[1] = 1;
    h.buckets[2] = 1;
    snap.histograms["h"] = h;
    EXPECT_EQ(snap.toJson(),
              "{\"counters\":{\"a\":1,\"b\":2},"
              "\"gauges\":{\"g\":1.5},"
              "\"histograms\":{\"h\":{\"count\":2,\"sum\":3,"
              "\"buckets\":{\"1\":1,\"2\":1}}}}");
    EXPECT_DOUBLE_EQ(h.mean(), 1.5);
}

TEST(Metrics, DisabledUpdatesAreDropped)
{
    InstrumentationOn on;
    auto &ctr = metrics().counter("test.disabled.counter");
    ctr.add(1);
    setMetricsEnabled(false);
    ctr.add(100);
    metrics().gauge("test.disabled.gauge").set(9.0);
    metrics().histogram("test.disabled.hist").observe(5);
    setMetricsEnabled(true);

    auto snap = metrics().snapshot();
    EXPECT_EQ(snap.counters["test.disabled.counter"], 1u);
    EXPECT_EQ(snap.gauges["test.disabled.gauge"], 0.0);
    EXPECT_EQ(snap.histograms["test.disabled.hist"].count, 0u);
}

TEST(Metrics, RegisteringTwiceReturnsTheSameHandle)
{
    auto &a = metrics().counter("test.same.handle");
    auto &b = metrics().counter("test.same.handle");
    EXPECT_EQ(&a, &b);
}

TEST(Metrics, ScopedTimerObservesElapsedTime)
{
    InstrumentationOn on;
    auto &hist = metrics().histogram("test.timer.ns");
    auto before = metrics().snapshot().histograms["test.timer.ns"];
    {
        ScopedTimer timer(hist);
    }
    auto after = metrics().snapshot().histograms["test.timer.ns"];
    EXPECT_EQ(after.count - before.count, 1u);
}

TEST(TraceEvents, RecordsSpansAcrossThreadsAndWritesJson)
{
    InstrumentationOn on;
    auto &rec = TraceRecorder::instance();
    rec.clear();
    rec.nameThisThread("test-main");

    {
        TimedSpan span("test.span", "test");
    }
    rec.instant("test.instant", "test");
    std::thread worker([&rec] {
        rec.nameThisThread("test-worker");
        TimedSpan span("test.worker.span", "test");
    });
    worker.join();
    EXPECT_GE(rec.eventCount(), 3u);

    auto path = (std::filesystem::temp_directory_path() /
                 "pico_metrics_test_trace.json")
                    .string();
    ASSERT_TRUE(rec.writeJson(path));
    auto doc = readFile(path);
    std::filesystem::remove(path);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"test-worker\""), std::string::npos);
    EXPECT_NE(doc.find("\"test.span\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);

    rec.clear();
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(TraceEvents, TimedSpanFeedsTheNamedHistogram)
{
    InstrumentationOn on;
    auto before =
        metrics().snapshot().histograms["test.span.metric"];
    {
        TimedSpan span("test.span.named", "test",
                       "test.span.metric");
    }
    auto after =
        metrics().snapshot().histograms["test.span.metric"];
    EXPECT_EQ(after.count - before.count, 1u);
}

TEST(RunReport, CarriesSchemaInfoAndMetrics)
{
    InstrumentationOn on;
    RunReport report;
    report.set("app", "unit");
    report.set("jobs", static_cast<uint64_t>(4));
    report.set("ratio", 0.5);

    MetricsSnapshot snap;
    snap.counters["c"] = 3;
    auto doc = report.toJson(snap);
    EXPECT_NE(doc.find("\"schema\":\"picoeval-run-report-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"app\":\"unit\""), std::string::npos);
    EXPECT_NE(doc.find("\"jobs\":\"4\""), std::string::npos);
    EXPECT_NE(doc.find("\"c\":3"), std::string::npos);
    EXPECT_NE(doc.find("\"git\":\""), std::string::npos);

    // Equal inputs give equal bytes (the determinism contract).
    EXPECT_EQ(doc, report.toJson(snap));

    auto path = (std::filesystem::temp_directory_path() /
                 "pico_metrics_test_report.json")
                    .string();
    ASSERT_TRUE(report.write(path));
    // write() serializes the live registry; the document is still
    // one JSON object ending in a newline.
    auto onDisk = readFile(path);
    std::filesystem::remove(path);
    EXPECT_FALSE(onDisk.empty());
    EXPECT_EQ(onDisk.front(), '{');
    EXPECT_EQ(onDisk.back(), '\n');
}

TEST(Logging, LevelGatesOutput)
{
    auto old = logLevel();

    setLogLevel(LogLevel::Silent);
    ::testing::internal::CaptureStderr();
    warn("suppressed warning");
    inform("suppressed info");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Info);
    ::testing::internal::CaptureStderr();
    inform("visible info");
    auto out = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("info: visible info"), std::string::npos);
    // Monotonic timestamp prefix: "[   12.345] ".
    EXPECT_EQ(out.front(), '[');

    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    inform("filtered info");
    warn("visible warning");
    out = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(out.find("filtered info"), std::string::npos);
    EXPECT_NE(out.find("warn: visible warning"), std::string::npos);

    setLogLevel(old);
}

} // namespace
} // namespace pico::support
