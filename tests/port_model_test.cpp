/**
 * @file
 * Tests for the data-cache port-contention model and its use in the
 * spacewalker's port-parameterized composition.
 */

#include <gtest/gtest.h>

#include "compiler/Scheduler.hpp"
#include "dse/Spacewalker.hpp"
#include "trace/ExecutionEngine.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico
{
namespace
{

using machine::MachineDesc;

TEST(PortModel, ZeroPortsMeansNoConstraint)
{
    workloads::AppSpec spec;
    spec.seed = 71;
    auto prog = workloads::buildAndProfile(spec, 10000);
    compiler::Scheduler sched;
    auto sp = sched.schedule(prog, MachineDesc::fromName("3221"));
    EXPECT_EQ(compiler::Scheduler::processorCycles(prog, sp),
              compiler::Scheduler::processorCycles(prog, sp, 0));
}

TEST(PortModel, FewerPortsNeverFaster)
{
    workloads::AppSpec spec;
    spec.seed = 72;
    spec.fracMem = 0.45;
    auto prog = workloads::buildAndProfile(spec, 10000);
    compiler::Scheduler sched;
    auto sp = sched.schedule(prog, MachineDesc::fromName("6332"));
    uint64_t wide = compiler::Scheduler::processorCycles(prog, sp, 4);
    uint64_t narrow =
        compiler::Scheduler::processorCycles(prog, sp, 1);
    EXPECT_GE(narrow, wide);
    // A memory-heavy program on a 3-memory-port machine must
    // actually be slowed by a single-ported cache.
    EXPECT_GT(narrow, wide);
}

TEST(PortModel, ManyPortsMatchUnconstrained)
{
    workloads::AppSpec spec;
    spec.seed = 73;
    auto prog = workloads::buildAndProfile(spec, 10000);
    compiler::Scheduler sched;
    auto sp = sched.schedule(prog, MachineDesc::fromName("2111"));
    // One memory FU: even one cache port can never be the
    // bottleneck beyond the schedule itself.
    EXPECT_EQ(compiler::Scheduler::processorCycles(prog, sp, 1),
              compiler::Scheduler::processorCycles(prog, sp, 0));
}

TEST(Spacewalker, PortParameterizedExploration)
{
    auto spec = workloads::specByName("unepic");
    auto prog = workloads::buildAndProfile(spec, 10000);

    dse::MemorySpaces spaces;
    dse::CacheSpace l1;
    l1.sizesBytes = {4096};
    l1.assocs = {1, 2};
    l1.lineSizes = {32};
    l1.portCounts = {1, 2};
    spaces.icache = l1;
    spaces.dcache = l1;
    dse::CacheSpace l2;
    l2.sizesBytes = {65536};
    l2.assocs = {4};
    l2.lineSizes = {64};
    spaces.ucache = l2;

    dse::Spacewalker::Options opts;
    opts.traceBlocks = 10000;
    opts.uGranule = 50000;
    dse::Spacewalker walker(spaces, {"1111", "3221"}, opts);
    auto result = walker.explore(prog);
    EXPECT_FALSE(result.systems.empty());
}

TEST(Spacewalker, PredicatedMachinesUseOwnReferenceClass)
{
    auto spec = workloads::specByName("rasta");
    auto prog = workloads::buildAndProfile(spec, 10000);

    dse::MemorySpaces spaces;
    dse::CacheSpace l1;
    l1.sizesBytes = {4096};
    l1.assocs = {1};
    l1.lineSizes = {32};
    spaces.icache = l1;
    spaces.dcache = l1;
    dse::CacheSpace l2;
    l2.sizesBytes = {65536};
    l2.assocs = {4};
    l2.lineSizes = {64};
    spaces.ucache = l2;

    dse::Spacewalker::Options opts;
    opts.traceBlocks = 10000;
    opts.uGranule = 50000;
    dse::Spacewalker walker(spaces,
                            {"1111", "3221", "3221p", "6332p"}, opts);
    auto result = walker.explore(prog);
    // Dilations are measured within each class, so the predicated
    // machines compare against the predicated 1111p reference.
    EXPECT_EQ(result.dilations.size(), 4u);
    EXPECT_GT(result.dilations.at("3221p"), 1.0);
    EXPECT_GT(result.dilations.at("6332p"),
              result.dilations.at("3221p") * 0.95);
    EXPECT_FALSE(result.systems.empty());
}

} // namespace
} // namespace pico
