/**
 * @file
 * Unit tests for the AHH analytic model math (equations 4.6-4.8):
 * the set-occupancy distribution, the two collision computations and
 * their agreement, and the miss-scaling rule (equation 4.7).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/AhhModel.hpp"
#include "support/Logging.hpp"

namespace pico::core::ahh
{
namespace
{

TEST(SetOccupancy, SumsToOne)
{
    double uL = 50.0;
    uint32_t sets = 16;
    double total = 0.0;
    for (uint32_t a = 0; a <= 50; ++a)
        total += setOccupancyProb(uL, a, sets);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SetOccupancy, MeanIsULinesOverSets)
{
    double uL = 80.0;
    uint32_t sets = 8;
    double mean = 0.0;
    for (uint32_t a = 0; a <= 80; ++a)
        mean += a * setOccupancyProb(uL, a, sets);
    EXPECT_NEAR(mean, uL / sets, 1e-9);
}

TEST(SetOccupancy, FractionalLineCount)
{
    // The dilation model evaluates u(L) at non-integer values.
    double p = setOccupancyProb(10.5, 2, 8);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
}

TEST(SetOccupancy, ZeroBeyondPopulation)
{
    EXPECT_DOUBLE_EQ(setOccupancyProb(3.0, 5, 8), 0.0);
}

TEST(SetOccupancy, SingleSetDegenerate)
{
    EXPECT_DOUBLE_EQ(setOccupancyProb(5.0, 5, 1), 1.0);
    EXPECT_DOUBLE_EQ(setOccupancyProb(5.0, 2, 1), 0.0);
}

TEST(Collisions, ZeroWhenNoLines)
{
    EXPECT_DOUBLE_EQ(collisions(0.0, 16, 2), 0.0);
}

TEST(Collisions, NearZeroWhenCacheMuchBigger)
{
    // 10 lines into 256 sets, 4-way: collisions essentially zero.
    EXPECT_LT(collisions(10.0, 256, 4), 1e-6);
}

TEST(Collisions, LargeWhenCacheOverwhelmed)
{
    // 10000 lines into 16 sets, 1-way: nearly everything collides.
    double coll = collisions(10000.0, 16, 1);
    EXPECT_GT(coll, 10000.0 - 16.0 - 1.0);
    EXPECT_LE(coll, 10000.0);
}

TEST(Collisions, MonotoneDecreasingInAssociativity)
{
    double prev = collisions(500.0, 64, 1);
    for (uint32_t a = 2; a <= 16; ++a) {
        double cur = collisions(500.0, 64, a);
        EXPECT_LE(cur, prev) << "assoc=" << a;
        prev = cur;
    }
}

TEST(Collisions, MonotoneDecreasingInSets)
{
    double prev = collisions(500.0, 16, 2);
    for (uint32_t s = 32; s <= 1024; s *= 2) {
        double cur = collisions(500.0, s, 2);
        EXPECT_LT(cur, prev) << "sets=" << s;
        prev = cur;
    }
}

TEST(Collisions, TailSeriesMatchesDirectFormWhenWellConditioned)
{
    // In regimes where the direct form is numerically healthy the
    // two computations agree tightly.
    struct Case
    {
        double uL;
        uint32_t sets;
        uint32_t assoc;
    };
    for (const auto &c : {Case{200.0, 32, 1}, Case{200.0, 32, 2},
                          Case{1000.0, 128, 4}, Case{64.0, 16, 2},
                          Case{500.0, 64, 8}}) {
        double tail = collisions(c.uL, c.sets, c.assoc);
        double direct = collisionsDirect(c.uL, c.sets, c.assoc);
        EXPECT_NEAR(tail, direct, 1e-6 * (1.0 + direct))
            << "uL=" << c.uL << " S=" << c.sets << " A=" << c.assoc;
    }
}

TEST(Collisions, TailSeriesStableWhereDirectFormCancels)
{
    // 100 lines into 4096 sets, 8-way: Coll is astronomically small;
    // the direct form is pure cancellation noise while the tail
    // series returns a clean non-negative value.
    double tail = collisions(100.0, 4096, 8);
    EXPECT_GE(tail, 0.0);
    EXPECT_LT(tail, 1e-12);
}

TEST(Collisions, SingleSetDegenerate)
{
    EXPECT_DOUBLE_EQ(collisions(10.0, 1, 4), 6.0);
    EXPECT_DOUBLE_EQ(collisions(3.0, 1, 4), 0.0);
}

TEST(ScaleMisses, ProportionalScaling)
{
    EXPECT_DOUBLE_EQ(scaleMisses(1000.0, 50.0, 100.0), 2000.0);
    EXPECT_DOUBLE_EQ(scaleMisses(1000.0, 50.0, 25.0), 500.0);
}

TEST(ScaleMisses, DegenerateReferenceFallsBack)
{
    EXPECT_DOUBLE_EQ(scaleMisses(1000.0, 0.0, 10.0), 1000.0);
}

TEST(ScaleMisses, RejectsNegativeMisses)
{
    EXPECT_THROW(scaleMisses(-1.0, 1.0, 1.0), FatalError);
}

} // namespace
} // namespace pico::core::ahh
