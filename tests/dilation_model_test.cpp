/**
 * @file
 * Tests for the dilation model: Lemma 1 exactness in simulation, the
 * equation 4.12 interpolation (exact at feasible endpoints), the
 * unified-cache extrapolation, and end-to-end estimation quality on
 * synthetic block traces.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cache/CacheSim.hpp"
#include "cache/SinglePassSim.hpp"
#include "core/DilationModel.hpp"
#include "core/TraceModel.hpp"
#include "support/Random.hpp"

namespace pico::core
{
namespace
{

/** A synthetic "binary": blocks with base-relative byte offsets. */
struct Block
{
    uint64_t offset;
    uint32_t size;
};

constexpr uint64_t kBase = 0x01000000;

/** Lay out contiguous blocks with the given sizes. */
std::vector<Block>
layout(const std::vector<uint32_t> &sizes)
{
    std::vector<Block> blocks;
    uint64_t off = 0;
    for (auto size : sizes) {
        blocks.push_back({off, size});
        off += size;
    }
    return blocks;
}

/** Random block visit sequence with locality. */
std::vector<size_t>
visitSequence(size_t num_blocks, size_t length, uint64_t seed)
{
    Rng rng(seed);
    std::vector<size_t> seq;
    size_t cur = 0;
    for (size_t i = 0; i < length; ++i) {
        seq.push_back(cur);
        if (rng.coin(0.6))
            cur = (cur + 1) % num_blocks;
        else
            cur = rng.below(num_blocks);
    }
    return seq;
}

/**
 * Emit the word-granularity instruction trace of a block sequence,
 * dilated by d per the paper's construction: offsets and lengths
 * scaled and rounded to words.
 */
template <typename Sink>
void
emitTrace(const std::vector<Block> &blocks,
          const std::vector<size_t> &seq, double d, Sink &&sink)
{
    auto scale = [d](uint64_t off) {
        return 4 * static_cast<uint64_t>(
                       std::llround(static_cast<double>(off) * d / 4.0));
    };
    for (auto idx : seq) {
        const auto &b = blocks[idx];
        uint64_t lo = kBase + scale(b.offset);
        uint64_t hi = kBase + scale(b.offset + b.size);
        for (uint64_t addr = lo; addr < hi; addr += 4)
            sink(addr);
    }
}

uint64_t
simulateMisses(const std::vector<Block> &blocks,
               const std::vector<size_t> &seq, double d,
               const cache::CacheConfig &cfg)
{
    cache::CacheSim sim(cfg);
    emitTrace(blocks, seq, d,
              [&sim](uint64_t addr) { sim.access(addr); });
    return sim.misses();
}

std::vector<uint32_t>
randomSizes(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint32_t> sizes;
    for (size_t i = 0; i < n; ++i)
        sizes.push_back(static_cast<uint32_t>(rng.range(3, 40)) * 4);
    return sizes;
}

/**
 * Lemma 1: with power-of-two d and aligned base, misses of
 * IC(S, A, L) on the trace dilated by d equal misses of
 * IC(S, A, L/d) on the undilated trace — exactly.
 */
TEST(Lemma1, ExactForPowerOfTwoDilations)
{
    auto blocks = layout(randomSizes(60, 11));
    auto seq = visitSequence(blocks.size(), 4000, 12);

    for (double d : {2.0, 4.0}) {
        for (uint32_t assoc : {1u, 2u}) {
            cache::CacheConfig dilated_cfg{32, assoc, 32};
            cache::CacheConfig contracted_cfg{
                32, assoc, static_cast<uint32_t>(32 / d)};
            EXPECT_EQ(
                simulateMisses(blocks, seq, d, dilated_cfg),
                simulateMisses(blocks, seq, 1.0, contracted_cfg))
                << "d=" << d << " assoc=" << assoc;
        }
    }
}

TEST(Lemma1, HoldsAcrossSetCounts)
{
    auto blocks = layout(randomSizes(40, 21));
    auto seq = visitSequence(blocks.size(), 3000, 22);
    for (uint32_t sets : {8u, 16u, 64u}) {
        cache::CacheConfig big{sets, 1, 64};
        cache::CacheConfig small{sets, 1, 32};
        EXPECT_EQ(simulateMisses(blocks, seq, 2.0, big),
                  simulateMisses(blocks, seq, 1.0, small))
            << "sets=" << sets;
    }
}

/** Fit trace parameters from the undilated trace. */
ComponentParams
fitParams(const std::vector<Block> &blocks,
          const std::vector<size_t> &seq, uint64_t granule)
{
    ItraceModeler modeler(granule);
    emitTrace(blocks, seq, 1.0, [&modeler](uint64_t addr) {
        modeler.access({addr, true, false});
    });
    return modeler.params();
}

TEST(IcacheEstimate, ExactAtFeasibleContractedLineSize)
{
    auto blocks = layout(randomSizes(50, 31));
    auto seq = visitSequence(blocks.size(), 3000, 32);
    auto params = fitParams(blocks, seq, 2000);
    DilationModel model(params, params, params);

    MissOracle oracle = [&](const cache::CacheConfig &cfg) {
        return static_cast<double>(
            simulateMisses(blocks, seq, 1.0, cfg));
    };

    // d = 2: L/d = 16 is feasible; the estimate must equal the
    // oracle exactly.
    cache::CacheConfig cfg{32, 1, 32};
    cache::CacheConfig half{32, 1, 16};
    EXPECT_DOUBLE_EQ(model.estimateIcacheMisses(cfg, 2.0, oracle),
                     oracle(half));
}

TEST(IcacheEstimate, InterpolationIsPinnedAtEndpoints)
{
    auto blocks = layout(randomSizes(50, 41));
    auto seq = visitSequence(blocks.size(), 3000, 42);
    auto params = fitParams(blocks, seq, 2000);
    DilationModel model(params, params, params);

    MissOracle oracle = [&](const cache::CacheConfig &cfg) {
        return static_cast<double>(
            simulateMisses(blocks, seq, 1.0, cfg));
    };

    // As dilation varies from just above 1 toward 2, the estimate
    // must stay between (roughly) the misses at L and at L/2, and
    // approach the L/2 endpoint.
    cache::CacheConfig cfg{32, 1, 32};
    double m_full = oracle(cfg);
    double m_half = oracle(cache::CacheConfig{32, 1, 16});
    double est_near1 = model.estimateIcacheMisses(cfg, 1.01, oracle);
    double est_near2 = model.estimateIcacheMisses(cfg, 1.99, oracle);
    EXPECT_NEAR(est_near1, m_full, 0.1 * m_full);
    EXPECT_NEAR(est_near2, m_half, 0.1 * m_half);
}

TEST(IcacheEstimate, TracksDilatedSimulationWithinModelError)
{
    // End-to-end: estimates at non-feasible dilations track the
    // *simulated* dilated-trace misses (the paper's figure 6).
    auto blocks = layout(randomSizes(80, 51));
    auto seq = visitSequence(blocks.size(), 6000, 52);
    auto params = fitParams(blocks, seq, 3000);
    DilationModel model(params, params, params);

    MissOracle oracle = [&](const cache::CacheConfig &cfg) {
        return static_cast<double>(
            simulateMisses(blocks, seq, 1.0, cfg));
    };

    cache::CacheConfig cfg{32, 2, 32};
    for (double d : {1.3, 1.5, 1.7, 2.5, 3.0}) {
        double actual = static_cast<double>(
            simulateMisses(blocks, seq, d, cfg));
        double est = model.estimateIcacheMisses(cfg, d, oracle);
        EXPECT_NEAR(est / actual, 1.0, 0.35) << "d=" << d;
    }
}

TEST(IcacheEstimate, MonotoneInDilation)
{
    auto blocks = layout(randomSizes(60, 61));
    auto seq = visitSequence(blocks.size(), 4000, 62);
    auto params = fitParams(blocks, seq, 2000);
    DilationModel model(params, params, params);
    MissOracle oracle = [&](const cache::CacheConfig &cfg) {
        return static_cast<double>(
            simulateMisses(blocks, seq, 1.0, cfg));
    };
    cache::CacheConfig cfg{32, 1, 32};
    double prev = model.estimateIcacheMisses(cfg, 1.0, oracle);
    for (double d = 1.25; d <= 4.0; d += 0.25) {
        double cur = model.estimateIcacheMisses(cfg, d, oracle);
        EXPECT_GE(cur, prev * 0.999) << "d=" << d;
        prev = cur;
    }
}

TEST(UcacheEstimate, IdentityAtUnitDilation)
{
    ComponentParams pi{500.0, 0.1, 8.0};
    ComponentParams pd{800.0, 0.7, 1.5};
    DilationModel model(pi, pi, pd);
    cache::CacheConfig cfg{128, 2, 64};
    EXPECT_NEAR(model.estimateUcacheMisses(cfg, 1.0, 12345.0),
                12345.0, 1e-6);
}

TEST(UcacheEstimate, GrowsWithDilation)
{
    ComponentParams pi{2000.0, 0.1, 8.0};
    ComponentParams pd{3000.0, 0.7, 1.5};
    DilationModel model(pi, pi, pd);
    cache::CacheConfig cfg{128, 2, 64};
    double prev = model.estimateUcacheMisses(cfg, 1.0, 10000.0);
    for (double d = 1.25; d <= 3.5; d += 0.25) {
        double cur = model.estimateUcacheMisses(cfg, d, 10000.0);
        EXPECT_GE(cur, prev) << "d=" << d;
        prev = cur;
    }
}

TEST(UcacheEstimate, DataComponentNotDilated)
{
    // With a pure-data unified trace (no instruction lines), the
    // estimate must not move with dilation.
    ComponentParams pi{0.0, 0.0, 1.0};
    ComponentParams pd{3000.0, 0.7, 1.5};
    DilationModel model(pi, pi, pd);
    cache::CacheConfig cfg{128, 2, 64};
    double at1 = model.estimateUcacheMisses(cfg, 1.0, 5000.0);
    double at3 = model.estimateUcacheMisses(cfg, 3.0, 5000.0);
    EXPECT_NEAR(at1, at3, 1e-9 * at1);
}

TEST(DcacheEstimate, IsIdentity)
{
    EXPECT_DOUBLE_EQ(DilationModel::estimateDcacheMisses(777.0),
                     777.0);
}

TEST(DilationModel, RejectsBadInputs)
{
    ComponentParams p{100.0, 0.5, 2.0};
    DilationModel model(p, p, p);
    MissOracle oracle = [](const cache::CacheConfig &) {
        return 1.0;
    };
    cache::CacheConfig cfg{32, 1, 32};
    EXPECT_THROW(model.estimateIcacheMisses(cfg, 0.0, oracle),
                 FatalError);
    EXPECT_THROW(model.estimateUcacheMisses(cfg, -1.0, 10.0),
                 FatalError);
    cache::CacheConfig bad{33, 1, 32};
    EXPECT_THROW(model.estimateIcacheMisses(bad, 2.0, oracle),
                 FatalError);
}

} // namespace
} // namespace pico::core
