/**
 * @file
 * Serial/parallel equivalence of the Spacewalker: the whole point of
 * the parallel engine is that --jobs changes wall-clock time and
 * *nothing else*. The same exploration runs with 1, 2 and 8 worker
 * threads (and twice at 8) and every observable — Pareto sets,
 * per-machine metrics, FailureLog ordering, evaluation-cache
 * database bytes — must match bit for bit.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dse/Spacewalker.hpp"
#include "support/Metrics.hpp"
#include "support/TraceEvents.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::dse
{
namespace
{

/** Small but non-degenerate spaces: several line sizes per bank so
 *  the per-line-size sweeps actually fan out, and two L1 sizes so
 *  Pareto fronts have real structure. */
MemorySpaces
walkSpaces()
{
    MemorySpaces spaces;
    CacheSpace l1;
    l1.sizesBytes = {2048, 4096};
    l1.assocs = {1, 2};
    l1.lineSizes = {16, 32};
    spaces.icache = l1;
    spaces.dcache = l1;
    CacheSpace l2;
    l2.sizesBytes = {32768};
    l2.assocs = {4};
    l2.lineSizes = {64};
    spaces.ucache = l2;
    return spaces;
}

/**
 * The walked machines: a predicated design forces a second
 * trace-equivalence class, and two poisoned names ("0...") give the
 * FailureLog a nontrivial order to preserve.
 */
std::vector<std::string>
walkMachines()
{
    return {"1111", "0111", "2211", "2211p", "0221", "3221"};
}

Spacewalker::Options
walkOptions(unsigned jobs, const std::string &cache_path)
{
    Spacewalker::Options opts;
    opts.traceBlocks = 4000;
    opts.uGranule = 20000;
    opts.jobs = jobs;
    opts.checkpointEvery = 2;
    opts.evaluationCachePath = cache_path;
    return opts;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Flatten a Pareto set for exact comparison (order included). */
std::string
flatten(const ParetoSet &set)
{
    std::ostringstream ss;
    ss.precision(17);
    for (const auto &p : set.points())
        ss << p.id << ";" << p.cost << ";" << p.time << "\n";
    return ss.str();
}

std::string
flatten(const FailureLog &log)
{
    std::ostringstream ss;
    for (const auto &e : log.entries())
        ss << e.design << "[" << e.stage << "]: " << e.reason
           << "\n";
    return ss.str();
}

struct WalkObservables
{
    std::string processors;
    std::string systems;
    std::string failures;
    std::map<std::string, double> dilations;
    std::map<std::string, uint64_t> cycles;
    uint64_t evaluated = 0;
    std::string cacheBytes;
};

WalkObservables
runWalk(const ir::Program &prog, unsigned jobs,
        const std::string &tag)
{
    auto path = std::filesystem::temp_directory_path() /
                ("pico_par_det_" + tag + ".db");
    std::filesystem::remove(path);
    WalkObservables obs;
    {
        Spacewalker walker(walkSpaces(), walkMachines(),
                           walkOptions(jobs, path.string()));
        auto result = walker.explore(prog);
        obs.processors = flatten(result.processors);
        obs.systems = flatten(result.systems);
        obs.failures = flatten(result.failures);
        obs.dilations = result.dilations;
        obs.cycles = result.processorCycles;
        obs.evaluated = result.evaluatedDesigns;
    }
    obs.cacheBytes = fileBytes(path.string());
    std::filesystem::remove(path);
    return obs;
}

class ParallelDeterminism : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        prog_ = new ir::Program(workloads::buildAndProfile(
            workloads::specByName("unepic"), 4000));
    }
    static void
    TearDownTestSuite()
    {
        delete prog_;
        prog_ = nullptr;
    }
    static ir::Program *prog_;
};

ir::Program *ParallelDeterminism::prog_ = nullptr;

void
expectIdentical(const WalkObservables &a, const WalkObservables &b)
{
    EXPECT_EQ(a.processors, b.processors);
    EXPECT_EQ(a.systems, b.systems);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.dilations, b.dilations);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.cacheBytes, b.cacheBytes);
}

TEST_F(ParallelDeterminism, JobsOneTwoEightAreBitIdentical)
{
    auto serial = runWalk(*prog_, 1, "j1");
    ASSERT_FALSE(serial.systems.empty());
    // The poisoned designs failed, in walk order.
    EXPECT_NE(serial.failures.find("0111"), std::string::npos);
    EXPECT_LT(serial.failures.find("0111"),
              serial.failures.find("0221"));
    EXPECT_EQ(serial.evaluated, 4u);

    auto two = runWalk(*prog_, 2, "j2");
    auto eight = runWalk(*prog_, 8, "j8");
    expectIdentical(serial, two);
    expectIdentical(serial, eight);
}

TEST_F(ParallelDeterminism, RepeatedEightThreadRunsAgree)
{
    auto first = runWalk(*prog_, 8, "j8a");
    auto second = runWalk(*prog_, 8, "j8b");
    expectIdentical(first, second);
}

TEST_F(ParallelDeterminism, HardwareJobsMatchesSerial)
{
    // jobs = 0 (one worker per hardware thread) is the value users
    // actually pass; it must match the serial reference too.
    auto serial = runWalk(*prog_, 1, "jh1");
    auto hw = runWalk(*prog_, 0, "jhw");
    expectIdentical(serial, hw);
}

TEST_F(ParallelDeterminism, InstrumentationDoesNotPerturbResults)
{
    // The observability layer must stay outside the result path:
    // with metrics and span recording fully enabled, every walk
    // observable — including the cache database bytes — is still
    // bit-identical across thread counts, and identical to a walk
    // with instrumentation disabled.
    auto plain = runWalk(*prog_, 1, "mi_off");

    support::setMetricsEnabled(true);
    support::setTraceEnabled(true);
    auto serial = runWalk(*prog_, 1, "mi1");
    auto two = runWalk(*prog_, 2, "mi2");
    auto eight = runWalk(*prog_, 8, "mi8");
    support::setMetricsEnabled(false);
    support::setTraceEnabled(false);
    support::TraceRecorder::instance().clear();

    expectIdentical(plain, serial);
    expectIdentical(serial, two);
    expectIdentical(serial, eight);
}

} // namespace
} // namespace pico::dse
