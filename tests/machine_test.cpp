/**
 * @file
 * Unit tests for the VLIW machine description.
 */

#include <gtest/gtest.h>

#include "machine/MachineDesc.hpp"
#include "support/Logging.hpp"

namespace pico::machine
{
namespace
{

TEST(MachineDesc, FromNameParsesDigits)
{
    auto m = MachineDesc::fromName("6332");
    EXPECT_EQ(m.slots(ir::OpClass::IntAlu), 6u);
    EXPECT_EQ(m.slots(ir::OpClass::FloatAlu), 3u);
    EXPECT_EQ(m.slots(ir::OpClass::Memory), 3u);
    EXPECT_EQ(m.slots(ir::OpClass::Branch), 2u);
    EXPECT_EQ(m.issueWidth(), 14u);
    EXPECT_EQ(m.name(), "6332");
}

TEST(MachineDesc, PaperIssueWidths)
{
    // Section 6: reference issues up to 4; targets 5, 8, 9, 14.
    EXPECT_EQ(referenceMachine().issueWidth(), 4u);
    auto targets = paperTargetMachines();
    EXPECT_EQ(targets[0].issueWidth(), 5u);
    EXPECT_EQ(targets[1].issueWidth(), 8u);
    EXPECT_EQ(targets[2].issueWidth(), 9u);
    EXPECT_EQ(targets[3].issueWidth(), 14u);
}

TEST(MachineDesc, FromNameRejectsBadStrings)
{
    EXPECT_THROW(MachineDesc::fromName("123"), FatalError);
    EXPECT_THROW(MachineDesc::fromName("12a4"), FatalError);
    EXPECT_THROW(MachineDesc::fromName("0111"), FatalError);
    EXPECT_THROW(MachineDesc::fromName("11111"), FatalError);
}

TEST(MachineDesc, RegisterFilesGrowWithWidth)
{
    auto narrow = MachineDesc::fromName("1111");
    auto wide = MachineDesc::fromName("6332");
    EXPECT_EQ(narrow.intRegs, 32u);
    EXPECT_GT(wide.intRegs, narrow.intRegs);
    // Power-of-two register file sizes (operand-field encoding).
    EXPECT_EQ(wide.intRegs & (wide.intRegs - 1), 0u);
}

TEST(MachineDesc, CostGrowsWithWidth)
{
    double prev = 0.0;
    for (const char *name : {"1111", "2111", "3221", "4221", "6332"}) {
        double cost = MachineDesc::fromName(name).cost();
        EXPECT_GT(cost, prev) << name;
        prev = cost;
    }
}

TEST(MachineDesc, TraceEquivalenceClasses)
{
    auto a = MachineDesc::fromName("1111");
    auto b = MachineDesc::fromName("6332");
    // All default-space machines share speculation/predication.
    EXPECT_TRUE(a.traceEquivalent(b));
    b.speculation = false;
    EXPECT_FALSE(a.traceEquivalent(b));
}

} // namespace
} // namespace pico::machine
