/**
 * @file
 * Tests for the Cheetah-style single-pass simulator: hand-checked
 * cases plus the central property that one pass reproduces, for every
 * covered (sets, assoc) pair, exactly the misses of a dedicated
 * single-configuration simulation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/CacheSim.hpp"
#include "cache/SinglePassSim.hpp"
#include "support/Logging.hpp"
#include "support/Random.hpp"

namespace pico::cache
{
namespace
{

TEST(SinglePassSim, RejectsBadRanges)
{
    EXPECT_THROW(SinglePassSim(24, 16, 64, 4), FatalError); // line
    EXPECT_THROW(SinglePassSim(32, 12, 64, 4), FatalError); // sets
    EXPECT_THROW(SinglePassSim(32, 64, 16, 4), FatalError); // order
    EXPECT_THROW(SinglePassSim(32, 16, 64, 0), FatalError); // assoc
}

TEST(SinglePassSim, SimpleHitMissAccounting)
{
    SinglePassSim sim(16, 1, 1, 2);
    sim.access(0x000); // miss
    sim.access(0x000); // hit at distance 0
    sim.access(0x010); // miss
    sim.access(0x000); // hit at distance 1
    EXPECT_EQ(sim.accesses(), 4u);
    // Direct-mapped (1 set, 1 way): distance-1 hit becomes a miss.
    EXPECT_EQ(sim.misses(1, 1), 3u);
    // 2-way: both re-references hit.
    EXPECT_EQ(sim.misses(1, 2), 2u);
}

TEST(SinglePassSim, MissesMonotoneInAssociativity)
{
    SinglePassSim sim(32, 8, 64, 8);
    Rng rng(1234);
    for (int i = 0; i < 30000; ++i)
        sim.access(rng.below(1 << 16) & ~3ULL);
    for (uint32_t sets = 8; sets <= 64; sets *= 2) {
        for (uint32_t a = 2; a <= 8; ++a)
            EXPECT_LE(sim.misses(sets, a), sim.misses(sets, a - 1))
                << "sets=" << sets << " assoc=" << a;
    }
}

TEST(SinglePassSim, MissesMonotoneInCacheSizeAtFixedAssoc)
{
    // For LRU set-associative caches of the same line size and
    // associativity, more sets never increases misses on the same
    // trace only under set-refinement; verify empirically on a
    // random trace (holds for uniformly spread addresses).
    SinglePassSim sim(32, 8, 128, 4);
    Rng rng(99);
    for (int i = 0; i < 40000; ++i)
        sim.access(rng.below(1 << 15) & ~3ULL);
    for (uint32_t sets = 16; sets <= 128; sets *= 2)
        EXPECT_LE(sim.misses(sets, 2), sim.misses(sets / 2, 2));
}

TEST(SinglePassSim, OutOfRangeQueriesRejected)
{
    SinglePassSim sim(32, 16, 64, 4);
    EXPECT_THROW(sim.misses(8, 2), FatalError);
    EXPECT_THROW(sim.misses(128, 2), FatalError);
    EXPECT_THROW(sim.misses(32, 5), FatalError);
    EXPECT_THROW(sim.misses(24, 2), FatalError);
}

TEST(SinglePassSim, CoveredConfigsEnumeration)
{
    SinglePassSim sim(32, 16, 64, 2);
    auto configs = sim.coveredConfigs();
    // 3 set counts x 2 associativities.
    EXPECT_EQ(configs.size(), 6u);
    for (const auto &cfg : configs)
        EXPECT_TRUE(sim.covers(cfg));
}

/**
 * Property: single-pass results equal per-configuration simulation
 * for every covered configuration, over several trace shapes.
 */
class SinglePassEquivalence : public ::testing::TestWithParam<int>
{
  protected:
    std::vector<uint64_t>
    makeTrace(int shape, int length)
    {
        Rng rng(777 + static_cast<uint64_t>(shape));
        std::vector<uint64_t> out;
        out.reserve(static_cast<size_t>(length));
        uint64_t cursor = 0;
        for (int i = 0; i < length; ++i) {
            uint64_t addr = 0;
            switch (shape) {
              case 0: // uniform random
                addr = rng.below(1 << 16);
                break;
              case 1: // sequential with occasional jumps
                cursor = rng.coin(0.05) ? rng.below(1 << 16)
                                        : cursor + 4;
                addr = cursor;
                break;
              case 2: // hot/cold mixture
                addr = rng.coin(0.8) ? rng.below(1 << 10)
                                     : rng.below(1 << 18);
                break;
              default: // strided
                cursor += 128;
                addr = cursor % (1 << 15);
                break;
            }
            out.push_back(addr & ~3ULL);
        }
        return out;
    }
};

TEST_P(SinglePassEquivalence, MatchesDirectSimulation)
{
    auto addrs = makeTrace(GetParam(), 20000);

    SinglePassSim fast(16, 4, 64, 4);
    for (auto addr : addrs)
        fast.access(addr);

    for (uint32_t sets = 4; sets <= 64; sets *= 2) {
        for (uint32_t assoc = 1; assoc <= 4; ++assoc) {
            CacheSim slow(CacheConfig{sets, assoc, 16});
            for (auto addr : addrs)
                slow.access(addr);
            EXPECT_EQ(fast.misses(sets, assoc), slow.misses())
                << "sets=" << sets << " assoc=" << assoc;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(TraceShapes, SinglePassEquivalence,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace pico::cache
