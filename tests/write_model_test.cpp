/**
 * @file
 * Property and fuzz tests for the write model: on generated and
 * fuzzed traces, write-back traffic never exceeds misses or stores
 * (a writeback rides a dirty eviction; a line is dirty only after a
 * store since install), write-through traffic equals the store count
 * exactly, invalidation conserves dirty lines, and the result.writes
 * verifier rule accepts exactly the counts the simulators produce.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "cache/CacheSim.hpp"
#include "cache/Policy.hpp"
#include "cache/SetResidentSim.hpp"
#include "support/Random.hpp"
#include "trace/Access.hpp"
#include "verify/Diagnostics.hpp"
#include "verify/ResultVerifier.hpp"

namespace pico
{
namespace
{

using cache::ReplacementPolicy;
using cache::WritePolicy;

constexpr ReplacementPolicy kPolicies[] = {ReplacementPolicy::LRU,
                                           ReplacementPolicy::FIFO,
                                           ReplacementPolicy::Random};

/**
 * Fuzzed trace: random length, address range, alignment and write
 * fraction, all drawn from the stream — wilder than the structured
 * traces of the differential suite.
 */
std::vector<trace::Access>
fuzzTrace(uint64_t seed, uint64_t stream)
{
    Rng rng = Rng::forStream(seed, stream);
    size_t n = 100 + rng.below(2000);
    uint64_t span = 1ULL << (8 + rng.below(10)); // 256B..128KB
    double write_frac = rng.uniform();           // 0..100% stores
    std::vector<trace::Access> out;
    out.reserve(n);
    uint64_t pc = rng.below(span) & ~3ULL;
    for (size_t i = 0; i < n; ++i) {
        if (rng.coin(0.3))
            pc = rng.below(span) & ~3ULL;
        out.push_back({pc, false, rng.coin(write_frac)});
        pc += 4 * (1 + rng.below(4));
    }
    return out;
}

TEST(WriteModel, ConservationHoldsOnFuzzedTraces)
{
    // For every fuzzed trace, policy and geometry: writebacks are
    // bounded by misses AND stores, write-through traffic is the
    // store count exactly, and the verifier rule agrees.
    for (uint64_t stream = 0; stream < 24; ++stream) {
        auto refs = fuzzTrace(20260808, stream);
        uint64_t stores = 0;
        for (const auto &a : refs)
            stores += a.isWrite ? 1 : 0;

        for (ReplacementPolicy policy : kPolicies) {
            cache::SetResidentSim sim(16, 4, 16, 3, policy);
            for (const auto &a : refs)
                sim(a);
            EXPECT_EQ(sim.stores(), stores);
            for (uint32_t sets = 4; sets <= 16; sets *= 2) {
                for (uint32_t assoc = 1; assoc <= 3; ++assoc) {
                    uint64_t misses = sim.misses(sets, assoc);
                    uint64_t wb = sim.writebacks(sets, assoc);
                    EXPECT_LE(wb, misses)
                        << "stream=" << stream << " sets=" << sets;
                    EXPECT_LE(wb, stores)
                        << "stream=" << stream << " sets=" << sets;

                    verify::Diagnostics diags;
                    EXPECT_TRUE(verify::verifyWriteModel(
                        static_cast<double>(wb),
                        static_cast<double>(misses),
                        static_cast<double>(stores),
                        WritePolicy::WriteBack, "fuzz", diags));
                    EXPECT_TRUE(verify::verifyWriteModel(
                        static_cast<double>(stores),
                        static_cast<double>(misses),
                        static_cast<double>(stores),
                        WritePolicy::WriteThrough, "fuzz", diags));
                }
            }
        }
    }
}

TEST(WriteModel, WriteThroughTrafficIsExactlyTheStoreCount)
{
    for (uint64_t stream = 0; stream < 8; ++stream) {
        auto refs = fuzzTrace(7, stream);
        uint64_t stores = 0;
        for (const auto &a : refs)
            stores += a.isWrite ? 1 : 0;
        for (ReplacementPolicy policy : kPolicies) {
            cache::CacheConfig cfg{8, 2, 16, 1, policy,
                                   WritePolicy::WriteThrough};
            cache::CacheSim sim(cfg);
            for (const auto &a : refs)
                sim(a);
            EXPECT_EQ(sim.writeTraffic(), stores);
            // Write-through leaves nothing dirty: no writebacks.
            EXPECT_EQ(sim.writebacks(), 0u);
        }
    }
}

TEST(WriteModel, ReadOnlyTraceGeneratesNoWriteTraffic)
{
    auto refs = fuzzTrace(99, 0);
    for (auto &a : refs)
        a.isWrite = false;
    for (ReplacementPolicy policy : kPolicies) {
        cache::SetResidentSim sim(16, 4, 16, 2, policy);
        for (const auto &a : refs)
            sim(a);
        EXPECT_EQ(sim.stores(), 0u);
        for (uint32_t sets = 4; sets <= 16; sets *= 2)
            for (uint32_t assoc = 1; assoc <= 2; ++assoc)
                EXPECT_EQ(sim.writebacks(sets, assoc), 0u);

        cache::CacheConfig cfg{8, 2, 16, 1, policy,
                               WritePolicy::WriteBack};
        cache::CacheSim ref(cfg);
        for (const auto &a : refs)
            ref(a);
        EXPECT_EQ(ref.writeTraffic(), 0u);
    }
}

TEST(WriteModel, InvalidationWritesBackDirtyLinesExactlyOnce)
{
    // A dirty line flushed by back-invalidation is written back once
    // and only once: re-invalidating, or evicting the slot later,
    // must not write it again.
    cache::CacheConfig cfg{4, 2, 16};
    cache::CacheSim sim(cfg);
    sim.access(0x1000, /*write=*/true);
    EXPECT_EQ(sim.writebacks(), 0u);
    sim.invalidateLine(0x1000 / 16);
    EXPECT_EQ(sim.writebacks(), 1u);
    sim.invalidateLine(0x1000 / 16);
    EXPECT_EQ(sim.writebacks(), 1u);

    // A clean line invalidates silently.
    sim.access(0x2000, /*write=*/false);
    sim.invalidateLine(0x2000 / 16);
    EXPECT_EQ(sim.writebacks(), 1u);

    // Repeated stores to a resident line stay one writeback: dirty
    // is a bit, not a counter.
    sim.access(0x3000, true);
    sim.access(0x3000, true);
    sim.access(0x3004, true);
    sim.invalidateRange(0x3000, 0x3010);
    EXPECT_EQ(sim.writebacks(), 2u);
}

TEST(WriteModel, DirtyBitSurvivesHitsUnderEveryPolicy)
{
    // Install clean (load miss), dirty on a later store hit, then
    // force the eviction: exactly one writeback under write-back.
    // This is the scenario that outlaws an MRU shortcut in the
    // set-resident simulator — the store hit must reach the bank.
    for (ReplacementPolicy policy : kPolicies) {
        cache::SetResidentSim sim(16, 1, 1, 1, policy);
        sim.access(0x000, false); // install clean
        sim.access(0x000, true);  // dirty on hit
        sim.access(0x100, false); // evict -> writeback
        EXPECT_EQ(sim.writebacks(1, 1), 1u)
            << cache::replacementName(policy);

        cache::CacheConfig cfg{1, 1, 16, 1, policy,
                               WritePolicy::WriteBack};
        cache::CacheSim ref(cfg);
        ref.access(0x000, false);
        ref.access(0x000, true);
        ref.access(0x100, false);
        EXPECT_EQ(ref.writebacks(), 1u)
            << cache::replacementName(policy);
    }
}

TEST(WriteModel, VerifierRejectsImpossibleTraffic)
{
    verify::Diagnostics diags;
    // Write-back traffic above the miss count is impossible.
    EXPECT_FALSE(verify::verifyWriteModel(
        11.0, 10.0, 100.0, WritePolicy::WriteBack, "bad", diags));
    // ... as is write-back traffic above the store count.
    EXPECT_FALSE(verify::verifyWriteModel(
        6.0, 10.0, 5.0, WritePolicy::WriteBack, "bad", diags));
    // Write-through traffic must equal stores exactly.
    EXPECT_FALSE(verify::verifyWriteModel(
        4.0, 10.0, 5.0, WritePolicy::WriteThrough, "bad", diags));
    // Negative and non-finite traffic are always errors.
    EXPECT_FALSE(verify::verifyWriteModel(
        -1.0, 10.0, 5.0, WritePolicy::WriteBack, "bad", diags));
    EXPECT_FALSE(verify::verifyWriteModel(
        std::numeric_limits<double>::quiet_NaN(), 10.0, 5.0,
        WritePolicy::WriteThrough, "bad", diags));
    EXPECT_EQ(diags.errorCount(), 5u);

    // And accepts a consistent write-back cell.
    verify::Diagnostics ok;
    EXPECT_TRUE(verify::verifyWriteModel(
        5.0, 10.0, 8.0, WritePolicy::WriteBack, "good", ok));
    EXPECT_TRUE(ok.clean());
}

TEST(WriteModel, ResetRestoresDeterminism)
{
    // reset() must restore the victim stream too, or a reused
    // random-policy oracle would diverge from a fresh one.
    auto refs = fuzzTrace(1234, 5);
    cache::CacheConfig cfg{8, 4, 16, 1, ReplacementPolicy::Random,
                           WritePolicy::WriteBack};
    cache::CacheSim sim(cfg);
    for (const auto &a : refs)
        sim(a);
    uint64_t misses = sim.misses();
    uint64_t wb = sim.writebacks();
    sim.reset();
    for (const auto &a : refs)
        sim(a);
    EXPECT_EQ(sim.misses(), misses);
    EXPECT_EQ(sim.writebacks(), wb);
}

} // namespace
} // namespace pico
