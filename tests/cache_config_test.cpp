/**
 * @file
 * Unit tests for CacheConfig: feasibility, naming, construction and
 * the area cost model.
 */

#include <gtest/gtest.h>

#include "cache/CacheConfig.hpp"
#include "support/Logging.hpp"

namespace pico::cache
{
namespace
{

TEST(CacheConfig, SizeBytes)
{
    CacheConfig cfg{32, 2, 32};
    EXPECT_EQ(cfg.sizeBytes(), 2048u);
}

TEST(CacheConfig, FeasibleRequiresPowersOfTwo)
{
    EXPECT_TRUE((CacheConfig{32, 2, 32}).feasible());
    EXPECT_TRUE((CacheConfig{1, 1, 4}).feasible());
    EXPECT_FALSE((CacheConfig{3, 2, 32}).feasible());  // sets
    EXPECT_FALSE((CacheConfig{32, 2, 24}).feasible()); // line
    EXPECT_FALSE((CacheConfig{32, 0, 32}).feasible()); // assoc
    EXPECT_FALSE((CacheConfig{32, 2, 2}).feasible());  // sub-word
}

TEST(CacheConfig, AssociativityNeedNotBePowerOfTwo)
{
    EXPECT_TRUE((CacheConfig{16, 3, 32}).feasible());
    EXPECT_TRUE((CacheConfig{16, 5, 32}).feasible());
}

TEST(CacheConfig, ValidateThrowsOnInfeasible)
{
    CacheConfig bad{3, 1, 32};
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(CacheConfig, FromSizePaperConfigs)
{
    // The paper's small config: 1KB direct-mapped, 32B lines.
    auto small = CacheConfig::fromSize(1024, 1, 32);
    EXPECT_EQ(small.sets, 32u);
    EXPECT_EQ(small.sizeBytes(), 1024u);

    // 16KB 2-way 64B (small unified).
    auto uc = CacheConfig::fromSize(16384, 2, 64);
    EXPECT_EQ(uc.sets, 128u);

    // 128KB 4-way 64B (large unified).
    auto big = CacheConfig::fromSize(131072, 4, 64);
    EXPECT_EQ(big.sets, 512u);
}

TEST(CacheConfig, FromSizeRejectsIndivisible)
{
    EXPECT_THROW(CacheConfig::fromSize(1000, 1, 32), FatalError);
    EXPECT_THROW(CacheConfig::fromSize(1024, 3, 32), FatalError);
}

TEST(CacheConfig, NameFormat)
{
    EXPECT_EQ(CacheConfig::fromSize(16384, 2, 32).name(),
              "16KB/2way/32B");
    EXPECT_EQ((CacheConfig{1, 1, 4}).name(), "4B/1way/4B");
}

TEST(CacheConfig, AreaGrowsWithSize)
{
    auto a = CacheConfig::fromSize(1024, 1, 32);
    auto b = CacheConfig::fromSize(16384, 1, 32);
    EXPECT_GT(b.areaCost(), a.areaCost());
}

TEST(CacheConfig, AreaGrowsWithAssociativity)
{
    auto a = CacheConfig::fromSize(8192, 1, 32);
    auto b = CacheConfig::fromSize(8192, 4, 32);
    EXPECT_GT(b.areaCost(), a.areaCost());
}

TEST(CacheConfig, AreaGrowsQuadraticallyWithPorts)
{
    auto one = CacheConfig::fromSize(8192, 2, 32, 1);
    auto two = CacheConfig::fromSize(8192, 2, 32, 2);
    EXPECT_NEAR(two.areaCost() / one.areaCost(), 4.0, 1e-9);
}

TEST(CacheConfig, Equality)
{
    auto a = CacheConfig::fromSize(1024, 1, 32);
    auto b = CacheConfig::fromSize(1024, 1, 32);
    auto c = CacheConfig::fromSize(1024, 2, 32);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

} // namespace
} // namespace pico::cache
