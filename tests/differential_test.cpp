/**
 * @file
 * Differential tests: the single-pass (Cheetah) simulator against
 * the reference per-configuration CacheSim, the core invariant the
 * whole one-pass evaluation rests on. SinglePassSim claims that one
 * sweep reproduces, for every (sets, assoc) in its ranges, exactly
 * the miss count a dedicated LRU simulator of that one configuration
 * would report — here each claim is checked against an independent
 * implementation, on randomized traces, serial and parallel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/CacheSim.hpp"
#include "cache/SinglePassSim.hpp"
#include "dse/Evaluators.hpp"
#include "support/Random.hpp"
#include "support/ThreadPool.hpp"
#include "trace/ColumnarTrace.hpp"
#include "trace/TraceBuffer.hpp"

namespace pico
{
namespace
{

/** 1k-access random trace with some locality, one per stream id. */
std::vector<uint64_t>
randomTrace(uint64_t seed, uint64_t stream)
{
    Rng rng = Rng::forStream(seed, stream);
    std::vector<uint64_t> out;
    out.reserve(1000);
    uint64_t pc = 0;
    for (int i = 0; i < 1000; ++i) {
        if (rng.coin(0.2))
            pc = rng.below(1 << 14) & ~3ULL;
        out.push_back(pc);
        pc += 4;
    }
    return out;
}

/**
 * Exhaustive cross-check of one SinglePassSim against per-config
 * CacheSim runs over its whole covered (sets, assoc) range.
 */
void
crossCheck(uint32_t line, uint32_t min_sets, uint32_t max_sets,
           uint32_t max_assoc, const std::vector<uint64_t> &trace)
{
    cache::SinglePassSim fast(line, min_sets, max_sets, max_assoc);
    for (auto addr : trace)
        fast.access(addr);

    for (uint32_t sets = min_sets; sets <= max_sets; sets *= 2) {
        for (uint32_t assoc = 1; assoc <= max_assoc; ++assoc) {
            cache::CacheSim ref(
                cache::CacheConfig{sets, assoc, line});
            for (auto addr : trace)
                ref.access(addr);
            EXPECT_EQ(fast.misses(sets, assoc), ref.misses())
                << "line=" << line << " sets=" << sets
                << " assoc=" << assoc;
        }
    }
}

TEST(Differential, SinglePassMatchesCacheSimOnRandomTraces)
{
    // Several independent random traces; every (sets, assoc) of the
    // sweep is checked against a direct simulation.
    for (uint64_t stream = 0; stream < 8; ++stream)
        crossCheck(32, 16, 256, 4,
                   randomTrace(20260805, stream));
}

TEST(Differential, SinglePassMatchesCacheSimAcrossLineSizes)
{
    for (uint32_t line : {4u, 8u, 16u, 64u, 128u})
        crossCheck(line, 8, 64, 8, randomTrace(7, line));
}

TEST(Differential, SinglePassMatchesCacheSimOnAdversarialTraces)
{
    // Pathological patterns: pure thrash of one set, and a cyclic
    // working set one line larger than the associativity.
    std::vector<uint64_t> thrash;
    for (int i = 0; i < 1000; ++i)
        thrash.push_back(static_cast<uint64_t>(i % 5) * 32 * 16);
    crossCheck(32, 16, 64, 4, thrash);

    std::vector<uint64_t> cyclic;
    for (int i = 0; i < 1000; ++i)
        cyclic.push_back(static_cast<uint64_t>(i % 3) * 4096);
    crossCheck(16, 8, 128, 2, cyclic);
}

TEST(Differential, SimBankParallelSweepMatchesDirectSims)
{
    // The parallel per-line-size sweep must agree with direct
    // CacheSim runs for every configuration the bank covers — this
    // ties the thread-pool path itself to the external oracle.
    dse::CacheSpace space;
    space.sizesBytes = {2048, 4096, 8192};
    space.assocs = {1, 2, 4};
    space.lineSizes = {16, 32, 64};

    trace::TraceBuffer buffer;
    for (auto addr : randomTrace(321, 0))
        buffer(trace::Access{addr, true, false});

    support::ThreadPool pool(4);
    dse::SimBank bank(space);
    bank.simulate(buffer, &pool);

    for (const auto &cfg : space.enumerate()) {
        cache::CacheSim ref(cfg);
        buffer.replay(ref);
        EXPECT_EQ(bank.misses(cfg),
                  static_cast<double>(ref.misses()))
            << cfg.name();
    }
}

TEST(Differential, AccessBlockMatchesPerAccessCalls)
{
    // The block-wise SoA entry point (what the columnar replay
    // feeds) against the one-address-at-a-time entry point, same
    // addresses, every covered configuration.
    auto trace = randomTrace(987, 1);
    cache::SinglePassSim one(32, 16, 256, 4);
    cache::SinglePassSim block(32, 16, 256, 4);
    for (auto addr : trace)
        one.access(addr);
    // Feed in uneven chunks so block boundaries land mid-run.
    size_t i = 0;
    for (size_t chunk : {7ul, 100ul, 1ul, 500ul}) {
        block.accessBlock(trace.data() + i,
                          std::min(chunk, trace.size() - i));
        i += std::min(chunk, trace.size() - i);
    }
    block.accessBlock(trace.data() + i, trace.size() - i);

    for (const auto &cfg : one.coveredConfigs())
        EXPECT_EQ(block.misses(cfg), one.misses(cfg)) << cfg.name();
}

TEST(Differential, ColumnarReplayMatchesRowReplayAcrossCacheSpace)
{
    // The tentpole claim: the fused columnar sweep produces, for
    // every configuration in the cache space, exactly the miss
    // count of the row-wise TraceBuffer sweep it replaced — and
    // both match the external per-config oracle.
    dse::CacheSpace space;
    space.sizesBytes = {2048, 4096, 8192, 16384};
    space.assocs = {1, 2, 4};
    space.lineSizes = {8, 16, 32, 64};

    auto addrs = randomTrace(20260808, 2);
    trace::TraceBuffer rows;
    trace::ColumnarTraceBuffer cols(/*block_capacity=*/128);
    for (auto addr : addrs) {
        trace::Access a{addr, true, false};
        rows(a);
        cols(a);
    }

    dse::SimBank row_bank(space);
    row_bank.simulate(rows, nullptr);
    dse::SimBank col_bank(space);
    col_bank.simulate(cols, nullptr);

    for (const auto &cfg : space.enumerate()) {
        EXPECT_EQ(col_bank.misses(cfg), row_bank.misses(cfg))
            << cfg.name();
        cache::CacheSim ref(cfg);
        rows.replay(ref);
        EXPECT_EQ(col_bank.misses(cfg),
                  static_cast<double>(ref.misses()))
            << cfg.name();
    }
}

TEST(Differential, ColumnarSweepIsJobCountInvariant)
{
    // Serial fused, 2 jobs, 8 jobs: identical misses everywhere.
    dse::CacheSpace space;
    space.sizesBytes = {2048, 8192};
    space.assocs = {1, 2, 4};
    space.lineSizes = {16, 32, 64};

    trace::ColumnarTraceBuffer cols;
    for (auto addr : randomTrace(555, 3))
        cols(trace::Access{addr, false, false});

    dse::SimBank serial(space);
    serial.simulate(cols, nullptr);
    for (unsigned jobs : {2u, 8u}) {
        support::ThreadPool pool(jobs);
        dse::SimBank parallel(space);
        parallel.simulate(cols, &pool);
        for (const auto &cfg : space.enumerate())
            EXPECT_EQ(parallel.misses(cfg), serial.misses(cfg))
                << cfg.name() << " jobs=" << jobs;
    }
}

} // namespace
} // namespace pico
