/**
 * @file
 * Seed-swept schedule-perturbation suite (support/SchedulePerturb).
 *
 * TSan only judges the interleavings a run happens to produce; this
 * suite *manufactures* interleavings. Each test sweeps the harness
 * across many seeds (≥64 on the hot scenarios) and asserts the one
 * property the repo's concurrency is built around: results are a
 * pure function of the workload, bit-identical under every schedule
 * the harness can provoke. Any divergence is an ordering bug.
 *
 * The Debug-build lock-rank checker is active throughout (the
 * schedule-fuzz CI job runs this suite in Debug): a rank inversion
 * reached under any perturbed schedule fatal()s and fails the test,
 * so "zero rank violations across the sweep" needs no extra
 * assertions.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dse/EvaluationCache.hpp"
#include "server/EvalService.hpp"
#include "server/Protocol.hpp"
#include "support/FaultInjection.hpp"
#include "support/SchedulePerturb.hpp"
#include "support/ThreadPool.hpp"

namespace pico
{
namespace
{

using dse::EvaluationCache;
using server::EvalService;
using server::Request;
using server::Response;
using server::ServiceOptions;
using server::Status;
using support::ScopedPerturb;

/** Seeds swept by the hot scenarios. */
constexpr uint64_t kSeeds = 64;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------
// Harness self-checks
// ---------------------------------------------------------------

TEST(SchedulePerturb, DisarmedByDefaultAndCheap)
{
    EXPECT_FALSE(support::schedulePerturbArmed());
    // Unarmed points must be inert (and cost one relaxed load).
    for (int i = 0; i < 1000; ++i)
        support::perturbPoint("test.point");
    EXPECT_EQ(support::perturbCount(), 0u);
}

TEST(SchedulePerturb, DecisionStreamIsSeedDeterministic)
{
    // Single-threaded, the (seed, point, arrival) → decision stream
    // is exactly reproducible: same seed, same decisions.
    auto decisions = [](uint64_t seed) {
        ScopedPerturb perturb(seed);
        for (int i = 0; i < 4096; ++i)
            support::perturbPoint("test.stream");
        return support::perturbCount();
    };
    uint64_t a = decisions(12345);
    uint64_t b = decisions(12345);
    EXPECT_EQ(a, b);
    // The stream actually decides sometimes (≈1/4 of arrivals).
    EXPECT_GT(a, 0u);
    // And different seeds explore different schedules.
    uint64_t c = decisions(54321);
    EXPECT_TRUE(a != c || true) << "seeds may collide on count";
    EXPECT_FALSE(support::schedulePerturbArmed());
}

// ---------------------------------------------------------------
// EvaluationCache: concurrent flush + getOrCompute
// ---------------------------------------------------------------

TEST(ScheduleSweep, CacheFlushVsGetOrComputeIsBitIdentical)
{
    // Three compute threads race the same 16 keys in rotated orders
    // (single-flight leaders and followers on every schedule) while
    // a fourth thread flushes mid-computation. Across all seeds: the
    // database bytes are identical, and every key was computed
    // exactly once (the store-before-release contract).
    constexpr size_t kKeys = 16;
    std::vector<std::string> keys;
    for (size_t k = 0; k < kKeys; ++k)
        keys.push_back("design;" + std::to_string(k));
    auto valueOf = [](const std::string &key) {
        std::vector<double> v;
        for (size_t i = 0; i < 3; ++i)
            v.push_back(static_cast<double>(
                std::hash<std::string>{}(key) % (1000 + i)));
        return v;
    };

    std::string reference;
    uint64_t perturbations = 0;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        std::string path = tempPath("schedule_cache.db");
        std::remove(path.c_str());
        {
            ScopedPerturb perturb(seed);
            EvaluationCache cache(path);
            std::vector<std::thread> threads;
            for (size_t t = 0; t < 3; ++t) {
                threads.emplace_back([&, t] {
                    for (size_t k = 0; k < kKeys; ++k) {
                        const auto &key =
                            keys[(k + t * 5) % kKeys];
                        auto got = cache.getOrCompute(
                            key, [&] { return valueOf(key); });
                        ASSERT_EQ(got, valueOf(key));
                    }
                });
            }
            std::thread flusher([&] {
                for (int f = 0; f < 4; ++f)
                    cache.flush();
            });
            for (auto &t : threads)
                t.join();
            flusher.join();
            cache.flush();
            EXPECT_EQ(cache.stats().computed, kKeys)
                << "single-flight exactly-once broke at seed "
                << seed;
            EXPECT_EQ(cache.size(), kKeys);
            perturbations += support::perturbCount();
        }
        std::string bytes = fileBytes(path);
        ASSERT_FALSE(bytes.empty()) << "seed " << seed;
        if (seed == 0)
            reference = bytes;
        else
            ASSERT_EQ(bytes, reference)
                << "database bytes diverged at seed " << seed;
        std::remove(path.c_str());
    }
    // The sweep actually perturbed schedules (not a vacuous pass).
    EXPECT_GT(perturbations, 0u);
}

// ---------------------------------------------------------------
// ThreadPool: caller-participating nested parallelFor
// ---------------------------------------------------------------

TEST(ScheduleSweep, NestedParallelForReductionIsDeterministic)
{
    // Nested caller-participating loops under perturbation: bodies
    // run in schedule-dependent order, but the index-ordered merge
    // must equal the serial reference on every seed.
    constexpr size_t kOuter = 6;
    constexpr size_t kInner = 6;
    auto cell = [](size_t i, size_t j) {
        return static_cast<uint64_t>(i * 131 + j * 17 + 7);
    };
    // Serial reference: the same code path with no pool.
    std::vector<uint64_t> slots(kOuter * kInner, 0);
    support::parallelFor(kOuter, nullptr, [&](size_t i) {
        support::parallelFor(kInner, nullptr, [&](size_t j) {
            slots[i * kInner + j] = cell(i, j);
        });
    });
    uint64_t reference = 0;
    for (uint64_t v : slots)
        reference = reference * 31 + v; // order-sensitive fold

    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        ScopedPerturb perturb(seed);
        support::ThreadPool pool(2);
        std::vector<uint64_t> out(kOuter * kInner, 0);
        support::parallelFor(kOuter, &pool, [&](size_t i) {
            support::parallelFor(kInner, &pool, [&](size_t j) {
                out[i * kInner + j] = cell(i, j);
            });
        });
        uint64_t fold = 0;
        for (uint64_t v : out)
            fold = fold * 31 + v;
        ASSERT_EQ(fold, reference) << "seed " << seed;
    }
}

// ---------------------------------------------------------------
// EvalService: perturbed call storm and drain-under-chaos
// ---------------------------------------------------------------

/** An eval response's deterministic payload: every value except the
 *  per-call request id. */
std::map<std::string, double>
deterministicValues(const Response &resp)
{
    std::map<std::string, double> v = resp.values;
    v.erase("request.id");
    return v;
}

TEST(ScheduleSweep, ConcurrentCallsAreBitIdenticalPerKey)
{
    // One service, 64 seeds of concurrent callers. Whatever the
    // schedule, a completed request's values are a pure function of
    // the request — the first completion of each (machines) set
    // becomes the reference every later completion must match
    // exactly.
    ServiceOptions opts;
    opts.workers = 2;
    opts.queueCapacity = 8;
    opts.queueWatermark = 8;
    opts.drainDeadlineMs = 5000;
    EvalService service(opts);
    const std::vector<std::string> sets = {"1111", "2111"};

    std::map<std::string, std::map<std::string, double>> reference;
    support::Mutex refMutex; // test-local, unranked
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        ScopedPerturb perturb(seed);
        std::vector<std::thread> callers;
        for (size_t c = 0; c < 3; ++c) {
            callers.emplace_back([&, c, seed] {
                Request req;
                req.app = "rasta";
                req.machines = sets[c % sets.size()];
                req.traceBlocks = 400;
                // Unique key per call: bypass the response memo so
                // every call exercises queue + cache machinery.
                req.key = "sweep-" + std::to_string(seed) + "-" +
                          std::to_string(c);
                Response resp = service.call(req);
                ASSERT_EQ(resp.status, Status::Ok) << resp.error;
                support::MutexLock lock(refMutex);
                auto [it, inserted] = reference.emplace(
                    req.machines, deterministicValues(resp));
                if (!inserted) {
                    ASSERT_EQ(deterministicValues(resp), it->second)
                        << "values diverged for machines "
                        << req.machines << " at seed " << seed;
                }
            });
        }
        for (auto &t : callers)
            t.join();
    }
    EXPECT_EQ(reference.size(), sets.size());
}

TEST(ScheduleSweep, DrainDuringChaosStormReconciles)
{
    // Fresh service per seed: a chaos-slowed storm is cut down by a
    // tiny drain deadline mid-flight. Under every schedule: every
    // caller gets a terminal answer, the counters account for every
    // request exactly once, and nothing is left in flight.
    constexpr uint64_t kStormSeeds = 16;
    for (uint64_t seed = 0; seed < kStormSeeds; ++seed) {
        ScopedPerturb perturb(seed);
        ServiceOptions opts;
        opts.workers = 2;
        opts.queueCapacity = 8;
        opts.queueWatermark = 4;
        opts.chaosSlowMs = 5;
        opts.drainDeadlineMs = 2000;
        EvalService service(opts);
        support::ScopedFault slow("EvalService::execute:slow", 0, 0);

        constexpr int kCallers = 4;
        std::atomic<int> answered{0};
        std::vector<std::thread> callers;
        for (int c = 0; c < kCallers; ++c) {
            callers.emplace_back([&, c, seed] {
                Request req;
                req.app = "rasta";
                req.machines = "1111";
                req.traceBlocks = 200;
                req.key = "storm-" + std::to_string(seed) + "-" +
                          std::to_string(c);
                Response resp = service.call(req);
                // Any terminal status is legal under drain; hanging
                // or throwing is not.
                (void)resp;
                answered.fetch_add(1);
            });
        }
        // Cut the storm down mid-flight.
        service.drain(5);
        for (auto &t : callers)
            t.join();
        ASSERT_EQ(answered.load(), kCallers) << "seed " << seed;

        auto v = service.statsValues();
        // Each request terminated exactly once: memo hit, shed (at
        // admission or by drain), completed, deadline or failed.
        ASSERT_DOUBLE_EQ(v["requests.total"],
                         v["completed"] + v["deadline"] +
                             v["failed"] + v["shed"] +
                             v["memo_hits"])
            << "seed " << seed;
        ASSERT_DOUBLE_EQ(v["inflight"], 0.0) << "seed " << seed;
        ASSERT_DOUBLE_EQ(v["requests.total"],
                         static_cast<double>(kCallers))
            << "seed " << seed;
    }
}

} // namespace
} // namespace pico
