/**
 * @file
 * Unit tests for the VLIW list scheduler: correctness (dependences,
 * resource limits, branch placement), and the machine-width effects
 * the paper's model depends on (shorter schedules, more speculation
 * on wider machines).
 */

#include <gtest/gtest.h>

#include "compiler/Scheduler.hpp"
#include "trace/ExecutionEngine.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::compiler
{
namespace
{

using machine::MachineDesc;

ir::BasicBlock
chainBlock(size_t n)
{
    // n dependent integer ops followed by a branch.
    ir::BasicBlock block;
    for (size_t i = 0; i < n; ++i) {
        ir::Operation op;
        op.opClass = ir::OpClass::IntAlu;
        if (i > 0)
            op.deps.push_back(static_cast<uint16_t>(i - 1));
        block.ops.push_back(op);
    }
    ir::Operation br;
    br.opClass = ir::OpClass::Branch;
    block.ops.push_back(br);
    return block;
}

ir::BasicBlock
independentBlock(size_t n)
{
    ir::BasicBlock block;
    for (size_t i = 0; i < n; ++i) {
        ir::Operation op;
        op.opClass = ir::OpClass::IntAlu;
        block.ops.push_back(op);
    }
    ir::Operation br;
    br.opClass = ir::OpClass::Branch;
    block.ops.push_back(br);
    return block;
}

TEST(Scheduler, DependentChainSerializes)
{
    Scheduler sched;
    auto block = chainBlock(6);
    auto out = sched.scheduleBlock(block, MachineDesc::fromName("6332"),
                                   1);
    // 6 unit-latency dependent ops + the branch: at least 7 cycles
    // regardless of width.
    EXPECT_GE(out.scheduleLength(), 7u);
    EXPECT_EQ(out.totalOps(), 7u);
}

TEST(Scheduler, IndependentOpsPackToWidth)
{
    Scheduler sched;
    auto block = independentBlock(6);
    // 1111: one integer slot -> 6 cycles for the ALUs + 1 branch.
    auto narrow = sched.scheduleBlock(
        block, MachineDesc::fromName("1111"), 1);
    EXPECT_EQ(narrow.scheduleLength(), 7u);
    // 6332: six integer slots -> 1 cycle + 1 branch.
    auto wide = sched.scheduleBlock(
        block, MachineDesc::fromName("6332"), 1);
    EXPECT_EQ(wide.scheduleLength(), 2u);
}

TEST(Scheduler, RespectsFuLimitsEveryCycle)
{
    workloads::AppSpec spec;
    spec.seed = 777;
    auto prog = workloads::buildProgram(spec);
    Scheduler sched;
    for (const char *name : {"1111", "2111", "3221", "6332"}) {
        auto mdes = MachineDesc::fromName(name);
        auto sp = sched.schedule(prog, mdes);
        for (const auto &func : sp.functions) {
            for (const auto &block : func.blocks) {
                for (const auto &inst : block.insts) {
                    unsigned used[4] = {0, 0, 0, 0};
                    for (const auto &op : inst.ops)
                        ++used[static_cast<unsigned>(op.opClass)];
                    for (unsigned c = 0; c < 4; ++c) {
                        EXPECT_LE(used[c],
                                  mdes.fuCount[c])
                            << name;
                    }
                }
            }
        }
    }
}

TEST(Scheduler, DependencesRespectedInIssueOrder)
{
    workloads::AppSpec spec;
    spec.seed = 31337;
    spec.depDensity = 0.6;
    auto prog = workloads::buildProgram(spec);
    Scheduler sched;
    auto mdes = MachineDesc::fromName("4221");
    auto sp = sched.schedule(prog, mdes);
    for (size_t f = 0; f < prog.functions.size(); ++f) {
        for (size_t b = 0; b < prog.functions[f].blocks.size(); ++b) {
            const auto &irb = prog.functions[f].blocks[b];
            const auto &sb = sp.functions[f].blocks[b];
            // Issue cycle per original index.
            std::vector<int> cycle(irb.ops.size(), -1);
            std::vector<bool> speculated(irb.ops.size(), false);
            for (size_t c = 0; c < sb.insts.size(); ++c) {
                for (const auto &op : sb.insts[c].ops) {
                    if (op.origIndex != synthesizedOp) {
                        cycle[op.origIndex] = static_cast<int>(c);
                        speculated[op.origIndex] = op.speculated;
                    }
                }
            }
            for (size_t i = 0; i < irb.ops.size(); ++i) {
                ASSERT_GE(cycle[i], 0);
                if (speculated[i])
                    continue; // hoisted above its dependences
                for (auto dep : irb.ops[i].deps) {
                    EXPECT_GE(cycle[i],
                              cycle[dep] + irb.ops[dep].latency);
                }
            }
        }
    }
}

TEST(Scheduler, BranchIssuesLast)
{
    workloads::AppSpec spec;
    spec.seed = 2222;
    auto prog = workloads::buildProgram(spec);
    Scheduler sched;
    auto sp = sched.schedule(prog, MachineDesc::fromName("3221"));
    for (size_t f = 0; f < prog.functions.size(); ++f) {
        for (size_t b = 0; b < prog.functions[f].blocks.size(); ++b) {
            const auto &sb = sp.functions[f].blocks[b];
            int branch_cycle = -1, last_orig_cycle = -1;
            for (size_t c = 0; c < sb.insts.size(); ++c) {
                for (const auto &op : sb.insts[c].ops) {
                    if (op.origIndex == synthesizedOp)
                        continue;
                    last_orig_cycle = static_cast<int>(c);
                    if (op.opClass == ir::OpClass::Branch)
                        branch_cycle = static_cast<int>(c);
                }
            }
            ASSERT_GE(branch_cycle, 0);
            EXPECT_EQ(branch_cycle, last_orig_cycle);
        }
    }
}

TEST(Scheduler, WiderMachinesScheduleNoSlower)
{
    workloads::AppSpec spec;
    spec.seed = 9876;
    auto prog = workloads::buildProgram(spec);
    trace::ExecutionEngine::profile(prog, 20000);
    Scheduler sched;
    uint64_t prev = ~0ULL;
    for (const char *name : {"1111", "2111", "3221", "4221", "6332"}) {
        auto sp = sched.schedule(prog, MachineDesc::fromName(name));
        uint64_t cycles = Scheduler::processorCycles(prog, sp);
        EXPECT_LE(cycles, prev) << name;
        prev = cycles;
    }
}

TEST(Scheduler, WiderMachinesSpeculateMore)
{
    workloads::AppSpec spec;
    spec.seed = 555;
    auto prog = workloads::buildProgram(spec);
    Scheduler sched;
    auto count_spec = [&](const char *name) {
        auto sp = sched.schedule(prog, MachineDesc::fromName(name));
        uint64_t n = 0;
        for (const auto &func : sp.functions)
            for (const auto &block : func.blocks)
                n += block.numSpeculated;
        return n;
    };
    EXPECT_EQ(count_spec("1111"), 0u);
    EXPECT_GT(count_spec("6332"), count_spec("2111"));
}

TEST(Scheduler, DeterministicOutput)
{
    workloads::AppSpec spec;
    spec.seed = 8;
    auto prog = workloads::buildProgram(spec);
    Scheduler sched;
    auto a = sched.schedule(prog, MachineDesc::fromName("3221"));
    auto b = sched.schedule(prog, MachineDesc::fromName("3221"));
    EXPECT_EQ(a.totalOps(), b.totalOps());
    for (size_t f = 0; f < a.functions.size(); ++f) {
        for (size_t blk = 0; blk < a.functions[f].blocks.size();
             ++blk) {
            EXPECT_EQ(a.functions[f].blocks[blk].scheduleLength(),
                      b.functions[f].blocks[blk].scheduleLength());
        }
    }
}

TEST(Scheduler, SpillCodeAppearsUnderRegisterPressure)
{
    // 24 independent producers whose consumers form a serial chain:
    // on a wide machine the producers all issue early and stay live
    // until their (late) consumers, exceeding a small register
    // budget.
    ir::BasicBlock block;
    const size_t n = 24;
    for (size_t i = 0; i < n; ++i) {
        ir::Operation op;
        op.opClass = ir::OpClass::IntAlu;
        block.ops.push_back(op);
    }
    for (size_t i = 0; i < n; ++i) {
        ir::Operation op;
        op.opClass = ir::OpClass::IntAlu;
        op.deps.push_back(static_cast<uint16_t>(i));
        if (i > 0)
            op.deps.push_back(static_cast<uint16_t>(n + i - 1));
        block.ops.push_back(op);
    }
    ir::Operation br;
    br.opClass = ir::OpClass::Branch;
    block.ops.push_back(br);

    SchedulerOptions opts;
    opts.usableRegFraction = 0.05; // 128 * 0.05 -> ~6 usable
    Scheduler sched(opts);
    auto mdes = MachineDesc::fromName("6332");
    auto out = sched.scheduleBlock(block, mdes, 3);
    EXPECT_GT(out.numSpills, 0u);
    // Spill code adds one load and one store per spill.
    EXPECT_EQ(out.totalOps(),
              2 * n + 1 + 2u * out.numSpills);

    // The narrow reference machine issues producers gradually and
    // needs far fewer (or no) spills for the same block.
    auto ref = sched.scheduleBlock(
        block, MachineDesc::fromName("1111"), 3);
    EXPECT_LT(ref.numSpills, out.numSpills);
}

TEST(Scheduler, ProcessorCyclesWeightsByProfile)
{
    workloads::AppSpec spec;
    spec.seed = 99;
    auto prog = workloads::buildProgram(spec);
    Scheduler sched;
    auto sp = sched.schedule(prog, MachineDesc::fromName("1111"));
    // No profile: zero cycles.
    EXPECT_EQ(Scheduler::processorCycles(prog, sp), 0u);
    trace::ExecutionEngine::profile(prog, 5000);
    EXPECT_GT(Scheduler::processorCycles(prog, sp), 0u);
}

} // namespace
} // namespace pico::compiler
