/**
 * @file
 * Suite-wide property sweep: for every benchmark, the dilation
 * model's instruction-cache estimate must track dilated-trace
 * simulation within a loose factor across moderate dilations, and
 * the unified estimate must at least move in the right direction.
 * This pins down the quality floor that the table/figure benches
 * report in detail.
 */

#include <gtest/gtest.h>

#include "cache/CacheSim.hpp"
#include "core/DilationModel.hpp"
#include "core/TraceModel.hpp"
#include "trace/TraceGenerator.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico
{
namespace
{

using machine::MachineDesc;

constexpr uint64_t kBlocks = 15000;

class ModelAccuracy : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        prog_ = workloads::buildAndProfile(
            workloads::specByName(GetParam()), kBlocks);
        ref_ = workloads::buildFor(prog_,
                                   MachineDesc::fromName("1111"));
    }

    uint64_t
    simulate(trace::TraceKind kind, const cache::CacheConfig &cfg,
             double d) const
    {
        cache::CacheSim sim(cfg);
        trace::TraceGenerator gen(prog_, ref_.sched, ref_.bin);
        gen.generateDilated(kind, d,
                            [&sim](const trace::Access &a) {
                                sim.access(a.addr, a.isWrite);
                            },
                            kBlocks);
        return sim.misses();
    }

    ir::Program prog_;
    workloads::MachineBuild ref_;
};

TEST_P(ModelAccuracy, IcacheEstimateTracksDilatedSimulation)
{
    cache::CacheConfig cfg = cache::CacheConfig::fromSize(1024, 1, 32);

    trace::TraceGenerator gen(prog_, ref_.sched, ref_.bin);
    core::ItraceModeler modeler(5000);
    gen.generate(trace::TraceKind::Instruction,
                 [&modeler](const trace::Access &a) {
                     modeler.access(a);
                 },
                 kBlocks);
    core::DilationModel model(modeler.params(), modeler.params(),
                              modeler.params());
    core::MissOracle oracle = [this,
                               &cfg](const cache::CacheConfig &c) {
        return static_cast<double>(
            simulate(trace::TraceKind::Instruction, c, 1.0));
    };

    for (double d : {1.5, 2.5}) {
        auto truth = static_cast<double>(
            simulate(trace::TraceKind::Instruction, cfg, d));
        if (truth < 500.0)
            continue; // too few misses for a stable ratio
        double est = model.estimateIcacheMisses(cfg, d, oracle);
        EXPECT_GT(est, 0.4 * truth) << GetParam() << " d=" << d;
        EXPECT_LT(est, 2.5 * truth) << GetParam() << " d=" << d;
    }
}

TEST_P(ModelAccuracy, UcacheEstimateMovesWithDilation)
{
    cache::CacheConfig cfg =
        cache::CacheConfig::fromSize(16384, 2, 64);

    trace::TraceGenerator gen(prog_, ref_.sched, ref_.bin);
    core::UtraceModeler modeler(40000);
    cache::CacheSim refsim(cfg);
    gen.generate(trace::TraceKind::Unified,
                 [&](const trace::Access &a) {
                     modeler.access(a);
                     refsim.access(a.addr, a.isWrite);
                 },
                 kBlocks);
    core::DilationModel model(modeler.instrParams(),
                              modeler.instrParams(),
                              modeler.dataParams());
    auto ref_misses = static_cast<double>(refsim.misses());

    double est = model.estimateUcacheMisses(cfg, 2.5, ref_misses);
    auto truth = static_cast<double>(
        simulate(trace::TraceKind::Unified, cfg, 2.5));
    // Both move upward from the reference; the estimate stays
    // between the reference and a generous bound above the truth.
    EXPECT_GE(est, ref_misses) << GetParam();
    EXPECT_GE(truth, ref_misses * 0.99) << GetParam();
    EXPECT_LT(est, truth * 2.0 + 1000.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, ModelAccuracy,
    ::testing::Values("085.gcc", "099.go", "147.vortex", "epic",
                      "ghostscript", "mipmap", "pgpdecode",
                      "pgpencode", "rasta", "unepic"));

} // namespace
} // namespace pico
