/**
 * @file
 * Unit tests for the trace modelers: granule run statistics, the
 * derived parameters p2 and u(L), and the I/U modeler front ends.
 */

#include <gtest/gtest.h>

#include "core/TraceModel.hpp"
#include "support/Logging.hpp"
#include "support/Random.hpp"

namespace pico::core
{
namespace
{

trace::Access
instrWord(uint64_t word)
{
    return {word * 4, true, false};
}

trace::Access
dataWord(uint64_t word)
{
    return {word * 4, false, false};
}

TEST(GranuleAccumulator, SingleRunStatistics)
{
    GranuleAccumulator acc;
    for (uint64_t w = 100; w < 110; ++w)
        acc.addWord(w);
    acc.closeGranule();
    auto p = acc.params();
    EXPECT_DOUBLE_EQ(p.u1, 10.0);  // 10 unique words
    EXPECT_DOUBLE_EQ(p.p1, 0.0);   // no isolated references
    EXPECT_DOUBLE_EQ(p.lav, 10.0); // one run of length 10
}

TEST(GranuleAccumulator, AllIsolated)
{
    GranuleAccumulator acc;
    for (uint64_t w = 0; w < 8; ++w)
        acc.addWord(w * 10);
    acc.closeGranule();
    auto p = acc.params();
    EXPECT_DOUBLE_EQ(p.u1, 8.0);
    EXPECT_DOUBLE_EQ(p.p1, 1.0);
    EXPECT_DOUBLE_EQ(p.lav, 1.0);
}

TEST(GranuleAccumulator, MixedRuns)
{
    GranuleAccumulator acc;
    // Run of 3 (5,6,7), isolated (20), run of 2 (30,31).
    for (uint64_t w : {5, 6, 7, 20, 30, 31})
        acc.addWord(w);
    acc.closeGranule();
    auto p = acc.params();
    EXPECT_DOUBLE_EQ(p.u1, 6.0);
    EXPECT_NEAR(p.p1, 1.0 / 6.0, 1e-12); // 1 isolated of 6 unique
    EXPECT_DOUBLE_EQ(p.lav, 2.0);        // 6 unique / 3 runs
}

TEST(GranuleAccumulator, DuplicatesCollapse)
{
    GranuleAccumulator acc;
    for (int rep = 0; rep < 5; ++rep)
        for (uint64_t w : {1, 2, 3})
            acc.addWord(w);
    acc.closeGranule();
    auto p = acc.params();
    EXPECT_DOUBLE_EQ(p.u1, 3.0);
    EXPECT_DOUBLE_EQ(p.lav, 3.0);
}

TEST(GranuleAccumulator, AveragesAcrossGranules)
{
    GranuleAccumulator acc;
    for (uint64_t w = 0; w < 4; ++w)
        acc.addWord(w); // one run of 4
    acc.closeGranule();
    for (uint64_t w = 0; w < 4; ++w)
        acc.addWord(w * 100); // four isolated
    acc.closeGranule();
    auto p = acc.params();
    EXPECT_EQ(acc.granules(), 2u);
    EXPECT_DOUBLE_EQ(p.u1, 4.0);
    EXPECT_DOUBLE_EQ(p.p1, 0.5);        // (0 + 1) / 2
    EXPECT_DOUBLE_EQ(p.lav, 2.5);       // (4 + 1) / 2
}

TEST(GranuleAccumulator, EmptyGranuleIgnored)
{
    GranuleAccumulator acc;
    acc.closeGranule();
    EXPECT_EQ(acc.granules(), 0u);
    EXPECT_THROW(acc.params(), PanicError);
}

TEST(ComponentParams, P2Definition)
{
    ComponentParams p;
    p.u1 = 100.0;
    p.p1 = 0.2;
    p.lav = 5.0;
    // Equation 4.4: (5 - 1.2) / 4 = 0.95.
    EXPECT_NEAR(p.p2(), 0.95, 1e-12);
}

TEST(ComponentParams, P2DegenerateAtUnitRunLength)
{
    ComponentParams p;
    p.u1 = 10.0;
    p.p1 = 1.0;
    p.lav = 1.0;
    EXPECT_DOUBLE_EQ(p.p2(), 0.0);
}

TEST(ComponentParams, ULinesEndpoints)
{
    ComponentParams p;
    p.u1 = 120.0;
    p.p1 = 0.1;
    p.lav = 6.0;
    // L = 1 word: every unique word is its own line.
    EXPECT_NEAR(p.uLines(1.0), 120.0, 1e-9);
    // L -> infinity: one line per run = u1 / lav.
    EXPECT_NEAR(p.uLines(1e9), 20.0, 1e-3);
}

TEST(ComponentParams, ULinesMatchesPForm)
{
    // The closed form equals the equation 4.5 p-form
    // u(1)(1 + p1/L - p2)/(1 + p1 - p2) under equation 4.4.
    ComponentParams p;
    p.u1 = 250.0;
    p.p1 = 0.3;
    p.lav = 4.0;
    for (double L : {1.0, 2.0, 3.7, 8.0, 16.0, 100.0}) {
        double closed = p.uLines(L);
        double pform = p.u1 * (1.0 + p.p1 / L - p.p2()) /
                       (1.0 + p.p1 - p.p2());
        EXPECT_NEAR(closed, pform, 1e-9 * closed) << "L=" << L;
    }
}

TEST(ComponentParams, ULinesMonotoneDecreasing)
{
    ComponentParams p;
    p.u1 = 300.0;
    p.p1 = 0.25;
    p.lav = 5.0;
    double prev = p.uLines(1.0);
    for (double L = 2.0; L <= 64.0; L *= 2.0) {
        double cur = p.uLines(L);
        EXPECT_LT(cur, prev);
        prev = cur;
    }
}

TEST(ItraceModeler, FiltersDataReferences)
{
    ItraceModeler modeler(16);
    for (uint64_t w = 0; w < 16; ++w) {
        modeler.access(instrWord(w));
        modeler.access(dataWord(w + 1000)); // must be ignored
    }
    ASSERT_EQ(modeler.granules(), 1u);
    EXPECT_DOUBLE_EQ(modeler.params().u1, 16.0);
    EXPECT_DOUBLE_EQ(modeler.params().lav, 16.0);
}

TEST(ItraceModeler, ThrowsWithoutFullGranule)
{
    ItraceModeler modeler(1000);
    modeler.access(instrWord(1));
    EXPECT_THROW(modeler.params(), FatalError);
}

TEST(UtraceModeler, SeparatesComponents)
{
    UtraceModeler modeler(20);
    // 10 sequential instruction words + 10 isolated data words per
    // granule.
    for (uint64_t w = 0; w < 10; ++w)
        modeler.access(instrWord(w));
    for (uint64_t w = 0; w < 10; ++w)
        modeler.access(dataWord(10000 + w * 50));
    ASSERT_EQ(modeler.granules(), 1u);
    EXPECT_DOUBLE_EQ(modeler.instrParams().lav, 10.0);
    EXPECT_DOUBLE_EQ(modeler.instrParams().p1, 0.0);
    EXPECT_DOUBLE_EQ(modeler.dataParams().lav, 1.0);
    EXPECT_DOUBLE_EQ(modeler.dataParams().p1, 1.0);
}

TEST(UtraceModeler, GranuleCountsAllReferences)
{
    // Granule size counts instruction + data together (section 4.3).
    UtraceModeler modeler(10);
    for (uint64_t w = 0; w < 5; ++w) {
        modeler.access(instrWord(w));
        modeler.access(dataWord(w + 500));
    }
    EXPECT_EQ(modeler.granules(), 1u);
}

TEST(TraceModel, RandomTraceParamsSane)
{
    // Random word addresses: p1 near 1, lav near 1.
    ItraceModeler modeler(5000);
    Rng rng(3);
    for (int i = 0; i < 50000; ++i)
        modeler.access(instrWord(rng.below(1 << 22)));
    auto p = modeler.params();
    EXPECT_GT(p.p1, 0.95);
    EXPECT_LT(p.lav, 1.1);
    EXPECT_GT(p.u1, 4000.0);
}

} // namespace
} // namespace pico::core
