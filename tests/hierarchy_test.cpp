/**
 * @file
 * Tests for the two-level hierarchy simulators: inclusion
 * feasibility, the decoupled L2 property the paper relies on, the
 * stall-cycle model, and coupled-vs-decoupled agreement.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/CacheSim.hpp"
#include "cache/Hierarchy.hpp"
#include "support/Logging.hpp"
#include "support/Random.hpp"

namespace pico::cache
{
namespace
{

HierarchyConfig
paperSmallConfig()
{
    HierarchyConfig cfg;
    cfg.icache = CacheConfig::fromSize(1024, 1, 32);
    cfg.dcache = CacheConfig::fromSize(1024, 1, 32);
    cfg.ucache = CacheConfig::fromSize(16384, 2, 64);
    return cfg;
}

std::vector<trace::Access>
randomUnifiedTrace(int length, uint64_t seed)
{
    Rng rng(seed);
    std::vector<trace::Access> out;
    uint64_t pc = 0x01000000;
    for (int i = 0; i < length; ++i) {
        trace::Access a;
        if (rng.coin(0.7)) {
            pc = rng.coin(0.1) ? 0x01000000 + (rng.below(1 << 14) & ~3ULL)
                               : pc + 4;
            a.addr = pc;
            a.isInstr = true;
        } else {
            a.addr = 0x40000000 + (rng.below(1 << 16) & ~3ULL);
            a.isWrite = rng.coin(0.3);
        }
        out.push_back(a);
    }
    return out;
}

TEST(HierarchyConfig, InclusionFeasibility)
{
    auto cfg = paperSmallConfig();
    EXPECT_TRUE(cfg.inclusionFeasible());

    cfg.ucache = CacheConfig::fromSize(512, 1, 64);
    EXPECT_FALSE(cfg.inclusionFeasible()); // smaller than L1

    cfg = paperSmallConfig();
    cfg.ucache = CacheConfig::fromSize(16384, 2, 16);
    EXPECT_FALSE(cfg.inclusionFeasible()); // shorter lines than L1
}

TEST(HierarchySim, RejectsInfeasibleConfig)
{
    auto cfg = paperSmallConfig();
    cfg.ucache = CacheConfig::fromSize(512, 1, 64);
    EXPECT_THROW(HierarchySim sim(cfg), FatalError);
}

TEST(HierarchySim, RoutesAccessesByKind)
{
    HierarchySim sim(paperSmallConfig());
    sim.access({0x01000000, true, false});
    sim.access({0x40000000, false, false});
    sim.access({0x40000004, false, true});
    auto stats = sim.stats();
    EXPECT_EQ(stats.iAccesses, 1u);
    EXPECT_EQ(stats.dAccesses, 2u);
    // Decoupled L2 sees everything.
    EXPECT_EQ(stats.uAccesses, 3u);
}

TEST(HierarchySim, L2MissesIndependentOfL1Config)
{
    // The decoupling property: changing the L1s does not change L2
    // misses at all (the paper's justification for evaluating the
    // unified cache with the full trace).
    auto trace = randomUnifiedTrace(40000, 5);

    auto small = paperSmallConfig();
    auto big = paperSmallConfig();
    big.icache = CacheConfig::fromSize(16384, 2, 32);
    big.dcache = CacheConfig::fromSize(16384, 2, 32);

    HierarchySim a(small), b(big);
    for (const auto &acc : trace) {
        a.access(acc);
        b.access(acc);
    }
    EXPECT_EQ(a.stats().uMisses, b.stats().uMisses);
    EXPECT_NE(a.stats().iMisses, b.stats().iMisses);
}

TEST(HierarchyStats, StallCycleModel)
{
    HierarchyConfig cfg = paperSmallConfig();
    cfg.l2HitLatency = 10;
    cfg.memoryLatency = 80;
    HierarchyStats s;
    s.iMisses = 100;
    s.dMisses = 50;
    s.uMisses = 20;
    EXPECT_EQ(s.stallCycles(cfg), 150u * 10u + 20u * 80u);
}

TEST(CoupledHierarchySim, L2SeesOnlyL1Misses)
{
    CoupledHierarchySim sim(paperSmallConfig());
    // Two accesses to the same line: second hits L1, never reaches
    // L2.
    sim.access({0x01000000, true, false});
    sim.access({0x01000004, true, false});
    auto s = sim.stats();
    EXPECT_EQ(s.iAccesses, 2u);
    EXPECT_EQ(s.uAccesses, 1u);
}

TEST(CoupledHierarchySim, InclusionMaintained)
{
    // After any trace, every L1-resident line must hit in an L2
    // probe. Verify via the decoupling of miss counts: re-accessing
    // an address that just hit L1 must not increase L2 misses.
    CoupledHierarchySim sim(paperSmallConfig());
    auto trace = randomUnifiedTrace(30000, 17);
    for (const auto &acc : trace)
        sim.access(acc);
    auto before = sim.stats();
    // Replay the last few accesses: L1 hits, no new L2 traffic from
    // instruction fetches that stayed resident.
    sim.access(trace.back());
    auto after = sim.stats();
    EXPECT_LE(after.uMisses, before.uMisses + 1);
}

TEST(CoupledHierarchySim, CloseToDecoupledL2Misses)
{
    // The paper's approximation: with inclusion, L2 misses from the
    // filtered stream stay close to full-trace simulation.
    auto trace = randomUnifiedTrace(60000, 23);
    HierarchySim full(paperSmallConfig());
    CoupledHierarchySim coupled(paperSmallConfig());
    for (const auto &acc : trace) {
        full.access(acc);
        coupled.access(acc);
    }
    double a = static_cast<double>(full.stats().uMisses);
    double b = static_cast<double>(coupled.stats().uMisses);
    ASSERT_GT(a, 0.0);
    EXPECT_NEAR(b / a, 1.0, 0.15);
}

TEST(HierarchyConfig, AreaIsSumOfParts)
{
    auto cfg = paperSmallConfig();
    EXPECT_DOUBLE_EQ(cfg.areaCost(),
                     cfg.icache.areaCost() + cfg.dcache.areaCost() +
                         cfg.ucache.areaCost());
}

} // namespace
} // namespace pico::cache
