/**
 * @file
 * End-to-end integration tests: the full paper pipeline on a suite
 * application — compile for reference and target machines, generate
 * traces, simulate actual / dilated / estimated misses, and check
 * the relationships the paper's evaluation section reports.
 */

#include <gtest/gtest.h>

#include "cache/CacheSim.hpp"
#include "core/DilationModel.hpp"
#include "core/TraceModel.hpp"
#include "dse/Evaluators.hpp"
#include "dse/Spacewalker.hpp"
#include "linker/LinkedBinary.hpp"
#include "trace/TraceGenerator.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico
{
namespace
{

using machine::MachineDesc;

constexpr uint64_t kBlocks = 20000;

struct AppUnderTest
{
    ir::Program prog;
    workloads::MachineBuild ref;

    AppUnderTest()
    {
        // The paper evaluates on benchmarks with high I-cache miss
        // rates; the gcc analogue is the representative app.
        auto spec = workloads::specByName("085.gcc");
        prog = workloads::buildAndProfile(spec, 20000);
        ref = workloads::buildFor(prog, MachineDesc::fromName("1111"));
    }

    uint64_t
    simulate(const workloads::MachineBuild &build,
             trace::TraceKind kind, const cache::CacheConfig &cfg,
             double dilation = 1.0) const
    {
        cache::CacheSim sim(cfg);
        trace::TraceGenerator gen(prog, build.sched, build.bin);
        gen.generateDilated(kind, dilation,
                            [&sim](const trace::Access &a) {
                                sim.access(a.addr, a.isWrite);
                            },
                            kBlocks);
        return sim.misses();
    }
};

TEST(Integration, ActualIcacheMissesGrowWithMachineWidth)
{
    AppUnderTest app;
    cache::CacheConfig icfg = cache::CacheConfig::fromSize(1024, 1, 32);
    uint64_t ref_misses =
        app.simulate(app.ref, trace::TraceKind::Instruction, icfg);
    uint64_t prev = ref_misses;
    for (const char *name : {"2111", "3221", "6332"}) {
        auto build = workloads::buildFor(app.prog,
                                         MachineDesc::fromName(name));
        uint64_t misses = app.simulate(
            build, trace::TraceKind::Instruction, icfg);
        EXPECT_GT(misses, ref_misses) << name;
        EXPECT_GE(misses, prev) << name;
        prev = misses;
    }
}

TEST(Integration, DilatedTraceApproximatesActualTrace)
{
    // Figure 7's first two bars: simulating the reference trace
    // dilated by the text dilation approximates simulating the
    // actual target-machine trace.
    AppUnderTest app;
    cache::CacheConfig icfg =
        cache::CacheConfig::fromSize(16384, 2, 32);
    for (const char *name : {"2111", "3221"}) {
        auto build = workloads::buildFor(app.prog,
                                         MachineDesc::fromName(name));
        double d = linker::textDilation(build.bin, app.ref.bin);
        auto actual = static_cast<double>(app.simulate(
            build, trace::TraceKind::Instruction, icfg));
        auto dilated = static_cast<double>(app.simulate(
            app.ref, trace::TraceKind::Instruction, icfg, d));
        EXPECT_NEAR(dilated / actual, 1.0, 0.45) << name;
    }
}

TEST(Integration, EstimatedTracksDilatedIcacheMisses)
{
    // Figure 6: the model estimate tracks dilated-trace simulation.
    AppUnderTest app;
    cache::CacheConfig icfg = cache::CacheConfig::fromSize(1024, 1, 32);

    dse::CacheSpace space;
    space.sizesBytes = {1024};
    space.assocs = {1};
    space.lineSizes = {32};
    dse::IcacheEvaluator eval(space);
    trace::TraceGenerator gen(app.prog, app.ref.sched, app.ref.bin);
    eval.evaluate([&gen](const dse::TraceSink &sink) {
        gen.generate(trace::TraceKind::Instruction, sink, kBlocks);
    });

    for (double d : {1.4, 2.0, 3.0}) {
        auto dilated = static_cast<double>(app.simulate(
            app.ref, trace::TraceKind::Instruction, icfg, d));
        double est = eval.misses(icfg, d);
        EXPECT_NEAR(est / dilated, 1.0, 0.3) << "d=" << d;
    }
}

TEST(Integration, DataCacheMissesNearlyMachineIndependent)
{
    // Table 2: relative data-cache miss rates stay near 1.0.
    AppUnderTest app;
    cache::CacheConfig dcfg =
        cache::CacheConfig::fromSize(16384, 2, 32);
    auto ref = static_cast<double>(
        app.simulate(app.ref, trace::TraceKind::Data, dcfg));
    ASSERT_GT(ref, 0.0);
    for (const char *name : {"2111", "6332"}) {
        auto build = workloads::buildFor(app.prog,
                                         MachineDesc::fromName(name));
        auto misses = static_cast<double>(
            app.simulate(build, trace::TraceKind::Data, dcfg));
        EXPECT_NEAR(misses / ref, 1.0, 0.25) << name;
    }
}

TEST(Integration, UnifiedEstimateMovesTowardDilatedMisses)
{
    AppUnderTest app;
    cache::CacheConfig ucfg =
        cache::CacheConfig::fromSize(16384, 2, 64);

    trace::TraceGenerator gen(app.prog, app.ref.sched, app.ref.bin);
    core::UtraceModeler modeler(50000);
    cache::CacheSim refsim(ucfg);
    gen.generate(trace::TraceKind::Unified,
                 [&](const trace::Access &a) {
                     modeler.access(a);
                     refsim.access(a.addr, a.isWrite);
                 },
                 kBlocks);

    core::DilationModel model(modeler.instrParams(),
                              modeler.instrParams(),
                              modeler.dataParams());
    double ref_misses = static_cast<double>(refsim.misses());

    double d = 2.0;
    auto dilated = static_cast<double>(app.simulate(
        app.ref, trace::TraceKind::Unified, ucfg, d));
    double est = model.estimateUcacheMisses(ucfg, d, ref_misses);
    // The estimate must move in the right direction (more misses
    // than the undilated reference) and stay within the paper's
    // loose unified-cache error band.
    EXPECT_GT(est, ref_misses);
    EXPECT_GT(dilated, ref_misses);
    EXPECT_NEAR(est / dilated, 1.0, 0.6);
}

TEST(Integration, SpacewalkerProducesParetoSets)
{
    auto spec = workloads::specByName("unepic");
    auto prog = workloads::buildAndProfile(spec, 15000);

    dse::MemorySpaces spaces;
    dse::CacheSpace l1;
    l1.sizesBytes = {1024, 4096, 16384};
    l1.assocs = {1, 2};
    l1.lineSizes = {32};
    spaces.icache = l1;
    spaces.dcache = l1;
    dse::CacheSpace l2;
    l2.sizesBytes = {16384, 65536};
    l2.assocs = {2, 4};
    l2.lineSizes = {64};
    spaces.ucache = l2;

    dse::Spacewalker::Options opts;
    opts.traceBlocks = 15000;
    dse::Spacewalker walker(spaces, {"1111", "2111", "3221", "6332"},
                            opts);
    auto result = walker.explore(prog);

    EXPECT_FALSE(result.processors.empty());
    EXPECT_FALSE(result.systems.empty());
    EXPECT_EQ(result.dilations.size(), 4u);
    EXPECT_DOUBLE_EQ(result.dilations.at("1111"), 1.0);
    EXPECT_GT(result.dilations.at("6332"), 1.5);
    // Processor cycles drop with width; dilation grows.
    EXPECT_LT(result.processorCycles.at("6332"),
              result.processorCycles.at("1111"));
    // Every system id names a processor and three caches.
    for (const auto &p : result.systems.points()) {
        EXPECT_NE(p.id.find("P"), std::string::npos);
        EXPECT_NE(p.id.find("I$"), std::string::npos);
        EXPECT_NE(p.id.find("D$"), std::string::npos);
        EXPECT_NE(p.id.find("U$"), std::string::npos);
    }
}

TEST(Integration, EvaluationCountMatchesHierarchicalClaim)
{
    // The hierarchical strategy needs one trace+simulation pass per
    // line size per cache type, regardless of how many processors
    // are explored: confirm the SimBank run count.
    dse::CacheSpace space = dse::CacheSpace::defaultL1Space();
    dse::SimBank bank(space);
    // Line sizes 4..64 -> 5 passes; the cross-product alternative
    // would be |processors| x |caches| full simulations.
    EXPECT_EQ(bank.simRuns(), 5u);
    EXPECT_GE(space.enumerate().size(), 20u);
}

} // namespace
} // namespace pico
