/**
 * @file
 * Unit tests for the support library: logging, RNG, bit utilities,
 * statistics accumulators and table formatting.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"
#include "support/Random.hpp"
#include "support/Stats.hpp"
#include "support/Table.hpp"

namespace pico
{
namespace
{

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", "x"), FatalError);
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "no"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "no"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool differs = false;
    for (int i = 0; i < 10; ++i)
        differs |= a.next() != b.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowZeroPanics)
{
    Rng rng(1);
    EXPECT_THROW(rng.below(0), PanicError);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GeometricMeanApproximatelyCorrect)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(6.0));
    EXPECT_NEAR(sum / n, 6.0, 0.3);
}

TEST(Rng, ZipfStaysInRangeAndIsSkewed)
{
    Rng rng(17);
    uint64_t low = 0, total = 5000;
    for (uint64_t i = 0; i < total; ++i) {
        uint64_t v = rng.zipf(1000, 1.2);
        EXPECT_LT(v, 1000u);
        if (v < 10)
            ++low;
    }
    // Zipf mass concentrates at small indices.
    EXPECT_GT(low, total / 4);
}

TEST(BitUtils, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(1023));
}

TEST(BitUtils, Log2FloorAndCeil)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(1024), 10u);
    EXPECT_EQ(log2Ceil(1025), 11u);
    EXPECT_THROW(log2Floor(0), PanicError);
}

TEST(BitUtils, AlignUpDown)
{
    EXPECT_EQ(alignUp(0, 16), 0u);
    EXPECT_EQ(alignUp(1, 16), 16u);
    EXPECT_EQ(alignUp(16, 16), 16u);
    EXPECT_EQ(alignUp(17, 16), 32u);
    EXPECT_EQ(alignDown(17, 16), 16u);
    EXPECT_THROW(alignUp(5, 3), PanicError);
}

TEST(BitUtils, BitsFor)
{
    EXPECT_EQ(bitsFor(0), 1u);
    EXPECT_EQ(bitsFor(1), 1u);
    EXPECT_EQ(bitsFor(2), 1u);
    EXPECT_EQ(bitsFor(32), 5u);
    EXPECT_EQ(bitsFor(33), 6u);
    EXPECT_EQ(bitsFor(128), 7u);
}

TEST(RunningStat, MeanVarianceExtrema)
{
    RunningStat stat;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.add(v);
    EXPECT_EQ(stat.count(), 8u);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_NEAR(stat.stddev(), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(WeightedDistribution, UnweightedCdf)
{
    WeightedDistribution dist;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        dist.add(v);
    EXPECT_DOUBLE_EQ(dist.fractionAtOrBelow(0.5), 0.0);
    EXPECT_DOUBLE_EQ(dist.fractionAtOrBelow(2.0), 0.5);
    EXPECT_DOUBLE_EQ(dist.fractionAtOrBelow(10.0), 1.0);
}

TEST(WeightedDistribution, WeightsShiftCdf)
{
    WeightedDistribution dist;
    dist.add(1.0, 9.0);
    dist.add(2.0, 1.0);
    EXPECT_DOUBLE_EQ(dist.fractionAtOrBelow(1.0), 0.9);
    EXPECT_DOUBLE_EQ(dist.mean(), 1.1);
}

TEST(WeightedDistribution, Quantile)
{
    WeightedDistribution dist;
    for (int i = 1; i <= 100; ++i)
        dist.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(dist.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(dist.quantile(1.0), 100.0);
    EXPECT_THROW(dist.quantile(1.5), FatalError);
}

TEST(Histogram, BinningAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_DOUBLE_EQ(h.binLeft(5), 5.0);
}

TEST(TextTable, AlignedOutputContainsCells)
{
    TextTable table("demo");
    table.setHeader({"name", "value"});
    table.addRow({"alpha", TextTable::num(1.234, 2)});
    table.addRow({"b", "2"});
    std::ostringstream oss;
    table.print(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.23"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable table;
    table.setHeader({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

} // namespace
} // namespace pico
