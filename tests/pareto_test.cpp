/**
 * @file
 * Unit tests for Pareto-set accumulation and the cache design-space
 * enumeration.
 */

#include <gtest/gtest.h>

#include "dse/CacheSpace.hpp"
#include "dse/Pareto.hpp"

namespace pico::dse
{
namespace
{

TEST(DesignPoint, DominanceDefinition)
{
    DesignPoint a{"a", 1.0, 1.0};
    DesignPoint b{"b", 2.0, 2.0};
    DesignPoint c{"c", 1.0, 2.0};
    DesignPoint d{"d", 1.0, 1.0};
    EXPECT_TRUE(a.dominates(b));
    EXPECT_TRUE(a.dominates(c));
    EXPECT_FALSE(b.dominates(a));
    // Equal points do not dominate each other.
    EXPECT_FALSE(a.dominates(d));
    EXPECT_FALSE(d.dominates(a));
}

TEST(ParetoSet, KeepsNonDominatedPoints)
{
    ParetoSet set;
    EXPECT_TRUE(set.insertPoint({"cheap-slow", 1.0, 10.0}));
    EXPECT_TRUE(set.insertPoint({"mid", 2.0, 5.0}));
    EXPECT_TRUE(set.insertPoint({"fast-dear", 4.0, 1.0}));
    EXPECT_EQ(set.size(), 3u);
}

TEST(ParetoSet, RejectsDominated)
{
    ParetoSet set;
    set.insertPoint({"good", 1.0, 1.0});
    EXPECT_FALSE(set.insertPoint({"worse", 2.0, 2.0}));
    EXPECT_EQ(set.size(), 1u);
    EXPECT_EQ(set.offered(), 2u);
}

TEST(ParetoSet, EvictsNewlyDominated)
{
    ParetoSet set;
    set.insertPoint({"a", 2.0, 5.0});
    set.insertPoint({"b", 5.0, 2.0});
    // Dominates both.
    EXPECT_TRUE(set.insertPoint({"c", 1.0, 1.0}));
    EXPECT_EQ(set.size(), 1u);
    EXPECT_EQ(set.points()[0].id, "c");
}

TEST(ParetoSet, NoMemberDominatedInvariant)
{
    ParetoSet set;
    // Insert a grid of designs in scrambled order.
    for (int i = 0; i < 50; ++i) {
        int k = (i * 17) % 50;
        double cost = 1.0 + (k % 10);
        double time = 1.0 + (k / 10) * (10 - (k % 10));
        set.insertPoint({"p" + std::to_string(k), cost, time});
    }
    for (const auto &a : set.points()) {
        for (const auto &b : set.points()) {
            if (&a != &b) {
                EXPECT_FALSE(a.dominates(b))
                    << a.id << " dominates " << b.id;
            }
        }
    }
}

TEST(ParetoSet, SortedByCost)
{
    ParetoSet set;
    set.insertPoint({"c", 3.0, 1.0});
    set.insertPoint({"a", 1.0, 9.0});
    set.insertPoint({"b", 2.0, 4.0});
    auto sorted = set.sorted();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].id, "a");
    EXPECT_EQ(sorted[1].id, "b");
    EXPECT_EQ(sorted[2].id, "c");
    // Along a Pareto front, time decreases as cost increases.
    EXPECT_GT(sorted[0].time, sorted[1].time);
    EXPECT_GT(sorted[1].time, sorted[2].time);
}

TEST(CacheSpace, EnumerateSkipsInfeasible)
{
    CacheSpace space;
    space.sizesBytes = {1024};
    space.assocs = {1, 3};
    space.lineSizes = {32};
    auto configs = space.enumerate();
    // 1024/32 = 32 lines; 3-way needs 32 % 3 == 0: skipped.
    ASSERT_EQ(configs.size(), 1u);
    EXPECT_EQ(configs[0].sets, 32u);
}

TEST(CacheSpace, DefaultSpacesHavePaperScale)
{
    // Section 1: "20 or more possible cache designs for each of the
    // three cache types".
    EXPECT_GE(CacheSpace::defaultL1Space().enumerate().size(), 20u);
    EXPECT_GE(CacheSpace::defaultL2Space().enumerate().size(), 20u);
}

TEST(CacheSpace, DistinctLineSizesSortedUnique)
{
    CacheSpace space;
    space.sizesBytes = {4096};
    space.assocs = {1};
    space.lineSizes = {64, 16, 64, 32};
    auto lines = space.distinctLineSizes();
    EXPECT_EQ(lines, (std::vector<uint32_t>{16, 32, 64}));
}

TEST(CacheSpace, SetRanges)
{
    auto space = CacheSpace::defaultL1Space();
    EXPECT_GT(space.maxSets(), space.minSets());
    EXPECT_EQ(space.maxAssoc(), 4u);
}

} // namespace
} // namespace pico::dse
