/**
 * @file
 * Tests for the spacewalker's EvaluationCache integration: repeated
 * explorations reuse cached per-machine metrics, and persisted
 * databases survive across walker instances.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "dse/Spacewalker.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::dse
{
namespace
{

MemorySpaces
tinySpaces()
{
    MemorySpaces spaces;
    CacheSpace l1;
    l1.sizesBytes = {4096};
    l1.assocs = {1};
    l1.lineSizes = {32};
    spaces.icache = l1;
    spaces.dcache = l1;
    CacheSpace l2;
    l2.sizesBytes = {65536};
    l2.assocs = {4};
    l2.lineSizes = {64};
    spaces.ucache = l2;
    return spaces;
}

Spacewalker::Options
tinyOptions()
{
    Spacewalker::Options opts;
    opts.traceBlocks = 8000;
    opts.uGranule = 40000;
    return opts;
}

TEST(SpacewalkerCache, SecondExploreHitsCache)
{
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 8000);
    Spacewalker walker(tinySpaces(), {"1111", "3221"},
                       tinyOptions());
    auto first = walker.explore(prog);
    EXPECT_EQ(walker.evaluationCache().hits(), 0u);
    auto second = walker.explore(prog);
    // Per-machine metrics were served from the cache.
    EXPECT_EQ(walker.evaluationCache().hits(), 2u);
    EXPECT_EQ(first.dilations, second.dilations);
    EXPECT_EQ(first.processorCycles, second.processorCycles);
}

TEST(SpacewalkerCache, PersistsAcrossWalkers)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_walker_cache.db";
    std::filesystem::remove(path);
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 8000);

    auto opts = tinyOptions();
    opts.evaluationCachePath = path.string();
    std::map<std::string, double> first_dilations;
    {
        Spacewalker walker(tinySpaces(), {"1111", "3221"}, opts);
        first_dilations = walker.explore(prog).dilations;
    }
    {
        Spacewalker walker(tinySpaces(), {"1111", "3221"}, opts);
        auto result = walker.explore(prog);
        EXPECT_EQ(walker.evaluationCache().hits(), 2u);
        EXPECT_EQ(result.dilations, first_dilations);
    }
    std::filesystem::remove(path);
}

} // namespace
} // namespace pico::dse
