/**
 * @file
 * Tests for the spacewalker's EvaluationCache integration: repeated
 * explorations reuse cached per-machine metrics, and persisted
 * databases survive across walker instances.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "dse/Spacewalker.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::dse
{
namespace
{

MemorySpaces
tinySpaces()
{
    MemorySpaces spaces;
    CacheSpace l1;
    l1.sizesBytes = {4096};
    l1.assocs = {1};
    l1.lineSizes = {32};
    spaces.icache = l1;
    spaces.dcache = l1;
    CacheSpace l2;
    l2.sizesBytes = {65536};
    l2.assocs = {4};
    l2.lineSizes = {64};
    spaces.ucache = l2;
    return spaces;
}

Spacewalker::Options
tinyOptions()
{
    Spacewalker::Options opts;
    opts.traceBlocks = 8000;
    opts.uGranule = 40000;
    return opts;
}

TEST(SpacewalkerCache, SecondExploreHitsCache)
{
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 8000);
    Spacewalker walker(tinySpaces(), {"1111", "3221"},
                       tinyOptions());
    auto first = walker.explore(prog);
    EXPECT_EQ(walker.evaluationCache().hits(), 0u);
    auto second = walker.explore(prog);
    // Per-machine metrics were served from the cache.
    EXPECT_EQ(walker.evaluationCache().hits(), 2u);
    EXPECT_EQ(first.dilations, second.dilations);
    EXPECT_EQ(first.processorCycles, second.processorCycles);
}

TEST(SpacewalkerCache, PoisonedDesignDoesNotKillTheWalk)
{
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 8000);
    // "0111" names a machine with a zero FU count — an infeasible
    // design that fatal()s during machine description.
    Spacewalker walker(tinySpaces(), {"1111", "0111", "3221"},
                       tinyOptions());
    auto result = walker.explore(prog);

    EXPECT_FALSE(result.complete());
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures.entries()[0].design, "0111");
    EXPECT_EQ(result.failures.entries()[0].stage,
              "machine-description");
    EXPECT_EQ(result.evaluatedDesigns, 2u);

    // The surviving designs still produced full Pareto sets.
    EXPECT_EQ(result.dilations.size(), 2u);
    EXPECT_FALSE(result.processors.empty());
    EXPECT_FALSE(result.systems.empty());
    for (const auto &p : result.processors.points())
        EXPECT_EQ(p.id.find("P0111"), std::string::npos);
}

TEST(SpacewalkerCache, HaltOnFailurePropagates)
{
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 8000);
    auto opts = tinyOptions();
    opts.haltOnFailure = true;
    Spacewalker walker(tinySpaces(), {"1111", "0111"}, opts);
    EXPECT_THROW(walker.explore(prog), FatalError);
}

TEST(SpacewalkerCache, AllDesignsFailingYieldsEmptyResult)
{
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 8000);
    Spacewalker walker(tinySpaces(), {"0111", "0221"},
                       tinyOptions());
    auto result = walker.explore(prog);
    EXPECT_EQ(result.failures.size(), 2u);
    EXPECT_EQ(result.evaluatedDesigns, 0u);
    EXPECT_TRUE(result.processors.empty());
    EXPECT_TRUE(result.systems.empty());
    // No class was ever built, so the memory walker is unavailable.
    EXPECT_THROW(walker.memoryWalker(), FatalError);
}

TEST(SpacewalkerCache, PersistsAcrossWalkers)
{
    auto path = std::filesystem::temp_directory_path() /
                "pico_walker_cache.db";
    std::filesystem::remove(path);
    auto prog = workloads::buildAndProfile(
        workloads::specByName("unepic"), 8000);

    auto opts = tinyOptions();
    opts.evaluationCachePath = path.string();
    std::map<std::string, double> first_dilations;
    {
        Spacewalker walker(tinySpaces(), {"1111", "3221"}, opts);
        first_dilations = walker.explore(prog).dilations;
    }
    {
        Spacewalker walker(tinySpaces(), {"1111", "3221"}, opts);
        auto result = walker.explore(prog);
        EXPECT_EQ(walker.evaluationCache().hits(), 2u);
        EXPECT_EQ(result.dilations, first_dilations);
    }
    std::filesystem::remove(path);
}

} // namespace
} // namespace pico::dse
