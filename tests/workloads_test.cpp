/**
 * @file
 * Suite-characterization tests: regression-protect the workload
 * calibration that the experiments depend on. These assert the
 * *regimes* (miss-rate ranges, dilation ranges, working-set
 * relationships), not exact counts.
 */

#include <gtest/gtest.h>

#include "cache/CacheSim.hpp"
#include "linker/LinkedBinary.hpp"
#include "trace/TraceGenerator.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::workloads
{
namespace
{

using machine::MachineDesc;

constexpr uint64_t kBlocks = 20000;

struct AppMeasurement
{
    double i1kMissRate;
    double i16kMissRate;
    double d16kMissRate;
    uint64_t textSize;
    double dilation6332;
};

AppMeasurement
measure(const AppSpec &spec)
{
    auto prog = buildAndProfile(spec, kBlocks);
    auto ref = buildFor(prog, MachineDesc::fromName("1111"));
    auto wide = buildFor(prog, MachineDesc::fromName("6332"));

    trace::TraceGenerator gen(prog, ref.sched, ref.bin);
    cache::CacheSim i1(cache::CacheConfig::fromSize(1024, 1, 32));
    cache::CacheSim i16(cache::CacheConfig::fromSize(16384, 2, 32));
    gen.generate(trace::TraceKind::Instruction,
                 [&](const trace::Access &a) {
                     i1.access(a.addr);
                     i16.access(a.addr);
                 },
                 kBlocks);
    cache::CacheSim d16(cache::CacheConfig::fromSize(16384, 2, 32));
    gen.generate(trace::TraceKind::Data,
                 [&](const trace::Access &a) {
                     d16.access(a.addr, a.isWrite);
                 },
                 kBlocks);

    return {i1.missRate(), i16.missRate(), d16.missRate(),
            ref.bin.textSize(),
            linker::textDilation(wide.bin, ref.bin)};
}

class SuiteCharacterization
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(SuiteCharacterization, PaperRegimes)
{
    auto m = measure(specByName(GetParam()));
    // The paper picked benchmarks with high I-cache miss rates:
    // every app must exercise the small I-cache meaningfully.
    EXPECT_GT(m.i1kMissRate, 0.005) << "1KB I$ too cold";
    EXPECT_LT(m.i1kMissRate, 0.5) << "1KB I$ thrashing";
    // ... and must not be pure noise in the large I-cache.
    EXPECT_GT(m.i16kMissRate, 0.0001) << "16KB I$ is noise";
    // Data caches see real traffic.
    EXPECT_GT(m.d16kMissRate, 0.005);
    // Text sizes in the tens of KB (embedded-application scale).
    EXPECT_GT(m.textSize, 10000u);
    EXPECT_LT(m.textSize, 400000u);
    // Table 3's regime for the widest machine.
    EXPECT_GT(m.dilation6332, 1.5);
    EXPECT_LT(m.dilation6332, 3.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, SuiteCharacterization,
    ::testing::Values("085.gcc", "099.go", "147.vortex", "epic",
                      "ghostscript", "mipmap", "pgpdecode",
                      "pgpencode", "rasta", "unepic"));

TEST(SuiteCharacterization, SpecAppsHaveLargerCodeThanMedia)
{
    auto gcc = measure(specByName("085.gcc"));
    auto epic = measure(specByName("epic"));
    auto unepic = measure(specByName("unepic"));
    EXPECT_GT(gcc.textSize, epic.textSize);
    EXPECT_GT(gcc.textSize, unepic.textSize);
}

TEST(SuiteCharacterization, MediaAppsDilateLess)
{
    // Table 3: epic/mipmap/rasta/unepic have the smallest dilations.
    double media = measure(specByName("mipmap")).dilation6332;
    double spec = measure(specByName("099.go")).dilation6332;
    EXPECT_LT(media, spec);
}

TEST(Lemma1, ExactThroughRealToolchainTraces)
{
    // End-to-end Lemma 1: the trace generator's dilated trace at a
    // power-of-two dilation produces exactly the misses of the
    // line-contracted cache on the undilated trace.
    auto prog = buildAndProfile(specByName("pgpencode"), 8000);
    auto ref = buildFor(prog, MachineDesc::fromName("1111"));
    trace::TraceGenerator gen(prog, ref.sched, ref.bin);

    for (uint32_t sets : {32u, 256u}) {
        for (uint32_t assoc : {1u, 2u}) {
            cache::CacheSim dilated(
                cache::CacheConfig{sets, assoc, 32});
            gen.generateDilated(trace::TraceKind::Instruction, 2.0,
                                [&](const trace::Access &a) {
                                    dilated.access(a.addr);
                                },
                                8000);
            cache::CacheSim contracted(
                cache::CacheConfig{sets, assoc, 16});
            gen.generate(trace::TraceKind::Instruction,
                         [&](const trace::Access &a) {
                             contracted.access(a.addr);
                         },
                         8000);
            EXPECT_EQ(dilated.misses(), contracted.misses())
                << "sets=" << sets << " assoc=" << assoc;
        }
    }
}

} // namespace
} // namespace pico::workloads
