/**
 * @file
 * Tests for three-C miss classification and write-back accounting.
 */

#include <gtest/gtest.h>

#include "cache/CacheSim.hpp"
#include "cache/MissClassifier.hpp"
#include "support/Random.hpp"

namespace pico::cache
{
namespace
{

TEST(MissClassifier, ColdMissesAreCompulsory)
{
    MissClassifier mc(CacheConfig{4, 2, 16});
    mc.access(0x000);
    mc.access(0x100);
    auto b = mc.breakdown();
    EXPECT_EQ(b.compulsory, 2u);
    EXPECT_EQ(b.capacity, 0u);
    EXPECT_EQ(b.conflict, 0u);
}

TEST(MissClassifier, ConflictMissDetected)
{
    // 4 sets x 1 way x 16B = 64B cache; fully associative twin has
    // 4 ways. Addresses 0x000 and 0x040 conflict on set 0 but fit
    // easily in the fully associative cache.
    MissClassifier mc(CacheConfig{4, 1, 16});
    mc.access(0x000);
    mc.access(0x040);
    mc.access(0x000); // conflict: FA would hit
    auto b = mc.breakdown();
    EXPECT_EQ(b.compulsory, 2u);
    EXPECT_EQ(b.conflict, 1u);
    EXPECT_EQ(b.capacity, 0u);
}

TEST(MissClassifier, CapacityMissDetected)
{
    // One-set cache: target == fully associative, so every
    // non-compulsory miss is a capacity miss.
    MissClassifier mc(CacheConfig{1, 2, 16});
    mc.access(0x000);
    mc.access(0x010);
    mc.access(0x020); // evicts 0x000 in both
    mc.access(0x000); // capacity
    auto b = mc.breakdown();
    EXPECT_EQ(b.compulsory, 3u);
    EXPECT_EQ(b.capacity, 1u);
    EXPECT_EQ(b.conflict, 0u);
}

TEST(MissClassifier, BreakdownSumsToSimulatorMisses)
{
    CacheConfig cfg{16, 2, 32};
    MissClassifier mc(cfg);
    CacheSim plain(cfg);
    Rng rng(2026);
    for (int i = 0; i < 30000; ++i) {
        uint64_t addr = rng.coin(0.7) ? rng.below(1 << 11)
                                      : rng.below(1 << 16);
        addr &= ~3ULL;
        mc.access(addr);
        plain.access(addr);
    }
    EXPECT_EQ(mc.breakdown().totalMisses(), plain.misses());
    EXPECT_GT(mc.breakdown().conflict, 0u);
    EXPECT_GT(mc.breakdown().capacity, 0u);
}

TEST(CacheSimWriteback, CleanEvictionsDoNotWriteBack)
{
    CacheSim sim(CacheConfig{1, 1, 16});
    sim.access(0x000, false);
    sim.access(0x010, false); // evict clean line
    EXPECT_EQ(sim.writebacks(), 0u);
}

TEST(CacheSimWriteback, DirtyEvictionWritesBack)
{
    CacheSim sim(CacheConfig{1, 1, 16});
    sim.access(0x000, true);  // install dirty
    sim.access(0x010, false); // evict dirty line
    EXPECT_EQ(sim.writebacks(), 1u);
}

TEST(CacheSimWriteback, HitMarksLineDirty)
{
    CacheSim sim(CacheConfig{1, 1, 16});
    sim.access(0x000, false); // clean install
    sim.access(0x004, true);  // write hit marks dirty
    sim.access(0x010, false); // evict -> writeback
    EXPECT_EQ(sim.writebacks(), 1u);
}

TEST(CacheSimWriteback, InvalidateFlushesDirtyLine)
{
    CacheSim sim(CacheConfig{4, 2, 16});
    sim.access(0x100, true);
    sim.invalidateLine(0x100 / 16);
    EXPECT_EQ(sim.writebacks(), 1u);
    sim.access(0x200, false);
    sim.invalidateLine(0x200 / 16);
    EXPECT_EQ(sim.writebacks(), 1u); // clean invalidation is free
}

TEST(CacheSimWriteback, ResetClearsWritebacks)
{
    CacheSim sim(CacheConfig{1, 1, 16});
    sim.access(0x000, true);
    sim.access(0x010, false);
    sim.reset();
    EXPECT_EQ(sim.writebacks(), 0u);
}

} // namespace
} // namespace pico::cache
