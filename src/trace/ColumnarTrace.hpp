/**
 * @file
 * Columnar compressed address traces (in-memory and trace format v3).
 *
 * The Cheetah hot loop replays one captured reference trace once per
 * distinct line size. The original TraceBuffer stores the trace as an
 * array of 16-byte Access structs, so every sweep streams 16 bytes
 * per reference through the memory system even though the simulators
 * only consume the address (and the address stream itself is highly
 * local). The columnar representation fixes both costs:
 *
 *  - the trace is split into *blocks* of a fixed number of records
 *    (blockCapacity, default 4096);
 *  - within a block the columns are stored as separate streams: the
 *    address column as zigzag-varint *deltas* between consecutive
 *    addresses (sequential code and striding data collapse to one or
 *    two bytes per reference), and the kind column (read/write/
 *    instruction) packed at two bits per record; record sizes are
 *    implicit — every reference is one word;
 *  - each block carries its own header (record count, first address,
 *    FNV-1a checksum over the records) so a decoder can validate —
 *    and in lenient mode salvage — blocks independently.
 *
 * Decoding a block materializes a plain address array in a reusable
 * scratch buffer; SinglePassSim::accessBlock() then consumes the hot
 * span branch-free. One decoded block can feed *all* line sizes in a
 * single pass (the serial SimBank path does exactly that).
 *
 * Trace format v3 is the same layout on disk, binary and mmap-able:
 * the encoded block streams are simulated straight out of the file
 * mapping with no row-wise materialization. The text formats v1/v2
 * remain readable through TraceFileReader; replayTraceFile() sniffs
 * the version and dispatches, and the checksum chain of v3 is the
 * v2 chain (traceChecksumStep), so a lossless v2 -> v3 conversion
 * preserves the file checksum bit-for-bit.
 *
 * On-disk layout (all integers little-endian):
 *
 *   [ 0..23] magic "picoeval-trace-v3" NUL-padded to 24 bytes
 *   [24..87] file header, 8 x u64:
 *            blockCapacity, recordCount, blockCount, indexOffset,
 *            fileChecksum, headerSeal, reserved, reserved
 *   [88.. ]  blocks region: per block
 *              u32 blockMagic  u32 count  u64 firstAddr
 *              u32 deltaBytes  u32 kindBytes  u64 blockChecksum
 *            followed by deltaBytes + kindBytes stream bytes
 *   [index]  blockCount x u64 absolute byte offsets of each block
 *
 * The writer streams blocks as records arrive and patches the file
 * header last (headerSeal); a crash mid-write leaves the seal unset,
 * so truncation is always detected — never a clean end-of-trace.
 */

#ifndef PICO_TRACE_COLUMNAR_TRACE_HPP
#define PICO_TRACE_COLUMNAR_TRACE_HPP

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "support/Logging.hpp"
#include "trace/Access.hpp"
#include "trace/TraceFile.hpp"

namespace pico::trace
{

/** Magic prefix of a version-3 (binary columnar) trace file. */
inline constexpr const char *traceMagicV3 = "picoeval-trace-v3";
/** Bytes reserved for the magic prefix (NUL-padded). */
inline constexpr size_t traceMagicV3Bytes = 24;
/** Per-block magic of the v3 block header. */
inline constexpr uint32_t columnarBlockMagic = 0xb10c7aceU;
/** Value of the headerSeal field once a v3 file is complete. */
inline constexpr uint64_t columnarHeaderSeal = 0x5ea1ed5ea1ed5ea1ULL;

/** Reusable decode scratch: one block's materialized columns. */
class BlockScratch
{
  public:
    std::vector<uint64_t> addrs;
    std::vector<uint8_t> kinds;
};

/** Zero-copy view of one decoded block (points into a scratch). */
struct BlockView
{
    const uint64_t *addrs = nullptr;
    /** Record kinds: 0 data read, 1 data write, 2 instruction. */
    const uint8_t *kinds = nullptr;
    uint32_t count = 0;
};

namespace detail
{

/** Streaming encoder of one columnar block. */
struct BlockEncoder
{
    uint32_t capacity = 0;
    uint32_t count = 0;
    uint64_t firstAddr = 0;
    uint64_t lastAddr = 0;
    uint64_t checksum = traceChecksumSeed;
    std::vector<uint8_t> deltas;
    std::vector<uint8_t> kinds;

    explicit BlockEncoder(uint32_t cap) : capacity(cap) {}

    bool full() const { return count == capacity; }

    void
    reset()
    {
        count = 0;
        firstAddr = lastAddr = 0;
        checksum = traceChecksumSeed;
        deltas.clear();
        kinds.clear();
    }

    /** Append one record (kind 0/1/2). The caller checks full(). */
    void add(int kind, uint64_t addr);
};

/**
 * Decode one block's streams into `scratch`.
 * @return false when a stream is malformed (truncated varint, count
 *         overrun, stream length mismatch) — never throws
 */
bool decodeBlock(const uint8_t *deltas, size_t delta_bytes,
                 const uint8_t *kinds, size_t kind_bytes,
                 uint32_t count, uint64_t first_addr,
                 BlockScratch &scratch, uint64_t &checksum_out);

} // namespace detail

/**
 * In-memory columnar trace: the capture-side replacement for
 * TraceBuffer. Sink-compatible; immutable once capture ends, so any
 * number of threads may decode blocks concurrently (each with its
 * own BlockScratch).
 */
class ColumnarTraceBuffer
{
  public:
    /** Records per block (power of two; decode scratch sizing). */
    static constexpr uint32_t defaultBlockCapacity = 4096;

    explicit ColumnarTraceBuffer(
        uint32_t block_capacity = defaultBlockCapacity);

    /** Sink interface: append one reference. */
    void operator()(const Access &a) { append(a); }

    /** Append one reference. */
    void append(const Access &a);

    /** Total records captured. */
    uint64_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Number of blocks (including the open tail block). */
    size_t blockCount() const;

    uint32_t blockCapacity() const { return blockCapacity_; }

    /** Running FNV-1a checksum over every record (the v2 chain). */
    uint64_t checksum() const { return checksum_; }

    /** Encoded payload bytes (delta + kind streams, all blocks). */
    uint64_t encodedBytes() const;

    /**
     * Decode one block into `scratch` and return a view of it. The
     * buffer is read-only here: concurrent decodes of any blocks are
     * safe as long as each thread owns its scratch.
     */
    BlockView decodeBlock(size_t index, BlockScratch &scratch) const;

    /** Replay every record, in order, into sink(const Access &). */
    template <typename Sink>
    void
    replay(Sink &&sink) const
    {
        BlockScratch scratch;
        const size_t blocks = blockCount();
        for (size_t b = 0; b < blocks; ++b) {
            BlockView view = decodeBlock(b, scratch);
            for (uint32_t i = 0; i < view.count; ++i) {
                Access a;
                a.addr = view.addrs[i];
                a.isInstr = view.kinds[i] == 2;
                a.isWrite = view.kinds[i] == 1;
                sink(a);
            }
        }
    }

    /** Encoded form of one closed-or-open block (checksum, streams). */
    struct Block
    {
        uint32_t count = 0;
        uint64_t firstAddr = 0;
        uint64_t checksum = traceChecksumSeed;
        std::vector<uint8_t> deltas;
        std::vector<uint8_t> kinds;
    };

    /** Access to the raw encoded blocks (verification, writers). */
    const Block &block(size_t index) const;

  private:
    void sealOpenBlock() const;

    uint32_t blockCapacity_;
    uint64_t size_ = 0;
    uint64_t checksum_ = traceChecksumSeed;
    std::vector<Block> closed_;
    detail::BlockEncoder open_;
    /** Lazily-sealed copy of the open block for decode/block(). */
    mutable Block openView_;
    mutable uint64_t openViewCount_ = 0;
};

/** Streams accesses into a trace format v3 (columnar) file. */
class ColumnarTraceWriter
{
  public:
    /** Open (and truncate) the file; fatal() on failure. */
    explicit ColumnarTraceWriter(
        const std::string &path,
        uint32_t block_capacity =
            ColumnarTraceBuffer::defaultBlockCapacity);

    /** Closes (sealing the header); never throws during unwind. */
    ~ColumnarTraceWriter();

    /** Append one access. */
    void write(const Access &a);

    /** Sink-compatible overload. */
    void operator()(const Access &a) { write(a); }

    /** Records written so far. */
    uint64_t count() const { return count_; }

    /** Flush the tail block, write the index, seal the header. */
    void close();

  private:
    void flushBlock();

    std::string path_;
    std::ofstream out_;
    uint32_t blockCapacity_;
    uint64_t count_ = 0;
    uint64_t checksum_ = traceChecksumSeed;
    detail::BlockEncoder open_;
    std::vector<uint64_t> offsets_;
};

/** Exact accounting of what a columnar reader saw (Lenient mode). */
struct ColumnarCorruptionSummary
{
    /** Records delivered to the caller. */
    uint64_t recordsRead = 0;
    /** Record count the file header promised. */
    uint64_t expectedRecords = 0;
    /** Blocks skipped whole (bad header/magic/checksum/decode). */
    uint64_t corruptBlocks = 0;
    /** Blocks decoded and delivered intact. */
    uint64_t salvagedBlocks = 0;
    /** File header unsealed/truncated (crash mid-write). */
    bool headerTruncated = false;
    /** Whole-file checksum did not match the surviving records. */
    bool checksumMismatch = false;

    bool
    clean() const
    {
        return corruptBlocks == 0 && !headerTruncated &&
               !checksumMismatch &&
               recordsRead == expectedRecords;
    }

    /** Records lost to corruption. */
    uint64_t
    droppedRecords() const
    {
        return expectedRecords > recordsRead
                   ? expectedRecords - recordsRead
                   : 0;
    }

    /** One-line human-readable report. */
    std::string describe() const;
};

/**
 * Replays a trace format v3 file. The file is mapped read-only and
 * block streams are decoded straight out of the mapping (zero-copy
 * of the encoded columns; only the per-block address materialization
 * is written, into the caller's scratch).
 *
 * Corruption is never reported as a clean end: Strict mode raises
 * FatalError naming the block and byte offset; Lenient mode skips
 * exactly the corrupt blocks (whole-block salvage) and accounts for
 * them in summary().
 */
class ColumnarTraceReader
{
  public:
    explicit ColumnarTraceReader(const std::string &path,
                                 TraceReadMode mode =
                                     TraceReadMode::Strict);
    ~ColumnarTraceReader();

    ColumnarTraceReader(const ColumnarTraceReader &) = delete;
    ColumnarTraceReader &operator=(const ColumnarTraceReader &) =
        delete;

    /** Blocks the index declares. */
    size_t blockCount() const { return offsets_.size(); }

    /** Records the file header promises. */
    uint64_t recordCount() const { return recordCount_; }

    uint32_t blockCapacity() const { return blockCapacity_; }

    /**
     * Decode block `index` into `scratch`.
     * @return false when the block is corrupt (Lenient; Strict
     *         raises instead). A false return delivers no records.
     */
    bool decodeBlock(size_t index, BlockScratch &scratch,
                     BlockView &view);

    /**
     * Replay the whole file into sink(const Access &); validates the
     * whole-file checksum at the end.
     * @return records delivered
     */
    template <typename Sink>
    uint64_t
    replay(Sink &&sink)
    {
        BlockScratch scratch;
        uint64_t delivered = 0;
        for (size_t b = 0; b < offsets_.size(); ++b) {
            BlockView view;
            if (!decodeBlock(b, scratch, view))
                continue;
            for (uint32_t i = 0; i < view.count; ++i) {
                Access a;
                a.addr = view.addrs[i];
                a.isInstr = view.kinds[i] == 2;
                a.isWrite = view.kinds[i] == 1;
                sink(a);
            }
            delivered += view.count;
        }
        finish(delivered);
        return delivered;
    }

    /** Corruption accounting; fully populated once replay() (or a
     *  manual block walk plus finish()) completed. */
    const ColumnarCorruptionSummary &summary() const
    {
        return summary_;
    }

    /**
     * Validate the running whole-file checksum after a block walk.
     * replay() calls this automatically.
     */
    void finish(uint64_t delivered);

  private:
    /** Validate magic/header/index; builds the block offset table. */
    void parseHeader();

    [[noreturn]] void corruptionError(const std::string &what,
                                      size_t block,
                                      uint64_t offset) const;

    std::string path_;
    TraceReadMode mode_;
    int fd_ = -1;
    const uint8_t *data_ = nullptr;
    size_t bytes_ = 0;
    uint64_t recordCount_ = 0;
    uint32_t blockCapacity_ = 0;
    uint64_t fileChecksum_ = 0;
    uint64_t runningChecksum_ = traceChecksumSeed;
    std::vector<uint64_t> offsets_;
    ColumnarCorruptionSummary summary_;
    uint64_t warned_ = 0;
};

/**
 * Version of the trace file at `path`: 1 or 2 (text formats, from
 * the header line) or 3 (binary columnar). fatal() when the file is
 * missing or matches no known format.
 */
int sniffTraceFileVersion(const std::string &path);

/**
 * Replay a trace file of *any* format version into a sink: v1/v2 go
 * through TraceFileReader, v3 through ColumnarTraceReader. This is
 * the back-compat entry point — consumers of serialized traces never
 * need to know which format they were handed.
 * @return records delivered
 */
template <typename Sink>
uint64_t
replayTraceFile(const std::string &path, Sink &&sink,
                TraceReadMode mode = TraceReadMode::Strict)
{
    if (sniffTraceFileVersion(path) == 3) {
        ColumnarTraceReader reader(path, mode);
        return reader.replay(std::forward<Sink>(sink));
    }
    TraceFileReader reader(path, mode);
    return reader.replay(std::forward<Sink>(sink));
}

} // namespace pico::trace

#endif // PICO_TRACE_COLUMNAR_TRACE_HPP
