/**
 * @file
 * Materialized address trace for multi-pass consumers.
 *
 * The reference trace is normally *streamed* (one pass, no storage),
 * but the parallel evaluators need several independent read-only
 * sweeps over the same reference trace — one per Cheetah line size —
 * running concurrently. A TraceBuffer captures the stream once; the
 * buffer is immutable afterwards, so any number of threads may
 * replay it without synchronization.
 */

#ifndef PICO_TRACE_TRACE_BUFFER_HPP
#define PICO_TRACE_TRACE_BUFFER_HPP

#include <cstdint>
#include <vector>

#include "trace/Access.hpp"

namespace pico::trace
{

/** Sink-compatible collector of one address trace. */
class TraceBuffer
{
  public:
    /** Sink interface: append one reference. */
    void operator()(const Access &a) { accesses_.push_back(a); }

    const std::vector<Access> &accesses() const { return accesses_; }
    size_t size() const { return accesses_.size(); }
    bool empty() const { return accesses_.empty(); }

    /** Replay the trace into any sink(const Access &). */
    template <typename Sink>
    void
    replay(Sink &&sink) const
    {
        for (const auto &a : accesses_)
            sink(a);
    }

  private:
    std::vector<Access> accesses_;
};

} // namespace pico::trace

#endif // PICO_TRACE_TRACE_BUFFER_HPP
