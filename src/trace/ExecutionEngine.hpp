/**
 * @file
 * Execution engine: runs a program and produces the event trace.
 *
 * This is the analogue of the paper's emulator + execution engine
 * (IMPACT probes on a host workstation). It interprets the
 * machine-independent IR, so the event trace — the sequence of basic
 * blocks entered plus the data addresses of their memory operations —
 * is identical for every machine in a trace-equivalence class, which
 * is how the paper's assumption 1 is realized.
 *
 * All stochastic behavior (branch directions, data access patterns)
 * is drawn from an Rng seeded by the program, so runs are exactly
 * reproducible.
 */

#ifndef PICO_TRACE_EXECUTION_ENGINE_HPP
#define PICO_TRACE_EXECUTION_ENGINE_HPP

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "ir/Program.hpp"
#include "support/Logging.hpp"
#include "support/Random.hpp"

namespace pico::trace
{

/** One data reference recorded in the event trace. */
struct DataRef
{
    uint64_t addr = 0;
    /** Index of the memory operation within its IR block. */
    uint16_t opIndex = 0;
    bool isStore = false;
};

/**
 * Interprets a finalized Program, delivering one callback per basic
 * block entered:
 *
 *     sink(funcId, blockId, const std::vector<DataRef> &data)
 *
 * The engine restarts the program from its entry function when it
 * finishes, until the block budget is exhausted, so arbitrarily long
 * traces can be sampled from short programs.
 */
class ExecutionEngine
{
  public:
    explicit ExecutionEngine(const ir::Program &prog)
        : prog_(prog), rng_(prog.seed)
    {
        fatalIf(!prog.finalized(),
                "ExecutionEngine needs a finalized program");
        streamCursor_.assign(prog.streams.size(), 0);
        loopRemaining_.resize(prog.functions.size());
        for (size_t fi = 0; fi < prog.functions.size(); ++fi) {
            loopRemaining_[fi].assign(
                prog.functions[fi].blocks.size(), 0);
        }
    }

    /**
     * Run the program.
     * @param sink per-block callback (see class comment)
     * @param maxBlocks stop after this many block entries
     * @return number of block entries delivered
     */
    template <typename Sink>
    uint64_t
    run(Sink &&sink, uint64_t maxBlocks)
    {
        rng_.reseed(prog_.seed);
        std::fill(streamCursor_.begin(), streamCursor_.end(), 0);
        for (auto &func_loops : loopRemaining_)
            std::fill(func_loops.begin(), func_loops.end(), 0);

        uint64_t entered = 0;
        std::vector<DataRef> data;
        // Call stack of (function, block) frames whose outgoing edge
        // is pending a callee's return.
        std::vector<std::pair<uint32_t, uint32_t>> stack;

        uint32_t f = prog_.entryFunction;
        uint32_t b = 0;
        while (entered < maxBlocks) {
            const auto &block = prog_.functions[f].blocks[b];

            data.clear();
            for (size_t oi = 0; oi < block.ops.size(); ++oi) {
                const auto &op = block.ops[oi];
                if (!op.isMem())
                    continue;
                DataRef ref;
                ref.addr = dataAddress(prog_.streams[op.streamId]);
                ref.opIndex = static_cast<uint16_t>(oi);
                ref.isStore = op.isStore();
                data.push_back(ref);
            }
            sink(f, b, data);
            ++entered;

            bool calls = block.callee >= 0 || block.indirectCall;
            if (calls && entered < maxBlocks) {
                // Call at block end; the outgoing edge is taken after
                // the callee returns. Indirect calls dispatch to a
                // runtime-chosen higher-numbered function.
                stack.emplace_back(f, b);
                if (block.indirectCall) {
                    auto span = static_cast<uint64_t>(
                        prog_.functions.size() - f - 1);
                    f = f + 1 +
                        static_cast<uint32_t>(rng_.below(span));
                } else {
                    f = static_cast<uint32_t>(block.callee);
                }
                b = 0;
                continue;
            }

            // Select the outgoing edge; empty successors return.
            uint32_t cf = f, cb = b;
            for (;;) {
                const auto &cur = prog_.functions[cf].blocks[cb];
                if (!cur.succs.empty()) {
                    cb = selectEdge(cf, cur);
                    break;
                }
                if (stack.empty()) {
                    // Program finished; restart from the entry.
                    cf = prog_.entryFunction;
                    cb = 0;
                    break;
                }
                std::tie(cf, cb) = stack.back();
                stack.pop_back();
            }
            f = cf;
            b = cb;
        }
        return entered;
    }

    /**
     * Profiling run: fills in BasicBlock::profileCount and
     * Function::callCount on the program.
     * @param prog program to profile (counts are overwritten)
     * @param maxBlocks block-entry budget
     */
    static void profile(ir::Program &prog, uint64_t maxBlocks);

  private:
    /** Next byte address for a stream, per its access pattern. */
    uint64_t
    dataAddress(const ir::DataStream &stream)
    {
        uint64_t word = 0;
        uint64_t &cursor = streamCursor_[stream.id];
        switch (stream.pattern) {
          case ir::AccessPattern::Sequential:
            word = cursor % stream.sizeWords;
            cursor += 1;
            break;
          case ir::AccessPattern::Strided:
            word = cursor % stream.sizeWords;
            cursor += stream.strideWords;
            break;
          case ir::AccessPattern::Random:
            word = rng_.below(stream.sizeWords);
            break;
          case ir::AccessPattern::Zipf:
            word = rng_.zipf(stream.sizeWords, stream.zipfExponent);
            break;
          case ir::AccessPattern::Stack:
            // Hot sliding window near the top of the region.
            word = rng_.below(std::min<uint64_t>(64,
                                                 stream.sizeWords));
            break;
          case ir::AccessPattern::Tiled: {
            // Blocked matrix traversal (the shape of a blocked
            // matmul): the region is a rowWords-wide matrix walked
            // tile by tile, row-major within each tile. Pure cursor
            // arithmetic — no Rng draws — so adding this pattern
            // leaves every other stream's random sequence intact.
            uint64_t tile = stream.tileWords != 0
                                ? stream.tileWords
                                : 8;
            uint64_t row = stream.rowWords;
            if (row == 0) {
                row = 1;
                while (row * row * 4 <= stream.sizeWords)
                    row *= 2;
            }
            tile = std::min<uint64_t>(tile, row);
            uint64_t tiles_per_row = row / tile;
            uint64_t tile_words = tile * tile;
            uint64_t idx = cursor;
            cursor += 1;
            uint64_t tile_idx = idx / tile_words;
            uint64_t within = idx % tile_words;
            uint64_t tile_row = tile_idx / tiles_per_row;
            uint64_t tile_col = tile_idx % tiles_per_row;
            word = ((tile_row * tile + within / tile) * row +
                    tile_col * tile + within % tile) %
                   stream.sizeWords;
            break;
          }
        }
        return stream.baseAddr + word * 4;
    }

    /**
     * Pick a successor. Back edges (loops) are *stateful*: on first
     * exit selection a trip count is drawn whose mean matches the
     * edge probability (mean = 1 / (1 - p)), the back edge is taken
     * until it is exhausted, and then the loop exits. Memoryless
     * geometric looping would occasionally trap execution inside one
     * nest for the whole trace; real loops iterate and finish.
     * Forward branches remain probabilistic.
     */
    uint32_t
    selectEdge(uint32_t func, const ir::BasicBlock &block)
    {
        const ir::Edge *back = nullptr;
        const ir::Edge *fwd = nullptr;
        for (const auto &edge : block.succs) {
            if (edge.target <= block.id) {
                back = &edge;
            } else if (!fwd) {
                fwd = &edge;
            }
        }
        if (back && fwd) {
            uint64_t &rem = loopRemaining_[func][block.id];
            if (rem == 0) {
                double mean =
                    1.0 / std::max(1e-9, 1.0 - back->prob);
                uint64_t cap =
                    static_cast<uint64_t>(6.0 * mean) + 1;
                rem = std::min(rng_.geometric(mean), cap);
            }
            if (--rem > 0)
                return back->target;
            return fwd->target; // rem reached 0: redrawn next entry
        }

        double u = rng_.uniform();
        double acc = 0.0;
        for (const auto &edge : block.succs) {
            acc += edge.prob;
            if (u < acc)
                return edge.target;
        }
        return block.succs.back().target;
    }

    const ir::Program &prog_;
    Rng rng_;
    std::vector<uint64_t> streamCursor_;
    std::vector<std::vector<uint64_t>> loopRemaining_;
};

} // namespace pico::trace

#endif // PICO_TRACE_EXECUTION_ENGINE_HPP
