/**
 * @file
 * Typed trace-layer errors: corrupt input vs. I/O failure.
 *
 * Tools that consume trace files (trace_convert, replay pipelines)
 * need to tell a *corrupt file* (bad header, malformed record,
 * checksum mismatch — the file itself is wrong, retrying is
 * pointless) apart from an *I/O failure* (cannot open, short read,
 * write error — the environment is wrong, the file may be fine).
 * Both derive from FatalError, so existing catch sites and the
 * fatal()-throws contract are unchanged; the subtype only adds
 * discrimination for callers that want distinct exit codes.
 */

#ifndef PICO_TRACE_TRACE_ERRORS_HPP
#define PICO_TRACE_TRACE_ERRORS_HPP

#include <string>
#include <utility>

#include "support/Logging.hpp"

namespace pico::trace
{

/** The trace file's bytes are wrong (corruption, format violation). */
class TraceCorruptionError : public FatalError
{
  public:
    explicit TraceCorruptionError(const std::string &msg)
        : FatalError(msg)
    {}
};

/** The environment failed (open/read/write error), not the bytes. */
class TraceIoError : public FatalError
{
  public:
    explicit TraceIoError(const std::string &msg) : FatalError(msg)
    {}
};

/** fatal()-style reporter throwing TraceCorruptionError. */
template <typename... Args>
[[noreturn]] void
corruptFatal(Args &&...args)
{
    // pico::trace::detail exists (codec helpers), so the logging
    // helpers need full qualification.
    std::string msg =
        pico::detail::concat(std::forward<Args>(args)...);
    pico::detail::emitMessage(LogLevel::Error, "fatal", msg);
    throw TraceCorruptionError(msg);
}

/** fatal()-style reporter throwing TraceIoError. */
template <typename... Args>
[[noreturn]] void
ioFatal(Args &&...args)
{
    std::string msg =
        pico::detail::concat(std::forward<Args>(args)...);
    pico::detail::emitMessage(LogLevel::Error, "fatal", msg);
    throw TraceIoError(msg);
}

} // namespace pico::trace

#endif // PICO_TRACE_TRACE_ERRORS_HPP
