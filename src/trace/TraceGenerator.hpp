/**
 * @file
 * Trace generator: event trace x linked binary -> address traces.
 *
 * Mirrors the paper's trace generator: it symbolically executes the
 * linked binary under the control-flow events of the execution
 * engine, producing instruction, data, or joint (unified) address
 * traces. It also implements the *dilated* trace of section 4
 * directly: with a dilation coefficient d, every block's offset and
 * length relative to the text base are scaled by d and rounded to the
 * nearest word, so contiguous blocks remain contiguous and never
 * overlap — exactly the construction used in Lemma 1.
 *
 * Machine-dependent data references (spill code from register
 * pressure, spurious addresses from speculated loads) are added here,
 * from the scheduled program, on top of the machine-independent event
 * trace.
 */

#ifndef PICO_TRACE_TRACE_GENERATOR_HPP
#define PICO_TRACE_TRACE_GENERATOR_HPP

#include <cmath>
#include <cstdint>
#include <vector>

#include "compiler/Schedule.hpp"
#include "ir/Program.hpp"
#include "linker/LinkedBinary.hpp"
#include "support/Logging.hpp"
#include "trace/Access.hpp"
#include "trace/ExecutionEngine.hpp"

namespace pico::trace
{

/** Generates address traces for one (program, schedule, binary). */
class TraceGenerator
{
  public:
    /** Base byte address of the spill (stack) region. */
    static constexpr uint64_t stackBase = 0x7f000000ULL;
    /** Hot spill window per function, in words. */
    static constexpr uint64_t spillWindowWords = 64;

    /**
     * @param prog finalized IR program
     * @param sched schedule of prog for some machine
     * @param bin linked binary of that schedule
     */
    TraceGenerator(const ir::Program &prog,
                   const compiler::ScheduledProgram &sched,
                   const linker::LinkedBinary &bin)
        : prog_(prog), sched_(sched), bin_(bin)
    {
        fatalIf(prog.functions.size() != sched.functions.size(),
                "program/schedule mismatch in trace generator");
        fatalIf(bin.numFunctions() != prog.functions.size(),
                "program/binary mismatch in trace generator");
    }

    /**
     * Generate the address trace.
     * @param kind instruction, data or unified
     * @param sink callable sink(const Access &)
     * @param maxBlocks block-entry budget (trace sampling)
     * @return number of accesses emitted
     */
    template <typename Sink>
    uint64_t
    generate(TraceKind kind, Sink &&sink, uint64_t maxBlocks) const
    {
        return generateDilated(kind, 1.0, std::forward<Sink>(sink),
                               maxBlocks);
    }

    /**
     * Generate the trace with the instruction component dilated by d
     * (d == 1.0 reproduces generate() exactly). Data references are
     * never dilated, as in the paper.
     */
    template <typename Sink>
    uint64_t
    generateDilated(TraceKind kind, double dilation, Sink &&sink,
                    uint64_t maxBlocks) const
    {
        fatalIf(dilation <= 0.0, "dilation must be positive");
        uint64_t emitted = 0;
        uint64_t spill_cursor = 0;
        uint64_t spec_cursor = 0;

        ExecutionEngine engine(prog_);
        engine.run(
            [&](uint32_t f, uint32_t b,
                const std::vector<DataRef> &data) {
                emitted += emitBlock(kind, dilation, f, b, data,
                                     spill_cursor, spec_cursor,
                                     sink);
            },
            maxBlocks);
        return emitted;
    }

    /**
     * Convenience: collect a trace into a vector (tests and the
     * trace-model fitters use this; simulators prefer streaming).
     */
    std::vector<Access>
    collect(TraceKind kind, uint64_t maxBlocks,
            double dilation = 1.0) const
    {
        std::vector<Access> out;
        generateDilated(kind, dilation,
                        [&out](const Access &a) { out.push_back(a); },
                        maxBlocks);
        return out;
    }

  private:
    /** Scale a text offset by the dilation, rounded to a word. */
    static uint64_t
    scaleOffset(uint64_t offset, double dilation)
    {
        double scaled = static_cast<double>(offset) * dilation;
        return 4 * static_cast<uint64_t>(std::llround(scaled / 4.0));
    }

    /** Fraction of speculated-load executions that run down the
     *  wrong path and emit a spurious reference: one in four. */
    static constexpr uint64_t wrongPathPeriod = 4;

    template <typename Sink>
    uint64_t
    emitBlock(TraceKind kind, double dilation, uint32_t f, uint32_t b,
              const std::vector<DataRef> &data, uint64_t &spill_cursor,
              uint64_t &spec_cursor, Sink &sink) const
    {
        uint64_t emitted = 0;

        if (kind != TraceKind::Data) {
            // Instruction fetches: word addresses tiling the block's
            // (possibly dilated) byte range.
            const auto &placed = bin_.block(f, b);
            uint64_t off = placed.startAddr - linker::LinkedBinary::textBase;
            uint64_t lo = linker::LinkedBinary::textBase +
                          scaleOffset(off, dilation);
            uint64_t hi = linker::LinkedBinary::textBase +
                          scaleOffset(off + placed.sizeBytes, dilation);
            for (uint64_t addr = lo; addr < hi; addr += 4) {
                sink(Access{addr, true, false});
                ++emitted;
            }
        }

        if (kind != TraceKind::Instruction) {
            // Data references in scheduled order; spill code and
            // speculated loads add machine-dependent references.
            const auto &sblock = sched_.functions[f].blocks[b];
            for (const auto &inst : sblock.insts) {
                for (const auto &op : inst.ops) {
                    if (!op.isMem())
                        continue;
                    if (op.spill) {
                        uint64_t word = spill_cursor++ %
                                        spillWindowWords;
                        uint64_t addr = stackBase + f * 4096 +
                                        word * 4;
                        sink(Access{addr, false, op.isStore()});
                        ++emitted;
                        continue;
                    }
                    // Find the event-trace reference for this op.
                    const DataRef *ref = nullptr;
                    for (const auto &r : data) {
                        if (r.opIndex == op.origIndex) {
                            ref = &r;
                            break;
                        }
                    }
                    panicIf(!ref, "scheduled memory op missing from "
                                  "event trace");
                    sink(Access{ref->addr, false, ref->isStore});
                    ++emitted;
                    if (op.speculated &&
                        spec_cursor++ % wrongPathPeriod == 0) {
                        // Wrong-path execution of a hoisted load:
                        // one spurious nearby reference.
                        sink(Access{ref->addr + 64, false, false});
                        ++emitted;
                    }
                }
            }
        }
        return emitted;
    }

    const ir::Program &prog_;
    const compiler::ScheduledProgram &sched_;
    const linker::LinkedBinary &bin_;
};

} // namespace pico::trace

#endif // PICO_TRACE_TRACE_GENERATOR_HPP
