/**
 * @file
 * Address-trace element and trace-kind selector.
 */

#ifndef PICO_TRACE_ACCESS_HPP
#define PICO_TRACE_ACCESS_HPP

#include <cstdint>

namespace pico::trace
{

/** One memory reference in an address trace. Addresses are bytes;
 *  every reference is word (4-byte) aligned. */
struct Access
{
    uint64_t addr = 0;
    bool isInstr = false;
    bool isWrite = false;
};

/** Which address stream the trace generator should produce. */
enum class TraceKind : uint8_t
{
    Instruction, ///< instruction fetches only (drives the I-cache)
    Data,        ///< loads/stores only (drives the D-cache)
    Unified,     ///< both, interleaved in program order (L2)
};

} // namespace pico::trace

#endif // PICO_TRACE_ACCESS_HPP
