#include "trace/ExecutionEngine.hpp"

namespace pico::trace
{

void
ExecutionEngine::profile(ir::Program &prog, uint64_t maxBlocks)
{
    for (auto &func : prog.functions) {
        func.callCount = 0;
        for (auto &block : func.blocks)
            block.profileCount = 0;
    }
    ExecutionEngine engine(prog);
    engine.run(
        [&prog](uint32_t f, uint32_t b, const std::vector<DataRef> &) {
            auto &func = prog.functions[f];
            ++func.blocks[b].profileCount;
            if (b == 0)
                ++func.callCount;
        },
        maxBlocks);
}

} // namespace pico::trace
