/**
 * @file
 * Address-trace serialization.
 *
 * The paper's pipeline streams traces between processes (probed
 * executable -> Etrans -> cheetah). TraceFile provides the
 * equivalent decoupling for this library: write a trace once, replay
 * it into any number of simulators later, or exchange traces with
 * external tools. The format is a dinero-like text form — one record
 * per line, `<kind> <hex-address>` with kind 0 = data read, 1 = data
 * write, 2 = instruction fetch.
 *
 * Two format versions exist:
 *
 *  - v1 (`picoeval-trace-v1`): header + records only. A truncated v1
 *    file that ends on a line boundary is indistinguishable from a
 *    complete one — the motivation for v2.
 *  - v2 (`picoeval-trace-v2`): adds a footer line
 *    `%footer <record-count> <fnv1a64-checksum>` so truncation,
 *    bit-flips and dropped records are always detected. The writer
 *    emits v2; the reader accepts both.
 *
 * The reader never reports corruption as a clean end-of-file. In
 * Strict mode (the default) any malformed record, missing footer or
 * checksum/count mismatch raises FatalError naming the line and byte
 * position; in Lenient mode corrupt records are skipped with a
 * warning and an exact accounting is available from summary().
 */

#ifndef PICO_TRACE_TRACE_FILE_HPP
#define PICO_TRACE_TRACE_FILE_HPP

#include <cstdint>
#include <fstream>
#include <string>

#include "support/Logging.hpp"
#include "trace/Access.hpp"

namespace pico::trace
{

/** Magic first line of a version-1 trace file. */
inline constexpr const char *traceHeaderV1 = "picoeval-trace-v1";
/** Magic first line of a version-2 trace file. */
inline constexpr const char *traceHeaderV2 = "picoeval-trace-v2";
/** First token of the v2 footer line. */
inline constexpr const char *traceFooterTag = "%footer";

/** FNV-1a 64 running checksum over one trace record. */
uint64_t traceChecksumStep(uint64_t sum, int kind, uint64_t addr);

/** Initial value of the running trace checksum. */
inline constexpr uint64_t traceChecksumSeed = 0xcbf29ce484222325ULL;

/** How a TraceFileReader reacts to corruption. */
enum class TraceReadMode
{
    /** FatalError on the first corrupt record/footer (default). */
    Strict,
    /** Skip corrupt records, warn, and account in summary(). */
    Lenient,
};

/** Exact accounting of what a reader saw (Lenient mode). */
struct TraceCorruptionSummary
{
    /** Records delivered to the caller. */
    uint64_t recordsRead = 0;
    /** Malformed record lines skipped. */
    uint64_t corruptLines = 0;
    /** Footer record count (0 when the footer did not survive). */
    uint64_t expectedRecords = 0;
    /** v2 file ended without a (parseable) footer — truncated. */
    bool footerMissing = false;
    /** Footer checksum did not match the surviving records. */
    bool checksumMismatch = false;
    /** Footer count did not match the records delivered. */
    bool countMismatch = false;

    /** True when the file read back with no corruption at all. */
    bool
    clean() const
    {
        return corruptLines == 0 && !footerMissing &&
               !checksumMismatch && !countMismatch;
    }

    /**
     * Records lost to corruption: exact (footer count minus records
     * delivered) while the footer survived, otherwise the count of
     * skipped lines (a lower bound under tail truncation).
     */
    uint64_t
    droppedRecords() const
    {
        if (expectedRecords > 0)
            return expectedRecords > recordsRead
                       ? expectedRecords - recordsRead
                       : 0;
        return corruptLines;
    }

    /** One-line human-readable report. */
    std::string describe() const;
};

/** Streams accesses to a trace file (always writes format v2). */
class TraceFileWriter
{
  public:
    /** Open (and truncate) the file; fatal() on failure. */
    explicit TraceFileWriter(const std::string &path);

    /** Closes (writing the footer); never throws during unwind. */
    ~TraceFileWriter();

    /** Append one access. */
    void write(const Access &a);

    /** Sink-compatible overload. */
    void operator()(const Access &a) { write(a); }

    /** Records written so far. */
    uint64_t count() const { return count_; }

    /** Write the footer, flush and close; fatal() on write failure. */
    void close();

  private:
    std::string path_;
    std::ofstream out_;
    uint64_t count_ = 0;
    uint64_t checksum_ = traceChecksumSeed;
};

/** Replays a trace file into a sink; reads formats v1 and v2. */
class TraceFileReader
{
  public:
    /**
     * Open the file; fatal() on failure or a bad header.
     * @param mode corruption handling (Strict raises, Lenient skips)
     */
    explicit TraceFileReader(const std::string &path,
                             TraceReadMode mode =
                                 TraceReadMode::Strict);

    /**
     * Read the next access.
     *
     * Corruption is never reported as a clean end: Strict mode
     * raises FatalError with the line/byte position; Lenient mode
     * skips the record and keeps reading.
     *
     * @return false at (verified) end of trace
     */
    bool next(Access &a);

    /**
     * Replay the whole remaining file.
     * @return records delivered
     */
    template <typename Sink>
    uint64_t
    replay(Sink &&sink)
    {
        uint64_t n = 0;
        Access a;
        while (next(a)) {
            sink(a);
            ++n;
        }
        return n;
    }

    /** Format version of the open file (1 or 2). */
    int version() const { return version_; }

    /** Corruption accounting; fully populated once next() returned
     *  false. */
    const TraceCorruptionSummary &summary() const { return summary_; }

  private:
    [[noreturn]] void corruptionError(const std::string &what,
                                      const std::string &line);
    void finish();

    std::string path_;
    std::ifstream in_;
    TraceReadMode mode_;
    int version_ = 1;
    bool finished_ = false;
    bool sawFooter_ = false;
    uint64_t lineNo_ = 1;       ///< line just read (header = 1)
    uint64_t lineStartByte_ = 0; ///< byte offset of that line
    uint64_t nextByte_ = 0;      ///< byte offset one past it
    uint64_t checksum_ = traceChecksumSeed;
    uint64_t warned_ = 0;
    TraceCorruptionSummary summary_;
};

} // namespace pico::trace

#endif // PICO_TRACE_TRACE_FILE_HPP
