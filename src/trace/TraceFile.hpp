/**
 * @file
 * Address-trace serialization.
 *
 * The paper's pipeline streams traces between processes (probed
 * executable -> Etrans -> cheetah). TraceFile provides the
 * equivalent decoupling for this library: write a trace once, replay
 * it into any number of simulators later, or exchange traces with
 * external tools. The format is a dinero-like text form — one record
 * per line, `<kind> <hex-address>` with kind 0 = data read, 1 = data
 * write, 2 = instruction fetch — plus a one-line header.
 */

#ifndef PICO_TRACE_TRACE_FILE_HPP
#define PICO_TRACE_TRACE_FILE_HPP

#include <fstream>
#include <string>

#include "support/Logging.hpp"
#include "trace/Access.hpp"

namespace pico::trace
{

/** Streams accesses to a trace file. */
class TraceFileWriter
{
  public:
    /** Magic first line of the format. */
    static constexpr const char *header = "picoeval-trace-v1";

    /** Open (and truncate) the file; fatal() on failure. */
    explicit TraceFileWriter(const std::string &path);

    /** Append one access. */
    void write(const Access &a);

    /** Sink-compatible overload. */
    void operator()(const Access &a) { write(a); }

    /** Records written so far. */
    uint64_t count() const { return count_; }

    /** Flush and close; implicit in the destructor. */
    void close();

  private:
    std::ofstream out_;
    uint64_t count_ = 0;
};

/** Replays a trace file into a sink. */
class TraceFileReader
{
  public:
    /** Open the file; fatal() on failure or a bad header. */
    explicit TraceFileReader(const std::string &path);

    /**
     * Read the next access.
     * @return false at end of file
     */
    bool next(Access &a);

    /**
     * Replay the whole remaining file.
     * @return records delivered
     */
    template <typename Sink>
    uint64_t
    replay(Sink &&sink)
    {
        uint64_t n = 0;
        Access a;
        while (next(a)) {
            sink(a);
            ++n;
        }
        return n;
    }

  private:
    std::ifstream in_;
};

} // namespace pico::trace

#endif // PICO_TRACE_TRACE_FILE_HPP
