#include "trace/ColumnarTrace.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "support/FaultInjection.hpp"
#include "support/Metrics.hpp"
#include "support/TraceEvents.hpp"
#include "trace/TraceErrors.hpp"

namespace pico::trace
{

namespace
{

/** Fixed byte counts of the on-disk layout. */
constexpr size_t fileHeaderWords = 8;
constexpr size_t fileHeaderBytes =
    traceMagicV3Bytes + fileHeaderWords * 8;
constexpr size_t blockHeaderBytes = 32;

/** Zigzag-encode a signed delta. */
uint64_t
zigzag(int64_t d)
{
    return (static_cast<uint64_t>(d) << 1) ^
           static_cast<uint64_t>(d >> 63);
}

/** Zigzag-decode. */
int64_t
unzigzag(uint64_t z)
{
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

/** Append one LEB128 varint. */
void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

/**
 * Read one LEB128 varint from [p, end).
 * @return bytes consumed, 0 on truncation/overlong input
 */
size_t
getVarint(const uint8_t *p, const uint8_t *end, uint64_t &v)
{
    v = 0;
    unsigned shift = 0;
    for (size_t i = 0; p + i < end && i < 10; ++i) {
        v |= static_cast<uint64_t>(p[i] & 0x7f) << shift;
        if (!(p[i] & 0x80))
            return i + 1;
        shift += 7;
    }
    return 0;
}

/** Little-endian scalar writes into a byte vector. */
void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
readU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
readU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Packed kind-stream length for `count` records (2 bits each). */
size_t
kindBytesFor(uint32_t count)
{
    return (static_cast<size_t>(count) + 3) / 4;
}

/** Parsed v3 block header. */
struct BlockHeader
{
    uint32_t magic = 0;
    uint32_t count = 0;
    uint64_t firstAddr = 0;
    uint32_t deltaBytes = 0;
    uint32_t kindBytes = 0;
    uint64_t checksum = 0;
};

BlockHeader
readBlockHeader(const uint8_t *p)
{
    BlockHeader h;
    h.magic = readU32(p);
    h.count = readU32(p + 4);
    h.firstAddr = readU64(p + 8);
    h.deltaBytes = readU32(p + 16);
    h.kindBytes = readU32(p + 20);
    h.checksum = readU64(p + 24);
    return h;
}

} // namespace

namespace detail
{

void
BlockEncoder::add(int kind, uint64_t addr)
{
    if (count == 0) {
        firstAddr = addr;
    } else {
        int64_t delta = static_cast<int64_t>(addr - lastAddr);
        putVarint(deltas, zigzag(delta));
    }
    if ((count & 3) == 0)
        kinds.push_back(0);
    kinds.back() = static_cast<uint8_t>(
        kinds.back() | (static_cast<unsigned>(kind) << ((count & 3) * 2)));
    lastAddr = addr;
    checksum = traceChecksumStep(checksum, kind, addr);
    ++count;
}

bool
decodeBlock(const uint8_t *deltas, size_t delta_bytes,
            const uint8_t *kinds, size_t kind_bytes,
            uint32_t count, uint64_t first_addr,
            BlockScratch &scratch, uint64_t &checksum_out)
{
    if (count == 0)
        return false;
    if (kind_bytes != kindBytesFor(count))
        return false;

    scratch.addrs.resize(count);
    scratch.kinds.resize(count);

    // Kind column: 2 bits per record; the reserved value 3 is
    // corruption (kinds are 0/1/2 only).
    for (uint32_t i = 0; i < count; ++i) {
        uint8_t k = static_cast<uint8_t>(
            (kinds[i >> 2] >> ((i & 3) * 2)) & 3);
        if (k > 2)
            return false;
        scratch.kinds[i] = k;
    }

    // Address column: first address verbatim, then zigzag deltas.
    uint64_t addr = first_addr;
    scratch.addrs[0] = addr;
    const uint8_t *p = deltas;
    const uint8_t *end = deltas + delta_bytes;
    for (uint32_t i = 1; i < count; ++i) {
        uint64_t z = 0;
        size_t used = getVarint(p, end, z);
        if (used == 0)
            return false;
        p += used;
        addr += static_cast<uint64_t>(unzigzag(z));
        scratch.addrs[i] = addr;
    }
    if (p != end)
        return false; // trailing bytes in the delta stream

    uint64_t sum = traceChecksumSeed;
    for (uint32_t i = 0; i < count; ++i)
        sum = traceChecksumStep(sum, scratch.kinds[i],
                                scratch.addrs[i]);
    checksum_out = sum;
    return true;
}

} // namespace detail

// --- ColumnarTraceBuffer -----------------------------------------------

ColumnarTraceBuffer::ColumnarTraceBuffer(uint32_t block_capacity)
    : blockCapacity_(block_capacity), open_(block_capacity)
{
    fatalIf(block_capacity == 0, "zero columnar block capacity");
}

void
ColumnarTraceBuffer::append(const Access &a)
{
    if (open_.full()) {
        Block b;
        b.count = open_.count;
        b.firstAddr = open_.firstAddr;
        b.checksum = open_.checksum;
        b.deltas = std::move(open_.deltas);
        b.kinds = std::move(open_.kinds);
        closed_.push_back(std::move(b));
        open_.reset();
    }
    int kind = a.isInstr ? 2 : (a.isWrite ? 1 : 0);
    open_.add(kind, a.addr);
    checksum_ = traceChecksumStep(checksum_, kind, a.addr);
    ++size_;
}

size_t
ColumnarTraceBuffer::blockCount() const
{
    return closed_.size() + (open_.count > 0 ? 1 : 0);
}

uint64_t
ColumnarTraceBuffer::encodedBytes() const
{
    uint64_t bytes = 0;
    for (const auto &b : closed_)
        bytes += b.deltas.size() + b.kinds.size();
    return bytes + open_.deltas.size() + open_.kinds.size();
}

BlockView
ColumnarTraceBuffer::decodeBlock(size_t index,
                                 BlockScratch &scratch) const
{
    fatalIf(index >= blockCount(), "columnar block ", index,
            " out of range");
    const uint8_t *deltas;
    size_t delta_bytes, kind_bytes;
    const uint8_t *kinds;
    uint32_t count;
    uint64_t first, expect;
    if (index < closed_.size()) {
        const Block &b = closed_[index];
        deltas = b.deltas.data();
        delta_bytes = b.deltas.size();
        kinds = b.kinds.data();
        kind_bytes = b.kinds.size();
        count = b.count;
        first = b.firstAddr;
        expect = b.checksum;
    } else {
        // The open tail block: decode straight from the encoder's
        // streams (no mutation — concurrent decodes stay safe).
        deltas = open_.deltas.data();
        delta_bytes = open_.deltas.size();
        kinds = open_.kinds.data();
        kind_bytes = open_.kinds.size();
        count = open_.count;
        first = open_.firstAddr;
        expect = open_.checksum;
    }
    uint64_t sum = 0;
    bool ok = detail::decodeBlock(deltas, delta_bytes, kinds,
                                  kind_bytes, count, first, scratch,
                                  sum);
    panicIf(!ok || sum != expect,
            "in-memory columnar block failed to decode");
    BlockView view;
    view.addrs = scratch.addrs.data();
    view.kinds = scratch.kinds.data();
    view.count = count;
    return view;
}

void
ColumnarTraceBuffer::sealOpenBlock() const
{
    openView_.count = open_.count;
    openView_.firstAddr = open_.firstAddr;
    openView_.checksum = open_.checksum;
    openView_.deltas = open_.deltas;
    openView_.kinds = open_.kinds;
    openViewCount_ = open_.count;
}

const ColumnarTraceBuffer::Block &
ColumnarTraceBuffer::block(size_t index) const
{
    fatalIf(index >= blockCount(), "columnar block ", index,
            " out of range");
    if (index < closed_.size())
        return closed_[index];
    // Serial paths only (serialization, verification): the cached
    // seal is refreshed whenever the tail grew.
    if (openViewCount_ != open_.count)
        sealOpenBlock();
    return openView_;
}

// --- ColumnarTraceWriter -----------------------------------------------

ColumnarTraceWriter::ColumnarTraceWriter(const std::string &path,
                                         uint32_t block_capacity)
    : path_(path),
      out_(path, std::ios::trunc | std::ios::binary),
      blockCapacity_(block_capacity), open_(block_capacity)
{
    fatalIf(block_capacity == 0, "zero columnar block capacity");
    if (!out_)
        ioFatal("cannot open trace file '", path, "' for writing");
    // Magic plus a placeholder header; every field but the block
    // capacity is patched by close(). An unsealed header marks a
    // crash mid-write — truncation is never a clean end-of-trace.
    std::vector<uint8_t> head;
    head.insert(head.end(), traceMagicV3,
                traceMagicV3 + std::strlen(traceMagicV3));
    head.resize(traceMagicV3Bytes, 0);
    putU64(head, blockCapacity_);
    for (size_t i = 1; i < fileHeaderWords; ++i)
        putU64(head, 0);
    out_.write(reinterpret_cast<const char *>(head.data()),
               static_cast<std::streamsize>(head.size()));
    if (!out_)
        ioFatal("trace file '", path_, "' write failed");
}

ColumnarTraceWriter::~ColumnarTraceWriter()
{
    try {
        close();
    } catch (const std::exception &e) {
        warn("trace file '", path_,
             "' close failed during unwind: ", e.what());
    }
}

void
ColumnarTraceWriter::write(const Access &a)
{
    if (open_.full())
        flushBlock();
    int kind = a.isInstr ? 2 : (a.isWrite ? 1 : 0);
    open_.add(kind, a.addr);
    checksum_ = traceChecksumStep(checksum_, kind, a.addr);
    ++count_;
}

void
ColumnarTraceWriter::flushBlock()
{
    if (open_.count == 0)
        return;
    offsets_.push_back(static_cast<uint64_t>(out_.tellp()));
    std::vector<uint8_t> header;
    putU32(header, columnarBlockMagic);
    putU32(header, open_.count);
    putU64(header, open_.firstAddr);
    putU32(header, static_cast<uint32_t>(open_.deltas.size()));
    putU32(header, static_cast<uint32_t>(open_.kinds.size()));
    putU64(header, open_.checksum);
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    out_.write(reinterpret_cast<const char *>(open_.deltas.data()),
               static_cast<std::streamsize>(open_.deltas.size()));
    out_.write(reinterpret_cast<const char *>(open_.kinds.data()),
               static_cast<std::streamsize>(open_.kinds.size()));
    if (!out_)
        ioFatal("trace file '", path_, "' write failed");
    open_.reset();
}

void
ColumnarTraceWriter::close()
{
    if (!out_.is_open())
        return;
    // Sealing is the writer's one heavyweight step (index + header
    // patch + flush); traced so a request stalled here is visible —
    // and attributed to its request via the thread's TraceContext.
    support::TimedSpan span("trace.seal", "trace");
    support::faultPoint("ColumnarTraceWriter::close:before-index");
    flushBlock();
    uint64_t index_offset = static_cast<uint64_t>(out_.tellp());
    std::vector<uint8_t> tail;
    for (uint64_t off : offsets_)
        putU64(tail, off);
    out_.write(reinterpret_cast<const char *>(tail.data()),
               static_cast<std::streamsize>(tail.size()));
    support::faultPoint("ColumnarTraceWriter::close:before-seal");
    uint64_t file_bytes = index_offset + tail.size();
    // Patch the header: counts, index position, checksum, seal.
    std::vector<uint8_t> head;
    putU64(head, blockCapacity_);
    putU64(head, count_);
    putU64(head, static_cast<uint64_t>(offsets_.size()));
    putU64(head, index_offset);
    putU64(head, checksum_);
    putU64(head, columnarHeaderSeal);
    out_.seekp(static_cast<std::streamoff>(traceMagicV3Bytes));
    out_.write(reinterpret_cast<const char *>(head.data()),
               static_cast<std::streamsize>(head.size()));
    out_.flush();
    if (!out_)
        ioFatal("trace file '", path_, "' write failed");
    PICO_METRIC_COUNT("tracefile.write.bytes", file_bytes);
    PICO_METRIC_COUNT("tracefile.write.records", count_);
    out_.close();
}

// --- ColumnarCorruptionSummary -----------------------------------------

std::string
ColumnarCorruptionSummary::describe() const
{
    std::ostringstream oss;
    oss << recordsRead << " record(s) read in " << salvagedBlocks
        << " block(s)";
    if (corruptBlocks > 0)
        oss << ", " << corruptBlocks << " corrupt block(s) skipped";
    if (headerTruncated)
        oss << ", header unsealed (file truncated)";
    if (checksumMismatch)
        oss << ", file checksum mismatch";
    uint64_t dropped = droppedRecords();
    if (dropped > 0)
        oss << "; " << dropped << " record(s) dropped";
    if (clean())
        oss << "; clean";
    return oss.str();
}

// --- ColumnarTraceReader -----------------------------------------------

ColumnarTraceReader::ColumnarTraceReader(const std::string &path,
                                         TraceReadMode mode)
    : path_(path), mode_(mode)
{
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
        ioFatal("cannot open trace file '", path, "'");
    struct stat st = {};
    if (::fstat(fd_, &st) != 0) {
        ::close(fd_);
        fd_ = -1;
        ioFatal("cannot stat trace file '", path, "'");
    }
    bytes_ = static_cast<size_t>(st.st_size);
    if (bytes_ > 0) {
        void *map = ::mmap(nullptr, bytes_, PROT_READ, MAP_PRIVATE,
                           fd_, 0);
        if (map == MAP_FAILED) {
            ::close(fd_);
            fd_ = -1;
            ioFatal("cannot map trace file '", path, "'");
        }
        data_ = static_cast<const uint8_t *>(map);
    }

    // From here on a throw must release the mapping by hand: the
    // destructor never runs for a partially constructed object.
    try {
        parseHeader();
    } catch (...) {
        if (data_ != nullptr)
            ::munmap(const_cast<uint8_t *>(data_), bytes_);
        ::close(fd_);
        fd_ = -1;
        data_ = nullptr;
        throw;
    }
}

void
ColumnarTraceReader::parseHeader()
{
    if (bytes_ < traceMagicV3Bytes ||
        std::memcmp(data_, traceMagicV3,
                    std::strlen(traceMagicV3)) != 0)
        corruptFatal("'", path_,
                     "' is not a picoeval v3 trace file");

    bool sealed = false;
    uint64_t block_count = 0, index_offset = 0;
    if (bytes_ >= fileHeaderBytes) {
        const uint8_t *h = data_ + traceMagicV3Bytes;
        blockCapacity_ =
            static_cast<uint32_t>(readU64(h));
        recordCount_ = readU64(h + 8);
        block_count = readU64(h + 16);
        index_offset = readU64(h + 24);
        fileChecksum_ = readU64(h + 32);
        sealed = readU64(h + 40) == columnarHeaderSeal;
    }
    if (blockCapacity_ == 0)
        blockCapacity_ = ColumnarTraceBuffer::defaultBlockCapacity;

    bool index_ok =
        sealed && index_offset >= fileHeaderBytes &&
        block_count <= (bytes_ / 8) &&
        index_offset + block_count * 8 <= bytes_;
    if (index_ok) {
        offsets_.reserve(block_count);
        for (uint64_t b = 0; b < block_count; ++b)
            offsets_.push_back(
                readU64(data_ + index_offset + b * 8));
        summary_.expectedRecords = recordCount_;
    } else {
        summary_.headerTruncated = true;
        if (mode_ == TraceReadMode::Strict)
            corruptionError(sealed
                                ? "corrupt block index"
                                : "truncated: header unsealed "
                                  "(writer did not close)",
                            0, traceMagicV3Bytes);
        // Whole-block salvage without an index: walk the blocks
        // region forward; the walk stops at the first byte run that
        // is not a well-formed block header.
        warn("trace '", path_, "': header unsealed or index ",
             "corrupt; scanning for salvageable blocks");
        uint64_t off = fileHeaderBytes;
        while (off + blockHeaderBytes <= bytes_) {
            BlockHeader h = readBlockHeader(data_ + off);
            if (h.magic != columnarBlockMagic ||
                h.count == 0 || h.count > blockCapacity_)
                break;
            uint64_t end = off + blockHeaderBytes + h.deltaBytes +
                           h.kindBytes;
            if (end > bytes_)
                break;
            offsets_.push_back(off);
            off = end;
        }
        recordCount_ = 0;
        fileChecksum_ = 0;
    }
}

ColumnarTraceReader::~ColumnarTraceReader()
{
    if (data_ != nullptr)
        ::munmap(const_cast<uint8_t *>(data_), bytes_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
ColumnarTraceReader::corruptionError(const std::string &what,
                                     size_t block,
                                     uint64_t offset) const
{
    corruptFatal("trace '", path_, "' block ", block, " (byte ",
                 offset, "): ", what);
}

bool
ColumnarTraceReader::decodeBlock(size_t index, BlockScratch &scratch,
                                 BlockView &view)
{
    fatalIf(index >= offsets_.size(), "columnar block ", index,
            " out of range");
    uint64_t off = offsets_[index];
    auto corrupt = [&](const char *what) {
        ++summary_.corruptBlocks;
        if (mode_ == TraceReadMode::Strict)
            corruptionError(what, index, off);
        if (warned_++ < 3)
            warn("trace '", path_, "' block ", index, " (byte ",
                 off, "): skipping corrupt block: ", what);
        return false;
    };

    if (off + blockHeaderBytes > bytes_)
        return corrupt("block offset out of bounds");
    BlockHeader h = readBlockHeader(data_ + off);
    if (h.magic != columnarBlockMagic)
        return corrupt("bad block magic");
    if (h.count == 0 || h.count > blockCapacity_)
        return corrupt("block record count out of range");
    uint64_t end =
        off + blockHeaderBytes + h.deltaBytes + h.kindBytes;
    if (end > bytes_)
        return corrupt("block streams out of bounds");

    const uint8_t *deltas = data_ + off + blockHeaderBytes;
    const uint8_t *kinds = deltas + h.deltaBytes;
    uint64_t sum = 0;
    if (!detail::decodeBlock(deltas, h.deltaBytes, kinds,
                             h.kindBytes, h.count, h.firstAddr,
                             scratch, sum))
        return corrupt("malformed block streams");
    if (sum != h.checksum)
        return corrupt("block checksum mismatch");

    for (uint32_t i = 0; i < h.count; ++i)
        runningChecksum_ = traceChecksumStep(
            runningChecksum_, scratch.kinds[i], scratch.addrs[i]);
    ++summary_.salvagedBlocks;
    view.addrs = scratch.addrs.data();
    view.kinds = scratch.kinds.data();
    view.count = h.count;
    return true;
}

void
ColumnarTraceReader::finish(uint64_t delivered)
{
    summary_.recordsRead = delivered;
    if (!summary_.headerTruncated) {
        if (runningChecksum_ != fileChecksum_)
            summary_.checksumMismatch = true;
        if (mode_ == TraceReadMode::Strict) {
            if (delivered != recordCount_)
                corruptFatal("trace '", path_, "': header expects ",
                             recordCount_, " record(s) but ",
                             delivered, " were read");
            if (summary_.checksumMismatch)
                corruptFatal("trace '", path_,
                             "': file checksum mismatch");
        }
    }
    PICO_METRIC_COUNT("tracefile.read.bytes", bytes_);
    PICO_METRIC_COUNT("tracefile.read.records", delivered);
    if (mode_ == TraceReadMode::Lenient && !summary_.clean())
        warn("trace '", path_, "': ", summary_.describe());
}

// --- Version sniffing --------------------------------------------------

int
sniffTraceFileVersion(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        ioFatal("cannot open trace file '", path, "'");
    char head[32] = {};
    ssize_t n = ::read(fd, head, sizeof head);
    ::close(fd);
    auto matches = [&](const char *tag) {
        size_t len = std::strlen(tag);
        return n >= 0 && static_cast<size_t>(n) >= len &&
               std::memcmp(head, tag, len) == 0;
    };
    if (matches(traceMagicV3))
        return 3;
    if (matches(traceHeaderV2))
        return 2;
    if (matches(traceHeaderV1))
        return 1;
    corruptFatal("'", path, "' is not a picoeval trace file");
}

} // namespace pico::trace
