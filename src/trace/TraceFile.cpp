#include "trace/TraceFile.hpp"

#include <iomanip>

namespace pico::trace
{

TraceFileWriter::TraceFileWriter(const std::string &path)
    : out_(path, std::ios::trunc)
{
    fatalIf(!out_, "cannot open trace file '", path, "' for writing");
    out_ << header << '\n';
}

void
TraceFileWriter::write(const Access &a)
{
    int kind = a.isInstr ? 2 : (a.isWrite ? 1 : 0);
    out_ << kind << ' ' << std::hex << a.addr << std::dec << '\n';
    ++count_;
}

void
TraceFileWriter::close()
{
    if (out_.is_open()) {
        out_.flush();
        fatalIf(!out_, "trace file write failed");
        out_.close();
    }
}

TraceFileReader::TraceFileReader(const std::string &path) : in_(path)
{
    fatalIf(!in_, "cannot open trace file '", path, "'");
    std::string line;
    fatalIf(!std::getline(in_, line) ||
                line != TraceFileWriter::header,
            "'", path, "' is not a picoeval trace file");
}

bool
TraceFileReader::next(Access &a)
{
    int kind;
    if (!(in_ >> kind >> std::hex >> a.addr))
        return false;
    in_ >> std::dec;
    fatalIf(kind < 0 || kind > 2, "corrupt trace record");
    a.isInstr = kind == 2;
    a.isWrite = kind == 1;
    return true;
}

} // namespace pico::trace
