#include "trace/TraceFile.hpp"

#include <sstream>

#include "support/FaultInjection.hpp"
#include "support/Metrics.hpp"
#include "trace/TraceErrors.hpp"

namespace pico::trace
{

uint64_t
traceChecksumStep(uint64_t sum, int kind, uint64_t addr)
{
    constexpr uint64_t prime = 0x100000001b3ULL;
    sum ^= static_cast<uint64_t>(kind) & 0xff;
    sum *= prime;
    for (int i = 0; i < 8; ++i) {
        sum ^= (addr >> (8 * i)) & 0xff;
        sum *= prime;
    }
    return sum;
}

std::string
TraceCorruptionSummary::describe() const
{
    std::ostringstream oss;
    oss << recordsRead << " record(s) read";
    if (corruptLines > 0)
        oss << ", " << corruptLines << " corrupt line(s) skipped";
    if (footerMissing)
        oss << ", footer missing (file truncated)";
    if (countMismatch)
        oss << ", footer expected " << expectedRecords
            << " record(s)";
    if (checksumMismatch)
        oss << ", checksum mismatch";
    uint64_t dropped = droppedRecords();
    if (dropped > 0)
        oss << "; " << dropped << " record(s) dropped";
    if (clean())
        oss << "; clean";
    return oss.str();
}

// --- TraceFileWriter ---------------------------------------------------

TraceFileWriter::TraceFileWriter(const std::string &path)
    : path_(path), out_(path, std::ios::trunc)
{
    if (!out_)
        ioFatal("cannot open trace file '", path, "' for writing");
    out_ << traceHeaderV2 << '\n';
}

TraceFileWriter::~TraceFileWriter()
{
    try {
        close();
    } catch (const std::exception &e) {
        warn("trace file '", path_,
             "' close failed during unwind: ", e.what());
    }
}

void
TraceFileWriter::write(const Access &a)
{
    int kind = a.isInstr ? 2 : (a.isWrite ? 1 : 0);
    out_ << kind << ' ' << std::hex << a.addr << std::dec << '\n';
    checksum_ = traceChecksumStep(checksum_, kind, a.addr);
    ++count_;
}

void
TraceFileWriter::close()
{
    if (!out_.is_open())
        return;
    support::faultPoint("TraceFileWriter::close:before-footer");
    out_ << traceFooterTag << ' ' << count_ << ' ' << std::hex
         << checksum_ << std::dec << '\n';
    out_.flush();
    if (!out_)
        ioFatal("trace file '", path_, "' write failed");
    // Batched once per file: the write loop stays untouched.
    auto bytes = out_.tellp();
    if (bytes > 0)
        PICO_METRIC_COUNT("tracefile.write.bytes",
                          static_cast<uint64_t>(bytes));
    PICO_METRIC_COUNT("tracefile.write.records", count_);
    out_.close();
}

// --- TraceFileReader ---------------------------------------------------

namespace
{

/** Strict whole-line parse of `<kind> <hex-address>`. */
bool
parseRecord(const std::string &line, int &kind, uint64_t &addr)
{
    std::istringstream iss(line);
    if (!(iss >> kind >> std::hex >> addr))
        return false;
    if (kind < 0 || kind > 2)
        return false;
    std::string rest;
    return !(iss >> rest); // trailing junk is corruption
}

/** Strict whole-line parse of `%footer <count> <checksum>`. */
bool
parseFooter(const std::string &line, uint64_t &count, uint64_t &sum)
{
    std::istringstream iss(line);
    std::string tag;
    if (!(iss >> tag >> count >> std::hex >> sum))
        return false;
    if (tag != traceFooterTag)
        return false;
    std::string rest;
    return !(iss >> rest);
}

/** Shorten a corrupt line for an error message. */
std::string
excerpt(const std::string &line)
{
    constexpr size_t maxLen = 32;
    if (line.size() <= maxLen)
        return line;
    return line.substr(0, maxLen) + "...";
}

} // namespace

TraceFileReader::TraceFileReader(const std::string &path,
                                 TraceReadMode mode)
    : path_(path), in_(path), mode_(mode)
{
    if (!in_)
        ioFatal("cannot open trace file '", path, "'");
    std::string line;
    if (!std::getline(in_, line) ||
        (line != traceHeaderV1 && line != traceHeaderV2))
        corruptFatal("'", path, "' is not a picoeval trace file");
    version_ = line == traceHeaderV2 ? 2 : 1;
    nextByte_ = line.size() + 1;
}

void
TraceFileReader::corruptionError(const std::string &what,
                                 const std::string &line)
{
    std::string detail = line.empty() ? "" : ": '" + excerpt(line) + "'";
    corruptFatal("trace '", path_, "' line ", lineNo_, " (byte ",
                 lineStartByte_, "): ", what, detail);
}

void
TraceFileReader::finish()
{
    finished_ = true;
    // Batched once per file: nextByte_ already tracks how far the
    // parse advanced, so the read loop stays untouched.
    PICO_METRIC_COUNT("tracefile.read.bytes", nextByte_);
    PICO_METRIC_COUNT("tracefile.read.records",
                      summary_.recordsRead);
    if (mode_ == TraceReadMode::Lenient && !summary_.clean())
        warn("trace '", path_, "': ", summary_.describe());
}

bool
TraceFileReader::next(Access &a)
{
    std::string line;
    while (!finished_) {
        if (!std::getline(in_, line)) {
            if (version_ == 2 && !sawFooter_) {
                summary_.footerMissing = true;
                ++lineNo_;
                lineStartByte_ = nextByte_;
                if (mode_ == TraceReadMode::Strict)
                    corruptionError(
                        "truncated: end of file without a footer",
                        "");
            }
            finish();
            return false;
        }
        ++lineNo_;
        lineStartByte_ = nextByte_;
        nextByte_ += line.size() + 1;

        if (version_ == 2 &&
            line.compare(0, std::char_traits<char>::length(
                                traceFooterTag),
                         traceFooterTag) == 0) {
            uint64_t count = 0, sum = 0;
            if (!parseFooter(line, count, sum)) {
                summary_.footerMissing = true;
                if (mode_ == TraceReadMode::Strict)
                    corruptionError("malformed footer", line);
                finish();
                return false;
            }
            sawFooter_ = true;
            summary_.expectedRecords = count;
            if (count != summary_.recordsRead) {
                summary_.countMismatch = true;
                if (mode_ == TraceReadMode::Strict)
                    corruptionError(
                        detail::concat("footer expects ", count,
                                       " record(s) but ",
                                       summary_.recordsRead,
                                       " were read"),
                        "");
            }
            if (sum != checksum_) {
                summary_.checksumMismatch = true;
                if (mode_ == TraceReadMode::Strict)
                    corruptionError("checksum mismatch", "");
            }
            std::string extra;
            if (std::getline(in_, extra)) {
                ++summary_.corruptLines;
                if (mode_ == TraceReadMode::Strict)
                    corruptionError("trailing data after footer",
                                    extra);
            }
            finish();
            return false;
        }

        int kind = 0;
        uint64_t addr = 0;
        if (!parseRecord(line, kind, addr)) {
            ++summary_.corruptLines;
            if (mode_ == TraceReadMode::Strict)
                corruptionError("malformed trace record", line);
            if (warned_++ < 3)
                warn("trace '", path_, "' line ", lineNo_, " (byte ",
                     lineStartByte_, "): skipping malformed record '",
                     excerpt(line), "'");
            continue;
        }
        checksum_ = traceChecksumStep(checksum_, kind, addr);
        ++summary_.recordsRead;
        a.addr = addr;
        a.isInstr = kind == 2;
        a.isWrite = kind == 1;
        return true;
    }
    return false;
}

} // namespace pico::trace
