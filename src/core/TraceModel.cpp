#include "core/TraceModel.hpp"

#include <algorithm>

namespace pico::core
{

double
ComponentParams::p2() const
{
    if (lav <= 1.0)
        return 0.0;
    return (lav - (1.0 + p1)) / (lav - 1.0);
}

double
ComponentParams::uLines(double lineWords) const
{
    fatalIf(lineWords <= 0.0, "line size must be positive");
    // Closed form of equation 4.5 under equation 4.4; see header.
    return u1 * (lineWords + lav - 1.0) / (lineWords * lav);
}

void
GranuleAccumulator::closeGranule()
{
    if (buffer_.empty())
        return;

    std::sort(buffer_.begin(), buffer_.end());
    buffer_.erase(std::unique(buffer_.begin(), buffer_.end()),
                  buffer_.end());

    // Walk the sorted unique words, splitting into runs of
    // consecutive addresses.
    uint64_t unique = buffer_.size();
    uint64_t runs = 0;
    uint64_t isolated = 0;
    size_t i = 0;
    while (i < buffer_.size()) {
        size_t j = i + 1;
        while (j < buffer_.size() && buffer_[j] == buffer_[j - 1] + 1)
            ++j;
        ++runs;
        if (j - i == 1)
            ++isolated;
        i = j;
    }

    ++granules_;
    sumUnique_ += static_cast<double>(unique);
    sumIsolatedFraction_ += static_cast<double>(isolated) /
                            static_cast<double>(unique);
    sumRunLength_ += static_cast<double>(unique) /
                     static_cast<double>(runs);
    buffer_.clear();
}

ComponentParams
GranuleAccumulator::params() const
{
    panicIf(granules_ == 0, "params() with no closed granules");
    ComponentParams p;
    auto n = static_cast<double>(granules_);
    p.u1 = sumUnique_ / n;
    p.p1 = sumIsolatedFraction_ / n;
    p.lav = sumRunLength_ / n;
    return p;
}

} // namespace pico::core
