#include "core/DilationModel.hpp"

#include <cmath>

#include "core/AhhModel.hpp"
#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::core
{

double
DilationModel::icacheCollisions(uint32_t sets, uint32_t assoc,
                                double line_bytes) const
{
    double uL = iParams_.uLines(line_bytes / 4.0);
    return ahh::collisions(uL, sets, assoc);
}

double
DilationModel::ucacheCollisions(const cache::CacheConfig &config,
                                double dilation) const
{
    double line_words = static_cast<double>(config.lineBytes) / 4.0;
    double contracted =
        std::max(line_words / dilation, minLineBytes / 4.0);
    // Equation 4.13's occupancy uses u(L, d) = uD(L) + uI(L / d):
    // only the instruction component of the trace dilates.
    double uLd = udParams_.uLines(line_words) +
                 uiParams_.uLines(contracted);
    return ahh::collisions(uLd, config.sets, config.assoc);
}

double
DilationModel::estimateIcacheMisses(const cache::CacheConfig &config,
                                    double dilation,
                                    const MissOracle &oracle) const
{
    config.validate();
    fatalIf(dilation <= 0.0, "dilation must be positive");

    // Lemma 1: misses on a trace dilated by d equal the misses of the
    // same cache with line size L / d on the undilated trace.
    double contracted =
        std::max(static_cast<double>(config.lineBytes) / dilation,
                 minLineBytes);

    // Feasible contracted line size: simulate directly.
    double rounded = std::round(contracted);
    if (std::abs(contracted - rounded) < 1e-9 &&
        isPowerOfTwo(static_cast<uint64_t>(rounded))) {
        cache::CacheConfig c = config;
        c.lineBytes = static_cast<uint32_t>(rounded);
        return oracle(c);
    }

    // Interpolate between the neighbouring powers of two via the AHH
    // collision model (equation 4.12): M is modeled as a linear
    // function of Coll, pinned to the simulated misses at both
    // endpoints.
    auto lower = static_cast<uint32_t>(
        uint64_t{1} << log2Floor(static_cast<uint64_t>(contracted)));
    uint32_t upper = lower * 2;

    cache::CacheConfig cl = config;
    cl.lineBytes = lower;
    cache::CacheConfig cu = config;
    cu.lineBytes = upper;

    double m_l = oracle(cl);
    double m_u = oracle(cu);
    double coll_l = icacheCollisions(config.sets, config.assoc,
                                     static_cast<double>(lower));
    double coll_u = icacheCollisions(config.sets, config.assoc,
                                     static_cast<double>(upper));
    double coll_x = icacheCollisions(config.sets, config.assoc,
                                     contracted);

    double denom = coll_l - coll_u;
    if (std::abs(denom) < 1e-12) {
        // The model sees no collision difference between the two
        // endpoint caches; fall back to log-linear interpolation in
        // line size.
        double t = (std::log2(contracted) - std::log2(lower));
        return m_l + (m_u - m_l) * t;
    }
    double slope = (m_l - m_u) / denom;
    double intercept = (m_u * coll_l - m_l * coll_u) / denom;
    double estimate = slope * coll_x + intercept;
    return std::max(estimate, 0.0);
}

double
DilationModel::estimateUcacheMisses(const cache::CacheConfig &config,
                                    double dilation,
                                    double ref_misses) const
{
    config.validate();
    fatalIf(dilation <= 0.0, "dilation must be positive");
    fatalIf(ref_misses < 0.0, "negative reference misses");

    // Equation 4.15: scale the simulated reference misses by the
    // ratio of dilated to undilated collisions.
    double coll_ref = ucacheCollisions(config, 1.0);
    double coll_dil = ucacheCollisions(config, dilation);
    return ahh::scaleMisses(ref_misses, coll_ref, coll_dil);
}

} // namespace pico::core
