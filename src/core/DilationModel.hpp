/**
 * @file
 * The dilation model (section 4): estimating cache misses of an
 * arbitrary VLIW processor from reference-trace simulations.
 *
 * Given the text dilation d of a target processor relative to the
 * reference processor, the model estimates:
 *
 *  - data-cache misses: unchanged (assumption 1, equation 4.1);
 *  - instruction-cache misses: misses of the same cache with its
 *    line size contracted by d on the *undilated* reference trace
 *    (Lemma 1, equation 4.10). When L/d is not a feasible
 *    (power-of-two) line size, misses are interpolated between the
 *    two neighbouring feasible line sizes using the AHH collision
 *    model (equations 4.11–4.12);
 *  - unified-cache misses: extrapolated from the reference-trace
 *    misses by the ratio of collision counts computed with the
 *    instruction component's line size contracted by d (equations
 *    4.13–4.15).
 */

#ifndef PICO_CORE_DILATION_MODEL_HPP
#define PICO_CORE_DILATION_MODEL_HPP

#include <functional>

#include "cache/CacheConfig.hpp"
#include "core/TraceModel.hpp"

namespace pico::core
{

/**
 * Supplies simulated reference-trace misses for feasible caches.
 * Typically backed by SinglePassSim results, one per line size.
 */
using MissOracle = std::function<double(const cache::CacheConfig &)>;

/** Dilation-aware miss estimator for one application. */
class DilationModel
{
  public:
    /**
     * @param instr parameters of the (pure) instruction trace
     * @param unified_instr parameters of the instruction component
     *        of the unified trace
     * @param unified_data parameters of the data component of the
     *        unified trace
     */
    DilationModel(ComponentParams instr, ComponentParams unified_instr,
                  ComponentParams unified_data)
        : iParams_(instr), uiParams_(unified_instr),
          udParams_(unified_data)
    {}

    /**
     * Estimate instruction-cache misses under dilation d.
     * @param config the (feasible) instruction cache
     * @param dilation text dilation d >= 1 (d == 1 returns the
     *        oracle's value directly)
     * @param oracle reference-trace misses for feasible caches
     */
    double estimateIcacheMisses(const cache::CacheConfig &config,
                                double dilation,
                                const MissOracle &oracle) const;

    /**
     * Estimate unified-cache misses under dilation d.
     * @param config the (feasible) unified cache
     * @param dilation text dilation d >= 1
     * @param ref_misses simulated misses of config on the reference
     *        unified trace
     */
    double estimateUcacheMisses(const cache::CacheConfig &config,
                                double dilation,
                                double ref_misses) const;

    /**
     * Estimate data-cache misses under dilation (equation 4.1: the
     * data trace is assumed unchanged across processors).
     */
    static double
    estimateDcacheMisses(double ref_misses)
    {
        return ref_misses;
    }

    /**
     * Collisions of an instruction cache with a (possibly
     * fractional) line size in bytes, per the instruction-trace
     * parameters.
     */
    double icacheCollisions(uint32_t sets, uint32_t assoc,
                            double line_bytes) const;

    /**
     * Collisions of the unified cache under dilation d (equations
     * 4.13–4.14): u(L, d) = uD(L) + uI(L / d).
     */
    double ucacheCollisions(const cache::CacheConfig &config,
                            double dilation) const;

    const ComponentParams &instrParams() const { return iParams_; }
    const ComponentParams &unifiedInstrParams() const { return uiParams_; }
    const ComponentParams &unifiedDataParams() const { return udParams_; }

    /** Smallest feasible line size in bytes (one word). */
    static constexpr double minLineBytes = 4.0;

  private:
    ComponentParams iParams_;
    ComponentParams uiParams_;
    ComponentParams udParams_;
};

} // namespace pico::core

#endif // PICO_CORE_DILATION_MODEL_HPP
