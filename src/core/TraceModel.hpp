/**
 * @file
 * AHH trace-parameter extraction (the paper's TraceModeler).
 *
 * The trace is divided into granules of a fixed number of references;
 * within each granule the unique word addresses are sorted so that
 * consecutive addresses form *runs*. Three basic parameters are
 * averaged over granules (section 4.2):
 *
 *   u(1) — unique word references per granule,
 *   p1   — fraction of unique references that are isolated
 *          (runs of length one),
 *   lav  — mean run length.
 *
 * From these the derived parameters p2 (equation 4.4) and u(L)
 * (equation 4.5) follow. Instruction traces are modeled whole
 * (ItraceModeler); unified traces are split into their instruction
 * and data components, each with its own parameters (UtraceModeler).
 */

#ifndef PICO_CORE_TRACE_MODEL_HPP
#define PICO_CORE_TRACE_MODEL_HPP

#include <cstdint>
#include <vector>

#include "support/Logging.hpp"
#include "trace/Access.hpp"

namespace pico::core
{

/** Default granule size for instruction traces (references). */
constexpr uint64_t defaultIGranule = 10000;
/** Default granule size for unified traces (references). */
constexpr uint64_t defaultUGranule = 200000;

/** The AHH basic parameters of one trace component. */
struct ComponentParams
{
    /** Average unique word references per granule, u(1). */
    double u1 = 0.0;
    /** Average fraction of isolated (singular) references, p1. */
    double p1 = 0.0;
    /** Average run length, lav. */
    double lav = 1.0;

    /**
     * Run-continuation probability p2 (equation 4.4):
     * p2 = (lav - (1 + p1)) / (lav - 1), defined as 0 when lav == 1.
     */
    double p2() const;

    /**
     * Average unique cache lines per granule, u(L), for a line of
     * lineWords words (equation 4.5). Substituting equation 4.4 into
     * 4.5 gives the equivalent closed form
     *
     *     u(L) = u(1) * (L + lav - 1) / (L * lav)
     *
     * which is what we evaluate; it is exact at L = 1 and tends to
     * the number of runs u(1)/lav as L grows. lineWords may be any
     * positive real — the dilation model deliberately evaluates it
     * at infeasible line sizes L / d.
     */
    double uLines(double lineWords) const;
};

/**
 * Shared granule machinery: buffers word addresses, and at each
 * granule boundary sorts them and accumulates run statistics.
 */
class GranuleAccumulator
{
  public:
    /** Fold one word address into the current granule. */
    void addWord(uint64_t word) { buffer_.push_back(word); }

    /** Close the current granule and accumulate its statistics. */
    void closeGranule();

    /** Number of closed granules. */
    uint64_t granules() const { return granules_; }

    /** Averaged parameters over all closed granules. */
    ComponentParams params() const;

    /** Word addresses buffered in the open granule. */
    size_t pendingWords() const { return buffer_.size(); }

  private:
    std::vector<uint64_t> buffer_;
    uint64_t granules_ = 0;
    double sumUnique_ = 0.0;
    double sumIsolatedFraction_ = 0.0;
    double sumRunLength_ = 0.0;
};

/** Trace modeler for instruction traces. */
class ItraceModeler
{
  public:
    explicit ItraceModeler(uint64_t granule_refs = defaultIGranule)
        : granuleRefs_(granule_refs)
    {
        fatalIf(granule_refs == 0, "granule size must be positive");
    }

    /** Feed one access; non-instruction references are ignored. */
    void
    access(const trace::Access &a)
    {
        if (!a.isInstr)
            return;
        acc_.addWord(a.addr / 4);
        if (++refs_ % granuleRefs_ == 0)
            acc_.closeGranule();
    }

    /** Sink-compatible overload. */
    void operator()(const trace::Access &a) { access(a); }

    /** Parameters of the instruction trace. */
    ComponentParams
    params() const
    {
        fatalIf(acc_.granules() == 0,
                "trace shorter than one granule (", granuleRefs_,
                " refs)");
        return acc_.params();
    }

    uint64_t granules() const { return acc_.granules(); }

  private:
    uint64_t granuleRefs_;
    uint64_t refs_ = 0;
    GranuleAccumulator acc_;
};

/**
 * Trace modeler for unified traces: granules are counted over all
 * references, but instruction and data addresses are sorted and
 * modeled separately (section 4.3).
 */
class UtraceModeler
{
  public:
    explicit UtraceModeler(uint64_t granule_refs = defaultUGranule)
        : granuleRefs_(granule_refs)
    {
        fatalIf(granule_refs == 0, "granule size must be positive");
    }

    void
    access(const trace::Access &a)
    {
        if (a.isInstr)
            iAcc_.addWord(a.addr / 4);
        else
            dAcc_.addWord(a.addr / 4);
        if (++refs_ % granuleRefs_ == 0) {
            iAcc_.closeGranule();
            dAcc_.closeGranule();
        }
    }

    void operator()(const trace::Access &a) { access(a); }

    /** Parameters of the instruction component. */
    ComponentParams
    instrParams() const
    {
        fatalIf(iAcc_.granules() == 0, "unified trace shorter than "
                                       "one granule");
        return iAcc_.params();
    }

    /** Parameters of the data component. */
    ComponentParams
    dataParams() const
    {
        fatalIf(dAcc_.granules() == 0, "unified trace shorter than "
                                       "one granule");
        return dAcc_.params();
    }

    uint64_t granules() const { return iAcc_.granules(); }

  private:
    uint64_t granuleRefs_;
    uint64_t refs_ = 0;
    GranuleAccumulator iAcc_;
    GranuleAccumulator dAcc_;
};

} // namespace pico::core

#endif // PICO_CORE_TRACE_MODEL_HPP
