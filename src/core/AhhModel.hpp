/**
 * @file
 * AHH analytic cache model: set-occupancy and collision math.
 *
 * Implements equations 4.6–4.8 of the paper (after Agarwal, Horowitz
 * and Hennessy): with u(L) unique lines per granule mapped uniformly
 * into S sets, the probability that a set holds exactly `a` lines is
 * binomial, and the expected collisions of an A-way cache are
 *
 *     Coll(S, A, L) = u(L) - sum_{a=0}^{A} S * a * P(L, a).       (4.8)
 *
 * The direct evaluation of 4.8 subtracts two nearly equal numbers
 * when collisions are rare; section 5.3 of the paper notes this and
 * prescribes an alternate procedure that sums "an adequate initial
 * segment of an infinite monotonically decreasing series". Because
 * sum_a S*a*P(L,a) over all a equals u(L), that series is the tail
 *
 *     Coll(S, A, L) = sum_{a=A+1}^{inf} S * a * P(L, a)
 *
 * which is what collisions() evaluates; collisionsDirect() retains
 * the textbook form for validation.
 */

#ifndef PICO_CORE_AHH_MODEL_HPP
#define PICO_CORE_AHH_MODEL_HPP

#include <cstdint>

namespace pico::core::ahh
{

/**
 * Binomial probability that a set receives exactly `a` of uL lines
 * (equation 4.6), generalized to real-valued uL via the gamma
 * function.
 * @param uL unique lines per granule (may be fractional)
 * @param a occupancy
 * @param sets number of sets S
 */
double setOccupancyProb(double uL, uint32_t a, uint32_t sets);

/**
 * Expected collisions (equation 4.8) via the numerically stable
 * tail-series form.
 * @param uL unique lines per granule
 * @param sets number of sets S
 * @param assoc associativity A
 */
double collisions(double uL, uint32_t sets, uint32_t assoc);

/**
 * Expected collisions via the direct form of equation 4.8; exact in
 * well-conditioned regimes, used to validate collisions().
 */
double collisionsDirect(double uL, uint32_t sets, uint32_t assoc);

/**
 * Steady-state miss estimate for cache C2 from the misses of C1
 * (equation 4.7): m(C2) = Coll(C2) / Coll(C1) * m(C1). The caller
 * supplies the two collision values and the measured misses.
 */
double scaleMisses(double misses_c1, double coll_c1, double coll_c2);

} // namespace pico::core::ahh

#endif // PICO_CORE_AHH_MODEL_HPP
