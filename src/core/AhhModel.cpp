#include "core/AhhModel.hpp"

#include <cmath>

#include "support/Logging.hpp"

namespace pico::core::ahh
{

namespace
{

/** log of the generalized binomial coefficient C(n, a), real n. */
double
logBinomialCoeff(double n, uint32_t a)
{
    return std::lgamma(n + 1.0) - std::lgamma(a + 1.0) -
           std::lgamma(n - a + 1.0);
}

} // namespace

double
setOccupancyProb(double uL, uint32_t a, uint32_t sets)
{
    fatalIf(sets == 0, "setOccupancyProb with zero sets");
    fatalIf(uL < 0.0, "negative unique-line count");
    if (static_cast<double>(a) > uL)
        return 0.0;
    if (sets == 1)
        // Degenerate: every line lands in the single set.
        return std::abs(static_cast<double>(a) - uL) < 1.0 ? 1.0 : 0.0;
    double log_p = -std::log(static_cast<double>(sets));
    double log_q = std::log1p(-1.0 / static_cast<double>(sets));
    double log_prob = logBinomialCoeff(uL, a) +
                      static_cast<double>(a) * log_p +
                      (uL - static_cast<double>(a)) * log_q;
    return std::exp(log_prob);
}

double
collisions(double uL, uint32_t sets, uint32_t assoc)
{
    fatalIf(assoc == 0, "collisions with zero associativity");
    if (uL <= 0.0)
        return 0.0;
    if (sets == 1) {
        // All lines share one set; everything beyond A collides in
        // expectation (matching the 4.8 form with the degenerate
        // occupancy distribution).
        return uL > assoc ? uL - assoc : 0.0;
    }

    // Tail series: sum_{a=A+1}^{inf} S * a * P(a). The binomial pmf
    // decays geometrically past its mean, so truncate once the terms
    // become negligible relative to the partial sum.
    double total = 0.0;
    double s = static_cast<double>(sets);
    auto a_limit = static_cast<uint32_t>(uL) + 2;
    for (uint32_t a = assoc + 1; a <= a_limit; ++a) {
        double term = s * static_cast<double>(a) *
                      setOccupancyProb(uL, a, sets);
        total += term;
        if (term < 1e-15 * (total + 1e-300) && a > assoc + 4)
            break;
    }
    // Collisions cannot exceed the number of unique lines; clip the
    // tiny positive excess the real-valued pmf can accumulate.
    return std::min(total, uL);
}

double
collisionsDirect(double uL, uint32_t sets, uint32_t assoc)
{
    fatalIf(assoc == 0, "collisions with zero associativity");
    if (uL <= 0.0)
        return 0.0;
    if (sets == 1)
        return uL > assoc ? uL - assoc : 0.0;
    double s = static_cast<double>(sets);
    double kept = 0.0;
    for (uint32_t a = 0; a <= assoc; ++a)
        kept += s * static_cast<double>(a) *
                setOccupancyProb(uL, a, sets);
    return uL - kept;
}

double
scaleMisses(double misses_c1, double coll_c1, double coll_c2)
{
    fatalIf(misses_c1 < 0.0, "negative miss count");
    if (coll_c1 <= 0.0) {
        // The reference cache is collision-free under the model; the
        // ratio is undefined, so fall back to the measured misses.
        return misses_c1;
    }
    return misses_c1 * coll_c2 / coll_c1;
}

} // namespace pico::core::ahh
