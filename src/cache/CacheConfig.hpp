/**
 * @file
 * Cache configuration: sets, associativity, line size, ports.
 *
 * A configuration is *feasible* (paper, section 4.1) when its line
 * size and number of sets are powers of two and its associativity is
 * a positive integer. The dilation model deliberately reasons about
 * infeasible line sizes (L / d) and interpolates between feasible
 * neighbours.
 */

#ifndef PICO_CACHE_CACHE_CONFIG_HPP
#define PICO_CACHE_CACHE_CONFIG_HPP

#include <cstdint>
#include <string>

#include "cache/Policy.hpp"

namespace pico::cache
{

/** Static description of one cache. */
struct CacheConfig
{
    uint32_t sets = 1;
    uint32_t assoc = 1;
    uint32_t lineBytes = 32;
    uint32_t ports = 1;
    ReplacementPolicy replacement = ReplacementPolicy::LRU;
    WritePolicy write = WritePolicy::WriteBack;

    uint64_t
    sizeBytes() const
    {
        return static_cast<uint64_t>(sets) * assoc * lineBytes;
    }

    /** True when sets and line size are powers of two, assoc >= 1. */
    bool feasible() const;

    /** fatal() unless the configuration is feasible. */
    void validate() const;

    /**
     * Human-readable name, e.g. "16KB/2way/32B". Non-default policy
     * axes append suffixes ("/fifo", "/rand", "/wt") so design-point
     * ids stay unique across the extended space while default-space
     * names — and therefore walk outputs and cache keys derived from
     * them — are byte-identical to the LRU-only era.
     */
    std::string name() const;

    /**
     * Build a configuration from total size.
     * @param size_bytes total capacity (power of two)
     * @param assoc associativity
     * @param line_bytes line size (power of two)
     */
    static CacheConfig fromSize(uint64_t size_bytes, uint32_t assoc,
                                uint32_t line_bytes,
                                uint32_t ports = 1);

    /**
     * Relative silicon area: data array plus tag overhead, scaled by
     * a port factor (multi-ported arrays grow superlinearly).
     * Write-through caches carry no dirty bit, so their tag state is
     * one bit per line cheaper; replacement state is part of the
     * fixed per-line overhead either way (default write-back area is
     * unchanged from the LRU-only model).
     */
    double areaCost() const;

    bool
    operator==(const CacheConfig &other) const
    {
        return sets == other.sets && assoc == other.assoc &&
               lineBytes == other.lineBytes && ports == other.ports &&
               replacement == other.replacement &&
               write == other.write;
    }
};

} // namespace pico::cache

#endif // PICO_CACHE_CACHE_CONFIG_HPP
