#include "cache/MissClassifier.hpp"

namespace pico::cache
{

namespace
{

CacheConfig
fullyAssociativeTwin(const CacheConfig &config)
{
    CacheConfig twin;
    twin.sets = 1;
    twin.assoc = config.sets * config.assoc;
    twin.lineBytes = config.lineBytes;
    return twin;
}

} // namespace

MissClassifier::MissClassifier(const CacheConfig &config)
    : config_(config), target_(config, /*track_compulsory=*/true),
      fullyAssociative_(fullyAssociativeTwin(config))
{}

void
MissClassifier::access(uint64_t addr, bool write)
{
    ++breakdown_.accesses;
    uint64_t compulsory_before = target_.compulsoryMisses();
    bool target_hit = target_.access(addr, write).hit;
    bool full_hit = fullyAssociative_.access(addr, write).hit;
    if (target_hit)
        return;
    if (target_.compulsoryMisses() != compulsory_before)
        ++breakdown_.compulsory;
    else if (!full_hit)
        ++breakdown_.capacity;
    else
        ++breakdown_.conflict;
}

} // namespace pico::cache
