#include "cache/Hierarchy.hpp"

#include "support/Logging.hpp"

namespace pico::cache
{

bool
HierarchyConfig::inclusionFeasible() const
{
    return ucache.sizeBytes() >= icache.sizeBytes() &&
           ucache.sizeBytes() >= dcache.sizeBytes() &&
           ucache.lineBytes >= icache.lineBytes &&
           ucache.lineBytes >= dcache.lineBytes;
}

double
HierarchyConfig::areaCost() const
{
    return icache.areaCost() + dcache.areaCost() + ucache.areaCost();
}

HierarchySim::HierarchySim(const HierarchyConfig &config)
    : config_(config), icache_(config.icache), dcache_(config.dcache),
      ucache_(config.ucache)
{
    fatalIf(!config.inclusionFeasible(),
            "hierarchy violates the inclusion requirement");
}

void
HierarchySim::access(const trace::Access &a)
{
    if (a.isInstr)
        icache_.access(a.addr, false);
    else
        dcache_.access(a.addr, a.isWrite);
    // Decoupled: the unified cache sees the entire trace.
    ucache_.access(a.addr, a.isWrite);
}

HierarchyStats
HierarchySim::stats() const
{
    HierarchyStats s;
    s.iAccesses = icache_.accesses();
    s.iMisses = icache_.misses();
    s.dAccesses = dcache_.accesses();
    s.dMisses = dcache_.misses();
    s.uAccesses = ucache_.accesses();
    s.uMisses = ucache_.misses();
    s.dWriteTraffic = dcache_.writeTraffic();
    s.uWriteTraffic = ucache_.writeTraffic();
    return s;
}

CoupledHierarchySim::CoupledHierarchySim(const HierarchyConfig &config)
    : config_(config), icache_(config.icache), dcache_(config.dcache),
      ucache_(config.ucache)
{
    fatalIf(!config.inclusionFeasible(),
            "hierarchy violates the inclusion requirement");
}

void
CoupledHierarchySim::access(const trace::Access &a)
{
    AccessResult l1 = a.isInstr ? icache_.access(a.addr, false)
                                : dcache_.access(a.addr, a.isWrite);
    if (l1.hit)
        return;

    ++uAccesses_;
    AccessResult l2 = ucache_.access(a.addr, a.isWrite);
    if (!l2.hit) {
        ++uMisses_;
        if (l2.hasVictim) {
            // Inclusion: evicting an L2 line removes any copies of
            // its bytes from both L1s.
            uint64_t lo = l2.victimLine * config_.ucache.lineBytes;
            uint64_t hi = lo + config_.ucache.lineBytes;
            icache_.invalidateRange(lo, hi);
            dcache_.invalidateRange(lo, hi);
        }
    }
}

HierarchyStats
CoupledHierarchySim::stats() const
{
    HierarchyStats s;
    s.iAccesses = icache_.accesses();
    s.iMisses = icache_.misses();
    s.dAccesses = dcache_.accesses();
    s.dMisses = dcache_.misses();
    s.uAccesses = uAccesses_;
    s.uMisses = uMisses_;
    s.dWriteTraffic = dcache_.writeTraffic();
    s.uWriteTraffic = ucache_.writeTraffic();
    return s;
}

} // namespace pico::cache
