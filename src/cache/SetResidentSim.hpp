/**
 * @file
 * Set-resident multi-configuration simulator for non-stack
 * replacement policies (DEW-style).
 *
 * Cheetah's single-pass trick (SinglePassSim) depends on LRU's stack
 * property: the resident set of an A-way cache is a prefix of the
 * resident set of an (A+1)-way cache, so one truncated LRU stack per
 * set yields every associativity at once. FIFO and random
 * replacement break that property — eviction order is independent of
 * reuse — so each (sets, assoc) geometry needs its own resident-set
 * state. This simulator keeps one flat tag array *per geometry* and
 * updates all of them in a single pass over the trace: still one
 * trace traversal per line size (the expensive part — decode plus
 * memory streaming), at the cost of per-geometry tag updates.
 *
 * Unlike SinglePassSim it also carries a dirty bit per resident
 * line, so it reports write-back traffic (dirty-line writebacks on
 * eviction) alongside misses for every geometry. Write-through
 * traffic needs no simulation at all: with write-allocate it is
 * exactly the store count, which the caller reads from the trace.
 *
 * Determinism contract for random replacement: victims for geometry
 * (S, A) are drawn from policyRng(S, A, line), and a draw happens
 * only on a miss in a full set, in trace order. The per-config
 * reference CacheSim draws from the same stream under the same rule,
 * so both produce bit-identical miss/writeback counts and the result
 * is independent of thread count and evaluation order.
 */

#ifndef PICO_CACHE_SET_RESIDENT_SIM_HPP
#define PICO_CACHE_SET_RESIDENT_SIM_HPP

#include <cstdint>
#include <vector>

#include "cache/CacheConfig.hpp"
#include "cache/Policy.hpp"
#include "support/CancelToken.hpp"
#include "support/Random.hpp"
#include "trace/Access.hpp"

namespace pico::cache
{

/** All-geometry simulator for one line size and one policy. */
class SetResidentSim
{
  public:
    /** Sentinel tag of an empty way (never a real line tag). */
    static constexpr uint64_t emptyTag = ~0ULL;

    /**
     * @param line_bytes fixed line size (power of two)
     * @param min_sets smallest set count simulated (power of two)
     * @param max_sets largest set count simulated (power of two)
     * @param max_assoc largest associativity simulated
     * @param policy replacement policy of every simulated geometry
     * @param policy_seed seed of the random-victim streams
     */
    SetResidentSim(uint32_t line_bytes, uint32_t min_sets,
                   uint32_t max_sets, uint32_t max_assoc,
                   ReplacementPolicy policy,
                   uint64_t policy_seed = policyDefaultSeed);

    /** Feed one reference. */
    void access(uint64_t addr, bool write);

    /** Sink-compatible overload. */
    void operator()(const trace::Access &a) { access(a.addr, a.isWrite); }

    /**
     * Feed a span of decoded columnar references. `kinds` holds the
     * per-reference kind codes of BlockView (1 = data write; 0 and 2
     * are reads); nullptr means all reads. Bit-identical to calling
     * access() per reference — geometries are independent, so the
     * geometry-outer loop only reorders writes to disjoint state.
     */
    void accessBlock(const uint64_t *addrs, const uint8_t *kinds,
                     size_t n);

    /**
     * Feed an entire buffered trace; cancellation unwinds with
     * CancelledError and leaves the counts partial (caller discards).
     */
    void replay(const std::vector<trace::Access> &buffer,
                const support::CancelToken *cancel = nullptr);

    /** Total references observed. */
    uint64_t accesses() const { return accesses_; }

    /** Total store references observed (write-through traffic). */
    uint64_t stores() const { return stores_; }

    /** Misses of the geometry (sets, assoc) at this line size. */
    uint64_t misses(uint32_t sets, uint32_t assoc) const;

    /** Dirty-line writebacks of the geometry (write-back model). */
    uint64_t writebacks(uint32_t sets, uint32_t assoc) const;

    /** Misses of a covered configuration. */
    uint64_t misses(const CacheConfig &config) const;

    /** Writebacks of a covered configuration (write-back model). */
    uint64_t writebacks(const CacheConfig &config) const;

    /**
     * True when the configuration's geometry is simulated and its
     * replacement policy matches. The write policy is ignored: both
     * write policies are write-allocate, so misses are shared, and
     * writebacks() reports the write-back model's traffic.
     */
    bool covers(const CacheConfig &config) const;

    ReplacementPolicy policy() const { return policy_; }
    uint32_t lineBytes() const { return lineBytes_; }
    uint32_t minSets() const { return minSets_; }
    uint32_t maxSets() const { return maxSets_; }
    uint32_t maxAssoc() const { return maxAssoc_; }

  private:
    /**
     * One simulated geometry: a flat resident-set array of
     * sets x assoc ways plus its statistics.
     */
    struct Geometry
    {
        uint32_t sets;
        uint32_t assoc;
        /** [set * assoc + way]; emptyTag when vacant. */
        std::vector<uint64_t> tags;
        /** Dirty bit per way, parallel to tags. */
        std::vector<uint8_t> dirty;
        /** FIFO: per-set next-victim way (round-robin = oldest). */
        std::vector<uint32_t> fifoPtr;
        /** Random: this geometry's deterministic victim stream. */
        Rng rng{0};
        uint64_t misses = 0;
        uint64_t writebacks = 0;
    };

    size_t geometryIndex(uint32_t sets, uint32_t assoc) const;
    void touch(Geometry &g, uint64_t line, bool write);

    uint32_t lineBytes_;
    uint32_t minSets_;
    uint32_t maxSets_;
    uint32_t maxAssoc_;
    uint32_t lineShift_;
    ReplacementPolicy policy_;
    uint64_t accesses_ = 0;
    uint64_t stores_ = 0;
    std::vector<Geometry> geometries_;
};

} // namespace pico::cache

#endif // PICO_CACHE_SET_RESIDENT_SIM_HPP
