#include "cache/SinglePassSim.hpp"

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::cache
{

SinglePassSim::SinglePassSim(uint32_t line_bytes, uint32_t min_sets,
                             uint32_t max_sets, uint32_t max_assoc)
    : lineBytes_(line_bytes), minSets_(min_sets), maxSets_(max_sets),
      maxAssoc_(max_assoc)
{
    fatalIf(!isPowerOfTwo(line_bytes) || line_bytes < 4,
            "bad line size ", line_bytes);
    fatalIf(!isPowerOfTwo(min_sets) || !isPowerOfTwo(max_sets) ||
                min_sets > max_sets,
            "bad set-count range [", min_sets, ", ", max_sets, "]");
    fatalIf(max_assoc == 0, "max associativity must be positive");

    size_t levels = log2Floor(max_sets) - log2Floor(min_sets) + 1;
    stacks_.resize(levels);
    hist_.resize(levels);
    for (size_t lv = 0; lv < levels; ++lv) {
        stacks_[lv].resize(static_cast<size_t>(minSets_) << lv);
        hist_[lv].assign(maxAssoc_, 0);
    }
}

size_t
SinglePassSim::levelOf(uint32_t sets) const
{
    fatalIf(!isPowerOfTwo(sets) || sets < minSets_ || sets > maxSets_,
            "set count ", sets, " outside simulated range");
    return log2Floor(sets) - log2Floor(minSets_);
}

void
SinglePassSim::access(uint64_t addr)
{
    ++accesses_;
    uint64_t line = addr / lineBytes_;
    for (size_t lv = 0; lv < stacks_.size(); ++lv) {
        uint64_t sets = static_cast<uint64_t>(minSets_) << lv;
        auto &stack = stacks_[lv][line & (sets - 1)];

        // Find the stack distance of this line within its set.
        size_t depth = stack.size();
        for (size_t d = 0; d < stack.size(); ++d) {
            if (stack[d] == line) {
                depth = d;
                break;
            }
        }
        if (depth < stack.size()) {
            // Hit at distance `depth` for associativities > depth.
            hist_[lv][depth] += 1;
            stack.erase(stack.begin() +
                        static_cast<ptrdiff_t>(depth));
        } else if (stack.size() >= maxAssoc_) {
            // Beyond the deepest tracked distance: a miss for every
            // simulated associativity; drop the LRU entry.
            stack.pop_back();
        }
        stack.insert(stack.begin(), line);
    }
}

void
SinglePassSim::replay(const std::vector<trace::Access> &buffer)
{
    for (const auto &a : buffer)
        access(a.addr);
}

uint64_t
SinglePassSim::misses(uint32_t sets, uint32_t assoc) const
{
    fatalIf(assoc == 0 || assoc > maxAssoc_,
            "associativity ", assoc, " outside simulated range");
    const auto &hist = hist_[levelOf(sets)];
    uint64_t hits = 0;
    for (uint32_t d = 0; d < assoc; ++d)
        hits += hist[d];
    return accesses_ - hits;
}

uint64_t
SinglePassSim::misses(const CacheConfig &config) const
{
    fatalIf(!covers(config),
            "configuration ", config.name(), " not covered");
    return misses(config.sets, config.assoc);
}

bool
SinglePassSim::covers(const CacheConfig &config) const
{
    return config.lineBytes == lineBytes_ && config.assoc >= 1 &&
           config.assoc <= maxAssoc_ && isPowerOfTwo(config.sets) &&
           config.sets >= minSets_ && config.sets <= maxSets_;
}

std::vector<CacheConfig>
SinglePassSim::coveredConfigs() const
{
    std::vector<CacheConfig> out;
    for (uint32_t sets = minSets_; sets <= maxSets_; sets *= 2) {
        for (uint32_t assoc = 1; assoc <= maxAssoc_; ++assoc) {
            CacheConfig cfg;
            cfg.sets = sets;
            cfg.assoc = assoc;
            cfg.lineBytes = lineBytes_;
            out.push_back(cfg);
        }
        if (sets == maxSets_)
            break;
    }
    return out;
}

} // namespace pico::cache
