#include "cache/SinglePassSim.hpp"

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::cache
{

SinglePassSim::SinglePassSim(uint32_t line_bytes, uint32_t min_sets,
                             uint32_t max_sets, uint32_t max_assoc)
    : lineBytes_(line_bytes), minSets_(min_sets), maxSets_(max_sets),
      maxAssoc_(max_assoc)
{
    fatalIf(!isPowerOfTwo(line_bytes) || line_bytes < 4,
            "bad line size ", line_bytes);
    fatalIf(!isPowerOfTwo(min_sets) || !isPowerOfTwo(max_sets) ||
                min_sets > max_sets,
            "bad set-count range [", min_sets, ", ", max_sets, "]");
    fatalIf(max_assoc == 0, "max associativity must be positive");
    lineShift_ = log2Floor(line_bytes);

    size_t levels = log2Floor(max_sets) - log2Floor(min_sets) + 1;
    tags_.resize(levels);
    hist_.resize(levels);
    for (size_t lv = 0; lv < levels; ++lv) {
        size_t sets = static_cast<size_t>(minSets_) << lv;
        tags_[lv].assign(sets * maxAssoc_, emptyTag);
        hist_[lv].assign(static_cast<size_t>(maxAssoc_) + 1, 0);
    }
}

size_t
SinglePassSim::levelOf(uint32_t sets) const
{
    fatalIf(!isPowerOfTwo(sets) || sets < minSets_ || sets > maxSets_,
            "set count ", sets, " outside simulated range");
    return log2Floor(sets) - log2Floor(minSets_);
}

inline void
SinglePassSim::touchLevel(size_t lv, uint64_t line)
{
    const uint64_t set_mask =
        (static_cast<uint64_t>(minSets_) << lv) - 1;
    const size_t assoc = maxAssoc_;
    uint64_t *stack = tags_[lv].data() + (line & set_mask) * assoc;

    // Stack-distance search, no early exit: all slots are read and
    // the smallest matching depth wins via conditional moves. Vacant
    // slots hold emptyTag, which no real tag equals.
    size_t depth = assoc;
    for (size_t d = assoc; d-- > 0;)
        depth = stack[d] == line ? d : depth;

    // Exactly one histogram bin per reference: bin `assoc` is the
    // miss bin (stack distance >= every simulated associativity).
    hist_[lv][depth] += 1;

    // LRU update: shift [0, end) down one slot, insert at the top.
    // On a hit end == depth (move-to-front); on a miss end == assoc-1
    // (the LRU tag at the bottom is evicted by the shift).
    size_t end = depth < assoc ? depth : assoc - 1;
    for (size_t d = end; d > 0; --d)
        stack[d] = stack[d - 1];
    stack[0] = line;
}

void
SinglePassSim::access(uint64_t addr)
{
    ++accesses_;
    uint64_t line = addr >> lineShift_;
    // MRU filter: a reference to the line just touched hits at depth
    // 0 in every level and the move-to-front is a no-op everywhere,
    // so one counter stands in for the whole bank update. misses()
    // folds the counter into every level's depth-0 bin.
    if (line == lastLine_) {
        ++mruRepeats_;
        return;
    }
    lastLine_ = line;
    for (size_t lv = 0; lv < tags_.size(); ++lv)
        touchLevel(lv, line);
}

void
SinglePassSim::accessBlock(const uint64_t *addrs, size_t n)
{
    // Compact adjacent same-line runs first (the MRU filter of
    // access(), applied once for all levels), then sweep the
    // compacted lines level by level. Levels are independent, so
    // running the level loop outside the address loop reorders only
    // writes to disjoint state — miss counts are bit-identical to
    // the access() ordering. The payoff is locality: one level's
    // tags stay cached across the span.
    compact_.clear();
    uint64_t last = lastLine_;
    for (size_t i = 0; i < n; ++i) {
        uint64_t line = addrs[i] >> lineShift_;
        if (line != last) {
            compact_.push_back(line);
            last = line;
        }
    }
    lastLine_ = last;
    mruRepeats_ += n - compact_.size();
    for (size_t lv = 0; lv < tags_.size(); ++lv)
        for (uint64_t line : compact_)
            touchLevel(lv, line);
    accesses_ += n;
}

void
SinglePassSim::replay(const std::vector<trace::Access> &buffer,
                      const support::CancelToken *cancel)
{
    support::CancelCheck check(cancel);
    for (const auto &a : buffer) {
        check.tick("SinglePassSim::replay");
        access(a.addr);
    }
}

uint64_t
SinglePassSim::misses(uint32_t sets, uint32_t assoc) const
{
    fatalIf(assoc == 0 || assoc > maxAssoc_,
            "associativity ", assoc, " outside simulated range");
    const auto &hist = hist_[levelOf(sets)];
    // Filtered MRU repeats are depth-0 hits at every level, hence
    // hits for every associativity >= 1.
    uint64_t hits = mruRepeats_;
    for (uint32_t d = 0; d < assoc; ++d)
        hits += hist[d];
    return accesses_ - hits;
}

uint64_t
SinglePassSim::misses(const CacheConfig &config) const
{
    fatalIf(!covers(config),
            "configuration ", config.name(), " not covered");
    return misses(config.sets, config.assoc);
}

bool
SinglePassSim::covers(const CacheConfig &config) const
{
    return config.lineBytes == lineBytes_ && config.assoc >= 1 &&
           config.assoc <= maxAssoc_ && isPowerOfTwo(config.sets) &&
           config.sets >= minSets_ && config.sets <= maxSets_;
}

std::vector<CacheConfig>
SinglePassSim::coveredConfigs() const
{
    std::vector<CacheConfig> out;
    for (uint32_t sets = minSets_; sets <= maxSets_; sets *= 2) {
        for (uint32_t assoc = 1; assoc <= maxAssoc_; ++assoc) {
            CacheConfig cfg;
            cfg.sets = sets;
            cfg.assoc = assoc;
            cfg.lineBytes = lineBytes_;
            out.push_back(cfg);
        }
        if (sets == maxSets_)
            break;
    }
    return out;
}

} // namespace pico::cache
