/**
 * @file
 * Two-level memory hierarchy simulation and the stall-cycle model.
 *
 * The paper's hierarchical evaluation relies on the inclusion
 * property (section 3.1): the unified L2 contains everything in the
 * L1s, so L2 misses are independent of the L1 configurations and can
 * be obtained by simulating the *entire* unified address trace.
 * HierarchySim implements exactly that decoupled evaluation.
 * CoupledHierarchySim is the conventional filtered simulation (L2
 * sees only L1 misses, with back-invalidation enforcing inclusion);
 * it exists to quantify how good the decoupling approximation is.
 */

#ifndef PICO_CACHE_HIERARCHY_HPP
#define PICO_CACHE_HIERARCHY_HPP

#include <cstdint>

#include "cache/CacheConfig.hpp"
#include "cache/CacheSim.hpp"
#include "trace/Access.hpp"

namespace pico::cache
{

/** Configurations plus latency parameters of a full hierarchy. */
struct HierarchyConfig
{
    CacheConfig icache;
    CacheConfig dcache;
    CacheConfig ucache;
    /** L1-miss penalty: latency of an L2 hit, in cycles. */
    uint32_t l2HitLatency = 10;
    /** L2-miss penalty: latency of main memory, in cycles. */
    uint32_t memoryLatency = 80;
    /**
     * Stall cycles charged per memory write the hierarchy generates
     * (dirty-line writeback under write-back, store write-through
     * under write-through). 0 keeps the read-only stall model of the
     * LRU-only era bit-identical.
     */
    uint32_t writeCost = 0;

    /**
     * The paper requires the L1 parameters to permit inclusion:
     * the L2 must be at least as large as each L1 and its lines at
     * least as long.
     */
    bool inclusionFeasible() const;

    /** Total area cost of the three caches. */
    double areaCost() const;
};

/** Per-level miss statistics. */
struct HierarchyStats
{
    uint64_t iAccesses = 0;
    uint64_t iMisses = 0;
    uint64_t dAccesses = 0;
    uint64_t dMisses = 0;
    uint64_t uAccesses = 0;
    uint64_t uMisses = 0;
    /** L1 data-cache memory writes (see CacheSim::writeTraffic). */
    uint64_t dWriteTraffic = 0;
    /** Unified L2 memory writes. */
    uint64_t uWriteTraffic = 0;

    /**
     * Stall cycles under the paper's additive model: every L1 miss
     * pays the L2 hit latency, every L2 miss additionally pays the
     * memory latency, and every memory write pays the (default 0)
     * write cost.
     */
    uint64_t
    stallCycles(const HierarchyConfig &cfg) const
    {
        return (iMisses + dMisses) * cfg.l2HitLatency +
               uMisses * cfg.memoryLatency +
               (dWriteTraffic + uWriteTraffic) * cfg.writeCost;
    }
};

/**
 * Decoupled hierarchy simulation (the paper's method): the L2 is
 * driven by the full unified trace regardless of the L1s.
 */
class HierarchySim
{
  public:
    explicit HierarchySim(const HierarchyConfig &config);

    /** Feed one unified-trace reference. */
    void access(const trace::Access &a);

    /** Sink-compatible overload. */
    void operator()(const trace::Access &a) { access(a); }

    HierarchyStats stats() const;
    const HierarchyConfig &config() const { return config_; }

  private:
    HierarchyConfig config_;
    CacheSim icache_;
    CacheSim dcache_;
    CacheSim ucache_;
};

/**
 * Conventional coupled simulation: L2 sees only L1 misses; inclusion
 * is enforced by back-invalidating L1 lines covered by L2 victims.
 */
class CoupledHierarchySim
{
  public:
    explicit CoupledHierarchySim(const HierarchyConfig &config);

    void access(const trace::Access &a);
    void operator()(const trace::Access &a) { access(a); }

    HierarchyStats stats() const;

  private:
    HierarchyConfig config_;
    CacheSim icache_;
    CacheSim dcache_;
    CacheSim ucache_;
    uint64_t uAccesses_ = 0;
    uint64_t uMisses_ = 0;
};

} // namespace pico::cache

#endif // PICO_CACHE_HIERARCHY_HPP
