/**
 * @file
 * Mattson stack-distance simulator for fully associative LRU caches.
 *
 * The second classic single-pass algorithm in Cheetah's family
 * (Sugumar & Abraham [17]): one pass over the trace yields the miss
 * counts of *every* fully associative LRU capacity simultaneously,
 * via the LRU stack-distance histogram. Used by the fully
 * associative analyses (three-C classification sweeps, AHH model
 * validation) and as a cross-check for SinglePassSim's single-set
 * configurations.
 */

#ifndef PICO_CACHE_STACK_SIM_HPP
#define PICO_CACHE_STACK_SIM_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/Access.hpp"

namespace pico::cache
{

/** All-capacity fully associative LRU simulator. */
class StackSim
{
  public:
    /**
     * @param line_bytes line size (power of two, >= 4)
     */
    explicit StackSim(uint32_t line_bytes);

    /** Feed one reference. */
    void access(uint64_t addr);

    /** Sink-compatible overload. */
    void operator()(const trace::Access &a) { access(a.addr); }

    /** Feed a span of addresses (one decoded columnar block). */
    void accessBlock(const uint64_t *addrs, size_t n);

    /** Total references observed. */
    uint64_t accesses() const { return accesses_; }

    /** Cold (first-reference) misses = unique lines touched. */
    uint64_t
    coldMisses() const
    {
        return static_cast<uint64_t>(stack_.size());
    }

    /**
     * Misses of a fully associative LRU cache holding
     * `capacity_lines` lines. By stack inclusion this is exact for
     * every capacity from one pass.
     */
    uint64_t misses(uint64_t capacity_lines) const;

    /** Misses of a capacity given in bytes. */
    uint64_t
    missesForBytes(uint64_t capacity_bytes) const
    {
        return misses(capacity_bytes / lineBytes_);
    }

    /**
     * Stack-distance histogram: hist[d] counts references that hit
     * at LRU depth d (0 = most recently used).
     */
    const std::vector<uint64_t> &histogram() const { return hist_; }

    uint32_t lineBytes() const { return lineBytes_; }

  private:
    uint32_t lineBytes_;
    uint32_t lineShift_ = 0;
    uint64_t accesses_ = 0;
    /** LRU stack, most recent first. */
    std::vector<uint64_t> stack_;
    std::vector<uint64_t> hist_;
};

} // namespace pico::cache

#endif // PICO_CACHE_STACK_SIM_HPP
