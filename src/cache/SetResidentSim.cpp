#include "cache/SetResidentSim.hpp"

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::cache
{

SetResidentSim::SetResidentSim(uint32_t line_bytes, uint32_t min_sets,
                               uint32_t max_sets, uint32_t max_assoc,
                               ReplacementPolicy policy,
                               uint64_t policy_seed)
    : lineBytes_(line_bytes), minSets_(min_sets), maxSets_(max_sets),
      maxAssoc_(max_assoc), policy_(policy)
{
    fatalIf(!isPowerOfTwo(line_bytes) || line_bytes < 4,
            "bad line size ", line_bytes);
    fatalIf(!isPowerOfTwo(min_sets) || !isPowerOfTwo(max_sets) ||
                min_sets > max_sets,
            "bad set-count range [", min_sets, ", ", max_sets, "]");
    fatalIf(max_assoc == 0, "max associativity must be positive");
    lineShift_ = log2Floor(line_bytes);

    size_t levels = log2Floor(max_sets) - log2Floor(min_sets) + 1;
    geometries_.reserve(levels * maxAssoc_);
    for (size_t lv = 0; lv < levels; ++lv) {
        auto sets = static_cast<uint32_t>(
            static_cast<uint64_t>(minSets_) << lv);
        for (uint32_t assoc = 1; assoc <= maxAssoc_; ++assoc) {
            Geometry g;
            g.sets = sets;
            g.assoc = assoc;
            g.tags.assign(static_cast<size_t>(sets) * assoc,
                          emptyTag);
            g.dirty.assign(static_cast<size_t>(sets) * assoc, 0);
            if (policy_ == ReplacementPolicy::FIFO)
                g.fifoPtr.assign(sets, 0);
            if (policy_ == ReplacementPolicy::Random)
                g.rng = policyRng(sets, assoc, lineBytes_,
                                  policy_seed);
            geometries_.push_back(std::move(g));
        }
    }
}

size_t
SetResidentSim::geometryIndex(uint32_t sets, uint32_t assoc) const
{
    fatalIf(!isPowerOfTwo(sets) || sets < minSets_ || sets > maxSets_,
            "set count ", sets, " outside simulated range");
    fatalIf(assoc == 0 || assoc > maxAssoc_,
            "associativity ", assoc, " outside simulated range");
    size_t lv = log2Floor(sets) - log2Floor(minSets_);
    return lv * maxAssoc_ + (assoc - 1);
}

void
SetResidentSim::touch(Geometry &g, uint64_t line, bool write)
{
    const uint32_t assoc = g.assoc;
    const uint64_t set = line & (g.sets - 1);
    uint64_t *tags = g.tags.data() + set * assoc;
    uint8_t *dirty = g.dirty.data() + set * assoc;

    // Resident-set search; also remember the first vacant way so the
    // fill phase installs in slot order (matching the reference
    // simulator's push_back order).
    uint32_t found = assoc;
    uint32_t vacant = assoc;
    for (uint32_t w = assoc; w-- > 0;) {
        if (tags[w] == line)
            found = w;
        if (tags[w] == emptyTag)
            vacant = w;
    }

    if (found != assoc) {
        // Hit. LRU reorders (move to front); FIFO/random keep stable
        // positions. Dirty state follows the line either way.
        if (policy_ == ReplacementPolicy::LRU) {
            uint8_t d = static_cast<uint8_t>(dirty[found] | write);
            for (uint32_t w = found; w > 0; --w) {
                tags[w] = tags[w - 1];
                dirty[w] = dirty[w - 1];
            }
            tags[0] = line;
            dirty[0] = d;
        } else {
            dirty[found] = static_cast<uint8_t>(dirty[found] | write);
        }
        return;
    }

    ++g.misses;
    auto installed = static_cast<uint8_t>(write);

    switch (policy_) {
    case ReplacementPolicy::LRU:
        // Evict the bottom of the recency order (way assoc-1), then
        // shift everything down and install at the top.
        if (tags[assoc - 1] != emptyTag && dirty[assoc - 1])
            ++g.writebacks;
        for (uint32_t w = assoc - 1; w > 0; --w) {
            tags[w] = tags[w - 1];
            dirty[w] = dirty[w - 1];
        }
        tags[0] = line;
        dirty[0] = installed;
        return;
    case ReplacementPolicy::FIFO: {
        // The round-robin pointer always names the oldest-installed
        // way: ways fill 0..assoc-1 in order, and replacing the
        // oldest makes its successor the new oldest.
        uint32_t w = g.fifoPtr[set];
        if (tags[w] != emptyTag && dirty[w])
            ++g.writebacks;
        tags[w] = line;
        dirty[w] = installed;
        g.fifoPtr[set] = w + 1 == assoc ? 0 : w + 1;
        return;
    }
    case ReplacementPolicy::Random: {
        // Fill vacant ways in slot order without consuming random
        // numbers; draw a victim only from a full set, so the draw
        // sequence matches the per-config reference simulator.
        uint32_t w = vacant;
        if (w == assoc) {
            w = static_cast<uint32_t>(g.rng.below(assoc));
            if (dirty[w])
                ++g.writebacks;
        }
        tags[w] = line;
        dirty[w] = installed;
        return;
    }
    }
    panic("unknown replacement policy");
}

void
SetResidentSim::access(uint64_t addr, bool write)
{
    ++accesses_;
    if (write)
        ++stores_;
    uint64_t line = addr >> lineShift_;
    // No MRU filter here: a repeat reference is a hit in every
    // geometry, but a repeat *store* after a clean install must
    // still set the dirty bit, so every reference walks the bank.
    for (auto &g : geometries_)
        touch(g, line, write);
}

void
SetResidentSim::accessBlock(const uint64_t *addrs,
                            const uint8_t *kinds, size_t n)
{
    // Geometry-outer loop for tag-array locality, exactly as
    // SinglePassSim::accessBlock: geometries are independent, so the
    // reordering touches disjoint state and the counts stay
    // bit-identical to per-reference access().
    for (auto &g : geometries_) {
        for (size_t i = 0; i < n; ++i) {
            bool write = kinds != nullptr && kinds[i] == 1;
            touch(g, addrs[i] >> lineShift_, write);
        }
    }
    accesses_ += n;
    if (kinds != nullptr) {
        for (size_t i = 0; i < n; ++i)
            stores_ += kinds[i] == 1;
    }
}

void
SetResidentSim::replay(const std::vector<trace::Access> &buffer,
                       const support::CancelToken *cancel)
{
    support::CancelCheck check(cancel);
    for (const auto &a : buffer) {
        check.tick("SetResidentSim::replay");
        access(a.addr, a.isWrite);
    }
}

uint64_t
SetResidentSim::misses(uint32_t sets, uint32_t assoc) const
{
    return geometries_[geometryIndex(sets, assoc)].misses;
}

uint64_t
SetResidentSim::writebacks(uint32_t sets, uint32_t assoc) const
{
    return geometries_[geometryIndex(sets, assoc)].writebacks;
}

uint64_t
SetResidentSim::misses(const CacheConfig &config) const
{
    fatalIf(!covers(config),
            "configuration ", config.name(), " not covered");
    return misses(config.sets, config.assoc);
}

uint64_t
SetResidentSim::writebacks(const CacheConfig &config) const
{
    fatalIf(!covers(config),
            "configuration ", config.name(), " not covered");
    return writebacks(config.sets, config.assoc);
}

bool
SetResidentSim::covers(const CacheConfig &config) const
{
    return config.replacement == policy_ &&
           config.lineBytes == lineBytes_ && config.assoc >= 1 &&
           config.assoc <= maxAssoc_ && isPowerOfTwo(config.sets) &&
           config.sets >= minSets_ && config.sets <= maxSets_;
}

} // namespace pico::cache
