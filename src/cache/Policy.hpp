/**
 * @file
 * Replacement and write-policy axes of the cache design space.
 *
 * LRU is a stack algorithm, so Cheetah-style single-pass simulation
 * (SinglePassSim) evaluates every associativity at once from stack
 * distances. FIFO and random replacement are *not* stack algorithms:
 * the set of resident lines for associativity A is not a subset of
 * the resident set for A+1, so their miss counts come from the
 * set-resident simulator (SetResidentSim) instead, one tag array per
 * geometry (DEW-style).
 *
 * Both write policies are write-allocate, so miss counts depend only
 * on the replacement policy; the policies differ only in memory
 * write traffic: write-back pays one line writeback per dirty
 * eviction, write-through pays one word write per store.
 *
 * Random replacement must be bit-identical across `--jobs` and
 * between the oracle (CacheSim) and the fast simulator, so victims
 * are drawn from an Rng::forStream stream derived purely from the
 * cache geometry — never from wall clock, thread id, or evaluation
 * order across configs.
 */

#ifndef PICO_CACHE_POLICY_HPP
#define PICO_CACHE_POLICY_HPP

#include <cstdint>
#include <string>

#include "support/Logging.hpp"
#include "support/Random.hpp"

namespace pico::cache
{

/** Line replacement policy within a set. */
enum class ReplacementPolicy : uint8_t
{
    LRU = 0,  ///< evict least-recently-used (stack algorithm)
    FIFO = 1, ///< evict oldest-installed (not a stack algorithm)
    Random = 2, ///< evict a uniformly random way (not a stack algorithm)
};

/** Store handling policy. Both are write-allocate. */
enum class WritePolicy : uint8_t
{
    WriteBack = 0,    ///< dirty lines written back on eviction
    WriteThrough = 1, ///< every store also writes memory
};

/** Short lower-case tag, e.g. "lru", "fifo", "rand". */
inline const char *
replacementName(ReplacementPolicy p)
{
    switch (p) {
    case ReplacementPolicy::LRU: return "lru";
    case ReplacementPolicy::FIFO: return "fifo";
    case ReplacementPolicy::Random: return "rand";
    }
    fatal("unknown replacement policy ",
          static_cast<unsigned>(p));
}

/** Short lower-case tag: "wb" or "wt". */
inline const char *
writePolicyName(WritePolicy p)
{
    switch (p) {
    case WritePolicy::WriteBack: return "wb";
    case WritePolicy::WriteThrough: return "wt";
    }
    fatal("unknown write policy ", static_cast<unsigned>(p));
}

/** Parse "lru"/"fifo"/"rand" (also accepts "random"). */
inline ReplacementPolicy
parseReplacement(const std::string &s)
{
    if (s == "lru")
        return ReplacementPolicy::LRU;
    if (s == "fifo")
        return ReplacementPolicy::FIFO;
    if (s == "rand" || s == "random")
        return ReplacementPolicy::Random;
    fatal("unknown replacement policy '", s,
          "' (expected lru, fifo, or rand)");
}

/** Parse "wb"/"wt" (also accepts "writeback"/"writethrough"). */
inline WritePolicy
parseWritePolicy(const std::string &s)
{
    if (s == "wb" || s == "writeback")
        return WritePolicy::WriteBack;
    if (s == "wt" || s == "writethrough")
        return WritePolicy::WriteThrough;
    fatal("unknown write policy '", s, "' (expected wb or wt)");
}

/** Default seed for replacement-victim streams (see policyRng). */
constexpr uint64_t policyDefaultSeed = 0x5eedc0ffee5eedULL;

/**
 * Stream id for one cache geometry's victim Rng. A pure function of
 * the geometry so the per-config reference simulator and the
 * multi-geometry set-resident simulator draw identical victim
 * sequences for the same (sets, assoc, lineBytes) cell — the
 * backbone of the differential policy-matrix suite.
 */
inline uint64_t
policyStream(uint32_t sets, uint32_t assoc, uint32_t line_bytes)
{
    // Distinct odd multipliers keep neighbouring geometries'
    // streams far apart (same idea as Rng::forStream's mixing).
    return 0x9e3779b97f4a7c15ULL * sets +
           0xc2b2ae3d27d4eb4fULL * assoc +
           0x165667b19e3779f9ULL * line_bytes;
}

/** Victim generator for one geometry (deterministic; see above). */
inline Rng
policyRng(uint32_t sets, uint32_t assoc, uint32_t line_bytes,
          uint64_t seed = policyDefaultSeed)
{
    return Rng::forStream(seed, policyStream(sets, assoc, line_bytes));
}

} // namespace pico::cache

#endif // PICO_CACHE_POLICY_HPP
