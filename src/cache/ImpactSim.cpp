#include "cache/ImpactSim.hpp"

namespace pico::cache
{

ImpactSim::ImpactSim(const CacheConfig &config, bool model_write_buffer)
    : config_(config), modelWriteBuffer_(model_write_buffer)
{
    config_.validate();
    ways_.resize(static_cast<size_t>(config_.sets) * config_.assoc);
}

bool
ImpactSim::access(uint64_t addr, bool write)
{
    ++accesses_;
    ++clock_;

    uint64_t line = addr / config_.lineBytes;
    auto set_index = static_cast<size_t>(line & (config_.sets - 1));
    Way *base = &ways_[set_index * config_.assoc];

    // Linear tag probe over the set.
    Way *lru = base;
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lastUse = clock_;
            return true;
        }
        if (!way.valid) {
            // Prefer an invalid way as the fill target.
            if (lru->valid)
                lru = &way;
        } else if (lru->valid && way.lastUse < lru->lastUse) {
            lru = &way;
        }
    }

    // Miss. With the write-buffer model, a missing store to the line
    // currently held by the one-entry write buffer merges into it and
    // is not recounted as a miss; the line still fills, so cache
    // contents never diverge from the reference simulator.
    bool merged = modelWriteBuffer_ && write &&
                  line == pendingWriteLine_;
    if (!merged)
        ++misses_;
    if (write)
        pendingWriteLine_ = line;

    lru->tag = line;
    lru->valid = true;
    lru->lastUse = clock_;
    return false;
}

} // namespace pico::cache
