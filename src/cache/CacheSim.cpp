#include "cache/CacheSim.hpp"

#include <algorithm>

#include "support/Logging.hpp"

namespace pico::cache
{

CacheSim::CacheSim(const CacheConfig &config, bool track_compulsory,
                   uint64_t policy_seed)
    : config_(config), trackCompulsory_(track_compulsory),
      policySeed_(policy_seed),
      victimRng_(policyRng(config.sets, config.assoc,
                           config.lineBytes, policy_seed))
{
    config_.validate();
    sets_.resize(config_.sets);
    for (auto &set : sets_)
        set.reserve(config_.assoc);
}

void
CacheSim::installMiss(Set &set, uint64_t line, bool write,
                      AccessResult &result)
{
    // Write-allocate under both write policies; only write-back
    // installs the line dirty.
    bool dirty = write && config_.write == WritePolicy::WriteBack;

    switch (config_.replacement) {
    case ReplacementPolicy::LRU:
    case ReplacementPolicy::FIFO:
        // Both keep newest-first order; they differ only in whether
        // hits reorder (see access()). Evict the back: LRU's
        // least-recently-used, FIFO's oldest-installed.
        if (set.size() >= config_.assoc) {
            result.hasVictim = true;
            result.victimLine = set.back().line;
            if (set.back().dirty)
                ++writebacks_;
            set.pop_back();
        }
        set.insert(set.begin(), Entry{line, dirty});
        return;
    case ReplacementPolicy::Random:
        // Fill empty ways in slot order; once full, replace a
        // uniformly random way *in place* so slot indices stay
        // aligned with the set-resident simulator's flat arrays.
        if (set.size() < config_.assoc) {
            set.push_back(Entry{line, dirty});
            return;
        }
        {
            auto victim = static_cast<size_t>(
                victimRng_.below(config_.assoc));
            result.hasVictim = true;
            result.victimLine = set[victim].line;
            if (set[victim].dirty)
                ++writebacks_;
            set[victim] = Entry{line, dirty};
        }
        return;
    }
    panic("unknown replacement policy");
}

AccessResult
CacheSim::access(uint64_t addr, bool write)
{
    ++accesses_;
    if (write && config_.write == WritePolicy::WriteThrough)
        ++writeThroughs_;
    AccessResult result;

    uint64_t line = lineId(addr);
    auto &set = sets_[setIndex(line)];

    auto it = std::find_if(set.begin(), set.end(),
                           [line](const Entry &e) {
                               return e.line == line;
                           });
    if (it != set.end()) {
        result.hit = true;
        if (config_.replacement == ReplacementPolicy::LRU) {
            // Hit: move to MRU position (write-back: mark dirty).
            Entry entry = *it;
            entry.dirty |=
                write && config_.write == WritePolicy::WriteBack;
            set.erase(it);
            set.insert(set.begin(), entry);
        } else {
            // FIFO/random hits never reorder; only dirty state moves.
            it->dirty |=
                write && config_.write == WritePolicy::WriteBack;
        }
        return result;
    }

    ++misses_;
    if (trackCompulsory_ && seenLines_.insert(line).second)
        ++compulsory_;

    installMiss(set, line, write, result);
    return result;
}

void
CacheSim::invalidateLine(uint64_t line_id)
{
    auto &set = sets_[setIndex(line_id)];
    auto it = std::find_if(set.begin(), set.end(),
                           [line_id](const Entry &e) {
                               return e.line == line_id;
                           });
    if (it != set.end()) {
        if (it->dirty)
            ++writebacks_;
        set.erase(it);
    }
}

void
CacheSim::invalidateRange(uint64_t addr_lo, uint64_t addr_hi)
{
    panicIf(addr_hi < addr_lo, "bad invalidate range");
    uint64_t first = addr_lo / config_.lineBytes;
    uint64_t last = (addr_hi + config_.lineBytes - 1) /
                    config_.lineBytes;
    for (uint64_t line = first; line < last; ++line)
        invalidateLine(line);
}

void
CacheSim::reset()
{
    for (auto &set : sets_)
        set.clear();
    accesses_ = 0;
    misses_ = 0;
    compulsory_ = 0;
    writebacks_ = 0;
    writeThroughs_ = 0;
    seenLines_.clear();
    victimRng_ = policyRng(config_.sets, config_.assoc,
                           config_.lineBytes, policySeed_);
}

} // namespace pico::cache
