#include "cache/CacheSim.hpp"

#include <algorithm>

#include "support/Logging.hpp"

namespace pico::cache
{

CacheSim::CacheSim(const CacheConfig &config, bool track_compulsory)
    : config_(config), trackCompulsory_(track_compulsory)
{
    config_.validate();
    sets_.resize(config_.sets);
    for (auto &set : sets_)
        set.reserve(config_.assoc);
}

AccessResult
CacheSim::access(uint64_t addr, bool write)
{
    ++accesses_;
    AccessResult result;

    uint64_t line = lineId(addr);
    auto &set = sets_[setIndex(line)];

    auto it = std::find_if(set.begin(), set.end(),
                           [line](const Entry &e) {
                               return e.line == line;
                           });
    if (it != set.end()) {
        // Hit: move to MRU position (write-back: mark dirty).
        Entry entry = *it;
        entry.dirty |= write;
        set.erase(it);
        set.insert(set.begin(), entry);
        result.hit = true;
        return result;
    }

    ++misses_;
    if (trackCompulsory_ && seenLines_.insert(line).second)
        ++compulsory_;

    if (set.size() >= config_.assoc) {
        result.hasVictim = true;
        result.victimLine = set.back().line;
        if (set.back().dirty)
            ++writebacks_;
        set.pop_back();
    }
    // Write-allocate: stores install the line dirty.
    set.insert(set.begin(), Entry{line, write});
    return result;
}

void
CacheSim::invalidateLine(uint64_t line_id)
{
    auto &set = sets_[setIndex(line_id)];
    auto it = std::find_if(set.begin(), set.end(),
                           [line_id](const Entry &e) {
                               return e.line == line_id;
                           });
    if (it != set.end()) {
        if (it->dirty)
            ++writebacks_;
        set.erase(it);
    }
}

void
CacheSim::invalidateRange(uint64_t addr_lo, uint64_t addr_hi)
{
    panicIf(addr_hi < addr_lo, "bad invalidate range");
    uint64_t first = addr_lo / config_.lineBytes;
    uint64_t last = (addr_hi + config_.lineBytes - 1) /
                    config_.lineBytes;
    for (uint64_t line = first; line < last; ++line)
        invalidateLine(line);
}

void
CacheSim::reset()
{
    for (auto &set : sets_)
        set.clear();
    accesses_ = 0;
    misses_ = 0;
    compulsory_ = 0;
    writebacks_ = 0;
    seenLines_.clear();
}

} // namespace pico::cache
