#include "cache/CacheConfig.hpp"

#include <sstream>

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::cache
{

bool
CacheConfig::feasible() const
{
    return isPowerOfTwo(sets) && isPowerOfTwo(lineBytes) &&
           lineBytes >= 4 && assoc >= 1 && ports >= 1;
}

void
CacheConfig::validate() const
{
    fatalIf(!feasible(), "infeasible cache configuration: sets=", sets,
            " assoc=", assoc, " line=", lineBytes);
}

std::string
CacheConfig::name() const
{
    std::ostringstream oss;
    uint64_t size = sizeBytes();
    if (size >= 1024 && size % 1024 == 0)
        oss << (size / 1024) << "KB";
    else
        oss << size << "B";
    oss << "/" << assoc << "way/" << lineBytes << "B";
    if (ports > 1)
        oss << "/" << ports << "p";
    if (replacement != ReplacementPolicy::LRU)
        oss << "/" << replacementName(replacement);
    if (write != WritePolicy::WriteBack)
        oss << "/" << writePolicyName(write);
    return oss.str();
}

CacheConfig
CacheConfig::fromSize(uint64_t size_bytes, uint32_t assoc,
                      uint32_t line_bytes, uint32_t ports)
{
    fatalIf(assoc == 0 || line_bytes == 0, "bad cache parameters");
    uint64_t line_capacity = size_bytes / line_bytes;
    fatalIf(line_capacity % assoc != 0,
            "cache size ", size_bytes, " not divisible into ", assoc,
            "-way sets of ", line_bytes, "B lines");
    CacheConfig cfg;
    cfg.sets = static_cast<uint32_t>(line_capacity / assoc);
    cfg.assoc = assoc;
    cfg.lineBytes = line_bytes;
    cfg.ports = ports;
    cfg.validate();
    return cfg;
}

double
CacheConfig::areaCost() const
{
    // Data array: one unit per byte. Tag array: tag + state bits per
    // line, assuming 32-bit addresses.
    double data_bits = 8.0 * static_cast<double>(sizeBytes());
    unsigned index_bits = log2Floor(sets);
    unsigned offset_bits = log2Floor(lineBytes);
    // State bits per line: valid + dirty for write-back; a
    // write-through line is never dirty, so it drops one state bit.
    double state_bits = write == WritePolicy::WriteBack ? 2.0 : 1.0;
    double tag_bits_per_line =
        32.0 - index_bits - offset_bits + state_bits;
    double tag_bits =
        tag_bits_per_line * static_cast<double>(sets) * assoc;
    // Associative lookup adds comparator cost per way; extra ports
    // grow area quadratically (wire pitch in both dimensions).
    double assoc_factor = 1.0 + 0.05 * (assoc - 1);
    double port_factor = static_cast<double>(ports) * ports;
    return (data_bits + tag_bits) / 8192.0 * assoc_factor *
           port_factor;
}

} // namespace pico::cache
