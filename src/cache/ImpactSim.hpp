/**
 * @file
 * Independent cache simulator used for cross-validation.
 *
 * Plays the role of the IMPACT cache simulator in section 6.1: a
 * second implementation, written with different data structures
 * (timestamp-based LRU over flat arrays instead of recency-ordered
 * vectors), whose miss counts must agree with CacheSim. An optional
 * write-buffer model reproduces the paper's observation that "small
 * differences ... could largely be attributed to slightly different
 * handling of writes and write-buffer issues".
 */

#ifndef PICO_CACHE_IMPACT_SIM_HPP
#define PICO_CACHE_IMPACT_SIM_HPP

#include <cstdint>
#include <vector>

#include "cache/CacheConfig.hpp"
#include "trace/Access.hpp"

namespace pico::cache
{

/** Timestamp-LRU set-associative simulator. */
class ImpactSim
{
  public:
    /**
     * @param config cache configuration
     * @param model_write_buffer when true, a store that misses on a
     *        line pending in the (one-entry) write buffer is not
     *        recounted as a miss — the deliberate small divergence
     *        from CacheSim described in section 6.1
     */
    explicit ImpactSim(const CacheConfig &config,
                       bool model_write_buffer = false);

    /** Simulate one reference. @return true on hit. */
    bool access(uint64_t addr, bool write = false);

    /** Sink-compatible overload. */
    void
    operator()(const trace::Access &a)
    {
        access(a.addr, a.isWrite);
    }

    const CacheConfig &config() const { return config_; }
    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) /
                               static_cast<double>(accesses_)
                         : 0.0;
    }

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    CacheConfig config_;
    bool modelWriteBuffer_;
    std::vector<Way> ways_; // sets * assoc, flat
    uint64_t clock_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    uint64_t pendingWriteLine_ = ~0ULL;
};

} // namespace pico::cache

#endif // PICO_CACHE_IMPACT_SIM_HPP
