/**
 * @file
 * Single-pass multi-configuration cache simulator (Cheetah).
 *
 * Simulates, in one pass over an address trace, *every* LRU
 * set-associative cache whose line size equals the fixed line size
 * and whose set count and associativity lie within configured ranges.
 * This is the paper's first efficiency lever (section 3.3): the
 * number of simulation runs drops from the number of caches in the
 * design space to the number of distinct line sizes.
 *
 * Algorithm: per candidate set count S, each set keeps an LRU stack
 * truncated at the maximum associativity; the stack distance of each
 * reference is histogrammed. By LRU inclusion, misses for
 * associativity A are the references whose stack distance is >= A.
 *
 * Layout: the per-set stacks of one level (set count) live in a
 * single flat tag array of sets x maxAssoc words (structure of
 * arrays), slot [set * maxAssoc + d] holding the tag at LRU depth d.
 * Empty slots hold the sentinel ~0, which no real line tag can equal
 * (tags are addr >> log2(lineBytes), lineBytes >= 4). The inner loop
 * is branch-free: the depth search reads all maxAssoc slots with a
 * conditional-move reduction, the histogram has an extra miss bin at
 * index maxAssoc so every reference increments exactly one bin, and
 * the LRU update is a fixed-length shift-down-and-insert. One
 * reference costs the same instruction sequence whether it hits or
 * misses, which is what lets the block replay stream at memory
 * bandwidth (see ColumnarTrace.hpp).
 *
 * On top of that sits an MRU filter: a reference to the same line as
 * the previous reference hits at depth 0 in every level and leaves
 * every stack unchanged, so it is counted in a single repeat counter
 * instead of walked through the bank. Sequential instruction fetch
 * makes such runs the common case, and misses() folds the counter
 * back into the depth-0 bin of whichever level is queried.
 */

#ifndef PICO_CACHE_SINGLE_PASS_SIM_HPP
#define PICO_CACHE_SINGLE_PASS_SIM_HPP

#include <cstdint>
#include <vector>

#include "cache/CacheConfig.hpp"
#include "support/CancelToken.hpp"
#include "trace/Access.hpp"

namespace pico::cache
{

/** All-associativity, all-set-count simulator for one line size. */
class SinglePassSim
{
  public:
    /** Sentinel tag of an empty LRU slot (never a real line tag). */
    static constexpr uint64_t emptyTag = ~0ULL;

    /**
     * @param line_bytes fixed line size (power of two)
     * @param min_sets smallest set count simulated (power of two)
     * @param max_sets largest set count simulated (power of two)
     * @param max_assoc largest associativity simulated
     */
    SinglePassSim(uint32_t line_bytes, uint32_t min_sets,
                  uint32_t max_sets, uint32_t max_assoc);

    /** Feed one reference. */
    void access(uint64_t addr);

    /** Sink-compatible overload. */
    void operator()(const trace::Access &a) { access(a.addr); }

    /**
     * Feed a span of reference addresses (one decoded columnar
     * block). Levels run in the outer loop so each level's tag array
     * stays hot across the whole span; the result is bit-identical
     * to calling access() per address, because levels are
     * independent.
     */
    void accessBlock(const uint64_t *addrs, size_t n);

    /**
     * Feed an entire buffered trace. One simulator's replay touches
     * only its own state, so replays of *different* simulators over
     * the same buffer may run concurrently — this is the unit of
     * work of the parallel per-line-size Cheetah passes. A cancel
     * token is checked periodically; cancellation unwinds with
     * CancelledError and leaves this simulator's counts partial
     * (the caller discards it).
     */
    void replay(const std::vector<trace::Access> &buffer,
                const support::CancelToken *cancel = nullptr);

    /** Total references observed. */
    uint64_t accesses() const { return accesses_; }

    /**
     * Misses of the cache with the given set count and associativity
     * (and this simulator's line size).
     */
    uint64_t misses(uint32_t sets, uint32_t assoc) const;

    /** Misses of a configuration; must match the simulated ranges. */
    uint64_t misses(const CacheConfig &config) const;

    /** True when the configuration is covered by this simulator. */
    bool covers(const CacheConfig &config) const;

    uint32_t lineBytes() const { return lineBytes_; }
    uint32_t minSets() const { return minSets_; }
    uint32_t maxSets() const { return maxSets_; }
    uint32_t maxAssoc() const { return maxAssoc_; }

    /** All configurations covered, in (sets, assoc) order. */
    std::vector<CacheConfig> coveredConfigs() const;

  private:
    /** Index of a set count in the tags_/hist_ arrays. */
    size_t levelOf(uint32_t sets) const;

    /** The branch-free per-reference update of one level. */
    void touchLevel(size_t lv, uint64_t line);

    uint32_t lineBytes_;
    uint32_t minSets_;
    uint32_t maxSets_;
    uint32_t maxAssoc_;
    uint32_t lineShift_;
    uint64_t accesses_ = 0;

    /** Line of the most recent reference (emptyTag before any). */
    uint64_t lastLine_ = emptyTag;
    /** References filtered as depth-0 hits on lastLine_. */
    uint64_t mruRepeats_ = 0;
    /** accessBlock scratch: the block's run-compacted lines. */
    std::vector<uint64_t> compact_;

    /**
     * Per level (set count): flat tag array of sets x maxAssoc
     * words, [set * maxAssoc + depth], emptyTag when vacant.
     */
    std::vector<std::vector<uint64_t>> tags_;
    /**
     * Per level: histogram of stack distances. maxAssoc + 1 bins;
     * the last bin counts misses at every simulated associativity.
     */
    std::vector<std::vector<uint64_t>> hist_;
};

} // namespace pico::cache

#endif // PICO_CACHE_SINGLE_PASS_SIM_HPP
