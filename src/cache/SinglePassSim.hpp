/**
 * @file
 * Single-pass multi-configuration cache simulator (Cheetah).
 *
 * Simulates, in one pass over an address trace, *every* LRU
 * set-associative cache whose line size equals the fixed line size
 * and whose set count and associativity lie within configured ranges.
 * This is the paper's first efficiency lever (section 3.3): the
 * number of simulation runs drops from the number of caches in the
 * design space to the number of distinct line sizes.
 *
 * Algorithm: per candidate set count S, each set keeps an LRU stack
 * truncated at the maximum associativity; the stack distance of each
 * reference is histogrammed. By LRU inclusion, misses for
 * associativity A are the references whose stack distance is >= A.
 */

#ifndef PICO_CACHE_SINGLE_PASS_SIM_HPP
#define PICO_CACHE_SINGLE_PASS_SIM_HPP

#include <cstdint>
#include <vector>

#include "cache/CacheConfig.hpp"
#include "trace/Access.hpp"

namespace pico::cache
{

/** All-associativity, all-set-count simulator for one line size. */
class SinglePassSim
{
  public:
    /**
     * @param line_bytes fixed line size (power of two)
     * @param min_sets smallest set count simulated (power of two)
     * @param max_sets largest set count simulated (power of two)
     * @param max_assoc largest associativity simulated
     */
    SinglePassSim(uint32_t line_bytes, uint32_t min_sets,
                  uint32_t max_sets, uint32_t max_assoc);

    /** Feed one reference. */
    void access(uint64_t addr);

    /** Sink-compatible overload. */
    void operator()(const trace::Access &a) { access(a.addr); }

    /**
     * Feed an entire buffered trace. One simulator's replay touches
     * only its own state, so replays of *different* simulators over
     * the same buffer may run concurrently — this is the unit of
     * work of the parallel per-line-size Cheetah passes.
     */
    void replay(const std::vector<trace::Access> &buffer);

    /** Total references observed. */
    uint64_t accesses() const { return accesses_; }

    /**
     * Misses of the cache with the given set count and associativity
     * (and this simulator's line size).
     */
    uint64_t misses(uint32_t sets, uint32_t assoc) const;

    /** Misses of a configuration; must match the simulated ranges. */
    uint64_t misses(const CacheConfig &config) const;

    /** True when the configuration is covered by this simulator. */
    bool covers(const CacheConfig &config) const;

    uint32_t lineBytes() const { return lineBytes_; }
    uint32_t minSets() const { return minSets_; }
    uint32_t maxSets() const { return maxSets_; }
    uint32_t maxAssoc() const { return maxAssoc_; }

    /** All configurations covered, in (sets, assoc) order. */
    std::vector<CacheConfig> coveredConfigs() const;

  private:
    /** Index of a set count in the stacks_/hist_ arrays. */
    size_t levelOf(uint32_t sets) const;

    uint32_t lineBytes_;
    uint32_t minSets_;
    uint32_t maxSets_;
    uint32_t maxAssoc_;
    uint64_t accesses_ = 0;

    /** Per level (set count), per set: truncated LRU stack. */
    std::vector<std::vector<std::vector<uint64_t>>> stacks_;
    /** Per level: histogram of stack distances [0, maxAssoc). */
    std::vector<std::vector<uint64_t>> hist_;
};

} // namespace pico::cache

#endif // PICO_CACHE_SINGLE_PASS_SIM_HPP
