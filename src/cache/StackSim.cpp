#include "cache/StackSim.hpp"

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::cache
{

StackSim::StackSim(uint32_t line_bytes) : lineBytes_(line_bytes)
{
    fatalIf(!isPowerOfTwo(line_bytes) || line_bytes < 4,
            "bad line size ", line_bytes);
    lineShift_ = log2Floor(line_bytes);
}

void
StackSim::access(uint64_t addr)
{
    ++accesses_;
    uint64_t line = addr >> lineShift_;
    uint64_t *base = stack_.data();
    size_t n = stack_.size();

    // Find the stack distance; move-to-front on hit. The hit path
    // shifts [0, d) down one slot — half the traffic of the old
    // erase-then-insert pair, and no reallocation.
    for (size_t d = 0; d < n; ++d) {
        if (base[d] == line) {
            if (hist_.size() <= d)
                hist_.resize(d + 1, 0);
            ++hist_[d];
            for (size_t i = d; i > 0; --i)
                base[i] = base[i - 1];
            base[0] = line;
            return;
        }
    }
    // Cold miss: infinite stack distance; the stack grows by one.
    stack_.push_back(0);
    base = stack_.data();
    for (size_t i = n; i > 0; --i)
        base[i] = base[i - 1];
    base[0] = line;
}

void
StackSim::accessBlock(const uint64_t *addrs, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        access(addrs[i]);
}

uint64_t
StackSim::misses(uint64_t capacity_lines) const
{
    fatalIf(capacity_lines == 0, "zero-capacity cache");
    uint64_t hits = 0;
    uint64_t depth = std::min<uint64_t>(capacity_lines,
                                        hist_.size());
    for (uint64_t d = 0; d < depth; ++d)
        hits += hist_[d];
    return accesses_ - hits;
}

} // namespace pico::cache
