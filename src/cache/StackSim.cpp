#include "cache/StackSim.hpp"

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::cache
{

StackSim::StackSim(uint32_t line_bytes) : lineBytes_(line_bytes)
{
    fatalIf(!isPowerOfTwo(line_bytes) || line_bytes < 4,
            "bad line size ", line_bytes);
}

void
StackSim::access(uint64_t addr)
{
    ++accesses_;
    uint64_t line = addr / lineBytes_;

    // Find the stack distance; move-to-front on hit.
    for (size_t d = 0; d < stack_.size(); ++d) {
        if (stack_[d] == line) {
            if (hist_.size() <= d)
                hist_.resize(d + 1, 0);
            ++hist_[d];
            stack_.erase(stack_.begin() +
                         static_cast<ptrdiff_t>(d));
            stack_.insert(stack_.begin(), line);
            return;
        }
    }
    // Cold miss: infinite stack distance.
    stack_.insert(stack_.begin(), line);
}

uint64_t
StackSim::misses(uint64_t capacity_lines) const
{
    fatalIf(capacity_lines == 0, "zero-capacity cache");
    uint64_t hits = 0;
    uint64_t depth = std::min<uint64_t>(capacity_lines,
                                        hist_.size());
    for (uint64_t d = 0; d < depth; ++d)
        hits += hist_[d];
    return accesses_ - hits;
}

} // namespace pico::cache
