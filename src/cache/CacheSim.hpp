/**
 * @file
 * Reference single-configuration LRU cache simulator.
 *
 * Write policy is write-back, write-allocate; misses are counted
 * identically for reads and writes (the paper reports miss counts,
 * not writeback traffic). Compulsory (first-reference) misses are
 * tracked separately so model validation can exclude start-up misses
 * the way the AHH model does.
 */

#ifndef PICO_CACHE_CACHE_SIM_HPP
#define PICO_CACHE_CACHE_SIM_HPP

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cache/CacheConfig.hpp"
#include "trace/Access.hpp"

namespace pico::cache
{

/** Outcome of one cache access. */
struct AccessResult
{
    bool hit = false;
    /** A valid line was evicted to make room. */
    bool hasVictim = false;
    /** Line id (addr / lineBytes) of the victim, if any. */
    uint64_t victimLine = 0;
};

/** Set-associative LRU cache, one configuration per instance. */
class CacheSim
{
  public:
    explicit CacheSim(const CacheConfig &config,
                      bool track_compulsory = false);

    /** Simulate one reference; returns hit/miss and any victim. */
    AccessResult access(uint64_t addr, bool write = false);

    /** Sink-compatible overload. */
    void
    operator()(const trace::Access &a)
    {
        access(a.addr, a.isWrite);
    }

    /** Invalidate one line by line id (inclusion back-invalidate). */
    void invalidateLine(uint64_t line_id);

    /** Invalidate every line overlapping [addr_lo, addr_hi). */
    void invalidateRange(uint64_t addr_lo, uint64_t addr_hi);

    const CacheConfig &config() const { return config_; }
    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    /** First-reference (start-up) misses; only when tracking is on. */
    uint64_t compulsoryMisses() const { return compulsory_; }
    /** Dirty lines written back on eviction or invalidation. */
    uint64_t writebacks() const { return writebacks_; }

    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) /
                               static_cast<double>(accesses_)
                         : 0.0;
    }

    /** Reset contents and statistics. */
    void reset();

  private:
    /** One cached line: id plus write-back state. */
    struct Entry
    {
        uint64_t line;
        bool dirty;
    };

    /** One set: entries ordered most- to least-recently used. */
    using Set = std::vector<Entry>;

    uint64_t lineId(uint64_t addr) const { return addr / config_.lineBytes; }

    uint32_t
    setIndex(uint64_t line_id) const
    {
        return static_cast<uint32_t>(line_id & (config_.sets - 1));
    }

    CacheConfig config_;
    std::vector<Set> sets_;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    uint64_t compulsory_ = 0;
    uint64_t writebacks_ = 0;
    bool trackCompulsory_;
    std::unordered_set<uint64_t> seenLines_;
};

} // namespace pico::cache

#endif // PICO_CACHE_CACHE_SIM_HPP
