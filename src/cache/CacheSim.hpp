/**
 * @file
 * Reference single-configuration cache simulator (the oracle).
 *
 * Replacement is LRU, FIFO, or random per CacheConfig::replacement;
 * write handling is write-back or write-through per
 * CacheConfig::write. Both write policies are write-allocate, so
 * miss counts depend only on the replacement policy; the policies
 * differ in memory write traffic (writebacks() for write-back,
 * writeThroughs() for write-through — see writeTraffic()).
 * Compulsory (first-reference) misses are tracked separately so
 * model validation can exclude start-up misses the way the AHH model
 * does.
 *
 * Random replacement draws victims from a deterministic per-geometry
 * stream (policyRng) so two simulators of the same geometry — or the
 * set-resident fast simulator — produce bit-identical results.
 */

#ifndef PICO_CACHE_CACHE_SIM_HPP
#define PICO_CACHE_CACHE_SIM_HPP

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cache/CacheConfig.hpp"
#include "cache/Policy.hpp"
#include "support/Random.hpp"
#include "trace/Access.hpp"

namespace pico::cache
{

/** Outcome of one cache access. */
struct AccessResult
{
    bool hit = false;
    /** A valid line was evicted to make room. */
    bool hasVictim = false;
    /** Line id (addr / lineBytes) of the victim, if any. */
    uint64_t victimLine = 0;
};

/** Set-associative cache, one configuration per instance. */
class CacheSim
{
  public:
    explicit CacheSim(const CacheConfig &config,
                      bool track_compulsory = false,
                      uint64_t policy_seed = policyDefaultSeed);

    /** Simulate one reference; returns hit/miss and any victim. */
    AccessResult access(uint64_t addr, bool write = false);

    /** Sink-compatible overload. */
    void
    operator()(const trace::Access &a)
    {
        access(a.addr, a.isWrite);
    }

    /** Invalidate one line by line id (inclusion back-invalidate). */
    void invalidateLine(uint64_t line_id);

    /** Invalidate every line overlapping [addr_lo, addr_hi). */
    void invalidateRange(uint64_t addr_lo, uint64_t addr_hi);

    const CacheConfig &config() const { return config_; }
    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    /** First-reference (start-up) misses; only when tracking is on. */
    uint64_t compulsoryMisses() const { return compulsory_; }
    /** Dirty lines written back on eviction or invalidation. */
    uint64_t writebacks() const { return writebacks_; }
    /** Stores forwarded to memory under write-through. */
    uint64_t writeThroughs() const { return writeThroughs_; }

    /**
     * Memory writes this cache generated under its write policy:
     * line writebacks (write-back) or store write-throughs
     * (write-through).
     */
    uint64_t
    writeTraffic() const
    {
        return config_.write == WritePolicy::WriteBack
                   ? writebacks_
                   : writeThroughs_;
    }

    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) /
                               static_cast<double>(accesses_)
                         : 0.0;
    }

    /** Reset contents and statistics (victim Rng included). */
    void reset();

  private:
    /** One cached line: id plus write-back state. */
    struct Entry
    {
        uint64_t line;
        bool dirty;
    };

    /**
     * One set. Ordering encodes the replacement policy's state:
     * LRU keeps entries most- to least-recently used (hits reorder);
     * FIFO keeps insertion order, newest first (hits do not reorder);
     * random replacement keeps stable slot positions — a victim is
     * replaced in place so slot indices match the set-resident
     * simulator's flat arrays.
     */
    using Set = std::vector<Entry>;

    uint64_t lineId(uint64_t addr) const { return addr / config_.lineBytes; }

    uint32_t
    setIndex(uint64_t line_id) const
    {
        return static_cast<uint32_t>(line_id & (config_.sets - 1));
    }

    void installMiss(Set &set, uint64_t line, bool write,
                     AccessResult &result);

    CacheConfig config_;
    std::vector<Set> sets_;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    uint64_t compulsory_ = 0;
    uint64_t writebacks_ = 0;
    uint64_t writeThroughs_ = 0;
    bool trackCompulsory_;
    uint64_t policySeed_;
    Rng victimRng_;
    std::unordered_set<uint64_t> seenLines_;
};

} // namespace pico::cache

#endif // PICO_CACHE_CACHE_SIM_HPP
