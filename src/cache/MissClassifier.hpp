/**
 * @file
 * Three-C miss classification: compulsory / capacity / conflict.
 *
 * The AHH model reasons about steady-state interference misses
 * (section 4.2 ignores start-up and non-stationary components); this
 * analyzer makes those categories measurable. A reference of a cache
 * is classified against the cache itself plus a fully associative
 * LRU cache of equal capacity:
 *
 *   compulsory — first reference to the line anywhere,
 *   capacity   — misses in the fully associative cache too,
 *   conflict   — hits fully associative but misses here
 *                (set-mapping interference, what dilation inflates).
 */

#ifndef PICO_CACHE_MISS_CLASSIFIER_HPP
#define PICO_CACHE_MISS_CLASSIFIER_HPP

#include "cache/CacheConfig.hpp"
#include "cache/CacheSim.hpp"
#include "trace/Access.hpp"

namespace pico::cache
{

/** Classified miss counts. */
struct MissBreakdown
{
    uint64_t accesses = 0;
    uint64_t compulsory = 0;
    uint64_t capacity = 0;
    uint64_t conflict = 0;

    uint64_t
    totalMisses() const
    {
        return compulsory + capacity + conflict;
    }
};

/** Classifies every miss of one configuration. */
class MissClassifier
{
  public:
    explicit MissClassifier(const CacheConfig &config);

    /** Simulate and classify one reference. */
    void access(uint64_t addr, bool write = false);

    /** Sink-compatible overload. */
    void
    operator()(const trace::Access &a)
    {
        access(a.addr, a.isWrite);
    }

    const MissBreakdown &breakdown() const { return breakdown_; }
    const CacheConfig &config() const { return config_; }

  private:
    CacheConfig config_;
    CacheSim target_;
    CacheSim fullyAssociative_;
    MissBreakdown breakdown_;
};

} // namespace pico::cache

#endif // PICO_CACHE_MISS_CLASSIFIER_HPP
