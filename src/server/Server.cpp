#include "server/Server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/Logging.hpp"
#include "support/TraceEvents.hpp"

namespace pico::server
{

Server::Server(std::string socket_path, EvalService *service)
    : path_(std::move(socket_path)), service_(service)
{
    fatalIf(service_ == nullptr, "server needs a service");
    fatalIf(path_.empty(), "server needs a socket path");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    fatalIf(path_.size() >= sizeof(addr.sun_path),
            "socket path too long: ", path_);
    std::strncpy(addr.sun_path, path_.c_str(),
                 sizeof(addr.sun_path) - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatalIf(listenFd_ < 0,
            "cannot create socket: ", std::strerror(errno));
    // A stale socket file from a crashed previous server would make
    // bind fail; replacing it is the restart-friendly behavior.
    ::unlink(path_.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        int err = errno;
        ::close(listenFd_);
        fatal("cannot bind ", path_, ": ", std::strerror(err));
    }
    if (::listen(listenFd_, 64) != 0) {
        int err = errno;
        ::close(listenFd_);
        ::unlink(path_.c_str());
        fatal("cannot listen on ", path_, ": ", std::strerror(err));
    }
    inform("server listening on ", path_);
}

Server::~Server()
{
    stop();
}

void
Server::run()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        // Short poll timeout so stop() (from a signal watcher) is
        // honored within ~100 ms even with no traffic.
        int ready = ::poll(&pfd, 1, 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("poll failed: ", std::strerror(errno));
            break;
        }
        if (ready == 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (!stopping_.load(std::memory_order_acquire))
                warn("accept failed: ", std::strerror(errno));
            break;
        }
        connections_.fetch_add(1, std::memory_order_relaxed);
        support::MutexLock lock(connMutex_);
        connFds_.push_back(fd);
        connThreads_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }
}

void
Server::handleConnection(int fd)
{
    // Admit-side spans (server.request) land on this track.
    support::TraceRecorder::instance().nameThisThread(
        "server-conn-" + std::to_string(fd));
    std::string payload;
    while (readFrame(fd, payload)) {
        Request req;
        Response resp;
        std::string error;
        if (decodeRequest(payload, req, error)) {
            resp = service_->call(req);
        } else {
            // A malformed but well-framed request gets a terminal
            // bad_request — the client must not retry it.
            resp.status = Status::BadRequest;
            resp.error = error;
        }
        if (!writeFrame(fd, encodeResponse(resp)))
            break;
    }
    ::close(fd);
    support::MutexLock lock(connMutex_);
    connFds_.erase(std::remove(connFds_.begin(), connFds_.end(), fd),
                   connFds_.end());
}

void
Server::closeAllConnections()
{
    support::MutexLock lock(connMutex_);
    // shutdown() unblocks reads without racing the handler's own
    // close(): the fd stays valid until its thread closes it.
    for (int fd : connFds_)
        ::shutdown(fd, SHUT_RDWR);
}

void
Server::stop()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true))
        return;
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    closeAllConnections();
    std::vector<std::thread> threads;
    {
        support::MutexLock lock(connMutex_);
        threads.swap(connThreads_);
    }
    for (auto &t : threads)
        t.join();
    ::unlink(path_.c_str());
    inform("server stopped (", connections(), " connection(s) total)");
}

} // namespace pico::server
