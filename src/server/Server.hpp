/**
 * @file
 * Unix-domain-socket front end of the evaluation service.
 *
 * The Server owns only transport concerns: it binds a stream socket,
 * accepts connections on a poll loop (so stop() is honored promptly),
 * and runs one thread per connection that reads request frames,
 * hands them to the EvalService, and writes response frames back.
 * Every robustness decision — admission, deadlines, shedding,
 * drain — lives in the service, which is why the chaos tests can
 * bypass this layer entirely.
 *
 * A connection that sends garbage gets a bad_request response (when
 * a frame was at least well-delimited) or is closed (when framing
 * itself broke); either way the listener and the other connections
 * are unaffected.
 */

#ifndef PICO_SERVER_SERVER_HPP
#define PICO_SERVER_SERVER_HPP

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "server/EvalService.hpp"
#include "support/ThreadAnnotations.hpp"

namespace pico::server
{

/** Socket acceptor over one EvalService. */
class Server
{
  public:
    /**
     * Bind and listen on a Unix domain socket (an existing socket
     * file is replaced). fatal() when binding fails.
     * @param socket_path filesystem path of the socket
     * @param service the service handling the requests (not owned;
     *        must outlive the server)
     */
    Server(std::string socket_path, EvalService *service);

    /** Stops and joins if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Accept loop; returns after stop(). Run it on its own thread
     *  or let serve-forever mains call it directly. */
    void run();

    /**
     * Stop accepting, unblock every connection thread and join them.
     * Idempotent and callable from a thread other than run()'s (the
     * signal-watcher pattern); does NOT drain the service — callers
     * sequence service.drain() after stop().
     */
    void stop();

    /** Connections accepted so far. */
    uint64_t connections() const
    {
        return connections_.load(std::memory_order_relaxed);
    }

  private:
    void handleConnection(int fd);
    /** Close every open connection fd (wakes blocked reads). */
    void closeAllConnections();

    std::string path_;
    EvalService *service_;
    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};
    std::atomic<uint64_t> connections_{0};

    support::Mutex connMutex_{"server.conn",
                              support::rank::kServerConn};
    /** Open connection fds, for shutdown-time unblocking. */
    std::vector<int> connFds_ PICO_GUARDED_BY(connMutex_);
    std::vector<std::thread> connThreads_
        PICO_GUARDED_BY(connMutex_);
};

} // namespace pico::server

#endif // PICO_SERVER_SERVER_HPP
