#include "server/EvalService.hpp"

#include <algorithm>
#include <chrono>

#include "core/TraceModel.hpp"
#include "dse/Spacewalker.hpp"
#include "support/Backoff.hpp"
#include "support/FaultInjection.hpp"
#include "support/Logging.hpp"
#include "support/Metrics.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::server
{

namespace
{

/** Split a comma-separated machine list ("" items dropped). */
std::vector<std::string>
splitMachines(const std::string &list)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : list) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

EvalService::EvalService(ServiceOptions options)
    : options_(options), cache_(options.cachePath),
      queue_(options.queueCapacity, options.queueWatermark)
{
    fatalIf(options_.workers == 0, "eval service needs >= 1 worker");
    workers_.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    inform("eval service: ", options_.workers, " worker(s), queue ",
           queue_.watermark(), "/", queue_.capacity(),
           options_.cachePath.empty()
               ? std::string(", memory-only cache")
               : ", cache " + options_.cachePath);
}

EvalService::~EvalService()
{
    // Never throw from unwind: drain() only warns on trouble.
    drain(options_.drainDeadlineMs);
}

const dse::FailureLog &
EvalService::failures() const
{
    // Callers only read after drain(); the lock guards the writers.
    support::MutexLock lock(failuresMutex_);
    return failures_;
}

Response
EvalService::call(const Request &req)
{
    if (req.type == "ping") {
        Response resp;
        resp.values["draining"] = draining() ? 1.0 : 0.0;
        return resp;
    }
    if (req.type == "stats")
        return statsResponse();
    if (req.type != "eval") {
        Response resp;
        resp.status = Status::BadRequest;
        resp.error = "unknown request type: " + req.type;
        return resp;
    }

    const std::string key = req.idempotencyKey();
    Response memoized;
    if (memoLookup(key, memoized)) {
        memoHits_.fetch_add(1, std::memory_order_relaxed);
        return memoized;
    }

    uint64_t deadline_ms = req.deadlineMs != 0
                               ? req.deadlineMs
                               : options_.defaultDeadlineMs;
    uint64_t deadline_ns =
        deadline_ms != 0
            ? support::monotonicNowNs() + deadline_ms * 1000000ULL
            : support::CancelToken::noDeadline;
    auto task = std::make_shared<Task>(req, deadline_ns);
    task->req.traceBlocks = std::min(
        std::max<uint64_t>(task->req.traceBlocks, 1),
        options_.maxTraceBlocks);

    // Register before pushing: once the task is in the queue a
    // worker may already be executing it, and a drain must be able
    // to cancel everything it could possibly be waiting on. A
    // rejected push leaves an expired weak_ptr behind, which the
    // lazy purge collects.
    {
        support::MutexLock lock(liveMutex_);
        if (live_.size() > 2 * (queue_.capacity() + options_.workers)) {
            live_.erase(std::remove_if(live_.begin(), live_.end(),
                                       [](const std::weak_ptr<Task> &w) {
                                           return w.expired();
                                       }),
                        live_.end());
        }
        live_.push_back(task);
    }

    switch (queue_.tryPush(task)) {
    case support::QueuePush::Ok:
        break;
    case support::QueuePush::AtWatermark:
    case support::QueuePush::Full: {
        shed_.fetch_add(1, std::memory_order_relaxed);
        PICO_METRIC_COUNT("server.shed", 1);
        Response resp;
        resp.status = Status::Shed;
        resp.error = "queue at watermark";
        resp.retryAfterMs = options_.retryAfterMs;
        return resp;
    }
    case support::QueuePush::Closed: {
        shed_.fetch_add(1, std::memory_order_relaxed);
        Response resp;
        resp.status = Status::Shed;
        resp.error = "draining";
        resp.retryAfterMs = options_.drainDeadlineMs;
        return resp;
    }
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);

    Response resp;
    {
        support::MutexLock lock(task->mutex);
        while (!task->done)
            task->cv.wait(lock.native());
        resp = task->resp;
    }
    if (resp.status == Status::Ok)
        memoize(key, resp);
    return resp;
}

void
EvalService::complete(Task &task, Response resp)
{
    {
        support::MutexLock lock(task.mutex);
        task.resp = std::move(resp);
        task.done = true;
    }
    task.cv.notify_all();
}

void
EvalService::workerLoop()
{
    TaskPtr task;
    while (queue_.pop(task)) {
        inflight_.fetch_add(1, std::memory_order_relaxed);
        Response resp = execute(*task);
        switch (resp.status) {
        case Status::Ok:
            completed_.fetch_add(1, std::memory_order_relaxed);
            break;
        case Status::DeadlineExceeded:
            deadline_.fetch_add(1, std::memory_order_relaxed);
            break;
        default:
            failed_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        complete(*task, std::move(resp));
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        task.reset();
    }
    {
        support::MutexLock lock(exitMutex_);
        ++workersExited_;
    }
    exitCv_.notify_all();
}

std::shared_ptr<const ir::Program>
EvalService::programFor(const std::string &app)
{
    // Built while holding the lock: the first request for a new app
    // pays the profile serially (and concurrent requests for it wait
    // instead of duplicating the work); every later request is a map
    // hit. App count is tiny (the suite), so contention is not.
    support::MutexLock lock(programsMutex_);
    auto it = programs_.find(app);
    if (it != programs_.end())
        return it->second;
    auto prog = std::make_shared<ir::Program>(
        workloads::buildAndProfile(workloads::specByName(app)));
    programs_.emplace(app, prog);
    return prog;
}

Response
EvalService::execute(Task &task)
{
    Response resp;
    const std::string key = task.req.idempotencyKey();
    try {
        // Chaos sites: `execute` simulates a worker blowing up,
        // `execute:slow` a stuck evaluation (the armed fault is
        // converted into a bounded deterministic stall).
        support::faultPoint("EvalService::execute");
        try {
            support::faultPoint("EvalService::execute:slow");
        } catch (const FaultInjectedError &) {
            support::sleepForMs(options_.chaosSlowMs);
        }
        // A request that spent its whole deadline queued must not
        // start a walk at all.
        task.token.checkpoint("EvalService::execute");

        auto prog = programFor(task.req.app);
        auto machines = splitMachines(task.req.machines);
        fatalIf(machines.empty(), "request has no machines");

        dse::MemorySpaces spaces;
        dse::Spacewalker::Options opts;
        opts.traceBlocks = task.req.traceBlocks;
        // Scale AHH granules to the request's trace budget so small
        // budgets still yield at least one granule (a block emits a
        // handful of references; the 5x/2.5x ratios match the walks
        // the test suite runs at reduced budgets).
        opts.uGranule = std::max<uint64_t>(task.req.traceBlocks * 5,
                                           1000);
        opts.iGranule = std::min<uint64_t>(
            core::defaultIGranule,
            std::max<uint64_t>(task.req.traceBlocks * 5 / 2, 500));
        opts.jobs = 1; // parallelism lives across requests
        opts.verify = 0;
        opts.sharedCache = &cache_;
        opts.cancel = &task.token;
        dse::Spacewalker walker(spaces, machines, opts);
        auto result = walker.explore(*prog);

        resp.values["designs.evaluated"] =
            static_cast<double>(result.evaluatedDesigns);
        uint64_t deadline_failures = 0;
        for (const auto &f : result.failures.entries()) {
            if (f.stage == "deadline")
                ++deadline_failures;
        }
        resp.values["designs.failed"] = static_cast<double>(
            result.failures.size() - deadline_failures);
        resp.values["designs.deadline"] =
            static_cast<double>(deadline_failures);
        resp.values["pareto.systems"] =
            static_cast<double>(result.systems.points().size());
        for (const auto &[name, d] : result.dilations) {
            resp.values["machine." + name + ".dilation"] = d;
            resp.values["machine." + name + ".cycles"] =
                static_cast<double>(result.processorCycles.at(name));
        }
        if (result.deadlineExceeded) {
            resp.status = Status::DeadlineExceeded;
            resp.error = "deadline exceeded after " +
                         std::to_string(result.evaluatedDesigns) +
                         "/" + std::to_string(machines.size()) +
                         " design(s); completed work is cached";
        }
    } catch (const PanicError &) {
        throw; // internal bugs always propagate
    } catch (const CancelledError &e) {
        resp.status = Status::DeadlineExceeded;
        resp.error = e.what();
    } catch (const std::exception &e) {
        // Failure isolation: this request failed; the service did
        // not. Record it so operators can audit what was survived.
        resp.status = Status::Failed;
        resp.error = e.what();
        support::MutexLock lock(failuresMutex_);
        failures_.record(key, "execute", e.what());
    }
    return resp;
}

Response
EvalService::statsResponse() const
{
    Response resp;
    resp.values = statsValues();
    return resp;
}

std::map<std::string, double>
EvalService::statsValues() const
{
    std::map<std::string, double> v;
    v["accepted"] =
        static_cast<double>(accepted_.load(std::memory_order_relaxed));
    v["shed"] =
        static_cast<double>(shed_.load(std::memory_order_relaxed));
    v["completed"] = static_cast<double>(
        completed_.load(std::memory_order_relaxed));
    v["deadline"] =
        static_cast<double>(deadline_.load(std::memory_order_relaxed));
    v["failed"] =
        static_cast<double>(failed_.load(std::memory_order_relaxed));
    v["memo_hits"] = static_cast<double>(
        memoHits_.load(std::memory_order_relaxed));
    v["inflight"] = static_cast<double>(
        inflight_.load(std::memory_order_relaxed));
    v["draining"] = draining() ? 1.0 : 0.0;
    v["workers"] = static_cast<double>(options_.workers);
    v["queue.depth"] = static_cast<double>(queue_.size());
    v["queue.peak"] = static_cast<double>(queue_.peakDepth());
    v["queue.watermark"] = static_cast<double>(queue_.watermark());
    v["queue.capacity"] = static_cast<double>(queue_.capacity());
    auto cs = cache_.stats();
    v["cache.hits"] = static_cast<double>(cs.hits);
    v["cache.misses"] = static_cast<double>(cs.misses);
    v["cache.disk_hits"] = static_cast<double>(cs.diskHits);
    v["cache.computed"] = static_cast<double>(cs.computed);
    v["cache.stores"] = static_cast<double>(cs.stores);
    v["cache.saves"] = static_cast<double>(cs.saves);
    v["cache.size"] = static_cast<double>(cache_.size());
    return v;
}

void
EvalService::memoize(const std::string &key, const Response &resp)
{
    support::MutexLock lock(memoMutex_);
    if (memo_.size() >= options_.memoCapacity &&
        memo_.count(key) == 0)
        return; // full: plain retries still hit the eval cache
    memo_[key] = resp;
}

bool
EvalService::memoLookup(const std::string &key, Response &resp) const
{
    support::MutexLock lock(memoMutex_);
    auto it = memo_.find(key);
    if (it == memo_.end())
        return false;
    resp = it->second;
    return true;
}

void
EvalService::cancelAllLive()
{
    support::MutexLock lock(liveMutex_);
    for (const auto &weak : live_) {
        if (auto task = weak.lock())
            task->token.cancel();
    }
}

bool
EvalService::drain(uint64_t deadline_ms)
{
    {
        support::MutexLock lock(drainMutex_);
        if (drained_)
            return drainVerdict_;
        drained_ = true;
    }
    draining_.store(true, std::memory_order_release);
    inform("eval service draining (deadline ", deadline_ms, " ms, ",
           queue_.size(), " queued, ",
           inflight_.load(std::memory_order_relaxed), " in flight)");

    // Phase 1: stop admission, let the workers finish the backlog.
    queue_.close();
    bool graceful = true;
    {
        support::MutexLock lock(exitMutex_);
        auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(deadline_ms);
        while (workersExited_ < options_.workers) {
            if (exitCv_.wait_until(lock.native(), until) ==
                std::cv_status::timeout) {
                graceful = workersExited_ == options_.workers;
                break;
            }
        }
        graceful = graceful && workersExited_ == options_.workers;
    }

    // Phase 2 (deadline blown): answer every stranded queued request
    // as shed — admitted work is never silently dropped — and cancel
    // what is executing; the tokens bound how long joining can take.
    if (!graceful) {
        auto stranded = queue_.closeAndDrain();
        for (const auto &task : stranded) {
            shed_.fetch_add(1, std::memory_order_relaxed);
            Response resp;
            resp.status = Status::Shed;
            resp.error = "drain deadline";
            complete(*task, std::move(resp));
        }
        cancelAllLive();
        warn("drain deadline blown: shed ", stranded.size(),
             " queued request(s), cancelled in-flight work");
    }
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();

    // Phase 3: final cache flush — the whole point of a graceful
    // drain is that completed work survives the restart. Never let
    // a flush error (e.g. an armed chaos fault) escape: drain runs
    // from the destructor, and the cache retries on its own final
    // flush anyway (a failed save keeps the dirty flag set).
    try {
        cache_.flush();
    } catch (const std::exception &e) {
        warn("drain-time cache flush failed: ", e.what());
    }
    inform("eval service drained",
           graceful ? "" : " (deadline blown)");
    {
        support::MutexLock lock(drainMutex_);
        drainVerdict_ = graceful;
    }
    return graceful;
}

} // namespace pico::server
