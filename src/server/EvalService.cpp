#include "server/EvalService.hpp"

#include <algorithm>
#include <chrono>

#include <cstdio>

#include "core/TraceModel.hpp"
#include "dse/Spacewalker.hpp"
#include "support/Backoff.hpp"
#include "support/FaultInjection.hpp"
#include "support/FlightRecorder.hpp"
#include "support/Logging.hpp"
#include "support/Metrics.hpp"
#include "support/SchedulePerturb.hpp"
#include "support/TraceEvents.hpp"
#include "workloads/AppSpec.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::server
{

namespace
{

using support::FlightRecorder;

/** Stats-key spelling of each Verb bucket. */
constexpr const char *verbKeyNames[] = {"eval", "stats", "health",
                                        "dump_trace", "ping"};

/** Split a comma-separated machine list ("" items dropped). */
std::vector<std::string>
splitMachines(const std::string &list)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : list) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

EvalService::EvalService(ServiceOptions options)
    : options_(options), cache_(options.cachePath),
      queue_(options.queueCapacity, options.queueWatermark)
{
    fatalIf(options_.workers == 0, "eval service needs >= 1 worker");
    workers_.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i) {
        workers_.emplace_back([this, i] {
            support::TraceRecorder::instance().nameThisThread(
                "server-worker-" + std::to_string(i));
            workerLoop();
        });
    }
    inform("eval service: ", options_.workers, " worker(s), queue ",
           queue_.watermark(), "/", queue_.capacity(),
           options_.cachePath.empty()
               ? std::string(", memory-only cache")
               : ", cache " + options_.cachePath);
}

EvalService::~EvalService()
{
    // Never throw from unwind: drain() only warns on trouble.
    drain(options_.drainDeadlineMs);
}

const dse::FailureLog &
EvalService::failures() const
{
    // Callers only read after drain(); the lock guards the writers.
    support::MutexLock lock(failuresMutex_);
    return failures_;
}

Response
EvalService::call(const Request &req)
{
    uint64_t start_ns = support::monotonicNowNs();
    if (req.type == "ping") {
        Response resp;
        resp.values["draining"] = draining() ? 1.0 : 0.0;
        recordVerb(VerbPing, start_ns);
        return resp;
    }
    if (req.type == "stats") {
        Response resp = statsResponse();
        recordVerb(VerbStats, start_ns);
        return resp;
    }
    if (req.type == "health") {
        Response resp = healthResponse();
        recordVerb(VerbHealth, start_ns);
        return resp;
    }
    if (req.type == "dump-trace") {
        Response resp = dumpTraceResponse(req);
        recordVerb(VerbDumpTrace, start_ns);
        return resp;
    }
    if (req.type != "eval") {
        Response resp;
        resp.status = Status::BadRequest;
        resp.error = "unknown request type: " + req.type;
        return resp;
    }
    Response resp = evalCall(req);
    recordVerb(VerbEval, start_ns);
    return resp;
}

Response
EvalService::evalCall(const Request &req)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    // The request identity everything downstream is stamped with:
    // spans, flow events, flight-recorder entries, and the response
    // itself (values["request.id"]), so a client can hand the id
    // back to dump-trace.
    const uint64_t rid = support::newRequestId();
    support::RequestSpan span(support::TraceContext{rid, 0},
                              "server.request");
    if (support::traceEnabled())
        support::TraceRecorder::instance().flowStart("request", rid);

    const std::string key = req.idempotencyKey();
    Response memoized;
    if (memoLookup(key, memoized)) {
        memoHits_.fetch_add(1, std::memory_order_relaxed);
        FlightRecorder::instance().record(
            FlightRecorder::EventKind::Finish, rid, "memo");
        memoized.values["request.id"] = static_cast<double>(rid);
        return memoized;
    }

    uint64_t deadline_ms = req.deadlineMs != 0
                               ? req.deadlineMs
                               : options_.defaultDeadlineMs;
    uint64_t deadline_ns =
        deadline_ms != 0
            ? support::monotonicNowNs() + deadline_ms * 1000000ULL
            : support::CancelToken::noDeadline;
    auto task = std::make_shared<Task>(req, deadline_ns);
    // The worker resumes this request's tree: same request id, its
    // execute span parented under this thread's request span.
    task->ctx = span.context();
    task->req.traceBlocks = std::min(
        std::max<uint64_t>(task->req.traceBlocks, 1),
        options_.maxTraceBlocks);

    // Register before pushing: once the task is in the queue a
    // worker may already be executing it, and a drain must be able
    // to cancel everything it could possibly be waiting on. A
    // rejected push leaves an expired weak_ptr behind, which the
    // lazy purge collects.
    {
        support::MutexLock lock(liveMutex_);
        if (live_.size() > 2 * (queue_.capacity() + options_.workers)) {
            live_.erase(std::remove_if(live_.begin(), live_.end(),
                                       [](const std::weak_ptr<Task> &w) {
                                           return w.expired();
                                       }),
                        live_.end());
        }
        live_.push_back(task);
    }

    switch (queue_.tryPush(task)) {
    case support::QueuePush::Ok:
        FlightRecorder::instance().record(
            FlightRecorder::EventKind::Admit, rid);
        break;
    case support::QueuePush::AtWatermark:
    case support::QueuePush::Full: {
        shed_.fetch_add(1, std::memory_order_relaxed);
        PICO_METRIC_COUNT("server.shed", 1);
        FlightRecorder::instance().record(
            FlightRecorder::EventKind::Shed, rid,
            "queue at watermark");
        Response resp;
        resp.status = Status::Shed;
        resp.error = "queue at watermark";
        resp.retryAfterMs = options_.retryAfterMs;
        resp.values["request.id"] = static_cast<double>(rid);
        return resp;
    }
    case support::QueuePush::Closed: {
        shed_.fetch_add(1, std::memory_order_relaxed);
        FlightRecorder::instance().record(
            FlightRecorder::EventKind::Shed, rid, "draining");
        Response resp;
        resp.status = Status::Shed;
        resp.error = "draining";
        resp.retryAfterMs = options_.drainDeadlineMs;
        resp.values["request.id"] = static_cast<double>(rid);
        return resp;
    }
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);

    Response resp;
    {
        support::MutexLock lock(task->taskMutex);
        while (!task->done)
            task->cv.wait(lock.native());
        resp = task->resp;
    }
    resp.values["request.id"] = static_cast<double>(rid);
    if (resp.status == Status::Ok)
        memoize(key, resp);
    return resp;
}

void
EvalService::complete(Task &task, Response resp)
{
    {
        support::MutexLock lock(task.taskMutex);
        task.resp = std::move(resp);
        task.done = true;
    }
    task.cv.notify_all();
}

void
EvalService::workerLoop()
{
    TaskPtr task;
    while (queue_.pop(task)) {
        // Popped / not yet started: the window drain() races with.
        support::perturbPoint("evalservice.worker");
        inflight_.fetch_add(1, std::memory_order_relaxed);
        const uint64_t rid = task->ctx.requestId;
        FlightRecorder::instance().record(
            FlightRecorder::EventKind::Start, rid);
        Response resp;
        {
            // Continue the request's tree on this thread: the
            // execute span parents under the admit-side request
            // span, and the flow step ties the two tracks together.
            support::RequestSpan span(task->ctx, "server.execute");
            if (support::traceEnabled())
                support::TraceRecorder::instance().flowStep(
                    "request", rid);
            resp = execute(*task);
        }
        switch (resp.status) {
        case Status::Ok:
            completed_.fetch_add(1, std::memory_order_relaxed);
            FlightRecorder::instance().record(
                FlightRecorder::EventKind::Finish, rid);
            break;
        case Status::DeadlineExceeded:
            deadline_.fetch_add(1, std::memory_order_relaxed);
            FlightRecorder::instance().record(
                FlightRecorder::EventKind::Deadline, rid);
            break;
        default:
            failed_.fetch_add(1, std::memory_order_relaxed);
            FlightRecorder::instance().record(
                FlightRecorder::EventKind::Fault, rid,
                resp.error.c_str());
            break;
        }
        complete(*task, std::move(resp));
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        task.reset();
    }
    {
        support::MutexLock lock(exitMutex_);
        ++workersExited_;
    }
    exitCv_.notify_all();
}

std::shared_ptr<const ir::Program>
EvalService::programFor(const std::string &app)
{
    // Built while holding the lock: the first request for a new app
    // pays the profile serially (and concurrent requests for it wait
    // instead of duplicating the work); every later request is a map
    // hit. App count is tiny (the suite), so contention is not.
    support::MutexLock lock(programsMutex_);
    auto it = programs_.find(app);
    if (it != programs_.end())
        return it->second;
    auto prog = std::make_shared<ir::Program>(
        workloads::buildAndProfile(workloads::specByName(app)));
    programs_.emplace(app, prog);
    return prog;
}

Response
EvalService::execute(Task &task)
{
    Response resp;
    const std::string key = task.req.idempotencyKey();
    try {
        // Chaos sites: `execute` simulates a worker blowing up,
        // `execute:slow` a stuck evaluation (the armed fault is
        // converted into a bounded deterministic stall).
        support::faultPoint("EvalService::execute");
        try {
            support::faultPoint("EvalService::execute:slow");
        } catch (const FaultInjectedError &) {
            support::sleepForMs(options_.chaosSlowMs);
        }
        // A request that spent its whole deadline queued must not
        // start a walk at all.
        task.token.checkpoint("EvalService::execute");

        auto prog = programFor(task.req.app);
        auto machines = splitMachines(task.req.machines);
        fatalIf(machines.empty(), "request has no machines");

        dse::MemorySpaces spaces;
        dse::Spacewalker::Options opts;
        opts.traceBlocks = task.req.traceBlocks;
        // Scale AHH granules to the request's trace budget so small
        // budgets still yield at least one granule (a block emits a
        // handful of references; the 5x/2.5x ratios match the walks
        // the test suite runs at reduced budgets).
        opts.uGranule = std::max<uint64_t>(task.req.traceBlocks * 5,
                                           1000);
        opts.iGranule = std::min<uint64_t>(
            core::defaultIGranule,
            std::max<uint64_t>(task.req.traceBlocks * 5 / 2, 500));
        opts.jobs = 1; // parallelism lives across requests
        opts.verify = 0;
        opts.sharedCache = &cache_;
        opts.cancel = &task.token;
        dse::Spacewalker walker(spaces, machines, opts);
        auto result = walker.explore(*prog);

        resp.values["designs.evaluated"] =
            static_cast<double>(result.evaluatedDesigns);
        uint64_t deadline_failures = 0;
        for (const auto &f : result.failures.entries()) {
            if (f.stage == "deadline")
                ++deadline_failures;
        }
        resp.values["designs.failed"] = static_cast<double>(
            result.failures.size() - deadline_failures);
        resp.values["designs.deadline"] =
            static_cast<double>(deadline_failures);
        resp.values["pareto.systems"] =
            static_cast<double>(result.systems.points().size());
        for (const auto &[name, d] : result.dilations) {
            resp.values["machine." + name + ".dilation"] = d;
            resp.values["machine." + name + ".cycles"] =
                static_cast<double>(result.processorCycles.at(name));
        }
        if (result.deadlineExceeded) {
            resp.status = Status::DeadlineExceeded;
            resp.error = "deadline exceeded after " +
                         std::to_string(result.evaluatedDesigns) +
                         "/" + std::to_string(machines.size()) +
                         " design(s); completed work is cached";
        }
    } catch (const PanicError &) {
        throw; // internal bugs always propagate
    } catch (const CancelledError &e) {
        resp.status = Status::DeadlineExceeded;
        resp.error = e.what();
    } catch (const std::exception &e) {
        // Failure isolation: this request failed; the service did
        // not. Record it so operators can audit what was survived.
        resp.status = Status::Failed;
        resp.error = e.what();
        support::MutexLock lock(failuresMutex_);
        failures_.record(key, "execute", e.what());
    }
    return resp;
}

Response
EvalService::statsResponse() const
{
    Response resp;
    resp.values = statsValues();
    return resp;
}

Response
EvalService::healthResponse() const
{
    Response resp;
    resp.values["draining"] = draining() ? 1.0 : 0.0;
    size_t depth = queue_.size();
    size_t watermark = queue_.watermark();
    resp.values["queue.depth"] = static_cast<double>(depth);
    resp.values["queue.watermark"] = static_cast<double>(watermark);
    resp.values["queue.occupancy"] =
        watermark != 0 ? static_cast<double>(depth) /
                             static_cast<double>(watermark)
                       : 0.0;
    resp.values["inflight"] = static_cast<double>(
        inflight_.load(std::memory_order_relaxed));
    resp.values["flight.recorded"] =
        static_cast<double>(FlightRecorder::instance().recorded());
    {
        support::MutexLock lock(failuresMutex_);
        resp.values["failures"] =
            static_cast<double>(failures_.size());
        if (!failures_.empty()) {
            const auto &last = failures_.entries().back();
            resp.body = "{\"key\":\"" + support::jsonEscape(last.design) +
                        "\",\"stage\":\"" +
                        support::jsonEscape(last.stage) +
                        "\",\"error\":\"" +
                        support::jsonEscape(last.reason) + "\"}";
        }
    }
    return resp;
}

Response
EvalService::dumpTraceResponse(const Request &req) const
{
    Response resp;
    if (req.requestId == 0) {
        resp.status = Status::BadRequest;
        resp.error = "dump-trace needs request_id";
        return resp;
    }
    const auto &recorder = support::TraceRecorder::instance();
    resp.values["request.id"] = static_cast<double>(req.requestId);
    resp.values["events"] = static_cast<double>(
        recorder.requestEvents(req.requestId).size());
    resp.values["trace.dropped"] =
        static_cast<double>(recorder.droppedCount());
    resp.body = recorder.requestJson(req.requestId);
    return resp;
}

void
EvalService::recordVerb(size_t verb, uint64_t start_ns) const
{
    uint64_t ns = support::monotonicNowNs() - start_ns;
    VerbLatency &vl = verbLatency_[verb];
    support::MutexLock lock(vl.latencyMutex);
    vl.ns[vl.count % VerbLatency::ringSize] = ns;
    ++vl.count;
}

std::map<std::string, double>
EvalService::statsValues() const
{
    std::map<std::string, double> v;
    v["requests.total"] = static_cast<double>(
        requests_.load(std::memory_order_relaxed));
    v["accepted"] =
        static_cast<double>(accepted_.load(std::memory_order_relaxed));
    v["shed"] =
        static_cast<double>(shed_.load(std::memory_order_relaxed));
    v["completed"] = static_cast<double>(
        completed_.load(std::memory_order_relaxed));
    v["deadline"] =
        static_cast<double>(deadline_.load(std::memory_order_relaxed));
    v["failed"] =
        static_cast<double>(failed_.load(std::memory_order_relaxed));
    v["memo_hits"] = static_cast<double>(
        memoHits_.load(std::memory_order_relaxed));
    v["inflight"] = static_cast<double>(
        inflight_.load(std::memory_order_relaxed));
    v["draining"] = draining() ? 1.0 : 0.0;
    v["workers"] = static_cast<double>(options_.workers);
    v["queue.depth"] = static_cast<double>(queue_.size());
    v["queue.peak"] = static_cast<double>(queue_.peakDepth());
    v["queue.watermark"] = static_cast<double>(queue_.watermark());
    v["queue.capacity"] = static_cast<double>(queue_.capacity());
    auto cs = cache_.stats();
    v["cache.hits"] = static_cast<double>(cs.hits);
    v["cache.misses"] = static_cast<double>(cs.misses);
    v["cache.disk_hits"] = static_cast<double>(cs.diskHits);
    v["cache.computed"] = static_cast<double>(cs.computed);
    v["cache.stores"] = static_cast<double>(cs.stores);
    v["cache.saves"] = static_cast<double>(cs.saves);
    v["cache.size"] = static_cast<double>(cache_.size());
    auto shards = cache_.shardStats();
    for (size_t k = 0; k < shards.size(); ++k) {
        char name[48];
        std::snprintf(name, sizeof(name), "cache.shard%02zu.hits",
                      k);
        v[name] = static_cast<double>(shards[k].hits);
        std::snprintf(name, sizeof(name), "cache.shard%02zu.misses",
                      k);
        v[name] = static_cast<double>(shards[k].misses);
    }
    for (size_t verb = 0; verb < VerbCount; ++verb) {
        const VerbLatency &vl = verbLatency_[verb];
        std::string prefix =
            std::string("verb.") + verbKeyNames[verb];
        uint64_t count;
        std::vector<uint64_t> window;
        {
            support::MutexLock lock(vl.latencyMutex);
            count = vl.count;
            size_t held = static_cast<size_t>(
                std::min<uint64_t>(count, VerbLatency::ringSize));
            window.assign(vl.ns.begin(), vl.ns.begin() + held);
        }
        v[prefix + ".count"] = static_cast<double>(count);
        if (!window.empty()) {
            std::sort(window.begin(), window.end());
            v[prefix + ".p50_ns"] = static_cast<double>(
                window[(window.size() - 1) * 50 / 100]);
            v[prefix + ".p99_ns"] = static_cast<double>(
                window[(window.size() - 1) * 99 / 100]);
        }
    }
    v["flight.recorded"] =
        static_cast<double>(FlightRecorder::instance().recorded());
    v["trace.dropped"] = static_cast<double>(
        support::TraceRecorder::instance().droppedCount());
    return v;
}

void
EvalService::memoize(const std::string &key, const Response &resp)
{
    support::MutexLock lock(memoMutex_);
    if (memo_.size() >= options_.memoCapacity &&
        memo_.count(key) == 0)
        return; // full: plain retries still hit the eval cache
    memo_[key] = resp;
}

bool
EvalService::memoLookup(const std::string &key, Response &resp) const
{
    support::MutexLock lock(memoMutex_);
    auto it = memo_.find(key);
    if (it == memo_.end())
        return false;
    resp = it->second;
    return true;
}

void
EvalService::cancelAllLive()
{
    support::MutexLock lock(liveMutex_);
    for (const auto &weak : live_) {
        if (auto task = weak.lock())
            task->token.cancel();
    }
}

bool
EvalService::drain(uint64_t deadline_ms)
{
    {
        support::MutexLock lock(drainMutex_);
        if (drained_)
            return drainVerdict_;
        drained_ = true;
    }
    draining_.store(true, std::memory_order_release);
    FlightRecorder::instance().record(
        FlightRecorder::EventKind::Drain, 0, "begin");
    inform("eval service draining (deadline ", deadline_ms, " ms, ",
           queue_.size(), " queued, ",
           inflight_.load(std::memory_order_relaxed), " in flight)");

    // Phase 1: stop admission, let the workers finish the backlog.
    queue_.close();
    // Admission closed / workers still draining the backlog.
    support::perturbPoint("evalservice.drain");
    bool graceful = true;
    {
        support::MutexLock lock(exitMutex_);
        auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(deadline_ms);
        while (workersExited_ < options_.workers) {
            if (exitCv_.wait_until(lock.native(), until) ==
                std::cv_status::timeout) {
                graceful = workersExited_ == options_.workers;
                break;
            }
        }
        graceful = graceful && workersExited_ == options_.workers;
    }

    // Phase 2 (deadline blown): answer every stranded queued request
    // as shed — admitted work is never silently dropped — and cancel
    // what is executing; the tokens bound how long joining can take.
    if (!graceful) {
        auto stranded = queue_.closeAndDrain();
        for (const auto &task : stranded) {
            shed_.fetch_add(1, std::memory_order_relaxed);
            FlightRecorder::instance().record(
                FlightRecorder::EventKind::Shed,
                task->ctx.requestId, "drain deadline");
            Response resp;
            resp.status = Status::Shed;
            resp.error = "drain deadline";
            resp.values["request.id"] =
                static_cast<double>(task->ctx.requestId);
            complete(*task, std::move(resp));
        }
        cancelAllLive();
        warn("drain deadline blown: shed ", stranded.size(),
             " queued request(s), cancelled in-flight work");
    }
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();

    // Phase 3: final cache flush — the whole point of a graceful
    // drain is that completed work survives the restart. Never let
    // a flush error (e.g. an armed chaos fault) escape: drain runs
    // from the destructor, and the cache retries on its own final
    // flush anyway (a failed save keeps the dirty flag set).
    try {
        cache_.flush();
    } catch (const std::exception &e) {
        warn("drain-time cache flush failed: ", e.what());
    }
    FlightRecorder::instance().record(
        FlightRecorder::EventKind::Drain, 0,
        graceful ? "graceful" : "deadline blown");
    inform("eval service drained",
           graceful ? "" : " (deadline blown)");
    {
        support::MutexLock lock(drainMutex_);
        drainVerdict_ = graceful;
    }
    return graceful;
}

} // namespace pico::server
