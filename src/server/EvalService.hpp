/**
 * @file
 * The evaluation service: bounded admission, deadline-aware workers,
 * one shared crash-safe cache — the hardened core of the server.
 *
 * The service is the in-process half of `picoeval_server`: the socket
 * layer parses frames and calls call(); everything robustness-related
 * lives here, so the chaos tests can exercise the full overload and
 * failure machinery deterministically without a socket in the loop.
 *
 * Robustness model:
 *
 *  - *Admission control*: requests enter a BoundedQueue; at the
 *    watermark the service sheds (Status::Shed + a retry-after hint)
 *    instead of queueing. Admitted work is bounded, so the p99 of
 *    admitted requests stays bounded no matter the offered load.
 *
 *  - *Deadlines*: each request carries a deadline that becomes a
 *    CancelToken threaded through the spacewalker's inner loops. A
 *    request that blows its deadline returns *partial* results
 *    tagged DeadlineExceeded — and everything it completed is in the
 *    shared cache, so a retry picks up where it stopped.
 *
 *  - *Idempotency*: a retry carrying the key of a completed request
 *    is answered from the result memo without re-walking; below
 *    that, the cache's single-flight getOrCompute collapses
 *    concurrent identical computations.
 *
 *  - *Failure isolation*: one request's evaluation error is recorded
 *    (FailureLog) and answered as Status::Failed; the workers, the
 *    queue and every other request are untouched. Only PanicError
 *    (an internal bug) propagates.
 *
 *  - *Graceful drain*: drain() stops admission, lets the workers
 *    finish the backlog under a deadline, sheds what the deadline
 *    strands (answering every abandoned waiter), cancels in-flight
 *    work past the deadline, and flushes the cache. Nothing is
 *    silently dropped and nothing blocks forever.
 *
 * Observability model (request-scoped):
 *
 *  - every eval request is assigned a process-unique request id,
 *    returned in values["request.id"] and stamped on every span and
 *    flight-recorder event the request produces — on whichever
 *    thread produced it. The admitting thread opens a request span
 *    and a flow; the worker continues the flow and parents its
 *    execute span under the admit span, so one request renders as a
 *    single connected tree across threads in the exported trace;
 *
 *  - introspection verbs bypass admission (an overloaded server must
 *    stay observable): "stats" reports every counter plus rolling
 *    per-verb latency quantiles and the per-shard cache hit split,
 *    "health" reports drain state, watermark occupancy and the last
 *    recorded fault, "dump-trace" drains one request's span tree as
 *    JSON (Request::requestId names it);
 *
 *  - every lifecycle transition (admit/shed/start/deadline/fault/
 *    finish/drain) is also recorded in the always-on FlightRecorder,
 *    so a post-mortem names the affected request ids even when
 *    tracing and metrics were off.
 */

#ifndef PICO_SERVER_EVAL_SERVICE_HPP
#define PICO_SERVER_EVAL_SERVICE_HPP

#include <array>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dse/EvaluationCache.hpp"
#include "dse/FailureLog.hpp"
#include "ir/Program.hpp"
#include "server/Protocol.hpp"
#include "support/BoundedQueue.hpp"
#include "support/CancelToken.hpp"
#include "support/ThreadAnnotations.hpp"
#include "support/TraceContext.hpp"

namespace pico::server
{

/** Tuning knobs of one EvalService. */
struct ServiceOptions
{
    /** Persistent evaluation-cache database ("" = memory only). */
    std::string cachePath;
    /** Worker threads executing admitted requests. */
    unsigned workers = 2;
    /** Hard bound on queued (admitted, not yet running) requests. */
    size_t queueCapacity = 64;
    /** Shed threshold (0 = capacity). */
    size_t queueWatermark = 48;
    /** Deadline applied when a request carries none (0 = none). */
    uint64_t defaultDeadlineMs = 0;
    /** Upper bound on a request's traceBlocks (cost ceiling). */
    uint64_t maxTraceBlocks = 60000;
    /** Retry-after hint attached to shed responses (ms). */
    uint64_t retryAfterMs = 25;
    /** Drain deadline used by the destructor (ms). */
    uint64_t drainDeadlineMs = 10000;
    /** Completed-response memo capacity (idempotent retries). */
    size_t memoCapacity = 1024;
    /** Sleep injected when the chaos site `EvalService::execute:slow`
     *  fires (ms). */
    uint64_t chaosSlowMs = 25;
};

/** Concurrent evaluation service over one shared cache. */
class EvalService
{
  public:
    explicit EvalService(ServiceOptions options);

    /** Drains with Options::drainDeadlineMs if not drained yet. */
    ~EvalService();

    EvalService(const EvalService &) = delete;
    EvalService &operator=(const EvalService &) = delete;

    /**
     * Handle one request, blocking until its terminal response.
     * Sheds immediately (without blocking) when the queue is at the
     * watermark or the service is draining. "stats", "health",
     * "dump-trace" and "ping" requests are answered inline,
     * bypassing admission — operators must be able to observe an
     * overloaded server.
     */
    Response call(const Request &req);

    /**
     * Stop admission, finish the backlog under `deadline_ms`, shed
     * what the deadline strands, cancel in-flight work past it, join
     * the workers and flush the cache. Idempotent; later calls
     * return the first drain's verdict.
     * @return true when every admitted request finished before the
     *         deadline (no request was shed or cancelled by drain)
     */
    bool drain(uint64_t deadline_ms)
        PICO_REQUIRES(!drainMutex_);

    /** True once drain() has started (admission is closed). */
    bool draining() const
    {
        return draining_.load(std::memory_order_acquire);
    }

    /** The shared evaluation cache (for stats and verification). */
    const dse::EvaluationCache &cache() const { return cache_; }

    /** Per-request failures the service survived. */
    const dse::FailureLog &failures() const;

    /** Current server counters (same values a stats request gets). */
    std::map<std::string, double> statsValues() const;

  private:
    /** One admitted request travelling through the queue. */
    struct Task
    {
        Task(Request r, uint64_t deadline_ns)
            : req(std::move(r)), token(deadline_ns)
        {}

        Request req;
        support::CancelToken token;
        /** Originating request's trace context (request id + the
         *  admit span as parent), installed by the worker so its
         *  spans join the request's tree. */
        support::TraceContext ctx;
        support::Mutex taskMutex{"evalservice.task",
                                 support::rank::kServiceTask};
        std::condition_variable cv;
        bool done PICO_GUARDED_BY(taskMutex) = false;
        Response resp PICO_GUARDED_BY(taskMutex);
    };
    using TaskPtr = std::shared_ptr<Task>;

    /** Latency buckets: one rolling ring per protocol verb. */
    enum Verb : size_t
    {
        VerbEval = 0,
        VerbStats,
        VerbHealth,
        VerbDumpTrace,
        VerbPing,
        VerbCount,
    };

    /** Rolling latency samples of one verb; quantiles computed at
     *  read time from whatever the ring currently holds. */
    struct VerbLatency
    {
        static constexpr size_t ringSize = 512;
        mutable support::Mutex latencyMutex{
            "evalservice.verblatency", support::rank::kVerbLatency};
        std::array<uint64_t, ringSize> ns
            PICO_GUARDED_BY(latencyMutex){};
        uint64_t count PICO_GUARDED_BY(latencyMutex) = 0;
    };

    void workerLoop();
    /** Run one task's evaluation; fills the response. */
    Response execute(Task &task);
    /** Deliver a response and wake the task's waiter. */
    static void complete(Task &task, Response resp);
    /** The profiled program of an app (memoized per app name). */
    std::shared_ptr<const ir::Program>
    programFor(const std::string &app);
    /** The admission/wait path of one eval request. */
    Response evalCall(const Request &req);
    Response statsResponse() const;
    Response healthResponse() const;
    Response dumpTraceResponse(const Request &req) const;
    /** Record one verb sample: now minus `start_ns`. */
    void recordVerb(size_t verb, uint64_t start_ns) const;
    void memoize(const std::string &key, const Response &resp);
    bool memoLookup(const std::string &key, Response &resp) const;
    /** Cancel the token of every live (queued or running) task. */
    void cancelAllLive();

    ServiceOptions options_;
    dse::EvaluationCache cache_;
    support::BoundedQueue<TaskPtr> queue_;
    std::vector<std::thread> workers_;

    /** Live tasks, for drain-time cancellation. */
    mutable support::Mutex liveMutex_{
        "evalservice.live", support::rank::kEvalServiceLive};
    std::vector<std::weak_ptr<Task>> live_
        PICO_GUARDED_BY(liveMutex_);

    /** Profiled programs by app name (built once, reused). */
    mutable support::Mutex programsMutex_{
        "evalservice.programs",
        support::rank::kEvalServicePrograms};
    std::map<std::string, std::shared_ptr<const ir::Program>>
        programs_ PICO_GUARDED_BY(programsMutex_);

    /** Completed (Ok) responses by idempotency key. */
    mutable support::Mutex memoMutex_{
        "evalservice.memo", support::rank::kEvalServiceMemo};
    std::map<std::string, Response> memo_
        PICO_GUARDED_BY(memoMutex_);

    /** Per-request failures (isolation record). */
    mutable support::Mutex failuresMutex_{
        "evalservice.failures",
        support::rank::kEvalServiceFailures};
    dse::FailureLog failures_ PICO_GUARDED_BY(failuresMutex_);

    /** Worker-exit rendezvous for the drain deadline. */
    mutable support::Mutex exitMutex_{
        "evalservice.exit", support::rank::kEvalServiceExit};
    std::condition_variable exitCv_;
    unsigned workersExited_ PICO_GUARDED_BY(exitMutex_) = 0;

    /** Serializes drain() and records its verdict. */
    support::Mutex drainMutex_{"evalservice.drain",
                               support::rank::kEvalServiceDrain};
    bool drained_ PICO_GUARDED_BY(drainMutex_) = false;
    bool drainVerdict_ PICO_GUARDED_BY(drainMutex_) = true;

    /** Per-verb latency rings (mutable: reads also sample). */
    mutable std::array<VerbLatency, VerbCount> verbLatency_;

    std::atomic<bool> draining_{false};
    /** Eval requests received (memo hits and sheds included). */
    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> deadline_{0};
    std::atomic<uint64_t> failed_{0};
    std::atomic<uint64_t> memoHits_{0};
    std::atomic<uint64_t> inflight_{0};
};

} // namespace pico::server

#endif // PICO_SERVER_EVAL_SERVICE_HPP
