/**
 * @file
 * Evaluation-server client with retry, backoff and idempotent keys.
 *
 * The client owns the *polite* half of the overload contract: when
 * the server sheds (or the connection drops), it retries with full-
 * jitter exponential backoff — seeded through Rng::forStream, so a
 * load test's retry timing is reproducible and concurrent clients
 * never thunder in phase — and it retries the *same idempotency
 * key*, so work completed before a failure is answered from the
 * server's memo and cache instead of being redone.
 *
 * Terminal statuses (ok, deadline_exceeded, failed, bad_request) are
 * returned to the caller as-is: retrying them is either pointless or
 * the caller's policy decision, not the transport's.
 */

#ifndef PICO_SERVER_CLIENT_HPP
#define PICO_SERVER_CLIENT_HPP

#include <cstdint>
#include <string>

#include "server/Protocol.hpp"
#include "support/Backoff.hpp"

namespace pico::server
{

/** Client-side retry policy and identity. */
struct ClientOptions
{
    /** Path of the server's Unix domain socket. */
    std::string socketPath;
    /** Attempts per call (first try + retries). */
    uint32_t maxAttempts = 8;
    /** Backoff base delay (ms); doubles per retry, full jitter. */
    uint64_t backoffBaseMs = 2;
    /** Backoff cap (ms). */
    uint64_t backoffCapMs = 250;
    /** Experiment seed for the jitter stream. */
    uint64_t seed = 1;
    /** Client index (distinct streams stay out of phase). */
    uint64_t stream = 0;
};

/** One connection to the evaluation server (not thread-safe; one
 *  client per thread, distinguished by `stream`). */
class Client
{
  public:
    explicit Client(ClientOptions options);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Send a request and return its terminal response, retrying
     * shed responses and transport failures with backoff. When the
     * attempt budget runs out, the last shed/transport response is
     * returned (status Shed).
     */
    Response call(const Request &req);

    /** Retries performed since construction (attempts - calls). */
    uint64_t retries() const { return retries_; }
    /** Retries caused by a shed response (load, not transport). */
    uint64_t retriesShed() const { return retriesShed_; }
    /** Retries caused by a transport failure (connect/read/write). */
    uint64_t retriesTransport() const { return retriesTransport_; }
    /** Shed responses observed (including retried ones). */
    uint64_t shedSeen() const { return shedSeen_; }
    /** Failed attempts on the wire (connect/read/write errors). */
    uint64_t transportFailures() const { return transportFailures_; }

  private:
    /** Ensure a connected socket; false when connect fails. */
    bool ensureConnected();
    void disconnect();
    /** One attempt on the wire; false on transport failure. */
    bool attempt(const Request &req, Response &resp);

    ClientOptions options_;
    support::Backoff backoff_;
    int fd_ = -1;
    uint64_t retries_ = 0;
    uint64_t retriesShed_ = 0;
    uint64_t retriesTransport_ = 0;
    uint64_t shedSeen_ = 0;
    uint64_t transportFailures_ = 0;
};

} // namespace pico::server

#endif // PICO_SERVER_CLIENT_HPP
