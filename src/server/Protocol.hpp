/**
 * @file
 * Wire protocol of the evaluation server.
 *
 * Requests and responses travel as *length-prefixed text frames*: a
 * 4-byte little-endian payload length followed by the payload, which
 * is a list of newline-separated `key value` lines opened by a
 * version tag. Text keeps the protocol greppable and trivially
 * extensible (unknown keys are skipped, so old clients survive new
 * servers and vice versa); the length prefix keeps framing exact
 * under partial reads and concurrent writers.
 *
 * The protocol is *deliberate about failure*: every response carries
 * a status that distinguishes success, load shedding (retry later,
 * with a hint), a blown deadline (partial work; retrying hits the
 * cache), a request the server refused to parse (retrying is
 * pointless), and an evaluation failure (isolated to this request).
 */

#ifndef PICO_SERVER_PROTOCOL_HPP
#define PICO_SERVER_PROTOCOL_HPP

#include <cstdint>
#include <map>
#include <string>

namespace pico::server
{

/** Version tag opening every request payload. */
inline constexpr const char *requestTag = "picoeval-req-v1";
/** Version tag opening every response payload. */
inline constexpr const char *responseTag = "picoeval-resp-v1";

/** Upper bound on one frame's payload (defensive framing limit). */
inline constexpr uint32_t maxFrameBytes = 1u << 20;

/** One evaluation (or introspection) request. */
struct Request
{
    /** "eval", "stats", "health", "dump-trace" or "ping". */
    std::string type = "eval";
    /** Application name (suite member, see workloads::specByName). */
    std::string app = "rasta";
    /** Comma-separated machine names (the design subset to walk). */
    std::string machines = "1111";
    /** Block-entry budget of the walk's reference traces. */
    uint64_t traceBlocks = 4000;
    /** Per-request deadline in ms (0 = none). */
    uint64_t deadlineMs = 0;
    /**
     * Idempotency key: a retry carrying the key of a previously
     * *completed* request is answered from the server's result memo
     * without re-walking. Empty = derived from the request fields,
     * so plain retries are idempotent by default.
     */
    std::string key;
    /**
     * Server-assigned request id being queried (dump-trace only).
     * Eval responses return the id they were assigned in
     * values["request.id"]; passing it back here drains that
     * request's span tree.
     */
    uint64_t requestId = 0;

    /** The effective idempotency key (key, or derived). */
    std::string idempotencyKey() const;
};

/** Terminal status of one request. */
enum class Status
{
    Ok,
    /** Admission control refused the request; retry after a delay. */
    Shed,
    /** Deadline fired mid-evaluation; partial results were cached. */
    DeadlineExceeded,
    /** The evaluation itself failed (isolated to this request). */
    Failed,
    /** The server could not parse the request; do not retry. */
    BadRequest,
};

/** Wire spelling of a status. */
const char *statusName(Status s);

/** One response. */
struct Response
{
    Status status = Status::Ok;
    /** Human-readable reason for non-Ok statuses. */
    std::string error;
    /** Backoff floor suggested with Status::Shed (ms). */
    uint64_t retryAfterMs = 0;
    /**
     * Result metrics, sorted by key. Eval responses carry
     * designs.evaluated / designs.failed / pareto.systems plus
     * machine.<name>.dilation|cycles per evaluated machine; stats
     * responses carry the server counters.
     */
    std::map<std::string, double> values;
    /**
     * Free-form single-line document payload. dump-trace returns the
     * request's trace JSON here; health returns the last-fault
     * record. Must not contain newlines (the encoder flattens them).
     */
    std::string body;
};

/** @name Payload encoding (framing-independent, testable inline)
 *  @{ */
std::string encodeRequest(const Request &req);
std::string encodeResponse(const Response &resp);

/**
 * Parse a request payload.
 * @return false when the payload is not a well-formed request (bad
 *         version tag or malformed line); `error` says why
 */
bool decodeRequest(const std::string &payload, Request &req,
                   std::string &error);

/** Parse a response payload; false on malformed input. */
bool decodeResponse(const std::string &payload, Response &resp,
                    std::string &error);
/** @} */

/** @name Frame I/O over a connected stream socket
 *  @{ */

/**
 * Write one length-prefixed frame. @return false on I/O error (the
 * peer vanished mid-write; never raises SIGPIPE).
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Read one length-prefixed frame.
 * @return false on EOF before a complete frame, oversized length, or
 *         I/O error
 */
bool readFrame(int fd, std::string &payload);
/** @} */

} // namespace pico::server

#endif // PICO_SERVER_PROTOCOL_HPP
