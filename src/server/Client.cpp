#include "server/Client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/Logging.hpp"

namespace pico::server
{

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      backoff_(Rng::forStream(options_.seed, options_.stream),
               options_.backoffBaseMs, options_.backoffCapMs)
{
    fatalIf(options_.socketPath.empty(),
            "client needs a socket path");
    fatalIf(options_.maxAttempts == 0,
            "client needs >= 1 attempt");
}

Client::~Client()
{
    disconnect();
}

void
Client::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Client::ensureConnected()
{
    if (fd_ >= 0)
        return true;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof(addr.sun_path))
        fatal("socket path too long: ", options_.socketPath);
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }
    fd_ = fd;
    return true;
}

bool
Client::attempt(const Request &req, Response &resp)
{
    if (!ensureConnected())
        return false;
    if (!writeFrame(fd_, encodeRequest(req))) {
        disconnect();
        return false;
    }
    std::string payload;
    if (!readFrame(fd_, payload)) {
        disconnect();
        return false;
    }
    std::string error;
    if (!decodeResponse(payload, resp, error)) {
        // A server speaking an unknown dialect will not improve on
        // retry within this call; surface it as a failure.
        disconnect();
        resp = Response();
        resp.status = Status::Failed;
        resp.error = "undecodable response: " + error;
        return true;
    }
    return true;
}

Response
Client::call(const Request &req)
{
    // Pin the idempotency key across attempts: THE point of a retry
    // is that the server recognizes it as the same request.
    Request keyed = req;
    if (keyed.key.empty())
        keyed.key = keyed.idempotencyKey();

    backoff_.reset();
    Response last;
    last.status = Status::Shed;
    last.error = "no attempts made";
    // Why the *previous* attempt failed — a retry is blamed on its
    // cause, so a load test can tell shed-driven retries (the server
    // protecting itself) from transport-driven ones (something died).
    bool lastWasTransport = false;
    for (uint32_t a = 0; a < options_.maxAttempts; ++a) {
        if (a > 0) {
            ++retries_;
            if (lastWasTransport)
                ++retriesTransport_;
            else
                ++retriesShed_;
            backoff_.sleep(last.retryAfterMs);
        }
        Response resp;
        if (!attempt(keyed, resp)) {
            ++transportFailures_;
            lastWasTransport = true;
            last = Response();
            last.status = Status::Shed;
            last.error = "transport failure";
            continue;
        }
        if (resp.status == Status::Shed) {
            ++shedSeen_;
            lastWasTransport = false;
            last = resp;
            continue;
        }
        return resp; // terminal: ok / deadline / failed / bad_request
    }
    return last;
}

} // namespace pico::server
