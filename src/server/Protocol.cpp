#include "server/Protocol.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

#include "support/Logging.hpp"

namespace pico::server
{

std::string
Request::idempotencyKey() const
{
    if (!key.empty())
        return key;
    return type + ";" + app + ";" + machines + ";tb" +
           std::to_string(traceBlocks);
}

const char *
statusName(Status s)
{
    switch (s) {
    case Status::Ok:
        return "ok";
    case Status::Shed:
        return "shed";
    case Status::DeadlineExceeded:
        return "deadline_exceeded";
    case Status::Failed:
        return "failed";
    case Status::BadRequest:
        return "bad_request";
    }
    panic("unreachable status");
}

namespace
{

Status
statusFromName(const std::string &name, bool &ok)
{
    ok = true;
    if (name == "ok")
        return Status::Ok;
    if (name == "shed")
        return Status::Shed;
    if (name == "deadline_exceeded")
        return Status::DeadlineExceeded;
    if (name == "failed")
        return Status::Failed;
    if (name == "bad_request")
        return Status::BadRequest;
    ok = false;
    return Status::BadRequest;
}

/** One `key value` line ('\n' terminator; value may hold spaces). */
void
putLine(std::string &out, const std::string &k, const std::string &v)
{
    out += k;
    out += ' ';
    out += v;
    out += '\n';
}

void
putLine(std::string &out, const std::string &k, uint64_t v)
{
    putLine(out, k, std::to_string(v));
}

/**
 * Split a payload into (key, value) pairs after checking the version
 * tag. @return false on a malformed line or wrong tag.
 */
bool
parseLines(const std::string &payload, const char *tag,
           std::map<std::string, std::string> &kv, std::string &error)
{
    std::istringstream in(payload);
    std::string line;
    if (!std::getline(in, line) || line != tag) {
        error = std::string("missing version tag ") + tag;
        return false;
    }
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        auto space = line.find(' ');
        if (space == std::string::npos || space == 0) {
            error = "malformed line: " + line;
            return false;
        }
        kv[line.substr(0, space)] = line.substr(space + 1);
    }
    return true;
}

bool
parseU64(const std::map<std::string, std::string> &kv,
         const std::string &k, uint64_t &out, std::string &error)
{
    auto it = kv.find(k);
    if (it == kv.end())
        return true; // optional field keeps its default
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0') {
        error = "field " + k + " is not an integer: " + it->second;
        return false;
    }
    out = v;
    return true;
}

void
getString(const std::map<std::string, std::string> &kv,
          const std::string &k, std::string &out)
{
    auto it = kv.find(k);
    if (it != kv.end())
        out = it->second;
}

/** Fixed-precision double, locale-independent (%.17g equivalent). */
std::string
numToString(double v)
{
    std::ostringstream out;
    out.precision(17);
    out << v;
    return out.str();
}

} // namespace

std::string
encodeRequest(const Request &req)
{
    std::string out(requestTag);
    out += '\n';
    putLine(out, "type", req.type);
    putLine(out, "app", req.app);
    putLine(out, "machines", req.machines);
    putLine(out, "trace_blocks", req.traceBlocks);
    putLine(out, "deadline_ms", req.deadlineMs);
    if (!req.key.empty())
        putLine(out, "key", req.key);
    if (req.requestId != 0)
        putLine(out, "request_id", req.requestId);
    return out;
}

bool
decodeRequest(const std::string &payload, Request &req,
              std::string &error)
{
    std::map<std::string, std::string> kv;
    if (!parseLines(payload, requestTag, kv, error))
        return false;
    getString(kv, "type", req.type);
    getString(kv, "app", req.app);
    getString(kv, "machines", req.machines);
    getString(kv, "key", req.key);
    return parseU64(kv, "trace_blocks", req.traceBlocks, error) &&
           parseU64(kv, "deadline_ms", req.deadlineMs, error) &&
           parseU64(kv, "request_id", req.requestId, error);
}

std::string
encodeResponse(const Response &resp)
{
    std::string out(responseTag);
    out += '\n';
    putLine(out, "status", statusName(resp.status));
    if (!resp.error.empty()) {
        // The error travels on one line; flatten embedded newlines.
        std::string flat = resp.error;
        for (char &c : flat) {
            if (c == '\n')
                c = ' ';
        }
        putLine(out, "error", flat);
    }
    if (resp.retryAfterMs != 0)
        putLine(out, "retry_after_ms", resp.retryAfterMs);
    if (!resp.body.empty()) {
        // The body travels on one line, like the error.
        std::string flat = resp.body;
        for (char &c : flat) {
            if (c == '\n')
                c = ' ';
        }
        putLine(out, "body", flat);
    }
    for (const auto &[k, v] : resp.values)
        putLine(out, "v." + k, numToString(v));
    return out;
}

bool
decodeResponse(const std::string &payload, Response &resp,
               std::string &error)
{
    std::map<std::string, std::string> kv;
    if (!parseLines(payload, responseTag, kv, error))
        return false;
    auto it = kv.find("status");
    if (it == kv.end()) {
        error = "response has no status";
        return false;
    }
    bool known = false;
    resp.status = statusFromName(it->second, known);
    if (!known) {
        error = "unknown status: " + it->second;
        return false;
    }
    getString(kv, "error", resp.error);
    getString(kv, "body", resp.body);
    if (!parseU64(kv, "retry_after_ms", resp.retryAfterMs, error))
        return false;
    for (const auto &[k, v] : kv) {
        if (k.rfind("v.", 0) != 0)
            continue;
        errno = 0;
        char *end = nullptr;
        double d = std::strtod(v.c_str(), &end);
        if (errno != 0 || end == v.c_str() || *end != '\0') {
            error = "field " + k + " is not a number: " + v;
            return false;
        }
        resp.values[k.substr(2)] = d;
    }
    return true;
}

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > maxFrameBytes) {
        warn("refusing to write oversized frame (", payload.size(),
             " bytes)");
        return false;
    }
    auto len = static_cast<uint32_t>(payload.size());
    unsigned char prefix[4] = {
        static_cast<unsigned char>(len & 0xff),
        static_cast<unsigned char>((len >> 8) & 0xff),
        static_cast<unsigned char>((len >> 16) & 0xff),
        static_cast<unsigned char>((len >> 24) & 0xff),
    };
    std::string frame(reinterpret_cast<char *>(prefix), 4);
    frame += payload;
    size_t sent = 0;
    while (sent < frame.size()) {
        // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a
        // process-killing SIGPIPE.
        ssize_t n = ::send(fd, frame.data() + sent,
                           frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

namespace
{

/** Read exactly n bytes; false on EOF or error. */
bool
readExact(int fd, char *buf, size_t n)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, buf + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false; // orderly EOF
        got += static_cast<size_t>(r);
    }
    return true;
}

} // namespace

bool
readFrame(int fd, std::string &payload)
{
    unsigned char prefix[4];
    if (!readExact(fd, reinterpret_cast<char *>(prefix), 4))
        return false;
    uint32_t len = static_cast<uint32_t>(prefix[0]) |
                   (static_cast<uint32_t>(prefix[1]) << 8) |
                   (static_cast<uint32_t>(prefix[2]) << 16) |
                   (static_cast<uint32_t>(prefix[3]) << 24);
    if (len > maxFrameBytes) {
        warn("dropping oversized frame (", len, " bytes)");
        return false;
    }
    payload.assign(len, '\0');
    return len == 0 || readExact(fd, payload.data(), len);
}

} // namespace pico::server
