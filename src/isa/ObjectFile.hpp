/**
 * @file
 * Relocatable object representation produced by the assembler.
 *
 * An ObjectFile carries, per function and basic block, the encoded
 * byte size and alignment requirements. The linker consumes it to
 * perform layout and final address assignment.
 */

#ifndef PICO_ISA_OBJECT_FILE_HPP
#define PICO_ISA_OBJECT_FILE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace pico::isa
{

/** Encoded size and layout attributes of one basic block. */
struct ObjectBlock
{
    /** Encoded size in bytes (sum of selected template sizes). */
    uint32_t sizeBytes = 0;
    /** Must be aligned to a fetch-packet boundary when placed. */
    bool isBranchTarget = false;
    /** Number of encoded (non-free) instructions. */
    uint32_t encodedInsts = 0;
};

/** All blocks of one function, in intra-procedural layout order. */
struct ObjectFunction
{
    std::string name;
    std::vector<ObjectBlock> blocks;
    /** Dynamic call count, used by the linker for layout. */
    uint64_t callCount = 0;

    /** Unpadded byte size of the function. */
    uint32_t
    rawSize() const
    {
        uint32_t n = 0;
        for (const auto &b : blocks)
            n += b.sizeBytes;
        return n;
    }
};

/** One relocatable object per application/machine pair. */
struct ObjectFile
{
    /** Machine name the object was assembled for. */
    std::string machineName;
    /** Fetch-packet bytes of that machine's format. */
    uint32_t fetchPacketBytes = 0;
    std::vector<ObjectFunction> functions;

    /** Unpadded total text bytes. */
    uint64_t
    rawTextSize() const
    {
        uint64_t n = 0;
        for (const auto &f : functions)
            n += f.rawSize();
        return n;
    }
};

} // namespace pico::isa

#endif // PICO_ISA_OBJECT_FILE_HPP
