#include "isa/InstructionFormat.hpp"

#include <algorithm>

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::isa
{

bool
Template::fits(const std::array<uint8_t,
                                machine::numOpClasses> &classCounts) const
{
    unsigned overflow = 0;
    for (unsigned c = 0; c < machine::numOpClasses; ++c) {
        if (classCounts[c] > typedSlots[c])
            overflow += classCounts[c] - typedSlots[c];
    }
    return overflow <= genericSlots;
}

InstructionFormat::InstructionFormat(const machine::MachineDesc &mdes)
    : mdes_(mdes)
{
    auto roundBits = [](unsigned bits) -> uint32_t {
        return static_cast<uint32_t>(
            alignUp(std::max<uint64_t>(bits, 1), quantumBits));
    };

    unsigned generic_field = 0;
    for (unsigned c = 0; c < machine::numOpClasses; ++c) {
        generic_field = std::max(
            generic_field, opFieldBits(static_cast<ir::OpClass>(c)));
    }

    auto templateBits = [&](const Template &t) -> unsigned {
        unsigned bits = headerBits + multiNopBits;
        for (unsigned c = 0; c < machine::numOpClasses; ++c) {
            bits += t.typedSlots[c] *
                    opFieldBits(static_cast<ir::OpClass>(c));
        }
        bits += t.genericSlots * generic_field;
        return bits;
    };

    // Compact: one generic slot; also encodes explicit no-ops.
    Template compact;
    compact.name = "compact";
    compact.genericSlots = 1;
    compact.bits = roundBits(templateBits(compact));
    templates_.push_back(compact);

    // Pair: two generic slots (only meaningful on multi-issue
    // machines).
    if (mdes.issueWidth() > 1) {
        Template pair;
        pair.name = "pair";
        pair.genericSlots = 2;
        pair.bits = roundBits(templateBits(pair));
        templates_.push_back(pair);
    }

    // Half: typed slots, ceil(count / 2) per class.
    Template half;
    half.name = "half";
    for (unsigned c = 0; c < machine::numOpClasses; ++c)
        half.typedSlots[c] = static_cast<uint8_t>((mdes.fuCount[c] + 1) / 2);
    half.bits = roundBits(templateBits(half));

    // Full: one typed slot per functional unit.
    Template full;
    full.name = "full";
    for (unsigned c = 0; c < machine::numOpClasses; ++c)
        full.typedSlots[c] = mdes.fuCount[c];
    full.bits = roundBits(templateBits(full));

    if (half.typedSlots != full.typedSlots)
        templates_.push_back(half);
    templates_.push_back(full);

    fetchPacketBytes_ = static_cast<uint32_t>(
        uint64_t{1} << log2Ceil(full.bytes()));

    // Sanity: templates sorted by size, full template largest.
    for (size_t i = 1; i < templates_.size(); ++i) {
        panicIf(templates_[i].bits < templates_[i - 1].bits,
                "template sizes not monotone");
    }
}

unsigned
InstructionFormat::opFieldBits(ir::OpClass cls) const
{
    unsigned int_reg_bits = bitsFor(mdes_.intRegs);
    unsigned fp_reg_bits = bitsFor(mdes_.fpRegs);
    // Predicated machines carry a guard-register specifier in every
    // operation field — one more way wide predicated formats dilate
    // code.
    unsigned guard_bits =
        mdes_.predRegs > 0 ? bitsFor(mdes_.predRegs) : 0;
    switch (cls) {
      case ir::OpClass::IntAlu:
        // opcode + three integer register specifiers
        return opcodeBits + 3 * int_reg_bits + guard_bits;
      case ir::OpClass::FloatAlu:
        // opcode + three FP register specifiers
        return opcodeBits + 3 * fp_reg_bits + guard_bits;
      case ir::OpClass::Memory:
        // opcode + base + data register + 8-bit displacement
        return opcodeBits + 2 * int_reg_bits + 8 + guard_bits;
      case ir::OpClass::Branch:
        // opcode + 16-bit displacement
        return opcodeBits + 16 + guard_bits;
    }
    panic("unknown op class");
}

} // namespace pico::isa
