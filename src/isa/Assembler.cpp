#include "isa/Assembler.hpp"

#include <algorithm>

#include "support/Logging.hpp"

namespace pico::isa
{

size_t
Assembler::selectTemplate(const compiler::VliwInst &inst,
                          unsigned followingNops) const
{
    std::array<uint8_t, machine::numOpClasses> counts = {};
    for (const auto &op : inst.ops)
        ++counts[static_cast<unsigned>(op.opClass)];

    const auto &templates = format_.templates();
    size_t best = templates.size();
    for (size_t t = 0; t < templates.size(); ++t) {
        if (!templates[t].fits(counts))
            continue;
        if (best == templates.size()) {
            best = t;
            continue;
        }
        const auto &cand = templates[t];
        const auto &cur = templates[best];
        // Criterion 1: fewest bits.
        if (cand.bits < cur.bits) {
            best = t;
        } else if (cand.bits == cur.bits && followingNops > 0 &&
                   cand.multiNopCapacity > cur.multiNopCapacity) {
            // Criterion 2: more multi-no-op headroom at equal size.
            best = t;
        }
    }
    panicIf(best == templates.size(),
            "no template fits an instruction with ",
            inst.occupancy(), " ops");
    return best;
}

ObjectBlock
Assembler::assembleBlock(const compiler::ScheduledBlock &block,
                         bool isBranchTarget) const
{
    ObjectBlock out;
    out.isBranchTarget = isBranchTarget;

    const auto &templates = format_.templates();
    const auto &insts = block.insts;
    const uint32_t nop_bytes = templates.front().bytes();

    size_t i = 0;
    // Empty cycles before the first real instruction have no
    // predecessor to absorb them; encode explicit no-ops.
    while (i < insts.size() && insts[i].isNop()) {
        out.sizeBytes += nop_bytes;
        ++out.encodedInsts;
        ++i;
    }
    while (i < insts.size()) {
        // Count the run of empty cycles after this instruction.
        size_t j = i + 1;
        while (j < insts.size() && insts[j].isNop())
            ++j;
        auto nops = static_cast<unsigned>(j - i - 1);

        size_t t = selectTemplate(insts[i], nops);
        out.sizeBytes += templates[t].bytes();
        ++out.encodedInsts;

        // The template's multi-no-op field absorbs the first few
        // empty cycles; the rest cost an explicit no-op each.
        unsigned free_nops =
            std::min<unsigned>(nops, templates[t].multiNopCapacity);
        for (unsigned k = free_nops; k < nops; ++k) {
            out.sizeBytes += nop_bytes;
            ++out.encodedInsts;
        }
        i = j;
    }
    return out;
}

ObjectFile
Assembler::assemble(const ir::Program &prog,
                    const compiler::ScheduledProgram &sched) const
{
    fatalIf(prog.functions.size() != sched.functions.size(),
            "program/schedule mismatch in assembler");
    ObjectFile out;
    out.machineName = format_.mdes().name();
    out.fetchPacketBytes = format_.fetchPacketBytes();
    out.functions.resize(prog.functions.size());
    for (size_t fi = 0; fi < prog.functions.size(); ++fi) {
        const auto &func = prog.functions[fi];
        const auto &sfunc = sched.functions[fi];
        auto &ofunc = out.functions[fi];
        ofunc.name = func.name;
        ofunc.callCount = func.callCount;
        ofunc.blocks.resize(func.blocks.size());
        for (size_t bi = 0; bi < func.blocks.size(); ++bi) {
            ofunc.blocks[bi] = assembleBlock(
                sfunc.blocks[bi], func.blocks[bi].isBranchTarget);
        }
    }
    return out;
}

} // namespace pico::isa
