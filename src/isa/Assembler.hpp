/**
 * @file
 * Greedy template-selection assembler.
 *
 * Implements the paper's two-criteria heuristic: (1) pick the
 * template that needs the fewest bits for the operations issued in
 * this cycle; (2) prefer a template whose multi-no-op field can
 * absorb the empty issue cycles that follow, so those cycles cost no
 * code bytes.
 */

#ifndef PICO_ISA_ASSEMBLER_HPP
#define PICO_ISA_ASSEMBLER_HPP

#include "compiler/Schedule.hpp"
#include "ir/Program.hpp"
#include "isa/InstructionFormat.hpp"
#include "isa/ObjectFile.hpp"

namespace pico::isa
{

/** Assembles scheduled code into relocatable objects. */
class Assembler
{
  public:
    explicit Assembler(const InstructionFormat &format)
        : format_(format)
    {}

    /**
     * Assemble one scheduled block.
     * @param block the schedule
     * @param isBranchTarget propagated into the object block
     * @return the encoded object block
     */
    ObjectBlock assembleBlock(const compiler::ScheduledBlock &block,
                              bool isBranchTarget) const;

    /**
     * Assemble a whole scheduled program into one object file.
     * @param prog the IR (for branch-target flags and profile data)
     * @param sched the machine-dependent schedule
     */
    ObjectFile assemble(const ir::Program &prog,
                        const compiler::ScheduledProgram &sched) const;

    /**
     * Select the cheapest template for an instruction.
     * @param inst the instruction
     * @param followingNops empty issue cycles after it
     * @return index into format().templates()
     */
    size_t selectTemplate(const compiler::VliwInst &inst,
                          unsigned followingNops) const;

    const InstructionFormat &format() const { return format_; }

  private:
    const InstructionFormat &format_;
};

} // namespace pico::isa

#endif // PICO_ISA_ASSEMBLER_HPP
