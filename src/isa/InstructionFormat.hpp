/**
 * @file
 * Co-synthesized variable-length, multi-template instruction formats.
 *
 * Following the paper (section 3.3 and reference [15]), every machine
 * in the design space gets a customized instruction format: a small
 * set of templates, each describing which operation slots it encodes
 * and how many bits it occupies. Templates carry multi-no-op bits so
 * empty issue cycles after an instruction can be encoded for free.
 *
 * The synthesized set contains a compact one-slot template, a
 * two-slot generic template, a typed half-width template and the
 * typed full-width template. Wider machines pay for wider operand
 * fields (larger register files) and coarser template granularity,
 * which is precisely the code-size dilation mechanism the paper's
 * model captures.
 */

#ifndef PICO_ISA_INSTRUCTION_FORMAT_HPP
#define PICO_ISA_INSTRUCTION_FORMAT_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "compiler/Schedule.hpp"
#include "machine/MachineDesc.hpp"

namespace pico::isa
{

/**
 * One instruction template: typed slot capacities plus generic slots
 * usable by any operation class.
 */
struct Template
{
    std::string name;
    /** Typed slots per operation class. */
    std::array<uint8_t, machine::numOpClasses> typedSlots = {};
    /** Slots that accept any operation class. */
    uint8_t genericSlots = 0;
    /** Encoded size in bits (already rounded to the quantum). */
    uint32_t bits = 0;
    /** Following all-no-op instructions encodable for free. */
    uint8_t multiNopCapacity = 3;

    uint32_t bytes() const { return bits / 8; }

    /** Total operations this template can hold. */
    unsigned
    capacity() const
    {
        unsigned c = genericSlots;
        for (auto t : typedSlots)
            c += t;
        return c;
    }

    /**
     * Whether an instruction with the given per-class operation
     * counts can be encoded: typed slots absorb their class first,
     * overflow goes to generic slots.
     */
    bool fits(const std::array<uint8_t,
                               machine::numOpClasses> &classCounts) const;
};

/** Complete instruction format for one machine. */
class InstructionFormat
{
  public:
    /**
     * Synthesize the format for a machine.
     * @param mdes machine description
     */
    explicit InstructionFormat(const machine::MachineDesc &mdes);

    const std::vector<Template> &templates() const { return templates_; }

    /** Bits of one operation field for a class on this machine. */
    unsigned opFieldBits(ir::OpClass cls) const;

    /**
     * Fetch-packet size in bytes: the bits fetched from the I-cache
     * in one cycle, i.e. the full template rounded up to a power of
     * two. Branch targets are aligned to this by the linker.
     */
    uint32_t fetchPacketBytes() const { return fetchPacketBytes_; }

    const machine::MachineDesc &mdes() const { return mdes_; }

    /** Encoding quantum in bits; template sizes are multiples. */
    static constexpr uint32_t quantumBits = 32;
    /** Opcode field width in bits. */
    static constexpr unsigned opcodeBits = 8;
    /** Header bits (template selector + control). */
    static constexpr unsigned headerBits = 4;
    /** Multi-no-op field width in bits. */
    static constexpr unsigned multiNopBits = 2;

  private:
    machine::MachineDesc mdes_;
    std::vector<Template> templates_;
    uint32_t fetchPacketBytes_ = 0;
};

} // namespace pico::isa

#endif // PICO_ISA_INSTRUCTION_FORMAT_HPP
