#include "workloads/AppSpec.hpp"

#include <algorithm>

#include "support/Logging.hpp"
#include "support/Random.hpp"

namespace pico::workloads
{

namespace
{

ir::AccessPattern
pickPattern(const PatternMix &mix, Rng &rng)
{
    double total = mix.sequential + mix.strided + mix.random +
                   mix.zipf + mix.stack + mix.tiled;
    fatalIf(total <= 0.0, "pattern mix has no weight");
    double u = rng.uniform() * total;
    if ((u -= mix.sequential) < 0)
        return ir::AccessPattern::Sequential;
    if ((u -= mix.strided) < 0)
        return ir::AccessPattern::Strided;
    if ((u -= mix.random) < 0)
        return ir::AccessPattern::Random;
    if ((u -= mix.zipf) < 0)
        return ir::AccessPattern::Zipf;
    // Tiled rides last so a zero tiled weight leaves the draw and
    // its outcome identical to the historical five-way mix.
    if ((u -= mix.stack) < 0)
        return ir::AccessPattern::Stack;
    return ir::AccessPattern::Tiled;
}

ir::Operation
makeBodyOp(const AppSpec &spec, size_t index, Rng &rng)
{
    ir::Operation op;
    double u = rng.uniform();
    if (u < spec.fracMem) {
        op.opClass = ir::OpClass::Memory;
        bool store = rng.coin(spec.storeFraction);
        op.memKind = store ? ir::MemKind::Store : ir::MemKind::Load;
        op.streamId = static_cast<uint16_t>(
            rng.below(spec.numStreams));
        op.latency = 2;
        op.speculable = !store && rng.coin(0.5);
    } else if (u < spec.fracMem + spec.fracFloat) {
        op.opClass = ir::OpClass::FloatAlu;
        op.latency = 3;
    } else {
        op.opClass = ir::OpClass::IntAlu;
        op.latency = 1;
    }

    // Dependences on recent predecessors; a window of eight models
    // value lifetimes within straight-line code.
    size_t window = std::min<size_t>(index, 8);
    for (size_t k = 1; k <= window; ++k) {
        if (rng.coin(spec.depDensity / static_cast<double>(k))) {
            op.deps.push_back(static_cast<uint16_t>(index - k));
        }
    }
    return op;
}

ir::BasicBlock
makeBlock(const AppSpec &spec, uint32_t block_id, uint32_t num_blocks,
          bool allow_loop, Rng &rng)
{
    ir::BasicBlock block;
    auto n_ops = static_cast<uint32_t>(
        rng.range(spec.minOpsPerBlock, spec.maxOpsPerBlock));
    for (uint32_t oi = 0; oi + 1 < n_ops; ++oi)
        block.ops.push_back(makeBodyOp(spec, oi, rng));

    // Every block ends with a control operation (branch, jump over
    // the fall-through path, or return).
    ir::Operation branch;
    branch.opClass = ir::OpClass::Branch;
    branch.latency = 1;
    block.ops.push_back(branch);

    bool last = block_id + 1 >= num_blocks;
    if (last)
        return block; // no successors: return from the function

    if (block_id > 0 && allow_loop && rng.coin(spec.loopProb)) {
        // Loop: back edge taken with probability giving the desired
        // geometric trip count, fall-through otherwise. Back edges
        // stay local (at most four blocks) so loop nests stay
        // shallow and execution keeps progressing through the
        // function.
        auto reach = std::min<uint64_t>(block_id, 4);
        auto target = static_cast<uint32_t>(
            block_id - 1 - rng.below(reach));
        double p_back = 1.0 - 1.0 / std::max(1.5, spec.loopTripMean);
        block.succs.push_back({target, p_back});
        block.succs.push_back({block_id + 1, 1.0 - p_back});
    } else if (block_id + 2 < num_blocks && rng.coin(spec.branchProb)) {
        // Two-way forward branch: fall-through or skip ahead.
        auto skip_to = static_cast<uint32_t>(
            rng.range(block_id + 2, num_blocks - 1));
        double p_fall = 0.5 + 0.45 * rng.uniform();
        block.succs.push_back({block_id + 1, p_fall});
        block.succs.push_back({skip_to, 1.0 - p_fall});
    } else {
        block.succs.push_back({block_id + 1, 1.0});
    }

    return block;
}

} // namespace

ir::Program
buildProgram(const AppSpec &spec)
{
    fatalIf(spec.numFunctions == 0, "spec needs at least one function");
    fatalIf(spec.numStreams == 0, "spec needs at least one stream");
    fatalIf(spec.minBlocksPerFunction < 2,
            "functions need at least two blocks");
    fatalIf(spec.minOpsPerBlock < 2, "blocks need at least two ops");

    Rng rng(spec.seed);
    ir::Program prog;
    prog.name = spec.name;
    prog.seed = spec.seed ^ 0xabcdef12345ULL;

    for (uint32_t si = 0; si < spec.numStreams; ++si) {
        ir::DataStream stream;
        stream.pattern = pickPattern(spec.patterns, rng);
        stream.sizeWords = static_cast<uint64_t>(rng.range(
            static_cast<int64_t>(spec.minStreamWords),
            static_cast<int64_t>(spec.maxStreamWords)));
        stream.strideWords = static_cast<uint32_t>(rng.range(2, 16));
        stream.zipfExponent = 1.3 + 0.5 * rng.uniform();
        // Tile geometry is taken from the spec, not drawn: any extra
        // Rng draw here would shift every later stream's parameters
        // in pre-existing specs.
        stream.tileWords = spec.tileWords;
        prog.streams.push_back(stream);
    }

    for (uint32_t fi = 0; fi < spec.numFunctions; ++fi) {
        ir::Function func;
        func.name = spec.name + "_f" + std::to_string(fi);
        auto n_blocks = static_cast<uint32_t>(rng.range(
            spec.minBlocksPerFunction, spec.maxBlocksPerFunction));
        // Loop regions are kept disjoint: after a loop-tail block,
        // the next few blocks may not start another back edge, so
        // loop nests stay one (occasionally two) deep and trip
        // counts do not compound into traps.
        uint32_t next_loop_allowed = 0;
        for (uint32_t bi = 0; bi < n_blocks; ++bi) {
            bool allow_loop = bi >= next_loop_allowed;
            auto block = makeBlock(spec, bi, n_blocks, allow_loop,
                                   rng);
            if (!block.succs.empty() &&
                block.succs.front().target <= bi) {
                next_loop_allowed =
                    bi + 1 +
                    static_cast<uint32_t>(rng.range(3, 6));
            }
            // Calls go to strictly higher-numbered functions,
            // keeping the call graph acyclic (the engine's stack
            // stays bounded). The entry function is the program's
            // driver: it calls (and mostly dispatches indirectly)
            // much more often than interior functions, so the whole
            // call DAG is reachable from it.
            double call_prob = spec.callProb;
            double indirect_frac = spec.indirectCallFraction;
            if (fi == 0) {
                call_prob = std::max(spec.callProb, 0.5);
                indirect_frac =
                    std::max(spec.indirectCallFraction, 0.5);
            }
            if (fi + 1 < spec.numFunctions && rng.coin(call_prob)) {
                if (rng.coin(indirect_frac)) {
                    block.indirectCall = true;
                } else {
                    block.callee = static_cast<int32_t>(rng.range(
                        fi + 1, spec.numFunctions - 1));
                }
            }
            func.blocks.push_back(std::move(block));
        }
        prog.functions.push_back(std::move(func));
    }

    prog.finalize();
    return prog;
}

std::vector<AppSpec>
paperSuite()
{
    std::vector<AppSpec> suite;

    // SPEC-class applications: large code, modest loops, pointer-ish
    // data. These are the benchmarks the paper selects for their
    // high instruction-cache miss rates.
    {
        AppSpec gcc;
        gcc.name = "085.gcc";
        gcc.seed = 0x6cc;
        gcc.numFunctions = 140;
        gcc.minBlocksPerFunction = 8;
        gcc.maxBlocksPerFunction = 34;
        gcc.minOpsPerBlock = 3;
        gcc.maxOpsPerBlock = 14;
        gcc.loopProb = 0.18;
        gcc.loopTripMean = 5.0;
        gcc.branchProb = 0.55;
        gcc.callProb = 0.07;
        gcc.indirectCallFraction = 0.60;
        gcc.fracMem = 0.32;
        gcc.fracFloat = 0.02;
        gcc.depDensity = 0.4;
        gcc.numStreams = 6;
        gcc.minStreamWords = 2048;
        gcc.maxStreamWords = 16384;
        gcc.patterns = {0.15, 0.0, 0.05, 0.5, 0.3};
        suite.push_back(gcc);
    }
    {
        AppSpec go;
        go.name = "099.go";
        go.seed = 0x60;
        go.numFunctions = 120;
        go.minBlocksPerFunction = 10;
        go.maxBlocksPerFunction = 30;
        go.minOpsPerBlock = 3;
        go.maxOpsPerBlock = 12;
        go.loopProb = 0.2;
        go.loopTripMean = 6.0;
        go.branchProb = 0.65;
        go.callProb = 0.06;
        go.indirectCallFraction = 0.60;
        go.fracMem = 0.28;
        go.fracFloat = 0.0;
        go.depDensity = 0.45;
        go.numStreams = 8;
        go.minStreamWords = 2048;
        go.maxStreamWords = 16384;
        go.patterns = {0.15, 0.05, 0.1, 0.4, 0.3};
        suite.push_back(go);
    }
    {
        AppSpec vortex;
        vortex.name = "147.vortex";
        vortex.seed = 0x147;
        vortex.numFunctions = 130;
        vortex.minBlocksPerFunction = 6;
        vortex.maxBlocksPerFunction = 26;
        vortex.minOpsPerBlock = 4;
        vortex.maxOpsPerBlock = 16;
        vortex.loopProb = 0.22;
        vortex.loopTripMean = 7.0;
        vortex.branchProb = 0.45;
        vortex.callProb = 0.09;
        vortex.indirectCallFraction = 0.65;
        vortex.fracMem = 0.38;
        vortex.fracFloat = 0.0;
        vortex.depDensity = 0.35;
        vortex.numStreams = 8;
        vortex.minStreamWords = 4096;
        vortex.maxStreamWords = 32768;
        vortex.patterns = {0.15, 0.05, 0.1, 0.45, 0.25};
        suite.push_back(vortex);
    }

    // MediaBench-class applications.
    {
        AppSpec epic;
        epic.name = "epic";
        epic.seed = 0xe91c;
        epic.numFunctions = 26;
        epic.minBlocksPerFunction = 6;
        epic.maxBlocksPerFunction = 18;
        epic.minOpsPerBlock = 5;
        epic.maxOpsPerBlock = 18;
        epic.loopProb = 0.45;
        epic.loopTripMean = 14.0;
        epic.branchProb = 0.3;
        epic.callProb = 0.04;
        epic.indirectCallFraction = 0.25;
        epic.fracMem = 0.34;
        epic.fracFloat = 0.22;
        epic.depDensity = 0.25;
        epic.numStreams = 8;
        epic.minStreamWords = 32768;
        epic.maxStreamWords = 262144;
        epic.patterns = {0.5, 0.3, 0.05, 0.1, 0.05};
        suite.push_back(epic);
    }
    {
        AppSpec gs;
        gs.name = "ghostscript";
        gs.seed = 0x6705;
        gs.numFunctions = 150;
        gs.minBlocksPerFunction = 8;
        gs.maxBlocksPerFunction = 36;
        gs.minOpsPerBlock = 3;
        gs.maxOpsPerBlock = 15;
        gs.loopProb = 0.22;
        gs.loopTripMean = 7.0;
        gs.branchProb = 0.5;
        gs.callProb = 0.075;
        gs.indirectCallFraction = 0.60;
        gs.fracMem = 0.33;
        gs.fracFloat = 0.08;
        gs.depDensity = 0.38;
        gs.numStreams = 8;
        gs.minStreamWords = 2048;
        gs.maxStreamWords = 32768;
        gs.patterns = {0.2, 0.1, 0.1, 0.4, 0.2};
        suite.push_back(gs);
    }
    {
        AppSpec mipmap;
        mipmap.name = "mipmap";
        mipmap.seed = 0x313933a9;
        mipmap.numFunctions = 30;
        mipmap.minBlocksPerFunction = 5;
        mipmap.maxBlocksPerFunction = 20;
        mipmap.minOpsPerBlock = 6;
        mipmap.maxOpsPerBlock = 20;
        mipmap.loopProb = 0.4;
        mipmap.loopTripMean = 12.0;
        mipmap.branchProb = 0.3;
        mipmap.callProb = 0.05;
        mipmap.indirectCallFraction = 0.25;
        mipmap.fracMem = 0.3;
        mipmap.fracFloat = 0.3;
        mipmap.depDensity = 0.22;
        mipmap.numStreams = 10;
        mipmap.minStreamWords = 65536;
        mipmap.maxStreamWords = 524288;
        mipmap.patterns = {0.4, 0.4, 0.05, 0.1, 0.05};
        suite.push_back(mipmap);
    }
    {
        AppSpec pgpdec;
        pgpdec.name = "pgpdecode";
        pgpdec.seed = 0x969dec;
        pgpdec.numFunctions = 70;
        pgpdec.minBlocksPerFunction = 6;
        pgpdec.maxBlocksPerFunction = 24;
        pgpdec.minOpsPerBlock = 4;
        pgpdec.maxOpsPerBlock = 16;
        pgpdec.loopProb = 0.3;
        pgpdec.loopTripMean = 9.0;
        pgpdec.branchProb = 0.45;
        pgpdec.callProb = 0.055;
        pgpdec.indirectCallFraction = 0.40;
        pgpdec.fracMem = 0.3;
        pgpdec.fracFloat = 0.0;
        pgpdec.depDensity = 0.5;
        pgpdec.numStreams = 12;
        pgpdec.minStreamWords = 2048;
        pgpdec.maxStreamWords = 16384;
        pgpdec.patterns = {0.2, 0.05, 0.15, 0.4, 0.2};
        suite.push_back(pgpdec);
    }
    {
        AppSpec pgpenc;
        pgpenc.name = "pgpencode";
        pgpenc.seed = 0x969e2c;
        pgpenc.numFunctions = 66;
        pgpenc.minBlocksPerFunction = 6;
        pgpenc.maxBlocksPerFunction = 22;
        pgpenc.minOpsPerBlock = 4;
        pgpenc.maxOpsPerBlock = 16;
        pgpenc.loopProb = 0.32;
        pgpenc.loopTripMean = 10.0;
        pgpenc.branchProb = 0.4;
        pgpenc.callProb = 0.055;
        pgpenc.indirectCallFraction = 0.40;
        pgpenc.fracMem = 0.28;
        pgpenc.fracFloat = 0.0;
        pgpenc.depDensity = 0.5;
        pgpenc.numStreams = 12;
        pgpenc.minStreamWords = 2048;
        pgpenc.maxStreamWords = 16384;
        pgpenc.patterns = {0.2, 0.05, 0.15, 0.4, 0.2};
        suite.push_back(pgpenc);
    }
    {
        AppSpec rasta;
        rasta.name = "rasta";
        rasta.seed = 0x4a57a;
        rasta.numFunctions = 34;
        rasta.minBlocksPerFunction = 5;
        rasta.maxBlocksPerFunction = 20;
        rasta.minOpsPerBlock = 5;
        rasta.maxOpsPerBlock = 18;
        rasta.loopProb = 0.38;
        rasta.loopTripMean = 11.0;
        rasta.branchProb = 0.35;
        rasta.callProb = 0.05;
        rasta.indirectCallFraction = 0.30;
        rasta.fracMem = 0.3;
        rasta.fracFloat = 0.25;
        rasta.depDensity = 0.3;
        rasta.numStreams = 10;
        rasta.minStreamWords = 16384;
        rasta.maxStreamWords = 131072;
        rasta.patterns = {0.45, 0.25, 0.1, 0.1, 0.1};
        suite.push_back(rasta);
    }
    {
        AppSpec unepic;
        unepic.name = "unepic";
        unepic.seed = 0x04e91c;
        unepic.numFunctions = 22;
        unepic.minBlocksPerFunction = 5;
        unepic.maxBlocksPerFunction = 16;
        unepic.minOpsPerBlock = 5;
        unepic.maxOpsPerBlock = 18;
        unepic.loopProb = 0.45;
        unepic.loopTripMean = 13.0;
        unepic.branchProb = 0.3;
        unepic.callProb = 0.04;
        unepic.indirectCallFraction = 0.25;
        unepic.fracMem = 0.33;
        unepic.fracFloat = 0.18;
        unepic.depDensity = 0.26;
        unepic.numStreams = 8;
        unepic.minStreamWords = 32768;
        unepic.maxStreamWords = 262144;
        unepic.patterns = {0.5, 0.3, 0.05, 0.1, 0.05};
        suite.push_back(unepic);
    }

    return suite;
}

std::vector<AppSpec>
acceleratorSuite()
{
    std::vector<AppSpec> suite;

    // Blocked tiled-matmul kernel drivers: small dispatch-free code,
    // deep loops, data side dominated by Tiled streams with a heavy
    // store fraction (the C-matrix accumulate). Two tile edges so
    // the tile working set straddles typical L1 capacities.
    auto matmul = [](const char *name, uint64_t seed,
                     uint32_t tile_words) {
        AppSpec m;
        m.name = name;
        m.seed = seed;
        m.numFunctions = 10;
        m.minBlocksPerFunction = 4;
        m.maxBlocksPerFunction = 12;
        m.minOpsPerBlock = 6;
        m.maxOpsPerBlock = 20;
        m.loopProb = 0.55;
        m.loopTripMean = 16.0;
        m.branchProb = 0.2;
        m.callProb = 0.04;
        m.indirectCallFraction = 0.1;
        m.fracMem = 0.45;
        m.fracFloat = 0.25;
        m.storeFraction = 0.45;
        m.depDensity = 0.2;
        m.numStreams = 6;
        m.minStreamWords = 65536;
        m.maxStreamWords = 262144;
        m.patterns = {0.1, 0.05, 0.0, 0.05, 0.05, 0.75};
        m.tileWords = tile_words;
        return m;
    };
    suite.push_back(matmul("matmul-tile8", 0x3a73018, 8));
    suite.push_back(matmul("matmul-tile16", 0x3a73116, 16));

    // Zipf-skewed applications: a table-lookup kernel (few hot
    // rows, store-light) and a dispatch-heavy interpreter analogue
    // (hot dispatch structures, store-heavy). Skewed reuse is where
    // LRU's recency tracking visibly beats FIFO/random.
    {
        AppSpec lut;
        lut.name = "zipf-lut";
        lut.seed = 0x21bf107;
        lut.numFunctions = 18;
        lut.minBlocksPerFunction = 5;
        lut.maxBlocksPerFunction = 14;
        lut.minOpsPerBlock = 4;
        lut.maxOpsPerBlock = 14;
        lut.loopProb = 0.4;
        lut.loopTripMean = 12.0;
        lut.branchProb = 0.35;
        lut.callProb = 0.05;
        lut.indirectCallFraction = 0.2;
        lut.fracMem = 0.4;
        lut.fracFloat = 0.05;
        lut.storeFraction = 0.15;
        lut.depDensity = 0.3;
        lut.numStreams = 8;
        lut.minStreamWords = 16384;
        lut.maxStreamWords = 131072;
        lut.patterns = {0.1, 0.0, 0.05, 0.75, 0.1, 0.0};
        suite.push_back(lut);
    }
    {
        AppSpec disp;
        disp.name = "zipf-dispatch";
        disp.seed = 0x21bfd15;
        disp.numFunctions = 60;
        disp.minBlocksPerFunction = 6;
        disp.maxBlocksPerFunction = 22;
        disp.minOpsPerBlock = 3;
        disp.maxOpsPerBlock = 14;
        disp.loopProb = 0.25;
        disp.loopTripMean = 7.0;
        disp.branchProb = 0.5;
        disp.callProb = 0.08;
        disp.indirectCallFraction = 0.55;
        disp.fracMem = 0.35;
        disp.fracFloat = 0.0;
        disp.storeFraction = 0.4;
        disp.depDensity = 0.4;
        disp.numStreams = 10;
        disp.minStreamWords = 4096;
        disp.maxStreamWords = 65536;
        disp.patterns = {0.1, 0.05, 0.05, 0.6, 0.2, 0.0};
        suite.push_back(disp);
    }

    return suite;
}

AppSpec
specByName(const std::string &name)
{
    for (auto &spec : paperSuite()) {
        if (spec.name == name)
            return spec;
    }
    for (auto &spec : acceleratorSuite()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown benchmark '", name, "'");
}

} // namespace pico::workloads
