#include "workloads/Toolchain.hpp"

#include "compiler/Hyperblock.hpp"
#include "compiler/Scheduler.hpp"
#include "isa/Assembler.hpp"
#include "isa/InstructionFormat.hpp"
#include "linker/Linker.hpp"
#include "trace/ExecutionEngine.hpp"

namespace pico::workloads
{

ir::Program
buildAndProfile(const AppSpec &spec, uint64_t profile_blocks)
{
    ir::Program prog = buildProgram(spec);
    trace::ExecutionEngine::profile(prog, profile_blocks);
    return prog;
}

ir::Program
programForClass(const ir::Program &base,
                const machine::MachineDesc &mdes,
                uint64_t profile_blocks)
{
    if (mdes.predRegs == 0)
        return base;
    ir::Program converted = compiler::formHyperblocks(base);
    trace::ExecutionEngine::profile(converted, profile_blocks);
    return converted;
}

MachineBuild
buildFor(const ir::Program &prog, const machine::MachineDesc &mdes)
{
    compiler::Scheduler scheduler;
    isa::InstructionFormat format(mdes);
    isa::Assembler assembler(format);
    linker::Linker linker;

    MachineBuild out;
    out.sched = scheduler.schedule(prog, mdes);
    out.bin = linker.link(assembler.assemble(prog, out.sched));
    out.processorCycles =
        compiler::Scheduler::processorCycles(prog, out.sched);
    return out;
}

} // namespace pico::workloads
