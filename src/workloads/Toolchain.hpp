/**
 * @file
 * Convenience driver for the whole per-machine tool chain:
 * schedule -> assemble -> link, mirroring the paper's figure 3
 * pipeline. Experiments and examples use these helpers; the
 * individual tools remain directly usable.
 */

#ifndef PICO_WORKLOADS_TOOLCHAIN_HPP
#define PICO_WORKLOADS_TOOLCHAIN_HPP

#include <cstdint>

#include "compiler/Schedule.hpp"
#include "ir/Program.hpp"
#include "linker/LinkedBinary.hpp"
#include "machine/MachineDesc.hpp"
#include "workloads/AppSpec.hpp"

namespace pico::workloads
{

/** Default block-entry budget for profiling runs. */
constexpr uint64_t defaultProfileBlocks = 60000;

/** Everything machine-dependent built for one (app, machine) pair. */
struct MachineBuild
{
    compiler::ScheduledProgram sched;
    linker::LinkedBinary bin;
    /** Estimated processor cycles (schedule lengths x profile). */
    uint64_t processorCycles = 0;
};

/**
 * Generate a program from a spec and run the profiling pass that
 * fills block and call counts.
 */
ir::Program buildAndProfile(const AppSpec &spec,
                            uint64_t profile_blocks =
                                defaultProfileBlocks);

/**
 * Compile, assemble and link a profiled program for one machine.
 * The program must belong to the machine's trace-equivalence class
 * (see programForClass).
 */
MachineBuild buildFor(const ir::Program &prog,
                      const machine::MachineDesc &mdes);

/**
 * Produce the program variant matching a machine's trace-equivalence
 * class: for predicated machines the program is if-converted into
 * hyperblocks and re-profiled; otherwise a copy of the base program
 * is returned. One such variant serves as the common source for
 * every machine in the class — the paper's "several Pref processors,
 * one for each unique combination of predication and speculation".
 */
ir::Program programForClass(const ir::Program &base,
                            const machine::MachineDesc &mdes,
                            uint64_t profile_blocks =
                                defaultProfileBlocks);

} // namespace pico::workloads

#endif // PICO_WORKLOADS_TOOLCHAIN_HPP
