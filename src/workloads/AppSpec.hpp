/**
 * @file
 * Synthetic application specifications and generator.
 *
 * The paper evaluates on MediaBench and SPEC binaries compiled by
 * Trimaran/IMPACT; neither the benchmarks' inputs nor those compilers
 * are available here, so we substitute a deterministic synthetic
 * application generator (see DESIGN.md, section 4). An AppSpec
 * controls the program-structure knobs that matter to the dilation
 * model: code size, basic-block size distribution, control-flow
 * shape (loops, branches, calls), instruction mix, ILP (dependence
 * density), and the size and access pattern of the data streams.
 */

#ifndef PICO_WORKLOADS_APP_SPEC_HPP
#define PICO_WORKLOADS_APP_SPEC_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ir/Program.hpp"

namespace pico::workloads
{

/** Weighted choice of data-stream access patterns. */
struct PatternMix
{
    double sequential = 1.0;
    double strided = 0.0;
    double random = 0.0;
    double zipf = 0.0;
    double stack = 0.0;
    /** Blocked matrix traversal (accelerator-kernel shape). */
    double tiled = 0.0;
};

/** All generator knobs for one synthetic application. */
struct AppSpec
{
    std::string name = "app";
    uint64_t seed = 1;

    /** @name Code shape */
    /// @{
    uint32_t numFunctions = 16;
    uint32_t minBlocksPerFunction = 6;
    uint32_t maxBlocksPerFunction = 20;
    uint32_t minOpsPerBlock = 4;
    uint32_t maxOpsPerBlock = 14;
    /// @}

    /** @name Control flow */
    /// @{
    /** Probability a block carries a loop back edge. */
    double loopProb = 0.3;
    /** Mean iterations of a loop (back-edge geometric mean). */
    double loopTripMean = 8.0;
    /** Probability a non-loop block ends in a two-way branch. */
    double branchProb = 0.4;
    /** Probability a block calls another function. */
    double callProb = 0.15;
    /**
     * Fraction of call sites that are indirect (dispatch-style,
     * callee chosen at run time). Spreads execution over many
     * functions, widening the instruction working set the way
     * compiler/interpreter workloads do.
     */
    double indirectCallFraction = 0.25;
    /// @}

    /** @name Operation mix (fractions of body ops; rest integer) */
    /// @{
    double fracMem = 0.3;
    double fracFloat = 0.1;
    /** Fraction of memory ops that are stores. */
    double storeFraction = 0.3;
    /// @}

    /** Probability an op depends on each of its recent predecessors
     *  (higher = less ILP). */
    double depDensity = 0.35;

    /** @name Data streams */
    /// @{
    uint32_t numStreams = 8;
    uint64_t minStreamWords = 4096;
    uint64_t maxStreamWords = 65536;
    PatternMix patterns;
    /**
     * Tile edge in words for Tiled streams (0 = the engine derives
     * its default of 8). Irrelevant to every other pattern.
     */
    uint32_t tileWords = 0;
    /// @}
};

/**
 * Generate the program for a spec. The result is finalized but not
 * profiled; run ExecutionEngine::profile before layout or cycle
 * estimation.
 */
ir::Program buildProgram(const AppSpec &spec);

/**
 * The ten benchmark analogues used throughout the experiments, named
 * after the paper's benchmarks: 085.gcc, 099.go, 147.vortex, epic,
 * ghostscript, mipmap, pgpdecode, pgpencode, rasta, unepic.
 */
std::vector<AppSpec> paperSuite();

/**
 * Embedded-accelerator analogues beyond the paper's benchmarks:
 * blocked tiled-matmul kernel drivers (matmul-tile8/tile16) whose
 * data side is dominated by Tiled streams with heavy store traffic,
 * and Zipf-skewed lookup/dispatch applications (zipf-lut,
 * zipf-dispatch). These exercise the replacement and write-policy
 * axes: tiled reuse separates LRU from FIFO/random, and the high
 * store fraction separates write-back from write-through traffic.
 */
std::vector<AppSpec> acceleratorSuite();

/**
 * Lookup one suite member by name, searching paperSuite() then
 * acceleratorSuite(); fatal() when unknown.
 */
AppSpec specByName(const std::string &name);

} // namespace pico::workloads

#endif // PICO_WORKLOADS_APP_SPEC_HPP
