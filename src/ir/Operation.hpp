/**
 * @file
 * Machine-independent operation representation.
 *
 * Operations are the atoms of the IR: each belongs to a functional-unit
 * class, may reference a data stream (loads/stores), and carries its
 * intra-block dependences so the scheduler can extract ILP.
 */

#ifndef PICO_IR_OPERATION_HPP
#define PICO_IR_OPERATION_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace pico::ir
{

/** Functional-unit class an operation executes on. */
enum class OpClass : uint8_t
{
    IntAlu,   ///< integer ALU operation
    FloatAlu, ///< floating-point operation
    Memory,   ///< load or store
    Branch,   ///< control transfer
};

/** Memory behavior of an operation. */
enum class MemKind : uint8_t
{
    None,  ///< not a memory operation
    Load,  ///< reads one word from a data stream
    Store, ///< writes one word to a data stream
};

/** Printable name of an OpClass. */
const char *toString(OpClass cls);

/**
 * One machine-independent operation.
 *
 * @note deps holds indices of earlier operations in the same basic
 *       block that must complete before this operation issues.
 */
struct Operation
{
    OpClass opClass = OpClass::IntAlu;
    MemKind memKind = MemKind::None;
    /** Data stream accessed when memKind != None. */
    uint16_t streamId = 0;
    /** Result latency in cycles (>= 1). */
    uint8_t latency = 1;
    /** Load that the compiler may hoist speculatively. */
    bool speculable = false;
    /**
     * Operation guarded by a predicate register (set by hyperblock
     * formation). Predicated operations always occupy issue slots
     * and fetch bandwidth; memory operations still emit their data
     * reference (conservative nullified-store model).
     */
    bool predicated = false;
    /** Indices of in-block operations this one depends on. */
    std::vector<uint16_t> deps;

    bool isLoad() const { return memKind == MemKind::Load; }
    bool isStore() const { return memKind == MemKind::Store; }
    bool isMem() const { return memKind != MemKind::None; }
    bool isBranch() const { return opClass == OpClass::Branch; }
};

} // namespace pico::ir

#endif // PICO_IR_OPERATION_HPP
