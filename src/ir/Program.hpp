/**
 * @file
 * Whole-program IR: functions of basic blocks plus data streams.
 *
 * The IR is deliberately machine independent: the same Program is
 * compiled for every VLIW machine in the design space, which is what
 * makes the paper's assumption 1 (identical basic-block traces across
 * processors) hold by construction.
 */

#ifndef PICO_IR_PROGRAM_HPP
#define PICO_IR_PROGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ir/Operation.hpp"

namespace pico::ir
{

/** Control-flow edge with a profile-derived probability. */
struct Edge
{
    /** Target block index within the same function. */
    uint32_t target = 0;
    /** Probability this edge is taken on block exit. */
    double prob = 1.0;
};

/**
 * A basic block: straight-line operations plus outgoing edges.
 *
 * An empty successor list means the block returns from its function.
 * A non-negative callee indicates a call made at the end of the block,
 * before the outgoing edge is followed.
 */
struct BasicBlock
{
    /** Index of this block within its function. */
    uint32_t id = 0;
    std::vector<Operation> ops;
    std::vector<Edge> succs;
    /** Function called at block end, or -1 for none. */
    int32_t callee = -1;
    /**
     * Indirect (function-pointer) call: the callee is chosen at run
     * time, uniformly among higher-numbered functions. Models the
     * dispatch loops of compiler/interpreter-class programs; the
     * choice comes from the engine's seeded Rng, so traces remain
     * reproducible and machine independent.
     */
    bool indirectCall = false;
    /** Dynamic entry count, filled in by a profiling run. */
    uint64_t profileCount = 0;
    /** True when some branch targets this block (set by finalize()). */
    bool isBranchTarget = false;
};

/** A function: blocks indexed by id; block 0 is the entry. */
struct Function
{
    uint32_t id = 0;
    std::string name;
    std::vector<BasicBlock> blocks;
    /** Dynamic call count, filled in by a profiling run. */
    uint64_t callCount = 0;
};

/** Access pattern a data stream generates. */
enum class AccessPattern : uint8_t
{
    Sequential, ///< advancing cursor, wraps at the region end
    Strided,    ///< advancing by a fixed element stride
    Random,     ///< uniformly random element within the region
    Zipf,       ///< skewed reuse of hot elements
    Stack,      ///< small, hot region near the top of a stack
    Tiled,      ///< blocked matrix traversal (tile by tile, row-major
                ///< within a tile) — the shape of blocked-matmul
                ///< accelerator kernels
};

/**
 * A data region accessed by memory operations. Word addresses are
 * assigned when the Program is finalized.
 */
struct DataStream
{
    uint16_t id = 0;
    AccessPattern pattern = AccessPattern::Sequential;
    /** Region size in 4-byte words. */
    uint64_t sizeWords = 1024;
    /** Element stride in words (Strided only). */
    uint32_t strideWords = 1;
    /** Zipf exponent (Zipf only). */
    double zipfExponent = 1.1;
    /** Tile edge in words (Tiled only; 0 = engine derives 8). */
    uint32_t tileWords = 0;
    /**
     * Matrix row width in words (Tiled only; 0 = engine derives the
     * largest power of two at most sqrt(sizeWords), i.e. a roughly
     * square matrix).
     */
    uint64_t rowWords = 0;
    /** Assigned base byte address (set by Program::finalize). */
    uint64_t baseAddr = 0;
};

/**
 * A whole application: functions, data streams, and the entry point.
 */
class Program
{
  public:
    std::string name;
    /** Seed for the execution engine's stochastic behavior. */
    uint64_t seed = 1;
    std::vector<Function> functions;
    std::vector<DataStream> streams;
    /** Entry function index. */
    uint32_t entryFunction = 0;

    /** Base byte address of the data segment. */
    static constexpr uint64_t dataBase = 0x40000000ULL;

    /**
     * Validate the program and assign derived fields: stream base
     * addresses, branch-target flags, and edge-probability checks.
     * Must be called once after construction and before use.
     */
    void finalize();

    /** Total static operation count over all blocks. */
    uint64_t totalOperations() const;

    /** Total number of basic blocks. */
    uint64_t totalBlocks() const;

    bool finalized() const { return finalized_; }

  private:
    bool finalized_ = false;
};

} // namespace pico::ir

#endif // PICO_IR_PROGRAM_HPP
