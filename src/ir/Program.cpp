#include "ir/Program.hpp"

#include <cmath>

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::ir
{

const char *
toString(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
        return "int";
      case OpClass::FloatAlu:
        return "float";
      case OpClass::Memory:
        return "mem";
      case OpClass::Branch:
        return "branch";
    }
    return "?";
}

void
Program::finalize()
{
    fatalIf(functions.empty(), "program '", name, "' has no functions");
    fatalIf(entryFunction >= functions.size(),
            "entry function out of range");

    // Assign stream base addresses, each region aligned to 4 KB so
    // distinct streams never share a cache line.
    uint64_t cursor = dataBase;
    for (size_t i = 0; i < streams.size(); ++i) {
        auto &s = streams[i];
        fatalIf(s.sizeWords == 0, "stream of size 0 in '", name, "'");
        s.id = static_cast<uint16_t>(i);
        s.baseAddr = cursor;
        cursor = alignUp(cursor + s.sizeWords * 4, 4096);
    }

    for (size_t fi = 0; fi < functions.size(); ++fi) {
        auto &func = functions[fi];
        func.id = static_cast<uint32_t>(fi);
        fatalIf(func.blocks.empty(),
                "function '", func.name, "' has no blocks");
        for (size_t bi = 0; bi < func.blocks.size(); ++bi) {
            auto &block = func.blocks[bi];
            block.id = static_cast<uint32_t>(bi);
            fatalIf(block.ops.empty(),
                    "empty basic block in '", func.name, "'");

            // Validate ops.
            for (size_t oi = 0; oi < block.ops.size(); ++oi) {
                const auto &op = block.ops[oi];
                fatalIf(op.isMem() && op.streamId >= streams.size(),
                        "op references unknown stream");
                fatalIf(op.isMem() && op.opClass != OpClass::Memory,
                        "memory op with non-memory class");
                for (auto dep : op.deps) {
                    fatalIf(dep >= oi,
                            "dependence on a later op in block");
                }
            }

            // Validate edges; probabilities must sum to ~1 when any
            // edge exists.
            if (!block.succs.empty()) {
                double total = 0.0;
                for (const auto &edge : block.succs) {
                    fatalIf(edge.target >= func.blocks.size(),
                            "edge target out of range");
                    fatalIf(edge.prob < 0.0 || edge.prob > 1.0,
                            "edge probability out of [0,1]");
                    total += edge.prob;
                }
                fatalIf(std::abs(total - 1.0) > 1e-6,
                        "edge probabilities of block ", bi, " in '",
                        func.name, "' sum to ", total);
            }
            fatalIf(block.callee >= 0 &&
                    static_cast<size_t>(block.callee) >= functions.size(),
                    "callee out of range");
            fatalIf(block.indirectCall && block.callee >= 0,
                    "block has both direct and indirect call");
            fatalIf(block.indirectCall &&
                    fi + 1 >= functions.size(),
                    "indirect call with no higher-numbered callees");
        }

        // Mark branch targets: every block that is the target of a
        // non-fall-through edge (any edge whose target is not the
        // next sequential block), plus every function entry.
        func.blocks[0].isBranchTarget = true;
        for (const auto &block : func.blocks) {
            for (const auto &edge : block.succs) {
                if (edge.target != block.id + 1)
                    func.blocks[edge.target].isBranchTarget = true;
            }
        }
    }
    finalized_ = true;
}

uint64_t
Program::totalOperations() const
{
    uint64_t n = 0;
    for (const auto &func : functions)
        for (const auto &block : func.blocks)
            n += block.ops.size();
    return n;
}

uint64_t
Program::totalBlocks() const
{
    uint64_t n = 0;
    for (const auto &func : functions)
        n += func.blocks.size();
    return n;
}

} // namespace pico::ir
