/**
 * @file
 * Hyperblock formation: if-conversion for predicated machines.
 *
 * Machines with predicate registers let the compiler convert
 * triangle-shaped control flow (A branches over B to C, B falls
 * into C) into straight-line code: B's operations are merged into A
 * under a predicate and the conditional branch disappears. This
 * changes the basic-block trace, which is exactly why the paper
 * requires the reference and target processors to share
 * predication features and uses one reference processor per
 * predication/speculation combination (section 4.1).
 */

#ifndef PICO_COMPILER_HYPERBLOCK_HPP
#define PICO_COMPILER_HYPERBLOCK_HPP

#include "ir/Program.hpp"

namespace pico::compiler
{

/** Statistics of one if-conversion pass. */
struct HyperblockStats
{
    /** Triangles merged across the program. */
    uint32_t merged = 0;
    /** Operations that became predicated. */
    uint32_t predicatedOps = 0;
};

/**
 * If-convert a program for a predicated machine.
 *
 * Triangles A -> {B, C}, B -> C (with B = A + 1 reached only from
 * A) are merged: A keeps its body, absorbs B's operations as
 * predicated ops, and branches unconditionally to C. The transform
 * iterates until no triangle remains, so chains of if-then blocks
 * collapse into hyperblocks.
 *
 * @param prog finalized source program (unchanged)
 * @param stats optional out-parameter for transform statistics
 * @return a new finalized program with hyperblocks formed
 */
ir::Program formHyperblocks(const ir::Program &prog,
                            HyperblockStats *stats = nullptr);

} // namespace pico::compiler

#endif // PICO_COMPILER_HYPERBLOCK_HPP
