/**
 * @file
 * Cycle-driven list scheduler for the parameterized VLIW machines.
 *
 * The scheduler plays the role of the paper's Elcor back end: it maps
 * the machine-independent IR onto a specific machine's functional
 * units, speculating loads more aggressively on wider machines and
 * inserting spill code when register pressure exceeds the register
 * file — the two effects the paper identifies as the sources of data
 * trace differences between processors (section 4.1, assumption 1).
 */

#ifndef PICO_COMPILER_SCHEDULER_HPP
#define PICO_COMPILER_SCHEDULER_HPP

#include "compiler/Schedule.hpp"
#include "ir/Program.hpp"

namespace pico::compiler
{

/** Tunables for the scheduler; defaults match the paper's regime. */
struct SchedulerOptions
{
    /**
     * Probability of speculating a speculable load grows linearly
     * with issue slots beyond the reference width at this rate.
     */
    double speculationPerSlot = 0.08;
    /** Cap on the speculation probability. */
    double speculationCap = 0.8;
    /**
     * Integer check/recovery operations emitted per speculated
     * load (static code growth of speculation; the paper notes
     * wider processors' speculation increases static code size).
     */
    unsigned checkOpsPerSpeculation = 2;
    /** Fraction of the integer register file usable for temporaries. */
    double usableRegFraction = 0.5;
};

/** List scheduler; stateless apart from its options. */
class Scheduler
{
  public:
    explicit Scheduler(SchedulerOptions options = {})
        : options_(options)
    {}

    /**
     * Schedule a whole program for one machine.
     * @param prog finalized IR program
     * @param mdes target machine
     * @return machine-dependent schedule, parallel to the IR
     */
    ScheduledProgram schedule(const ir::Program &prog,
                              const machine::MachineDesc &mdes) const;

    /**
     * Schedule one basic block.
     * @param block the IR block
     * @param mdes target machine
     * @param salt deterministic seed (derived from function/block ids)
     */
    ScheduledBlock scheduleBlock(const ir::BasicBlock &block,
                                 const machine::MachineDesc &mdes,
                                 uint64_t salt) const;

    /**
     * Estimated processor cycles of a scheduled program: the sum over
     * blocks of profile count times schedule length. This is the
     * paper's processor-subsystem performance metric (schedule
     * lengths plus profile statistics, section 3.2).
     */
    static uint64_t processorCycles(const ir::Program &prog,
                                    const ScheduledProgram &sched);

    /**
     * Processor cycles with data-cache port contention: a block
     * whose memory operations exceed what `dcache_ports` can accept
     * per cycle is stretched accordingly. This is the coupling that
     * makes cache port count a processor-performance parameter in
     * the design space (the paper's Pareto sets are parameterized by
     * data/unified cache ports).
     */
    static uint64_t processorCycles(const ir::Program &prog,
                                    const ScheduledProgram &sched,
                                    uint32_t dcache_ports);

  private:
    SchedulerOptions options_;
};

} // namespace pico::compiler

#endif // PICO_COMPILER_SCHEDULER_HPP
