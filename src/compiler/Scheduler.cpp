#include "compiler/Scheduler.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "support/Logging.hpp"

namespace pico::compiler
{

namespace
{

/** Deterministic hash-to-[0,1) used for speculation decisions. */
double
hashToUnit(uint64_t salt, uint64_t index)
{
    uint64_t z = salt ^ (index * 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

} // namespace

ScheduledProgram
Scheduler::schedule(const ir::Program &prog,
                    const machine::MachineDesc &mdes) const
{
    fatalIf(!prog.finalized(), "schedule() needs a finalized program");
    ScheduledProgram out;
    out.mdes = mdes;
    out.functions.resize(prog.functions.size());
    for (size_t fi = 0; fi < prog.functions.size(); ++fi) {
        const auto &func = prog.functions[fi];
        auto &sfunc = out.functions[fi];
        sfunc.blocks.resize(func.blocks.size());
        for (size_t bi = 0; bi < func.blocks.size(); ++bi) {
            uint64_t salt = prog.seed ^ (fi * 1000003ULL + bi * 10007ULL);
            sfunc.blocks[bi] =
                scheduleBlock(func.blocks[bi], mdes, salt);
        }
    }
    return out;
}

ScheduledBlock
Scheduler::scheduleBlock(const ir::BasicBlock &block,
                         const machine::MachineDesc &mdes,
                         uint64_t salt) const
{
    const size_t n = block.ops.size();
    const unsigned width = mdes.issueWidth();

    // --- Speculation decisions -------------------------------------
    // Wider machines have idle slots; the compiler fills some of them
    // by hoisting speculable loads above their dependences.
    double spec_prob = 0.0;
    if (mdes.speculation && width > 4) {
        spec_prob = std::min(options_.speculationCap,
                             options_.speculationPerSlot *
                             static_cast<double>(width - 4));
    }

    std::vector<bool> speculated(n, false);
    for (size_t i = 0; i < n; ++i) {
        const auto &op = block.ops[i];
        if (op.speculable && op.isLoad() &&
            hashToUnit(salt, i) < spec_prob) {
            speculated[i] = true;
        }
    }

    // --- Dependence edges (speculated loads drop their deps) --------
    std::vector<std::vector<uint16_t>> succs(n);
    std::vector<std::vector<uint16_t>> preds(n);
    std::vector<unsigned> indeg(n, 0);
    auto addEdge = [&](uint16_t from, uint16_t to) {
        succs[from].push_back(to);
        preds[to].push_back(from);
        ++indeg[to];
    };
    for (size_t i = 0; i < n; ++i) {
        if (speculated[i])
            continue;
        for (auto dep : block.ops[i].deps)
            addEdge(dep, static_cast<uint16_t>(i));
    }
    // A block-ending branch issues only after every other op has
    // issued; model that with implicit edges.
    for (size_t i = 0; i < n; ++i) {
        if (!block.ops[i].isBranch())
            continue;
        for (size_t j = 0; j < n; ++j) {
            if (j == i)
                continue;
            bool already = false;
            for (auto s : succs[j]) {
                if (s == i) {
                    already = true;
                    break;
                }
            }
            if (!already) {
                addEdge(static_cast<uint16_t>(j),
                        static_cast<uint16_t>(i));
            }
        }
    }

    // --- Priorities: critical-path height ---------------------------
    std::vector<unsigned> height(n, 0);
    for (size_t ri = n; ri-- > 0;) {
        unsigned h = 0;
        for (auto s : succs[ri])
            h = std::max(h, height[s]);
        height[ri] = h + block.ops[ri].latency;
    }

    // --- Cycle-driven list scheduling --------------------------------
    std::vector<int64_t> issueCycle(n, -1);
    std::vector<int64_t> readyCycle(n, 0);
    std::vector<unsigned> remaining(indeg);
    std::vector<uint16_t> ready;
    for (size_t i = 0; i < n; ++i) {
        if (remaining[i] == 0)
            ready.push_back(static_cast<uint16_t>(i));
    }

    ScheduledBlock out;
    size_t scheduled = 0;
    int64_t cycle = 0;
    while (scheduled < n) {
        VliwInst inst;
        std::array<unsigned, machine::numOpClasses> used = {};

        // Highest critical-path height first; stable tie-break by
        // original order keeps the schedule deterministic.
        std::sort(ready.begin(), ready.end(),
                  [&](uint16_t a, uint16_t b) {
                      if (height[a] != height[b])
                          return height[a] > height[b];
                      return a < b;
                  });

        std::vector<uint16_t> still_waiting;
        for (auto idx : ready) {
            const auto &op = block.ops[idx];
            auto cls = static_cast<unsigned>(op.opClass);
            bool fits = readyCycle[idx] <= cycle &&
                        used[cls] < mdes.slots(op.opClass) &&
                        inst.occupancy() < width;
            if (fits) {
                ++used[cls];
                issueCycle[idx] = cycle;
                ScheduledOp sop;
                sop.opClass = op.opClass;
                sop.memKind = op.memKind;
                sop.streamId = op.streamId;
                sop.origIndex = idx;
                sop.speculated = speculated[idx];
                inst.ops.push_back(sop);
                ++scheduled;
            } else {
                still_waiting.push_back(idx);
            }
        }
        ready.swap(still_waiting);

        // Release operations whose dependences all issued; the ready
        // cycle is the max finish time over predecessors.
        for (const auto &sop : inst.ops) {
            for (auto s : succs[sop.origIndex]) {
                if (--remaining[s] == 0) {
                    int64_t rc = 0;
                    for (auto p : preds[s]) {
                        rc = std::max<int64_t>(
                            rc, issueCycle[p] + block.ops[p].latency);
                    }
                    readyCycle[s] = rc;
                    ready.push_back(s);
                }
            }
        }

        out.insts.push_back(std::move(inst));
        ++cycle;
        panicIf(cycle > static_cast<int64_t>(n) * 64 + 64,
                "scheduler failed to converge");
    }

    out.numSpeculated = static_cast<uint16_t>(
        std::count(speculated.begin(), speculated.end(), true));

    // Speculation's static cost: each hoisted load needs check and
    // recovery code. The check ops are plain integer operations that
    // fill idle slots when possible and fresh cycles otherwise.
    unsigned checks = out.numSpeculated * options_.checkOpsPerSpeculation;
    if (checks > 0) {
        auto makeCheck = [] {
            ScheduledOp sop;
            sop.opClass = ir::OpClass::IntAlu;
            return sop;
        };
        unsigned placed_checks = 0;
        for (auto &inst : out.insts) {
            if (placed_checks >= checks)
                break;
            unsigned int_used = 0;
            for (const auto &sop : inst.ops) {
                if (sop.opClass == ir::OpClass::IntAlu)
                    ++int_used;
            }
            while (int_used < mdes.slots(ir::OpClass::IntAlu) &&
                   inst.occupancy() < width &&
                   placed_checks < checks) {
                inst.ops.push_back(makeCheck());
                ++int_used;
                ++placed_checks;
            }
        }
        while (placed_checks < checks) {
            VliwInst inst;
            unsigned int_slots = mdes.slots(ir::OpClass::IntAlu);
            for (unsigned k = 0;
                 k < int_slots && placed_checks < checks; ++k) {
                inst.ops.push_back(makeCheck());
                ++placed_checks;
            }
            out.insts.push_back(std::move(inst));
        }
    }

    // --- Register pressure and spill insertion -----------------------
    // A value is live from issue until its last consumer issues; ops
    // without consumers hold a register to the end of the block.
    // Liveness follows the *data* dependences only (the implicit
    // edges to the branch order issue, they do not consume values):
    // a value lives from issue until its last real consumer issues,
    // or until it completes when nothing consumes it.
    std::vector<int64_t> lastUse(n);
    for (size_t i = 0; i < n; ++i)
        lastUse[i] = issueCycle[i] + block.ops[i].latency;
    for (size_t i = 0; i < n; ++i) {
        if (speculated[i])
            continue;
        for (auto dep : block.ops[i].deps) {
            lastUse[dep] = std::max(lastUse[dep], issueCycle[i]);
        }
    }
    int64_t end_cycle = cycle;
    unsigned max_live = 0;
    for (int64_t c = 0; c < end_cycle; ++c) {
        unsigned live = 0;
        for (size_t i = 0; i < n; ++i) {
            if (issueCycle[i] <= c && lastUse[i] > c)
                ++live;
        }
        max_live = std::max(max_live, live);
    }
    out.maxLive = static_cast<uint16_t>(max_live);

    unsigned usable = std::max<unsigned>(
        4, static_cast<unsigned>(options_.usableRegFraction *
                                 mdes.intRegs));
    if (max_live > usable) {
        // Insert one store/load pair per excess live value. Spill
        // code goes into free memory slots when available and into
        // fresh cycles otherwise, growing both code size and the
        // data trace.
        unsigned spills = max_live - usable;
        out.numSpills = static_cast<uint16_t>(spills);
        unsigned placed = 0;
        auto makeSpill = [](ir::MemKind kind) {
            ScheduledOp sop;
            sop.opClass = ir::OpClass::Memory;
            sop.memKind = kind;
            sop.spill = true;
            return sop;
        };
        for (auto &inst : out.insts) {
            if (placed >= spills * 2)
                break;
            unsigned mem_used = 0;
            for (const auto &sop : inst.ops) {
                if (sop.opClass == ir::OpClass::Memory)
                    ++mem_used;
            }
            while (mem_used < mdes.slots(ir::OpClass::Memory) &&
                   inst.occupancy() < width && placed < spills * 2) {
                inst.ops.push_back(makeSpill(
                    placed % 2 ? ir::MemKind::Load
                               : ir::MemKind::Store));
                ++mem_used;
                ++placed;
            }
        }
        while (placed < spills * 2) {
            VliwInst inst;
            unsigned mem_slots = mdes.slots(ir::OpClass::Memory);
            for (unsigned k = 0;
                 k < mem_slots && placed < spills * 2; ++k) {
                inst.ops.push_back(makeSpill(
                    placed % 2 ? ir::MemKind::Load
                               : ir::MemKind::Store));
                ++placed;
            }
            out.insts.push_back(std::move(inst));
        }
    }

    return out;
}

uint64_t
Scheduler::processorCycles(const ir::Program &prog,
                           const ScheduledProgram &sched)
{
    return processorCycles(prog, sched, 0);
}

uint64_t
Scheduler::processorCycles(const ir::Program &prog,
                           const ScheduledProgram &sched,
                           uint32_t dcache_ports)
{
    fatalIf(prog.functions.size() != sched.functions.size(),
            "program/schedule mismatch");
    uint64_t cycles = 0;
    for (size_t fi = 0; fi < prog.functions.size(); ++fi) {
        const auto &func = prog.functions[fi];
        const auto &sfunc = sched.functions[fi];
        fatalIf(func.blocks.size() != sfunc.blocks.size(),
                "program/schedule block mismatch");
        for (size_t bi = 0; bi < func.blocks.size(); ++bi) {
            const auto &sblock = sfunc.blocks[bi];
            uint64_t length = sblock.scheduleLength();
            if (dcache_ports > 0) {
                // The cache accepts at most `dcache_ports` memory
                // operations per cycle; port-starved blocks
                // stretch.
                uint64_t mem_ops = 0;
                for (const auto &inst : sblock.insts) {
                    for (const auto &op : inst.ops) {
                        if (op.isMem())
                            ++mem_ops;
                    }
                }
                uint64_t port_cycles =
                    (mem_ops + dcache_ports - 1) / dcache_ports;
                length = std::max(length, port_cycles);
            }
            cycles += func.blocks[bi].profileCount * length;
        }
    }
    return cycles;
}

} // namespace pico::compiler
