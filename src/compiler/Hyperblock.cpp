#include "compiler/Hyperblock.hpp"

#include <vector>

#include "support/Logging.hpp"

namespace pico::compiler
{

namespace
{

/**
 * Find one mergeable triangle in a function: returns the index of
 * the guarded block B (A = B - 1), or 0 when none exists.
 */
uint32_t
findTriangle(const ir::Function &func)
{
    for (uint32_t b = 1; b < func.blocks.size(); ++b) {
        const auto &guarded = func.blocks[b];
        uint32_t a = b - 1;
        const auto &head = func.blocks[a];

        // B must be a single-successor, call-free fall-through
        // block; A must branch over it to B's unique successor.
        if (guarded.succs.size() != 1 || guarded.callee >= 0 ||
            guarded.indirectCall) {
            continue;
        }
        uint32_t join = guarded.succs[0].target;
        if (join <= b)
            continue; // forward join only, no loops
        if (head.succs.size() != 2 || head.callee >= 0 ||
            head.indirectCall) {
            continue;
        }
        bool head_to_b = false, head_to_join = false;
        for (const auto &edge : head.succs) {
            if (edge.target == b)
                head_to_b = true;
            else if (edge.target == join)
                head_to_join = true;
        }
        if (!head_to_b || !head_to_join)
            continue;

        // B may be reached only from A.
        bool other_pred = false;
        for (uint32_t k = 0; k < func.blocks.size(); ++k) {
            if (k == a)
                continue;
            for (const auto &edge : func.blocks[k].succs) {
                if (edge.target == b)
                    other_pred = true;
            }
        }
        if (other_pred)
            continue;
        return b;
    }
    return 0;
}

/** Merge guarded block B into A = B - 1 and renumber. */
void
mergeTriangle(ir::Function &func, uint32_t b, HyperblockStats &stats)
{
    auto &head = func.blocks[b - 1];
    auto &guarded = func.blocks[b];
    uint32_t join = guarded.succs[0].target;

    // Drop A's conditional branch; append B's body predicated;
    // close with B's (now unconditional) branch.
    panicIf(head.ops.empty() || !head.ops.back().isBranch(),
            "hyperblock head lacks a terminating branch");
    head.ops.pop_back();
    auto shift = static_cast<uint16_t>(head.ops.size());
    for (auto op : guarded.ops) {
        if (!op.isBranch()) {
            op.predicated = true;
            ++stats.predicatedOps;
        }
        for (auto &dep : op.deps)
            dep = static_cast<uint16_t>(dep + shift);
        head.ops.push_back(std::move(op));
    }

    head.succs.clear();
    head.succs.push_back({join, 1.0});
    head.callee = guarded.callee;
    head.indirectCall = guarded.indirectCall;

    // Remove B and renumber every later block and edge target.
    func.blocks.erase(func.blocks.begin() + b);
    for (auto &block : func.blocks) {
        for (auto &edge : block.succs) {
            panicIf(edge.target == b, "edge into merged block");
            if (edge.target > b)
                --edge.target;
        }
    }
    ++stats.merged;
}

} // namespace

ir::Program
formHyperblocks(const ir::Program &prog, HyperblockStats *stats)
{
    fatalIf(!prog.finalized(), "formHyperblocks needs a finalized "
                               "program");
    HyperblockStats local;

    ir::Program out;
    out.name = prog.name;
    out.seed = prog.seed;
    out.streams = prog.streams;
    out.entryFunction = prog.entryFunction;
    out.functions = prog.functions;

    for (auto &func : out.functions) {
        for (;;) {
            uint32_t b = findTriangle(func);
            if (b == 0)
                break;
            mergeTriangle(func, b, local);
        }
        // Stale derived fields; finalize() recomputes them.
        for (auto &block : func.blocks)
            block.isBranchTarget = false;
    }

    out.finalize();
    if (stats)
        *stats = local;
    return out;
}

} // namespace pico::compiler
