/**
 * @file
 * Scheduled-code representation: the compiler's output.
 *
 * A ScheduledProgram is the analogue of the "scheduled and register
 * allocated assembly code" the paper's compiler hands to the assembler
 * and the emulator. It is machine dependent (schedules, speculation
 * and spill code differ per machine) but instruction-format
 * independent, exactly as in the paper.
 */

#ifndef PICO_COMPILER_SCHEDULE_HPP
#define PICO_COMPILER_SCHEDULE_HPP

#include <cstdint>
#include <vector>

#include "ir/Operation.hpp"
#include "machine/MachineDesc.hpp"

namespace pico::compiler
{

/** Sentinel origIndex for compiler-synthesized (spill) operations. */
constexpr uint16_t synthesizedOp = 0xffff;

/** One operation placed in a VLIW instruction. */
struct ScheduledOp
{
    ir::OpClass opClass = ir::OpClass::IntAlu;
    ir::MemKind memKind = ir::MemKind::None;
    /** Data stream for non-spill memory operations. */
    uint16_t streamId = 0;
    /** Index of the source operation in the IR block. */
    uint16_t origIndex = synthesizedOp;
    /** Spill load/store synthesized by the register allocator. */
    bool spill = false;
    /** Load hoisted speculatively above its dependences. */
    bool speculated = false;

    bool isLoad() const { return memKind == ir::MemKind::Load; }
    bool isStore() const { return memKind == ir::MemKind::Store; }
    bool isMem() const { return memKind != ir::MemKind::None; }
};

/** One VLIW instruction: the operations issued in one cycle. */
struct VliwInst
{
    std::vector<ScheduledOp> ops;

    bool isNop() const { return ops.empty(); }
    unsigned occupancy() const { return ops.size(); }
};

/** Schedule of one basic block. */
struct ScheduledBlock
{
    /** One instruction per issue cycle, in order; may contain nops. */
    std::vector<VliwInst> insts;
    /** Spill load/store pairs inserted. */
    uint16_t numSpills = 0;
    /** Loads scheduled speculatively. */
    uint16_t numSpeculated = 0;
    /** Peak simultaneously-live values observed while scheduling. */
    uint16_t maxLive = 0;

    uint32_t
    scheduleLength() const
    {
        return static_cast<uint32_t>(insts.size());
    }

    /** Total scheduled operations (including spill code). */
    uint32_t
    totalOps() const
    {
        uint32_t n = 0;
        for (const auto &inst : insts)
            n += inst.occupancy();
        return n;
    }
};

/** Schedule of one function: blocks parallel to the IR function. */
struct ScheduledFunction
{
    std::vector<ScheduledBlock> blocks;
};

/** Schedule of a whole program for one machine. */
struct ScheduledProgram
{
    machine::MachineDesc mdes;
    std::vector<ScheduledFunction> functions;

    /** Total scheduled operations over the program. */
    uint64_t
    totalOps() const
    {
        uint64_t n = 0;
        for (const auto &func : functions)
            for (const auto &block : func.blocks)
                n += block.totalOps();
        return n;
    }
};

} // namespace pico::compiler

#endif // PICO_COMPILER_SCHEDULE_HPP
