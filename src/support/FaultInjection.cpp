#include "support/FaultInjection.hpp"

#include <filesystem>
#include <fstream>
#include <set>

#include "support/Logging.hpp"
#include "support/Metrics.hpp"
#include "support/Random.hpp"

namespace pico::support
{

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const std::string &site, uint64_t skip,
                   uint64_t fires)
{
    MutexLock lock(faultMutex_);
    auto &s = sites_[site];
    if (!s.armed)
        armedCount_.fetch_add(1, std::memory_order_release);
    s.armed = true;
    s.skip = s.hits + skip;
    s.fires = fires;
}

void
FaultInjector::disarm(const std::string &site)
{
    MutexLock lock(faultMutex_);
    auto it = sites_.find(site);
    if (it == sites_.end() || !it->second.armed)
        return;
    it->second.armed = false;
    armedCount_.fetch_sub(1, std::memory_order_release);
}

void
FaultInjector::reset()
{
    MutexLock lock(faultMutex_);
    sites_.clear();
    armedCount_.store(0, std::memory_order_release);
}

bool
FaultInjector::shouldFail(const std::string &site)
{
    MutexLock lock(faultMutex_);
    auto &s = sites_[site];
    uint64_t hit = s.hits++;
    if (!s.armed || hit < s.skip)
        return false;
    if (s.fires != 0 && hit >= s.skip + s.fires) {
        s.armed = false;
        armedCount_.fetch_sub(1, std::memory_order_release);
        return false;
    }
    PICO_METRIC_COUNT("fault.trips", 1);
    return true;
}

uint64_t
FaultInjector::hits(const std::string &site) const
{
    MutexLock lock(faultMutex_);
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.hits;
}

void
truncateFile(const std::string &path, uint64_t keepBytes)
{
    std::error_code ec;
    auto size = std::filesystem::file_size(path, ec);
    fatalIf(static_cast<bool>(ec), "cannot stat '", path, "' for truncation");
    fatalIf(size < keepBytes, "'", path, "' is only ", size,
            " bytes; cannot keep ", keepBytes);
    std::filesystem::resize_file(path, keepBytes, ec);
    fatalIf(static_cast<bool>(ec), "cannot truncate '", path, "'");
}

void
truncateFileTail(const std::string &path, uint64_t dropBytes)
{
    std::error_code ec;
    auto size = std::filesystem::file_size(path, ec);
    fatalIf(static_cast<bool>(ec), "cannot stat '", path, "' for truncation");
    fatalIf(size < dropBytes, "'", path, "' is only ", size,
            " bytes; cannot drop ", dropBytes);
    truncateFile(path, size - dropBytes);
}

void
flipBit(const std::string &path, uint64_t byteOffset,
        unsigned bitIndex)
{
    fatalIf(bitIndex > 7, "bit index must be 0-7");
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    fatalIf(!f, "cannot open '", path, "' for corruption");
    f.seekg(static_cast<std::streamoff>(byteOffset));
    char byte = 0;
    fatalIf(!f.get(byte), "offset ", byteOffset, " is past the end of '",
            path, "'");
    byte = static_cast<char>(byte ^ (1u << bitIndex));
    f.seekp(static_cast<std::streamoff>(byteOffset));
    f.put(byte);
    f.flush();
    fatalIf(!f, "corrupting '", path, "' failed");
}

std::vector<uint64_t>
corruptionOffsets(const std::string &path, uint64_t seed, size_t n,
                  uint64_t lo)
{
    std::error_code ec;
    auto size = std::filesystem::file_size(path, ec);
    fatalIf(static_cast<bool>(ec), "cannot stat '", path, "'");
    fatalIf(lo >= size, "offset floor ", lo, " is past the end of '",
            path, "' (", size, " bytes)");
    uint64_t span = size - lo;
    fatalIf(n > span, "cannot pick ", n, " distinct offsets from ",
            span, " bytes");
    Rng rng(seed);
    std::set<uint64_t> picked;
    while (picked.size() < n)
        picked.insert(lo + rng.below(span));
    return {picked.begin(), picked.end()};
}

} // namespace pico::support
