#include "support/Logging.hpp"

#include <iostream>

namespace pico
{
namespace detail
{

void
emitMessage(const char *label, const std::string &msg)
{
    // One formatted write per message: parallel walks report from
    // several threads, and piecewise inserts would interleave.
    std::string line;
    line.reserve(msg.size() + 16);
    line.append(label).append(": ").append(msg).push_back('\n');
    std::cerr << line << std::flush;
}

} // namespace detail
} // namespace pico
