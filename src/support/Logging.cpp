#include "support/Logging.hpp"

#include <iostream>

namespace pico
{
namespace detail
{

void
emitMessage(const char *label, const std::string &msg)
{
    std::cerr << label << ": " << msg << std::endl;
}

} // namespace detail
} // namespace pico
