#include "support/Logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "support/Metrics.hpp"

namespace pico
{

namespace
{

void writeLine(const char *label, const std::string &msg);

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("PICOEVAL_LOG_LEVEL");
    if (env == nullptr || *env == '\0')
        return LogLevel::Info;
    std::string v(env);
    for (auto &c : v)
        c = static_cast<char>(std::tolower(c));
    if (v == "debug")
        return LogLevel::Debug;
    if (v == "info")
        return LogLevel::Info;
    if (v == "warn" || v == "warning")
        return LogLevel::Warn;
    if (v == "error")
        return LogLevel::Error;
    if (v == "silent" || v == "off" || v == "none")
        return LogLevel::Silent;
    // Misspelled levels must not silently hide warnings. Emitted
    // through the shared formatter, not the level filter: this runs
    // while the level flag itself is being initialized.
    writeLine("warn", "unknown PICOEVAL_LOG_LEVEL '" + v +
                          "', using 'info'");
    return LogLevel::Info;
}

std::atomic<int> &
levelFlag()
{
    static std::atomic<int> level{static_cast<int>(levelFromEnv())};
    return level;
}

void
writeLine(const char *label, const std::string &msg)
{
    // One formatted write per message: parallel walks report from
    // several threads, and piecewise inserts would interleave.
    uint64_t ns = support::monotonicNowNs();
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "[%9.3f] ",
                  static_cast<double>(ns) / 1e9);
    std::string line;
    line.reserve(msg.size() + 32);
    line.append(stamp).append(label).append(": ").append(msg).push_back(
        '\n');
    std::cerr << line << std::flush;
}

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelFlag().load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    levelFlag().store(static_cast<int>(level),
                      std::memory_order_relaxed);
}

namespace
{

std::atomic<FatalHook> fatalHook{nullptr};

} // namespace

void
setFatalHook(FatalHook hook)
{
    fatalHook.store(hook, std::memory_order_relaxed);
}

namespace detail
{

void
emitMessage(LogLevel level, const char *label, const std::string &msg)
{
    if (logLevel() > level)
        return;
    writeLine(label, msg);
}

void
notifyFatal(const char *label, const std::string &msg)
{
    FatalHook hook = fatalHook.load(std::memory_order_relaxed);
    if (hook == nullptr)
        return;
    // A hook that itself panics/fatals must not recurse forever.
    static thread_local bool inHook = false;
    if (inHook)
        return;
    inHook = true;
    try {
        hook(label, msg);
    } catch (...) {
        // The process is already dying; the original error wins.
    }
    inHook = false;
}

} // namespace detail
} // namespace pico
