#include "support/TraceEvents.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/Logging.hpp"

namespace pico::support
{

namespace detail
{

std::atomic<bool> traceOn{[] {
    const char *env = std::getenv("PICOEVAL_TRACE");
    return env != nullptr && *env != '\0' &&
           std::string(env) != "0";
}()};

} // namespace detail

void
setTraceEnabled(bool on)
{
    detail::traceOn.store(on, std::memory_order_relaxed);
}

namespace
{

/** Chrome expects microsecond timestamps; keep ns precision. */
void
writeMicros(std::ostream &os, uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    os << buf;
}

} // namespace

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

TraceRecorder::ThreadBuf &
TraceRecorder::localBuf()
{
    static thread_local ThreadBuf *tlsTraceBuf = nullptr;
    if (tlsTraceBuf == nullptr) {
        auto buf = std::make_unique<ThreadBuf>();
        tlsTraceBuf = buf.get();
        MutexLock lock(traceMutex_);
        buf->tid = static_cast<uint32_t>(bufs_.size());
        {
            // The buffer is not shared yet, but name is guarded by
            // buf->mutex; the nested acquisition is uncontended.
            MutexLock nameLock(buf->bufMutex);
            buf->name = "thread-" + std::to_string(buf->tid);
        }
        bufs_.push_back(std::move(buf));
    }
    return *tlsTraceBuf;
}

void
TraceRecorder::append(ThreadBuf &buf, Event event)
{
    MutexLock lock(buf.bufMutex);
    if (buf.events.size() >= maxEventsPerThread) {
        // Bounded buffers: a long-lived server must not grow without
        // limit. The drop is counted so dumps can say "incomplete".
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf.events.push_back(std::move(event));
}

void
TraceRecorder::nameThisThread(const std::string &name)
{
    auto &buf = localBuf();
    MutexLock lock(buf.bufMutex);
    buf.name = name;
    buf.named = true;
}

void
TraceRecorder::nameThisThreadDefault(const std::string &name)
{
    auto &buf = localBuf();
    MutexLock lock(buf.bufMutex);
    if (!buf.named)
        buf.name = name;
}

void
TraceRecorder::complete(const std::string &name, const char *category,
                        uint64_t start_ns, uint64_t duration_ns,
                        uint64_t request_id, uint64_t span_id,
                        uint64_t parent_span_id)
{
    if (!traceEnabled())
        return;
    append(localBuf(), Event{name, category, 'X', start_ns,
                             duration_ns, request_id, span_id,
                             parent_span_id, 0});
}

void
TraceRecorder::instant(const std::string &name, const char *category)
{
    if (!traceEnabled())
        return;
    const TraceContext &ctx = currentTraceContext();
    append(localBuf(), Event{name, category, 'i', monotonicNowNs(), 0,
                             ctx.requestId, 0, ctx.spanId, 0});
}

void
TraceRecorder::flowStart(const std::string &name, uint64_t flow_id)
{
    if (!traceEnabled())
        return;
    const TraceContext &ctx = currentTraceContext();
    append(localBuf(), Event{name, "flow", 's', monotonicNowNs(), 0,
                             ctx.requestId, 0, ctx.spanId, flow_id});
}

void
TraceRecorder::flowStep(const std::string &name, uint64_t flow_id)
{
    if (!traceEnabled())
        return;
    const TraceContext &ctx = currentTraceContext();
    append(localBuf(), Event{name, "flow", 't', monotonicNowNs(), 0,
                             ctx.requestId, 0, ctx.spanId, flow_id});
}

void
TraceRecorder::writeEvent(std::ostream &out, const Event &e,
                          uint32_t tid)
{
    out << "{\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
        << jsonEscape(e.category) << "\",\"ts\":";
    writeMicros(out, e.tsNs);
    if (e.phase == 'X') {
        out << ",\"dur\":";
        writeMicros(out, e.durNs);
    } else if (e.phase == 's' || e.phase == 't') {
        out << ",\"id\":" << e.flowId;
        if (e.phase == 't')
            out << ",\"bp\":\"e\"";
    } else {
        out << ",\"s\":\"t\"";
    }
    if (e.requestId != 0 || e.spanId != 0) {
        out << ",\"args\":{\"request\":" << e.requestId
            << ",\"span\":" << e.spanId << ",\"parent\":"
            << e.parentSpanId << "}";
    }
    out << "}";
}

bool
TraceRecorder::writeJson(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot write trace-event file '", path, "'");
        return false;
    }

    MutexLock lock(traceMutex_);
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&first, &out] {
        if (!first)
            out << ",";
        out << "\n";
        first = false;
    };
    for (const auto &buf : bufs_) {
        MutexLock bufLock(buf->bufMutex);
        sep();
        out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << buf->tid
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
            << jsonEscape(buf->name) << "\"}}";
        for (const auto &e : buf->events) {
            sep();
            writeEvent(out, e, buf->tid);
        }
    }
    out << "\n]}\n";
    out.flush();
    if (!out) {
        warn("writing trace-event file '", path, "' failed");
        return false;
    }
    return true;
}

std::vector<TraceRecorder::RequestEvent>
TraceRecorder::requestEvents(uint64_t request_id) const
{
    std::vector<RequestEvent> out;
    MutexLock lock(traceMutex_);
    for (const auto &buf : bufs_) {
        MutexLock bufLock(buf->bufMutex);
        for (const auto &e : buf->events) {
            if (e.requestId != request_id)
                continue;
            RequestEvent re;
            re.tid = buf->tid;
            re.name = e.name;
            re.phase = e.phase;
            re.tsNs = e.tsNs;
            re.durNs = e.durNs;
            re.spanId = e.spanId;
            re.parentSpanId = e.parentSpanId;
            out.push_back(std::move(re));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const RequestEvent &a, const RequestEvent &b) {
                  return a.tsNs < b.tsNs;
              });
    return out;
}

std::string
TraceRecorder::requestJson(uint64_t request_id) const
{
    std::ostringstream out;
    out << "{\"request\":" << request_id << ",\"traceEvents\":[";
    bool first = true;
    MutexLock lock(traceMutex_);
    for (const auto &buf : bufs_) {
        MutexLock bufLock(buf->bufMutex);
        for (const auto &e : buf->events) {
            if (e.requestId != request_id)
                continue;
            if (!first)
                out << ",";
            first = false;
            writeEvent(out, e, buf->tid);
        }
    }
    out << "]}";
    return out.str();
}

void
TraceRecorder::clear()
{
    MutexLock lock(traceMutex_);
    for (auto &buf : bufs_) {
        MutexLock bufLock(buf->bufMutex);
        buf->events.clear();
    }
    dropped_.store(0, std::memory_order_relaxed);
}

size_t
TraceRecorder::eventCount() const
{
    MutexLock lock(traceMutex_);
    size_t total = 0;
    for (const auto &buf : bufs_) {
        MutexLock bufLock(buf->bufMutex);
        total += buf->events.size();
    }
    return total;
}

// --- TimedSpan ---------------------------------------------------------

TimedSpan::TimedSpan(std::string name, const char *category,
                     std::string metric)
    : name_(std::move(name)), metric_(std::move(metric)),
      category_(category)
{
#if PICOEVAL_METRICS
    active_ = metricsEnabled() || traceEnabled();
    if (active_) {
        startNs_ = monotonicNowNs();
        if (traceEnabled()) {
            // Install this span as the thread's current span so
            // spans opened inside it record it as their parent.
            tracing_ = true;
            const TraceContext &ctx = currentTraceContext();
            requestId_ = ctx.requestId;
            parentSpanId_ = ctx.spanId;
            spanId_ = newSpanId();
            detail::setCurrentSpanId(spanId_);
        }
    }
#endif
}

TimedSpan::~TimedSpan()
{
#if PICOEVAL_METRICS
    if (tracing_)
        detail::setCurrentSpanId(parentSpanId_);
    if (!active_)
        return;
    uint64_t dur = monotonicNowNs() - startNs_;
    if (metricsEnabled()) {
        metrics()
            .histogram(metric_.empty() ? name_ + ".ns" : metric_)
            .observe(dur);
    }
    if (tracing_ && traceEnabled())
        TraceRecorder::instance().complete(name_, category_,
                                           startNs_, dur, requestId_,
                                           spanId_, parentSpanId_);
#endif
}

} // namespace pico::support
