#include "support/TraceEvents.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "support/Logging.hpp"

namespace pico::support
{

namespace detail
{

std::atomic<bool> traceOn{[] {
    const char *env = std::getenv("PICOEVAL_TRACE");
    return env != nullptr && *env != '\0' &&
           std::string(env) != "0";
}()};

} // namespace detail

void
setTraceEnabled(bool on)
{
    detail::traceOn.store(on, std::memory_order_relaxed);
}

namespace
{

/** Chrome expects microsecond timestamps; keep ns precision. */
void
writeMicros(std::ostream &os, uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    os << buf;
}

} // namespace

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

TraceRecorder::ThreadBuf &
TraceRecorder::localBuf()
{
    static thread_local ThreadBuf *tlsTraceBuf = nullptr;
    if (tlsTraceBuf == nullptr) {
        auto buf = std::make_unique<ThreadBuf>();
        tlsTraceBuf = buf.get();
        MutexLock lock(mutex_);
        buf->tid = static_cast<uint32_t>(bufs_.size());
        {
            // The buffer is not shared yet, but name is guarded by
            // buf->mutex; the nested acquisition is uncontended.
            MutexLock nameLock(buf->mutex);
            buf->name = "thread-" + std::to_string(buf->tid);
        }
        bufs_.push_back(std::move(buf));
    }
    return *tlsTraceBuf;
}

void
TraceRecorder::nameThisThread(const std::string &name)
{
    auto &buf = localBuf();
    MutexLock lock(buf.mutex);
    buf.name = name;
}

void
TraceRecorder::complete(const std::string &name, const char *category,
                        uint64_t start_ns, uint64_t duration_ns)
{
    if (!traceEnabled())
        return;
    auto &buf = localBuf();
    MutexLock lock(buf.mutex);
    buf.events.push_back(
        Event{name, category, 'X', start_ns, duration_ns});
}

void
TraceRecorder::instant(const std::string &name, const char *category)
{
    if (!traceEnabled())
        return;
    auto &buf = localBuf();
    MutexLock lock(buf.mutex);
    buf.events.push_back(
        Event{name, category, 'i', monotonicNowNs(), 0});
}

bool
TraceRecorder::writeJson(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot write trace-event file '", path, "'");
        return false;
    }

    MutexLock lock(mutex_);
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&first, &out] {
        if (!first)
            out << ",";
        out << "\n";
        first = false;
    };
    for (const auto &buf : bufs_) {
        MutexLock bufLock(buf->mutex);
        sep();
        out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << buf->tid
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
            << jsonEscape(buf->name) << "\"}}";
        for (const auto &e : buf->events) {
            sep();
            out << "{\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":"
                << buf->tid << ",\"name\":\"" << jsonEscape(e.name)
                << "\",\"cat\":\"" << jsonEscape(e.category)
                << "\",\"ts\":";
            writeMicros(out, e.tsNs);
            if (e.phase == 'X') {
                out << ",\"dur\":";
                writeMicros(out, e.durNs);
            } else {
                out << ",\"s\":\"t\"";
            }
            out << "}";
        }
    }
    out << "\n]}\n";
    out.flush();
    if (!out) {
        warn("writing trace-event file '", path, "' failed");
        return false;
    }
    return true;
}

void
TraceRecorder::clear()
{
    MutexLock lock(mutex_);
    for (auto &buf : bufs_) {
        MutexLock bufLock(buf->mutex);
        buf->events.clear();
    }
}

size_t
TraceRecorder::eventCount() const
{
    MutexLock lock(mutex_);
    size_t total = 0;
    for (const auto &buf : bufs_) {
        MutexLock bufLock(buf->mutex);
        total += buf->events.size();
    }
    return total;
}

// --- TimedSpan ---------------------------------------------------------

TimedSpan::TimedSpan(std::string name, const char *category,
                     std::string metric)
    : name_(std::move(name)), metric_(std::move(metric)),
      category_(category)
{
#if PICOEVAL_METRICS
    active_ = metricsEnabled() || traceEnabled();
    if (active_)
        startNs_ = monotonicNowNs();
#endif
}

TimedSpan::~TimedSpan()
{
#if PICOEVAL_METRICS
    if (!active_)
        return;
    uint64_t dur = monotonicNowNs() - startNs_;
    if (metricsEnabled()) {
        metrics()
            .histogram(metric_.empty() ? name_ + ".ns" : metric_)
            .observe(dur);
    }
    if (traceEnabled())
        TraceRecorder::instance().complete(name_, category_,
                                           startNs_, dur);
#endif
}

} // namespace pico::support
