/**
 * @file
 * Thread-safe metrics registry: counters, gauges, and log2-bucketed
 * histograms for the exploration pipeline.
 *
 * The paper's claim is *efficiency*, so the library must be able to
 * measure itself without distorting what it measures. The registry is
 * built around three rules:
 *
 *  - *Lock-free hot paths.* Counter and histogram updates land in a
 *    per-thread shard (a fixed array of relaxed atomics, allocated
 *    once per thread); no mutex, no contended cache line. Shards are
 *    merged only when a snapshot is taken.
 *
 *  - *Zero cost when disabled.* Compiling with
 *    -DPICOEVAL_DISABLE_METRICS turns every update into a no-op; at
 *    runtime the default is off and a single relaxed atomic load
 *    guards each update (enable with setMetricsEnabled(true) or
 *    PICOEVAL_METRICS=1 in the environment).
 *
 *  - *Outside the result path.* Metrics observe the pipeline, never
 *    feed it: enabling or disabling instrumentation cannot change a
 *    Pareto set, a failure ordering, or a cache-database byte
 *    (enforced by tests/parallel_determinism_test.cpp).
 *
 * Snapshots are deterministic *documents*: names are sorted and the
 * JSON bytes are a pure function of the metric values, so two
 * snapshots of equal state are byte-identical.
 */

#ifndef PICO_SUPPORT_METRICS_HPP
#define PICO_SUPPORT_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/ThreadAnnotations.hpp"

/** Compile-time kill switch: define PICOEVAL_DISABLE_METRICS to
 *  compile every metric update out of the hot paths entirely. */
#if defined(PICOEVAL_DISABLE_METRICS)
#define PICOEVAL_METRICS 0
#else
#define PICOEVAL_METRICS 1
#endif

namespace pico::support
{

namespace detail
{
/** Runtime master switch (relaxed loads on the hot path). */
extern std::atomic<bool> metricsOn;
} // namespace detail

/** True when metric updates are recorded (runtime switch). */
inline bool
metricsEnabled()
{
#if PICOEVAL_METRICS
    return detail::metricsOn.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/** Flip the runtime switch (overrides PICOEVAL_METRICS env). */
void setMetricsEnabled(bool on);

/**
 * Nanoseconds since the process-wide monotonic epoch (the first call
 * in the process). Shared by metric timers, trace-event timestamps
 * and log lines so all three tell the same clock.
 */
uint64_t monotonicNowNs();

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &s);

/** Monotonically increasing event count (sharded per thread). */
class Counter
{
  public:
    /** Add n to the counter (lock-free; no-op while disabled). */
    void add(uint64_t n = 1);

    /** Convenience: add(1). */
    void increment() { add(1); }

  private:
    friend class MetricsRegistry;
    explicit Counter(size_t slot) : slot_(slot) {}
    const size_t slot_;
};

/** Last-written value (a single global atomic; low-frequency). */
class Gauge
{
  public:
    void set(double v);
    double value() const;

  private:
    friend class MetricsRegistry;
    Gauge() = default;
    std::atomic<double> value_{0.0};
};

/**
 * Fixed log2-bucketed histogram. A value v lands in bucket
 * bit_width(v): bucket 0 holds zeros, bucket k >= 1 holds values in
 * [2^(k-1), 2^k), and the last bucket absorbs everything larger.
 * Count and sum are tracked exactly, so means are not quantized.
 */
class Histogram
{
  public:
    /** Buckets per histogram (indices 0..bucketCount-1). */
    static constexpr size_t bucketCount = 64;

    /** Record one value (lock-free; no-op while disabled). */
    void observe(uint64_t value);

    /** Bucket index a value lands in. */
    static size_t bucketOf(uint64_t value);

  private:
    friend class MetricsRegistry;
    explicit Histogram(size_t slot) : slot_(slot) {}
    /** Slot layout: [count, sum, buckets[0..bucketCount-1]]. */
    static constexpr size_t slotWords = 2 + bucketCount;
    const size_t slot_;
};

/** Merged value of one histogram at snapshot time. */
struct HistogramValue
{
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, Histogram::bucketCount> buckets{};

    double
    mean() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }
};

/**
 * Point-in-time merge of every registered metric. std::map keys give
 * sorted, stable iteration; writeJson() is byte-deterministic for
 * equal values.
 */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramValue> histograms;

    /** Deterministic JSON object: {"counters":{...},...}. */
    void writeJson(std::ostream &os) const;
    std::string toJson() const;
};

/**
 * Process-global registry. Handles returned by counter()/gauge()/
 * histogram() are stable for the life of the process; registering the
 * same name twice returns the same handle. Updates through handles
 * are lock-free; registration and snapshotting take a mutex.
 */
class MetricsRegistry
{
  public:
    /** Per-thread slot capacity; registration fails beyond this. */
    static constexpr size_t slotCapacity = 8192;

    static MetricsRegistry &instance();

    Counter &counter(const std::string &name)
        PICO_REQUIRES(!registryMutex_);
    Gauge &gauge(const std::string &name)
        PICO_REQUIRES(!registryMutex_);
    Histogram &histogram(const std::string &name)
        PICO_REQUIRES(!registryMutex_);

    /** Merge all thread shards into one deterministic snapshot. */
    MetricsSnapshot snapshot() const
        PICO_REQUIRES(!registryMutex_);

    /**
     * Zero every counter/histogram/gauge value (registrations and
     * handles stay valid). For tests and repeated measurement runs.
     */
    void resetValues() PICO_REQUIRES(!registryMutex_);

  private:
    friend class Counter;
    friend class Histogram;

    MetricsRegistry() = default;

    /** One thread's accumulation array (relaxed atomics only). */
    struct Shard
    {
        std::array<std::atomic<uint64_t>, slotCapacity> slots{};
    };

    /** The calling thread's shard, registered on first use. */
    Shard &localShard() PICO_REQUIRES(!registryMutex_);

    size_t allocateSlots(size_t words, const std::string &name)
        PICO_REQUIRES(registryMutex_);

    mutable Mutex registryMutex_{"metrics.registry", rank::kMetricsRegistry};
    std::map<std::string, std::unique_ptr<Counter>> counters_
        PICO_GUARDED_BY(registryMutex_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_
        PICO_GUARDED_BY(registryMutex_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_
        PICO_GUARDED_BY(registryMutex_);
    size_t nextSlot_ PICO_GUARDED_BY(registryMutex_) = 0;
    /** Owned for the life of the process; threads may die, their
     *  totals persist. Registration is guarded; updates go through
     *  each shard's relaxed atomics, lock-free. */
    mutable std::vector<std::unique_ptr<Shard>> shards_
        PICO_GUARDED_BY(registryMutex_);
};

/** Shorthand for MetricsRegistry::instance(). */
inline MetricsRegistry &
metrics()
{
    return MetricsRegistry::instance();
}

/**
 * RAII wall-clock timer: observes the elapsed nanoseconds into the
 * named histogram on destruction. Costs two clock reads when metrics
 * are enabled and nothing (beyond the enabled check) when not.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &hist)
        : hist_(&hist),
          startNs_(metricsEnabled() ? monotonicNowNs() : 0)
    {}

    ~ScopedTimer()
    {
        if (startNs_ != 0 && metricsEnabled())
            hist_->observe(monotonicNowNs() - startNs_);
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram *hist_;
    uint64_t startNs_;
};

} // namespace pico::support

/**
 * Call-site macros: compile to nothing under
 * -DPICOEVAL_DISABLE_METRICS. The handle lookup is a function-local
 * static, so each site pays the registry mutex exactly once — which
 * means `name` MUST be a constant at each call site. For dynamic
 * names, call metrics().counter(name).add(n) directly.
 */
#if PICOEVAL_METRICS
#define PICO_METRIC_COUNT(name, n)                                    \
    do {                                                              \
        if (::pico::support::metricsEnabled()) {                      \
            static auto &pico_metric_ctr_ =                           \
                ::pico::support::metrics().counter(name);             \
            pico_metric_ctr_.add(n);                                  \
        }                                                             \
    } while (0)
#define PICO_METRIC_OBSERVE(name, v)                                  \
    do {                                                              \
        if (::pico::support::metricsEnabled()) {                      \
            static auto &pico_metric_hist_ =                          \
                ::pico::support::metrics().histogram(name);           \
            pico_metric_hist_.observe(v);                             \
        }                                                             \
    } while (0)
#else
#define PICO_METRIC_COUNT(name, n) ((void)0)
#define PICO_METRIC_OBSERVE(name, v) ((void)0)
#endif

#endif // PICO_SUPPORT_METRICS_HPP
