/**
 * @file
 * Streaming statistics accumulators and histograms.
 */

#ifndef PICO_SUPPORT_STATS_HPP
#define PICO_SUPPORT_STATS_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/Logging.hpp"

namespace pico
{

/**
 * Single-pass accumulator for count / mean / variance / extrema
 * (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Weighted empirical distribution supporting the cumulative
 * fraction-below queries used by the dilation-distribution figures.
 */
class WeightedDistribution
{
  public:
    /** Add one sample with the given (non-negative) weight. */
    void
    add(double value, double weight = 1.0)
    {
        panicIf(weight < 0.0, "negative weight");
        samples_.push_back({value, weight});
        totalWeight_ += weight;
        sorted_ = false;
    }

    /** Weighted fraction of samples with value <= threshold. */
    double
    fractionAtOrBelow(double threshold) const
    {
        if (totalWeight_ == 0.0)
            return 0.0;
        sortIfNeeded();
        double acc = 0.0;
        for (const auto &s : samples_) {
            if (s.value > threshold)
                break;
            acc += s.weight;
        }
        return acc / totalWeight_;
    }

    /** Smallest value v such that fractionAtOrBelow(v) >= q. */
    double
    quantile(double q) const
    {
        fatalIf(q < 0.0 || q > 1.0, "quantile out of [0,1]");
        fatalIf(totalWeight_ == 0.0, "quantile of empty distribution");
        sortIfNeeded();
        double target = q * totalWeight_;
        double acc = 0.0;
        for (const auto &s : samples_) {
            acc += s.weight;
            if (acc >= target)
                return s.value;
        }
        return samples_.back().value;
    }

    /** Weighted mean of the samples. */
    double
    mean() const
    {
        if (totalWeight_ == 0.0)
            return 0.0;
        double acc = 0.0;
        for (const auto &s : samples_)
            acc += s.value * s.weight;
        return acc / totalWeight_;
    }

    uint64_t count() const { return samples_.size(); }
    double totalWeight() const { return totalWeight_; }

  private:
    struct Sample
    {
        double value;
        double weight;
    };

    void
    sortIfNeeded() const
    {
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end(),
                      [](const Sample &a, const Sample &b) {
                          return a.value < b.value;
                      });
            sorted_ = true;
        }
    }

    mutable std::vector<Sample> samples_;
    mutable bool sorted_ = true;
    double totalWeight_ = 0.0;
};

/** Fixed-bin histogram over [lo, hi) with overflow/underflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned bins)
        : lo_(lo), hi_(hi), counts_(bins + 2, 0)
    {
        fatalIf(bins == 0, "histogram needs at least one bin");
        fatalIf(hi <= lo, "histogram range empty");
    }

    /** Add one sample. */
    void
    add(double x)
    {
        ++total_;
        if (x < lo_) {
            ++counts_.front();
        } else if (x >= hi_) {
            ++counts_.back();
        } else {
            double frac = (x - lo_) / (hi_ - lo_);
            auto bin = static_cast<size_t>(
                frac * static_cast<double>(counts_.size() - 2));
            ++counts_[bin + 1];
        }
    }

    uint64_t total() const { return total_; }
    uint64_t underflow() const { return counts_.front(); }
    uint64_t overflow() const { return counts_.back(); }
    size_t bins() const { return counts_.size() - 2; }
    uint64_t binCount(size_t i) const { return counts_.at(i + 1); }

    /** Left edge of bin i. */
    double
    binLeft(size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i) /
               static_cast<double>(bins());
    }

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace pico

#endif // PICO_SUPPORT_STATS_HPP
