#include "support/ThreadPool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "support/Logging.hpp"
#include "support/SchedulePerturb.hpp"
#include "support/TraceContext.hpp"
#include "support/TraceEvents.hpp"

namespace pico::support
{

ThreadPool::ThreadPool(unsigned workers)
{
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        threads_.emplace_back([this, i] {
            // Workers appear as their own named tracks in exported
            // chrome traces, so per-design spans land on the thread
            // that actually ran them.
            TraceRecorder::instance().nameThisThread(
                "pool-worker-" + std::to_string(i));
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(poolMutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    panicIf(threads_.empty(),
            "task submitted to a zero-worker thread pool");
    // Capture the submitter's TraceContext so work executed on a
    // worker stays attributed to the request that scheduled it.
    TraceContext ctx = currentTraceContext();
    std::function<void()> wrapped =
        [ctx, inner = std::move(task)] {
            TraceContextScope scope(ctx);
            inner();
        };
    {
        MutexLock lock(poolMutex_);
        panicIf(stop_, "task submitted to a stopping thread pool");
        queue_.push_back(std::move(wrapped));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(poolMutex_);
            // Manual wait loop instead of a predicate lambda: the
            // thread-safety analysis cannot see that a lambda body
            // runs under the caller's lock.
            while (!stop_ && queue_.empty())
                cv_.wait(lock.native());
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        PICO_METRIC_COUNT("threadpool.tasks", 1);
        // Dispatch decision point: a task dequeued but not yet run.
        perturbPoint("threadpool.dispatch");
        task();
    }
}

unsigned
ThreadPool::resolveJobs(unsigned jobs)
{
    if (jobs != 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

namespace
{

/** Shared state of one parallelFor: claim counter, completion
 *  counter, and the smallest-index exception. */
struct LoopState
{
    LoopState(size_t n, std::function<void(size_t)> fn)
        : total(n), body(std::move(fn))
    {}

    const size_t total;
    /** Owned copy: helper tasks may outlive the caller's frame. */
    const std::function<void(size_t)> body;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};

    Mutex loopMutex{"threadpool.loopstate", rank::kPoolLoop};
    std::condition_variable cv;
    std::exception_ptr error PICO_GUARDED_BY(loopMutex);
    size_t errorIndex PICO_GUARDED_BY(loopMutex) = SIZE_MAX;

    /** Claim and run indices until the counter is exhausted. */
    void
    drain()
    {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= total)
                return;
            // Claim/run boundary: reorders which thread gets which
            // index without changing the merge result.
            perturbPoint("threadpool.parallelfor");
            try {
                body(i);
            } catch (...) {
                MutexLock lock(loopMutex);
                if (i < errorIndex) {
                    errorIndex = i;
                    error = std::current_exception();
                }
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                total) {
                MutexLock lock(loopMutex);
                cv.notify_all();
            }
        }
    }
};

} // namespace

void
parallelFor(size_t n, ThreadPool *pool,
            const std::function<void(size_t)> &body)
{
    if (n == 0)
        return;
    if (!pool || pool->workers() == 0 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // The state is shared so a helper task that wakes after the
    // caller has already returned still finds a live counter (it
    // sees it exhausted and exits immediately).
    auto state = std::make_shared<LoopState>(n, body);
    size_t helpers =
        std::min<size_t>(pool->workers(), n - 1);
    for (size_t h = 0; h < helpers; ++h)
        pool->submit([state] { state->drain(); });

    // Caller participation: guarantees forward progress even when
    // every worker is busy with an outer loop, which is what makes
    // nested parallelFor calls deadlock-free.
    state->drain();

    MutexLock lock(state->loopMutex);
    while (state->done.load(std::memory_order_acquire) !=
           state->total)
        state->cv.wait(lock.native());
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace pico::support
