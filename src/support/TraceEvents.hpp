/**
 * @file
 * Chrome trace-event (chrome://tracing / Perfetto) span recorder.
 *
 * Records complete ("ph":"X") spans and instant events into
 * per-thread buffers and serializes them as the Trace Event Format
 * JSON that chrome://tracing, Perfetto and speedscope all load. One
 * span = one named interval on the recording thread's track, so a
 * parallel walk renders as stacked per-design spans across the
 * ThreadPool's worker tracks — the thread-utilization picture the
 * human tables never showed.
 *
 * Rules mirror the metrics registry (support/Metrics.hpp):
 *
 *  - appends touch only the calling thread's buffer (one uncontended
 *    mutex acquisition), so recording does not serialize the walk;
 *  - disabled (the default) costs one relaxed atomic load per site;
 *    -DPICOEVAL_DISABLE_METRICS compiles TimedSpan bodies out;
 *  - recording never feeds results back into the pipeline, so spans
 *    cannot perturb the bit-identical determinism contract.
 *
 * Timestamps come from support::monotonicNowNs(), the same epoch the
 * metrics timers and log lines use.
 */

#ifndef PICO_SUPPORT_TRACE_EVENTS_HPP
#define PICO_SUPPORT_TRACE_EVENTS_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/Metrics.hpp"
#include "support/ThreadAnnotations.hpp"

namespace pico::support
{

namespace detail
{
/** Runtime master switch for span recording. */
extern std::atomic<bool> traceOn;
} // namespace detail

/** True when spans are recorded (runtime switch). */
inline bool
traceEnabled()
{
#if PICOEVAL_METRICS
    return detail::traceOn.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/** Flip the runtime switch (overrides PICOEVAL_TRACE env). */
void setTraceEnabled(bool on);

/** Process-global recorder of trace events. */
class TraceRecorder
{
  public:
    static TraceRecorder &instance();

    /**
     * Name the calling thread's track in the exported trace (e.g.
     * "pool-worker-3"). Safe to call whether or not recording is
     * enabled; the last name set wins.
     */
    void nameThisThread(const std::string &name);

    /** Record one complete span on the calling thread's track. */
    void complete(const std::string &name, const char *category,
                  uint64_t start_ns, uint64_t duration_ns);

    /** Record an instant event on the calling thread's track. */
    void instant(const std::string &name, const char *category);

    /**
     * Serialize every buffered event as Trace Event Format JSON.
     * @return false (after a warn()) when the file cannot be written
     */
    bool writeJson(const std::string &path) const;

    /** Drop all buffered events (thread tracks are kept). */
    void clear();

    /** Buffered events across all threads. */
    size_t eventCount() const;

  private:
    TraceRecorder() = default;

    struct Event
    {
        std::string name;
        const char *category;
        char phase; // 'X' complete, 'i' instant
        uint64_t tsNs;
        uint64_t durNs;
    };

    /** One thread's event buffer and track identity. */
    struct ThreadBuf
    {
        uint32_t tid = 0;
        /** Guards events/name: appends come from the owning thread,
         *  reads from writeJson()/clear() on any thread. */
        mutable Mutex mutex;
        std::string name PICO_GUARDED_BY(mutex);
        std::vector<Event> events PICO_GUARDED_BY(mutex);
    };

    ThreadBuf &localBuf();

    /** Guards bufs_ registration. */
    mutable Mutex mutex_;
    mutable std::vector<std::unique_ptr<ThreadBuf>> bufs_
        PICO_GUARDED_BY(mutex_);
};

/**
 * RAII scoped span + phase timer: one object at the top of a scope
 * records a chrome-trace span named `name` (when tracing is on) and
 * observes the elapsed nanoseconds into histogram `metric` — by
 * default "<name>.ns" — (when metrics are on). The two switches are
 * independent; with both off the constructor is two relaxed loads.
 */
class TimedSpan
{
  public:
    explicit TimedSpan(std::string name, const char *category = "walk",
                       std::string metric = "");
    ~TimedSpan();

    TimedSpan(const TimedSpan &) = delete;
    TimedSpan &operator=(const TimedSpan &) = delete;

  private:
    std::string name_;
    std::string metric_;
    const char *category_;
    uint64_t startNs_ = 0;
    bool active_ = false;
};

} // namespace pico::support

#endif // PICO_SUPPORT_TRACE_EVENTS_HPP
