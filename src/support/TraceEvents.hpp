/**
 * @file
 * Chrome trace-event (chrome://tracing / Perfetto) span recorder.
 *
 * Records complete ("ph":"X") spans, instant events and flow events
 * into per-thread buffers and serializes them as the Trace Event
 * Format JSON that chrome://tracing, Perfetto and speedscope all
 * load. One span = one named interval on the recording thread's
 * track, so a parallel walk renders as stacked per-design spans
 * across the ThreadPool's worker tracks — the thread-utilization
 * picture the human tables never showed.
 *
 * Events are additionally stamped with the thread's TraceContext
 * (support/TraceContext.hpp): every span carries the request id it
 * was emitted for plus its own span id and its parent's, and flow
 * events ("ph":"s"/"t", id = request id) connect a request's spans
 * across threads — one server request renders as a single connected
 * tree even though its admit span and its execution spans live on
 * different tracks. requestEvents()/requestJson() drain the recorder
 * for one request id (the server's dump-trace verb).
 *
 * Rules mirror the metrics registry (support/Metrics.hpp):
 *
 *  - appends touch only the calling thread's buffer (one uncontended
 *    mutex acquisition), so recording does not serialize the walk;
 *  - disabled (the default) costs one relaxed atomic load per site;
 *    -DPICOEVAL_DISABLE_METRICS compiles TimedSpan bodies out;
 *  - each thread's buffer is bounded (maxEventsPerThread); a
 *    long-lived server cannot grow without bound — overflow events
 *    are counted, not stored;
 *  - recording never feeds results back into the pipeline, so spans
 *    cannot perturb the bit-identical determinism contract.
 *
 * Timestamps come from support::monotonicNowNs(), the same epoch the
 * metrics timers and log lines use.
 */

#ifndef PICO_SUPPORT_TRACE_EVENTS_HPP
#define PICO_SUPPORT_TRACE_EVENTS_HPP

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "support/Metrics.hpp"
#include "support/ThreadAnnotations.hpp"
#include "support/TraceContext.hpp"

namespace pico::support
{

namespace detail
{
/** Runtime master switch for span recording. */
extern std::atomic<bool> traceOn;
} // namespace detail

/** True when spans are recorded (runtime switch). */
inline bool
traceEnabled()
{
#if PICOEVAL_METRICS
    return detail::traceOn.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/** Flip the runtime switch (overrides PICOEVAL_TRACE env). */
void setTraceEnabled(bool on);

/** Process-global recorder of trace events. */
class TraceRecorder
{
  public:
    /** Per-thread buffer bound (overflow counted, not stored). */
    static constexpr size_t maxEventsPerThread = 1u << 16;

    static TraceRecorder &instance();

    /**
     * Name the calling thread's track in the exported trace (e.g.
     * "pool-worker-3"). Safe to call whether or not recording is
     * enabled; the last name set wins.
     */
    void nameThisThread(const std::string &name)
        PICO_REQUIRES(!traceMutex_);

    /**
     * Like nameThisThread(), but only if the thread has never been
     * explicitly named. For code that runs on borrowed threads — a
     * walk executing on a server worker must not rename the worker's
     * track out from under it.
     */
    void nameThisThreadDefault(const std::string &name)
        PICO_REQUIRES(!traceMutex_);

    /**
     * Record one complete span on the calling thread's track,
     * attributed to the given request/span identities (0 = none).
     */
    void complete(const std::string &name, const char *category,
                  uint64_t start_ns, uint64_t duration_ns,
                  uint64_t request_id = 0, uint64_t span_id = 0,
                  uint64_t parent_span_id = 0);

    /** Record an instant event (stamped with the current context). */
    void instant(const std::string &name, const char *category);

    /**
     * Open a flow on the calling thread ("ph":"s"). Emit inside the
     * span that hands work off; flowStep() on the receiving thread
     * connects the two tracks under the same flow id (the request
     * id, by convention).
     */
    void flowStart(const std::string &name, uint64_t flow_id);

    /** Continue a flow on the calling thread ("ph":"t"). */
    void flowStep(const std::string &name, uint64_t flow_id);

    /**
     * Serialize every buffered event as Trace Event Format JSON.
     * @return false (after a warn()) when the file cannot be written
     */
    bool writeJson(const std::string &path) const
        PICO_REQUIRES(!traceMutex_);

    /** One request's events across all threads (span-id decorated). */
    struct RequestEvent
    {
        uint32_t tid = 0;
        std::string name;
        char phase = 'X';
        uint64_t tsNs = 0;
        uint64_t durNs = 0;
        uint64_t spanId = 0;
        uint64_t parentSpanId = 0;
    };

    /** Every buffered event of one request, in timestamp order. */
    std::vector<RequestEvent> requestEvents(uint64_t request_id)
        const PICO_REQUIRES(!traceMutex_);

    /**
     * One request's events as a single-line Trace Event Format JSON
     * document (the payload of the server's dump-trace verb).
     */
    std::string requestJson(uint64_t request_id) const
        PICO_REQUIRES(!traceMutex_);

    /** Drop all buffered events (thread tracks are kept). */
    void clear() PICO_REQUIRES(!traceMutex_);

    /** Buffered events across all threads. */
    size_t eventCount() const PICO_REQUIRES(!traceMutex_);

    /** Events dropped because a thread's buffer was full. */
    uint64_t droppedCount() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    TraceRecorder() = default;

    struct Event
    {
        std::string name;
        const char *category;
        char phase; // 'X' complete, 'i' instant, 's'/'t' flow
        uint64_t tsNs;
        uint64_t durNs;
        uint64_t requestId;
        uint64_t spanId;
        uint64_t parentSpanId;
        uint64_t flowId;
    };

    /** One thread's event buffer and track identity. */
    struct ThreadBuf
    {
        uint32_t tid = 0;
        /** Guards events/name: appends come from the owning thread,
         *  reads from writeJson()/clear() on any thread. Ranked
         *  below the registry mutex: serializers hold traceMutex_ while
         *  visiting each buffer. */
        mutable Mutex bufMutex{"traceevents.buf", rank::kTraceBuf};
        std::string name PICO_GUARDED_BY(bufMutex);
        /** True once nameThisThread() set an explicit name. */
        bool named PICO_GUARDED_BY(bufMutex) = false;
        std::vector<Event> events PICO_GUARDED_BY(bufMutex);
    };

    ThreadBuf &localBuf() PICO_REQUIRES(!traceMutex_);
    void append(ThreadBuf &buf, Event event);
    static void writeEvent(std::ostream &out, const Event &e,
                           uint32_t tid);

    /** Guards bufs_ registration. */
    mutable Mutex traceMutex_{"traceevents.registry",
                         rank::kTraceRegistry};
    mutable std::vector<std::unique_ptr<ThreadBuf>> bufs_
        PICO_GUARDED_BY(traceMutex_);
    std::atomic<uint64_t> dropped_{0};
};

/**
 * RAII scoped span + phase timer: one object at the top of a scope
 * records a chrome-trace span named `name` (when tracing is on) and
 * observes the elapsed nanoseconds into histogram `metric` — by
 * default "<name>.ns" — (when metrics are on). The two switches are
 * independent; with both off the constructor is two relaxed loads.
 *
 * When tracing is on, the span allocates a span id and installs
 * itself as the thread's current span for its lifetime, so spans
 * opened inside it record it as their parent — the in-thread half of
 * the request-tree reconstruction (TraceContext carries the
 * cross-thread half).
 */
class TimedSpan
{
  public:
    explicit TimedSpan(std::string name, const char *category = "walk",
                       std::string metric = "");
    ~TimedSpan();

    TimedSpan(const TimedSpan &) = delete;
    TimedSpan &operator=(const TimedSpan &) = delete;

    /** This span's id (0 when tracing was off at construction). */
    uint64_t spanId() const { return spanId_; }

  private:
    std::string name_;
    std::string metric_;
    const char *category_;
    uint64_t startNs_ = 0;
    uint64_t requestId_ = 0;
    uint64_t spanId_ = 0;
    uint64_t parentSpanId_ = 0;
    bool active_ = false;
    bool tracing_ = false;
};

/**
 * Request-attributed span for the serving layer: installs the
 * request's TraceContext for the scope and opens a span under it, so
 * every span and metric emitted below is attributable to the
 * request. The repo lint bans raw TimedSpan in src/server precisely
 * so that server spans cannot lose their request identity; this is
 * the sanctioned spelling.
 */
class RequestSpan
{
  public:
    RequestSpan(const TraceContext &ctx, std::string name,
                const char *category = "server")
        : requestId_(ctx.requestId), scope_(ctx),
          span_(std::move(name), category)
    {}

    /**
     * Context for another thread continuing this request: the same
     * request id, parented under this span. Valid on any thread.
     */
    TraceContext context() const
    {
        return TraceContext{requestId_, span_.spanId()};
    }

    RequestSpan(const RequestSpan &) = delete;
    RequestSpan &operator=(const RequestSpan &) = delete;

  private:
    uint64_t requestId_;
    TraceContextScope scope_;
    TimedSpan span_;
};

} // namespace pico::support

#endif // PICO_SUPPORT_TRACE_EVENTS_HPP
