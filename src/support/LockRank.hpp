/**
 * @file
 * Lock-rank hierarchy and the Debug-build runtime rank checker.
 *
 * Every Mutex in src/support, src/dse and src/server carries a
 * compile-time name and an integer rank from the table below
 * (DESIGN.md §15 documents the hierarchy). The discipline: a thread
 * may only acquire a mutex whose rank is strictly greater than every
 * rank it already holds. Smaller rank = outer lock. Because ranks
 * form a total order, any schedule that obeys the discipline is
 * deadlock-free by construction, and `tools/picoeval-lockcheck.py`
 * proves the source obeys it statically.
 *
 * In Debug builds (PICOEVAL_LOCK_RANK_CHECK) MutexLock additionally
 * maintains a thread-local stack of held (name, rank) pairs and
 * fatal()s — naming both locks — the moment any thread acquires out
 * of order, so a rank inversion the static pass cannot see (e.g. one
 * reachable only through a function pointer) still dies loudly in
 * tests instead of deadlocking rarely in production. The fatal()
 * routes through the normal fatal hook, so a server dumps its flight
 * recorder before the process dies.
 *
 * The checker compiles out of Release entirely (bench/
 * bench_observability_overhead.cpp measures 0% overhead); in Debug
 * it can also be muted at runtime with setLockRankCheckEnabled(false)
 * for A/B overhead measurement.
 *
 * Gaps between rank values are deliberate: a new mutex slots between
 * its outer and inner neighbours without renumbering the world. See
 * DESIGN.md §15 for the "adding a new mutex" recipe.
 */

#ifndef PICO_SUPPORT_LOCK_RANK_HPP
#define PICO_SUPPORT_LOCK_RANK_HPP

#include <cstddef>

/** 1 when the runtime rank checker is compiled in (Debug builds). */
#if !defined(NDEBUG) && !defined(PICOEVAL_DISABLE_LOCK_RANK)
#define PICOEVAL_LOCK_RANK_CHECK 1
#else
#define PICOEVAL_LOCK_RANK_CHECK 0
#endif

namespace pico::support
{

/**
 * The global lock-rank table, outermost (smallest) first. The format
 * of each line is parsed by tools/picoeval-lockcheck.py — keep the
 * `constexpr int kName = N;` shape.
 *
 * Outer tier (coordination): drain/server bookkeeping that calls
 * into everything below. Middle tier (service state, queues, cache).
 * Inner tier (leaf instrumentation): metrics/trace/fault singletons
 * that may be touched from under any other lock and must therefore
 * never acquire anything themselves.
 */
namespace rank
{
/** Default for Mutex{} — invisible to the checker; lockcheck flags
 *  unranked declarations inside the covered directories. */
constexpr int kUnranked = 0;

// --- outer: coordination ----------------------------------------------
constexpr int kEvalServiceDrain = 100;
constexpr int kServerConn = 110;
constexpr int kCacheFlush = 200;

// --- middle: service state --------------------------------------------
constexpr int kEvalServicePrograms = 300;
constexpr int kEvalServiceMemo = 310;
constexpr int kEvalServiceLive = 320;
constexpr int kEvalServiceFailures = 330;
constexpr int kEvalServiceExit = 340;
constexpr int kVerbLatency = 350;

// --- middle: queues and pool ------------------------------------------
constexpr int kBoundedQueue = 400;
constexpr int kPoolQueue = 410;
constexpr int kPoolLoop = 420;

// --- middle: cache internals ------------------------------------------
constexpr int kCacheShard = 500;
constexpr int kCacheInflight = 510;

// --- middle: per-request completion -----------------------------------
constexpr int kServiceTask = 600;

// --- inner: leaf instrumentation singletons ---------------------------
constexpr int kMetricsRegistry = 700;
constexpr int kTraceRegistry = 710;
constexpr int kTraceBuf = 720;
constexpr int kFaultInjector = 800;
} // namespace rank

namespace lockrank
{

/**
 * Debug-build runtime toggle (default on). Compiled-out builds
 * ignore it; bench_observability_overhead flips it for A/B overhead
 * measurement.
 */
void setLockRankCheckEnabled(bool on);

/** Current state of the runtime toggle. */
bool lockRankCheckEnabled();

/**
 * Record an acquisition about to happen on this thread. fatal()s
 * with both lock names when `rank` is not strictly greater than
 * every rank already held. kUnranked acquisitions are ignored.
 */
void onAcquire(const char *name, int rank);

/** Pop the matching held-lock record (searches from the top). */
void onRelease(const char *name, int rank);

/** Ranked locks the calling thread currently holds (tests). */
size_t heldLockCount();

/**
 * Clear the calling thread's held-lock stack and its suppression
 * flag. Test-only: after EXPECT_THROWing a deliberate violation the
 * thread is left in the "reporting" state (a real violation kills
 * the process, so the state never matters outside tests).
 */
void resetThreadForTest();

} // namespace lockrank

} // namespace pico::support

#endif // PICO_SUPPORT_LOCK_RANK_HPP
