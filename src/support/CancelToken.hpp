/**
 * @file
 * Cooperative cancellation with deadlines.
 *
 * Long-running evaluations (a design-space walk, a server request)
 * must be abortable without killing the process or corrupting shared
 * state. A CancelToken is the contract between the party that wants
 * the work stopped (a signal handler, a per-request deadline, a
 * draining server) and the inner loops that do the work:
 *
 *  - the *owner* calls cancel(), or constructs the token with a
 *    deadline in monotonic time, after which the token reports
 *    cancelled on its own;
 *
 *  - the *workers* sprinkle checkpoint() at loop boundaries (per
 *    trace block, per design, per request stage). A checkpoint on a
 *    cancelled token throws CancelledError, which unwinds through
 *    the normal exception-safety machinery — partially built state
 *    is discarded by destructors, results committed before the
 *    checkpoint stay committed (and cached).
 *
 * Cancellation is *cooperative and monotonic*: nothing is ever
 * forcibly interrupted, and once a token reports cancelled it stays
 * cancelled. Checks are cheap (one relaxed atomic load on the
 * not-cancelled path plus, when a deadline is set, one steady-clock
 * read), so a per-block checkpoint is in the noise of the work it
 * guards.
 */

#ifndef PICO_SUPPORT_CANCEL_TOKEN_HPP
#define PICO_SUPPORT_CANCEL_TOKEN_HPP

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "support/Metrics.hpp"

namespace pico
{

/** Exception thrown by CancelToken::checkpoint() after cancel. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace support
{

/** Shared cancel/deadline flag for one unit of cancellable work. */
class CancelToken
{
  public:
    /** Sentinel meaning "no deadline". */
    static constexpr uint64_t noDeadline = ~0ULL;

    /** Token without a deadline (cancel() only). */
    CancelToken() = default;

    /**
     * Token that self-cancels at an absolute monotonic time (ns on
     * the monotonicNowNs() clock). Use afterMs() for the common
     * relative case.
     */
    explicit CancelToken(uint64_t deadline_ns)
        : deadlineNs_(deadline_ns)
    {}

    /** Token whose deadline is `ms` milliseconds from now. */
    static CancelToken
    afterMs(uint64_t ms)
    {
        return CancelToken(monotonicNowNs() + ms * 1000000ULL);
    }

    /** Request cancellation (idempotent, thread-safe). */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_release);
    }

    /** True once cancelled or past the deadline. */
    bool
    cancelled() const
    {
        if (cancelled_.load(std::memory_order_acquire))
            return true;
        if (deadlineNs_ != noDeadline &&
            monotonicNowNs() >= deadlineNs_) {
            // Latch the flag so later checks skip the clock read and
            // the token stays monotonic even if the clock could move.
            cancelled_.store(true, std::memory_order_release);
            return true;
        }
        return false;
    }

    /** True when this token carries a deadline. */
    bool hasDeadline() const { return deadlineNs_ != noDeadline; }

    /** The absolute deadline (noDeadline when none). */
    uint64_t deadlineNs() const { return deadlineNs_; }

    /**
     * Nanoseconds until the deadline (0 when past, noDeadline when
     * the token has none). For sizing waits.
     */
    uint64_t
    remainingNs() const
    {
        if (deadlineNs_ == noDeadline)
            return noDeadline;
        uint64_t now = monotonicNowNs();
        return now >= deadlineNs_ ? 0 : deadlineNs_ - now;
    }

    /** Throw CancelledError when cancelled; cheap otherwise. */
    void
    checkpoint(const char *where = "work") const
    {
        if (cancelled())
            throw CancelledError(std::string("cancelled: ") + where);
    }

  private:
    mutable std::atomic<bool> cancelled_{false};
    uint64_t deadlineNs_ = noDeadline;
};

/**
 * Stride-gated checkpoint for hot loops: calls token->checkpoint()
 * every `stride` ticks, so the steady-clock read of a deadline token
 * is amortized over many iterations. A null token costs one pointer
 * compare per tick.
 */
class CancelCheck
{
  public:
    explicit CancelCheck(const CancelToken *token,
                         uint32_t stride = 4096)
        : token_(token), stride_(stride)
    {}

    void
    tick(const char *where = "work")
    {
        if (token_ == nullptr)
            return;
        if (++count_ >= stride_) {
            count_ = 0;
            token_->checkpoint(where);
        }
    }

  private:
    const CancelToken *token_;
    uint32_t stride_;
    uint32_t count_ = 0;
};

} // namespace support
} // namespace pico

#endif // PICO_SUPPORT_CANCEL_TOKEN_HPP
