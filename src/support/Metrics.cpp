#include "support/Metrics.hpp"

#include <chrono>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "support/Logging.hpp"

namespace pico::support
{

namespace detail
{

/** Initialized from the environment so headless runs (CI, cron) can
 *  switch instrumentation on without touching call sites. */
std::atomic<bool> metricsOn{[] {
    const char *env = std::getenv("PICOEVAL_METRICS");
    return env != nullptr && *env != '\0' &&
           std::string(env) != "0";
}()};

} // namespace detail

void
setMetricsEnabled(bool on)
{
    detail::metricsOn.store(on, std::memory_order_relaxed);
}

uint64_t
monotonicNowNs()
{
    using clock = std::chrono::steady_clock;
    // One epoch for the whole process: timers, trace-event
    // timestamps and log lines all measure from the same zero.
    static const clock::time_point epoch = clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now() - epoch)
            .count());
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

// --- MetricsRegistry ---------------------------------------------------

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Shard &
MetricsRegistry::localShard()
{
    /** The calling thread's shard pointer (set once per thread). */
    static thread_local Shard *tlsShard = nullptr;
    if (tlsShard == nullptr) {
        auto shard = std::make_unique<Shard>();
        tlsShard = shard.get();
        MutexLock lock(registryMutex_);
        shards_.push_back(std::move(shard));
    }
    return *tlsShard;
}

size_t
MetricsRegistry::allocateSlots(size_t words, const std::string &name)
{
    panicIf(nextSlot_ + words > slotCapacity,
            "metrics registry slot capacity exhausted registering '",
            name, "'");
    size_t slot = nextSlot_;
    nextSlot_ += words;
    return slot;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    MutexLock lock(registryMutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_
                 .emplace(name, std::unique_ptr<Counter>(new Counter(
                                    allocateSlots(1, name))))
                 .first;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    MutexLock lock(registryMutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_
                 .emplace(name, std::unique_ptr<Gauge>(new Gauge()))
                 .first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    MutexLock lock(registryMutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name,
                          std::unique_ptr<Histogram>(new Histogram(
                              allocateSlots(Histogram::slotWords,
                                            name))))
                 .first;
    }
    return *it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    // Concurrent updaters use relaxed stores, so a snapshot taken
    // while work is in flight may lag by in-flight increments; the
    // pipeline snapshots after joins, where totals are exact.
    MutexLock lock(registryMutex_);
    auto sumSlot = [this](size_t slot) {
        uint64_t total = 0;
        for (const auto &shard : shards_)
            total +=
                shard->slots[slot].load(std::memory_order_relaxed);
        return total;
    };

    MetricsSnapshot snap;
    for (const auto &[name, ctr] : counters_)
        snap.counters[name] = sumSlot(ctr->slot_);
    for (const auto &[name, g] : gauges_)
        snap.gauges[name] = g->value();
    for (const auto &[name, h] : histograms_) {
        HistogramValue v;
        v.count = sumSlot(h->slot_);
        v.sum = sumSlot(h->slot_ + 1);
        for (size_t b = 0; b < Histogram::bucketCount; ++b)
            v.buckets[b] = sumSlot(h->slot_ + 2 + b);
        snap.histograms[name] = v;
    }
    return snap;
}

void
MetricsRegistry::resetValues()
{
    MutexLock lock(registryMutex_);
    for (auto &shard : shards_) {
        for (auto &slot : shard->slots)
            slot.store(0, std::memory_order_relaxed);
    }
    for (auto &[name, g] : gauges_)
        g->value_.store(0.0, std::memory_order_relaxed);
}

// --- handles -----------------------------------------------------------

void
Counter::add(uint64_t n)
{
#if PICOEVAL_METRICS
    if (!metricsEnabled())
        return;
    auto &shard = MetricsRegistry::instance().localShard();
    shard.slots[slot_].fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
}

void
Gauge::set(double v)
{
#if PICOEVAL_METRICS
    if (!metricsEnabled())
        return;
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
}

double
Gauge::value() const
{
    return value_.load(std::memory_order_relaxed);
}

size_t
Histogram::bucketOf(uint64_t value)
{
    // bit_width(v): 0 for 0, k for [2^(k-1), 2^k). Cap into the
    // last bucket.
    size_t width = 0;
    while (value != 0) {
        ++width;
        value >>= 1;
    }
    return width < bucketCount ? width : bucketCount - 1;
}

void
Histogram::observe(uint64_t value)
{
#if PICOEVAL_METRICS
    if (!metricsEnabled())
        return;
    auto &shard = MetricsRegistry::instance().localShard();
    shard.slots[slot_].fetch_add(1, std::memory_order_relaxed);
    shard.slots[slot_ + 1].fetch_add(value,
                                     std::memory_order_relaxed);
    shard.slots[slot_ + 2 + bucketOf(value)].fetch_add(
        1, std::memory_order_relaxed);
#else
    (void)value;
#endif
}

// --- snapshot JSON -----------------------------------------------------

void
MetricsSnapshot::writeJson(std::ostream &os) const
{
    // Deterministic by construction: std::map iteration is sorted,
    // counters and bucket counts are integers, gauges use a fixed
    // precision. Equal values => equal bytes.
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : counters) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":" << v;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, v] : gauges) {
        std::ostringstream num;
        num.precision(17);
        num << v;
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":" << num.str();
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, v] : histograms) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":{\"count\":" << v.count << ",\"sum\":" << v.sum
           << ",\"buckets\":{";
        bool firstBucket = true;
        for (size_t b = 0; b < v.buckets.size(); ++b) {
            if (v.buckets[b] == 0)
                continue;
            os << (firstBucket ? "" : ",") << '"' << b
               << "\":" << v.buckets[b];
            firstBucket = false;
        }
        os << "}}";
        first = false;
    }
    os << "}}";
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream ss;
    writeJson(ss);
    return ss.str();
}

} // namespace pico::support
