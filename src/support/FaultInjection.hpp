/**
 * @file
 * Deterministic fault-injection harness.
 *
 * Long exploration runs must survive corrupt trace files, half-written
 * cache databases and infeasible designs, and every recovery path
 * needs a test that actually exercises it. This header provides the
 * two halves of that story:
 *
 *  - *Scoped failures*: production code marks named sites with
 *    faultPoint("Component::method:event"); tests arm a site (via
 *    ScopedFault) to throw FaultInjectedError on its nth hit,
 *    simulating a crash or I/O failure at exactly that point. Unarmed
 *    sites cost one map lookup against an empty registry.
 *
 *  - *File corruption*: seed-driven helpers that truncate files or
 *    flip bits at deterministic offsets, so corruption tests are
 *    exactly reproducible from a seed.
 *
 * The injector is intentionally process-global (like a signal): the
 * code under test cannot be expected to thread a test-only handle
 * through every layer. Tests must disarm what they arm — ScopedFault
 * guarantees this.
 */

#ifndef PICO_SUPPORT_FAULT_INJECTION_HPP
#define PICO_SUPPORT_FAULT_INJECTION_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/ThreadAnnotations.hpp"

namespace pico
{

/** Exception thrown when an armed fault-injection site fires. */
class FaultInjectedError : public std::runtime_error
{
  public:
    explicit FaultInjectedError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace support
{

/** Process-global registry of named fault-injection sites. */
class FaultInjector
{
  public:
    /** The singleton registry. */
    static FaultInjector &instance();

    /**
     * Arm a site: the (skip+1)th subsequent hit throws.
     * @param site site name as passed to faultPoint()
     * @param skip hits to let pass before firing (0 = fire on the
     *        next hit)
     * @param fires times to fire before auto-disarming (0 = forever)
     */
    void arm(const std::string &site, uint64_t skip = 0,
             uint64_t fires = 1) PICO_REQUIRES(!faultMutex_);

    /** Disarm one site (hit counters are kept). */
    void disarm(const std::string &site)
        PICO_REQUIRES(!faultMutex_);

    /** Disarm every site and forget all hit counters. */
    void reset() PICO_REQUIRES(!faultMutex_);

    /**
     * Called by faultPoint(): count the hit and decide.
     * @return true when the armed trigger fires
     */
    bool shouldFail(const std::string &site)
        PICO_REQUIRES(!faultMutex_);

    /** Times a site has been hit since the last reset(). */
    uint64_t hits(const std::string &site) const
        PICO_REQUIRES(!faultMutex_);

    /** True when any site is currently armed. */
    bool
    anyArmed() const
    {
        return armedCount_.load(std::memory_order_acquire) > 0;
    }

  private:
    FaultInjector() = default;

    struct Site
    {
        uint64_t hits = 0;
        uint64_t skip = 0;
        uint64_t fires = 0;
        bool armed = false;
    };

    /**
     * Sites fire from parallel walks, so the registry is guarded by
     * a mutex; the armed count is a separate atomic so the unarmed
     * fast path in faultPoint() stays lock-free.
     */
    mutable Mutex faultMutex_{"faultinjector", rank::kFaultInjector};
    std::map<std::string, Site> sites_ PICO_GUARDED_BY(faultMutex_);
    std::atomic<uint64_t> armedCount_{0};
};

/**
 * Production-code hook: throws FaultInjectedError when `site` is
 * armed and due. Unarmed processes short-circuit on anyArmed().
 */
inline void
faultPoint(const char *site)
{
    auto &inj = FaultInjector::instance();
    if (!inj.anyArmed())
        return;
    if (inj.shouldFail(site))
        throw FaultInjectedError(std::string("injected fault at ") +
                                 site);
}

/** RAII arm/disarm of one site (exception-safe test scaffolding). */
class ScopedFault
{
  public:
    explicit ScopedFault(std::string site, uint64_t skip = 0,
                         uint64_t fires = 1)
        : site_(std::move(site))
    {
        FaultInjector::instance().arm(site_, skip, fires);
    }
    ~ScopedFault() { FaultInjector::instance().disarm(site_); }
    ScopedFault(const ScopedFault &) = delete;
    ScopedFault &operator=(const ScopedFault &) = delete;

  private:
    std::string site_;
};

/**
 * Truncate a file to keepBytes; fatal() when the file is missing or
 * already shorter.
 */
void truncateFile(const std::string &path, uint64_t keepBytes);

/** Drop the last dropBytes of a file. */
void truncateFileTail(const std::string &path, uint64_t dropBytes);

/** Flip one bit: byte byteOffset, bit bitIndex (0-7). */
void flipBit(const std::string &path, uint64_t byteOffset,
             unsigned bitIndex);

/**
 * Deterministic corruption offsets: n distinct byte offsets in
 * [lo, fileSize) drawn from the given seed. lo lets callers protect
 * a header from corruption.
 */
std::vector<uint64_t> corruptionOffsets(const std::string &path,
                                        uint64_t seed, size_t n,
                                        uint64_t lo = 0);

} // namespace support
} // namespace pico

#endif // PICO_SUPPORT_FAULT_INJECTION_HPP
