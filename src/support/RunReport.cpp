#include "support/RunReport.hpp"

#include <fstream>
#include <sstream>

#include "support/Logging.hpp"

namespace pico::support
{

std::string
buildVersion()
{
#if defined(PICOEVAL_GIT_DESCRIBE)
    return PICOEVAL_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

void
RunReport::set(const std::string &key, const std::string &value)
{
    info_[key] = value;
}

void
RunReport::set(const std::string &key, uint64_t value)
{
    info_[key] = std::to_string(value);
}

void
RunReport::set(const std::string &key, double value)
{
    std::ostringstream ss;
    ss.precision(17);
    ss << value;
    info_[key] = ss.str();
}

std::string
RunReport::toJson(const MetricsSnapshot &snapshot) const
{
    std::ostringstream out;
    out << "{\"schema\":\"" << schema << "\",\"git\":\""
        << jsonEscape(buildVersion()) << "\",\"info\":{";
    bool first = true;
    for (const auto &[key, value] : info_) {
        out << (first ? "" : ",") << '"' << jsonEscape(key)
            << "\":\"" << jsonEscape(value) << '"';
        first = false;
    }
    out << "},\"metrics\":";
    snapshot.writeJson(out);
    out << "}\n";
    return out.str();
}

std::string
RunReport::toJson() const
{
    return toJson(metrics().snapshot());
}

bool
RunReport::write(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot write run report '", path, "'");
        return false;
    }
    out << toJson();
    out.flush();
    if (!out) {
        warn("writing run report '", path, "' failed");
        return false;
    }
    return true;
}

} // namespace pico::support
