/**
 * @file
 * Deterministic schedule-perturbation harness (PCT-style).
 *
 * TSan only judges the interleavings a run happens to produce. This
 * harness manufactures *different* interleavings on demand: named
 * perturbation points sit at the scheduling decisions that matter
 * (ThreadPool dispatch, BoundedQueue wait/notify, EvaluationCache
 * single-flight hand-offs, EvalService drain), and when the harness
 * is armed each point consults a seeded splitmix64 stream to decide
 * whether the calling thread yields or briefly sleeps right there.
 * Sweeping seeds (tests/schedule_test.cpp runs ≥64) explores a broad
 * family of schedules; because results must be a pure function of
 * the *workload* seeds, every perturbed schedule must produce
 * bit-identical results — any divergence is an ordering bug, not
 * noise.
 *
 * Naming convention for points (DESIGN.md §15): lowercase
 * "<component>.<event>", e.g. "boundedqueue.pop",
 * "evalcache.leader". Points are cheap — one relaxed atomic load
 * when disarmed (the default) — so they stay in Release builds, like
 * chaos sites (FaultInjection.hpp) and metrics sites.
 *
 * Determinism note: the decision stream mixes the seed with the
 * point name and a global arrival counter, so two sweeps with the
 * same seed over the same workload perturb similarly (not
 * identically — arrival order feeds the counter — but identical
 * perturbation is not the contract; identical *results* are).
 */

#ifndef PICO_SUPPORT_SCHEDULE_PERTURB_HPP
#define PICO_SUPPORT_SCHEDULE_PERTURB_HPP

#include <atomic>
#include <cstdint>

namespace pico::support
{

namespace detail
{
/** Master switch: one relaxed load per point when disarmed. */
extern std::atomic<bool> perturbOn;

/** Armed-path body of perturbPoint() (yield/sleep decision). */
void perturbSlow(const char *point);
} // namespace detail

/**
 * A named perturbation point. Disarmed (the default) this is one
 * relaxed atomic load; armed, it may yield or sleep the calling
 * thread for a few microseconds, chosen deterministically from the
 * harness seed, the point name and the arrival counter.
 */
inline void
perturbPoint(const char *point)
{
    if (detail::perturbOn.load(std::memory_order_relaxed))
        detail::perturbSlow(point);
}

/** Arm the harness with a seed (resets the arrival counter). */
void armSchedulePerturb(uint64_t seed);

/** Disarm the harness (perturbPoint() returns to its fast path). */
void disarmSchedulePerturb();

/** True while the harness is armed. */
bool schedulePerturbArmed();

/** Perturbation decisions taken (yields + sleeps) since arming. */
uint64_t perturbCount();

/** RAII arm/disarm for one test scope. */
class ScopedPerturb
{
  public:
    explicit ScopedPerturb(uint64_t seed) { armSchedulePerturb(seed); }
    ~ScopedPerturb() { disarmSchedulePerturb(); }

    ScopedPerturb(const ScopedPerturb &) = delete;
    ScopedPerturb &operator=(const ScopedPerturb &) = delete;
};

} // namespace pico::support

#endif // PICO_SUPPORT_SCHEDULE_PERTURB_HPP
