/**
 * @file
 * Small bit-manipulation helpers used throughout the library.
 */

#ifndef PICO_SUPPORT_BIT_UTILS_HPP
#define PICO_SUPPORT_BIT_UTILS_HPP

#include <bit>
#include <cstdint>

#include "support/Logging.hpp"

namespace pico
{

/** True iff x is a (positive) power of two. */
constexpr bool
isPowerOfTwo(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); x must be non-zero. */
inline unsigned
log2Floor(uint64_t x)
{
    panicIf(x == 0, "log2Floor of 0");
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** ceil(log2(x)); x must be non-zero. */
inline unsigned
log2Ceil(uint64_t x)
{
    unsigned f = log2Floor(x);
    return isPowerOfTwo(x) ? f : f + 1;
}

/** Round x up to the next multiple of align (a power of two). */
inline uint64_t
alignUp(uint64_t x, uint64_t align)
{
    panicIf(!isPowerOfTwo(align), "alignUp with non-power-of-two");
    return (x + align - 1) & ~(align - 1);
}

/** Round x down to a multiple of align (a power of two). */
inline uint64_t
alignDown(uint64_t x, uint64_t align)
{
    panicIf(!isPowerOfTwo(align), "alignDown with non-power-of-two");
    return x & ~(align - 1);
}

/** Number of bits needed to represent values in [0, n). */
inline unsigned
bitsFor(uint64_t n)
{
    return n <= 1 ? 1 : log2Ceil(n);
}

} // namespace pico

#endif // PICO_SUPPORT_BIT_UTILS_HPP
