/**
 * @file
 * Bounded MPMC queue with an admission watermark — the only queue
 * the serving layer is allowed to use.
 *
 * An unbounded queue turns overload into unbounded memory growth and
 * unbounded latency: every queued request is admitted work the server
 * has promised to do, so under sustained overload the promise grows
 * without limit and p99 follows it. This queue makes the overload
 * policy explicit instead:
 *
 *  - *capacity* is a hard bound — tryPush() never blocks and never
 *    allocates past it;
 *  - the *watermark* (<= capacity) is the load-shedding threshold:
 *    tryPush() reports AtWatermark once depth reaches it, and the
 *    caller sheds (reject with retry-after) rather than queueing.
 *    The gap between watermark and capacity absorbs racing pushes
 *    that passed the check together;
 *  - close() stops admission permanently; pop() drains what was
 *    admitted and then returns false, so consumers terminate.
 *    closeAndDrain() additionally hands back the unconsumed items so
 *    the caller can answer each one (a drain deadline must not
 *    silently drop admitted requests).
 *
 * Lint rule `unbounded-queue` (tools/picoeval-lint.py) forbids raw
 * std::queue/std::deque in src/server — admission control is not
 * optional there.
 */

#ifndef PICO_SUPPORT_BOUNDED_QUEUE_HPP
#define PICO_SUPPORT_BOUNDED_QUEUE_HPP

#include <condition_variable>
#include <cstddef>
// picoeval-lint: allow(unbounded-queue)
#include <deque>
#include <utility>
#include <vector>

#include "support/Logging.hpp"
#include "support/SchedulePerturb.hpp"
#include "support/ThreadAnnotations.hpp"

namespace pico::support
{

/** Outcome of a BoundedQueue push attempt. */
enum class QueuePush
{
    /** Item accepted below the watermark. */
    Ok,
    /** Rejected: depth at/over the watermark (shed the request). */
    AtWatermark,
    /** Rejected: the hard capacity bound (should be rare — the
     *  watermark sheds first). */
    Full,
    /** Rejected: the queue is closed (draining/shutting down). */
    Closed,
};

/** Fixed-capacity FIFO with watermark admission and closed drain. */
template <typename T> class BoundedQueue
{
  public:
    /**
     * @param capacity hard bound on queued items (> 0)
     * @param watermark shed threshold; 0 means "= capacity"
     */
    explicit BoundedQueue(size_t capacity, size_t watermark = 0)
        : capacity_(capacity),
          watermark_(watermark == 0 ? capacity : watermark)
    {
        fatalIf(capacity_ == 0, "bounded queue needs capacity > 0");
        fatalIf(watermark_ > capacity_,
                "queue watermark ", watermark_, " exceeds capacity ",
                capacity_);
    }

    /** Non-blocking push; see QueuePush for the rejection reasons. */
    QueuePush
    tryPush(T item) PICO_REQUIRES(!queueMutex_)
    {
        {
            MutexLock lock(queueMutex_);
            if (closed_)
                return QueuePush::Closed;
            if (items_.size() >= watermark_) {
                return items_.size() >= capacity_
                           ? QueuePush::Full
                           : QueuePush::AtWatermark;
            }
            items_.push_back(std::move(item));
            if (items_.size() > peakDepth_)
                peakDepth_ = items_.size();
        }
        // Push-committed / about-to-notify race window.
        perturbPoint("boundedqueue.push");
        consumerCv_.notify_one();
        return QueuePush::Ok;
    }

    /**
     * Blocking pop. @return false when the queue is closed and
     * drained — the consumer's signal to exit.
     */
    bool
    pop(T &out) PICO_REQUIRES(!queueMutex_)
    {
        // Consumer-arrival / producer-notify race window (taken
        // before the lock so the perturbation reorders arrivals).
        perturbPoint("boundedqueue.pop");
        MutexLock lock(queueMutex_);
        while (items_.empty() && !closed_)
            consumerCv_.wait(lock.native());
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /** Stop admission; consumers drain the remaining items. */
    void
    close() PICO_REQUIRES(!queueMutex_)
    {
        {
            MutexLock lock(queueMutex_);
            closed_ = true;
        }
        consumerCv_.notify_all();
    }

    /**
     * Stop admission AND take the unconsumed items away from the
     * consumers, so the caller can answer each abandoned request.
     * Items a consumer already popped are not affected.
     */
    std::vector<T>
    closeAndDrain() PICO_REQUIRES(!queueMutex_)
    {
        std::vector<T> leftover;
        {
            MutexLock lock(queueMutex_);
            closed_ = true;
            leftover.reserve(items_.size());
            while (!items_.empty()) {
                leftover.push_back(std::move(items_.front()));
                items_.pop_front();
            }
        }
        consumerCv_.notify_all();
        return leftover;
    }

    /** Current depth (racy by nature; for stats and tests). */
    size_t
    size() const PICO_REQUIRES(!queueMutex_)
    {
        MutexLock lock(queueMutex_);
        return items_.size();
    }

    /** Deepest the queue has ever been (never exceeds watermark). */
    size_t
    peakDepth() const PICO_REQUIRES(!queueMutex_)
    {
        MutexLock lock(queueMutex_);
        return peakDepth_;
    }

    bool
    closed() const PICO_REQUIRES(!queueMutex_)
    {
        MutexLock lock(queueMutex_);
        return closed_;
    }

    size_t capacity() const { return capacity_; }
    size_t watermark() const { return watermark_; }

  private:
    const size_t capacity_;
    const size_t watermark_;
    mutable Mutex queueMutex_{"boundedqueue", rank::kBoundedQueue};
    std::deque<T> items_ PICO_GUARDED_BY(queueMutex_);
    size_t peakDepth_ PICO_GUARDED_BY(queueMutex_) = 0;
    bool closed_ PICO_GUARDED_BY(queueMutex_) = false;
    std::condition_variable consumerCv_;
};

} // namespace pico::support

#endif // PICO_SUPPORT_BOUNDED_QUEUE_HPP
