#include "support/Backoff.hpp"

#include <chrono>
#include <thread>

namespace pico::support
{

void
sleepForMs(uint64_t ms)
{
    if (ms == 0)
        return;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace pico::support
