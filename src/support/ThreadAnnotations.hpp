/**
 * @file
 * Clang thread-safety-analysis shim and annotated lock types.
 *
 * The parallel engine (PR 2) and the instrumentation layer (PR 3)
 * grew a real concurrency surface: a 16-shard lock-striped
 * EvaluationCache, a nesting-safe ThreadPool, per-thread metrics and
 * trace-event buffers, and a process-global fault injector. TSan only
 * catches the interleavings a run happens to produce; Clang's static
 * thread-safety analysis (-Wthread-safety) proves lock discipline at
 * compile time, on every path, for free.
 *
 * The analysis needs two things this header provides:
 *
 *  - *Attribute macros* (PICO_GUARDED_BY, PICO_REQUIRES, ...) that
 *    expand to Clang's thread-safety attributes under Clang and to
 *    nothing elsewhere, so GCC builds are untouched.
 *
 *  - *Annotated lock types.* libstdc++'s std::mutex carries no
 *    capability attributes, so the analysis cannot see through it.
 *    support::Mutex wraps std::mutex as a PICO_CAPABILITY, and
 *    support::MutexLock is the annotated scoped lock (it owns a
 *    std::unique_lock internally, exposed via native() so
 *    condition_variable::wait still works).
 *
 * Repo rule (enforced by tools/picoeval-lint.py): code under src/
 * takes locks through these wrappers only; raw std::mutex /
 * std::lock_guard / std::unique_lock appear in this header alone.
 *
 * Conventions:
 *  - every field a mutex guards is annotated PICO_GUARDED_BY(mutex);
 *  - private helpers called under a lock are PICO_REQUIRES(mutex);
 *  - condition-variable waits loop manually around
 *    cv.wait(lock.native()) instead of passing a predicate lambda
 *    (the analysis cannot see that a lambda body runs under the
 *    caller's lock, so predicate lambdas produce false positives).
 */

#ifndef PICO_SUPPORT_THREAD_ANNOTATIONS_HPP
#define PICO_SUPPORT_THREAD_ANNOTATIONS_HPP

#include <mutex>

#include "support/LockRank.hpp"

#if defined(__clang__)
#define PICO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PICO_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define PICO_CAPABILITY(x) PICO_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its
 *  dtor. */
#define PICO_SCOPED_CAPABILITY PICO_THREAD_ANNOTATION(scoped_lockable)

/** Field is protected by the given capability. */
#define PICO_GUARDED_BY(x) PICO_THREAD_ANNOTATION(guarded_by(x))

/** Pointee is protected by the given capability. */
#define PICO_PT_GUARDED_BY(x) PICO_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function acquires the capability (held on return). */
#define PICO_ACQUIRE(...)                                             \
    PICO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define PICO_RELEASE(...)                                             \
    PICO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability when returning `result`. */
#define PICO_TRY_ACQUIRE(result, ...)                                 \
    PICO_THREAD_ANNOTATION(                                           \
        try_acquire_capability(result, __VA_ARGS__))

/** Caller must already hold the capability. */
#define PICO_REQUIRES(...)                                            \
    PICO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock guard). */
#define PICO_EXCLUDES(...)                                            \
    PICO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define PICO_RETURN_CAPABILITY(x)                                     \
    PICO_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: skip analysis of this function entirely. */
#define PICO_NO_THREAD_SAFETY_ANALYSIS                                \
    PICO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pico::support
{

/**
 * std::mutex with capability attributes the analysis understands,
 * plus a compile-time name and lock rank (support/LockRank.hpp).
 * Same cost and semantics as std::mutex; lock()/unlock() exist for
 * the analysis and for MutexLock — call sites should prefer the
 * scoped MutexLock.
 *
 * Every mutex in src/support, src/dse and src/server must use the
 * ranked constructor — `Mutex mutex_{"evalcache.shard",
 * rank::kCacheShard}` — with a rank from the table in LockRank.hpp;
 * tools/picoeval-lockcheck.py fails CI on unranked declarations in
 * those directories and proves the declared order acyclic.
 */
class PICO_CAPABILITY("mutex") Mutex
{
  public:
    /** Unranked (rank::kUnranked): invisible to the rank checker.
     *  For code outside the covered directories only. */
    Mutex() = default;

    /** Named, ranked mutex — the required spelling in src/. */
    Mutex(const char *name, int rank) : name_(name), rank_(rank) {}

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() PICO_ACQUIRE() { m_.lock(); }
    void unlock() PICO_RELEASE() { m_.unlock(); }
    bool try_lock() PICO_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /** Compile-time identity in the lock-order graph. */
    const char *name() const { return name_; }

    /** Rank from support::rank (LockRank.hpp); kUnranked = none. */
    int rank() const { return rank_; }

    /**
     * The wrapped mutex, for std::condition_variable via
     * MutexLock::native() only. Locking through this reference
     * bypasses the analysis — don't.
     */
    std::mutex &raw() { return m_; }

  private:
    std::mutex m_;
    const char *name_ = "unranked";
    int rank_ = rank::kUnranked;
};

/**
 * Scoped lock of a support::Mutex (the annotated std::unique_lock).
 * Owns the mutex for its whole lifetime; native() exposes the
 * underlying std::unique_lock for condition_variable::wait, which
 * releases and reacquires internally — invisible to, and fine with,
 * the static analysis, as the lock is held again on every return.
 */
class PICO_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) PICO_ACQUIRE(mutex)
        : lock_(checkedLock(mutex))
#if PICOEVAL_LOCK_RANK_CHECK
          ,
          mutex_(&mutex)
#endif
    {}

    ~MutexLock() PICO_RELEASE()
    {
#if PICOEVAL_LOCK_RANK_CHECK
        lockrank::onRelease(mutex_->name(), mutex_->rank());
#endif
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** For cv.wait(lock.native()) — see class comment. The wait's
     *  internal release/reacquire is invisible to the rank checker
     *  too, which is sound: the lock is held again on every return,
     *  so the held-stack entry never stops being true at the points
     *  where this thread can acquire something else. */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    /** Rank-check (Debug only), then lock. The check runs *before*
     *  blocking so an inversion reports even when it would have
     *  deadlocked right there. */
    static std::unique_lock<std::mutex> checkedLock(Mutex &mutex)
    {
#if PICOEVAL_LOCK_RANK_CHECK
        lockrank::onAcquire(mutex.name(), mutex.rank());
#endif
        return std::unique_lock<std::mutex>(mutex.raw());
    }

    std::unique_lock<std::mutex> lock_;
#if PICOEVAL_LOCK_RANK_CHECK
    Mutex *mutex_ = nullptr;
#endif
};

} // namespace pico::support

#endif // PICO_SUPPORT_THREAD_ANNOTATIONS_HPP
