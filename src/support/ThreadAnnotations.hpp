/**
 * @file
 * Clang thread-safety-analysis shim and annotated lock types.
 *
 * The parallel engine (PR 2) and the instrumentation layer (PR 3)
 * grew a real concurrency surface: a 16-shard lock-striped
 * EvaluationCache, a nesting-safe ThreadPool, per-thread metrics and
 * trace-event buffers, and a process-global fault injector. TSan only
 * catches the interleavings a run happens to produce; Clang's static
 * thread-safety analysis (-Wthread-safety) proves lock discipline at
 * compile time, on every path, for free.
 *
 * The analysis needs two things this header provides:
 *
 *  - *Attribute macros* (PICO_GUARDED_BY, PICO_REQUIRES, ...) that
 *    expand to Clang's thread-safety attributes under Clang and to
 *    nothing elsewhere, so GCC builds are untouched.
 *
 *  - *Annotated lock types.* libstdc++'s std::mutex carries no
 *    capability attributes, so the analysis cannot see through it.
 *    support::Mutex wraps std::mutex as a PICO_CAPABILITY, and
 *    support::MutexLock is the annotated scoped lock (it owns a
 *    std::unique_lock internally, exposed via native() so
 *    condition_variable::wait still works).
 *
 * Repo rule (enforced by tools/picoeval-lint.py): code under src/
 * takes locks through these wrappers only; raw std::mutex /
 * std::lock_guard / std::unique_lock appear in this header alone.
 *
 * Conventions:
 *  - every field a mutex guards is annotated PICO_GUARDED_BY(mutex);
 *  - private helpers called under a lock are PICO_REQUIRES(mutex);
 *  - condition-variable waits loop manually around
 *    cv.wait(lock.native()) instead of passing a predicate lambda
 *    (the analysis cannot see that a lambda body runs under the
 *    caller's lock, so predicate lambdas produce false positives).
 */

#ifndef PICO_SUPPORT_THREAD_ANNOTATIONS_HPP
#define PICO_SUPPORT_THREAD_ANNOTATIONS_HPP

#include <mutex>

#if defined(__clang__)
#define PICO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PICO_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define PICO_CAPABILITY(x) PICO_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its
 *  dtor. */
#define PICO_SCOPED_CAPABILITY PICO_THREAD_ANNOTATION(scoped_lockable)

/** Field is protected by the given capability. */
#define PICO_GUARDED_BY(x) PICO_THREAD_ANNOTATION(guarded_by(x))

/** Pointee is protected by the given capability. */
#define PICO_PT_GUARDED_BY(x) PICO_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function acquires the capability (held on return). */
#define PICO_ACQUIRE(...)                                             \
    PICO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define PICO_RELEASE(...)                                             \
    PICO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability when returning `result`. */
#define PICO_TRY_ACQUIRE(result, ...)                                 \
    PICO_THREAD_ANNOTATION(                                           \
        try_acquire_capability(result, __VA_ARGS__))

/** Caller must already hold the capability. */
#define PICO_REQUIRES(...)                                            \
    PICO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock guard). */
#define PICO_EXCLUDES(...)                                            \
    PICO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define PICO_RETURN_CAPABILITY(x)                                     \
    PICO_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: skip analysis of this function entirely. */
#define PICO_NO_THREAD_SAFETY_ANALYSIS                                \
    PICO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pico::support
{

/**
 * std::mutex with capability attributes the analysis understands.
 * Same cost and semantics as std::mutex; lock()/unlock() exist for
 * the analysis and for MutexLock — call sites should prefer the
 * scoped MutexLock.
 */
class PICO_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() PICO_ACQUIRE() { m_.lock(); }
    void unlock() PICO_RELEASE() { m_.unlock(); }
    bool try_lock() PICO_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /**
     * The wrapped mutex, for std::condition_variable via
     * MutexLock::native() only. Locking through this reference
     * bypasses the analysis — don't.
     */
    std::mutex &raw() { return m_; }

  private:
    std::mutex m_;
};

/**
 * Scoped lock of a support::Mutex (the annotated std::unique_lock).
 * Owns the mutex for its whole lifetime; native() exposes the
 * underlying std::unique_lock for condition_variable::wait, which
 * releases and reacquires internally — invisible to, and fine with,
 * the static analysis, as the lock is held again on every return.
 */
class PICO_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) PICO_ACQUIRE(mutex)
        : lock_(mutex.raw())
    {}

    ~MutexLock() PICO_RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** For cv.wait(lock.native()) — see class comment. */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace pico::support

#endif // PICO_SUPPORT_THREAD_ANNOTATIONS_HPP
