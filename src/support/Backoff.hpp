/**
 * @file
 * Seeded exponential backoff with jitter — the only retry pacing the
 * serving layer is allowed to use.
 *
 * Naive retry loops (`while (!ok) { sleep(fixed); retry; }`) turn a
 * momentary overload into a synchronized retry storm: every shed
 * client comes back at the same instant and the server sheds them
 * all again. The standard fix is exponential backoff with *full
 * jitter*: attempt k waits a uniformly random duration in
 * [0, min(cap, base * 2^k)], which decorrelates the herd while
 * keeping the expected load decay exponential.
 *
 * Determinism: the jitter is drawn from the library's seeded Rng —
 * clients derive theirs via Rng::forStream(seed, client_index) — so
 * a load run's retry schedule is exactly reproducible from its seed.
 *
 * Lint rule `raw-sleep` (tools/picoeval-lint.py) forbids direct
 * sleep calls in src/server; pacing goes through this helper.
 */

#ifndef PICO_SUPPORT_BACKOFF_HPP
#define PICO_SUPPORT_BACKOFF_HPP

#include <cstdint>

#include "support/Random.hpp"

namespace pico::support
{

/** Block the calling thread for `ms` milliseconds (steady clock). */
void sleepForMs(uint64_t ms);

/** Full-jitter exponential backoff policy for one retry sequence. */
class Backoff
{
  public:
    /**
     * @param rng seeded jitter source (use Rng::forStream so
     *        parallel clients never share a stream)
     * @param base_ms first attempt's maximum delay
     * @param cap_ms upper bound on any delay
     */
    Backoff(Rng rng, uint64_t base_ms, uint64_t cap_ms)
        : rng_(rng), baseMs_(base_ms), capMs_(cap_ms)
    {
        panicIf(base_ms == 0, "backoff base must be positive");
        panicIf(cap_ms < base_ms, "backoff cap below base");
    }

    /**
     * Delay for the next attempt: uniform in [0, min(cap, base*2^k)]
     * where k is the number of nextDelayMs() calls since reset(),
     * never below `floor_ms` (a server's retry-after hint).
     */
    uint64_t
    nextDelayMs(uint64_t floor_ms = 0)
    {
        uint64_t ceiling = baseMs_;
        for (uint32_t k = 0; k < attempt_ && ceiling < capMs_; ++k)
            ceiling *= 2;
        if (ceiling > capMs_)
            ceiling = capMs_;
        ++attempt_;
        uint64_t jittered = rng_.below(ceiling + 1);
        return jittered > floor_ms ? jittered : floor_ms;
    }

    /** Sleep for nextDelayMs(floor_ms); returns the delay slept. */
    uint64_t
    sleep(uint64_t floor_ms = 0)
    {
        uint64_t delay = nextDelayMs(floor_ms);
        sleepForMs(delay);
        return delay;
    }

    /** Attempts since construction or the last reset(). */
    uint32_t attempts() const { return attempt_; }

    /** Start a fresh sequence (after a success). */
    void reset() { attempt_ = 0; }

  private:
    Rng rng_;
    uint64_t baseMs_;
    uint64_t capMs_;
    uint32_t attempt_ = 0;
};

} // namespace pico::support

#endif // PICO_SUPPORT_BACKOFF_HPP
