/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for conditions caused
 * by the caller (bad configuration, invalid arguments), and
 * warn()/inform() provide non-fatal status output.
 *
 * Every line carries a monotonic timestamp (seconds since the first
 * log/metric event of the process) and a severity tag:
 *
 *     [   12.345] warn: trace file truncated
 *
 * A minimum severity filters output — parallel walks can run quiet.
 * It defaults to Info, is read once from PICOEVAL_LOG_LEVEL
 * (debug|info|warn|error|silent) and can be changed at runtime with
 * setLogLevel(). panic()/fatal() always throw; the filter only
 * decides whether their message is also printed.
 */

#ifndef PICO_SUPPORT_LOGGING_HPP
#define PICO_SUPPORT_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace pico
{

/** Message severities, in increasing order. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    /** Suppresses everything, including panic/fatal messages. */
    Silent = 4,
};

/** Current minimum severity printed. */
LogLevel logLevel();

/** Override the minimum severity (wins over PICOEVAL_LOG_LEVEL). */
void setLogLevel(LogLevel level);

/**
 * Callback invoked (once, before the throw) by every panic()/fatal()
 * with the severity label and message. Servers install one to dump
 * the flight recorder at the moment of death. The hook runs on the
 * failing thread; exceptions it throws are swallowed, and a hook
 * that itself panics does not recurse.
 */
using FatalHook = void (*)(const char *label, const std::string &msg);

/** Install (or clear, with nullptr) the process-wide fatal hook. */
void setFatalHook(FatalHook hook);

/** Exception thrown by panic(); signals an internal library bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(); signals a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

/** Concatenate all arguments into one string via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/**
 * Emit a labelled message on stderr when `level` passes the minimum
 * severity, prefixed with the monotonic timestamp.
 */
void emitMessage(LogLevel level, const char *label,
                 const std::string &msg);

/** Run the installed FatalHook, guarding against recursion. */
void notifyFatal(const char *label, const std::string &msg);

} // namespace detail

/**
 * Report an internal error that should never happen regardless of what
 * the user does. Throws PanicError so tests can observe it.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emitMessage(LogLevel::Error, "panic", msg);
    detail::notifyFatal("panic", msg);
    throw PanicError(msg);
}

/**
 * Report an unrecoverable condition that is the caller's fault (bad
 * configuration, invalid arguments). Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emitMessage(LogLevel::Error, "fatal", msg);
    detail::notifyFatal("fatal", msg);
    throw FatalError(msg);
}

/** Alert the user to behavior that might indicate a problem. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() > LogLevel::Warn)
        return;
    detail::emitMessage(LogLevel::Warn, "warn",
                        detail::concat(std::forward<Args>(args)...));
}

/** Provide a normal, informative status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() > LogLevel::Info)
        return;
    detail::emitMessage(LogLevel::Info, "info",
                        detail::concat(std::forward<Args>(args)...));
}

/** Diagnostic chatter, hidden unless PICOEVAL_LOG_LEVEL=debug. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() > LogLevel::Debug)
        return;
    detail::emitMessage(LogLevel::Debug, "debug",
                        detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the given condition holds. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

/** fatal() unless the given condition holds. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

} // namespace pico

#endif // PICO_SUPPORT_LOGGING_HPP
