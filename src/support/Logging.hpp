/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for conditions caused
 * by the caller (bad configuration, invalid arguments), and
 * warn()/inform() provide non-fatal status output.
 */

#ifndef PICO_SUPPORT_LOGGING_HPP
#define PICO_SUPPORT_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace pico
{

/** Exception thrown by panic(); signals an internal library bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal(); signals a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

/** Concatenate all arguments into one string via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit a labelled message on stderr. */
void emitMessage(const char *label, const std::string &msg);

} // namespace detail

/**
 * Report an internal error that should never happen regardless of what
 * the user does. Throws PanicError so tests can observe it.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emitMessage("panic", msg);
    throw PanicError(msg);
}

/**
 * Report an unrecoverable condition that is the caller's fault (bad
 * configuration, invalid arguments). Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emitMessage("fatal", msg);
    throw FatalError(msg);
}

/** Alert the user to behavior that might indicate a problem. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitMessage("warn", detail::concat(std::forward<Args>(args)...));
}

/** Provide a normal, informative status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitMessage("info", detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the given condition holds. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

/** fatal() unless the given condition holds. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

} // namespace pico

#endif // PICO_SUPPORT_LOGGING_HPP
