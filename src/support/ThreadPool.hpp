/**
 * @file
 * Minimal deterministic-friendly thread pool and parallel loop.
 *
 * The exploration pipeline is embarrassingly parallel at three
 * levels (per-line-size Cheetah passes, per-machine compiles,
 * per-design dilation extrapolation), but every parallel phase must
 * produce *bit-identical* results to the serial walk. The primitives
 * here are built for that contract:
 *
 *  - ThreadPool is a fixed set of worker threads draining one FIFO
 *    queue; a pool with zero workers is valid and makes every
 *    parallelFor run inline on the caller — the serial reference
 *    path and the parallel path are the same code.
 *
 *  - parallelFor(n, pool, body) runs body(0..n-1) with the *caller
 *    participating* in the loop: indices are claimed from a shared
 *    counter by the caller and by up to workers() helper tasks.
 *    Caller participation makes nested parallelFor calls
 *    deadlock-free (a blocked outer loop always advances its own
 *    inner loop) and keeps the zero-worker pool exactly serial.
 *
 *  - Determinism is the *merge* discipline, not the schedule: bodies
 *    may run in any order and on any thread, so each body writes
 *    only to its own index's slot, and callers combine slots in
 *    index order afterwards. When bodies throw, the exception of the
 *    smallest failing index is rethrown — the same error the serial
 *    loop would have surfaced first.
 *
 *  - Tasks that need randomness must not share an Rng; derive an
 *    independent per-task stream with Rng::forStream(seed, index).
 */

#ifndef PICO_SUPPORT_THREAD_POOL_HPP
#define PICO_SUPPORT_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/ThreadAnnotations.hpp"

namespace pico::support
{

/** Fixed-size FIFO worker pool; zero workers = inline execution. */
class ThreadPool
{
  public:
    /**
     * @param workers helper threads to spawn. Zero is valid: the
     *        pool accepts no tasks and parallelFor degrades to the
     *        caller's serial loop.
     */
    explicit ThreadPool(unsigned workers);

    /** Joins all workers; pending tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Helper threads in the pool (not counting callers). */
    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

    /**
     * Enqueue one task. Must not be called on a zero-worker pool
     * (there is nobody to run it).
     */
    void submit(std::function<void()> task)
        PICO_REQUIRES(!poolMutex_);

    /**
     * Worker count for a user-facing jobs knob: 0 = one per
     * hardware thread, otherwise the given count (minimum 1).
     */
    static unsigned resolveJobs(unsigned jobs);

  private:
    void workerLoop() PICO_REQUIRES(!poolMutex_);

    std::vector<std::thread> threads_;
    Mutex poolMutex_{"threadpool.queue", rank::kPoolQueue};
    std::deque<std::function<void()>> queue_ PICO_GUARDED_BY(poolMutex_);
    std::condition_variable cv_;
    bool stop_ PICO_GUARDED_BY(poolMutex_) = false;
};

/**
 * Run body(0), ..., body(n-1) cooperatively on the caller plus the
 * pool's workers, returning when every body has finished. With a
 * null pool or a zero-worker pool the loop runs inline in index
 * order — byte-for-byte the serial behavior.
 *
 * Bodies must be independent: each may write only state owned by its
 * index. If any body throws, every remaining body still runs and the
 * exception of the smallest failing index is rethrown to the caller.
 */
void parallelFor(size_t n, ThreadPool *pool,
                 const std::function<void(size_t)> &body);

} // namespace pico::support

#endif // PICO_SUPPORT_THREAD_POOL_HPP
