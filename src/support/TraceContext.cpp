#include "support/TraceContext.hpp"

#include <atomic>

namespace pico::support
{

namespace
{

thread_local TraceContext tlsContext;

std::atomic<uint64_t> nextRequestId{0};
std::atomic<uint64_t> nextSpanId{0};

} // namespace

const TraceContext &
currentTraceContext()
{
    return tlsContext;
}

uint64_t
newRequestId()
{
    return nextRequestId.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t
newSpanId()
{
    return nextSpanId.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace detail
{

TraceContext
exchangeTraceContext(const TraceContext &ctx)
{
    TraceContext prev = tlsContext;
    tlsContext = ctx;
    return prev;
}

void
setCurrentSpanId(uint64_t span_id)
{
    tlsContext.spanId = span_id;
}

} // namespace detail
} // namespace pico::support
