#include "support/LockRank.hpp"

#include <atomic>

#include "support/Logging.hpp"

namespace pico::support::lockrank
{

namespace
{

/** Runtime mute switch for Debug overhead A/B measurement. */
std::atomic<bool> checkOn{true};

/** Deepest ranked-lock nesting any one thread may reach. The real
 *  program peaks at 3 (e.g. flush → shard → metrics); 16 leaves
 *  generous headroom and keeps the stack a fixed thread-local array
 *  with no allocation on the lock path. */
constexpr size_t maxHeld = 16;

struct HeldLock
{
    const char *name;
    int rank;
};

struct HeldStack
{
    HeldLock locks[maxHeld];
    size_t depth = 0;
    /** True while reporting a violation: fatal() itself may acquire
     *  ranked locks (stderr is lock-free, but the fatal hook is
     *  user code), and a checker that re-enters while dying would
     *  recurse forever. */
    bool reporting = false;
};

HeldStack &
held()
{
    static thread_local HeldStack stack;
    return stack;
}

} // namespace

void
setLockRankCheckEnabled(bool on)
{
    checkOn.store(on, std::memory_order_relaxed);
}

bool
lockRankCheckEnabled()
{
    return checkOn.load(std::memory_order_relaxed);
}

void
onAcquire(const char *name, int rank)
{
    if (rank == support::rank::kUnranked ||
        !checkOn.load(std::memory_order_relaxed))
        return;
    HeldStack &stack = held();
    if (stack.reporting)
        return;
    for (size_t i = 0; i < stack.depth; ++i) {
        if (rank <= stack.locks[i].rank) {
            stack.reporting = true;
            fatal("lock-rank violation: acquiring '", name,
                  "' (rank ", rank, ") while holding '",
                  stack.locks[i].name, "' (rank ",
                  stack.locks[i].rank,
                  ") — acquisition order must follow "
                  "src/support/LockRank.hpp (DESIGN.md §15)");
        }
    }
    if (stack.depth < maxHeld) {
        stack.locks[stack.depth].name = name;
        stack.locks[stack.depth].rank = rank;
    }
    ++stack.depth;
}

void
onRelease(const char *name, int rank)
{
    if (rank == support::rank::kUnranked)
        return;
    HeldStack &stack = held();
    if (stack.reporting || stack.depth == 0)
        return;
    if (stack.depth > maxHeld) {
        // Entries past maxHeld were counted but not recorded; this
        // release must belong to one of them.
        --stack.depth;
        return;
    }
    // Releases are almost always LIFO; search from the top so the
    // common case is one comparison.
    for (size_t i = stack.depth; i-- > 0;) {
        if (stack.locks[i].rank == rank &&
            stack.locks[i].name == name) {
            for (size_t j = i; j + 1 < stack.depth; ++j)
                stack.locks[j] = stack.locks[j + 1];
            --stack.depth;
            return;
        }
    }
    // No match: the acquire happened while the checker was muted.
}

size_t
heldLockCount()
{
    return held().depth;
}

void
resetThreadForTest()
{
    HeldStack &stack = held();
    stack.depth = 0;
    stack.reporting = false;
}

} // namespace pico::support::lockrank
