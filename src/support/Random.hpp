/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behavior in the library (synthetic workload
 * generation, execution-engine branch outcomes, data address streams)
 * flows through Rng so that every experiment is exactly reproducible
 * from a seed. The generator is xoshiro256**, seeded via splitmix64.
 */

#ifndef PICO_SUPPORT_RANDOM_HPP
#define PICO_SUPPORT_RANDOM_HPP

#include <cmath>
#include <cstdint>

#include "support/Logging.hpp"

namespace pico
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any seed value is acceptable. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /**
     * Independent generator for one task of a parallel loop: tasks
     * must never share an Rng (data race, schedule-dependent
     * results), so each derives its own stream from the experiment
     * seed and its loop index. Deterministic in (seed, stream) and
     * independent of thread count or schedule.
     */
    static Rng
    forStream(uint64_t seed, uint64_t stream)
    {
        // Mix with distinct odd constants so streams of adjacent
        // indices land far apart in splitmix64's sequence.
        return Rng(seed ^ (0xd1342543de82ef95ULL * (stream + 1)));
    }

    /** Re-initialize the generator state from a seed. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 to spread an arbitrary seed over the full state.
        uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t result = rotl(state[1] * 5, 7) * 9;
        uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be positive. */
    uint64_t
    below(uint64_t bound)
    {
        panicIf(bound == 0, "Rng::below called with bound 0");
        // Rejection sampling to avoid modulo bias.
        uint64_t threshold = -bound % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        panicIf(lo > hi, "Rng::range called with lo > hi");
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool coin(double p) { return uniform() < p; }

    /**
     * Geometric-like positive integer with the given mean (>= 1).
     * Used for run lengths and trip counts.
     */
    uint64_t
    geometric(double mean)
    {
        panicIf(mean < 1.0, "Rng::geometric needs mean >= 1");
        if (mean == 1.0)
            return 1;
        double p = 1.0 / mean;
        uint64_t k = 1;
        while (!coin(p) && k < 100000)
            ++k;
        return k;
    }

    /**
     * Zipf-like integer in [0, n), exponent s > 1: indices are drawn
     * from a bounded Pareto with tail P(X > x) ~ x^(1-s), matching
     * the Zipf tail. Small indices are hot, so hot data is
     * contiguous — used to give synthetic data streams realistic
     * reuse skew.
     */
    uint64_t
    zipf(uint64_t n, double s)
    {
        panicIf(n == 0, "Rng::zipf called with n == 0");
        double alpha = std::max(s - 1.0, 0.05);
        double nf = static_cast<double>(n);
        double u = uniform();
        // Inverse CDF of the bounded Pareto on [1, n+1).
        double tail = std::pow(nf + 1.0, -alpha);
        double x = std::pow(1.0 - u * (1.0 - tail), -1.0 / alpha);
        auto idx = static_cast<uint64_t>(x) - 1;
        return idx < n ? idx : n - 1;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4];
};

} // namespace pico

#endif // PICO_SUPPORT_RANDOM_HPP
