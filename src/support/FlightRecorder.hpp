/**
 * @file
 * Crash flight recorder: the last N request lifecycle events, always
 * on, dumped as JSON on fatal(), SIGUSR1 or graceful drain.
 *
 * Tracing and metrics are opt-in, but a post-mortem of a chaos run
 * (or a production incident) must not depend on having had them
 * enabled. The flight recorder is the always-on fallback: a fixed
 * power-of-two ring of small fixed-size events — admit / shed /
 * start / deadline / fault / finish, each carrying a timestamp, the
 * request id and a short detail string — overwritten in FIFO order,
 * so the dump names the request ids involved in the most recent
 * trouble no matter what else was recording.
 *
 * Recording is lock-free and wait-free on the writer side: one
 * relaxed fetch_add claims a slot, and a per-slot sequence number
 * (even = stable, odd = being written; values derived from the claim
 * ticket so reuse is detectable) lets readers take a consistent
 * snapshot without ever blocking a writer. Event payloads live in
 * relaxed atomic words, so concurrent record/snapshot is data-race
 * free by construction; a torn event is detected via its sequence
 * number and skipped. (If a writer stalls for a full ring lap, one
 * garbled event can slip into a dump — an acceptable trade for a
 * recorder that may run inside a crash path.)
 */

#ifndef PICO_SUPPORT_FLIGHT_RECORDER_HPP
#define PICO_SUPPORT_FLIGHT_RECORDER_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pico::support
{

/** Process-global ring of recent request lifecycle events. */
class FlightRecorder
{
  public:
    /** Lifecycle stages worth naming in a post-mortem. */
    enum class EventKind : uint8_t
    {
        Admit = 0,    ///< accepted into the bounded queue
        Shed = 1,     ///< refused (watermark, drain, stranded)
        Start = 2,    ///< a worker began executing it
        Deadline = 3, ///< finished with deadline_exceeded
        Fault = 4,    ///< finished with failed (isolated error)
        Finish = 5,   ///< finished ok
        Drain = 6,    ///< service-wide drain marker (requestId 0)
    };

    /** One decoded event (stable snapshot copy). */
    struct Event
    {
        uint64_t tsNs = 0;
        uint64_t requestId = 0;
        EventKind kind = EventKind::Admit;
        /** Short reason/detail, truncated to fit the slot. */
        std::string detail;
    };

    /** Ring capacity (power of two; oldest events overwritten). */
    static constexpr size_t ringCapacity = 1024;
    /** Longest detail string a slot can hold. */
    static constexpr size_t maxDetailBytes = 40;

    static FlightRecorder &instance();

    /** Record one event (lock-free; detail truncated to fit). */
    void record(EventKind kind, uint64_t request_id,
                const char *detail = "");

    /** Events ever recorded (monotonic; ring holds the newest). */
    uint64_t recorded() const
    {
        return head_.load(std::memory_order_relaxed);
    }

    /**
     * Consistent copies of every stable slot, oldest first. Events
     * mid-write (or overwritten mid-copy) are skipped, never torn.
     */
    std::vector<Event> snapshot() const;

    /** The snapshot as a picoeval-flight-v1 JSON document. */
    std::string toJson() const;

    /**
     * Dump toJson() to a file. @return false (after a warn()) when
     * the file cannot be written.
     */
    bool dumpToFile(const std::string &path) const;

    /**
     * Reset the ring (test isolation only — not safe against
     * concurrent writers).
     */
    void resetForTest();

  private:
    FlightRecorder() = default;

    /** 64-bit words per slot: ts, request, kind, detail payload. */
    static constexpr size_t detailWords =
        maxDetailBytes / sizeof(uint64_t);

    struct Slot
    {
        /** 2*ticket+1 while writing, 2*ticket+2 when stable. */
        std::atomic<uint64_t> seq{0};
        std::atomic<uint64_t> tsNs{0};
        std::atomic<uint64_t> requestId{0};
        std::atomic<uint64_t> kindAndLen{0};
        std::array<std::atomic<uint64_t>, detailWords> detail{};
    };

    std::atomic<uint64_t> head_{0};
    std::array<Slot, ringCapacity> slots_{};
};

/** Wire/JSON spelling of an event kind. */
const char *flightEventName(FlightRecorder::EventKind kind);

} // namespace pico::support

#endif // PICO_SUPPORT_FLIGHT_RECORDER_HPP
