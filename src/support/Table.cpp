#include "support/Table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pico
{

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

void
TextTable::print(std::ostream &os) const
{
    // Compute column widths over header and all rows.
    std::vector<size_t> width;
    auto widen = [&width](const std::vector<std::string> &row) {
        if (row.size() > width.size())
            width.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    auto emit = [&os, &width](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << (i ? "  " : "") << std::left
               << std::setw(static_cast<int>(width[i])) << row[i];
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < width.size(); ++i)
            total += width[i] + (i ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            os << (i ? "," : "") << row[i];
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

} // namespace pico
