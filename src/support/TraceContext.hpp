/**
 * @file
 * Request-scoped trace context: which request is this thread
 * working for, and under which span?
 *
 * The serving layer multiplexes many concurrent requests over a few
 * worker threads, so a per-thread trace track alone cannot say which
 * request a span or metric belongs to. A TraceContext carries the
 * two identifiers that make attribution possible:
 *
 *  - requestId: allocated once per request at admission, threaded
 *    through queues and thread pools with the work itself;
 *  - spanId: the innermost open span on this thread, so a span
 *    opened below it records that span as its parent — across
 *    threads, one request reconstructs as a single connected tree.
 *
 * The context is *thread-local and observational*: installing or
 * reading it never feeds back into evaluation results, so the
 * bit-identical determinism contract of the parallel walk is
 * untouched. Propagation is push-based: whoever hands work to
 * another thread (ThreadPool::submit, the eval service's task queue)
 * captures currentTraceContext() and installs it around the work
 * with a TraceContextScope.
 */

#ifndef PICO_SUPPORT_TRACE_CONTEXT_HPP
#define PICO_SUPPORT_TRACE_CONTEXT_HPP

#include <cstdint>

namespace pico::support
{

/** Identity of the request a thread is currently attributed to. */
struct TraceContext
{
    /** Request this work belongs to (0 = unattributed). */
    uint64_t requestId = 0;
    /** Innermost open span (the parent of spans opened below). */
    uint64_t spanId = 0;

    bool active() const { return requestId != 0; }
};

/** The calling thread's context ({0,0} when unattributed). */
const TraceContext &currentTraceContext();

/** Allocate a process-unique request id (monotonic, never 0). */
uint64_t newRequestId();

/** Allocate a process-unique span id (monotonic, never 0). */
uint64_t newSpanId();

namespace detail
{
/** Replace the thread's context wholesale; returns the previous. */
TraceContext exchangeTraceContext(const TraceContext &ctx);
/** Rewrite only the span-parent field of the thread's context. */
void setCurrentSpanId(uint64_t span_id);
} // namespace detail

/**
 * RAII: install `ctx` as the calling thread's context for one scope
 * and restore the previous context on exit. Install one around any
 * work executed on behalf of another thread's request.
 */
class TraceContextScope
{
  public:
    explicit TraceContextScope(const TraceContext &ctx)
        : saved_(detail::exchangeTraceContext(ctx))
    {}

    ~TraceContextScope() { detail::exchangeTraceContext(saved_); }

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    TraceContext saved_;
};

} // namespace pico::support

#endif // PICO_SUPPORT_TRACE_CONTEXT_HPP
