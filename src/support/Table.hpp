/**
 * @file
 * Plain-text table formatting for benchmark and experiment output.
 *
 * The benchmark harness reproduces the paper's tables; TextTable keeps
 * that output aligned and readable without dragging in a formatting
 * dependency.
 */

#ifndef PICO_SUPPORT_TABLE_HPP
#define PICO_SUPPORT_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace pico
{

/** Column-aligned plain text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append one data row; it may be ragged relative to the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Render the table to the stream. */
    void print(std::ostream &os) const;

    /** Render the table as comma-separated values. */
    void printCsv(std::ostream &os) const;

    size_t rows() const { return rows_.size(); }

    /** Read access for machine-readable exports (bench JSON). */
    const std::string &title() const { return title_; }
    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &rowData() const
    {
        return rows_;
    }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pico

#endif // PICO_SUPPORT_TABLE_HPP
