#include "support/SchedulePerturb.hpp"

#include <chrono>
#include <thread>

namespace pico::support
{

namespace detail
{
std::atomic<bool> perturbOn{false};
} // namespace detail

namespace
{

std::atomic<uint64_t> perturbSeed{0};
std::atomic<uint64_t> arrivals{0};
std::atomic<uint64_t> decisions{0};

/** FNV-1a over the point name: stable per-point stream offset. */
uint64_t
hashPoint(const char *point)
{
    uint64_t h = 1469598103934665603ull;
    for (const char *p = point; *p != '\0'; ++p) {
        h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p));
        h *= 1099511628211ull;
    }
    return h;
}

/** splitmix64 finalizer: cheap, well-mixed, seedable. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

namespace detail
{

void
perturbSlow(const char *point)
{
    uint64_t n = arrivals.fetch_add(1, std::memory_order_relaxed);
    uint64_t r = mix(perturbSeed.load(std::memory_order_relaxed) ^
                     hashPoint(point) ^ (n * 0x2545f4914f6cdd1dull));
    // ~1/4 of arrivals yield, ~1/16 additionally sleep 1-64 us: the
    // sleep is long enough to let a blocked peer win the race being
    // perturbed, short enough that a 64-seed sweep stays fast.
    uint64_t bucket = r & 0xf;
    if (bucket < 4) {
        decisions.fetch_add(1, std::memory_order_relaxed);
        if (bucket == 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(1 + ((r >> 8) & 63)));
        } else {
            std::this_thread::yield();
        }
    }
}

} // namespace detail

void
armSchedulePerturb(uint64_t seed)
{
    perturbSeed.store(seed, std::memory_order_relaxed);
    arrivals.store(0, std::memory_order_relaxed);
    decisions.store(0, std::memory_order_relaxed);
    detail::perturbOn.store(true, std::memory_order_relaxed);
}

void
disarmSchedulePerturb()
{
    detail::perturbOn.store(false, std::memory_order_relaxed);
}

bool
schedulePerturbArmed()
{
    return detail::perturbOn.load(std::memory_order_relaxed);
}

uint64_t
perturbCount()
{
    return decisions.load(std::memory_order_relaxed);
}

} // namespace pico::support
