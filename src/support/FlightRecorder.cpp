#include "support/FlightRecorder.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "support/Logging.hpp"
#include "support/Metrics.hpp"

namespace pico::support
{

const char *
flightEventName(FlightRecorder::EventKind kind)
{
    switch (kind) {
    case FlightRecorder::EventKind::Admit:
        return "admit";
    case FlightRecorder::EventKind::Shed:
        return "shed";
    case FlightRecorder::EventKind::Start:
        return "start";
    case FlightRecorder::EventKind::Deadline:
        return "deadline";
    case FlightRecorder::EventKind::Fault:
        return "fault";
    case FlightRecorder::EventKind::Finish:
        return "finish";
    case FlightRecorder::EventKind::Drain:
        return "drain";
    }
    return "unknown";
}

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::record(EventKind kind, uint64_t request_id,
                       const char *detail)
{
    uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[ticket % ringCapacity];

    // Seqlock write protocol: odd while writing, even when stable.
    // Values are derived from the ticket, so a reader that raced a
    // ring lap sees a *different* even value and discards its copy.
    slot.seq.store(2 * ticket + 1, std::memory_order_release);
    slot.tsNs.store(monotonicNowNs(), std::memory_order_relaxed);
    slot.requestId.store(request_id, std::memory_order_relaxed);

    size_t len = detail != nullptr
                     ? std::min(std::strlen(detail), maxDetailBytes)
                     : 0;
    slot.kindAndLen.store(static_cast<uint64_t>(kind) |
                              (static_cast<uint64_t>(len) << 8),
                          std::memory_order_relaxed);
    for (size_t w = 0; w < detailWords; ++w) {
        uint64_t word = 0;
        for (size_t b = 0; b < sizeof(uint64_t); ++b) {
            size_t i = w * sizeof(uint64_t) + b;
            if (i < len)
                word |= static_cast<uint64_t>(
                            static_cast<unsigned char>(detail[i]))
                        << (8 * b);
        }
        slot.detail[w].store(word, std::memory_order_relaxed);
    }
    slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<FlightRecorder::Event>
FlightRecorder::snapshot() const
{
    std::vector<Event> out;
    out.reserve(ringCapacity);
    for (const Slot &slot : slots_) {
        uint64_t before = slot.seq.load(std::memory_order_acquire);
        if (before == 0 || (before & 1) != 0)
            continue; // never written, or mid-write
        Event e;
        e.tsNs = slot.tsNs.load(std::memory_order_relaxed);
        e.requestId =
            slot.requestId.load(std::memory_order_relaxed);
        uint64_t kl = slot.kindAndLen.load(std::memory_order_relaxed);
        e.kind = static_cast<EventKind>(kl & 0xff);
        size_t len = std::min<size_t>((kl >> 8) & 0xff,
                                      maxDetailBytes);
        char buf[maxDetailBytes];
        for (size_t w = 0; w < detailWords; ++w) {
            uint64_t word =
                slot.detail[w].load(std::memory_order_relaxed);
            for (size_t b = 0; b < sizeof(uint64_t); ++b)
                buf[w * sizeof(uint64_t) + b] =
                    static_cast<char>((word >> (8 * b)) & 0xff);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        uint64_t after = slot.seq.load(std::memory_order_acquire);
        if (after != before)
            continue; // overwritten while copying
        e.detail.assign(buf, len);
        out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const Event &a, const Event &b) {
                  return a.tsNs < b.tsNs;
              });
    return out;
}

std::string
FlightRecorder::toJson() const
{
    auto events = snapshot();
    std::string out;
    out.reserve(events.size() * 96 + 128);
    out += "{\"schema\":\"picoeval-flight-v1\",\"capacity\":";
    out += std::to_string(ringCapacity);
    out += ",\"recorded\":";
    out += std::to_string(recorded());
    out += ",\"events\":[";
    bool first = true;
    for (const Event &e : events) {
        if (!first)
            out += ",";
        first = false;
        out += "\n{\"ts_ns\":";
        out += std::to_string(e.tsNs);
        out += ",\"request\":";
        out += std::to_string(e.requestId);
        out += ",\"kind\":\"";
        out += flightEventName(e.kind);
        out += "\",\"detail\":\"";
        out += jsonEscape(e.detail);
        out += "\"}";
    }
    out += "\n]}\n";
    return out;
}

bool
FlightRecorder::dumpToFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot write flight-recorder dump '", path, "'");
        return false;
    }
    out << toJson();
    out.flush();
    if (!out) {
        warn("writing flight-recorder dump '", path, "' failed");
        return false;
    }
    return true;
}

void
FlightRecorder::resetForTest()
{
    head_.store(0, std::memory_order_relaxed);
    for (Slot &slot : slots_)
        slot.seq.store(0, std::memory_order_relaxed);
}

} // namespace pico::support
