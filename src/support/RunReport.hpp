/**
 * @file
 * Machine-readable run report: one JSON document per exploration.
 *
 * A run report bundles everything a later reader needs to interpret
 * (or regress against) one walk: the configuration that produced it,
 * the build identity (git describe, baked in at configure time), and
 * a full metrics snapshot — per-phase wall times, evaluation-cache
 * hit/miss counts, per-line-size sweep statistics.
 *
 * The document is deterministic in *structure*: keys are sorted and
 * formatting is fixed, so two reports over identical metric values
 * are byte-identical (wall-clock timings naturally differ between
 * runs; everything else must not).
 */

#ifndef PICO_SUPPORT_RUN_REPORT_HPP
#define PICO_SUPPORT_RUN_REPORT_HPP

#include <cstdint>
#include <map>
#include <string>

#include "support/Metrics.hpp"

namespace pico::support
{

/** `git describe` of this build ("unknown" outside a git checkout). */
std::string buildVersion();

/** Collects run configuration and serializes it with a snapshot. */
class RunReport
{
  public:
    /** Schema tag written into every report. */
    static constexpr const char *schema = "picoeval-run-report-v1";

    /** Attach one configuration fact (shown under "info"). */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, uint64_t value);
    void set(const std::string &key, double value);

    /**
     * Render the report around the given metrics snapshot.
     * Deterministic: sorted keys, fixed formatting.
     */
    std::string toJson(const MetricsSnapshot &snapshot) const;

    /** toJson() over a fresh snapshot of the global registry. */
    std::string toJson() const;

    /**
     * Write the report to a file.
     * @return false (after a warn()) when the file cannot be written
     */
    bool write(const std::string &path) const;

  private:
    std::map<std::string, std::string> info_;
};

} // namespace pico::support

#endif // PICO_SUPPORT_RUN_REPORT_HPP
