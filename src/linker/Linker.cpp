#include "linker/Linker.hpp"

#include <algorithm>
#include <numeric>

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::linker
{

double
textDilation(const LinkedBinary &target, const LinkedBinary &reference)
{
    fatalIf(reference.textSize() == 0, "reference binary has no text");
    return static_cast<double>(target.textSize()) /
           static_cast<double>(reference.textSize());
}

LinkedBinary
Linker::link(const isa::ObjectFile &object) const
{
    fatalIf(object.functions.empty(), "linking an empty object");
    fatalIf(!isPowerOfTwo(object.fetchPacketBytes),
            "fetch packet must be a power of two");

    LinkedBinary bin(object.machineName, object.fetchPacketBytes);

    // Inter-procedural layout: hottest functions first so functions
    // that execute together sit near each other.
    std::vector<size_t> order(object.functions.size());
    std::iota(order.begin(), order.end(), 0);
    if (options_.profileGuidedLayout) {
        std::stable_sort(order.begin(), order.end(),
                         [&object](size_t a, size_t b) {
                             return object.functions[a].callCount >
                                    object.functions[b].callCount;
                         });
    }

    std::vector<std::vector<PlacedBlock>> placed(
        object.functions.size());

    uint64_t cursor = LinkedBinary::textBase;
    for (size_t fi : order) {
        const auto &func = object.functions[fi];
        // Function entries are always fetch-packet aligned.
        cursor = alignUp(cursor, object.fetchPacketBytes);
        auto &blocks = placed[fi];
        blocks.resize(func.blocks.size());
        for (size_t bi = 0; bi < func.blocks.size(); ++bi) {
            const auto &oblk = func.blocks[bi];
            if (options_.alignBranchTargets && oblk.isBranchTarget)
                cursor = alignUp(cursor, object.fetchPacketBytes);
            blocks[bi].startAddr = cursor;
            blocks[bi].sizeBytes = oblk.sizeBytes;
            cursor += oblk.sizeBytes;
        }
    }

    bin.setPlacement(std::move(placed));
    bin.setTextSize(cursor - LinkedBinary::textBase);
    return bin;
}

} // namespace pico::linker
