/**
 * @file
 * Final executable image layout: placed blocks with addresses.
 */

#ifndef PICO_LINKER_LINKED_BINARY_HPP
#define PICO_LINKER_LINKED_BINARY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "support/Logging.hpp"

namespace pico::linker
{

/** One basic block placed in the text segment. */
struct PlacedBlock
{
    uint64_t startAddr = 0;
    uint32_t sizeBytes = 0;
};

/**
 * A linked executable for one application/machine pair: every basic
 * block has a final address, and the total text size is known. The
 * ratio of text sizes between two LinkedBinaries for the same
 * application is the paper's dilation coefficient.
 */
class LinkedBinary
{
  public:
    /** Base byte address of the text segment; a multiple of every
     *  feasible (power-of-two) line size, as Lemma 1 requires. */
    static constexpr uint64_t textBase = 0x01000000ULL;

    /** Empty binary; placeholder until assigned from Linker::link. */
    LinkedBinary() = default;

    LinkedBinary(std::string machine_name, uint32_t packet_bytes)
        : machineName_(std::move(machine_name)),
          fetchPacketBytes_(packet_bytes)
    {}

    /** Machine the binary was produced for. */
    const std::string &machineName() const { return machineName_; }

    uint32_t fetchPacketBytes() const { return fetchPacketBytes_; }

    /** Placement of a block. */
    const PlacedBlock &
    block(uint32_t func, uint32_t blk) const
    {
        return placed_.at(func).at(blk);
    }

    size_t numFunctions() const { return placed_.size(); }

    size_t
    numBlocks(uint32_t func) const
    {
        return placed_.at(func).size();
    }

    /** Total text size in bytes, including alignment padding. */
    uint64_t textSize() const { return textSize_; }

    /** @name Mutators used by the Linker. */
    /// @{
    void
    setPlacement(std::vector<std::vector<PlacedBlock>> placed)
    {
        placed_ = std::move(placed);
    }

    void setTextSize(uint64_t size) { textSize_ = size; }
    /// @}

  private:
    std::string machineName_;
    uint32_t fetchPacketBytes_ = 4;
    std::vector<std::vector<PlacedBlock>> placed_;
    uint64_t textSize_ = 0;
};

/**
 * Text dilation of a binary with respect to a reference binary
 * (section 4.1): the ratio of the overall text sizes.
 */
double textDilation(const LinkedBinary &target,
                    const LinkedBinary &reference);

} // namespace pico::linker

#endif // PICO_LINKER_LINKED_BINARY_HPP
