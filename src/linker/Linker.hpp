/**
 * @file
 * Linker: inter-procedural layout, alignment, address assignment.
 *
 * The linker orders functions by dynamic call frequency (hot
 * functions adjacent, improving spatial locality, as in the paper's
 * profile-driven inter-procedural layout), aligns branch-target
 * blocks to fetch-packet boundaries to avoid fetch stalls, and
 * assigns final addresses.
 */

#ifndef PICO_LINKER_LINKER_HPP
#define PICO_LINKER_LINKER_HPP

#include "isa/ObjectFile.hpp"
#include "linker/LinkedBinary.hpp"

namespace pico::linker
{

/** Layout policy knobs. */
struct LinkerOptions
{
    /** Order functions by descending dynamic call count. */
    bool profileGuidedLayout = true;
    /** Align branch targets to fetch-packet boundaries. */
    bool alignBranchTargets = true;
};

/** Produces a LinkedBinary from a relocatable ObjectFile. */
class Linker
{
  public:
    explicit Linker(LinkerOptions options = {}) : options_(options) {}

    /**
     * Link one object file.
     * @param object assembler output
     * @return executable image with final block addresses
     */
    LinkedBinary link(const isa::ObjectFile &object) const;

  private:
    LinkerOptions options_;
};

} // namespace pico::linker

#endif // PICO_LINKER_LINKER_HPP
