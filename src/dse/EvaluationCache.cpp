#include "dse/EvaluationCache.hpp"

#include <fstream>
#include <sstream>

#include "support/Logging.hpp"

namespace pico::dse
{

EvaluationCache::EvaluationCache(std::string path)
    : path_(std::move(path))
{
    if (!path_.empty())
        load();
}

EvaluationCache::~EvaluationCache()
{
    if (!path_.empty())
        save();
}

std::vector<double>
EvaluationCache::getOrCompute(
    const std::string &key,
    const std::function<std::vector<double>()> &compute)
{
    auto it = table_.find(key);
    if (it != table_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    auto values = compute();
    store(key, values);
    return values;
}

bool
EvaluationCache::lookup(const std::string &key,
                        std::vector<double> &values) const
{
    auto it = table_.find(key);
    if (it == table_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    values = it->second;
    return true;
}

void
EvaluationCache::store(const std::string &key,
                       std::vector<double> values)
{
    fatalIf(key.find('|') != std::string::npos ||
                key.find('\n') != std::string::npos,
            "evaluation-cache key contains reserved characters");
    table_[key] = std::move(values);
}

void
EvaluationCache::save() const
{
    if (path_.empty())
        return;
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
        warn("cannot write evaluation cache '", path_, "'");
        return;
    }
    out.precision(17);
    for (const auto &[key, values] : table_) {
        out << key << '|';
        for (size_t i = 0; i < values.size(); ++i)
            out << (i ? "," : "") << values[i];
        out << '\n';
    }
}

void
EvaluationCache::load()
{
    std::ifstream in(path_);
    if (!in)
        return; // first run; the file appears on save()
    std::string line;
    while (std::getline(in, line)) {
        auto bar = line.find('|');
        if (bar == std::string::npos)
            continue;
        std::string key = line.substr(0, bar);
        std::vector<double> values;
        std::stringstream ss(line.substr(bar + 1));
        std::string item;
        while (std::getline(ss, item, ','))
            values.push_back(std::stod(item));
        table_[key] = std::move(values);
    }
}

} // namespace pico::dse
