#include "dse/EvaluationCache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "support/FaultInjection.hpp"
#include "support/Logging.hpp"
#include "support/Metrics.hpp"
#include "support/SchedulePerturb.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace pico::dse
{

namespace
{

/**
 * Parse the value list of one database line. Returns false (leaving
 * `values` unspecified) on any malformed number, so a corrupt entry
 * quarantines instead of throwing std::invalid_argument through the
 * loader.
 */
bool
parseValues(const std::string &text, std::vector<double> &values)
{
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        try {
            size_t pos = 0;
            double v = std::stod(item, &pos);
            if (pos != item.size())
                return false; // trailing junk in the number
            values.push_back(v);
        } catch (const std::exception &) {
            return false; // std::invalid_argument / out_of_range
        }
    }
    return true;
}

/** Force file contents to stable storage (best effort). */
void
syncFile(const std::string &path)
{
#if defined(__unix__) || defined(__APPLE__)
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#else
    (void)path;
#endif
}

} // namespace

EvaluationCache::EvaluationCache(std::string path)
    : path_(std::move(path))
{
    if (!path_.empty())
        load();
}

EvaluationCache::~EvaluationCache()
{
    // Persistence during unwind is best-effort only: the database is
    // a cache, and throwing from a destructor would terminate.
    try {
        flush();
    } catch (const std::exception &e) {
        warn("evaluation cache '", path_,
             "' flush failed during unwind: ", e.what());
    } catch (...) {
        warn("evaluation cache '", path_,
             "' flush failed during unwind");
    }
}

namespace
{

/**
 * Per-shard registry counters, resolved once per process. The names
 * are global (not per cache instance): the process-level question is
 * "how did the striped table behave", aggregated over every cache.
 */
support::Counter &
shardMetricCounter(const char *what, size_t index)
{
    using CounterArray =
        std::array<support::Counter *, EvaluationCache::shardCount>;
    auto build = [](const char *suffix) {
        CounterArray a{};
        for (size_t k = 0; k < EvaluationCache::shardCount; ++k) {
            char name[64];
            std::snprintf(name, sizeof(name),
                          "evalcache.shard%02zu.%s", k, suffix);
            a[k] = &support::metrics().counter(name);
        }
        return a;
    };
    static CounterArray hits = build("hits");
    static CounterArray misses = build("misses");
    static CounterArray stores = build("stores");
    if (std::string_view(what) == "hits")
        return *hits[index];
    if (std::string_view(what) == "misses")
        return *misses[index];
    return *stores[index];
}

} // namespace

size_t
EvaluationCache::shardIndexOf(const std::string &key) const
{
    return std::hash<std::string>{}(key) % shardCount;
}

EvaluationCache::Shard &
EvaluationCache::shardFor(const std::string &key)
{
    return shards_[shardIndexOf(key)];
}

const EvaluationCache::Shard &
EvaluationCache::shardFor(const std::string &key) const
{
    return shards_[shardIndexOf(key)];
}

void
EvaluationCache::recordHit(size_t shard_index, bool from_disk) const
{
    ++hits_;
    if (from_disk)
        ++diskHits_;
    shardHits_[shard_index].fetch_add(1, std::memory_order_relaxed);
    if (support::metricsEnabled())
        shardMetricCounter("hits", shard_index).add(1);
}

void
EvaluationCache::recordMiss(size_t shard_index) const
{
    ++misses_;
    shardMisses_[shard_index].fetch_add(1,
                                        std::memory_order_relaxed);
    if (support::metricsEnabled())
        shardMetricCounter("misses", shard_index).add(1);
}

std::vector<double>
EvaluationCache::getOrCompute(
    const std::string &key,
    const std::function<std::vector<double>()> &compute)
{
    size_t index = shardIndexOf(key);
    auto &shard = shards_[index];
    std::shared_ptr<Inflight> flight;
    bool leader = false;
    {
        support::MutexLock lock(shard.shardMutex);
        auto it = shard.table.find(key);
        if (it != shard.table.end()) {
            recordHit(index, it->second.fromDisk);
            return it->second.values;
        }
        auto fit = shard.inflight.find(key);
        if (fit != shard.inflight.end()) {
            flight = fit->second;
        } else {
            flight = std::make_shared<Inflight>();
            shard.inflight.emplace(key, flight);
            leader = true;
        }
    }
    recordMiss(index);

    if (!leader) {
        // Single-flight follower: another thread is computing this
        // key right now (a retried idempotent request). Wait for its
        // result instead of duplicating the work.
        support::perturbPoint("evalcache.follower");
        support::MutexLock lock(flight->inflightMutex);
        while (!flight->done)
            flight->cv.wait(lock.native());
        if (flight->error)
            std::rethrow_exception(flight->error);
        return flight->values;
    }

    // Single-flight leader. Compute outside every lock: evaluating a
    // machine takes seconds, and holding a shard mutex through it
    // would serialize every other key that hashes to the same shard.
    std::vector<double> values;
    std::exception_ptr error;
    support::perturbPoint("evalcache.leader");
    try {
        values = compute();
        ++computed_;
        // Store before releasing the in-flight slot, so a racer
        // always finds either the slot or the stored entry — a
        // successful key is computed at most once, ever.
        store(key, values);
    } catch (...) {
        error = std::current_exception();
    }
    {
        support::MutexLock lock(shard.shardMutex);
        shard.inflight.erase(key);
    }
    support::perturbPoint("evalcache.publish");
    {
        support::MutexLock lock(flight->inflightMutex);
        flight->done = true;
        flight->values = values;
        flight->error = error;
    }
    flight->cv.notify_all();
    if (error)
        std::rethrow_exception(error);
    return values;
}

bool
EvaluationCache::lookup(const std::string &key,
                        std::vector<double> &values) const
{
    size_t index = shardIndexOf(key);
    const auto &shard = shards_[index];
    support::MutexLock lock(shard.shardMutex);
    auto it = shard.table.find(key);
    if (it == shard.table.end()) {
        recordMiss(index);
        return false;
    }
    recordHit(index, it->second.fromDisk);
    values = it->second.values;
    return true;
}

void
EvaluationCache::store(const std::string &key,
                       std::vector<double> values)
{
    fatalIf(key.find('|') != std::string::npos ||
                key.find('\n') != std::string::npos,
            "evaluation-cache key contains reserved characters");
    size_t index = shardIndexOf(key);
    auto &shard = shards_[index];
    {
        support::MutexLock lock(shard.shardMutex);
        // An overwrite counts as this run's work from here on.
        shard.table[key] = Entry{std::move(values), false};
    }
    ++stores_;
    if (support::metricsEnabled())
        shardMetricCounter("stores", index).add(1);
    dirty_.store(true, std::memory_order_release);
}

EvaluationCache::Stats
EvaluationCache::stats() const
{
    Stats s;
    s.hits = hits_.load();
    s.misses = misses_.load();
    s.diskHits = diskHits_.load();
    s.memoryHits = s.hits - s.diskHits;
    s.computed = computed_.load();
    s.stores = stores_.load();
    s.flushes = flushes_.load();
    s.saves = saves_.load();
    s.loadedEntries = loadedEntries_;
    s.quarantinedEntries = quarantinedEntries_;
    return s;
}

std::array<EvaluationCache::ShardStats, EvaluationCache::shardCount>
EvaluationCache::shardStats() const
{
    std::array<ShardStats, shardCount> out{};
    for (size_t k = 0; k < shardCount; ++k) {
        out[k].hits =
            shardHits_[k].load(std::memory_order_relaxed);
        out[k].misses =
            shardMisses_[k].load(std::memory_order_relaxed);
    }
    return out;
}

size_t
EvaluationCache::size() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        support::MutexLock lock(shard.shardMutex);
        total += shard.table.size();
    }
    return total;
}

void
EvaluationCache::save() const
{
    support::MutexLock lock(flushMutex_);
    saveLocked();
}

void
EvaluationCache::saveLocked() const
{
    if (path_.empty())
        return;
    support::perturbPoint("evalcache.flush");
    support::faultPoint("EvaluationCache::save:before-write");

    // Clear the dirty flag *before* snapshotting, and restore it on
    // every failure path. A store() racing with this save marks the
    // cache dirty again on its own; clearing the flag *after* the
    // write instead would clobber that mark and strand the racing
    // entry in memory forever (it is not in the snapshot just
    // written, and no later flush would see anything to do).
    dirty_.store(false, std::memory_order_release);
    try {
        // Snapshot every shard, then write in sorted key order: the
        // database bytes are a pure function of the cache
        // *contents*, independent of thread count, schedule, or
        // insertion order.
        std::vector<std::pair<std::string, std::vector<double>>>
            entries;
        for (const auto &shard : shards_) {
            support::MutexLock shardLock(shard.shardMutex);
            // Hash-order visit is safe here: entries are sorted
            // below before a single byte is written.
            // picoeval-lint: allow(nondet-iteration)
            for (const auto &[key, entry] : shard.table)
                entries.emplace_back(key, entry.values);
        }
        std::sort(entries.begin(), entries.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });

        // Atomic-rename protocol: never truncate the live database.
        // A crash at any point leaves either the old generation (tmp
        // file ignored by load()) or the new one.
        std::string tmp = path_ + ".tmp";
        {
            std::ofstream out(tmp, std::ios::trunc);
            if (!out) {
                warn("cannot write evaluation cache '", tmp, "'");
                dirty_.store(true, std::memory_order_release);
                return;
            }
            out.precision(17);
            out << header << '\n';
            for (const auto &[key, values] : entries) {
                out << key << '|';
                for (size_t i = 0; i < values.size(); ++i)
                    out << (i ? "," : "") << values[i];
                out << '\n';
            }
            out.flush();
            if (!out) {
                warn("writing evaluation cache '", tmp,
                     "' failed; previous generation kept");
                out.close();
                std::error_code ec;
                std::filesystem::remove(tmp, ec);
                dirty_.store(true, std::memory_order_release);
                return;
            }
        }
        syncFile(tmp);
        support::faultPoint("EvaluationCache::save:before-rename");
        std::error_code ec;
        std::filesystem::rename(tmp, path_, ec);
        if (ec) {
            warn("cannot replace evaluation cache '", path_,
                 "': ", ec.message(), "; previous generation kept");
            std::filesystem::remove(tmp, ec);
            dirty_.store(true, std::memory_order_release);
            return;
        }
        ++saves_;
        PICO_METRIC_COUNT("evalcache.saves", 1);
    } catch (...) {
        dirty_.store(true, std::memory_order_release);
        throw;
    }
}

void
EvaluationCache::flush()
{
    // One writer at a time: unsynchronized flush() from a
    // checkpointing thread and the destructor used to run the
    // tmp-write/rename protocol concurrently against the same tmp
    // path (torn tmp file, double rename). The dirty check happens
    // under the same mutex so a concurrent flush that already
    // committed the batch makes this one a no-op.
    support::MutexLock lock(flushMutex_);
    if (dirty_.load(std::memory_order_acquire)) {
        ++flushes_;
        PICO_METRIC_COUNT("evalcache.flushes", 1);
        saveLocked();
    }
}

void
EvaluationCache::load()
{
    std::error_code ec;
    if (std::filesystem::exists(path_ + ".tmp", ec))
        warn("evaluation cache '", path_,
             "': stale temporary from an interrupted save ignored");

    std::ifstream in(path_);
    if (!in)
        return; // first run; the file appears on save()
    std::string line;
    bool first = true;
    uint64_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        // v3/v2 files start with a version header; headerless v1
        // files begin directly with entries. A v2 database is fully
        // usable: classic-space keys are byte-identical across the
        // bump, and extended-axis keys simply miss (they carry the
        // `;r.*;w.*` suffix no v2 run ever wrote).
        if (first) {
            first = false;
            if (line == header || line == headerV2)
                continue;
        }
        if (line.empty())
            continue;
        auto bar = line.find('|');
        std::vector<double> values;
        if (bar == std::string::npos || bar == 0 ||
            !parseValues(line.substr(bar + 1), values)) {
            ++quarantinedEntries_;
            continue;
        }
        auto key = line.substr(0, bar);
        // load() runs from the constructor, before the cache is
        // shared — but taking the shard lock keeps the analysis
        // sound and costs one uncontended acquisition per entry.
        auto &shard = shardFor(key);
        {
            support::MutexLock lock(shard.shardMutex);
            shard.table[key] = Entry{std::move(values), true};
        }
        ++loadedEntries_;
    }
    PICO_METRIC_COUNT("evalcache.loaded", loadedEntries_);
    PICO_METRIC_COUNT("evalcache.quarantined", quarantinedEntries_);
    if (quarantinedEntries_ > 0)
        warn("evaluation cache '", path_, "': salvaged ",
             loadedEntries_, " entr(ies), quarantined ",
             quarantinedEntries_, " corrupt line(s)");
}

} // namespace pico::dse
