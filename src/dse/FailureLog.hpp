/**
 * @file
 * Per-design failure accounting for design-space walks.
 *
 * One infeasible or failing design must not destroy a walk that
 * evaluates thousands of others: the walkers catch per-design
 * errors, record them here (design name, pipeline stage, reason)
 * and keep going. Callers inspect the log afterwards to decide
 * whether the exploration was complete.
 */

#ifndef PICO_DSE_FAILURE_LOG_HPP
#define PICO_DSE_FAILURE_LOG_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace pico::dse
{

/** One recorded per-design failure. */
struct FailureRecord
{
    /** Design identifier (machine name, cache config id, ...). */
    std::string design;
    /** Pipeline stage that failed (e.g. "metrics", "compose"). */
    std::string stage;
    /** The underlying error message. */
    std::string reason;
};

/** Append-only log of per-design failures in one exploration. */
class FailureLog
{
  public:
    /** Record one failure (also warn()s so long runs show it live). */
    void record(std::string design, std::string stage,
                std::string reason);

    /**
     * Splice another log's entries onto this one *without*
     * re-warning (they warned when first recorded). The parallel
     * walkers give every task its own log and append them in design
     * order afterwards, so the merged ordering is independent of
     * the execution schedule.
     */
    void append(const FailureLog &other);

    const std::vector<FailureRecord> &entries() const
    {
        return entries_;
    }
    bool empty() const { return entries_.empty(); }
    size_t size() const { return entries_.size(); }

    /** Multi-line human-readable report ("" when empty). */
    std::string report() const;

  private:
    std::vector<FailureRecord> entries_;
};

} // namespace pico::dse

#endif // PICO_DSE_FAILURE_LOG_HPP
