/**
 * @file
 * Memory walker and system spacewalker (paper sections 3.2 and 5).
 *
 * The MemoryWalker owns the three cache-subsystem evaluators and
 * composes inclusion-feasible hierarchies; thanks to the additive
 * stall model, the hierarchy Pareto set is built from the product of
 * the subsystem Pareto sets.
 *
 * The Spacewalker drives the whole exploration for one application:
 * it compiles the program for every machine in the processor space,
 * measures each machine's text dilation against the reference
 * processor, simulates the caches *once* on the reference traces,
 * and produces processor, memory and complete-system Pareto sets.
 */

#ifndef PICO_DSE_SPACEWALKER_HPP
#define PICO_DSE_SPACEWALKER_HPP

#include <map>
#include <string>
#include <vector>

#include "dse/EvaluationCache.hpp"
#include "dse/Evaluators.hpp"
#include "dse/FailureLog.hpp"
#include "dse/Pareto.hpp"
#include "ir/Program.hpp"
#include "machine/MachineDesc.hpp"
#include "support/ThreadPool.hpp"
#include "verify/Diagnostics.hpp"

namespace pico::dse
{

/** The three cache subspaces of a memory-hierarchy exploration. */
struct MemorySpaces
{
    CacheSpace icache = CacheSpace::defaultL1Space();
    CacheSpace dcache = CacheSpace::defaultL1Space();
    CacheSpace ucache = CacheSpace::defaultL2Space();
};

/** Latency parameters of the additive stall model. */
struct StallModel
{
    double l2HitLatency = 10.0;
    double memoryLatency = 80.0;
    /**
     * Stall cycles per memory write (dirty-line writeback or store
     * write-through). The default 0 keeps the classic read-only
     * stall model bit-identical; write traffic only differentiates
     * designs when this is set and the spaces enable policy axes.
     */
    double writeCost = 0.0;
};

/**
 * EvaluationCache key of one machine's per-design metrics within one
 * walk. The key embeds everything the cached value vector depends
 * on: program identity, machine, the data-cache port axis — and,
 * when any cache space extends the policy axes, the replacement/
 * write-policy axes, so entries cached by a classic LRU walk are
 * never served to an extended walk (or vice versa). Classic-space
 * keys are byte-identical to the historical schema, so old caches
 * keep hitting.
 */
std::string procMetricsKey(const std::string &prog_name,
                           uint64_t seed,
                           const std::string &machine_name,
                           const MemorySpaces &spaces);

/** Walks the memory design space for one reference trace set. */
class MemoryWalker
{
  public:
    MemoryWalker(MemorySpaces spaces, StallModel stalls,
                 uint64_t i_granule = core::defaultIGranule,
                 uint64_t u_granule = core::defaultUGranule);

    /**
     * Evaluate all three subsystems from reference traces, one pass
     * each. With a thread pool attached, the per-line-size Cheetah
     * sweeps of each subsystem run concurrently. A cancel token
     * aborts mid-pass with CancelledError; the walker is then only
     * partially evaluated and must be discarded.
     */
    void evaluate(const TraceSource &instr_trace,
                  const TraceSource &data_trace,
                  const TraceSource &unified_trace,
                  const support::CancelToken *cancel = nullptr);

    /**
     * Attach (or detach, with nullptr) the pool used by evaluate()
     * and pareto(). The walker never owns the pool; results are
     * identical with and without one.
     */
    void setThreadPool(support::ThreadPool *pool) { pool_ = pool; }

    /** Stall cycles of one hierarchy at one dilation. */
    double stallCycles(const cache::CacheConfig &icache,
                       const cache::CacheConfig &dcache,
                       const cache::CacheConfig &ucache,
                       double dilation) const;

    /**
     * Pareto set of hierarchies at one dilation: cost is the summed
     * cache area, time the summed stall cycles. Built from the
     * product of subsystem Pareto sets (valid because both metrics
     * are additive), filtered for inclusion feasibility.
     *
     * @param dilation text dilation of the processor under study
     * @param dcache_ports restrict data caches to this port count
     *        (0 = no restriction); the paper's Pareto sets are
     *        parameterized by cache port constraints
     * @param failures when given, a cache configuration whose
     *        evaluation fails is recorded there and skipped instead
     *        of aborting the whole Pareto construction; without a
     *        log the error propagates (the historical behavior)
     * @param cancel when given, checked per subspace configuration;
     *        cancellation always propagates as CancelledError, even
     *        with a failure log (a deadline is not a design failure)
     */
    ParetoSet pareto(double dilation, uint32_t dcache_ports = 0,
                     FailureLog *failures = nullptr,
                     const support::CancelToken *cancel =
                         nullptr) const;

    const IcacheEvaluator &icache() const { return icacheEval_; }
    const DcacheEvaluator &dcache() const { return dcacheEval_; }
    const UcacheEvaluator &ucache() const { return ucacheEval_; }
    const StallModel &stalls() const { return stalls_; }

  private:
    MemorySpaces spaces_;
    StallModel stalls_;
    IcacheEvaluator icacheEval_;
    DcacheEvaluator dcacheEval_;
    UcacheEvaluator ucacheEval_;
    support::ThreadPool *pool_ = nullptr;
};

/** Result bundle of a full system exploration. */
struct ExplorationResult
{
    ParetoSet processors;
    ParetoSet systems;
    /** Text dilation per machine name. */
    std::map<std::string, double> dilations;
    /** Processor cycles per machine name. */
    std::map<std::string, uint64_t> processorCycles;
    /** Designs evaluated successfully. */
    uint64_t evaluatedDesigns = 0;
    /** Per-design failures the walk survived (empty = complete). */
    FailureLog failures;
    /**
     * Findings of the verification passes (empty when verification
     * was off). Verification never mutates the results above — the
     * Pareto sets, dilations and cache bytes of a verified walk are
     * bit-identical to an unverified one.
     */
    verify::Diagnostics diagnostics;
    /**
     * True when the walk was cut short by Options::cancel (explicit
     * cancel or expired deadline). The Pareto sets cover only the
     * designs that finished before the cut; every design the
     * deadline claimed is in the FailureLog under stage "deadline",
     * so the conservation invariant (failures + evaluated accounts
     * for every design) holds for partial walks too.
     */
    bool deadlineExceeded = false;

    /** True when every design of the walk evaluated cleanly. */
    bool complete() const { return failures.empty(); }
};

/** Exploration driver for one application. */
class Spacewalker
{
  public:
    struct Options
    {
        /** Block-entry budget for reference-trace generation. */
        uint64_t traceBlocks = 60000;
        StallModel stalls;
        /** Reference machine (paper: the narrow 1111). */
        std::string referenceMachine = "1111";
        /** AHH granule sizes (references per granule). */
        uint64_t iGranule = core::defaultIGranule;
        uint64_t uGranule = 100000;
        /**
         * Path of the persistent evaluation-cache database; empty
         * keeps per-machine metrics (dilation, cycles) in memory
         * only. With a path, repeated explorations skip the
         * compile/assemble/link of machines already evaluated — the
         * paper's EvaluationCache layer (section 5.1).
         */
        std::string evaluationCachePath;
        /**
         * Checkpoint the evaluation cache every N successfully
         * evaluated designs (0 = only at the end of explore()), so
         * an interrupted run resumes from the last checkpoint
         * instead of losing the whole walk.
         */
        uint64_t checkpointEvery = 8;
        /**
         * Rethrow per-design failures instead of recording them in
         * the FailureLog and continuing (debugging aid). In a
         * parallel walk the failure of the *earliest* design in
         * walk order is the one rethrown, matching the serial walk.
         */
        bool haltOnFailure = false;
        /**
         * Worker threads of the exploration (the --jobs knob):
         * 1 = serial (the default), N = N-way parallel, 0 = one per
         * hardware thread. Results — Pareto sets, failure ordering,
         * evaluation-cache bytes — are identical for every value.
         */
        unsigned jobs = 1;
        /**
         * Run the verification passes (src/verify) at the walk's
         * phase boundaries: -1 = automatic (on in Debug builds, off
         * in Release), 0 = off, 1 = on. Findings land in
         * ExplorationResult::diagnostics and are summarized through
         * warn(); they never change the walk's results.
         */
        int verify = -1;
        /**
         * Share an externally owned evaluation cache instead of
         * constructing one from evaluationCachePath (ignored when
         * this is set, except as documentation of where the owner
         * persists it). The server runs many concurrent walks
         * against *one* crash-safe cache this way — two private
         * caches over the same file would overwrite each other's
         * entries at save time. The cache must outlive the walker.
         */
        EvaluationCache *sharedCache = nullptr;
        /**
         * Cooperative cancellation (null = run to completion). When
         * the token fires — an explicit cancel() or an expired
         * deadline — in-flight designs unwind at their next
         * checkpoint, untouched designs are skipped, and explore()
         * returns a *partial* result: completed designs keep their
         * Pareto points and cached metrics, claimed designs land in
         * the FailureLog under stage "deadline", and
         * ExplorationResult::deadlineExceeded is set. The token must
         * outlive explore(). Cancellation bypasses haltOnFailure (a
         * deadline is an answer, not a bug to halt on).
         */
        const support::CancelToken *cancel = nullptr;
    };

    Spacewalker(MemorySpaces spaces,
                std::vector<std::string> machine_names,
                Options options);

    /** Default-options overload. */
    Spacewalker(MemorySpaces spaces,
                std::vector<std::string> machine_names)
        : Spacewalker(std::move(spaces), std::move(machine_names),
                      Options())
    {}

    /**
     * Explore processors x memory hierarchies for one profiled
     * program.
     */
    ExplorationResult explore(const ir::Program &prog);

    /** The memory walker of the last exploration. */
    const MemoryWalker &memoryWalker() const;

    /** The evaluation cache (hit/miss statistics, persistence). */
    const EvaluationCache &
    evaluationCache() const
    {
        return options_.sharedCache != nullptr ? *options_.sharedCache
                                               : cache_;
    }

  private:
    /** The cache in use: the shared one when attached, else ours. */
    EvaluationCache &
    cacheRef()
    {
        return options_.sharedCache != nullptr ? *options_.sharedCache
                                               : cache_;
    }

    MemorySpaces spaces_;
    std::vector<std::string> machineNames_;
    Options options_;
    std::unique_ptr<MemoryWalker> memory_;
    EvaluationCache cache_;
};

} // namespace pico::dse

#endif // PICO_DSE_SPACEWALKER_HPP
