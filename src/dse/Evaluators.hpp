/**
 * @file
 * Cache-subsystem evaluators: single-pass simulation banks plus the
 * dilation-model estimators, one evaluator per cache type.
 *
 * Each evaluator consumes the *reference processor's* trace exactly
 * once (one Cheetah-style pass per distinct line size plus the trace
 * modeler), after which the misses of any configuration in the space
 * at any dilation are available without further simulation — the
 * paper's central efficiency claim.
 */

#ifndef PICO_DSE_EVALUATORS_HPP
#define PICO_DSE_EVALUATORS_HPP

#include <functional>
#include <memory>
#include <vector>

#include "cache/SetResidentSim.hpp"
#include "cache/SinglePassSim.hpp"
#include "core/DilationModel.hpp"
#include "core/TraceModel.hpp"
#include "dse/CacheSpace.hpp"
#include "dse/Pareto.hpp"
#include "support/CancelToken.hpp"
#include "support/ThreadPool.hpp"
#include "trace/ColumnarTrace.hpp"
#include "trace/TraceBuffer.hpp"

namespace pico::dse
{

/**
 * A type-erased address-trace producer: invoked with a sink, it
 * streams every Access of the trace into it.
 */
using TraceSink = std::function<void(const trace::Access &)>;
using TraceSource = std::function<void(const TraceSink &)>;

/**
 * Bank of single-pass simulators covering every power-of-two line
 * size from minCoveredLine up to the space's largest line, so the
 * dilation model can interpolate at contracted line sizes.
 *
 * Designs are routed by replacement policy: LRU (a stack algorithm)
 * reads misses from the Cheetah single-pass simulators; FIFO and
 * random (not stack algorithms) read them from DEW-style
 * set-resident simulators, one per (line size, policy) over the
 * space's enumerated line sizes. The set-resident bank — which also
 * carries dirty bits, so it reports write-back traffic — is built
 * only when the space's policy axes are extended; classic LRU/WB
 * spaces pay nothing and stay bit-identical.
 */
class SimBank
{
  public:
    /** Smallest line size simulated (one word). */
    static constexpr uint32_t minCoveredLine = 4;

    explicit SimBank(const CacheSpace &space);

    /** Feed one reference to every line-size simulator. */
    void access(const trace::Access &a);

    /**
     * Run every line-size simulator over a buffered trace, one
     * independent read-only sweep each, concurrently on the given
     * pool (null/zero-worker pool = serial, identical results:
     * each simulator's state depends only on the trace, never on
     * the other simulators or the schedule). A cancel token is
     * checked at sweep granularity; cancellation unwinds with
     * CancelledError and leaves the bank unusable for misses()
     * queries (the caller discards it).
     */
    void simulate(const trace::TraceBuffer &buffer,
                  support::ThreadPool *pool,
                  const support::CancelToken *cancel = nullptr);

    /**
     * Run every line-size simulator over a columnar trace. Serial
     * (null/zero-worker pool): the fused path decodes each block
     * once and the decoded span feeds *all* simulators while it is
     * hot. Parallel: one task per line size, each decoding into its
     * own scratch. Either way each simulator sees the identical
     * address sequence, so miss counts are bit-identical to the
     * row-wise replay and independent of the schedule. The cancel
     * token is checked once per encoded block.
     */
    void simulate(const trace::ColumnarTraceBuffer &buffer,
                  support::ThreadPool *pool,
                  const support::CancelToken *cancel = nullptr);

    /** Simulated reference-trace misses of a covered config. */
    double misses(const cache::CacheConfig &config) const;

    /**
     * Simulated memory writes of a covered config under its write
     * policy: dirty-line writebacks for write-back, the trace's
     * store count for write-through. In a non-extended space (no
     * set-resident bank) write traffic is not modeled and this
     * returns 0 — consistent with the classic read-only stall model.
     */
    double writeTraffic(const cache::CacheConfig &config) const;

    /** Store references in the simulated trace (extended only). */
    uint64_t stores() const;

    /** True when the configuration is covered. */
    bool covers(const cache::CacheConfig &config) const;

    /** True when a set-resident (policy) bank was built. */
    bool extended() const { return !policySims_.empty(); }

    /** Number of independent single-pass simulations (line sizes
     *  plus, in extended spaces, set-resident passes). */
    size_t simRuns() const { return sims_.size() + policySims_.size(); }

    uint64_t
    accesses() const
    {
        return sims_.empty() ? 0 : sims_.front().accesses();
    }

    /** Oracle adapter for the dilation model. */
    core::MissOracle oracle() const;

  private:
    std::vector<cache::SinglePassSim> sims_;
    /**
     * Set-resident simulators for the extended policy axes, one per
     * (enumerated line size, replacement policy) — including LRU,
     * whose *misses* still come from sims_ but whose write-back
     * traffic needs the dirty-bit model.
     */
    std::vector<cache::SetResidentSim> policySims_;
};

/** Instruction-cache evaluator (simulation + dilation model). */
class IcacheEvaluator
{
  public:
    explicit IcacheEvaluator(CacheSpace space,
                             uint64_t granule_refs =
                                 core::defaultIGranule);

    /**
     * One pass over the reference instruction trace. The per-line-
     * size simulator sweeps run concurrently on `pool` (null =
     * serial; results are identical either way). A cancel token
     * aborts mid-capture or mid-sweep with CancelledError; the
     * evaluator then stays in the not-evaluated state.
     */
    void evaluate(const TraceSource &ref_instr_trace,
                  support::ThreadPool *pool = nullptr,
                  const support::CancelToken *cancel = nullptr);

    /**
     * Misses of a configuration at a dilation; dilation 1 returns
     * the simulated count exactly. Non-LRU designs at dilation != 1
     * scale their simulated count by the dilation model's LRU-twin
     * ratio (the model itself is derived for stack algorithms).
     */
    double misses(const cache::CacheConfig &config,
                  double dilation) const;

    /** Simulated memory writes of a configuration (see SimBank). */
    double writeTraffic(const cache::CacheConfig &config) const;

    /** Pareto set over the space at one dilation; time is misses
     *  weighted by the L1-miss penalty plus write traffic weighted
     *  by the (default 0) write cost. */
    ParetoSet pareto(double dilation, double miss_penalty,
                     double write_cost = 0.0) const;

    const core::ComponentParams &params() const { return params_; }
    const CacheSpace &space() const { return space_; }
    const SimBank &bank() const { return *bank_; }
    bool evaluated() const { return evaluated_; }

    /** The captured (columnar-compressed) reference trace. */
    const trace::ColumnarTraceBuffer &
    capturedTrace() const
    {
        return trace_;
    }

  private:
    CacheSpace space_;
    uint64_t granuleRefs_;
    std::unique_ptr<SimBank> bank_;
    trace::ColumnarTraceBuffer trace_;
    core::ComponentParams params_;
    bool evaluated_ = false;
};

/** Data-cache evaluator (simulation only; equation 4.1). */
class DcacheEvaluator
{
  public:
    explicit DcacheEvaluator(CacheSpace space);

    /** One pass over the reference data trace. */
    void evaluate(const TraceSource &ref_data_trace,
                  support::ThreadPool *pool = nullptr,
                  const support::CancelToken *cancel = nullptr);

    /** Misses of a configuration (dilation independent). */
    double misses(const cache::CacheConfig &config) const;

    /** Simulated memory writes of a configuration (see SimBank). */
    double writeTraffic(const cache::CacheConfig &config) const;

    ParetoSet pareto(double miss_penalty,
                     double write_cost = 0.0) const;

    const CacheSpace &space() const { return space_; }
    const SimBank &bank() const { return *bank_; }
    bool evaluated() const { return evaluated_; }

    /** The captured (columnar-compressed) reference trace. */
    const trace::ColumnarTraceBuffer &
    capturedTrace() const
    {
        return trace_;
    }

  private:
    CacheSpace space_;
    std::unique_ptr<SimBank> bank_;
    trace::ColumnarTraceBuffer trace_;
    bool evaluated_ = false;
};

/** Unified-cache evaluator (simulation + equations 4.13–4.15). */
class UcacheEvaluator
{
  public:
    explicit UcacheEvaluator(CacheSpace space,
                             uint64_t granule_refs =
                                 core::defaultUGranule);

    /** One pass over the reference unified trace. */
    void evaluate(const TraceSource &ref_unified_trace,
                  support::ThreadPool *pool = nullptr,
                  const support::CancelToken *cancel = nullptr);

    double misses(const cache::CacheConfig &config,
                  double dilation) const;

    /** Simulated memory writes of a configuration (see SimBank). */
    double writeTraffic(const cache::CacheConfig &config) const;

    ParetoSet pareto(double dilation, double miss_penalty,
                     double write_cost = 0.0) const;

    const core::ComponentParams &instrParams() const { return iParams_; }
    const core::ComponentParams &dataParams() const { return dParams_; }
    const CacheSpace &space() const { return space_; }
    const SimBank &bank() const { return *bank_; }
    bool evaluated() const { return evaluated_; }

    /** The captured (columnar-compressed) reference trace. */
    const trace::ColumnarTraceBuffer &
    capturedTrace() const
    {
        return trace_;
    }

  private:
    CacheSpace space_;
    uint64_t granuleRefs_;
    std::unique_ptr<SimBank> bank_;
    trace::ColumnarTraceBuffer trace_;
    core::ComponentParams iParams_;
    core::ComponentParams dParams_;
    bool evaluated_ = false;
};

} // namespace pico::dse

#endif // PICO_DSE_EVALUATORS_HPP
