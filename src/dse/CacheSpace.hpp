/**
 * @file
 * Parameterized cache design-space specification.
 *
 * Mirrors the paper's design-space spec: a cache space is the cross
 * product of total sizes, associativities, line sizes and port
 * counts; infeasible combinations (fewer lines than ways, non
 * power-of-two set counts) are skipped during enumeration.
 */

#ifndef PICO_DSE_CACHE_SPACE_HPP
#define PICO_DSE_CACHE_SPACE_HPP

#include <cstdint>
#include <vector>

#include "cache/CacheConfig.hpp"

namespace pico::dse
{

/** Cross-product specification of a cache subspace. */
struct CacheSpace
{
    std::vector<uint64_t> sizesBytes;
    std::vector<uint32_t> assocs;
    std::vector<uint32_t> lineSizes;
    std::vector<uint32_t> portCounts = {1};
    /** Replacement-policy axis; {LRU} keeps the classic space. */
    std::vector<cache::ReplacementPolicy> replacements = {
        cache::ReplacementPolicy::LRU};
    /** Write-policy axis; {WriteBack} keeps the classic space. */
    std::vector<cache::WritePolicy> writePolicies = {
        cache::WritePolicy::WriteBack};

    /**
     * True when the policy axes extend beyond the classic
     * LRU/write-back space. Extended spaces pay for set-resident
     * simulation and get a distinct evaluation-cache key schema;
     * default spaces stay on the pure Cheetah path with byte-
     * identical results and keys.
     */
    bool extendedAxes() const;

    /** All feasible configurations in the space. */
    std::vector<cache::CacheConfig> enumerate() const;

    /** Distinct line sizes, ascending; one Cheetah run each. */
    std::vector<uint32_t> distinctLineSizes() const;

    /** Largest set count over the space (Cheetah range sizing). */
    uint32_t maxSets() const;

    /** Smallest set count over the space. */
    uint32_t minSets() const;

    /** Largest associativity over the space. */
    uint32_t maxAssoc() const;

    /** The paper's example sizing: a space of about 20 caches. */
    static CacheSpace defaultL1Space();

    /** Default L2 space (larger sizes, longer lines). */
    static CacheSpace defaultL2Space();
};

} // namespace pico::dse

#endif // PICO_DSE_CACHE_SPACE_HPP
