#include "dse/Pareto.hpp"

#include <algorithm>
#include <cstdint>

namespace pico::dse
{

bool
ParetoSet::insertPoint(const DesignPoint &point)
{
    ++offered_;
    for (const auto &existing : points_) {
        if (existing.dominates(point))
            return false;
    }
    // Remove members the new point dominates, then insert it.
    points_.erase(std::remove_if(points_.begin(), points_.end(),
                                 [&point](const DesignPoint &p) {
                                     return point.dominates(p);
                                 }),
                  points_.end());
    points_.push_back(point);
    return true;
}

std::vector<DesignPoint>
ParetoSet::sorted() const
{
    std::vector<DesignPoint> out = points_;
    std::sort(out.begin(), out.end(),
              [](const DesignPoint &a, const DesignPoint &b) {
                  if (a.cost != b.cost)
                      return a.cost < b.cost;
                  return a.time < b.time;
              });
    return out;
}

} // namespace pico::dse
