#include "dse/Evaluators.hpp"

#include <algorithm>

#include "support/Logging.hpp"
#include "support/TraceEvents.hpp"

namespace pico::dse
{

SimBank::SimBank(const CacheSpace &space)
{
    auto lines = space.distinctLineSizes();
    fatalIf(lines.empty(), "cache space has no line sizes");
    uint32_t max_line = lines.back();
    uint32_t min_sets = space.minSets();
    uint32_t max_sets = space.maxSets();
    uint32_t max_assoc = space.maxAssoc();

    // Cover every power-of-two line size down to one word so the
    // dilation model can interpolate at any contracted line size.
    for (uint32_t line = minCoveredLine; line <= max_line; line *= 2) {
        sims_.emplace_back(line, min_sets, max_sets, max_assoc);
    }

    // Extended policy axes add one set-resident pass per (enumerated
    // line size, policy). LRU is included when present so its
    // write-back traffic is modeled; its misses still come from the
    // Cheetah bank above. Classic spaces build nothing here.
    if (space.extendedAxes()) {
        std::vector<cache::ReplacementPolicy> policies;
        for (auto policy : space.replacements) {
            if (std::find(policies.begin(), policies.end(),
                          policy) == policies.end())
                policies.push_back(policy);
        }
        for (auto policy : policies) {
            for (uint32_t line : lines) {
                policySims_.emplace_back(line, min_sets, max_sets,
                                         max_assoc, policy);
            }
        }
    }
}

void
SimBank::access(const trace::Access &a)
{
    for (auto &sim : sims_)
        sim.access(a.addr);
    for (auto &sim : policySims_)
        sim.access(a.addr, a.isWrite);
}

void
SimBank::simulate(const trace::TraceBuffer &buffer,
                  support::ThreadPool *pool,
                  const support::CancelToken *cancel)
{
    // One task per simulator; each task owns exactly one simulator,
    // so no merge step is needed and the result cannot depend on
    // the schedule. Each sweep reports its own span and wall time,
    // keyed by line size — the unit the paper's efficiency claim is
    // stated in (simulations = distinct line sizes, not configs).
    // Set-resident (policy) sweeps of extended spaces are extra
    // tasks after the Cheetah ones.
    support::parallelFor(
        sims_.size() + policySims_.size(), pool, [&](size_t i) {
            if (i < sims_.size()) {
                std::string line =
                    std::to_string(sims_[i].lineBytes());
                support::TimedSpan span("sweep.line" + line,
                                        "sweep");
                sims_[i].replay(buffer.accesses(), cancel);
                PICO_METRIC_COUNT("sweep.runs", 1);
                if (support::metricsEnabled()) {
                    support::metrics()
                        .counter("sweep.line" + line + ".accesses")
                        .add(buffer.accesses().size());
                }
                return;
            }
            auto &sim = policySims_[i - sims_.size()];
            std::string tag =
                std::string(cache::replacementName(sim.policy())) +
                ".line" + std::to_string(sim.lineBytes());
            support::TimedSpan span("sweep." + tag, "sweep");
            sim.replay(buffer.accesses(), cancel);
            PICO_METRIC_COUNT("sweep.runs", 1);
            if (support::metricsEnabled()) {
                support::metrics()
                    .counter("sweep." + tag + ".accesses")
                    .add(buffer.accesses().size());
            }
        });
}

void
SimBank::simulate(const trace::ColumnarTraceBuffer &buffer,
                  support::ThreadPool *pool,
                  const support::CancelToken *cancel)
{
    const size_t blocks = buffer.blockCount();
    if (pool == nullptr || pool->workers() == 0) {
        // Fused serial sweep: each block is decoded exactly once and
        // the materialized address span feeds every line-size
        // simulator back to back — the single-pass structure of the
        // paper taken one level further (one pass over the *encoded*
        // trace for the whole bank).
        support::TimedSpan span("sweep.fused", "sweep");
        trace::BlockScratch scratch;
        for (size_t b = 0; b < blocks; ++b) {
            if (cancel != nullptr)
                cancel->checkpoint("SimBank::simulate");
            trace::BlockView view = buffer.decodeBlock(b, scratch);
            for (auto &sim : sims_)
                sim.accessBlock(view.addrs, view.count);
            for (auto &sim : policySims_)
                sim.accessBlock(view.addrs, view.kinds, view.count);
        }
        PICO_METRIC_COUNT("sweep.runs",
                          sims_.size() + policySims_.size());
        if (support::metricsEnabled()) {
            for (const auto &sim : sims_) {
                support::metrics()
                    .counter("sweep.line" +
                             std::to_string(sim.lineBytes()) +
                             ".accesses")
                    .add(buffer.size());
            }
        }
        return;
    }
    // One task per simulator, as in the row-wise sweep; each task
    // owns one simulator plus a private decode scratch, so tasks
    // share only the immutable encoded blocks.
    support::parallelFor(
        sims_.size() + policySims_.size(), pool, [&](size_t i) {
            trace::BlockScratch scratch;
            if (i < sims_.size()) {
                std::string line =
                    std::to_string(sims_[i].lineBytes());
                support::TimedSpan span("sweep.line" + line,
                                        "sweep");
                for (size_t b = 0; b < blocks; ++b) {
                    if (cancel != nullptr)
                        cancel->checkpoint("SimBank::simulate");
                    trace::BlockView view =
                        buffer.decodeBlock(b, scratch);
                    sims_[i].accessBlock(view.addrs, view.count);
                }
                PICO_METRIC_COUNT("sweep.runs", 1);
                if (support::metricsEnabled()) {
                    support::metrics()
                        .counter("sweep.line" + line + ".accesses")
                        .add(buffer.size());
                }
                return;
            }
            auto &sim = policySims_[i - sims_.size()];
            std::string tag =
                std::string(cache::replacementName(sim.policy())) +
                ".line" + std::to_string(sim.lineBytes());
            support::TimedSpan span("sweep." + tag, "sweep");
            for (size_t b = 0; b < blocks; ++b) {
                if (cancel != nullptr)
                    cancel->checkpoint("SimBank::simulate");
                trace::BlockView view =
                    buffer.decodeBlock(b, scratch);
                sim.accessBlock(view.addrs, view.kinds, view.count);
            }
            PICO_METRIC_COUNT("sweep.runs", 1);
            if (support::metricsEnabled()) {
                support::metrics()
                    .counter("sweep." + tag + ".accesses")
                    .add(buffer.size());
            }
        });
}

bool
SimBank::covers(const cache::CacheConfig &config) const
{
    if (config.replacement != cache::ReplacementPolicy::LRU) {
        for (const auto &sim : policySims_) {
            if (sim.covers(config))
                return true;
        }
        return false;
    }
    for (const auto &sim : sims_) {
        if (sim.covers(config))
            return true;
    }
    return false;
}

double
SimBank::misses(const cache::CacheConfig &config) const
{
    // LRU reads from the Cheetah single-pass bank (stack algorithm);
    // FIFO/random read from the set-resident bank. Both write
    // policies are write-allocate, so misses never depend on
    // config.write.
    if (config.replacement != cache::ReplacementPolicy::LRU) {
        for (const auto &sim : policySims_) {
            if (sim.covers(config))
                return static_cast<double>(sim.misses(config));
        }
        fatal("configuration ", config.name(),
              " not covered by the set-resident bank (policy axes "
              "not enabled in the space?)");
    }
    for (const auto &sim : sims_) {
        if (sim.covers(config))
            return static_cast<double>(sim.misses(config));
    }
    fatal("configuration ", config.name(),
          " not covered by the simulation bank");
}

uint64_t
SimBank::stores() const
{
    fatalIf(policySims_.empty(),
            "store counts need the set-resident bank (extended "
            "policy axes)");
    return policySims_.front().stores();
}

double
SimBank::writeTraffic(const cache::CacheConfig &config) const
{
    if (config.write == cache::WritePolicy::WriteThrough) {
        // Write-allocate write-through: every store goes to memory,
        // independent of the cache geometry.
        return static_cast<double>(stores());
    }
    // Write-back traffic needs the dirty-bit model. Classic spaces
    // do not build it — their stall model is read-only, as before.
    if (policySims_.empty())
        return 0.0;
    for (const auto &sim : policySims_) {
        if (sim.covers(config))
            return static_cast<double>(sim.writebacks(config));
    }
    fatal("configuration ", config.name(),
          " not covered by the set-resident bank");
}

core::MissOracle
SimBank::oracle() const
{
    return [this](const cache::CacheConfig &config) {
        return misses(config);
    };
}

// --- IcacheEvaluator ---------------------------------------------------

IcacheEvaluator::IcacheEvaluator(CacheSpace space,
                                 uint64_t granule_refs)
    : space_(std::move(space)), granuleRefs_(granule_refs)
{
    bank_ = std::make_unique<SimBank>(space_);
}

void
IcacheEvaluator::evaluate(const TraceSource &ref_instr_trace,
                          support::ThreadPool *pool,
                          const support::CancelToken *cancel)
{
    support::TimedSpan span("evaluate.icache", "evaluate");
    // Capture the stream once, columnar-compressed; the trace
    // modeler is inherently serial (granule state) and runs during
    // capture, while the per-line-size simulator sweeps replay the
    // encoded blocks afterwards.
    core::ItraceModeler modeler(granuleRefs_);
    support::CancelCheck check(cancel);
    ref_instr_trace([this, &modeler,
                     &check](const trace::Access &a) {
        check.tick("IcacheEvaluator::evaluate");
        fatalIf(!a.isInstr,
                "data reference in an instruction trace");
        trace_(a);
        modeler.access(a);
    });
    PICO_METRIC_COUNT("evaluate.captured.accesses", trace_.size());
    PICO_METRIC_COUNT("evaluate.captured.bytes",
                      trace_.encodedBytes());
    bank_->simulate(trace_, pool, cancel);
    params_ = modeler.params();
    evaluated_ = true;
}

double
IcacheEvaluator::misses(const cache::CacheConfig &config,
                        double dilation) const
{
    fatalIf(!evaluated_, "evaluator has not seen a trace yet");
    if (dilation == 1.0)
        return bank_->misses(config);
    core::DilationModel model(params_, params_, params_);
    if (config.replacement == cache::ReplacementPolicy::LRU)
        return model.estimateIcacheMisses(config, dilation,
                                          bank_->oracle());
    // The dilation model reasons over LRU stack behavior
    // (contracted line sizes against the Cheetah oracle). For
    // non-stack policies, apply the model's *relative* dilation
    // effect — estimated on the LRU twin of the same geometry — to
    // the policy's own simulated count.
    cache::CacheConfig twin = config;
    twin.replacement = cache::ReplacementPolicy::LRU;
    twin.write = cache::WritePolicy::WriteBack;
    double twin_sim = bank_->misses(twin);
    double twin_est = model.estimateIcacheMisses(twin, dilation,
                                                 bank_->oracle());
    double scale = twin_sim > 0.0 ? twin_est / twin_sim : 1.0;
    return bank_->misses(config) * scale;
}

double
IcacheEvaluator::writeTraffic(const cache::CacheConfig &config) const
{
    fatalIf(!evaluated_, "evaluator has not seen a trace yet");
    return bank_->writeTraffic(config);
}

ParetoSet
IcacheEvaluator::pareto(double dilation, double miss_penalty,
                        double write_cost) const
{
    ParetoSet set;
    for (const auto &config : space_.enumerate()) {
        DesignPoint point;
        point.id = "I$" + config.name();
        point.cost = config.areaCost();
        point.time = misses(config, dilation) * miss_penalty;
        if (write_cost != 0.0)
            point.time += writeTraffic(config) * write_cost;
        set.insertPoint(point);
    }
    return set;
}

// --- DcacheEvaluator ---------------------------------------------------

DcacheEvaluator::DcacheEvaluator(CacheSpace space)
    : space_(std::move(space))
{
    bank_ = std::make_unique<SimBank>(space_);
}

void
DcacheEvaluator::evaluate(const TraceSource &ref_data_trace,
                          support::ThreadPool *pool,
                          const support::CancelToken *cancel)
{
    support::TimedSpan span("evaluate.dcache", "evaluate");
    support::CancelCheck check(cancel);
    ref_data_trace([this, &check](const trace::Access &a) {
        check.tick("DcacheEvaluator::evaluate");
        fatalIf(a.isInstr, "instruction reference in a data trace");
        trace_(a);
    });
    PICO_METRIC_COUNT("evaluate.captured.accesses", trace_.size());
    PICO_METRIC_COUNT("evaluate.captured.bytes",
                      trace_.encodedBytes());
    bank_->simulate(trace_, pool, cancel);
    evaluated_ = true;
}

double
DcacheEvaluator::misses(const cache::CacheConfig &config) const
{
    fatalIf(!evaluated_, "evaluator has not seen a trace yet");
    return bank_->misses(config);
}

double
DcacheEvaluator::writeTraffic(const cache::CacheConfig &config) const
{
    fatalIf(!evaluated_, "evaluator has not seen a trace yet");
    return bank_->writeTraffic(config);
}

ParetoSet
DcacheEvaluator::pareto(double miss_penalty,
                        double write_cost) const
{
    ParetoSet set;
    for (const auto &config : space_.enumerate()) {
        DesignPoint point;
        point.id = "D$" + config.name();
        point.cost = config.areaCost();
        point.time = misses(config) * miss_penalty;
        if (write_cost != 0.0)
            point.time += writeTraffic(config) * write_cost;
        set.insertPoint(point);
    }
    return set;
}

// --- UcacheEvaluator ---------------------------------------------------

UcacheEvaluator::UcacheEvaluator(CacheSpace space,
                                 uint64_t granule_refs)
    : space_(std::move(space)), granuleRefs_(granule_refs)
{
    bank_ = std::make_unique<SimBank>(space_);
}

void
UcacheEvaluator::evaluate(const TraceSource &ref_unified_trace,
                          support::ThreadPool *pool,
                          const support::CancelToken *cancel)
{
    support::TimedSpan span("evaluate.ucache", "evaluate");
    core::UtraceModeler modeler(granuleRefs_);
    support::CancelCheck check(cancel);
    ref_unified_trace([this, &modeler,
                       &check](const trace::Access &a) {
        check.tick("UcacheEvaluator::evaluate");
        trace_(a);
        modeler.access(a);
    });
    PICO_METRIC_COUNT("evaluate.captured.accesses", trace_.size());
    PICO_METRIC_COUNT("evaluate.captured.bytes",
                      trace_.encodedBytes());
    bank_->simulate(trace_, pool, cancel);
    iParams_ = modeler.instrParams();
    dParams_ = modeler.dataParams();
    evaluated_ = true;
}

double
UcacheEvaluator::misses(const cache::CacheConfig &config,
                        double dilation) const
{
    fatalIf(!evaluated_, "evaluator has not seen a trace yet");
    // The dilation estimate scales the simulated reference count
    // (equations 4.13–4.15), so routing the reference count by
    // replacement policy is all a non-LRU design needs.
    double ref_misses = bank_->misses(config);
    if (dilation == 1.0)
        return ref_misses;
    core::DilationModel model(iParams_, iParams_, dParams_);
    return model.estimateUcacheMisses(config, dilation, ref_misses);
}

double
UcacheEvaluator::writeTraffic(const cache::CacheConfig &config) const
{
    fatalIf(!evaluated_, "evaluator has not seen a trace yet");
    return bank_->writeTraffic(config);
}

ParetoSet
UcacheEvaluator::pareto(double dilation, double miss_penalty,
                        double write_cost) const
{
    ParetoSet set;
    for (const auto &config : space_.enumerate()) {
        DesignPoint point;
        point.id = "U$" + config.name();
        point.cost = config.areaCost();
        point.time = misses(config, dilation) * miss_penalty;
        if (write_cost != 0.0)
            point.time += writeTraffic(config) * write_cost;
        set.insertPoint(point);
    }
    return set;
}

} // namespace pico::dse
