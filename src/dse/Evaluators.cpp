#include "dse/Evaluators.hpp"

#include "support/Logging.hpp"
#include "support/TraceEvents.hpp"

namespace pico::dse
{

SimBank::SimBank(const CacheSpace &space)
{
    auto lines = space.distinctLineSizes();
    fatalIf(lines.empty(), "cache space has no line sizes");
    uint32_t max_line = lines.back();
    uint32_t min_sets = space.minSets();
    uint32_t max_sets = space.maxSets();
    uint32_t max_assoc = space.maxAssoc();

    // Cover every power-of-two line size down to one word so the
    // dilation model can interpolate at any contracted line size.
    for (uint32_t line = minCoveredLine; line <= max_line; line *= 2) {
        sims_.emplace_back(line, min_sets, max_sets, max_assoc);
    }
}

void
SimBank::access(const trace::Access &a)
{
    for (auto &sim : sims_)
        sim.access(a.addr);
}

void
SimBank::simulate(const trace::TraceBuffer &buffer,
                  support::ThreadPool *pool,
                  const support::CancelToken *cancel)
{
    // One task per line size; each task owns exactly one simulator,
    // so no merge step is needed and the result cannot depend on
    // the schedule. Each sweep reports its own span and wall time,
    // keyed by line size — the unit the paper's efficiency claim is
    // stated in (simulations = distinct line sizes, not configs).
    support::parallelFor(sims_.size(), pool, [&](size_t i) {
        std::string line = std::to_string(sims_[i].lineBytes());
        support::TimedSpan span("sweep.line" + line, "sweep");
        sims_[i].replay(buffer.accesses(), cancel);
        PICO_METRIC_COUNT("sweep.runs", 1);
        if (support::metricsEnabled()) {
            support::metrics()
                .counter("sweep.line" + line + ".accesses")
                .add(buffer.accesses().size());
        }
    });
}

void
SimBank::simulate(const trace::ColumnarTraceBuffer &buffer,
                  support::ThreadPool *pool,
                  const support::CancelToken *cancel)
{
    const size_t blocks = buffer.blockCount();
    if (pool == nullptr || pool->workers() == 0) {
        // Fused serial sweep: each block is decoded exactly once and
        // the materialized address span feeds every line-size
        // simulator back to back — the single-pass structure of the
        // paper taken one level further (one pass over the *encoded*
        // trace for the whole bank).
        support::TimedSpan span("sweep.fused", "sweep");
        trace::BlockScratch scratch;
        for (size_t b = 0; b < blocks; ++b) {
            if (cancel != nullptr)
                cancel->checkpoint("SimBank::simulate");
            trace::BlockView view = buffer.decodeBlock(b, scratch);
            for (auto &sim : sims_)
                sim.accessBlock(view.addrs, view.count);
        }
        PICO_METRIC_COUNT("sweep.runs", sims_.size());
        if (support::metricsEnabled()) {
            for (const auto &sim : sims_) {
                support::metrics()
                    .counter("sweep.line" +
                             std::to_string(sim.lineBytes()) +
                             ".accesses")
                    .add(buffer.size());
            }
        }
        return;
    }
    // One task per line size, as in the row-wise sweep; each task
    // owns one simulator plus a private decode scratch, so tasks
    // share only the immutable encoded blocks.
    support::parallelFor(sims_.size(), pool, [&](size_t i) {
        std::string line = std::to_string(sims_[i].lineBytes());
        support::TimedSpan span("sweep.line" + line, "sweep");
        trace::BlockScratch scratch;
        for (size_t b = 0; b < blocks; ++b) {
            if (cancel != nullptr)
                cancel->checkpoint("SimBank::simulate");
            trace::BlockView view = buffer.decodeBlock(b, scratch);
            sims_[i].accessBlock(view.addrs, view.count);
        }
        PICO_METRIC_COUNT("sweep.runs", 1);
        if (support::metricsEnabled()) {
            support::metrics()
                .counter("sweep.line" + line + ".accesses")
                .add(buffer.size());
        }
    });
}

bool
SimBank::covers(const cache::CacheConfig &config) const
{
    for (const auto &sim : sims_) {
        if (sim.covers(config))
            return true;
    }
    return false;
}

double
SimBank::misses(const cache::CacheConfig &config) const
{
    for (const auto &sim : sims_) {
        if (sim.covers(config))
            return static_cast<double>(sim.misses(config));
    }
    fatal("configuration ", config.name(),
          " not covered by the simulation bank");
}

core::MissOracle
SimBank::oracle() const
{
    return [this](const cache::CacheConfig &config) {
        return misses(config);
    };
}

// --- IcacheEvaluator ---------------------------------------------------

IcacheEvaluator::IcacheEvaluator(CacheSpace space,
                                 uint64_t granule_refs)
    : space_(std::move(space)), granuleRefs_(granule_refs)
{
    bank_ = std::make_unique<SimBank>(space_);
}

void
IcacheEvaluator::evaluate(const TraceSource &ref_instr_trace,
                          support::ThreadPool *pool,
                          const support::CancelToken *cancel)
{
    support::TimedSpan span("evaluate.icache", "evaluate");
    // Capture the stream once, columnar-compressed; the trace
    // modeler is inherently serial (granule state) and runs during
    // capture, while the per-line-size simulator sweeps replay the
    // encoded blocks afterwards.
    core::ItraceModeler modeler(granuleRefs_);
    support::CancelCheck check(cancel);
    ref_instr_trace([this, &modeler,
                     &check](const trace::Access &a) {
        check.tick("IcacheEvaluator::evaluate");
        fatalIf(!a.isInstr,
                "data reference in an instruction trace");
        trace_(a);
        modeler.access(a);
    });
    PICO_METRIC_COUNT("evaluate.captured.accesses", trace_.size());
    PICO_METRIC_COUNT("evaluate.captured.bytes",
                      trace_.encodedBytes());
    bank_->simulate(trace_, pool, cancel);
    params_ = modeler.params();
    evaluated_ = true;
}

double
IcacheEvaluator::misses(const cache::CacheConfig &config,
                        double dilation) const
{
    fatalIf(!evaluated_, "evaluator has not seen a trace yet");
    if (dilation == 1.0)
        return bank_->misses(config);
    core::DilationModel model(params_, params_, params_);
    return model.estimateIcacheMisses(config, dilation,
                                      bank_->oracle());
}

ParetoSet
IcacheEvaluator::pareto(double dilation, double miss_penalty) const
{
    ParetoSet set;
    for (const auto &config : space_.enumerate()) {
        DesignPoint point;
        point.id = "I$" + config.name();
        point.cost = config.areaCost();
        point.time = misses(config, dilation) * miss_penalty;
        set.insertPoint(point);
    }
    return set;
}

// --- DcacheEvaluator ---------------------------------------------------

DcacheEvaluator::DcacheEvaluator(CacheSpace space)
    : space_(std::move(space))
{
    bank_ = std::make_unique<SimBank>(space_);
}

void
DcacheEvaluator::evaluate(const TraceSource &ref_data_trace,
                          support::ThreadPool *pool,
                          const support::CancelToken *cancel)
{
    support::TimedSpan span("evaluate.dcache", "evaluate");
    support::CancelCheck check(cancel);
    ref_data_trace([this, &check](const trace::Access &a) {
        check.tick("DcacheEvaluator::evaluate");
        fatalIf(a.isInstr, "instruction reference in a data trace");
        trace_(a);
    });
    PICO_METRIC_COUNT("evaluate.captured.accesses", trace_.size());
    PICO_METRIC_COUNT("evaluate.captured.bytes",
                      trace_.encodedBytes());
    bank_->simulate(trace_, pool, cancel);
    evaluated_ = true;
}

double
DcacheEvaluator::misses(const cache::CacheConfig &config) const
{
    fatalIf(!evaluated_, "evaluator has not seen a trace yet");
    return bank_->misses(config);
}

ParetoSet
DcacheEvaluator::pareto(double miss_penalty) const
{
    ParetoSet set;
    for (const auto &config : space_.enumerate()) {
        DesignPoint point;
        point.id = "D$" + config.name();
        point.cost = config.areaCost();
        point.time = misses(config) * miss_penalty;
        set.insertPoint(point);
    }
    return set;
}

// --- UcacheEvaluator ---------------------------------------------------

UcacheEvaluator::UcacheEvaluator(CacheSpace space,
                                 uint64_t granule_refs)
    : space_(std::move(space)), granuleRefs_(granule_refs)
{
    bank_ = std::make_unique<SimBank>(space_);
}

void
UcacheEvaluator::evaluate(const TraceSource &ref_unified_trace,
                          support::ThreadPool *pool,
                          const support::CancelToken *cancel)
{
    support::TimedSpan span("evaluate.ucache", "evaluate");
    core::UtraceModeler modeler(granuleRefs_);
    support::CancelCheck check(cancel);
    ref_unified_trace([this, &modeler,
                       &check](const trace::Access &a) {
        check.tick("UcacheEvaluator::evaluate");
        trace_(a);
        modeler.access(a);
    });
    PICO_METRIC_COUNT("evaluate.captured.accesses", trace_.size());
    PICO_METRIC_COUNT("evaluate.captured.bytes",
                      trace_.encodedBytes());
    bank_->simulate(trace_, pool, cancel);
    iParams_ = modeler.instrParams();
    dParams_ = modeler.dataParams();
    evaluated_ = true;
}

double
UcacheEvaluator::misses(const cache::CacheConfig &config,
                        double dilation) const
{
    fatalIf(!evaluated_, "evaluator has not seen a trace yet");
    double ref_misses = bank_->misses(config);
    if (dilation == 1.0)
        return ref_misses;
    core::DilationModel model(iParams_, iParams_, dParams_);
    return model.estimateUcacheMisses(config, dilation, ref_misses);
}

ParetoSet
UcacheEvaluator::pareto(double dilation, double miss_penalty) const
{
    ParetoSet set;
    for (const auto &config : space_.enumerate()) {
        DesignPoint point;
        point.id = "U$" + config.name();
        point.cost = config.areaCost();
        point.time = misses(config, dilation) * miss_penalty;
        set.insertPoint(point);
    }
    return set;
}

} // namespace pico::dse
