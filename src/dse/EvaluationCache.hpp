/**
 * @file
 * Persistent evaluation cache (the paper's EvaluationCache layer).
 *
 * Design-space walks revisit the same (application, design) metrics
 * constantly; results are memoized in memory and, when a path is
 * given, persisted to a plain-text database so later runs skip the
 * simulations entirely (section 5.1).
 *
 * The database carries the hours of exploration state a crash must
 * not destroy, so persistence is crash-safe:
 *
 *  - saves are atomic: the table is written to `<path>.tmp`, synced
 *    to stable storage, then renamed over the database, so a reader
 *    always sees either the old or the new generation — never a
 *    half-written file;
 *  - the file starts with a version header
 *    (`picoeval-evalcache-v2`); headerless v1 files still load;
 *  - loading validates every entry and salvages the good ones —
 *    corrupt lines are quarantined (counted and warned about), never
 *    thrown through;
 *  - the destructor flushes pending entries but never throws during
 *    unwind.
 */

#ifndef PICO_DSE_EVALUATION_CACHE_HPP
#define PICO_DSE_EVALUATION_CACHE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pico::dse
{

/** Key/value store of metric vectors, optionally file backed. */
class EvaluationCache
{
  public:
    /** Magic first line of the version-2 database format. */
    static constexpr const char *header = "picoeval-evalcache-v2";

    /**
     * @param path database file; empty keeps the cache in memory
     *        only. An existing file is loaded eagerly (corrupt
     *        entries are quarantined, not fatal).
     */
    explicit EvaluationCache(std::string path = "");

    /** Flushes pending entries; never throws during unwind. */
    ~EvaluationCache();

    /**
     * Fetch a metric vector, computing and storing it on a miss.
     * @param key unique metric identifier (no '|' or newlines)
     * @param compute evaluator invoked on a miss
     */
    std::vector<double> getOrCompute(
        const std::string &key,
        const std::function<std::vector<double>()> &compute);

    /** Lookup without computing. @return true on hit. */
    bool lookup(const std::string &key,
                std::vector<double> &values) const;

    /** Insert or overwrite an entry. */
    void store(const std::string &key, std::vector<double> values);

    /**
     * Write the database atomically now (no-op when memory-only).
     * I/O errors are warned about and leave the previous generation
     * intact.
     */
    void save() const;

    /**
     * Persist unsaved entries (checkpoint). Cheap when nothing
     * changed since the last save; the walkers call this
     * periodically so an interrupted run resumes from the last
     * checkpoint rather than losing everything.
     */
    void flush();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    size_t size() const { return table_.size(); }

    /** Entries salvaged from the database file at load time. */
    uint64_t loadedEntries() const { return loadedEntries_; }
    /** Corrupt database lines skipped at load time. */
    uint64_t quarantinedEntries() const { return quarantinedEntries_; }
    /** Entries stored since the last successful save. */
    bool dirty() const { return dirty_; }

  private:
    void load();

    std::string path_;
    std::unordered_map<std::string, std::vector<double>> table_;
    mutable uint64_t hits_ = 0;
    mutable uint64_t misses_ = 0;
    uint64_t loadedEntries_ = 0;
    uint64_t quarantinedEntries_ = 0;
    mutable bool dirty_ = false;
};

} // namespace pico::dse

#endif // PICO_DSE_EVALUATION_CACHE_HPP
