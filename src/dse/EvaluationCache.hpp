/**
 * @file
 * Persistent evaluation cache (the paper's EvaluationCache layer).
 *
 * Design-space walks revisit the same (application, design) metrics
 * constantly; results are memoized in memory and, when a path is
 * given, persisted to a plain-text database so later runs skip the
 * simulations entirely (section 5.1).
 *
 * The database carries the hours of exploration state a crash must
 * not destroy, so persistence is crash-safe:
 *
 *  - saves are atomic: the table is written to `<path>.tmp`, synced
 *    to stable storage, then renamed over the database, so a reader
 *    always sees either the old or the new generation — never a
 *    half-written file;
 *  - the file starts with a version header
 *    (`picoeval-evalcache-v3` since the policy-axis key schema; v2
 *    files and headerless v1 files still load — only the header
 *    changed, the record format is identical);
 *  - loading validates every entry and salvages the good ones —
 *    corrupt lines are quarantined (counted and warned about), never
 *    thrown through;
 *  - the destructor flushes pending entries but never throws during
 *    unwind.
 *
 * The cache is also *thread-safe*, because the parallel spacewalker
 * hits it from every machine-evaluation task:
 *
 *  - the table is split into shardCount shards, each guarded by its
 *    own mutex, so concurrent lookups/stores of different keys
 *    rarely contend; getOrCompute never holds a lock during the
 *    compute callback;
 *  - stores are batched in memory and committed by flush(): one
 *    writer at a time (a dedicated flush mutex — concurrent flushes
 *    from checkpointing and the destructor used to race on the tmp
 *    file), snapshotting every shard and writing entries in sorted
 *    key order, so the database bytes are identical no matter how
 *    many threads filled the cache or in what order;
 *  - the atomic tmp+fsync+rename protocol is unchanged, preserving
 *    the crash-safety guarantees above.
 *
 * The cache is *observable*: stats() snapshots every counter,
 * distinguishing hits on entries loaded from disk (work a previous
 * run paid for — what a resume actually saved) from hits on entries
 * computed this run, and when the metrics registry is enabled each
 * shard reports its own hit/miss/store counts
 * (evalcache.shardNN.*).
 */

#ifndef PICO_DSE_EVALUATION_CACHE_HPP
#define PICO_DSE_EVALUATION_CACHE_HPP

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/ThreadAnnotations.hpp"

namespace pico::dse
{

/** Key/value store of metric vectors, optionally file backed. */
class EvaluationCache
{
  public:
    /**
     * Magic first line of the database format. v3 marks databases
     * that may hold policy-axis keys (`;r.*;w.*` suffixes); the
     * record format itself is unchanged since v2.
     */
    static constexpr const char *header = "picoeval-evalcache-v3";
    /** The previous header, still accepted by load(). */
    static constexpr const char *headerV2 = "picoeval-evalcache-v2";

    /** Lock-striping width of the in-memory table. */
    static constexpr size_t shardCount = 16;

    /**
     * @param path database file; empty keeps the cache in memory
     *        only. An existing file is loaded eagerly (corrupt
     *        entries are quarantined, not fatal).
     */
    explicit EvaluationCache(std::string path = "");

    /** Flushes pending entries; never throws during unwind. */
    ~EvaluationCache();

    /**
     * Fetch a metric vector, computing and storing it on a miss.
     * The compute callback runs outside every lock. Computation is
     * *single-flight*: when several threads miss on the same key
     * concurrently (a request-retry storm hammering one idempotent
     * key), exactly one thread runs the callback and the others
     * block until its result is stored — a successful key is never
     * computed twice. A compute that throws propagates to every
     * waiter and releases the key, so a later call retries.
     * Followers count as misses in stats() (they did miss the
     * table); computed counts actual callback runs.
     * @param key unique metric identifier (no '|' or newlines)
     * @param compute evaluator invoked on a miss
     */
    std::vector<double> getOrCompute(
        const std::string &key,
        const std::function<std::vector<double>()> &compute);

    /** Lookup without computing. @return true on hit. */
    bool lookup(const std::string &key,
                std::vector<double> &values) const;

    /** Insert or overwrite an entry. */
    void store(const std::string &key, std::vector<double> values);

    /**
     * Write the database atomically now (no-op when memory-only).
     * I/O errors are warned about and leave the previous generation
     * intact. Serialized: concurrent savers queue up.
     */
    void save() const PICO_REQUIRES(!flushMutex_);

    /**
     * Persist unsaved entries (checkpoint). Cheap when nothing
     * changed since the last save; the walkers call this
     * periodically so an interrupted run resumes from the last
     * checkpoint rather than losing everything. Safe to call from
     * any thread.
     */
    void flush() PICO_REQUIRES(!flushMutex_);

    /**
     * One coherent view of every cache counter. The disk/memory hit
     * split is what makes resume runs reportable: diskHits counts
     * lookups served by entries salvaged from the database file —
     * work a previous run paid for — while memoryHits counts entries
     * computed (or stored) during this run.
     */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        /** Hits on entries loaded from the database file. */
        uint64_t diskHits = 0;
        /** Hits on entries first stored during this run. */
        uint64_t memoryHits = 0;
        /** Compute callbacks actually run by getOrCompute(). */
        uint64_t computed = 0;
        /** store() calls (explicit plus getOrCompute misses). */
        uint64_t stores = 0;
        /** flush() calls that found dirty entries to write. */
        uint64_t flushes = 0;
        /** Completed save protocols (checkpoints + final). */
        uint64_t saves = 0;
        uint64_t loadedEntries = 0;
        uint64_t quarantinedEntries = 0;
    };

    /** Snapshot every counter at once. */
    Stats stats() const;

    /**
     * Per-shard hit/miss split for *this* cache instance — always
     * counted (two relaxed adds per lookup), unlike the registry's
     * evalcache.shardNN.* counters which aggregate every cache in
     * the process and only tick when metrics are enabled. The
     * server's stats verb reports these, so a skewed stripe is
     * visible per service.
     */
    struct ShardStats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
    };

    /** Snapshot each shard's hit/miss counters. */
    std::array<ShardStats, shardCount> shardStats() const;

    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }
    size_t size() const;

    /** Entries salvaged from the database file at load time. */
    uint64_t loadedEntries() const { return loadedEntries_; }
    /** Corrupt database lines skipped at load time. */
    uint64_t quarantinedEntries() const { return quarantinedEntries_; }
    /** Entries stored since the last successful save. */
    bool dirty() const { return dirty_.load(); }

  private:
    /** One table entry; fromDisk marks entries the loader salvaged
     *  (persisted bytes carry only the values, so the database
     *  format is unchanged). */
    struct Entry
    {
        std::vector<double> values;
        bool fromDisk = false;
    };

    /**
     * One in-flight computation (single-flight getOrCompute). The
     * leader fills values/error and flips done; followers wait on
     * the condition variable. Heap-allocated and shared so a
     * follower can outlive the shard map entry.
     */
    struct Inflight
    {
        support::Mutex inflightMutex{"evalcache.inflight",
                                     support::rank::kCacheInflight};
        std::condition_variable cv;
        bool done PICO_GUARDED_BY(inflightMutex) = false;
        std::vector<double> values PICO_GUARDED_BY(inflightMutex);
        std::exception_ptr error PICO_GUARDED_BY(inflightMutex);
    };

    /** One lock-striped slice of the table. */
    struct Shard
    {
        mutable support::Mutex shardMutex{
            "evalcache.shard", support::rank::kCacheShard};
        std::unordered_map<std::string, Entry> table
            PICO_GUARDED_BY(shardMutex);
        /** Keys currently being computed by getOrCompute(). */
        std::unordered_map<std::string, std::shared_ptr<Inflight>>
            inflight PICO_GUARDED_BY(shardMutex);
    };

    size_t shardIndexOf(const std::string &key) const;
    Shard &shardFor(const std::string &key);
    const Shard &shardFor(const std::string &key) const;

    /** Count one hit (per-shard metrics + disk/memory split). */
    void recordHit(size_t shard_index, bool from_disk) const;
    void recordMiss(size_t shard_index) const;

    void load();
    /** save() body; caller must hold flushMutex_. */
    void saveLocked() const PICO_REQUIRES(flushMutex_);

    std::string path_;
    mutable std::array<Shard, shardCount> shards_;
    /** Serializes the write-out protocol (tmp file + rename).
     *  Outranks the shard mutexes: saveLocked() visits every shard
     *  while holding it. */
    mutable support::Mutex flushMutex_{"evalcache.flush",
                                       support::rank::kCacheFlush};
    mutable std::atomic<uint64_t> hits_{0};
    mutable std::atomic<uint64_t> misses_{0};
    mutable std::array<std::atomic<uint64_t>, shardCount>
        shardHits_{};
    mutable std::array<std::atomic<uint64_t>, shardCount>
        shardMisses_{};
    mutable std::atomic<uint64_t> diskHits_{0};
    mutable std::atomic<uint64_t> computed_{0};
    mutable std::atomic<uint64_t> stores_{0};
    mutable std::atomic<uint64_t> flushes_{0};
    mutable std::atomic<uint64_t> saves_{0};
    uint64_t loadedEntries_ = 0;
    uint64_t quarantinedEntries_ = 0;
    mutable std::atomic<bool> dirty_{false};
};

} // namespace pico::dse

#endif // PICO_DSE_EVALUATION_CACHE_HPP
