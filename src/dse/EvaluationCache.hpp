/**
 * @file
 * Persistent evaluation cache (the paper's EvaluationCache layer).
 *
 * Design-space walks revisit the same (application, design) metrics
 * constantly; results are memoized in memory and, when a path is
 * given, persisted to a plain-text database so later runs skip the
 * simulations entirely (section 5.1).
 */

#ifndef PICO_DSE_EVALUATION_CACHE_HPP
#define PICO_DSE_EVALUATION_CACHE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pico::dse
{

/** Key/value store of metric vectors, optionally file backed. */
class EvaluationCache
{
  public:
    /**
     * @param path database file; empty keeps the cache in memory
     *        only. An existing file is loaded eagerly.
     */
    explicit EvaluationCache(std::string path = "");

    /** Destructor persists the database when a path was given. */
    ~EvaluationCache();

    /**
     * Fetch a metric vector, computing and storing it on a miss.
     * @param key unique metric identifier (no '|' or newlines)
     * @param compute evaluator invoked on a miss
     */
    std::vector<double> getOrCompute(
        const std::string &key,
        const std::function<std::vector<double>()> &compute);

    /** Lookup without computing. @return true on hit. */
    bool lookup(const std::string &key,
                std::vector<double> &values) const;

    /** Insert or overwrite an entry. */
    void store(const std::string &key, std::vector<double> values);

    /** Write the database to its file now (no-op when memory-only). */
    void save() const;

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    size_t size() const { return table_.size(); }

  private:
    void load();

    std::string path_;
    std::unordered_map<std::string, std::vector<double>> table_;
    mutable uint64_t hits_ = 0;
    mutable uint64_t misses_ = 0;
};

} // namespace pico::dse

#endif // PICO_DSE_EVALUATION_CACHE_HPP
