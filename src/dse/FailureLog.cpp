#include "dse/FailureLog.hpp"

#include <sstream>

#include "support/Logging.hpp"

namespace pico::dse
{

void
FailureLog::record(std::string design, std::string stage,
                   std::string reason)
{
    warn("design '", design, "' failed during ", stage, ": ", reason,
         " (walk continues)");
    entries_.push_back(
        {std::move(design), std::move(stage), std::move(reason)});
}

void
FailureLog::append(const FailureLog &other)
{
    entries_.insert(entries_.end(), other.entries_.begin(),
                    other.entries_.end());
}

std::string
FailureLog::report() const
{
    if (entries_.empty())
        return "";
    std::ostringstream oss;
    oss << entries_.size() << " design(s) failed:\n";
    for (const auto &e : entries_)
        oss << "  " << e.design << " [" << e.stage
            << "]: " << e.reason << "\n";
    return oss.str();
}

} // namespace pico::dse
