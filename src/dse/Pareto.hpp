/**
 * @file
 * Pareto-set accumulation for cost/performance design points.
 *
 * A design is kept when no other design has lower-or-equal cost and
 * lower-or-equal time with at least one strict improvement (the
 * paper's definition of cost-performance optimality, section 1).
 */

#ifndef PICO_DSE_PARETO_HPP
#define PICO_DSE_PARETO_HPP

#include <string>
#include <vector>

namespace pico::dse
{

/** One candidate design: identifier, silicon cost, execution time. */
struct DesignPoint
{
    std::string id;
    double cost = 0.0;
    /** Execution time or any lower-is-better performance metric. */
    double time = 0.0;

    /** True when this point dominates the other (<= both, < one). */
    bool
    dominates(const DesignPoint &other) const
    {
        return cost <= other.cost && time <= other.time &&
               (cost < other.cost || time < other.time);
    }
};

/** Cumulative Pareto set (the paper's Pareto layer, section 5.1). */
class ParetoSet
{
  public:
    /**
     * Offer one design. Dominated offers are discarded; accepted
     * offers evict members they dominate.
     * @return true when the design was inserted
     */
    bool insertPoint(const DesignPoint &point);

    /** Members sorted by ascending cost. */
    std::vector<DesignPoint> sorted() const;

    const std::vector<DesignPoint> &points() const { return points_; }
    size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

    /** Total designs offered, including rejected ones. */
    uint64_t offered() const { return offered_; }

  private:
    std::vector<DesignPoint> points_;
    uint64_t offered_ = 0;
};

} // namespace pico::dse

#endif // PICO_DSE_PARETO_HPP
