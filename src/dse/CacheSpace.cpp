#include "dse/CacheSpace.hpp"

#include <algorithm>

#include "support/BitUtils.hpp"
#include "support/Logging.hpp"

namespace pico::dse
{

bool
CacheSpace::extendedAxes() const
{
    return replacements.size() != 1 ||
           replacements.front() != cache::ReplacementPolicy::LRU ||
           writePolicies.size() != 1 ||
           writePolicies.front() != cache::WritePolicy::WriteBack;
}

std::vector<cache::CacheConfig>
CacheSpace::enumerate() const
{
    std::vector<cache::CacheConfig> out;
    for (auto size : sizesBytes) {
        for (auto assoc : assocs) {
            for (auto line : lineSizes) {
                for (auto ports : portCounts) {
                    uint64_t lines = size / line;
                    if (lines == 0 || lines % assoc != 0)
                        continue;
                    uint64_t sets = lines / assoc;
                    if (!isPowerOfTwo(sets))
                        continue;
                    cache::CacheConfig cfg;
                    cfg.sets = static_cast<uint32_t>(sets);
                    cfg.assoc = assoc;
                    cfg.lineBytes = line;
                    cfg.ports = ports;
                    if (!cfg.feasible())
                        continue;
                    // Policy axes innermost so policy variants of a
                    // geometry enumerate adjacently; the default
                    // single-element axes reduce this to exactly the
                    // classic enumeration order.
                    for (auto repl : replacements) {
                        for (auto wp : writePolicies) {
                            cfg.replacement = repl;
                            cfg.write = wp;
                            out.push_back(cfg);
                        }
                    }
                }
            }
        }
    }
    return out;
}

std::vector<uint32_t>
CacheSpace::distinctLineSizes() const
{
    std::vector<uint32_t> lines = lineSizes;
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

uint32_t
CacheSpace::maxSets() const
{
    uint32_t best = 1;
    for (const auto &cfg : enumerate())
        best = std::max(best, cfg.sets);
    return best;
}

uint32_t
CacheSpace::minSets() const
{
    uint32_t best = ~0u;
    auto all = enumerate();
    fatalIf(all.empty(), "empty cache space");
    for (const auto &cfg : all)
        best = std::min(best, cfg.sets);
    return best;
}

uint32_t
CacheSpace::maxAssoc() const
{
    uint32_t best = 1;
    for (auto a : assocs)
        best = std::max(best, a);
    return best;
}

CacheSpace
CacheSpace::defaultL1Space()
{
    CacheSpace space;
    space.sizesBytes = {1024, 2048, 4096, 8192, 16384, 32768};
    space.assocs = {1, 2, 4};
    space.lineSizes = {16, 32, 64};
    return space;
}

CacheSpace
CacheSpace::defaultL2Space()
{
    CacheSpace space;
    space.sizesBytes = {16384, 32768, 65536, 131072, 262144};
    space.assocs = {1, 2, 4, 8};
    space.lineSizes = {32, 64, 128};
    return space;
}

} // namespace pico::dse
