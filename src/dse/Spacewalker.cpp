#include "dse/Spacewalker.hpp"

#include <atomic>
#include <optional>

#include "compiler/Scheduler.hpp"
#include "support/FaultInjection.hpp"
#include "support/Logging.hpp"
#include "support/TraceEvents.hpp"
#include "trace/TraceGenerator.hpp"
#include "verify/DesignVerifier.hpp"
#include "verify/ProgramVerifier.hpp"
#include "verify/ResultVerifier.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::dse
{

MemoryWalker::MemoryWalker(MemorySpaces spaces, StallModel stalls,
                           uint64_t i_granule, uint64_t u_granule)
    : spaces_(spaces), stalls_(stalls),
      icacheEval_(spaces.icache, i_granule),
      dcacheEval_(spaces.dcache),
      ucacheEval_(spaces.ucache, u_granule)
{}

void
MemoryWalker::evaluate(const TraceSource &instr_trace,
                       const TraceSource &data_trace,
                       const TraceSource &unified_trace,
                       const support::CancelToken *cancel)
{
    icacheEval_.evaluate(instr_trace, pool_, cancel);
    dcacheEval_.evaluate(data_trace, pool_, cancel);
    ucacheEval_.evaluate(unified_trace, pool_, cancel);
}

double
MemoryWalker::stallCycles(const cache::CacheConfig &icache,
                          const cache::CacheConfig &dcache,
                          const cache::CacheConfig &ucache,
                          double dilation) const
{
    double stalls =
        icacheEval_.misses(icache, dilation) * stalls_.l2HitLatency +
        dcacheEval_.misses(dcache) * stalls_.l2HitLatency +
        ucacheEval_.misses(ucache, dilation) * stalls_.memoryLatency;
    // Write traffic (instruction fetches never write, so only the
    // data-side caches contribute). Still additive per subsystem,
    // which is what keeps the product-of-fronts Pareto construction
    // valid.
    if (stalls_.writeCost != 0.0) {
        stalls += dcacheEval_.writeTraffic(dcache) * stalls_.writeCost;
        stalls += ucacheEval_.writeTraffic(ucache) * stalls_.writeCost;
    }
    return stalls;
}

ParetoSet
MemoryWalker::pareto(double dilation, uint32_t dcache_ports,
                     FailureLog *failures,
                     const support::CancelToken *cancel) const
{
    support::TimedSpan span("memory.pareto", "walk");
    // Subsystem Pareto fronts first: with additive cost and additive
    // stall time, any hierarchy containing a dominated component is
    // itself dominated, so the product of the subsystem fronts
    // covers the full hierarchy Pareto set.
    struct Candidate
    {
        cache::CacheConfig cfg;
        std::string id;
        double cost;
        double time;
    };
    auto front = [](std::vector<Candidate> cands) {
        std::vector<Candidate> kept;
        for (const auto &c : cands) {
            bool dominated = false;
            for (const auto &other : cands) {
                DesignPoint a{other.id, other.cost, other.time};
                DesignPoint b{c.id, c.cost, c.time};
                if (a.dominates(b)) {
                    dominated = true;
                    break;
                }
            }
            if (!dominated)
                kept.push_back(c);
        }
        return kept;
    };

    // Evaluate one subspace: the per-design miss estimates (the
    // dilation-model extrapolations) are independent, so they are
    // sharded across the pool; each task writes only its own slot
    // and the slots are merged in enumeration order, which keeps
    // candidate ordering and failure ordering schedule-independent.
    //
    // With a failure log, one unevaluable cache configuration is
    // recorded and skipped; without one the error propagates (the
    // historical behavior; parallelFor rethrows the error of the
    // smallest failing index — the same one the serial loop hit
    // first).
    auto evalSubspace =
        [&](const std::vector<cache::CacheConfig> &configs,
            const char *prefix,
            const std::function<double(const cache::CacheConfig &)>
                &stall_cycles) {
            std::vector<std::optional<Candidate>> slots(
                configs.size());
            std::vector<std::string> errors(configs.size());
            support::parallelFor(
                configs.size(), pool_, [&](size_t i) {
                    const auto &cfg = configs[i];
                    std::string id = prefix + cfg.name();
                    if (cancel != nullptr)
                        cancel->checkpoint("MemoryWalker::pareto");
                    if (!failures) {
                        slots[i] = Candidate{cfg, id, cfg.areaCost(),
                                             stall_cycles(cfg)};
                        return;
                    }
                    try {
                        slots[i] = Candidate{cfg, id, cfg.areaCost(),
                                             stall_cycles(cfg)};
                    } catch (const PanicError &) {
                        throw; // internal bugs always propagate
                    } catch (const CancelledError &) {
                        throw; // a deadline is not a design failure
                    } catch (const std::exception &e) {
                        errors[i] = e.what();
                    }
                });
            std::vector<Candidate> cands;
            cands.reserve(configs.size());
            for (size_t i = 0; i < configs.size(); ++i) {
                if (slots[i])
                    cands.push_back(std::move(*slots[i]));
                else
                    failures->record(prefix + configs[i].name(),
                                     "memory-pareto", errors[i]);
            }
            return cands;
        };

    std::vector<cache::CacheConfig> d_configs;
    for (const auto &cfg : spaces_.dcache.enumerate()) {
        if (dcache_ports != 0 && cfg.ports != dcache_ports)
            continue;
        d_configs.push_back(cfg);
    }

    auto i_cands = evalSubspace(
        spaces_.icache.enumerate(), "I$",
        [&](const cache::CacheConfig &cfg) {
            return icacheEval_.misses(cfg, dilation) *
                   stalls_.l2HitLatency;
        });
    auto d_cands = evalSubspace(
        d_configs, "D$", [&](const cache::CacheConfig &cfg) {
            double t =
                dcacheEval_.misses(cfg) * stalls_.l2HitLatency;
            if (stalls_.writeCost != 0.0)
                t += dcacheEval_.writeTraffic(cfg) *
                     stalls_.writeCost;
            return t;
        });
    auto u_cands = evalSubspace(
        spaces_.ucache.enumerate(), "U$",
        [&](const cache::CacheConfig &cfg) {
            double t = ucacheEval_.misses(cfg, dilation) *
                       stalls_.memoryLatency;
            if (stalls_.writeCost != 0.0)
                t += ucacheEval_.writeTraffic(cfg) *
                     stalls_.writeCost;
            return t;
        });

    ParetoSet out;
    for (const auto &ic : front(i_cands)) {
        for (const auto &dc : front(d_cands)) {
            for (const auto &uc : front(u_cands)) {
                // Inclusion requirement (section 3.1).
                if (uc.cfg.sizeBytes() < ic.cfg.sizeBytes() ||
                    uc.cfg.sizeBytes() < dc.cfg.sizeBytes() ||
                    uc.cfg.lineBytes < ic.cfg.lineBytes ||
                    uc.cfg.lineBytes < dc.cfg.lineBytes) {
                    continue;
                }
                DesignPoint point;
                point.id = ic.id + "+" + dc.id + "+" + uc.id;
                point.cost = ic.cost + dc.cost + uc.cost;
                point.time = ic.time + dc.time + uc.time;
                out.insertPoint(point);
            }
        }
    }
    return out;
}

std::string
procMetricsKey(const std::string &prog_name, uint64_t seed,
               const std::string &machine_name,
               const MemorySpaces &spaces)
{
    std::string key = "proc;" + prog_name + ";s" +
                      std::to_string(seed) + ";" + machine_name;
    for (uint32_t ports : spaces.dcache.portCounts)
        key += ";p" + std::to_string(ports);
    // Policy axes are part of the key only when some space extends
    // them, keeping classic-space keys byte-identical to the
    // historical schema (old caches keep hitting) while extended
    // walks can never be served a classic entry or vice versa.
    if (spaces.icache.extendedAxes() || spaces.dcache.extendedAxes() ||
        spaces.ucache.extendedAxes()) {
        for (const CacheSpace *space :
             {&spaces.icache, &spaces.dcache, &spaces.ucache}) {
            key += ";r";
            for (auto repl : space->replacements)
                key += std::string(".") +
                       cache::replacementName(repl);
            key += ";w";
            for (auto wp : space->writePolicies)
                key += std::string(".") + cache::writePolicyName(wp);
        }
    }
    return key;
}

Spacewalker::Spacewalker(MemorySpaces spaces,
                         std::vector<std::string> machine_names,
                         Options options)
    : spaces_(spaces), machineNames_(std::move(machine_names)),
      options_(options),
      cache_(options.sharedCache != nullptr
                 ? std::string()
                 : options.evaluationCachePath)
{
    fatalIf(machineNames_.empty(), "no machines to explore");
}

const MemoryWalker &
Spacewalker::memoryWalker() const
{
    fatalIf(!memory_, "explore() has not run yet");
    return *memory_;
}

namespace
{

/** Reference-processor state shared by one trace-equivalence class. */
struct ClassContext
{
    ir::Program prog;
    workloads::MachineBuild refBuild;
    std::unique_ptr<MemoryWalker> memory;
    /** Set when the reference setup of this class failed. */
    std::exception_ptr error;
};

/** Per-design exploration plan (phase 1 output). */
struct DesignPlan
{
    bool predicated = false;
    std::optional<machine::MachineDesc> mdes;
    /** Set when the machine description could not be built. */
    std::exception_ptr descError;
};

/** Per-design exploration outcome (phase 3 output, merged in
 *  design order by phase 4). */
struct DesignOutcome
{
    bool ok = false;
    double dilation = 0.0;
    uint64_t cycles = 0;
    DesignPoint processor;
    std::vector<DesignPoint> systems;
    /** Cache-config failures recorded while composing (compose
     *  stage), plus at most one machine-level failure. */
    FailureLog failures;
};

/** Resolve Options::verify (-1 auto / 0 off / 1 on). */
bool
verificationEnabled(int option)
{
    if (option >= 0)
        return option != 0;
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

/**
 * Verify one trace-equivalence class after its reference setup: the
 * profiled program's CFG and flow counts, the reference binary's text
 * layout, the extracted AHH parameter domains, and — at dilation 1,
 * where the model returns the simulated counts — that no configuration
 * reports more misses than the trace had accesses. Read-only: the
 * class's evaluators and program are never mutated.
 */
void
verifyClassInvariants(bool predicated, const ClassContext &ctx,
                      const MemorySpaces &spaces,
                      const Spacewalker::Options &options,
                      verify::Diagnostics &diags)
{
    const std::string cls =
        predicated ? "class pred" : "class base";
    const MemoryWalker &mem = *ctx.memory;
    verify::verifyProgram(ctx.prog, diags);
    verify::verifyLayout(ctx.prog, ctx.refBuild.bin, diags);
    verify::verifyAhhParams(mem.icache().params(), options.iGranule,
                            cls + " instruction trace", diags);
    verify::verifyAhhParams(mem.ucache().instrParams(),
                            options.uGranule,
                            cls + " unified instruction trace",
                            diags);
    verify::verifyAhhParams(mem.ucache().dataParams(),
                            options.uGranule,
                            cls + " unified data trace", diags);
    // The captured columnar traces must decode back bit-for-bit:
    // every simulated miss count in this class was derived from
    // replaying these blocks.
    verify::verifyColumnarTrace(mem.icache().capturedTrace(),
                                cls + " instruction trace", diags);
    verify::verifyColumnarTrace(mem.dcache().capturedTrace(),
                                cls + " data trace", diags);
    verify::verifyColumnarTrace(mem.ucache().capturedTrace(),
                                cls + " unified trace", diags);
    const double iAccesses =
        static_cast<double>(mem.icache().bank().accesses());
    const double dAccesses =
        static_cast<double>(mem.dcache().bank().accesses());
    const double uAccesses =
        static_cast<double>(mem.ucache().bank().accesses());
    for (const auto &cfg : spaces.icache.enumerate())
        verify::verifyMissCount(mem.icache().misses(cfg, 1.0),
                                iAccesses,
                                cls + " I$" + cfg.name(), diags);
    for (const auto &cfg : spaces.dcache.enumerate())
        verify::verifyMissCount(mem.dcache().misses(cfg), dAccesses,
                                cls + " D$" + cfg.name(), diags);
    for (const auto &cfg : spaces.ucache.enumerate())
        verify::verifyMissCount(mem.ucache().misses(cfg, 1.0),
                                uAccesses,
                                cls + " U$" + cfg.name(), diags);
    // Extended policy axes add the write model: check every
    // enumerated cell's traffic (policy-tagged via cfg.name()). The
    // data-side banks carry the store counts; classic spaces model
    // no write traffic, so there is nothing to check there.
    if (spaces.dcache.extendedAxes()) {
        auto stores =
            static_cast<double>(mem.dcache().bank().stores());
        for (const auto &cfg : spaces.dcache.enumerate())
            verify::verifyWriteModel(mem.dcache().writeTraffic(cfg),
                                     mem.dcache().misses(cfg),
                                     stores, cfg.write,
                                     cls + " D$" + cfg.name(),
                                     diags);
    }
    if (spaces.ucache.extendedAxes()) {
        auto stores =
            static_cast<double>(mem.ucache().bank().stores());
        for (const auto &cfg : spaces.ucache.enumerate())
            verify::verifyWriteModel(mem.ucache().writeTraffic(cfg),
                                     mem.ucache().misses(cfg, 1.0),
                                     stores, cfg.write,
                                     cls + " U$" + cfg.name(),
                                     diags);
    }
}

} // namespace

ExplorationResult
Spacewalker::explore(const ir::Program &prog)
{
    using machine::MachineDesc;

    const size_t n = machineNames_.size();
    const support::CancelToken *cancel = options_.cancel;
    support::TimedSpan exploreSpan("walk.explore", "walk");
    // A default only: when the walk runs on a server worker, the
    // worker's own track name must survive.
    support::TraceRecorder::instance().nameThisThreadDefault(
        "walk-main");
    support::ThreadPool pool(
        support::ThreadPool::resolveJobs(options_.jobs) - 1);
    if (support::metricsEnabled()) {
        support::metrics()
            .gauge("walk.jobs")
            .set(support::ThreadPool::resolveJobs(options_.jobs));
        support::metrics().gauge("walk.designs").set(
            static_cast<double>(n));
    }

    // Verification (optional, read-only) piggybacks on the serial
    // phases, so findings are ordered deterministically no matter
    // how many workers the parallel phases use.
    const bool verifying = verificationEnabled(options_.verify);
    verify::Diagnostics diags;
    if (verifying) {
        support::TimedSpan span("walk.verify.spaces", "verify");
        verify::verifyCacheSpace(spaces_.icache, "icache space",
                                 diags);
        verify::verifyCacheSpace(spaces_.dcache, "dcache space",
                                 diags);
        verify::verifyCacheSpace(spaces_.ucache, "ucache space",
                                 diags);
    }

    // Phase 1 (serial, cheap): machine descriptions. A bad name is
    // remembered and surfaces from its design's own evaluation so
    // per-design isolation and failure ordering stay intact.
    std::vector<DesignPlan> plans(n);
    {
        support::TimedSpan phase("walk.phase1.plan", "phase");
        for (size_t i = 0; i < n; ++i) {
            try {
                plans[i].mdes =
                    MachineDesc::fromName(machineNames_[i]);
                plans[i].predicated = plans[i].mdes->predRegs > 0;
            } catch (const PanicError &) {
                throw; // internal bugs always propagate
            } catch (const std::exception &) {
                plans[i].descError = std::current_exception();
            }
        }
    }

    // Phase 2 (serial across classes, parallel within): one
    // reference processor (and one set of reference-trace
    // simulations) per trace-equivalence class — the paper
    // prescribes a separate Pref for each predication/speculation
    // combination. The reference trace is generated once and its
    // per-line-size Cheetah sweeps run on the pool.
    std::map<bool, std::unique_ptr<ClassContext>> classes;
    std::optional<support::TimedSpan> phase;
    phase.emplace("walk.phase2.reference", "phase");
    for (const auto &plan : plans) {
        if (!plan.mdes || classes.count(plan.predicated))
            continue;
        auto ctx = std::make_unique<ClassContext>();
        try {
            // A cancelled class setup is stored as the class error:
            // every design of the class then unwinds through the
            // phase-3 CancelledError handler into stage "deadline".
            if (cancel != nullptr)
                cancel->checkpoint("Spacewalker::reference");
            std::string ref_name = options_.referenceMachine;
            if (plan.predicated && ref_name.back() != 'p')
                ref_name += 'p';
            auto ref_mdes = MachineDesc::fromName(ref_name);

            ctx->prog = workloads::programForClass(
                prog, ref_mdes, options_.traceBlocks);
            ctx->refBuild = workloads::buildFor(ctx->prog, ref_mdes);
            ctx->memory = std::make_unique<MemoryWalker>(
                spaces_, options_.stalls, options_.iGranule,
                options_.uGranule);
            ctx->memory->setThreadPool(&pool);
            trace::TraceGenerator gen(ctx->prog, ctx->refBuild.sched,
                                      ctx->refBuild.bin);
            uint64_t blocks = options_.traceBlocks;
            auto source = [&gen, blocks](trace::TraceKind kind) {
                return TraceSource([&gen, kind,
                                    blocks](const TraceSink &sink) {
                    gen.generate(kind, sink, blocks);
                });
            };
            ctx->memory->evaluate(
                source(trace::TraceKind::Instruction),
                source(trace::TraceKind::Data),
                source(trace::TraceKind::Unified), cancel);
        } catch (const PanicError &) {
            throw; // internal bugs always propagate
        } catch (const std::exception &) {
            ctx->error = std::current_exception();
            ctx->memory.reset();
        }
        if (verifying && ctx->memory) {
            support::TimedSpan span("walk.verify.class", "verify");
            verifyClassInvariants(plan.predicated, *ctx, spaces_,
                                  options_, diags);
        }
        classes.emplace(plan.predicated, std::move(ctx));
    }
    phase.reset();

    // Phase 3 (parallel): evaluate every design. Each task writes
    // only its own outcome slot; nothing here touches the shared
    // result. One infeasible or failing design must not destroy the
    // walk: every per-design error is recorded in the task's own
    // FailureLog and the exploration continues. Results commit
    // atomically per design — a machine that fails mid-compose
    // contributes no points at all.
    std::vector<DesignOutcome> outcomes(n);
    std::atomic<uint64_t> completed{0};
    phase.emplace("walk.phase3.evaluate", "phase");
    support::parallelFor(n, &pool, [&](size_t i) {
        const auto &name = machineNames_[i];
        const auto &plan = plans[i];
        auto &out = outcomes[i];
        // Spans are named per design but share one wall-time
        // histogram, so the trace shows which worker ran which
        // machine while the report keeps a single distribution.
        support::TimedSpan designSpan("design:" + name, "design",
                                      "walk.design.ns");
        const char *stage = "machine-description";
        try {
            support::faultPoint("Spacewalker::evaluateDesign");
            if (cancel != nullptr)
                cancel->checkpoint("Spacewalker::design");
            if (plan.descError)
                std::rethrow_exception(plan.descError);
            stage = "reference-setup";
            auto &cls = *classes.at(plan.predicated);
            if (cls.error)
                std::rethrow_exception(cls.error);

            // Per-machine metrics flow through the EvaluationCache
            // (section 5.1): a hit skips the whole compile/assemble/
            // link of this machine.
            stage = "metrics";
            std::string key = procMetricsKey(prog.name, prog.seed,
                                             name, spaces_);
            auto metrics = cacheRef().getOrCompute(key, [&]() {
                if (cancel != nullptr)
                    cancel->checkpoint("Spacewalker::metrics");
                auto build = workloads::buildFor(cls.prog,
                                                 *plan.mdes);
                std::vector<double> v;
                v.push_back(linker::textDilation(build.bin,
                                                 cls.refBuild.bin));
                v.push_back(
                    static_cast<double>(build.processorCycles));
                for (uint32_t ports : spaces_.dcache.portCounts) {
                    v.push_back(static_cast<double>(
                        compiler::Scheduler::processorCycles(
                            cls.prog, build.sched, ports)));
                }
                return v;
            });

            out.dilation = metrics[0];
            out.cycles = static_cast<uint64_t>(metrics[1]);
            out.processor.id = "P" + name;
            out.processor.cost = plan.mdes->cost();
            out.processor.time = metrics[1];

            // Compose systems per data-cache port constraint: ports
            // couple the cache to the processor's memory issue rate.
            stage = "compose";
            for (size_t pi = 0;
                 pi < spaces_.dcache.portCounts.size(); ++pi) {
                uint32_t ports = spaces_.dcache.portCounts[pi];
                double cycles = metrics[2 + pi];
                ParetoSet mem = cls.memory->pareto(
                    out.dilation, ports, &out.failures, cancel);
                for (const auto &hierarchy : mem.points()) {
                    DesignPoint sys;
                    sys.id = out.processor.id + "+" + hierarchy.id;
                    sys.cost = out.processor.cost + hierarchy.cost;
                    sys.time = cycles + hierarchy.time;
                    out.systems.push_back(sys);
                }
            }
            out.ok = true;
            PICO_METRIC_COUNT("walk.designs.ok", 1);
        } catch (const PanicError &) {
            throw; // internal bugs always propagate
        } catch (const CancelledError &e) {
            // A deadline is an answer, not a bug: record the claimed
            // design (keeping the conservation invariant — failures
            // plus evaluated covers every design) and let the
            // remaining tasks drain through their own checkpoints.
            // Deliberately not subject to haltOnFailure.
            PICO_METRIC_COUNT("walk.designs.deadline", 1);
            out.failures.record(name, "deadline", e.what());
            return;
        } catch (const std::exception &e) {
            if (options_.haltOnFailure)
                throw;
            PICO_METRIC_COUNT("walk.designs.failed", 1);
            out.failures.record(name, stage, e.what());
            return;
        }

        // Periodic checkpoint: an interrupted run resumes from the
        // evaluation cache's last flushed generation. The trigger
        // counts *completions* (schedule-dependent timing, but
        // flush() writes a sorted snapshot, so the final database
        // bytes never depend on when checkpoints fired).
        uint64_t done =
            completed.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (options_.checkpointEvery != 0 &&
            done % options_.checkpointEvery == 0) {
            PICO_METRIC_COUNT("walk.checkpoints", 1);
            cacheRef().flush();
        }
    });
    phase.reset();

    // Phase 4 (serial): merge outcomes in design order. This is the
    // only writer of the shared result, so Pareto insertion order,
    // FailureLog ordering and evaluatedDesigns are identical to the
    // serial walk no matter how phase 3 was scheduled.
    ExplorationResult result;
    phase.emplace("walk.phase4.merge", "phase");
    for (size_t i = 0; i < n; ++i) {
        auto &out = outcomes[i];
        result.failures.append(out.failures);
        if (!out.ok)
            continue;
        const auto &name = machineNames_[i];
        result.dilations[name] = out.dilation;
        result.processorCycles[name] = out.cycles;
        result.processors.insertPoint(out.processor);
        for (const auto &sys : out.systems)
            result.systems.insertPoint(sys);
        ++result.evaluatedDesigns;
    }
    result.deadlineExceeded =
        cancel != nullptr && cancel->cancelled();
    // Completed designs stay cached even when the walk was cut
    // short: the flush below is what makes a retried request after a
    // deadline cheaper than the first attempt.
    cacheRef().flush();
    phase.reset();

    if (verifying) {
        support::TimedSpan span("walk.verify.result", "verify");
        verify::verifyWalkResult(result, n, diags);
        // A shared cache's file is flushed by *other* walks too;
        // only the owner can verify it race-free.
        if (!options_.evaluationCachePath.empty() &&
            options_.sharedCache == nullptr)
            verify::verifyCacheFile(options_.evaluationCachePath,
                                    diags);
    }
    if (!diags.empty()) {
        for (const auto &d : diags.entries())
            warn("verify: ", d.format());
        warn("verification: ", diags.errorCount(), " error(s), ",
             diags.warningCount(), " warning(s)");
        PICO_METRIC_COUNT("walk.verify.errors", diags.errorCount());
        PICO_METRIC_COUNT("walk.verify.warnings",
                          diags.warningCount());
    }
    result.diagnostics = std::move(diags);

    if (!result.failures.empty())
        warn("exploration partial: ", result.failures.size(),
             " failure(s) across ", machineNames_.size(),
             " design(s); ", result.evaluatedDesigns, " evaluated");

    // Keep the base class's walker accessible for callers that want
    // to inspect the memory design space after exploration. The
    // pool dies with this frame, so detach it first.
    for (auto &[pred, ctx] : classes) {
        if (ctx->memory)
            ctx->memory->setThreadPool(nullptr);
    }
    for (auto pred : {false, true}) {
        auto it = classes.find(pred);
        if (it != classes.end() && it->second->memory) {
            memory_ = std::move(it->second->memory);
            break;
        }
    }
    return result;
}

} // namespace pico::dse
