#include "dse/Spacewalker.hpp"

#include "compiler/Scheduler.hpp"
#include "support/FaultInjection.hpp"
#include "support/Logging.hpp"
#include "trace/TraceGenerator.hpp"
#include "workloads/Toolchain.hpp"

namespace pico::dse
{

MemoryWalker::MemoryWalker(MemorySpaces spaces, StallModel stalls,
                           uint64_t i_granule, uint64_t u_granule)
    : spaces_(spaces), stalls_(stalls),
      icacheEval_(spaces.icache, i_granule),
      dcacheEval_(spaces.dcache),
      ucacheEval_(spaces.ucache, u_granule)
{}

void
MemoryWalker::evaluate(const TraceSource &instr_trace,
                       const TraceSource &data_trace,
                       const TraceSource &unified_trace)
{
    icacheEval_.evaluate(instr_trace);
    dcacheEval_.evaluate(data_trace);
    ucacheEval_.evaluate(unified_trace);
}

double
MemoryWalker::stallCycles(const cache::CacheConfig &icache,
                          const cache::CacheConfig &dcache,
                          const cache::CacheConfig &ucache,
                          double dilation) const
{
    return icacheEval_.misses(icache, dilation) * stalls_.l2HitLatency +
           dcacheEval_.misses(dcache) * stalls_.l2HitLatency +
           ucacheEval_.misses(ucache, dilation) *
               stalls_.memoryLatency;
}

ParetoSet
MemoryWalker::pareto(double dilation, uint32_t dcache_ports,
                     FailureLog *failures) const
{
    // Subsystem Pareto fronts first: with additive cost and additive
    // stall time, any hierarchy containing a dominated component is
    // itself dominated, so the product of the subsystem fronts
    // covers the full hierarchy Pareto set.
    struct Candidate
    {
        cache::CacheConfig cfg;
        std::string id;
        double cost;
        double time;
    };
    auto front = [](std::vector<Candidate> cands) {
        std::vector<Candidate> kept;
        for (const auto &c : cands) {
            bool dominated = false;
            for (const auto &other : cands) {
                DesignPoint a{other.id, other.cost, other.time};
                DesignPoint b{c.id, c.cost, c.time};
                if (a.dominates(b)) {
                    dominated = true;
                    break;
                }
            }
            if (!dominated)
                kept.push_back(c);
        }
        return kept;
    };

    // With a failure log, one unevaluable cache configuration is
    // recorded and skipped; without one the error propagates.
    auto offer = [&](std::vector<Candidate> &cands,
                     const cache::CacheConfig &cfg, std::string id,
                     auto &&stall_cycles) {
        if (!failures) {
            cands.push_back(
                {cfg, id, cfg.areaCost(), stall_cycles()});
            return;
        }
        try {
            cands.push_back(
                {cfg, id, cfg.areaCost(), stall_cycles()});
        } catch (const PanicError &) {
            throw; // internal bugs always propagate
        } catch (const std::exception &e) {
            failures->record(id, "memory-pareto", e.what());
        }
    };

    std::vector<Candidate> i_cands, d_cands, u_cands;
    for (const auto &cfg : spaces_.icache.enumerate()) {
        offer(i_cands, cfg, "I$" + cfg.name(), [&] {
            return icacheEval_.misses(cfg, dilation) *
                   stalls_.l2HitLatency;
        });
    }
    for (const auto &cfg : spaces_.dcache.enumerate()) {
        if (dcache_ports != 0 && cfg.ports != dcache_ports)
            continue;
        offer(d_cands, cfg, "D$" + cfg.name(), [&] {
            return dcacheEval_.misses(cfg) * stalls_.l2HitLatency;
        });
    }
    for (const auto &cfg : spaces_.ucache.enumerate()) {
        offer(u_cands, cfg, "U$" + cfg.name(), [&] {
            return ucacheEval_.misses(cfg, dilation) *
                   stalls_.memoryLatency;
        });
    }

    ParetoSet out;
    for (const auto &ic : front(i_cands)) {
        for (const auto &dc : front(d_cands)) {
            for (const auto &uc : front(u_cands)) {
                // Inclusion requirement (section 3.1).
                if (uc.cfg.sizeBytes() < ic.cfg.sizeBytes() ||
                    uc.cfg.sizeBytes() < dc.cfg.sizeBytes() ||
                    uc.cfg.lineBytes < ic.cfg.lineBytes ||
                    uc.cfg.lineBytes < dc.cfg.lineBytes) {
                    continue;
                }
                DesignPoint point;
                point.id = ic.id + "+" + dc.id + "+" + uc.id;
                point.cost = ic.cost + dc.cost + uc.cost;
                point.time = ic.time + dc.time + uc.time;
                out.insertPoint(point);
            }
        }
    }
    return out;
}

Spacewalker::Spacewalker(MemorySpaces spaces,
                         std::vector<std::string> machine_names,
                         Options options)
    : spaces_(spaces), machineNames_(std::move(machine_names)),
      options_(options), cache_(options.evaluationCachePath)
{
    fatalIf(machineNames_.empty(), "no machines to explore");
}

const MemoryWalker &
Spacewalker::memoryWalker() const
{
    fatalIf(!memory_, "explore() has not run yet");
    return *memory_;
}

namespace
{

/** Reference-processor state shared by one trace-equivalence class. */
struct ClassContext
{
    ir::Program prog;
    workloads::MachineBuild refBuild;
    std::unique_ptr<MemoryWalker> memory;
};

} // namespace

ExplorationResult
Spacewalker::explore(const ir::Program &prog)
{
    using machine::MachineDesc;

    // One reference processor (and one set of reference-trace
    // simulations) per trace-equivalence class: the paper prescribes
    // a separate Pref for each predication/speculation combination.
    std::map<bool, std::unique_ptr<ClassContext>> classes;
    auto classFor = [&](const MachineDesc &mdes) -> ClassContext & {
        bool predicated = mdes.predRegs > 0;
        auto it = classes.find(predicated);
        if (it != classes.end())
            return *it->second;

        std::string ref_name = options_.referenceMachine;
        if (predicated && ref_name.back() != 'p')
            ref_name += 'p';
        auto ref_mdes = MachineDesc::fromName(ref_name);

        auto ctx = std::make_unique<ClassContext>();
        ctx->prog = workloads::programForClass(prog, ref_mdes,
                                               options_.traceBlocks);
        ctx->refBuild = workloads::buildFor(ctx->prog, ref_mdes);
        ctx->memory = std::make_unique<MemoryWalker>(
            spaces_, options_.stalls, options_.iGranule,
            options_.uGranule);
        trace::TraceGenerator gen(ctx->prog, ctx->refBuild.sched,
                                  ctx->refBuild.bin);
        uint64_t blocks = options_.traceBlocks;
        auto source = [&gen, blocks](trace::TraceKind kind) {
            return TraceSource([&gen, kind,
                                blocks](const TraceSink &sink) {
                gen.generate(kind, sink, blocks);
            });
        };
        ctx->memory->evaluate(source(trace::TraceKind::Instruction),
                              source(trace::TraceKind::Data),
                              source(trace::TraceKind::Unified));
        return *classes.emplace(predicated, std::move(ctx))
                    .first->second;
    };

    ExplorationResult result;
    for (const auto &name : machineNames_) {
        // One infeasible or failing design must not destroy the
        // walk: every per-design error is recorded in the
        // FailureLog and the exploration continues. Results commit
        // atomically per design — a machine that fails mid-compose
        // contributes no points at all.
        const char *stage = "machine-description";
        try {
            support::faultPoint("Spacewalker::evaluateDesign");
            auto mdes = MachineDesc::fromName(name);
            stage = "reference-setup";
            auto &cls = classFor(mdes);

            // Per-machine metrics flow through the EvaluationCache
            // (section 5.1): a hit skips the whole compile/assemble/
            // link of this machine.
            stage = "metrics";
            std::string key = "proc;" + prog.name + ";s" +
                              std::to_string(prog.seed) + ";" + name;
            for (uint32_t ports : spaces_.dcache.portCounts)
                key += ";p" + std::to_string(ports);
            auto metrics = cache_.getOrCompute(key, [&]() {
                auto build = workloads::buildFor(cls.prog, mdes);
                std::vector<double> v;
                v.push_back(linker::textDilation(build.bin,
                                                 cls.refBuild.bin));
                v.push_back(
                    static_cast<double>(build.processorCycles));
                for (uint32_t ports : spaces_.dcache.portCounts) {
                    v.push_back(static_cast<double>(
                        compiler::Scheduler::processorCycles(
                            cls.prog, build.sched, ports)));
                }
                return v;
            });

            double dilation = metrics[0];
            DesignPoint proc;
            proc.id = "P" + name;
            proc.cost = mdes.cost();
            proc.time = metrics[1];

            // Compose systems per data-cache port constraint: ports
            // couple the cache to the processor's memory issue rate.
            stage = "compose";
            std::vector<DesignPoint> systems;
            for (size_t pi = 0;
                 pi < spaces_.dcache.portCounts.size(); ++pi) {
                uint32_t ports = spaces_.dcache.portCounts[pi];
                double cycles = metrics[2 + pi];
                ParetoSet mem = cls.memory->pareto(
                    dilation, ports, &result.failures);
                for (const auto &hierarchy : mem.points()) {
                    DesignPoint sys;
                    sys.id = proc.id + "+" + hierarchy.id;
                    sys.cost = proc.cost + hierarchy.cost;
                    sys.time = cycles + hierarchy.time;
                    systems.push_back(sys);
                }
            }

            result.dilations[name] = dilation;
            result.processorCycles[name] =
                static_cast<uint64_t>(metrics[1]);
            result.processors.insertPoint(proc);
            for (const auto &sys : systems)
                result.systems.insertPoint(sys);
        } catch (const PanicError &) {
            throw; // internal bugs always propagate
        } catch (const std::exception &e) {
            if (options_.haltOnFailure)
                throw;
            result.failures.record(name, stage, e.what());
            continue;
        }

        // Periodic checkpoint: an interrupted run resumes from the
        // evaluation cache's last flushed generation.
        ++result.evaluatedDesigns;
        if (options_.checkpointEvery != 0 &&
            result.evaluatedDesigns % options_.checkpointEvery == 0)
            cache_.flush();
    }
    cache_.flush();

    if (!result.failures.empty())
        warn("exploration partial: ", result.failures.size(),
             " failure(s) across ", machineNames_.size(),
             " design(s); ", result.evaluatedDesigns, " evaluated");

    // Keep the base class's walker accessible for callers that want
    // to inspect the memory design space after exploration.
    if (!classes.empty()) {
        auto base = classes.find(false);
        if (base == classes.end())
            base = classes.begin();
        memory_ = std::move(base->second->memory);
    }
    return result;
}

} // namespace pico::dse
