#include "verify/Diagnostics.hpp"

#include <sstream>

namespace pico::verify
{

const char *
toString(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

std::string
Diagnostic::format() const
{
    std::ostringstream os;
    os << toString(severity) << ": " << rule << ": " << object
       << ": " << message;
    return os.str();
}

void
Diagnostics::error(std::string rule, std::string object,
                   std::string message)
{
    entries_.push_back(Diagnostic{Severity::Error, std::move(rule),
                                  std::move(object),
                                  std::move(message)});
    ++errors_;
}

void
Diagnostics::warning(std::string rule, std::string object,
                     std::string message)
{
    entries_.push_back(Diagnostic{Severity::Warning, std::move(rule),
                                  std::move(object),
                                  std::move(message)});
}

void
Diagnostics::append(const Diagnostics &other)
{
    entries_.insert(entries_.end(), other.entries_.begin(),
                    other.entries_.end());
    errors_ += other.errors_;
}

size_t
Diagnostics::count(const std::string &rule) const
{
    size_t n = 0;
    for (const auto &d : entries_) {
        if (d.rule == rule)
            ++n;
    }
    return n;
}

std::string
Diagnostics::report() const
{
    std::ostringstream os;
    for (const auto &d : entries_)
        os << d.format() << '\n';
    return os.str();
}

} // namespace pico::verify
